module cube

go 1.22
