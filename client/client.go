// Package client is a typed Go client for the cube-server HTTP service.
// It covers every endpoint, carries a context through every call, and
// retries transient failures — transport errors, 429 (saturated server),
// and 5xx responses — with exponential backoff, jitter, and respect for
// the server's Retry-After hint.
//
// Retrying POSTs is safe here by construction: every operator endpoint is
// a pure function of its uploaded operands (the algebra has no server-side
// state), so the client treats all requests as idempotent. Permanent
// errors (4xx other than 429) are returned immediately as *StatusError.
package client

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/base64"
	"fmt"
	"io"
	"math/rand"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"net/url"
	"strconv"
	"strings"
	"time"

	"cube"
	"cube/internal/obs"
)

// Client talks to one cube-server. The zero value is not usable; call New.
// A Client is safe for concurrent use.
//
// Every client records its traffic into an obs registry (obs.Default
// unless WithMetrics overrides it):
//
//	cube_client_attempts_total{endpoint}           HTTP attempts, incl. retries
//	cube_client_retries_total{endpoint}            attempts beyond the first
//	cube_client_errors_total{endpoint}             calls that gave up
//	cube_client_backoff_seconds{endpoint}          time slept between attempts
//	cube_client_request_duration_seconds{endpoint} whole-call latency, retries included
type Client struct {
	base       string
	hc         *http.Client
	maxRetries int
	baseDelay  time.Duration
	maxDelay   time.Duration
	reg        *obs.Registry
}

// Option customises a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithMaxRetries sets how many times a failed request is retried
// (default 4; 0 disables retrying).
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithBackoff sets the base and cap of the exponential backoff schedule
// (defaults 100ms and 5s). The actual delay for attempt k is drawn
// uniformly from [d/2, d] with d = min(base<<k, max), unless the server
// sent Retry-After, which wins.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.baseDelay, c.maxDelay = base, max }
}

// WithMetrics directs the client's telemetry into reg instead of
// obs.Default; nil disables it.
func WithMetrics(reg *obs.Registry) Option { return func(c *Client) { c.reg = reg } }

// New returns a client for the service at baseURL (e.g. "http://host:7654").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		hc:         http.DefaultClient,
		maxRetries: 4,
		baseDelay:  100 * time.Millisecond,
		maxDelay:   5 * time.Second,
		reg:        obs.Default,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// StatusError is a non-200 response from the server.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Code, strings.TrimSpace(e.Body))
}

func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// retryAfter parses the Retry-After header; -1 means absent/unparseable.
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return -1
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
		return 0
	}
	return -1
}

// backoff returns the sleep before retry number attempt (0-based):
// exponential with a cap, jittered into [d/2, d] to avoid thundering herds.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.baseDelay
	for i := 0; i < attempt && d < c.maxDelay; i++ {
		d *= 2
	}
	if d > c.maxDelay || d <= 0 {
		d = c.maxDelay
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// endpointLabel bounds the metric cardinality of a request path: the
// query string is stripped and content-addressed paths are bucketed by
// route, so the label set is the fixed route space.
func endpointLabel(path string) string {
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	if strings.HasPrefix(path, "/experiments/") {
		return "/experiments/{digest}"
	}
	return path
}

// do performs one HTTP call with the retry policy. body may be nil (GET);
// it is replayed from memory on each attempt.
//
// Every call carries an X-Request-ID — a sanitized caller-supplied ID from
// the context, or a freshly minted one — held stable across retries, so all
// attempts of one logical call correlate to a single server-side trace.
// When a tracer is active (obs.SetTracer, or a caller span on ctx) the call
// records a span tree: one span per attempt plus one per backoff sleep.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte) ([]byte, error) {
	data, _, _, err := c.doFull(ctx, method, path, contentType, body, nil)
	return data, err
}

// doFull is do with the raw response exposed: the store routes need the
// response status (201 vs 200 on PUT) and headers (Content-Digest,
// Content-Length on HEAD), and send extra request headers of their own.
// Any 2xx status is success.
func (c *Client) doFull(ctx context.Context, method, path, contentType string, body []byte, extra http.Header) (result []byte, hdr http.Header, status int, callErr error) {
	id := obs.SanitizeRequestID(obs.RequestID(ctx))
	if id == "" {
		id = obs.NewRequestID()
		ctx = obs.WithRequestID(ctx, id)
	}
	sp, ctx := obs.StartSpanContext(ctx, "client."+endpointLabel(path))
	sp.SetAttr("method", method)
	ep := obs.L("endpoint", endpointLabel(path))
	// One wide event per logical call (kind "client"), attempts included —
	// nil (one atomic load) unless a sink is installed (obs.SetEventSink,
	// the CLIs' -events flag).
	ev := obs.NewEvent("client", endpointLabel(path))
	ev.SetRequestID(id)
	ev.SetMethod(method)
	attempts := 0
	start := time.Now()
	defer func() {
		c.reg.Histogram("cube_client_request_duration_seconds", obs.DefLatencyBuckets, ep).
			ObserveExemplar(time.Since(start).Seconds(), sp.TraceID())
		if callErr != nil {
			c.reg.Counter("cube_client_errors_total", ep).Inc()
			sp.SetAttr("error", true)
			ev.SetError(callErr.Error())
		}
		sp.End()
		ev.SetStatus(status)
		ev.SetResponseBytes(int64(len(result)))
		ev.SetAttempts(attempts)
		ev.Emit()
	}()
	var last error
	for attempt := 0; ; attempt++ {
		attempts = attempt + 1
		c.reg.Counter("cube_client_attempts_total", ep).Inc()
		if attempt > 0 {
			c.reg.Counter("cube_client_retries_total", ep).Inc()
		}
		var br io.Reader
		if body != nil {
			br = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, br)
		if err != nil {
			return nil, nil, 0, err
		}
		req.Header.Set("X-Request-ID", id)
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		for k, vs := range extra {
			req.Header[k] = vs
		}
		asp := sp.StartChild("attempt")
		asp.SetAttr("attempt", attempt)
		delay := time.Duration(-1)
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				asp.SetAttr("error", ctx.Err().Error())
				asp.End()
				return nil, nil, 0, ctx.Err()
			}
			last = err // transport error: retryable
			asp.SetAttr("error", err.Error())
			asp.End()
		} else {
			asp.SetAttr("status", resp.StatusCode)
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			asp.End()
			switch {
			case rerr != nil:
				last = rerr // truncated response: retryable
			case resp.StatusCode >= 200 && resp.StatusCode < 300:
				return data, resp.Header, resp.StatusCode, nil
			default:
				serr := &StatusError{Code: resp.StatusCode, Body: string(data)}
				if !retryableStatus(resp.StatusCode) {
					return nil, resp.Header, resp.StatusCode, serr
				}
				last = serr
				delay = retryAfter(resp)
			}
		}
		if attempt >= c.maxRetries {
			return nil, nil, 0, fmt.Errorf("giving up after %d attempts: %w", attempt+1, last)
		}
		if delay <= 0 {
			// No Retry-After guidance (or "retry now"): back off anyway
			// so a saturated server is not hammered in a tight loop.
			delay = c.backoff(attempt)
		}
		c.reg.Histogram("cube_client_backoff_seconds", obs.DefLatencyBuckets, ep).
			Observe(delay.Seconds())
		bsp := sp.StartChild("backoff")
		bsp.SetAttr("delay_ms", float64(delay)/float64(time.Millisecond))
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			bsp.End()
			return nil, nil, 0, ctx.Err()
		case <-t.C:
			bsp.End()
		}
	}
}

// marshalOperands builds the multipart body once so retries can replay it.
// Each operand part carries a Content-Digest header (RFC 9530, sha-256
// over the part body) so the server can detect corruption in transit.
func marshalOperands(exps []*cube.Experiment) (contentType string, body []byte, err error) {
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	var part bytes.Buffer
	for i, e := range exps {
		part.Reset()
		if err := cube.Write(&part, e); err != nil {
			return "", nil, fmt.Errorf("encoding operand %d: %w", i, err)
		}
		sum := sha256.Sum256(part.Bytes())
		h := make(textproto.MIMEHeader)
		h.Set("Content-Disposition",
			fmt.Sprintf(`form-data; name="operand"; filename="operand-%d.cube"`, i))
		h.Set("Content-Type", "application/octet-stream")
		h.Set("Content-Digest", "sha-256=:"+base64.StdEncoding.EncodeToString(sum[:])+":")
		fw, err := mw.CreatePart(h)
		if err != nil {
			return "", nil, err
		}
		if _, err := fw.Write(part.Bytes()); err != nil {
			return "", nil, err
		}
	}
	if err := mw.Close(); err != nil {
		return "", nil, err
	}
	return mw.FormDataContentType(), buf.Bytes(), nil
}

func (c *Client) postOperands(ctx context.Context, path string, exps ...*cube.Experiment) ([]byte, error) {
	ct, body, err := marshalOperands(exps)
	if err != nil {
		return nil, err
	}
	return c.do(ctx, http.MethodPost, path, ct, body)
}

// Healthz checks that the server is up and answering.
func (c *Client) Healthz(ctx context.Context) error {
	_, err := c.do(ctx, http.MethodGet, "/healthz", "", nil)
	return err
}

// OpOptions carries the metadata-integration options shared by the
// operator endpoints; zero values mean the server defaults
// (callmatch=callee, system=auto).
type OpOptions struct {
	CallMatch string // "callee" or "callee+line"
	System    string // "auto", "collapse", or "copy-first"
}

func (o *OpOptions) query() url.Values {
	q := url.Values{}
	if o != nil {
		if o.CallMatch != "" {
			q.Set("callmatch", o.CallMatch)
		}
		if o.System != "" {
			q.Set("system", o.System)
		}
	}
	return q
}

func encodeQuery(q url.Values) string {
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}

// Op invokes POST /op/{name} with the given operands and decodes the
// derived experiment. The typed wrappers below cover the known operators.
func (c *Client) Op(ctx context.Context, name string, opts *OpOptions, operands ...*cube.Experiment) (*cube.Experiment, error) {
	return c.op(ctx, name, opts.query(), operands...)
}

func (c *Client) op(ctx context.Context, name string, q url.Values, operands ...*cube.Experiment) (*cube.Experiment, error) {
	data, err := c.postOperands(ctx, "/op/"+url.PathEscape(name)+encodeQuery(q), operands...)
	if err != nil {
		return nil, err
	}
	e, err := cube.Read(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("decoding %s result: %w", name, err)
	}
	return e, nil
}

// Difference computes a − b remotely.
func (c *Client) Difference(ctx context.Context, a, b *cube.Experiment, opts *OpOptions) (*cube.Experiment, error) {
	return c.Op(ctx, "difference", opts, a, b)
}

// Merge integrates any number of experiments (first operand wins shared metrics).
func (c *Client) Merge(ctx context.Context, opts *OpOptions, operands ...*cube.Experiment) (*cube.Experiment, error) {
	return c.Op(ctx, "merge", opts, operands...)
}

// Mean averages the operands element-wise.
func (c *Client) Mean(ctx context.Context, opts *OpOptions, operands ...*cube.Experiment) (*cube.Experiment, error) {
	return c.Op(ctx, "mean", opts, operands...)
}

// Sum adds the operands element-wise.
func (c *Client) Sum(ctx context.Context, opts *OpOptions, operands ...*cube.Experiment) (*cube.Experiment, error) {
	return c.Op(ctx, "sum", opts, operands...)
}

// Min takes the element-wise minimum of the operands.
func (c *Client) Min(ctx context.Context, opts *OpOptions, operands ...*cube.Experiment) (*cube.Experiment, error) {
	return c.Op(ctx, "min", opts, operands...)
}

// Max takes the element-wise maximum of the operands.
func (c *Client) Max(ctx context.Context, opts *OpOptions, operands ...*cube.Experiment) (*cube.Experiment, error) {
	return c.Op(ctx, "max", opts, operands...)
}

// Flatten converts e into its flat profile.
func (c *Client) Flatten(ctx context.Context, e *cube.Experiment) (*cube.Experiment, error) {
	return c.Op(ctx, "flatten", nil, e)
}

// Extract keeps only the named metric subtrees of e.
func (c *Client) Extract(ctx context.Context, e *cube.Experiment, metrics ...string) (*cube.Experiment, error) {
	q := url.Values{}
	for _, m := range metrics {
		q.Add("metric", m)
	}
	return c.op(ctx, "extract", q, e)
}

// Prune removes call subtrees contributing less than threshold of the
// metric's total.
func (c *Client) Prune(ctx context.Context, e *cube.Experiment, metric string, threshold float64) (*cube.Experiment, error) {
	q := url.Values{}
	q.Set("metric", metric)
	q.Set("threshold", strconv.FormatFloat(threshold, 'g', -1, 64))
	return c.op(ctx, "prune", q, e)
}

// ViewOptions selects what POST /view renders.
type ViewOptions struct {
	Metric string // metric path or name; empty selects the first root
	Mode   string // "absolute" (default) or "percent"
	Flat   bool   // render the flat profile
	Top    int    // >0 appends the top-N hotspot listing
}

// View renders the text-mode three-tree display of e remotely.
func (c *Client) View(ctx context.Context, e *cube.Experiment, opts *ViewOptions) (string, error) {
	q := url.Values{}
	if opts != nil {
		if opts.Metric != "" {
			q.Set("metric", opts.Metric)
		}
		if opts.Mode != "" {
			q.Set("mode", opts.Mode)
		}
		if opts.Flat {
			q.Set("flat", "1")
		}
		if opts.Top > 0 {
			q.Set("top", strconv.Itoa(opts.Top))
		}
	}
	data, err := c.postOperands(ctx, "/view"+encodeQuery(q), e)
	return string(data), err
}

// Info summarises one experiment, or structurally compares two.
func (c *Client) Info(ctx context.Context, operands ...*cube.Experiment) (string, error) {
	data, err := c.postOperands(ctx, "/info", operands...)
	return string(data), err
}

// Report renders the self-contained HTML report of e; metric may be empty.
func (c *Client) Report(ctx context.Context, e *cube.Experiment, metric string) ([]byte, error) {
	q := url.Values{}
	if metric != "" {
		q.Set("metric", metric)
	}
	return c.postOperands(ctx, "/report"+encodeQuery(q), e)
}
