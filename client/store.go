package client

// The experiment-store client: upload an experiment once, then hand any
// operator endpoint a digest reference instead of re-uploading megabytes
// of XML. All calls share the package's retry, tracing, and metrics
// plumbing (do/doFull in client.go).

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"net/url"
	"strconv"
	"strings"

	"cube"
)

// ErrNotStored reports a digest the server's experiment store does not
// hold; Put the experiment and retry.
var ErrNotStored = errors.New("experiment is not in the server store")

// ErrUnknownSize reports a HEAD response whose Content-Length was absent
// or unparseable: the experiment exists, but the server did not say how
// big it is. Callers that only probe existence can treat this as success.
var ErrUnknownSize = errors.New("stored experiment size unknown")

// Put encodes e to CUBE XML and commits it to the server's experiment
// store under its content address, returning the SHA-256 digest (64 hex
// chars) to use in ...ByDigest calls. The route is idempotent: putting
// the same experiment twice is a cheap no-op on the server.
func (c *Client) Put(ctx context.Context, e *cube.Experiment) (string, error) {
	var buf bytes.Buffer
	if err := cube.Write(&buf, e); err != nil {
		return "", fmt.Errorf("encoding experiment: %w", err)
	}
	return c.PutBytes(ctx, buf.Bytes())
}

// PutBytes commits an already-encoded CUBE XML document to the server's
// experiment store and returns its digest. The request names the digest
// in the URL and carries a Content-Digest header, so corruption anywhere
// in transit is rejected by the server rather than stored.
func (c *Client) PutBytes(ctx context.Context, doc []byte) (string, error) {
	sum := sha256.Sum256(doc)
	digest := hex.EncodeToString(sum[:])
	hdr := make(http.Header)
	hdr.Set("Content-Digest", contentDigest(sum))
	_, _, _, err := c.doFull(ctx, http.MethodPut, "/experiments/"+digest,
		"application/xml", doc, hdr)
	if err != nil {
		return "", err
	}
	return digest, nil
}

// Stat reports the stored size of the digest, or ErrNotStored.
func (c *Client) Stat(ctx context.Context, digest string) (int64, error) {
	_, hdr, _, err := c.doFull(ctx, http.MethodHead, "/experiments/"+url.PathEscape(digest), "", nil, nil)
	if err != nil {
		var serr *StatusError
		if errors.As(err, &serr) && serr.Code == http.StatusNotFound {
			return 0, fmt.Errorf("%s: %w", digest, ErrNotStored)
		}
		return 0, err
	}
	v := hdr.Get("Content-Length")
	size, perr := strconv.ParseInt(v, 10, 64)
	if perr != nil || size < 0 {
		// The blob exists (2xx), the server just failed to describe it —
		// distinguish that from absence instead of reporting size 0.
		return 0, fmt.Errorf("%s: Content-Length %q: %w", digest, v, ErrUnknownSize)
	}
	return size, nil
}

// Fetch retrieves the stored experiment, verifies the received bytes
// against the digest end-to-end (the server verifies on read too; this
// catches the transit leg), and decodes it.
func (c *Client) Fetch(ctx context.Context, digest string) (*cube.Experiment, error) {
	data, _, _, err := c.doFull(ctx, http.MethodGet, "/experiments/"+url.PathEscape(digest), "", nil, nil)
	if err != nil {
		var serr *StatusError
		if errors.As(err, &serr) && serr.Code == http.StatusNotFound {
			return nil, fmt.Errorf("%s: %w", digest, ErrNotStored)
		}
		return nil, err
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != strings.ToLower(digest) {
		return nil, fmt.Errorf("fetched bytes hash to %x, want %s: corrupt in transit", sum, digest)
	}
	e, err := cube.Read(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("decoding experiment %s: %w", digest, err)
	}
	return e, nil
}

// contentDigest renders an RFC 9530 Content-Digest header value.
func contentDigest(sum [sha256.Size]byte) string {
	return "sha-256=:" + base64.StdEncoding.EncodeToString(sum[:]) + ":"
}

// marshalDigestRefs builds a multipart body whose operand parts are
// digest references instead of document bytes.
func marshalDigestRefs(digests []string) (contentType string, body []byte, err error) {
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for i, d := range digests {
		if len(d) != 2*sha256.Size || strings.Trim(strings.ToLower(d), "0123456789abcdef") != "" {
			return "", nil, fmt.Errorf("operand %d: %q is not a sha-256 hex digest", i, d)
		}
		h := make(textproto.MIMEHeader)
		h.Set("Content-Disposition",
			fmt.Sprintf(`form-data; name="operand"; filename="operand-%d.ref"`, i))
		h.Set("Content-Type", "text/plain")
		fw, err := mw.CreatePart(h)
		if err != nil {
			return "", nil, err
		}
		if _, err := fw.Write([]byte("digest:" + strings.ToLower(d))); err != nil {
			return "", nil, err
		}
	}
	if err := mw.Close(); err != nil {
		return "", nil, err
	}
	return mw.FormDataContentType(), buf.Bytes(), nil
}

// OpByDigest invokes POST /op/{name} with stored operands referenced by
// digest (from Put). A 404 means a referenced experiment is not in the
// store — wrapped as ErrNotStored so callers can Put and retry.
func (c *Client) OpByDigest(ctx context.Context, name string, opts *OpOptions, digests ...string) (*cube.Experiment, error) {
	ct, body, err := marshalDigestRefs(digests)
	if err != nil {
		return nil, err
	}
	path := "/op/" + url.PathEscape(name) + encodeQuery(opts.query())
	data, err := c.do(ctx, http.MethodPost, path, ct, body)
	if err != nil {
		var serr *StatusError
		if errors.As(err, &serr) && serr.Code == http.StatusNotFound {
			return nil, fmt.Errorf("%w: %s", ErrNotStored, strings.TrimSpace(serr.Body))
		}
		return nil, err
	}
	e, err := cube.Read(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("decoding %s result: %w", name, err)
	}
	return e, nil
}

// DifferenceByDigest computes a − b from stored experiments.
func (c *Client) DifferenceByDigest(ctx context.Context, a, b string, opts *OpOptions) (*cube.Experiment, error) {
	return c.OpByDigest(ctx, "difference", opts, a, b)
}

// MergeByDigest integrates stored experiments (first operand wins shared metrics).
func (c *Client) MergeByDigest(ctx context.Context, opts *OpOptions, digests ...string) (*cube.Experiment, error) {
	return c.OpByDigest(ctx, "merge", opts, digests...)
}

// MeanByDigest averages stored experiments element-wise.
func (c *Client) MeanByDigest(ctx context.Context, opts *OpOptions, digests ...string) (*cube.Experiment, error) {
	return c.OpByDigest(ctx, "mean", opts, digests...)
}

// SumByDigest adds stored experiments element-wise.
func (c *Client) SumByDigest(ctx context.Context, opts *OpOptions, digests ...string) (*cube.Experiment, error) {
	return c.OpByDigest(ctx, "sum", opts, digests...)
}

// MinByDigest takes the element-wise minimum of stored experiments.
func (c *Client) MinByDigest(ctx context.Context, opts *OpOptions, digests ...string) (*cube.Experiment, error) {
	return c.OpByDigest(ctx, "min", opts, digests...)
}

// MaxByDigest takes the element-wise maximum of stored experiments.
func (c *Client) MaxByDigest(ctx context.Context, opts *OpOptions, digests ...string) (*cube.Experiment, error) {
	return c.OpByDigest(ctx, "max", opts, digests...)
}
