package client

// Acceptance test of the store client: Put experiments once, operate on
// them by digest through the full retry/trace/metrics plumbing, and fetch
// them back digest-verified.

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cube"
	"cube/internal/obs"
	"cube/internal/server"
	"cube/internal/store"
)

// storeHandler builds the real service handler over a real store.
func storeHandler(t *testing.T) http.Handler {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.DefaultConfig()
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	cfg.Store = st
	return server.NewHandler(cfg)
}

func TestStoreRoundTrip(t *testing.T) {
	// One injected 503 on the first store call proves the store routes
	// ride the same retry machinery as the operator calls.
	var failures atomic.Int32
	failures.Store(1)
	h := storeHandler(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/experiments/") && failures.Add(-1) >= 0 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	c := New(srv.URL, WithMaxRetries(4), WithBackoff(time.Millisecond, 10*time.Millisecond), WithMetrics(reg))
	ctx := context.Background()
	a, b := testExp("a", 0.25), testExp("b", 0)

	da, err := c.Put(ctx, a)
	if err != nil {
		t.Fatalf("Put a: %v", err)
	}
	db, err := c.Put(ctx, b)
	if err != nil {
		t.Fatalf("Put b: %v", err)
	}
	if da == db || len(da) != 64 {
		t.Fatalf("digests %q / %q look wrong", da, db)
	}

	// Stat sees both, and reports absence as ErrNotStored.
	if size, err := c.Stat(ctx, da); err != nil || size <= 0 {
		t.Fatalf("Stat a: size %d, err %v", size, err)
	}
	if _, err := c.Stat(ctx, strings.Repeat("0", 64)); !errors.Is(err, ErrNotStored) {
		t.Fatalf("Stat of absent digest: %v, want ErrNotStored", err)
	}

	// Operating by digest matches operating on the uploaded experiments.
	diff, err := c.DifferenceByDigest(ctx, da, db, nil)
	if err != nil {
		t.Fatalf("DifferenceByDigest: %v", err)
	}
	want, _ := cube.Difference(a, b, nil)
	if diff.Fingerprint() != want.Fingerprint() {
		t.Error("remote by-digest difference differs from local")
	}
	mean, err := c.MeanByDigest(ctx, nil, da, db)
	if err != nil {
		t.Fatalf("MeanByDigest: %v", err)
	}
	if !mean.Derived || mean.Operation != "mean" {
		t.Error("mean provenance lost")
	}

	// Fetch round-trips the stored experiment, digest-verified.
	back, err := c.Fetch(ctx, da)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if back.Fingerprint() != a.Fingerprint() {
		t.Error("fetched experiment differs from the one uploaded")
	}

	// The injected 503 was retried, under the bounded endpoint label.
	ep := obs.L("endpoint", "/experiments/{digest}")
	if got := reg.Counter("cube_client_retries_total", ep).Value(); got < 1 {
		t.Errorf("store retries = %d, want >= 1", got)
	}
	// Exactly one call gave up: the deliberate Stat of an absent digest.
	if got := reg.Counter("cube_client_errors_total", ep).Value(); got != 1 {
		t.Errorf("store client errors = %d, want 1 (the absent-digest Stat)", got)
	}
}

func TestOpByDigestMissingIsErrNotStored(t *testing.T) {
	srv := httptest.NewServer(storeHandler(t))
	defer srv.Close()
	c := fastClient(srv.URL)
	_, err := c.OpByDigest(context.Background(), "flatten", nil, strings.Repeat("a", 64))
	if !errors.Is(err, ErrNotStored) {
		t.Fatalf("err = %v, want ErrNotStored", err)
	}
}

func TestOpByDigestRejectsMalformedDigest(t *testing.T) {
	c := fastClient("http://unused.invalid")
	if _, err := c.OpByDigest(context.Background(), "flatten", nil, "nope"); err == nil {
		t.Fatal("malformed digest accepted client-side")
	}
}
