package client

// Wide-event tests: one kind "client" event per logical call, retries
// folded into its attempt count.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cube/internal/obs"
)

func TestClientEmitsWideEventPerCall(t *testing.T) {
	var attempts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "saturated", http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, "ok\n")
	}))
	defer srv.Close()

	sink := obs.NewEventSink(8)
	obs.SetEventSink(sink)
	defer obs.SetEventSink(nil)

	c := New(srv.URL, WithMaxRetries(3),
		WithBackoff(time.Millisecond, 2*time.Millisecond), WithMetrics(nil))
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}

	events := sink.Events()
	if len(events) != 1 {
		t.Fatalf("call emitted %d events, want exactly 1 (retries fold in)", len(events))
	}
	f := events[0]
	if err := obs.ValidateEvent(f); err != nil {
		t.Errorf("event invalid: %v", err)
	}
	if f.Kind != "client" || f.Route != "/healthz" || f.Method != "GET" {
		t.Errorf("kind/route/method = %q/%q/%q", f.Kind, f.Route, f.Method)
	}
	if f.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (one retry)", f.Attempts)
	}
	if f.Status != http.StatusOK || f.ResponseBytes != 3 {
		t.Errorf("status/bytes = %d/%d, want 200/3", f.Status, f.ResponseBytes)
	}
	if f.RequestID == "" {
		t.Error("event missing request_id")
	}
	if f.Error != "" {
		t.Errorf("successful call recorded error %q", f.Error)
	}

	// A call that gives up records the terminal error.
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "broken", http.StatusInternalServerError)
	}))
	defer failing.Close()
	fc := New(failing.URL, WithMaxRetries(1),
		WithBackoff(time.Millisecond, 2*time.Millisecond), WithMetrics(nil))
	if err := fc.Healthz(context.Background()); err == nil {
		t.Fatal("expected failure")
	}
	events = sink.Events()
	if len(events) != 2 {
		t.Fatalf("sink holds %d events, want 2", len(events))
	}
	if f := events[1]; f.Error == "" || f.Attempts != 2 {
		t.Errorf("failed call event = %+v, want error and 2 attempts", f)
	}
}

func TestClientNoSinkNoEvents(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	}))
	defer srv.Close()
	c := New(srv.URL, WithMetrics(nil))
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
}
