package client

// The self-telemetry client: read the server's run series (the snapshots
// it takes of its own metrics, runtime estimates, and span taxonomy —
// see cube-server -self-interval), trigger snapshots, and diff two runs
// with the server's own Difference operator. The routes live under
// /debug/self, so the server must run with -debug.
//
//	runs, _ := c.SelfSeries(ctx)
//	d, _ := c.SelfDiff(ctx, runs.Runs[len(runs.Runs)-1].Digest, runs.Runs[0].Digest, nil)

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"cube"
)

// SelfRun is one self-snapshot in the server's run series.
type SelfRun struct {
	Seq    uint64 `json:"seq"`
	Title  string `json:"title"`
	Digest string `json:"digest"`
	Bytes  int64  `json:"bytes"`
	Time   string `json:"time"`
}

// SelfSeries is the GET /debug/self response: whether self-telemetry is
// configured, the series name, and the retained runs (oldest first).
type SelfSeries struct {
	Enabled bool      `json:"enabled"`
	Process string    `json:"process"`
	Runs    []SelfRun `json:"runs"`
}

// SelfSeries fetches the server's self-telemetry run series.
func (c *Client) SelfSeries(ctx context.Context) (SelfSeries, error) {
	var s SelfSeries
	data, err := c.do(ctx, http.MethodGet, "/debug/self", "", nil)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("decoding self series: %w", err)
	}
	return s, nil
}

// SelfSnapshot asks the server to take one self-snapshot now and returns
// the new run.
func (c *Client) SelfSnapshot(ctx context.Context) (SelfRun, error) {
	var run SelfRun
	data, err := c.do(ctx, http.MethodPost, "/debug/self/snapshot", "", nil)
	if err != nil {
		return run, err
	}
	if err := json.Unmarshal(data, &run); err != nil {
		return run, fmt.Errorf("decoding self snapshot: %w", err)
	}
	return run, nil
}

// SelfDiff evaluates newer − older over two runs' digests server-side
// (one POST /expr round trip; both blobs are already in the store, so no
// experiment bytes travel to the server). The result's severities are the
// between-runs deltas of every metric series, span self-time, and visit
// count the snapshots share.
func (c *Client) SelfDiff(ctx context.Context, newer, older string, opts *OpOptions) (*cube.Experiment, error) {
	return c.Expr(ctx, DifferenceExpr(DigestRef(newer), DigestRef(older)), opts)
}
