package client

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cube"
	"cube/internal/server"
)

func testExp(title string, extraWait float64) *cube.Experiment {
	e := cube.New(title)
	tm := e.NewMetric("Time", cube.Seconds, "")
	wait := tm.NewChild("Wait", "")
	mainR := e.NewRegion("main", "app", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("", 0, mainR))
	sub := root.NewChild(e.NewCallSite("app", 4, e.NewRegion("sub", "app", 0, 0)))
	for _, th := range e.SingleThreadedSystem("m", 1, 2) {
		e.SetSeverity(tm, root, th, 1)
		e.SetSeverity(tm, sub, th, 0.02)
		e.SetSeverity(wait, root, th, 0.5+extraWait)
	}
	return e
}

func fastClient(url string) *Client {
	return New(url, WithMaxRetries(5), WithBackoff(time.Millisecond, 10*time.Millisecond))
}

func TestRetryOn429ThenSuccess(t *testing.T) {
	var attempts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "saturated", http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, "ok\n")
	}))
	defer srv.Close()
	if err := fastClient(srv.URL).Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz after 429s: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
}

func TestRetryOn500(t *testing.T) {
	var attempts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, "ok\n")
	}))
	defer srv.Close()
	if err := fastClient(srv.URL).Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz after 500: %v", err)
	}
}

func TestNoRetryOn400(t *testing.T) {
	var attempts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer srv.Close()
	err := fastClient(srv.URL).Healthz(context.Background())
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Code != http.StatusBadRequest {
		t.Fatalf("want StatusError 400, got %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("400 was retried: %d attempts", got)
	}
}

func TestTransportErrorRetry(t *testing.T) {
	var attempts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			// Drop the connection mid-request: a transport-level failure.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close()
			return
		}
		io.WriteString(w, "ok\n")
	}))
	defer srv.Close()
	if err := fastClient(srv.URL).Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz after dropped connection: %v", err)
	}
	if got := attempts.Load(); got < 2 {
		t.Errorf("attempts = %d, want >= 2", got)
	}
}

func TestGivesUpAfterMaxRetries(t *testing.T) {
	var attempts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := New(srv.URL, WithMaxRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	err := c.Healthz(context.Background())
	if err == nil {
		t.Fatal("expected error")
	}
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Code != http.StatusServiceUnavailable {
		t.Fatalf("want wrapped StatusError 503, got %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", got)
	}
}

func TestContextCancelStopsRetrying(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := New(srv.URL, WithMaxRetries(100), WithBackoff(10*time.Millisecond, 50*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Healthz(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

// TestCancelAbortsBackoffSleep pins down the sharp edge of cancellation:
// the server's Retry-After puts the client into a 5-second backoff sleep,
// and cancelling mid-sleep must return promptly — not after the timer.
func TestCancelAbortsBackoffSleep(t *testing.T) {
	attempted := make(chan struct{}, 16)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempted <- struct{}{}
		w.Header().Set("Retry-After", "5")
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := New(srv.URL, WithMaxRetries(100))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- c.Healthz(ctx) }()
	<-attempted // first attempt answered: the client is now in its 5s backoff
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("cancel mid-backoff returned after %v, want well under the 5s Retry-After", elapsed)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("client still sleeping 4s after cancellation")
	}
}

func TestRetryAfterHonored(t *testing.T) {
	var attempts atomic.Int32
	const wait = time.Second
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "saturated", http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, "ok\n")
	}))
	defer srv.Close()
	// Backoff alone would retry within ~2ms; Retry-After must dominate.
	c := New(srv.URL, WithMaxRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	start := time.Now()
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < wait {
		t.Errorf("retried after %v, Retry-After asked for %v", elapsed, wait)
	}
}

// TestEndToEnd drives the real service handler through the typed client
// and checks results against the local operators.
func TestEndToEnd(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := httptest.NewServer(server.NewHandler(cfg))
	defer srv.Close()
	c := fastClient(srv.URL)
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	a, b := testExp("a", 0.25), testExp("b", 0)
	diff, err := c.Difference(ctx, a, b, nil)
	if err != nil {
		t.Fatalf("difference: %v", err)
	}
	want, _ := cube.Difference(a, b, nil)
	if diff.Fingerprint() != want.Fingerprint() {
		t.Errorf("remote difference differs from local")
	}

	mean, err := c.Mean(ctx, &OpOptions{CallMatch: "callee", System: "auto"}, a, b, testExp("c", 0.1))
	if err != nil {
		t.Fatalf("mean: %v", err)
	}
	if !mean.Derived || mean.Operation != "mean" {
		t.Errorf("mean provenance lost")
	}

	// Closure: the derived result is a valid operand for the next call.
	flat, err := c.Flatten(ctx, diff)
	if err != nil {
		t.Fatalf("flatten of derived: %v", err)
	}
	if flat.Operation != "flatten" {
		t.Errorf("flatten provenance lost")
	}

	ex, err := c.Extract(ctx, a, "Time/Wait")
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	if len(ex.MetricRoots()) != 1 || ex.MetricRoots()[0].Name != "Wait" {
		t.Errorf("extract picked the wrong subtree")
	}

	if _, err := c.Prune(ctx, a, "Time", 0.5); err != nil {
		t.Fatalf("prune: %v", err)
	}

	view, err := c.View(ctx, diff, &ViewOptions{Metric: "Wait", Mode: "percent", Top: 2})
	if err != nil {
		t.Fatalf("view: %v", err)
	}
	for _, wantStr := range []string{"Metric tree", "Wait", "severities"} {
		if !strings.Contains(view, wantStr) {
			t.Errorf("view lacks %q", wantStr)
		}
	}

	info, err := c.Info(ctx, a, b)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if !strings.Contains(info, "similarity") {
		t.Errorf("two-operand info lacks structural comparison:\n%s", info)
	}

	rep, err := c.Report(ctx, a, "Wait")
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if !strings.Contains(string(rep), "<!DOCTYPE html>") {
		t.Errorf("report is not HTML")
	}

	// Permanent errors surface immediately with their status.
	_, err = c.Op(ctx, "transmogrify", nil, a)
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Code != http.StatusNotFound {
		t.Errorf("unknown op: want StatusError 404, got %v", err)
	}
}
