package client

// The expression client: build an algebra DAG locally and evaluate it
// server-side in one POST /expr round trip. The server shares identical
// subexpressions (they evaluate once) and answers repeated expressions
// from its expression-digest result cache, so a DAG that references the
// same stored experiments as yesterday's is nearly free.
//
//	d := client.DifferenceExpr(client.DigestRef(before), client.DigestRef(after))
//	e, err := c.Expr(ctx, client.MeanExpr(d, client.ScaleExpr(d, 2)), nil)

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"strconv"
	"strings"

	"cube"
)

// ExprNode is one node of an expression DAG: an operator over child
// nodes, or a leaf referencing a stored digest or an inline operand.
// Nodes are plain values — share a node between two parents and the
// server evaluates it once. Build leaves with DigestRef/OperandRef and
// operators with the *Expr constructors; the zero value is not usable.
type ExprNode struct {
	op        string
	args      []*ExprNode
	ref       string
	metric    string
	threshold *float64
	factor    *float64
	metrics   []string
}

// DigestRef references an experiment committed to the server store (the
// 64-hex digest from Put).
func DigestRef(digest string) *ExprNode {
	return &ExprNode{ref: "digest:" + strings.ToLower(digest)}
}

// OperandRef references the i-th inline experiment passed to Expr.
func OperandRef(i int) *ExprNode {
	return &ExprNode{ref: fmt.Sprintf("operand:%d", i)}
}

// OpExpr builds an operator node for any server-known operator name; the
// typed constructors below cover the fixed operator set.
func OpExpr(name string, args ...*ExprNode) *ExprNode {
	return &ExprNode{op: name, args: args}
}

// DifferenceExpr is a − b.
func DifferenceExpr(a, b *ExprNode) *ExprNode { return OpExpr("difference", a, b) }

// MergeExpr integrates the operands (first operand wins shared metrics).
func MergeExpr(args ...*ExprNode) *ExprNode { return OpExpr("merge", args...) }

// MeanExpr averages the operands element-wise.
func MeanExpr(args ...*ExprNode) *ExprNode { return OpExpr("mean", args...) }

// SumExpr adds the operands element-wise.
func SumExpr(args ...*ExprNode) *ExprNode { return OpExpr("sum", args...) }

// MinExpr takes the element-wise minimum.
func MinExpr(args ...*ExprNode) *ExprNode { return OpExpr("min", args...) }

// MaxExpr takes the element-wise maximum.
func MaxExpr(args ...*ExprNode) *ExprNode { return OpExpr("max", args...) }

// StdDevExpr is the element-wise sample standard deviation.
func StdDevExpr(args ...*ExprNode) *ExprNode { return OpExpr("stddev", args...) }

// FlattenExpr converts x into its flat profile.
func FlattenExpr(x *ExprNode) *ExprNode { return OpExpr("flatten", x) }

// ExtractExpr keeps only the named metric subtrees of x.
func ExtractExpr(x *ExprNode, metrics ...string) *ExprNode {
	return &ExprNode{op: "extract", args: []*ExprNode{x}, metrics: metrics}
}

// PruneExpr removes call subtrees contributing less than threshold of the
// metric's total.
func PruneExpr(x *ExprNode, metric string, threshold float64) *ExprNode {
	return &ExprNode{op: "prune", args: []*ExprNode{x}, metric: metric, threshold: &threshold}
}

// ScaleExpr multiplies every severity of x by factor.
func ScaleExpr(x *ExprNode, factor float64) *ExprNode {
	return &ExprNode{op: "scale", args: []*ExprNode{x}, factor: &factor}
}

// exprWire is the POST /expr JSON node shape (internal/expr's wireNode).
type exprWire struct {
	Op        string      `json:"op,omitempty"`
	Args      []*exprWire `json:"args,omitempty"`
	Ref       string      `json:"ref,omitempty"`
	Metric    string      `json:"metric,omitempty"`
	Threshold *float64    `json:"threshold,omitempty"`
	Factor    *float64    `json:"factor,omitempty"`
	Metrics   []string    `json:"metrics,omitempty"`
}

// marshalExpr encodes the DAG rooted at n. Shared nodes are emitted once
// as named defs and referenced as def:<name>, preserving the DAG shape on
// the wire (and with it, linear document size for diamond-heavy graphs).
func marshalExpr(n *ExprNode) ([]byte, error) {
	defs, outs, err := marshalRoots([]*ExprNode{n})
	if err != nil {
		return nil, err
	}
	if len(defs) == 0 {
		return json.Marshal(outs[0])
	}
	return json.Marshal(struct {
		Defs map[string]*exprWire `json:"defs"`
		Expr *exprWire            `json:"expr"`
	}{defs, outs[0]})
}

// marshalExprMulti encodes several roots over one shared DAG as the
// batched `{"defs":{...},"roots":[...]}` request form.
func marshalExprMulti(roots []*ExprNode) ([]byte, error) {
	if len(roots) == 0 {
		return nil, errors.New("no root expressions")
	}
	defs, outs, err := marshalRoots(roots)
	if err != nil {
		return nil, err
	}
	if len(defs) == 0 {
		return json.Marshal(struct {
			Roots []*exprWire `json:"roots"`
		}{outs})
	}
	return json.Marshal(struct {
		Defs  map[string]*exprWire `json:"defs"`
		Roots []*exprWire          `json:"roots"`
	}{defs, outs})
}

// marshalRoots wires a set of root DAGs into one shared defs namespace:
// an operator node with several parents is emitted once as a named def
// and referenced as def:<name> everywhere else, so the wire document
// stays linear in the DAG size even for diamond-heavy graphs.
func marshalRoots(rootNodes []*ExprNode) (map[string]*exprWire, []*exprWire, error) {
	// First pass: count parents per node to find the shared ones. A node
	// that appears under several roots counts once per occurrence, so
	// cross-root sharing hoists exactly like within-root sharing.
	parents := map[*ExprNode]int{}
	isRoot := map[*ExprNode]bool{}
	var count func(x *ExprNode)
	count = func(x *ExprNode) {
		if x == nil {
			return // wire() reports the nil child with a real error
		}
		parents[x]++
		if parents[x] > 1 {
			return
		}
		for _, a := range x.args {
			count(a)
		}
	}
	for _, n := range rootNodes {
		if n == nil {
			return nil, nil, errors.New("nil expression")
		}
		isRoot[n] = true
		count(n)
	}

	defs := map[string]*exprWire{}
	names := map[*ExprNode]string{}
	var wire func(x *ExprNode) (*exprWire, error)
	wire = func(x *ExprNode) (*exprWire, error) {
		if x == nil {
			return nil, errors.New("nil expression node")
		}
		if name, ok := names[x]; ok {
			return &exprWire{Ref: "def:" + name}, nil
		}
		w := &exprWire{Op: x.op, Ref: x.ref, Metric: x.metric,
			Threshold: x.threshold, Factor: x.factor, Metrics: x.metrics}
		for _, a := range x.args {
			cw, err := wire(a)
			if err != nil {
				return nil, err
			}
			w.Args = append(w.Args, cw)
		}
		// Hoist shared operator nodes (but not roots, and not bare
		// leaves — the server unifies leaves by content anyway).
		if !isRoot[x] && x.op != "" && parents[x] > 1 {
			name := fmt.Sprintf("n%d", len(defs))
			defs[name] = w
			names[x] = name
			return &exprWire{Ref: "def:" + name}, nil
		}
		return w, nil
	}
	outs := make([]*exprWire, len(rootNodes))
	for i, n := range rootNodes {
		w, err := wire(n)
		if err != nil {
			return nil, nil, err
		}
		outs[i] = w
	}
	return defs, outs, nil
}

// ExprStats is the server's evaluation summary, echoed in response
// headers: how many unique nodes the DAG had after sharing, how many
// duplicate subtrees were eliminated, and whether the whole answer came
// from the expression-digest result cache.
type ExprStats struct {
	Nodes   int
	CSEHits int
	Cached  bool
}

// Expr evaluates the DAG rooted at root on the server and decodes the
// derived experiment. Leaves reference stored experiments (DigestRef) or
// the inline operands (OperandRef indexes into inline). opts carries the
// usual metadata-integration options.
func (c *Client) Expr(ctx context.Context, root *ExprNode, opts *OpOptions, inline ...*cube.Experiment) (*cube.Experiment, error) {
	e, _, err := c.ExprStats(ctx, root, opts, inline...)
	return e, err
}

// ExprStats is Expr with the server's evaluation summary exposed.
func (c *Client) ExprStats(ctx context.Context, root *ExprNode, opts *OpOptions, inline ...*cube.Experiment) (*cube.Experiment, ExprStats, error) {
	doc, err := marshalExpr(root)
	if err != nil {
		return nil, ExprStats{}, err
	}
	return c.ExprRaw(ctx, doc, opts, inline...)
}

// ExprRaw evaluates an already-marshalled expression document (the JSON
// the /expr endpoint accepts) — for callers like cube-expr that hold the
// document as text rather than as an ExprNode DAG.
func (c *Client) ExprRaw(ctx context.Context, doc []byte, opts *OpOptions, inline ...*cube.Experiment) (*cube.Experiment, ExprStats, error) {
	data, _, st, err := c.exprPost(ctx, doc, opts, inline)
	if err != nil {
		return nil, st, err
	}
	res, err := cube.Read(bytes.NewReader(data))
	if err != nil {
		return nil, st, fmt.Errorf("decoding expression result: %w", err)
	}
	return res, st, nil
}

// ExprMulti evaluates several root expressions over one shared DAG in a
// single POST /expr round trip and returns one experiment per root, in
// root order. A subexpression shared between roots — or one root nested
// inside another — is evaluated once on the server.
func (c *Client) ExprMulti(ctx context.Context, roots []*ExprNode, opts *OpOptions, inline ...*cube.Experiment) ([]*cube.Experiment, ExprStats, error) {
	doc, err := marshalExprMulti(roots)
	if err != nil {
		return nil, ExprStats{}, err
	}
	return c.ExprMultiRaw(ctx, doc, opts, inline...)
}

// ExprMultiRaw evaluates an already-marshalled batched expression
// document (`{"roots":[...]}`), decoding the server's multipart/mixed
// response into one experiment per root. A single-root batch comes back
// as a plain XML body (the server only switches to multipart for two or
// more roots) and decodes to a one-element slice.
func (c *Client) ExprMultiRaw(ctx context.Context, doc []byte, opts *OpOptions, inline ...*cube.Experiment) ([]*cube.Experiment, ExprStats, error) {
	data, hdr, st, err := c.exprPost(ctx, doc, opts, inline)
	if err != nil {
		return nil, st, err
	}
	mt, params, err := mime.ParseMediaType(hdr.Get("Content-Type"))
	if err != nil || !strings.HasPrefix(mt, "multipart/") {
		e, err := cube.Read(bytes.NewReader(data))
		if err != nil {
			return nil, st, fmt.Errorf("decoding expression result: %w", err)
		}
		return []*cube.Experiment{e}, st, nil
	}
	mr := multipart.NewReader(bytes.NewReader(data), params["boundary"])
	var outs []*cube.Experiment
	for {
		p, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, st, fmt.Errorf("reading multipart response: %w", err)
		}
		e, err := cube.Read(p)
		if err != nil {
			return nil, st, fmt.Errorf("decoding root %d: %w", len(outs), err)
		}
		outs = append(outs, e)
	}
	if want := hdr.Get("X-Cube-Expr-Roots"); want != "" && want != strconv.Itoa(len(outs)) {
		return nil, st, fmt.Errorf("response carries %d parts but X-Cube-Expr-Roots says %s", len(outs), want)
	}
	return outs, st, nil
}

// exprPost is the shared POST /expr transport of ExprRaw and
// ExprMultiRaw: choose the body form, send, and decode the stat headers.
func (c *Client) exprPost(ctx context.Context, doc []byte, opts *OpOptions, inline []*cube.Experiment) ([]byte, http.Header, ExprStats, error) {
	path := "/expr" + encodeQuery(opts.query())
	var err error
	var ct string
	var body []byte
	if len(inline) == 0 {
		ct, body = "application/json", doc
	} else if ct, body, err = marshalExprForm(doc, inline); err != nil {
		return nil, nil, ExprStats{}, err
	}
	data, hdr, _, err := c.doFull(ctx, http.MethodPost, path, ct, body, nil)
	if err != nil {
		var serr *StatusError
		if errors.As(err, &serr) && serr.Code == http.StatusNotFound {
			return nil, nil, ExprStats{}, fmt.Errorf("%w: %s", ErrNotStored, strings.TrimSpace(serr.Body))
		}
		return nil, nil, ExprStats{}, err
	}
	var st ExprStats
	fmt.Sscan(hdr.Get("X-Cube-Expr-Nodes"), &st.Nodes)
	fmt.Sscan(hdr.Get("X-Cube-Expr-Cse-Hits"), &st.CSEHits)
	st.Cached = hdr.Get("X-Cube-Expr-Cache") == "hit"
	return data, hdr, st, nil
}

// marshalExprForm builds the multipart body: the expression document in
// the "expr" field plus one digest-guarded operand part per inline
// experiment, in OperandRef order.
func marshalExprForm(doc []byte, inline []*cube.Experiment) (contentType string, body []byte, err error) {
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	if err := mw.WriteField("expr", string(doc)); err != nil {
		return "", nil, err
	}
	var part bytes.Buffer
	for i, e := range inline {
		part.Reset()
		if err := cube.Write(&part, e); err != nil {
			return "", nil, fmt.Errorf("encoding inline operand %d: %w", i, err)
		}
		sum := sha256.Sum256(part.Bytes())
		h := make(textproto.MIMEHeader)
		h.Set("Content-Disposition",
			fmt.Sprintf(`form-data; name="operand"; filename="operand-%d.cube"`, i))
		h.Set("Content-Type", "application/octet-stream")
		h.Set("Content-Digest", "sha-256=:"+base64.StdEncoding.EncodeToString(sum[:])+":")
		fw, err := mw.CreatePart(h)
		if err != nil {
			return "", nil, err
		}
		if _, err := fw.Write(part.Bytes()); err != nil {
			return "", nil, err
		}
	}
	if err := mw.Close(); err != nil {
		return "", nil, err
	}
	return mw.FormDataContentType(), buf.Bytes(), nil
}
