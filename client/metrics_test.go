package client

// Telemetry tests: the client's attempt/retry/backoff/latency metrics.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cube/internal/obs"
)

func TestClientRecordsAttemptsAndRetries(t *testing.T) {
	var attempts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "saturated", http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, "ok\n")
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	c := New(srv.URL, WithMaxRetries(5),
		WithBackoff(time.Millisecond, 10*time.Millisecond), WithMetrics(reg))
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}

	ep := obs.L("endpoint", "/healthz")
	if got := reg.CounterValue("cube_client_attempts_total", ep); got != 3 {
		t.Errorf("attempts_total = %d, want 3", got)
	}
	if got := reg.CounterValue("cube_client_retries_total", ep); got != 2 {
		t.Errorf("retries_total = %d, want 2", got)
	}
	if got := reg.CounterValue("cube_client_errors_total", ep); got != 0 {
		t.Errorf("errors_total = %d, want 0", got)
	}

	snap := reg.Snapshot()
	var sawDuration, sawBackoff bool
	for _, h := range snap.Histograms {
		switch h.Name {
		case "cube_client_request_duration_seconds":
			sawDuration = h.Count == 1
		case "cube_client_backoff_seconds":
			sawBackoff = h.Count == 2
		}
	}
	if !sawDuration {
		t.Errorf("request duration histogram missing or wrong count")
	}
	if !sawBackoff {
		t.Errorf("backoff histogram missing or wrong count (want 2 sleeps)")
	}
}

func TestClientRecordsFinalFailure(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "broken", http.StatusInternalServerError)
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	c := New(srv.URL, WithMaxRetries(1),
		WithBackoff(time.Millisecond, 2*time.Millisecond), WithMetrics(reg))
	if err := c.Healthz(context.Background()); err == nil {
		t.Fatal("expected failure")
	}
	ep := obs.L("endpoint", "/healthz")
	if got := reg.CounterValue("cube_client_errors_total", ep); got != 1 {
		t.Errorf("errors_total = %d, want 1", got)
	}
	if got := reg.CounterValue("cube_client_attempts_total", ep); got != 2 {
		t.Errorf("attempts_total = %d, want 2", got)
	}
}

func TestClientEndpointLabelStripsQuery(t *testing.T) {
	if got := endpointLabel("/op/difference?callmatch=callee"); got != "/op/difference" {
		t.Errorf("endpointLabel = %q", got)
	}
	if got := endpointLabel("/healthz"); got != "/healthz" {
		t.Errorf("endpointLabel = %q", got)
	}
}

func TestClientNilMetricsIsInert(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	}))
	defer srv.Close()
	c := New(srv.URL, WithMetrics(nil))
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
}
