package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cube/internal/obs"
)

// TestStableRequestIDAcrossRetries: all attempts of one logical call carry
// the same X-Request-ID, so they correlate to a single server-side trace.
func TestStableRequestIDAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var ids []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids = append(ids, r.Header.Get("X-Request-ID"))
		n := len(ids)
		mu.Unlock()
		if n < 3 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	c := New(srv.URL, WithBackoff(time.Millisecond, 2*time.Millisecond), WithMetrics(nil))
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ids) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(ids))
	}
	if ids[0] == "" {
		t.Fatal("client sent no X-Request-ID")
	}
	for i, id := range ids {
		if id != ids[0] {
			t.Errorf("attempt %d sent ID %q, first attempt sent %q", i, id, ids[0])
		}
	}
}

// TestCallerRequestIDPropagated: a sanitized caller-supplied request ID on
// the context becomes the wire ID (and trace ID) verbatim.
func TestCallerRequestIDPropagated(t *testing.T) {
	var got string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get("X-Request-ID")
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	c := New(srv.URL, WithMetrics(nil))
	ctx := obs.WithRequestID(context.Background(), "caller-chosen-7")
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	if got != "caller-chosen-7" {
		t.Errorf("wire X-Request-ID = %q, want caller-chosen-7", got)
	}
}

// TestClientCallSpans: with a process tracer installed, one call that
// retries twice yields one trace: a client span with three attempt
// children (status/error attrs) and two backoff children.
func TestClientCallSpans(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls < 3 {
			http.Error(w, "saturated", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	tr := obs.NewTracer(obs.TracerOptions{SampleRate: 1})
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	c := New(srv.URL, WithBackoff(time.Millisecond, 2*time.Millisecond), WithMetrics(nil))
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(traces))
	}
	root := traces[0].Root()
	if root.Name() != "client./healthz" {
		t.Fatalf("root span = %q, want client./healthz", root.Name())
	}
	var attempts, backoffs int
	for _, child := range root.Children() {
		switch child.Name() {
		case "attempt":
			attempts++
		case "backoff":
			backoffs++
		default:
			t.Errorf("unexpected child span %q", child.Name())
		}
	}
	if attempts != 3 || backoffs != 2 {
		t.Errorf("got %d attempt / %d backoff spans, want 3 / 2", attempts, backoffs)
	}
	// Attempts are ordered and numbered; failures carry the status.
	kids := root.Children()
	firstAttempt := kids[0]
	sawStatus := false
	for _, a := range firstAttempt.Attrs() {
		if a.Key == "status" && a.Value == http.StatusTooManyRequests {
			sawStatus = true
		}
	}
	if !sawStatus {
		t.Errorf("first attempt span lacks status=429 attr: %v", firstAttempt.Attrs())
	}
}
