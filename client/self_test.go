package client

// Acceptance test of the self-telemetry client verbs against the real
// service: snapshot the server twice, list the series, and diff the two
// runs server-side.

import (
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"
	"time"

	"cube/internal/server"
	"cube/internal/store"
)

// selfHandler builds the real service with store + manual self-telemetry.
func selfHandler(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.DefaultConfig()
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	cfg.Store = st
	cfg.Debug = true
	cfg.SelfKeep = 4
	srv := httptest.NewServer(server.NewHandler(cfg))
	t.Cleanup(srv.Close)
	return srv
}

func TestSelfSnapshotSeriesDiff(t *testing.T) {
	srv := selfHandler(t)
	c := New(srv.URL, WithBackoff(time.Millisecond, 10*time.Millisecond))
	ctx := context.Background()

	before, err := c.SelfSeries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !before.Enabled || len(before.Runs) != 0 {
		t.Fatalf("initial series = %+v, want enabled and empty", before)
	}

	run1, err := c.SelfSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Traffic between the runs, so run2's request counters differ.
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	run2, err := c.SelfSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if run2.Seq != run1.Seq+1 {
		t.Fatalf("seq did not advance: %d then %d", run1.Seq, run2.Seq)
	}
	if run1.Digest == "" || run1.Digest == run2.Digest {
		t.Fatalf("digests %q / %q, want distinct non-empty", run1.Digest, run2.Digest)
	}

	series, err := c.SelfSeries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Runs) != 2 || series.Runs[1].Seq != run2.Seq {
		t.Fatalf("series runs = %+v, want [run1 run2]", series.Runs)
	}

	d, err := c.SelfDiff(ctx, run2.Digest, run1.Digest, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Derived || d.Operation != "difference" {
		t.Errorf("diff = %q op %q, want a derived difference", d.Title, d.Operation)
	}
}

func TestSelfSeriesDisabled(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	cfg.Debug = true
	srv := httptest.NewServer(server.NewHandler(cfg))
	defer srv.Close()
	c := New(srv.URL, WithBackoff(time.Millisecond, 10*time.Millisecond))
	s, err := c.SelfSeries(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s.Enabled {
		t.Error("self series reports enabled on an unconfigured server")
	}
}
