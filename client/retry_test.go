package client

// Regression tests for the Retry-After parser (both RFC 9110 forms) and
// for Stat's handling of a HEAD response that omits Content-Length.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func respWithRetryAfter(v string) *http.Response {
	h := make(http.Header)
	if v != "" {
		h.Set("Retry-After", v)
	}
	return &http.Response{Header: h}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", -1}, // absent: caller falls back to backoff
		{"0", 0}, // retry now (still backed off by the caller)
		{"5", 5 * time.Second},
		{"-3", -1},   // negative seconds are not a valid form
		{"soon", -1}, // garbage
	}
	for _, c := range cases {
		if got := retryAfter(respWithRetryAfter(c.header)); got != c.want {
			t.Errorf("retryAfter(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

// The HTTP-date form: a date in the past means "retry immediately" (0,
// never negative), a future date yields the remaining wait.
func TestRetryAfterHTTPDate(t *testing.T) {
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if got := retryAfter(respWithRetryAfter(past)); got != 0 {
		t.Errorf("past HTTP-date: retryAfter = %v, want 0 (retry now)", got)
	}
	future := time.Now().Add(time.Hour).UTC().Format(http.TimeFormat)
	got := retryAfter(respWithRetryAfter(future))
	if got <= 59*time.Minute || got > time.Hour {
		t.Errorf("future HTTP-date: retryAfter = %v, want ~1h", got)
	}
}

// A 2xx HEAD whose Content-Length is absent must not report size 0 as
// truth: the blob exists but its size is unknown.
func TestStatUnknownSize(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodHead {
			http.Error(w, "want HEAD", http.StatusMethodNotAllowed)
			return
		}
		w.WriteHeader(http.StatusOK) // no Content-Length header
	}))
	defer srv.Close()
	c := fastClient(srv.URL)
	_, err := c.Stat(context.Background(), strings.Repeat("a", 64))
	if !errors.Is(err, ErrUnknownSize) {
		t.Fatalf("Stat without Content-Length: err = %v, want ErrUnknownSize", err)
	}
	if errors.Is(err, ErrNotStored) {
		t.Error("unknown size must not masquerade as absence")
	}
}
