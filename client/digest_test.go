package client

import (
	"context"
	"crypto/sha256"
	"encoding/base64"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestUploadsCarryContentDigest verifies every multipart operand part is
// sent with an RFC 9530 Content-Digest header whose sha-256 value matches
// the part's bytes.
func TestUploadsCarryContentDigest(t *testing.T) {
	var digests, wants []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mr, err := r.MultipartReader()
		if err != nil {
			t.Errorf("multipart: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for {
			part, err := mr.NextPart()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Errorf("part: %v", err)
				break
			}
			data, err := io.ReadAll(part)
			if err != nil {
				t.Errorf("read part: %v", err)
				break
			}
			sum := sha256.Sum256(data)
			digests = append(digests, part.Header.Get("Content-Digest"))
			wants = append(wants, "sha-256=:"+base64.StdEncoding.EncodeToString(sum[:])+":")
		}
		io.WriteString(w, "ok\n")
	}))
	defer srv.Close()

	a, b := testExp("a", 0), testExp("b", 0.25)
	if _, err := fastClient(srv.URL).Op(context.Background(), "difference", nil, a, b); err != nil {
		// The fake server returns "ok\n", not a cube document, so the
		// client's decode fails — the upload itself is what's under test.
		t.Logf("op (expected decode failure): %v", err)
	}
	if len(digests) != 2 {
		t.Fatalf("saw %d operand parts, want 2", len(digests))
	}
	for i := range digests {
		if digests[i] == "" {
			t.Errorf("part %d: no Content-Digest header", i)
			continue
		}
		if digests[i] != wants[i] {
			t.Errorf("part %d: Content-Digest = %q, want %q", i, digests[i], wants[i])
		}
	}
}
