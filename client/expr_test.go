package client

// Acceptance test of the expression client: build a DAG with a shared
// subexpression, evaluate it server-side in one round trip, and check the
// result and the server's CSE/cache summary against local operators.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cube"
	"cube/internal/server"
)

func TestExprByDigest(t *testing.T) {
	a, b := testExp("a", 0.25), testExp("b", 0)
	d, _ := cube.Difference(a, b, nil)
	sc, _ := cube.Scale(d, 2, nil)
	want, _ := cube.Mean(nil, d, sc)

	srv := httptest.NewServer(storeHandler(t))
	defer srv.Close()
	c := fastClient(srv.URL)
	ctx := context.Background()

	da, err := c.Put(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := c.Put(ctx, b)
	if err != nil {
		t.Fatal(err)
	}

	// The shared node appears under two parents; the server must see one.
	diff := DifferenceExpr(DigestRef(da), DigestRef(db))
	root := MeanExpr(diff, ScaleExpr(diff, 2))
	got, st, err := c.ExprStats(ctx, root, nil)
	if err != nil {
		t.Fatalf("Expr: %v", err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("remote expression differs from local composition")
	}
	if st.CSEHits != 1 || st.Nodes != 5 || st.Cached {
		t.Errorf("stats = %+v, want {Nodes:5 CSEHits:1 Cached:false}", st)
	}

	// The identical DAG replayed is a result-cache hit.
	got2, st2, err := c.ExprStats(ctx, root, nil)
	if err != nil {
		t.Fatalf("Expr replay: %v", err)
	}
	if !st2.Cached {
		t.Error("replayed expression was not served from the result cache")
	}
	if got2.Fingerprint() != want.Fingerprint() {
		t.Error("replayed result differs")
	}

	// A missing digest surfaces as ErrNotStored.
	if _, err := c.Expr(ctx, FlattenExpr(DigestRef(strings.Repeat("0", 64))), nil); !errors.Is(err, ErrNotStored) {
		t.Errorf("missing digest: %v, want ErrNotStored", err)
	}
}

func TestExprInlineOperands(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := httptest.NewServer(server.NewHandler(cfg))
	defer srv.Close()
	c := fastClient(srv.URL)
	ctx := context.Background()

	a, b := testExp("a", 0.5), testExp("b", 0)
	want, _ := cube.Difference(a, b, nil)
	got, err := c.Expr(ctx, DifferenceExpr(OperandRef(0), OperandRef(1)), nil, a, b)
	if err != nil {
		t.Fatalf("Expr with inline operands: %v", err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("inline-operand expression differs from local operator")
	}

	// Parameterized unary operators round-trip their parameters.
	pr, err := c.Expr(ctx, PruneExpr(OperandRef(0), "Time", 0.5), nil, a)
	if err != nil {
		t.Fatalf("prune expr: %v", err)
	}
	if pr.Operation != "prune" {
		t.Errorf("prune provenance lost (op %q)", pr.Operation)
	}
	ex, err := c.Expr(ctx, ExtractExpr(OperandRef(0), "Time/Wait"), nil, a)
	if err != nil {
		t.Fatalf("extract expr: %v", err)
	}
	if roots := ex.MetricRoots(); len(roots) != 1 || roots[0].Name != "Wait" {
		t.Error("extract expr picked the wrong subtree")
	}
}

// Shared subtrees are emitted once on the wire as defs, so a diamond-heavy
// DAG marshals in linear size.
func TestExprMarshalSharing(t *testing.T) {
	leafd := strings.Repeat("ab", 32)
	n := DifferenceExpr(DigestRef(leafd), DigestRef(leafd))
	for i := 0; i < 20; i++ {
		n = SumExpr(n, n) // 2^20 paths if expanded as a tree
	}
	doc, err := marshalExpr(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc) > 8<<10 {
		t.Fatalf("diamond DAG marshalled to %d bytes: sharing not preserved", len(doc))
	}
	var req struct {
		Defs map[string]json.RawMessage `json:"defs"`
		Expr json.RawMessage            `json:"expr"`
	}
	if err := json.Unmarshal(doc, &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Defs) != 20 || req.Expr == nil {
		t.Errorf("defs = %d, want 20 hoisted shared nodes", len(req.Defs))
	}

	// And the server accepts the def form: evaluate a small shared DAG.
	srv := httptest.NewServer(storeHandler(t))
	defer srv.Close()
	c := New(srv.URL, WithMaxRetries(1), WithBackoff(time.Millisecond, 10*time.Millisecond))
	ctx := context.Background()
	a := testExp("a", 0.25)
	da, err := c.Put(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	s := SumExpr(DigestRef(da), DigestRef(da))
	got, st, err := c.ExprStats(ctx, MeanExpr(s, s, s), nil)
	if err != nil {
		t.Fatalf("Expr with defs: %v", err)
	}
	sl, _ := cube.Sum(nil, a, a)
	want, _ := cube.Mean(nil, sl, sl, sl)
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("def-form expression differs from local composition")
	}
	if st.CSEHits != 2 {
		t.Errorf("CSEHits = %d, want 2 (sum referenced three times)", st.CSEHits)
	}
}

func TestExprMarshalErrors(t *testing.T) {
	if _, err := marshalExpr(nil); err == nil {
		t.Error("nil root: want error")
	}
	if _, err := marshalExpr(SumExpr(nil)); err == nil {
		t.Error("nil child: want error")
	}
	c := New("http://127.0.0.1:0", WithMaxRetries(0))
	if _, err := c.Expr(context.Background(), nil, nil); err == nil {
		t.Error("Expr(nil): want error")
	}
}

// ExprMulti evaluates several roots over one shared DAG in a single
// round trip: one experiment per root, in order, with shared
// subexpressions hoisted into one def on the wire.
func TestExprMulti(t *testing.T) {
	a, b := testExp("a", 0.25), testExp("b", 0)
	d, _ := cube.Difference(a, b, nil)
	sc, _ := cube.Scale(d, 2, nil)

	srv := httptest.NewServer(storeHandler(t))
	defer srv.Close()
	c := fastClient(srv.URL)
	ctx := context.Background()

	da, err := c.Put(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := c.Put(ctx, b)
	if err != nil {
		t.Fatal(err)
	}

	diff := DifferenceExpr(DigestRef(da), DigestRef(db))
	outs, st, err := c.ExprMulti(ctx, []*ExprNode{diff, ScaleExpr(diff, 2)}, nil)
	if err != nil {
		t.Fatalf("ExprMulti: %v", err)
	}
	if len(outs) != 2 {
		t.Fatalf("got %d results, want 2", len(outs))
	}
	if outs[0].Fingerprint() != d.Fingerprint() {
		t.Error("root 0 differs from local difference")
	}
	if outs[1].Fingerprint() != sc.Fingerprint() {
		t.Error("root 1 differs from local scale")
	}
	if st.Nodes == 0 {
		t.Errorf("stats = %+v, want a populated node count", st)
	}

	// Inline operands work through the same batched path.
	outs2, _, err := c.ExprMulti(ctx,
		[]*ExprNode{DifferenceExpr(OperandRef(0), OperandRef(1)), SumExpr(OperandRef(0), OperandRef(1))},
		nil, a, b)
	if err != nil {
		t.Fatalf("ExprMulti inline: %v", err)
	}
	sum, _ := cube.Sum(nil, a, b)
	if outs2[0].Fingerprint() != d.Fingerprint() || outs2[1].Fingerprint() != sum.Fingerprint() {
		t.Error("inline-operand batched results differ from local operators")
	}

	// A single-root batch answers as a plain XML body, not multipart —
	// ExprMulti still returns it as a one-element slice.
	outs3, _, err := c.ExprMulti(ctx, []*ExprNode{DifferenceExpr(DigestRef(da), DigestRef(db))}, nil)
	if err != nil {
		t.Fatalf("ExprMulti single root: %v", err)
	}
	if len(outs3) != 1 || outs3[0].Fingerprint() != d.Fingerprint() {
		t.Fatalf("single-root batch: got %d results, want the local difference", len(outs3))
	}
}

// The batched wire form hoists nodes shared across roots into defs.
func TestExprMultiMarshalSharing(t *testing.T) {
	shared := DifferenceExpr(DigestRef(strings.Repeat("ab", 32)), DigestRef(strings.Repeat("cd", 32)))
	doc, err := marshalExprMulti([]*ExprNode{FlattenExpr(shared), ScaleExpr(shared, 2)})
	if err != nil {
		t.Fatal(err)
	}
	var wire struct {
		Defs  map[string]json.RawMessage `json:"defs"`
		Roots []json.RawMessage          `json:"roots"`
	}
	if err := json.Unmarshal(doc, &wire); err != nil {
		t.Fatal(err)
	}
	if len(wire.Defs) != 1 {
		t.Errorf("shared cross-root node hoisted into %d defs, want 1", len(wire.Defs))
	}
	if len(wire.Roots) != 2 {
		t.Errorf("wire carries %d roots, want 2", len(wire.Roots))
	}
	if n := strings.Count(string(doc), `"difference"`); n != 1 {
		t.Errorf("difference emitted %d times on the wire, want 1", n)
	}
}
