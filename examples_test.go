// Regression tests for the runnable examples: each one must build, run to
// completion, and print its headline output. This keeps the documentation
// executable.
package cube_test

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("runs example binaries")
	}
	cmd := exec.Command("go", "run", "./examples/"+name)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("example %s: %v\n%s", name, err, out)
	}
	return string(out)
}

func TestExampleQuickstart(t *testing.T) {
	out := runExample(t, "quickstart")
	for _, want := range []string{"derived experiment", "round-trip", "composite"} {
		if !strings.Contains(out, want) {
			t.Errorf("quickstart lacks %q", want)
		}
	}
}

func TestExamplePescanDiff(t *testing.T) {
	out := runExample(t, "pescan-diff")
	for _, want := range []string{"side-by-side", "Wait at Barrier", "gross balance", "derived: difference"} {
		if !strings.Contains(out, want) {
			t.Errorf("pescan-diff lacks %q", want)
		}
	}
}

func TestExampleSweep3DMerge(t *testing.T) {
	out := runExample(t, "sweep3d-merge")
	for _, want := range []string{"2 measurement runs", "PAPI_L1_DCM", "MPI_Recv", `Topology "sweep grid"`} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep3d-merge lacks %q", want)
		}
	}
}

func TestExampleNoiseMean(t *testing.T) {
	out := runExample(t, "noise-mean")
	for _, want := range []string{"difference of", "element-wise minimum"} {
		if !strings.Contains(out, want) {
			t.Errorf("noise-mean lacks %q", want)
		}
	}
}

func TestExampleCounterSplit(t *testing.T) {
	out := runExample(t, "counter-split")
	for _, want := range []string{"measurement plan", "hits (exclusive)", "miss rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("counter-split lacks %q", want)
		}
	}
}

func TestExampleHybridOMP(t *testing.T) {
	out := runExample(t, "hybrid-omp")
	for _, want := range []string{"idle threads", "OMP join waiting", "thread 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("hybrid-omp lacks %q", want)
		}
	}
}

func TestExampleModelVsMeasured(t *testing.T) {
	out := runExample(t, "model-vs-measured")
	for _, want := range []string{"model explains", "residual", "MPI_Barrier"} {
		if !strings.Contains(out, want) {
			t.Errorf("model-vs-measured lacks %q", want)
		}
	}
}

func TestExampleScalingStudy(t *testing.T) {
	out := runExample(t, "scaling-study")
	for _, want := range []string{"MPI fraction", "summary experiment", "noise at np=16"} {
		if !strings.Contains(out, want) {
			t.Errorf("scaling-study lacks %q", want)
		}
	}
}

func TestExampleServiceClient(t *testing.T) {
	out := runExample(t, "service-client")
	for _, want := range []string{"cube service listening", "derived experiment", "top 1 severities"} {
		if !strings.Contains(out, want) {
			t.Errorf("service-client lacks %q", want)
		}
	}
}
