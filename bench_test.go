// Benchmark harness: one benchmark per evaluation artifact of the paper
// (Figures 1-3, the §5.1 speedup table, the §5.2 trace-size comparison)
// plus scaling sweeps for the algebra's operators and ablations of design
// choices called out in DESIGN.md. Reported custom metrics carry the
// reproduced values so a -bench run doubles as a regeneration of the
// paper's numbers:
//
//	go test -bench=. -benchmem
package cube_test

import (
	"fmt"
	"io"
	"testing"

	"cube"
	"cube/internal/core"
	"cube/internal/cubexml"
	"cube/internal/repro"
)

// --- Paper artifacts ----------------------------------------------------------

// BenchmarkFig1_PescanExpertPipeline regenerates Figure 1: simulate the
// unoptimized PESCAN run, analyze the trace, select Wait-at-Barrier. The
// reported wait_pct metric corresponds to the paper's 13.2 %.
func BenchmarkFig1_PescanExpertPipeline(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		r, err := repro.Fig1(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		pct = r.WaitAtBarrierPct
	}
	b.ReportMetric(pct, "wait_pct")
}

// BenchmarkFig2_Difference regenerates Figure 2's difference experiment
// from two pre-analyzed runs (the operator itself is what Figure 2 adds
// over Figure 1, so only the operator is in the timed loop).
func BenchmarkFig2_Difference(b *testing.B) {
	r, err := repro.Fig2(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var gross float64
	for i := 0; i < b.N; i++ {
		d, err := cube.Difference(r.Before, r.After, nil)
		if err != nil {
			b.Fatal(err)
		}
		gross = d.MetricInclusive(d.FindMetricByName("Time"))
	}
	oldTotal := r.Before.MetricInclusive(r.Before.FindMetricByName("Time"))
	b.ReportMetric(100*gross/oldTotal, "gross_gain_pct")
}

// BenchmarkSolverSpeedupSeries regenerates the §5.1 measurement: two
// series of solver runs, minimum as representative. speedup_pct
// corresponds to the paper's ~16 %.
func BenchmarkSolverSpeedupSeries(b *testing.B) {
	var sp float64
	for i := 0; i < b.N; i++ {
		r, err := repro.Speedup(repro.PaperValues.SeriesRuns, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		sp = r.SpeedupPct
	}
	b.ReportMetric(sp, "speedup_pct")
}

// BenchmarkFig3_MergeConeExpert regenerates Figure 3: one EXPERT
// measurement, two conflict-split CONE measurements, one merge.
func BenchmarkFig3_MergeConeExpert(b *testing.B) {
	var conc float64
	for i := 0; i < b.N; i++ {
		r, err := repro.Fig3(int64(i+1), 1)
		if err != nil {
			b.Fatal(err)
		}
		conc = r.L1MissAtRecvPct
	}
	b.ReportMetric(conc, "l1dcm_at_recv_pct")
}

// BenchmarkTraceSizeAblation regenerates the §5.2 size comparison:
// trace-with-counters vs plain trace vs CONE profile.
func BenchmarkTraceSizeAblation(b *testing.B) {
	var r *repro.TraceSizeResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = repro.TraceSize(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.CounterTraceBytes), "trace+cnt_B")
	b.ReportMetric(float64(r.PlainTraceBytes), "trace_B")
	b.ReportMetric(float64(r.ProfileBytes), "profile_B")
}

// --- Operator scaling sweeps ----------------------------------------------------

// synthetic builds an experiment with the given dimension sizes; shift
// perturbs severities and call-site naming so that two synthetics are
// related but not identical.
func synthetic(metrics, cnodes, threads, shift int) *core.Experiment {
	e := core.New(fmt.Sprintf("synth-%d-%d-%d-%d", metrics, cnodes, threads, shift))
	root := e.NewMetric("Time", core.Seconds, "")
	ms := []*core.Metric{root}
	for i := 1; i < metrics; i++ {
		parent := ms[i/2]
		ms = append(ms, parent.NewChild(fmt.Sprintf("m%d", i), ""))
	}
	mainR := e.NewRegion("main", "app", 0, 0)
	croot := e.NewCallRoot(e.NewCallSite("app", 0, mainR))
	cs := []*core.CallNode{croot}
	for i := 1; i < cnodes; i++ {
		reg := e.NewRegion(fmt.Sprintf("f%d", i+shift%3), "app", i, 0)
		parent := cs[i/2]
		cs = append(cs, parent.NewChild(e.NewCallSite("app", i, reg)))
	}
	e.Invalidate()
	ths := e.SingleThreadedSystem("mach", 4, threads)
	for mi, m := range ms {
		for ci, c := range cs {
			for ti, th := range ths {
				if (mi+ci+ti)%3 == 0 {
					e.SetSeverity(m, c, th, float64(mi*ci+ti+shift)+0.5)
				}
			}
		}
	}
	return e
}

func benchOp(b *testing.B, metrics, cnodes, threads int,
	op func(a, x *core.Experiment) (*core.Experiment, error)) {
	a := synthetic(metrics, cnodes, threads, 0)
	x := synthetic(metrics, cnodes, threads, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := op(a, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDifference_16x64x16(b *testing.B) {
	benchOp(b, 16, 64, 16, func(a, x *core.Experiment) (*core.Experiment, error) {
		return core.Difference(a, x, nil)
	})
}

func BenchmarkDifference_64x512x64(b *testing.B) {
	benchOp(b, 64, 512, 64, func(a, x *core.Experiment) (*core.Experiment, error) {
		return core.Difference(a, x, nil)
	})
}

func BenchmarkMerge_16x64x16(b *testing.B) {
	benchOp(b, 16, 64, 16, func(a, x *core.Experiment) (*core.Experiment, error) {
		return core.Merge(a, x, nil)
	})
}

func BenchmarkMerge_64x512x64(b *testing.B) {
	benchOp(b, 64, 512, 64, func(a, x *core.Experiment) (*core.Experiment, error) {
		return core.Merge(a, x, nil)
	})
}

func BenchmarkMean2_16x64x16(b *testing.B) {
	benchOp(b, 16, 64, 16, func(a, x *core.Experiment) (*core.Experiment, error) {
		return core.Mean(nil, a, x)
	})
}

func BenchmarkMean8_16x64x16(b *testing.B) {
	xs := make([]*core.Experiment, 8)
	for i := range xs {
		xs[i] = synthetic(16, 64, 16, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Mean(nil, xs...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMin_16x64x16(b *testing.B) {
	benchOp(b, 16, 64, 16, func(a, x *core.Experiment) (*core.Experiment, error) {
		return core.Min(nil, a, x)
	})
}

func BenchmarkStdDev8_16x64x16(b *testing.B) {
	xs := make([]*core.Experiment, 8)
	for i := range xs {
		xs[i] = synthetic(16, 64, 16, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.StdDev(nil, xs...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlatten_16x64x16(b *testing.B) {
	e := synthetic(16, 64, 16, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Flatten(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrune_16x64x16(b *testing.B) {
	e := synthetic(16, 64, 16, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Prune(e, "Time", 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine ablation -------------------------------------------------------------

// Legacy-engine companions of the kernel-path benchmarks above: the same
// operand shapes driven through the original pointer-map walk
// (core.EngineLegacy), so a single -bench run reports the kernel layer's
// speedup directly.
func BenchmarkDifferenceLegacy_64x512x64(b *testing.B) {
	benchOp(b, 64, 512, 64, func(a, x *core.Experiment) (*core.Experiment, error) {
		return core.Difference(a, x, &core.Options{Engine: core.EngineLegacy})
	})
}

func BenchmarkMean8Legacy_16x64x16(b *testing.B) {
	xs := make([]*core.Experiment, 8)
	for i := range xs {
		xs[i] = synthetic(16, 64, 16, i)
	}
	opts := &core.Options{Engine: core.EngineLegacy}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Mean(opts, xs...); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -------------------------------------------------------------------

// Call-tree matching ablation (DESIGN.md): the default callee-based
// equality tolerates line-number changes across code versions; the
// callee+line relation is stricter and yields larger integrated trees when
// lines differ.
func BenchmarkMergeCalleeMatch(b *testing.B) {
	x := synthetic(16, 128, 16, 0)
	y := synthetic(16, 128, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Merge(x, y, &core.Options{CallMatch: core.CallMatchCallee}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeCalleeLineMatch(b *testing.B) {
	x := synthetic(16, 128, 16, 0)
	y := synthetic(16, 128, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Merge(x, y, &core.Options{CallMatch: core.CallMatchCalleeLine}); err != nil {
			b.Fatal(err)
		}
	}
}

// Dense-array iteration versus the sparse map store (DESIGN.md: the paper
// stores severities as a dense 3-D array; this library keeps a sparse
// canonical store and materialises dense snapshots on demand).
func BenchmarkSeverityDenseSnapshot(b *testing.B) {
	e := synthetic(32, 256, 32, 0)
	b.ResetTimer()
	var sum float64
	for i := 0; i < b.N; i++ {
		d := e.Dense()
		for _, plane := range d.Values {
			for _, row := range plane {
				for _, v := range row {
					sum += v
				}
			}
		}
	}
	_ = sum
}

func BenchmarkSeveritySparseIteration(b *testing.B) {
	e := synthetic(32, 256, 32, 0)
	b.ResetTimer()
	var sum float64
	for i := 0; i < b.N; i++ {
		e.EachSeverity(func(_ *core.Metric, _ *core.CallNode, _ *core.Thread, v float64) {
			sum += v
		})
	}
	_ = sum
}

func BenchmarkSeverityRandomAccess(b *testing.B) {
	e := synthetic(32, 256, 32, 0)
	ms, cs, ths := e.Metrics(), e.CallNodes(), e.Threads()
	b.ResetTimer()
	var sum float64
	for i := 0; i < b.N; i++ {
		sum += e.Severity(ms[i%len(ms)], cs[i%len(cs)], ths[i%len(ths)])
	}
	_ = sum
}

// --- File format ------------------------------------------------------------------

func BenchmarkXMLWrite(b *testing.B) {
	e := synthetic(32, 256, 32, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cubexml.Write(io.Discard, e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXMLRoundTrip(b *testing.B) {
	e := synthetic(16, 64, 16, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeBuffer
		if err := cubexml.Write(&buf, e); err != nil {
			b.Fatal(err)
		}
		if _, err := cubexml.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// writeBuffer is a minimal in-memory read/write buffer.
type writeBuffer struct {
	data []byte
	off  int
}

func (w *writeBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

func (w *writeBuffer) Read(p []byte) (int, error) {
	if w.off >= len(w.data) {
		return 0, io.EOF
	}
	n := copy(p, w.data[w.off:])
	w.off += n
	return n, nil
}
