package trace

import (
	"fmt"
	"io"
	"strings"
)

// CommMatrix summarises the point-to-point communication of a trace as
// rank-by-rank matrices: message counts and transferred bytes from sender
// (row) to receiver (column), counted at the Send records.
type CommMatrix struct {
	NumRanks int
	Messages [][]int64
	Bytes    [][]int64
}

// BuildCommMatrix scans the trace's Send records.
func (t *Trace) BuildCommMatrix() *CommMatrix {
	m := &CommMatrix{NumRanks: t.NumRanks}
	m.Messages = make([][]int64, t.NumRanks)
	m.Bytes = make([][]int64, t.NumRanks)
	for i := range m.Messages {
		m.Messages[i] = make([]int64, t.NumRanks)
		m.Bytes[i] = make([]int64, t.NumRanks)
	}
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Kind != Send {
			continue
		}
		src, dst := int(ev.Rank), int(ev.Partner)
		if src < 0 || src >= t.NumRanks || dst < 0 || dst >= t.NumRanks {
			continue
		}
		m.Messages[src][dst]++
		m.Bytes[src][dst] += ev.Bytes
	}
	return m
}

// TotalMessages returns the number of point-to-point messages.
func (m *CommMatrix) TotalMessages() int64 {
	var s int64
	for _, row := range m.Messages {
		for _, v := range row {
			s += v
		}
	}
	return s
}

// TotalBytes returns the transferred point-to-point volume.
func (m *CommMatrix) TotalBytes() int64 {
	var s int64
	for _, row := range m.Bytes {
		for _, v := range row {
			s += v
		}
	}
	return s
}

// Render writes the matrix as an intensity map (digits 0-9 scaled to the
// largest cell, "." for empty cells), one row per sender, followed by the
// totals. Useful for spotting communication structure (rings, grids,
// wavefronts) at a glance.
func (m *CommMatrix) Render(w io.Writer, byBytes bool) error {
	cells := m.Messages
	what := "messages"
	if byBytes {
		cells = m.Bytes
		what = "bytes"
	}
	var max int64
	for _, row := range cells {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	if _, err := fmt.Fprintf(w, "p2p %s matrix (%d ranks, max cell %d):\n", what, m.NumRanks, max); err != nil {
		return err
	}
	for src, row := range cells {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%4d |", src)
		for _, v := range row {
			switch {
			case v == 0:
				sb.WriteString(" .")
			case max > 0:
				fmt.Fprintf(&sb, " %d", (v*9+max-1)/max)
			}
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "total: %d messages, %d bytes\n", m.TotalMessages(), m.TotalBytes())
	return err
}
