// Package trace models event traces of message-passing programs in the
// style of the EPILOG format consumed by EXPERT: time-stamped events — such
// as entering a function or sending a message — are recorded as the target
// application runs and later searched for execution patterns that indicate
// inefficient behaviour.
//
// Traces optionally carry hardware-counter values as part of every
// enter/exit record. The paper's §5.2 points out that doing so "can
// increase trace-file size dramatically"; the binary encoding in this
// package makes that cost measurable, motivating the CUBE merge operator
// (record counters separately as a compact call-graph profile and merge).
package trace

import (
	"fmt"
	"sort"
)

// Kind discriminates event records.
type Kind uint8

// Event kinds.
const (
	// Enter records entry into a region.
	Enter Kind = iota
	// Exit records leaving a region. Exits from collective-operation
	// regions carry collective metadata (Coll, CollSeq, Root, Bytes).
	Exit
	// Send records the start of a point-to-point message transmission.
	Send
	// Recv records the completion of a point-to-point message receipt.
	Recv
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Enter:
		return "ENTER"
	case Exit:
		return "EXIT"
	case Send:
		return "SEND"
	case Recv:
		return "RECV"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// CollKind identifies the collective operation an Exit event completes.
type CollKind uint8

// Collective kinds. CollNone marks exits from non-collective regions.
const (
	CollNone CollKind = iota
	CollBarrier
	CollAllToAll
	CollAllReduce
	CollBcast
	CollReduce
	// CollOMPBarrier marks the implicit join barrier at the end of an
	// OpenMP parallel region; its participants are the threads of one
	// process (CollSeq numbers the instance within that process).
	CollOMPBarrier
	// CollAllGather is the N-to-N gather collective.
	CollAllGather
)

// String implements fmt.Stringer.
func (c CollKind) String() string {
	switch c {
	case CollNone:
		return "none"
	case CollBarrier:
		return "barrier"
	case CollAllToAll:
		return "alltoall"
	case CollAllReduce:
		return "allreduce"
	case CollBcast:
		return "bcast"
	case CollReduce:
		return "reduce"
	case CollOMPBarrier:
		return "omp-barrier"
	case CollAllGather:
		return "allgather"
	}
	return fmt.Sprintf("CollKind(%d)", uint8(c))
}

// NoPartner marks message fields of non-message events.
const NoPartner int32 = -1

// OpenMP region naming conventions shared by trace producers and analyzers.
const (
	// OMPPrefix prefixes the region name of every OpenMP parallel region.
	OMPPrefix = "!$omp parallel "
	// OMPBarrierRegion names the implicit barrier joining a parallel
	// region.
	OMPBarrierRegion = "!$omp ibarrier"
)

// IsOMPParallel reports whether a region name denotes an OpenMP parallel
// region.
func IsOMPParallel(name string) bool {
	return len(name) >= len(OMPPrefix) && name[:len(OMPPrefix)] == OMPPrefix
}

// Event is one trace record.
type Event struct {
	// Kind discriminates the record.
	Kind Kind
	// Time is seconds since the start of the run.
	Time float64
	// Rank and Thread locate the event in the system dimension.
	Rank   int32
	Thread int32
	// Region indexes the trace's region table for Enter/Exit; -1 for
	// message records (they occur inside the enclosing region).
	Region int32
	// Partner is the destination rank of a Send or source rank of a
	// Recv; NoPartner otherwise.
	Partner int32
	// Tag is the message tag of Send/Recv records.
	Tag int32
	// Bytes is the message volume of Send/Recv records and of collective
	// exits (bytes contributed by this rank).
	Bytes int64
	// Coll, CollSeq, and Root describe the collective instance an Exit
	// record completes: the operation, its per-communicator sequence
	// number (instance i of that collective), and the root rank where
	// applicable.
	Coll    CollKind
	CollSeq int32
	Root    int32
	// Counters holds cumulative hardware-counter values sampled at this
	// event, parallel to Trace.Counters; nil when the trace was recorded
	// without per-record counters.
	Counters []int64
	// Seq is a producer-local sequence number assigned by Append (and by
	// the binary reader in file order). It breaks timestamp ties so the
	// global event order is total and analysis is reproducible; it is
	// not serialised.
	Seq int64
}

// RegionInfo is an entry of the trace's region table.
type RegionInfo struct {
	Name   string
	Module string
	Line   int
}

// Trace is a complete event trace of one program run.
type Trace struct {
	// Program labels the traced application (e.g. "pescan").
	Program string
	// NumRanks is the number of processes of the run.
	NumRanks int
	// Counters names the hardware counters recorded in every enter/exit
	// record; empty for time-only traces.
	Counters []string
	// Regions is the region table referenced by Event.Region.
	Regions []RegionInfo
	// Events holds the records sorted by (Time, Rank) after Sort; the
	// producer may append in any order.
	Events []Event

	regionIndex map[string]int32
}

// New returns an empty trace for a run of the given program with np ranks.
func New(program string, np int) *Trace {
	return &Trace{Program: program, NumRanks: np, regionIndex: map[string]int32{}}
}

// DefineRegion interns a region in the region table and returns its index.
// Regions are deduplicated by (name, module).
func (t *Trace) DefineRegion(name, module string, line int) int32 {
	if t.regionIndex == nil {
		t.regionIndex = map[string]int32{}
		for i, r := range t.Regions {
			t.regionIndex[r.Name+"\x00"+r.Module] = int32(i)
		}
	}
	k := name + "\x00" + module
	if id, ok := t.regionIndex[k]; ok {
		return id
	}
	id := int32(len(t.Regions))
	t.Regions = append(t.Regions, RegionInfo{Name: name, Module: module, Line: line})
	t.regionIndex[k] = id
	return id
}

// RegionName returns the name for a region index, or "?" if out of range.
func (t *Trace) RegionName(id int32) string {
	if id < 0 || int(id) >= len(t.Regions) {
		return "?"
	}
	return t.Regions[id].Name
}

// Append adds an event record, assigning its sequence number.
func (t *Trace) Append(ev Event) {
	ev.Seq = int64(len(t.Events))
	t.Events = append(t.Events, ev)
}

// Sort orders the events by time, breaking ties by rank and sequence
// number, which yields a deterministic, reproducible global event stream
// like a merged EPILOG trace.
func (t *Trace) Sort() {
	sort.Slice(t.Events, func(i, j int) bool {
		a, b := &t.Events[i], &t.Events[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Seq < b.Seq
	})
}

// PerRank splits the event stream into one time-ordered sub-stream per rank
// (indices into Events).
func (t *Trace) PerRank() [][]int {
	out := make([][]int, t.NumRanks)
	for i := range t.Events {
		r := int(t.Events[i].Rank)
		if r >= 0 && r < t.NumRanks {
			out[r] = append(out[r], i)
		}
	}
	for r := range out {
		idx := out[r]
		sort.Slice(idx, func(a, b int) bool {
			ea, eb := &t.Events[idx[a]], &t.Events[idx[b]]
			if ea.Time != eb.Time {
				return ea.Time < eb.Time
			}
			return ea.Seq < eb.Seq
		})
	}
	return out
}

// PerLocation splits the event stream into one time-ordered sub-stream per
// location (rank, thread), indexed [rank][thread]. Every rank has at least
// one (possibly empty) thread-0 lane.
func (t *Trace) PerLocation() [][][]int {
	out := make([][][]int, t.NumRanks)
	for r := range out {
		out[r] = make([][]int, 1)
	}
	for i := range t.Events {
		ev := &t.Events[i]
		r, th := int(ev.Rank), int(ev.Thread)
		if r < 0 || r >= t.NumRanks || th < 0 {
			continue
		}
		for len(out[r]) <= th {
			out[r] = append(out[r], nil)
		}
		out[r][th] = append(out[r][th], i)
	}
	for r := range out {
		for th := range out[r] {
			idx := out[r][th]
			sort.Slice(idx, func(a, b int) bool {
				ea, eb := &t.Events[idx[a]], &t.Events[idx[b]]
				if ea.Time != eb.Time {
					return ea.Time < eb.Time
				}
				return ea.Seq < eb.Seq
			})
		}
	}
	return out
}

// ThreadsPerRank returns, for every rank, the number of threads that appear
// in the trace (at least one).
func (t *Trace) ThreadsPerRank() []int {
	out := make([]int, t.NumRanks)
	for i := range out {
		out[i] = 1
	}
	for i := range t.Events {
		ev := &t.Events[i]
		r := int(ev.Rank)
		if r >= 0 && r < t.NumRanks && int(ev.Thread) >= out[r] {
			out[r] = int(ev.Thread) + 1
		}
	}
	return out
}

// Duration returns the largest event timestamp (the run's end time).
func (t *Trace) Duration() float64 {
	var d float64
	for i := range t.Events {
		if t.Events[i].Time > d {
			d = t.Events[i].Time
		}
	}
	return d
}

// Validate checks structural trace sanity: events reference valid ranks and
// regions, per-rank enter/exit nesting is balanced and properly nested, and
// per-rank timestamps are non-decreasing. It returns the first violation.
func (t *Trace) Validate() error {
	for i := range t.Events {
		ev := &t.Events[i]
		if int(ev.Rank) < 0 || int(ev.Rank) >= t.NumRanks {
			return fmt.Errorf("trace: event %d has rank %d outside [0,%d)", i, ev.Rank, t.NumRanks)
		}
		switch ev.Kind {
		case Enter, Exit:
			if ev.Region < 0 || int(ev.Region) >= len(t.Regions) {
				return fmt.Errorf("trace: event %d (%v) has invalid region %d", i, ev.Kind, ev.Region)
			}
		case Send, Recv:
			if int(ev.Partner) < 0 || int(ev.Partner) >= t.NumRanks {
				return fmt.Errorf("trace: event %d (%v) has invalid partner %d", i, ev.Kind, ev.Partner)
			}
		default:
			return fmt.Errorf("trace: event %d has unknown kind %d", i, uint8(ev.Kind))
		}
		if len(ev.Counters) != 0 && len(ev.Counters) != len(t.Counters) {
			return fmt.Errorf("trace: event %d carries %d counter values, trace defines %d", i, len(ev.Counters), len(t.Counters))
		}
	}
	for rank, lanes := range t.PerLocation() {
		for th, idx := range lanes {
			var stack []int32
			last := -1.0
			for _, i := range idx {
				ev := &t.Events[i]
				if ev.Time < last {
					return fmt.Errorf("trace: rank %d thread %d time goes backwards at event %d (%.9f < %.9f)",
						rank, th, i, ev.Time, last)
				}
				last = ev.Time
				switch ev.Kind {
				case Enter:
					stack = append(stack, ev.Region)
				case Exit:
					if len(stack) == 0 {
						return fmt.Errorf("trace: rank %d thread %d exit from %q without enter", rank, th, t.RegionName(ev.Region))
					}
					top := stack[len(stack)-1]
					if top != ev.Region {
						return fmt.Errorf("trace: rank %d thread %d improperly nested exit: in %q, exiting %q",
							rank, th, t.RegionName(top), t.RegionName(ev.Region))
					}
					stack = stack[:len(stack)-1]
				}
			}
			if len(stack) != 0 {
				return fmt.Errorf("trace: rank %d thread %d ends with %d unclosed regions (innermost %q)",
					rank, th, len(stack), t.RegionName(stack[len(stack)-1]))
			}
		}
	}
	return nil
}

// Stats summarises a trace.
type Stats struct {
	Events      int
	Enters      int
	Exits       int
	Sends       int
	Recvs       int
	Collectives int
	Duration    float64
	// EncodedBytes is the size of the binary encoding of the trace.
	EncodedBytes int
}

// ComputeStats summarises the trace, including its binary encoding size.
func (t *Trace) ComputeStats() Stats {
	s := Stats{Events: len(t.Events), Duration: t.Duration()}
	for i := range t.Events {
		switch t.Events[i].Kind {
		case Enter:
			s.Enters++
		case Exit:
			s.Exits++
			if t.Events[i].Coll != CollNone {
				s.Collectives++
			}
		case Send:
			s.Sends++
		case Recv:
			s.Recvs++
		}
	}
	s.EncodedBytes = t.EncodedSize()
	return s
}
