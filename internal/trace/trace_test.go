package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildPingPong constructs a tiny valid 2-rank trace:
//
//	rank 0: ENTER main, SEND, ENTER recvreg? -- kept simple:
//	rank 0: main{ send(1), recv(1) }, rank 1: main{ recv(0), send(0) }
func buildPingPong(withCounters bool) *Trace {
	t := New("pingpong", 2)
	if withCounters {
		t.Counters = []string{"C1", "C2"}
	}
	mainID := t.DefineRegion("main", "app", 1)
	sendID := t.DefineRegion("MPI_Send", "libmpi", 0)
	recvID := t.DefineRegion("MPI_Recv", "libmpi", 0)
	cnt := func(a, b int64) []int64 {
		if !withCounters {
			return nil
		}
		return []int64{a, b}
	}
	ev := []Event{
		{Kind: Enter, Time: 0.0, Rank: 0, Region: mainID, Partner: NoPartner, Counters: cnt(0, 0)},
		{Kind: Enter, Time: 0.0, Rank: 1, Region: mainID, Partner: NoPartner, Counters: cnt(0, 0)},
		{Kind: Enter, Time: 0.1, Rank: 0, Region: sendID, Partner: NoPartner, Counters: cnt(10, 5)},
		{Kind: Send, Time: 0.1, Rank: 0, Partner: 1, Tag: 7, Bytes: 1024, Region: -1},
		{Kind: Exit, Time: 0.11, Rank: 0, Region: sendID, Partner: NoPartner, Counters: cnt(12, 6)},
		{Kind: Enter, Time: 0.05, Rank: 1, Region: recvID, Partner: NoPartner, Counters: cnt(3, 3)},
		{Kind: Recv, Time: 0.15, Rank: 1, Partner: 0, Tag: 7, Bytes: 1024, Region: -1},
		{Kind: Exit, Time: 0.15, Rank: 1, Region: recvID, Partner: NoPartner, Counters: cnt(9, 8)},
		{Kind: Exit, Time: 0.3, Rank: 0, Region: mainID, Partner: NoPartner, Counters: cnt(20, 20)},
		{Kind: Exit, Time: 0.3, Rank: 1, Region: mainID, Partner: NoPartner, Counters: cnt(21, 22)},
	}
	for _, e := range ev {
		t.Append(e)
	}
	t.Sort()
	return t
}

func TestDefineRegionDedupe(t *testing.T) {
	tr := New("x", 1)
	a := tr.DefineRegion("f", "m", 1)
	b := tr.DefineRegion("f", "m", 99) // same name+module: same id
	c := tr.DefineRegion("f", "other", 1)
	if a != b {
		t.Errorf("duplicate region not interned")
	}
	if a == c {
		t.Errorf("regions in different modules merged")
	}
	if tr.RegionName(a) != "f" || tr.RegionName(-1) != "?" || tr.RegionName(99) != "?" {
		t.Errorf("RegionName wrong")
	}
}

func TestSortAndPerRank(t *testing.T) {
	tr := buildPingPong(false)
	last := -1.0
	for _, e := range tr.Events {
		if e.Time < last {
			t.Fatalf("events not sorted")
		}
		last = e.Time
	}
	pr := tr.PerRank()
	if len(pr) != 2 {
		t.Fatalf("PerRank lanes = %d", len(pr))
	}
	for rank, idx := range pr {
		last := -1.0
		for _, i := range idx {
			if int(tr.Events[i].Rank) != rank {
				t.Errorf("event of wrong rank in lane %d", rank)
			}
			if tr.Events[i].Time < last {
				t.Errorf("lane %d out of order", rank)
			}
			last = tr.Events[i].Time
		}
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	for _, with := range []bool{false, true} {
		tr := buildPingPong(with)
		if err := tr.Validate(); err != nil {
			t.Errorf("withCounters=%v: %v", with, err)
		}
	}
}

func TestValidateViolations(t *testing.T) {
	check := func(name string, mutate func(tr *Trace), fragment string) {
		tr := buildPingPong(false)
		mutate(tr)
		err := tr.Validate()
		if err == nil || !strings.Contains(err.Error(), fragment) {
			t.Errorf("%s: err = %v (want %q)", name, err, fragment)
		}
	}
	check("bad rank", func(tr *Trace) { tr.Events[0].Rank = 9 }, "rank")
	check("bad region", func(tr *Trace) { tr.Events[0].Region = 77 }, "invalid region")
	check("bad partner", func(tr *Trace) {
		for i := range tr.Events {
			if tr.Events[i].Kind == Send {
				tr.Events[i].Partner = -2
			}
		}
	}, "invalid partner")
	check("unbalanced", func(tr *Trace) {
		tr.Append(Event{Kind: Exit, Time: 0.5, Rank: 0, Region: 0, Partner: NoPartner})
	}, "without enter")
	check("improper nesting", func(tr *Trace) {
		a := tr.DefineRegion("a", "", 0)
		b := tr.DefineRegion("b", "", 0)
		tr.Append(Event{Kind: Enter, Time: 0.4, Rank: 0, Region: a, Partner: NoPartner})
		tr.Append(Event{Kind: Enter, Time: 0.41, Rank: 0, Region: b, Partner: NoPartner})
		tr.Append(Event{Kind: Exit, Time: 0.42, Rank: 0, Region: a, Partner: NoPartner})
		tr.Append(Event{Kind: Exit, Time: 0.43, Rank: 0, Region: b, Partner: NoPartner})
	}, "improperly nested")
	check("unclosed", func(tr *Trace) {
		tr.Append(Event{Kind: Enter, Time: 0.9, Rank: 1, Region: 0, Partner: NoPartner})
	}, "unclosed")
	check("counter mismatch", func(tr *Trace) {
		tr.Counters = []string{"A"}
		tr.Events[0].Counters = []int64{1, 2}
	}, "counter values")
	check("unknown kind", func(tr *Trace) { tr.Events[0].Kind = 42 }, "unknown kind")
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, with := range []bool{false, true} {
		tr := buildPingPong(with)
		var buf bytes.Buffer
		n, err := tr.WriteTo(&buf)
		if err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if int(n) != buf.Len() {
			t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
		}
		if int(n) != tr.EncodedSize() {
			t.Errorf("EncodedSize = %d, actual %d", tr.EncodedSize(), n)
		}
		back, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("ReadFrom: %v", err)
		}
		if back.Program != tr.Program || back.NumRanks != tr.NumRanks {
			t.Errorf("header lost")
		}
		if len(back.Events) != len(tr.Events) {
			t.Fatalf("events = %d, want %d", len(back.Events), len(tr.Events))
		}
		for i := range tr.Events {
			a, b := tr.Events[i], back.Events[i]
			if a.Kind != b.Kind || a.Time != b.Time || a.Rank != b.Rank || a.Region != b.Region ||
				a.Partner != b.Partner || a.Tag != b.Tag || a.Bytes != b.Bytes ||
				a.Coll != b.Coll || a.CollSeq != b.CollSeq || a.Root != b.Root {
				t.Fatalf("event %d mismatch: %+v vs %+v", i, a, b)
			}
			if len(a.Counters) != len(b.Counters) {
				t.Fatalf("event %d counters lost", i)
			}
			for j := range a.Counters {
				if a.Counters[j] != b.Counters[j] {
					t.Fatalf("event %d counter %d mismatch", i, j)
				}
			}
		}
		if err := back.Validate(); err != nil {
			t.Errorf("round-tripped trace invalid: %v", err)
		}
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	tr := buildPingPong(true)
	path := t.TempDir() + "/x.epgo"
	if err := tr.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Errorf("file round-trip lost events")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := ReadFrom(strings.NewReader("BOGUS......")); err == nil {
		t.Errorf("bad magic accepted")
	}
	tr := buildPingPong(false)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncations at various points must error, not panic.
	for _, cut := range []int{3, 5, 10, len(full) / 2, len(full) - 3} {
		if _, err := ReadFrom(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Corrupt version.
	bad := append([]byte(nil), full...)
	bad[4] = 0xEE
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Errorf("bad version accepted")
	}
}

func TestWriteCounterMismatch(t *testing.T) {
	tr := buildPingPong(true)
	tr.Events[0].Counters = []int64{1} // wrong arity
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err == nil {
		t.Errorf("counter arity mismatch accepted on write")
	}
}

func TestComputeStats(t *testing.T) {
	tr := buildPingPong(false)
	barrier := tr.DefineRegion("MPI_Barrier", "libmpi", 0)
	tr.Append(Event{Kind: Enter, Time: 0.31, Rank: 0, Region: barrier, Partner: NoPartner})
	tr.Append(Event{Kind: Exit, Time: 0.32, Rank: 0, Region: barrier, Partner: NoPartner, Coll: CollBarrier})
	s := tr.ComputeStats()
	if s.Enters != 5 || s.Exits != 5 || s.Sends != 1 || s.Recvs != 1 || s.Collectives != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Duration != 0.32 {
		t.Errorf("duration = %v", s.Duration)
	}
	if s.EncodedBytes != tr.EncodedSize() {
		t.Errorf("encoded bytes inconsistent")
	}
}

func TestCounterTraceIsLarger(t *testing.T) {
	plain := buildPingPong(false)
	counted := buildPingPong(true)
	if counted.EncodedSize() <= plain.EncodedSize() {
		t.Errorf("counters should enlarge the trace: %d vs %d", counted.EncodedSize(), plain.EncodedSize())
	}
}

func TestPerLocationAndThreadsPerRank(t *testing.T) {
	tr := New("mt", 2)
	main := tr.DefineRegion("main", "app", 0)
	par := tr.DefineRegion(OMPPrefix+"loop", "omp", 0)
	// Rank 0: master + one worker thread; rank 1: master only.
	tr.Append(Event{Kind: Enter, Time: 0, Rank: 0, Thread: 0, Region: main, Partner: NoPartner})
	tr.Append(Event{Kind: Enter, Time: 1, Rank: 0, Thread: 1, Region: par, Partner: NoPartner})
	tr.Append(Event{Kind: Exit, Time: 2, Rank: 0, Thread: 1, Region: par, Partner: NoPartner})
	tr.Append(Event{Kind: Exit, Time: 3, Rank: 0, Thread: 0, Region: main, Partner: NoPartner})
	tr.Append(Event{Kind: Enter, Time: 0, Rank: 1, Thread: 0, Region: main, Partner: NoPartner})
	tr.Append(Event{Kind: Exit, Time: 1, Rank: 1, Thread: 0, Region: main, Partner: NoPartner})
	tr.Sort()

	per := tr.ThreadsPerRank()
	if per[0] != 2 || per[1] != 1 {
		t.Errorf("ThreadsPerRank = %v", per)
	}
	loc := tr.PerLocation()
	if len(loc[0]) != 2 || len(loc[0][1]) != 2 || len(loc[1][0]) != 2 {
		t.Errorf("PerLocation shape wrong: %v", loc)
	}
	// Every lane time-ordered and homogeneous.
	for r := range loc {
		for th, idx := range loc[r] {
			last := -1.0
			for _, i := range idx {
				ev := tr.Events[i]
				if int(ev.Rank) != r || int(ev.Thread) != th {
					t.Errorf("misplaced event in lane %d.%d", r, th)
				}
				if ev.Time < last {
					t.Errorf("lane %d.%d out of order", r, th)
				}
				last = ev.Time
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("multi-threaded trace invalid: %v", err)
	}
}

func TestIsOMPParallel(t *testing.T) {
	if !IsOMPParallel(OMPPrefix + "solve") {
		t.Errorf("parallel region not recognised")
	}
	for _, name := range []string{"main", "MPI_Recv", OMPBarrierRegion, "!$omp"} {
		if IsOMPParallel(name) {
			t.Errorf("%q wrongly recognised as parallel region", name)
		}
	}
}

func TestSortSeqTieBreak(t *testing.T) {
	tr := New("seq", 1)
	a := tr.DefineRegion("a", "", 0)
	b := tr.DefineRegion("b", "", 0)
	// Two events at the identical (time, rank): append order must win
	// deterministically even after shuffling.
	tr.Append(Event{Kind: Enter, Time: 1, Rank: 0, Region: a, Partner: NoPartner})
	tr.Append(Event{Kind: Enter, Time: 1, Rank: 0, Region: b, Partner: NoPartner})
	tr.Events[0], tr.Events[1] = tr.Events[1], tr.Events[0]
	tr.Sort()
	if tr.Events[0].Region != a || tr.Events[1].Region != b {
		t.Errorf("sequence tie-break failed: %v %v", tr.Events[0].Region, tr.Events[1].Region)
	}
}

func TestCommMatrix(t *testing.T) {
	tr := New("cm", 3)
	add := func(src, dst int, bytes int64) {
		tr.Append(Event{Kind: Send, Time: 0, Rank: int32(src), Region: -1,
			Partner: int32(dst), Bytes: bytes})
	}
	add(0, 1, 100)
	add(0, 1, 200)
	add(1, 2, 50)
	add(2, 0, 25)
	// Out-of-range partners are ignored, not crashed on.
	tr.Append(Event{Kind: Send, Time: 0, Rank: 0, Region: -1, Partner: 9, Bytes: 1})

	m := tr.BuildCommMatrix()
	if m.Messages[0][1] != 2 || m.Bytes[0][1] != 300 {
		t.Errorf("cell (0,1) = %d msgs / %d B", m.Messages[0][1], m.Bytes[0][1])
	}
	if m.TotalMessages() != 4 || m.TotalBytes() != 375 {
		t.Errorf("totals = %d msgs / %d B", m.TotalMessages(), m.TotalBytes())
	}
	var sb strings.Builder
	if err := m.Render(&sb, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "p2p messages matrix") || !strings.Contains(out, "total: 4 messages, 375 bytes") {
		t.Errorf("render wrong:\n%s", out)
	}
	// Intensity scaling: max cell (2 msgs) renders as 9.
	if !strings.Contains(out, " 9") {
		t.Errorf("max intensity missing:\n%s", out)
	}
	sb.Reset()
	if err := m.Render(&sb, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "p2p bytes matrix") {
		t.Errorf("bytes mode header missing")
	}
	// Empty trace renders without dividing by zero.
	sb.Reset()
	if err := New("empty", 2).BuildCommMatrix().Render(&sb, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "max cell 0") {
		t.Errorf("empty matrix render wrong:\n%s", sb.String())
	}
}

func TestKindAndCollStrings(t *testing.T) {
	if Enter.String() != "ENTER" || Recv.String() != "RECV" || Kind(99).String() == "" {
		t.Errorf("Kind strings wrong")
	}
	if CollBarrier.String() != "barrier" || CollNone.String() != "none" || CollKind(77).String() == "" {
		t.Errorf("CollKind strings wrong")
	}
}

// Property: EncodedSize always equals the bytes produced by WriteTo, for
// random event mixes.
func TestQuickEncodedSize(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New("q", 4)
		nc := r.Intn(3)
		for i := 0; i < nc; i++ {
			tr.Counters = append(tr.Counters, "C"+string(rune('0'+i)))
		}
		reg := tr.DefineRegion("main", "app", 1)
		n := r.Intn(50)
		for i := 0; i < n; i++ {
			ev := Event{
				Kind: Kind(r.Intn(4)), Time: r.Float64(), Rank: int32(r.Intn(4)),
				Region: reg, Partner: int32(r.Intn(4)), Tag: int32(r.Intn(10)),
				Bytes: int64(r.Intn(1 << 20)),
			}
			if nc > 0 && r.Intn(2) == 0 {
				ev.Counters = make([]int64, nc)
				for j := range ev.Counters {
					ev.Counters[j] = int64(r.Intn(1000))
				}
			}
			tr.Append(ev)
		}
		var buf bytes.Buffer
		n64, err := tr.WriteTo(&buf)
		if err != nil {
			return false
		}
		back, err := ReadFrom(&buf)
		return int(n64) == tr.EncodedSize() && err == nil && len(back.Events) == len(tr.Events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
