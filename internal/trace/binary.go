package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary trace encoding (EPILOG-like). Little-endian throughout.
//
//	header:  magic "EPGO" | u16 version | string program | u32 numRanks
//	         u32 numCounters | counter names
//	         u32 numRegions  | regions (name, module, i32 line)
//	events:  u32 count | records
//	record:  u8 kind | u8 flags | u32 rank | u32 thread | f64 time
//	         i32 region | i32 partner | i32 tag | i64 bytes
//	         u8 coll | i32 collSeq | i32 root
//	         [numCounters × i64]   (only when flags&flagCounters != 0)
//
// The fixed-width record makes the cost of per-record counters explicit:
// every enter/exit grows by 8 bytes per counter, which is exactly the
// trace-file enlargement §5.2 of the paper describes.

const (
	magic        = "EPGO"
	formatVer    = 1
	flagCounters = 1 << 0
)

const baseRecordSize = 1 + 1 + 4 + 4 + 8 + 4 + 4 + 4 + 8 + 1 + 4 + 4

// EncodedSize returns the exact number of bytes WriteTo produces.
func (t *Trace) EncodedSize() int {
	n := 4 + 2 // magic + version
	n += 4 + len(t.Program)
	n += 4 // numRanks
	n += 4
	for _, c := range t.Counters {
		n += 4 + len(c)
	}
	n += 4
	for _, r := range t.Regions {
		n += 4 + len(r.Name) + 4 + len(r.Module) + 4
	}
	n += 4 // event count
	for i := range t.Events {
		n += baseRecordSize
		if len(t.Events[i].Counters) > 0 {
			n += 8 * len(t.Counters)
		}
	}
	return n
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo encodes the trace to w and returns the number of bytes written.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	var scratch [8]byte
	le := binary.LittleEndian

	putU16 := func(v uint16) { le.PutUint16(scratch[:2], v); bw.Write(scratch[:2]) }
	putU32 := func(v uint32) { le.PutUint32(scratch[:4], v); bw.Write(scratch[:4]) }
	putI32 := func(v int32) { putU32(uint32(v)) }
	putU64 := func(v uint64) { le.PutUint64(scratch[:8], v); bw.Write(scratch[:8]) }
	putI64 := func(v int64) { putU64(uint64(v)) }
	putF64 := func(v float64) { putU64(math.Float64bits(v)) }
	putStr := func(s string) { putU32(uint32(len(s))); bw.WriteString(s) }

	bw.WriteString(magic)
	putU16(formatVer)
	putStr(t.Program)
	putU32(uint32(t.NumRanks))
	putU32(uint32(len(t.Counters)))
	for _, c := range t.Counters {
		putStr(c)
	}
	putU32(uint32(len(t.Regions)))
	for _, r := range t.Regions {
		putStr(r.Name)
		putStr(r.Module)
		putI32(int32(r.Line))
	}
	putU32(uint32(len(t.Events)))
	for i := range t.Events {
		ev := &t.Events[i]
		bw.WriteByte(byte(ev.Kind))
		var flags byte
		if len(ev.Counters) > 0 {
			flags |= flagCounters
		}
		bw.WriteByte(flags)
		putU32(uint32(ev.Rank))
		putU32(uint32(ev.Thread))
		putF64(ev.Time)
		putI32(ev.Region)
		putI32(ev.Partner)
		putI32(ev.Tag)
		putI64(ev.Bytes)
		bw.WriteByte(byte(ev.Coll))
		putI32(ev.CollSeq)
		putI32(ev.Root)
		if flags&flagCounters != 0 {
			if len(ev.Counters) != len(t.Counters) {
				return cw.n, fmt.Errorf("trace: event %d has %d counter values, trace defines %d",
					i, len(ev.Counters), len(t.Counters))
			}
			for _, v := range ev.Counters {
				putI64(v)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFrom decodes a trace previously encoded with WriteTo.
func ReadFrom(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var scratch [8]byte
	le := binary.LittleEndian

	readFull := func(n int) ([]byte, error) {
		if n <= len(scratch) {
			_, err := io.ReadFull(br, scratch[:n])
			return scratch[:n], err
		}
		buf := make([]byte, n)
		_, err := io.ReadFull(br, buf)
		return buf, err
	}
	getU16 := func() (uint16, error) {
		b, err := readFull(2)
		return le.Uint16(b), err
	}
	getU32 := func() (uint32, error) {
		b, err := readFull(4)
		return le.Uint32(b), err
	}
	getI32 := func() (int32, error) {
		v, err := getU32()
		return int32(v), err
	}
	getU64 := func() (uint64, error) {
		b, err := readFull(8)
		return le.Uint64(b), err
	}
	getI64 := func() (int64, error) {
		v, err := getU64()
		return int64(v), err
	}
	getF64 := func() (float64, error) {
		v, err := getU64()
		return math.Float64frombits(v), err
	}
	const maxStr = 1 << 20
	getStr := func() (string, error) {
		n, err := getU32()
		if err != nil {
			return "", err
		}
		if n > maxStr {
			return "", fmt.Errorf("trace: string length %d exceeds limit", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	hdr, err := readFull(4)
	if err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(hdr) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr)
	}
	ver, err := getU16()
	if err != nil {
		return nil, err
	}
	if ver != formatVer {
		return nil, fmt.Errorf("trace: unsupported format version %d", ver)
	}
	program, err := getStr()
	if err != nil {
		return nil, err
	}
	np, err := getU32()
	if err != nil {
		return nil, err
	}
	// Header fields are untrusted input: reject absurd values before any
	// consumer sizes allocations from them.
	const maxRanks = 1 << 22
	if np > maxRanks {
		return nil, fmt.Errorf("trace: declared rank count %d exceeds limit %d", np, maxRanks)
	}
	t := New(program, int(np))
	nc, err := getU32()
	if err != nil {
		return nil, err
	}
	const maxCounters = 1024
	if nc > maxCounters {
		return nil, fmt.Errorf("trace: declared counter count %d exceeds limit %d", nc, maxCounters)
	}
	for i := uint32(0); i < nc; i++ {
		name, err := getStr()
		if err != nil {
			return nil, err
		}
		t.Counters = append(t.Counters, name)
	}
	nr, err := getU32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nr; i++ {
		name, err := getStr()
		if err != nil {
			return nil, err
		}
		mod, err := getStr()
		if err != nil {
			return nil, err
		}
		line, err := getI32()
		if err != nil {
			return nil, err
		}
		t.DefineRegion(name, mod, int(line))
	}
	ne, err := getU32()
	if err != nil {
		return nil, err
	}
	// Cap the initial allocation: the declared count is untrusted input
	// (a corrupted header must not trigger a huge up-front allocation);
	// append grows the slice as records actually parse.
	capHint := ne
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	t.Events = make([]Event, 0, capHint)
	for i := uint32(0); i < ne; i++ {
		ev := Event{Seq: int64(i)} // file order breaks timestamp ties
		b, err := readFull(2)
		if err != nil {
			return nil, fmt.Errorf("trace: truncated at event %d: %w", i, err)
		}
		ev.Kind = Kind(b[0])
		flags := b[1]
		if u, err := getU32(); err != nil {
			return nil, err
		} else {
			ev.Rank = int32(u)
		}
		if u, err := getU32(); err != nil {
			return nil, err
		} else {
			ev.Thread = int32(u)
		}
		if ev.Time, err = getF64(); err != nil {
			return nil, err
		}
		if ev.Region, err = getI32(); err != nil {
			return nil, err
		}
		if ev.Partner, err = getI32(); err != nil {
			return nil, err
		}
		if ev.Tag, err = getI32(); err != nil {
			return nil, err
		}
		if ev.Bytes, err = getI64(); err != nil {
			return nil, err
		}
		cb, err := readFull(1)
		if err != nil {
			return nil, err
		}
		ev.Coll = CollKind(cb[0])
		if ev.CollSeq, err = getI32(); err != nil {
			return nil, err
		}
		if ev.Root, err = getI32(); err != nil {
			return nil, err
		}
		if flags&flagCounters != 0 {
			ev.Counters = make([]int64, len(t.Counters))
			for j := range ev.Counters {
				if ev.Counters[j], err = getI64(); err != nil {
					return nil, err
				}
			}
		}
		t.Events = append(t.Events, ev)
	}
	return t, nil
}

// WriteFile encodes the trace to the named file.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile decodes a trace from the named file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
