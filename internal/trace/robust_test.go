package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzReadFrom-style robustness: random corruption of valid encodings must
// produce errors or valid traces, never panics or runaway allocations.
func TestReadFromCorruptionRobust(t *testing.T) {
	tr := buildPingPong(true)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		corrupted := append([]byte(nil), valid...)
		// Flip 1-4 random bytes.
		for k := 0; k < 1+r.Intn(4); k++ {
			corrupted[r.Intn(len(corrupted))] ^= byte(1 + r.Intn(255))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d panicked: %v", trial, p)
				}
			}()
			got, err := ReadFrom(bytes.NewReader(corrupted))
			if err == nil && got != nil {
				// A still-parseable trace is fine; it must at least be
				// structurally self-consistent enough to not crash
				// downstream consumers.
				_ = got.ComputeStats()
				_ = got.ThreadsPerRank()
			}
		}()
	}
}

func TestReadFromRandomGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(256)
		buf := make([]byte, n)
		r.Read(buf)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d panicked: %v", trial, p)
				}
			}()
			_, _ = ReadFrom(bytes.NewReader(buf))
		}()
	}
}

// Huge declared string/event counts must not cause unbounded allocation.
func TestReadFromHostileLengths(t *testing.T) {
	// magic + version, then a program-string length of ~4 GiB.
	hostile := []byte{'E', 'P', 'G', 'O', 1, 0, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrom(bytes.NewReader(hostile)); err == nil {
		t.Errorf("hostile string length accepted")
	}
}
