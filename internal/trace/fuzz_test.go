package trace

import (
	"bytes"
	"testing"
)

// FuzzReadFrom ensures the binary reader never panics and that parseable
// inputs re-encode losslessly.
func FuzzReadFrom(f *testing.F) {
	for _, withCounters := range []bool{false, true} {
		var buf bytes.Buffer
		if _, err := buildPingPong(withCounters).WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("EPGO"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Successfully parsed traces re-encode to their declared size.
		var out bytes.Buffer
		n, err := tr.WriteTo(&out)
		if err != nil {
			// Inconsistent counter arity can make corrupted-but-parseable
			// traces unwritable; that is a reported error, not a bug.
			return
		}
		if int(n) != tr.EncodedSize() {
			t.Fatalf("EncodedSize %d != written %d", tr.EncodedSize(), n)
		}
		back, err := ReadFrom(&out)
		if err != nil {
			t.Fatalf("re-encoded trace unreadable: %v", err)
		}
		if len(back.Events) != len(tr.Events) {
			t.Fatalf("event count changed across round-trip")
		}
	})
}
