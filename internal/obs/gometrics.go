package obs

import (
	"math"
	"runtime/metrics"
	"sync"
)

// Go runtime telemetry: GoRuntimeSampler projects the stdlib
// runtime/metrics estimates into the registry as cube_go_* series, so GC
// pauses, scheduler latency, and heap pressure appear on /metrics next to
// the request metrics (until now only the expvar JSON snapshot carried a
// runtime.ReadMemStats dump). The runtime exposes its distributions as
// cumulative Float64Histograms with its own bucket layout; Sample replays
// the per-bucket count deltas since the previous call into fixed-bucket
// obs histograms at the bucket midpoints (Histogram.ObserveN), which keeps
// the exposition format, Delta semantics in promtext, and the selfcube
// projection identical to every hand-instrumented histogram.

// GoRuntimeBuckets is the bucket layout of the replayed runtime
// distributions. GC pauses and scheduler latencies live well below the
// request-latency range, so the layout starts at 1µs rather than
// DefLatencyBuckets' 100µs.
var GoRuntimeBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 1,
}

type goKind int

const (
	goGauge goKind = iota
	goCounter
	goHistogram
)

// goSpec maps one runtime/metrics name onto one registry series and holds
// the per-series replay state (previous cumulative readings).
type goSpec struct {
	kind goKind
	name string // registry series name

	prevCount int64    // counters: last cumulative reading
	prevHist  []uint64 // histograms: last cumulative bucket counts
}

// GoRuntimeSampler reads a fixed set of runtime/metrics samples and
// updates the corresponding cube_go_* series. Construct once per registry
// and call Sample whenever fresh numbers are wanted (the server does it on
// every /metrics scrape and before each self-telemetry snapshot); Sample
// is cheap (one metrics.Read over ~8 samples) and safe for concurrent use.
type GoRuntimeSampler struct {
	reg *Registry

	mu      sync.Mutex
	samples []metrics.Sample
	specs   []*goSpec
}

// NewGoRuntimeSampler returns a sampler feeding reg. Runtime metrics the
// running toolchain does not provide are silently skipped, so the mapping
// can prefer newer metric names with older spellings as fallbacks.
func NewGoRuntimeSampler(reg *Registry) *GoRuntimeSampler {
	have := map[string]bool{}
	for _, d := range metrics.All() {
		have[d.Name] = true
	}
	g := &GoRuntimeSampler{reg: reg}
	add := func(runtimeName, seriesName string, kind goKind) bool {
		if !have[runtimeName] {
			return false
		}
		g.samples = append(g.samples, metrics.Sample{Name: runtimeName})
		g.specs = append(g.specs, &goSpec{kind: kind, name: seriesName})
		return true
	}
	add("/memory/classes/heap/objects:bytes", "cube_go_heap_alloc_bytes", goGauge)
	add("/gc/heap/live:bytes", "cube_go_heap_live_bytes", goGauge)
	add("/memory/classes/total:bytes", "cube_go_mem_total_bytes", goGauge)
	add("/sched/goroutines:goroutines", "cube_go_goroutines", goGauge)
	add("/sched/gomaxprocs:threads", "cube_go_gomaxprocs", goGauge)
	add("/gc/cycles/total:gc-cycles", "cube_go_gc_cycles_total", goCounter)
	// /sched/pauses/total/gc:seconds superseded /gc/pauses:seconds in Go
	// 1.22; keep the old name as the fallback spelling.
	if !add("/sched/pauses/total/gc:seconds", "cube_go_gc_pause_seconds", goHistogram) {
		add("/gc/pauses:seconds", "cube_go_gc_pause_seconds", goHistogram)
	}
	add("/sched/latencies:seconds", "cube_go_sched_latency_seconds", goHistogram)
	return g
}

// Sample reads the runtime metrics once and updates the registry: gauges
// are set to the current reading, counters advance by the cumulative
// delta, and histograms replay the per-bucket count deltas. The first
// Sample replays the process-lifetime history, so a first scrape already
// sees cumulative totals, matching counter semantics.
func (g *GoRuntimeSampler) Sample() {
	if g == nil || g.reg == nil || len(g.samples) == 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	metrics.Read(g.samples)
	for i, sp := range g.specs {
		v := g.samples[i].Value
		switch sp.kind {
		case goGauge:
			g.reg.Gauge(sp.name).Set(goValueInt64(v))
		case goCounter:
			cur := goValueInt64(v)
			if d := cur - sp.prevCount; d > 0 {
				g.reg.Counter(sp.name).Add(d)
			}
			sp.prevCount = cur
		case goHistogram:
			if h := v.Float64Histogram(); h != nil {
				g.replayHistogram(sp, h)
			}
		}
	}
}

// goValueInt64 converts a runtime metric reading to int64 for gauges and
// counters (the runtime reports Uint64 or Float64 depending on the metric).
func goValueInt64(v metrics.Value) int64 {
	switch v.Kind() {
	case metrics.KindUint64:
		u := v.Uint64()
		if u > math.MaxInt64 {
			return math.MaxInt64
		}
		return int64(u)
	case metrics.KindFloat64:
		return int64(v.Float64())
	}
	return 0
}

// replayHistogram feeds the cumulative runtime histogram's growth since the
// previous sample into the registry histogram, one ObserveN per grown
// bucket at the bucket's midpoint. A bucket-layout change (possible across
// runtime-internal reconfiguration) resets the baseline rather than
// replaying garbage deltas.
func (g *GoRuntimeSampler) replayHistogram(sp *goSpec, h *metrics.Float64Histogram) {
	if len(sp.prevHist) != len(h.Counts) {
		sp.prevHist = make([]uint64, len(h.Counts))
	}
	out := g.reg.Histogram(sp.name, GoRuntimeBuckets)
	for i, c := range h.Counts {
		if c > sp.prevHist[i] {
			out.ObserveN(goBucketMid(h.Buckets[i], h.Buckets[i+1]), int64(c-sp.prevHist[i]))
		}
		sp.prevHist[i] = c
	}
}

// goBucketMid picks the representative value of a runtime histogram bucket
// (lo, hi]: the midpoint, or the finite edge when the other is infinite.
func goBucketMid(lo, hi float64) float64 {
	loInf, hiInf := math.IsInf(lo, 0), math.IsInf(hi, 0)
	switch {
	case loInf && hiInf:
		return 0
	case loInf:
		return hi
	case hiInf:
		return lo
	}
	return lo + (hi-lo)/2
}
