package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// This file renders a registry's state: a deterministic Snapshot value,
// the Prometheus text exposition format, a JSON (expvar-style) dump, and
// the corresponding http.Handlers.

// CounterValue is one counter series in a Snapshot.
type CounterValue struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// GaugeValue is one gauge series in a Snapshot.
type GaugeValue struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// BucketValue is one cumulative histogram bucket: the count of
// observations less than or equal to UpperBound, plus the bucket's
// exemplar (the trace ID of the most recent observation that fell in
// this bucket, and its value) when one has been recorded.
type BucketValue struct {
	UpperBound      float64 `json:"le"`
	Count           int64   `json:"count"`
	ExemplarTraceID string  `json:"exemplar_trace_id,omitempty"`
	ExemplarValue   float64 `json:"exemplar_value,omitempty"`
}

// MarshalJSON renders the bound as a string so the terminal +Inf bucket
// survives JSON encoding (encoding/json rejects non-finite float64s).
func (b BucketValue) MarshalJSON() ([]byte, error) {
	if b.ExemplarTraceID == "" {
		return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, formatFloat(b.UpperBound), b.Count)), nil
	}
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d,"exemplar_trace_id":%q,"exemplar_value":%s}`,
		formatFloat(b.UpperBound), b.Count, b.ExemplarTraceID, formatFloat(b.ExemplarValue))), nil
}

// UnmarshalJSON parses the string bound written by MarshalJSON
// (strconv.ParseFloat accepts "+Inf").
func (b *BucketValue) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE              string  `json:"le"`
		Count           int64   `json:"count"`
		ExemplarTraceID string  `json:"exemplar_trace_id"`
		ExemplarValue   float64 `json:"exemplar_value"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	v, err := strconv.ParseFloat(raw.LE, 64)
	if err != nil {
		return fmt.Errorf("bucket bound %q: %w", raw.LE, err)
	}
	b.UpperBound = v
	b.Count = raw.Count
	b.ExemplarTraceID = raw.ExemplarTraceID
	b.ExemplarValue = raw.ExemplarValue
	return nil
}

// HistogramValue is one histogram series in a Snapshot.
type HistogramValue struct {
	Name    string        `json:"name"`
	Labels  []Label       `json:"labels,omitempty"`
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketValue `json:"buckets"`
}

// Snapshot is a point-in-time copy of a registry, ordered
// deterministically: families sorted by name, series by label identity.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters,omitempty"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every series in the registry.
// A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			labels := append([]Label(nil), s.labels...)
			switch f.kind {
			case kindCounter:
				snap.Counters = append(snap.Counters, CounterValue{Name: f.name, Labels: labels, Value: s.c.Value()})
			case kindGauge:
				snap.Gauges = append(snap.Gauges, GaugeValue{Name: f.name, Labels: labels, Value: s.g.Value()})
			case kindHistogram:
				h := s.h
				hv := HistogramValue{Name: f.name, Labels: labels, Count: h.Count(), Sum: h.Sum()}
				var cum int64
				bucket := func(i int, bound float64) BucketValue {
					cum += h.counts[i].Load()
					bv := BucketValue{UpperBound: bound, Count: cum}
					if ex := h.exemplars[i].Load(); ex != nil {
						bv.ExemplarTraceID = ex.traceID
						bv.ExemplarValue = ex.value
					}
					return bv
				}
				for i, b := range h.bounds {
					hv.Buckets = append(hv.Buckets, bucket(i, b))
				}
				hv.Buckets = append(hv.Buckets, bucket(len(h.bounds), math.Inf(1)))
				snap.Histograms = append(snap.Histograms, hv)
			}
		}
		f.mu.RUnlock()
	}
	return snap
}

// CounterValue returns the current value of the named counter series, or 0
// if it does not exist. Intended for tests and report code, not hot paths.
func (r *Registry) CounterValue(name string, labels ...Label) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.kind != kindCounter {
		return 0
	}
	f.mu.RLock()
	s := f.series[labelKey(sortedLabels(labels))]
	f.mu.RUnlock()
	if s == nil {
		return 0
	}
	return s.c.Value()
}

// escapeLabel escapes a label value for the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per family, then one line per
// series, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var sb strings.Builder
	lastType := map[string]bool{}
	typeLine := func(name, kind string) {
		if !lastType[name] {
			fmt.Fprintf(&sb, "# TYPE %s %s\n", name, kind)
			lastType[name] = true
		}
	}
	for _, c := range snap.Counters {
		typeLine(c.Name, "counter")
		fmt.Fprintf(&sb, "%s%s %d\n", c.Name, formatLabels(c.Labels), c.Value)
	}
	for _, g := range snap.Gauges {
		typeLine(g.Name, "gauge")
		fmt.Fprintf(&sb, "%s%s %d\n", g.Name, formatLabels(g.Labels), g.Value)
	}
	for _, h := range snap.Histograms {
		typeLine(h.Name, "histogram")
		for _, b := range h.Buckets {
			// OpenMetrics-style exemplar suffix: ` # {trace_id="..."} value`.
			// Plain-Prometheus scrapers that stop at the first '#' still
			// parse the line; exemplar-aware ones link the bucket to its
			// trace in /debug/traces.
			ex := ""
			if b.ExemplarTraceID != "" {
				ex = fmt.Sprintf(` # {trace_id="%s"} %s`, escapeLabel(b.ExemplarTraceID), formatFloat(b.ExemplarValue))
			}
			fmt.Fprintf(&sb, "%s_bucket%s %d%s\n", h.Name, formatLabels(h.Labels, L("le", formatFloat(b.UpperBound))), b.Count, ex)
		}
		fmt.Fprintf(&sb, "%s_sum%s %s\n", h.Name, formatLabels(h.Labels), formatFloat(h.Sum))
		fmt.Fprintf(&sb, "%s_count%s %d\n", h.Name, formatLabels(h.Labels), h.Count)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteJSON renders the Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// MetricsHandler serves the Prometheus text exposition of the registry
// (the conventional GET /metrics endpoint).
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// VarsHandler serves an expvar-style JSON document: the metric snapshot
// plus the Go runtime's memory statistics (the conventional
// GET /debug/vars endpoint).
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		doc := struct {
			Metrics  Snapshot `json:"metrics"`
			MemStats struct {
				Alloc      uint64 `json:"alloc"`
				TotalAlloc uint64 `json:"total_alloc"`
				Sys        uint64 `json:"sys"`
				HeapAlloc  uint64 `json:"heap_alloc"`
				NumGC      uint32 `json:"num_gc"`
			} `json:"memstats"`
			Goroutines int `json:"goroutines"`
		}{Metrics: r.Snapshot(), Goroutines: runtime.NumGoroutine()}
		doc.MemStats.Alloc = ms.Alloc
		doc.MemStats.TotalAlloc = ms.TotalAlloc
		doc.MemStats.Sys = ms.Sys
		doc.MemStats.HeapAlloc = ms.HeapAlloc
		doc.MemStats.NumGC = ms.NumGC
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
}
