package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Trace exporters: the Chrome trace-event JSON format — loadable in
// chrome://tracing and https://ui.perfetto.dev — and a compact
// human-readable tree dump for terminals and logs.

// chromeEvent is one entry of the trace-event JSON array. We emit only
// complete ("X") duration events plus process_name metadata ("M")
// events; timestamps and durations are microseconds per the format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the traces as one Chrome trace-event JSON
// document. Each trace becomes a process (pid) named after its root span
// and trace ID; spans that overlap in time within a trace — parallel
// kernel shards — are spread across thread lanes (tid) so the viewer
// renders them side by side, while purely nested spans share their
// ancestor's lane.
func WriteChromeTrace(w io.Writer, traces ...*Trace) error {
	ordered := make([]*Trace, 0, len(traces))
	for _, tr := range traces {
		if tr != nil && tr.root != nil {
			ordered = append(ordered, tr)
		}
	}
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].start.Before(ordered[j].start) })

	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if len(ordered) > 0 {
		base := ordered[0].start
		for i, tr := range ordered {
			pid := i + 1
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "process_name",
				Ph:   "M",
				Pid:  pid,
				Args: map[string]any{"name": fmt.Sprintf("%s [%s]", tr.root.name, tr.id)},
			})
			doc.TraceEvents = append(doc.TraceEvents, traceEvents(tr, pid, base)...)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// traceEvents flattens one trace into events with lane (tid) numbers
// assigned greedily: spans are placed in start order into the first lane
// whose live spans are all ancestors of the newcomer, so a child nests
// in its parent's lane unless a concurrent sibling already occupies it.
func traceEvents(tr *Trace, pid int, base time.Time) []chromeEvent {
	var spans []*Span
	var collect func(s *Span)
	collect = func(s *Span) {
		spans = append(spans, s)
		for _, c := range s.Children() {
			collect(c)
		}
	}
	collect(tr.root)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].start.Before(spans[j].start) })

	type placed struct {
		span *Span
		end  time.Time
	}
	var lanes [][]placed // each lane is a stack of currently-open spans
	lane := make(map[*Span]int, len(spans))
	for _, s := range spans {
		target := -1
		for li := range lanes {
			// Retire spans that ended before the newcomer started.
			stack := lanes[li]
			for len(stack) > 0 && !stack[len(stack)-1].end.After(s.start) {
				stack = stack[:len(stack)-1]
			}
			lanes[li] = stack
			if target == -1 && (len(stack) == 0 || isAncestor(stack[len(stack)-1].span, s)) {
				target = li
			}
		}
		if target == -1 {
			lanes = append(lanes, nil)
			target = len(lanes) - 1
		}
		lanes[target] = append(lanes[target], placed{span: s, end: s.start.Add(s.Duration())})
		lane[s] = target
	}

	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		args := make(map[string]any)
		if s.parent == nil {
			args["trace_id"] = tr.id
		}
		for _, a := range s.Attrs() {
			args[a.Key] = a.Value
		}
		if len(args) == 0 {
			args = nil
		}
		events = append(events, chromeEvent{
			Name: s.name,
			Cat:  "cube",
			Ph:   "X",
			Ts:   micros(s.start.Sub(base)),
			Dur:  micros(s.Duration()),
			Pid:  pid,
			Tid:  lane[s] + 1,
			Args: args,
		})
	}
	return events
}

func isAncestor(anc, s *Span) bool {
	for p := s.parent; p != nil; p = p.parent {
		if p == anc {
			return true
		}
	}
	return false
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteTree writes the trace as an indented, human-readable span tree:
//
//	trace 9a3f... op.merge 1.2ms
//	  integrate 80µs metrics=12 callnodes=240
//	  lower 300µs cells=4096 operand=0
//	  ...
func (t *Trace) WriteTree(w io.Writer) error {
	if t == nil || t.root == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "trace %s %s\n", t.id, spanLine(t.root)); err != nil {
		return err
	}
	var walk func(s *Span, depth int) error
	walk = func(s *Span, depth int) error {
		for _, c := range s.Children() {
			if _, err := fmt.Fprintf(w, "%s%s\n", strings.Repeat("  ", depth), spanLine(c)); err != nil {
				return err
			}
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, 1)
}

// spanLine renders "name duration key=value ..." with attributes sorted
// by key for stable output.
func spanLine(s *Span) string {
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte(' ')
	b.WriteString(s.Duration().Round(time.Microsecond).String())
	attrs := s.Attrs()
	sort.SliceStable(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
	for _, a := range attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
	}
	return b.String()
}
