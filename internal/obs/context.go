package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// Request IDs travel in the context so every layer — middleware, handlers,
// operand parsing, log lines, error bodies — can stamp its output with the
// identity of the request it serves.

type ctxKey int

const (
	requestIDKey ctxKey = iota
	traceSpanKey
	eventKey
)

var reqSeq atomic.Uint64

// NewRequestID returns a fresh 16-hex-digit request ID. IDs come from
// crypto/rand; if that fails (it practically cannot), a time+sequence
// fallback keeps IDs unique within the process.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%08x%08x", time.Now().UnixNano()&0xffffffff, reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the request ID carried by ctx, or "" if none is set.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// SanitizeRequestID validates a caller-supplied request/trace ID: at most
// 64 characters drawn from [a-zA-Z0-9._-]. Anything else returns "" so
// the caller mints a fresh ID instead of propagating hostile input into
// logs, response headers, and trace lookups. Both the server middleware
// and the retrying client route IDs through here so a request keeps one
// stable identity across hops and retry attempts.
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return ""
		}
	}
	return id
}

// --- histogram timers -----------------------------------------------------------

// Timer records the time since its creation into an explicit histogram;
// callers control the metric and buckets. A nil histogram makes the
// timer inert. (Trace spans — tracing.go — are the structural
// counterpart: a Timer feeds an aggregate histogram, a Span becomes one
// node of a specific trace.)
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing against h.
func StartTimer(h *Histogram) Timer { return Timer{h: h, start: time.Now()} }

// Stop records the elapsed time in seconds and returns it.
func (t Timer) Stop() time.Duration {
	if t.h == nil {
		return 0
	}
	d := time.Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}
