package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// Request IDs travel in the context so every layer — middleware, handlers,
// operand parsing, log lines, error bodies — can stamp its output with the
// identity of the request it serves.

type ctxKey int

const requestIDKey ctxKey = iota

var reqSeq atomic.Uint64

// NewRequestID returns a fresh 16-hex-digit request ID. IDs come from
// crypto/rand; if that fails (it practically cannot), a time+sequence
// fallback keeps IDs unique within the process.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%08x%08x", time.Now().UnixNano()&0xffffffff, reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the request ID carried by ctx, or "" if none is set.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// --- span-style timers ----------------------------------------------------------

// Span measures one timed section and records its duration, in seconds,
// into a latency histogram on End. The zero Span is inert, so disabled
// instrumentation can hand out spans for free.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing a section named name (the backing histogram is
// "<name>_seconds" with DefLatencyBuckets). On a nil registry the span is
// inert. Usage:
//
//	sp := reg.StartSpan("cube_xml_read", obs.L("source", "upload"))
//	defer sp.End()
func (r *Registry) StartSpan(name string, labels ...Label) Span {
	if r == nil {
		return Span{}
	}
	return Span{h: r.Histogram(name+"_seconds", DefLatencyBuckets, labels...), start: time.Now()}
}

// End stops the span, records its duration, and returns it. Safe to call
// on an inert span (returns 0).
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	return d
}

// Timer records the time since its creation into an explicit histogram;
// unlike Span it does not name-mangle, so callers control the metric and
// buckets. A nil histogram makes the timer inert.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing against h.
func StartTimer(h *Histogram) Timer { return Timer{h: h, start: time.Now()} }

// Stop records the elapsed time in seconds and returns it.
func (t Timer) Stop() time.Duration {
	if t.h == nil {
		return 0
	}
	d := time.Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}
