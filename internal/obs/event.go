package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Wide-event telemetry. One canonical structured event is recorded per
// unit of work — an HTTP request, a client call, a CLI invocation, a
// store lifecycle transition — carrying the full resource attribution of
// that unit: who asked, what ran, what it cost (bytes parsed, cells
// combined, cache and store interactions, wall and compute time). Where
// metrics aggregate and traces sample, wide events keep every dimension
// of one request in one record, so "which requests burned the store
// budget last minute" is a filter, not a join.
//
// The collection discipline mirrors the tracer: a process-wide sink seam
// behind an atomic pointer (SetEventSink / ActiveEventSink) plus explicit
// handles (EventSink.NewEvent) for owners like the HTTP service. With no
// sink installed, NewEvent returns nil and every mutator is a nil-check
// no-op, so disabled call sites pay one atomic pointer load. An in-flight
// *Event is safe for concurrent mutation — kernel worker shards report
// into the same event from many goroutines — and lands in a bounded ring
// with NDJSON export (GET /debug/events, cube-diff -events).

// EventFields is the wide-event schema: the JSON object one NDJSON line
// carries. Zero-valued optional fields are omitted from the wire form, so
// an event only shows the dimensions its unit of work actually touched.
// The field-by-field catalog lives in the README's Observability section.
type EventFields struct {
	// Identity.
	Kind      string `json:"kind"`                 // "http" | "client" | "cli" | "store" | "self"
	Time      string `json:"time"`                 // RFC3339Nano UTC start of the unit of work
	RequestID string `json:"request_id,omitempty"` // X-Request-ID (HTTP, client)
	TraceID   string `json:"trace_id,omitempty"`   // trace ID when the unit was traced
	Route     string `json:"route,omitempty"`      // bounded route label / endpoint / tool name
	Method    string `json:"method,omitempty"`     // HTTP method

	// Outcome.
	Status     int     `json:"status,omitempty"`     // HTTP status (0 for non-HTTP kinds)
	Error      string  `json:"error,omitempty"`      // terminal error, if any
	DurationMS float64 `json:"duration_ms"`          // wall time of the unit
	ComputeMS  float64 `json:"compute_ms,omitempty"` // summed wall time of parallel kernel shards (≥ DurationMS share spent computing)

	// Operands and parsing.
	Op             string `json:"op,omitempty"`              // algebra operator that ran
	Operands       int    `json:"operands,omitempty"`        // operand count
	OperandBytes   int64  `json:"operand_bytes,omitempty"`   // total operand payload bytes
	InlineOperands int    `json:"inline_operands,omitempty"` // operands uploaded in the request body
	DigestOperands int    `json:"digest_operands,omitempty"` // operands resolved from digest: refs
	XMLReadBytes   int64  `json:"xml_read_bytes,omitempty"`
	XMLReadElems   int64  `json:"xml_read_elements,omitempty"`
	XMLWriteBytes  int64  `json:"xml_write_bytes,omitempty"`

	// Cache and store interactions.
	ParseCacheHits   int   `json:"parse_cache_hits,omitempty"`
	ParseCacheMisses int   `json:"parse_cache_misses,omitempty"`
	StoreGets        int   `json:"store_gets,omitempty"`
	StorePuts        int   `json:"store_puts,omitempty"`
	StorePins        int   `json:"store_pins,omitempty"`
	StoreBytes       int64 `json:"store_bytes,omitempty"` // bytes read from / written to the store

	// Expression engine (POST /expr).
	ExprNodes     int `json:"expr_nodes,omitempty"`      // unique DAG nodes after CSE
	ExprCSEHits   int `json:"expr_cse_hits,omitempty"`   // subexpression references eliminated by sharing
	ExprCacheHits int `json:"expr_cache_hits,omitempty"` // node results served from the expression-digest cache
	ExprEvaluated int `json:"expr_evaluated,omitempty"`  // operator nodes actually executed

	// Metadata fast paths (integrate) and lowered-block reuse.
	MetaIdentity     int `json:"meta_identity,omitempty"`      // integrations served by the identity fast path (all operand digests equal)
	MetaMemoHits     int `json:"meta_memo_hits,omitempty"`     // integrations served from the integration memo
	MetaMemoMisses   int `json:"meta_memo_misses,omitempty"`   // digest-eligible integrations that missed the memo
	LowerCacheHits   int `json:"lower_cache_hits,omitempty"`   // operands served as shared pre-lowered masters
	LowerCacheMisses int `json:"lower_cache_misses,omitempty"` // operands that had to be cloned / lowered per request

	// Kernel execution.
	KernelCells  int64  `json:"kernel_cells,omitempty"`  // result severity cells produced
	KernelTuples int64  `json:"kernel_tuples,omitempty"` // operand tuples consumed
	KernelShards int    `json:"kernel_shards,omitempty"` // worker shards across all plans
	Accumulator  string `json:"accumulator,omitempty"`   // "dense" | "sparse" | "fold"

	// HTTP response / client call shape.
	ResponseBytes int64 `json:"response_bytes,omitempty"`
	Attempts      int   `json:"attempts,omitempty"` // client HTTP attempts (retries + 1)

	// Store lifecycle events (kind "store").
	StoreEvent string `json:"store_event,omitempty"` // "evict" | "quarantine" | "degraded_enter" | "degraded_exit" | "recovery"
	Digest     string `json:"digest,omitempty"`      // blob the lifecycle event concerns
	Detail     string `json:"detail,omitempty"`      // free-form reason / summary
}

// storeEventNames are the legal StoreEvent values, shared with ValidateEvent.
var storeEventNames = map[string]bool{
	"evict": true, "quarantine": true, "degraded_enter": true,
	"degraded_exit": true, "recovery": true,
}

// ValidateEvent checks one emitted event against the schema: legal kind,
// the fields every kind must carry, and the kind-specific requirements.
// The obs-smoke CI gate runs every /debug/events line through it.
func ValidateEvent(f *EventFields) error {
	if f == nil {
		return fmt.Errorf("event: nil")
	}
	switch f.Kind {
	case "http", "client", "cli", "store", "self":
	default:
		return fmt.Errorf("event: unknown kind %q", f.Kind)
	}
	if f.Time == "" {
		return fmt.Errorf("event: missing time")
	}
	if _, err := time.Parse(time.RFC3339Nano, f.Time); err != nil {
		return fmt.Errorf("event: bad time %q: %v", f.Time, err)
	}
	if f.DurationMS < 0 {
		return fmt.Errorf("event: negative duration %g", f.DurationMS)
	}
	switch f.Kind {
	case "http":
		if f.Route == "" {
			return fmt.Errorf("event: http event without route")
		}
		if f.RequestID == "" {
			return fmt.Errorf("event: http event without request_id")
		}
		if f.Status < 100 || f.Status > 599 {
			return fmt.Errorf("event: http event with status %d", f.Status)
		}
	case "client":
		if f.Route == "" {
			return fmt.Errorf("event: client event without route (endpoint)")
		}
		if f.RequestID == "" {
			return fmt.Errorf("event: client event without request_id")
		}
	case "cli":
		if f.Route == "" {
			return fmt.Errorf("event: cli event without route (tool)")
		}
	case "store":
		if !storeEventNames[f.StoreEvent] {
			return fmt.Errorf("event: store event with store_event %q", f.StoreEvent)
		}
	case "self":
		// Self-telemetry snapshots (internal/selfcube): route names the
		// operation, e.g. "self.snapshot".
		if f.Route == "" {
			return fmt.Errorf("event: self event without route")
		}
	}
	return nil
}

// EventSink is a bounded ring of completed wide events. Safe for
// concurrent use; the oldest event is overwritten first. A nil *EventSink
// is a valid disabled sink on which every method is a no-op.
type EventSink struct {
	size int

	mu    sync.Mutex
	ring  []*EventFields // insertion order; wraps at capacity
	next  int            // slot the next event overwrites once full
	total atomic.Int64   // events ever emitted, including overwritten ones
}

// DefaultEventRingSize is the ring capacity used when NewEventSink is
// given a non-positive size.
const DefaultEventRingSize = 1024

// NewEventSink returns a sink retaining the most recent size events.
func NewEventSink(size int) *EventSink {
	if size <= 0 {
		size = DefaultEventRingSize
	}
	return &EventSink{size: size}
}

// emit appends one completed event record.
func (k *EventSink) emit(f *EventFields) {
	if k == nil || f == nil {
		return
	}
	k.total.Add(1)
	k.mu.Lock()
	if len(k.ring) < k.size {
		k.ring = append(k.ring, f)
	} else {
		k.ring[k.next] = f
		k.next = (k.next + 1) % len(k.ring)
	}
	k.mu.Unlock()
}

// Total reports how many events were ever emitted into the sink,
// including those the ring has since overwritten.
func (k *EventSink) Total() int64 {
	if k == nil {
		return 0
	}
	return k.total.Load()
}

// Events returns the retained events, oldest first (chronological — the
// natural order for a flight recorder dump).
func (k *EventSink) Events() []*EventFields {
	if k == nil {
		return nil
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*EventFields, 0, len(k.ring))
	for i := 0; i < len(k.ring); i++ {
		out = append(out, k.ring[(k.next+i)%len(k.ring)])
	}
	return out
}

// EventFilter selects events for export. Zero fields match everything.
type EventFilter struct {
	Kind        string        // exact kind
	Route       string        // exact route label
	Status      int           // exact status code
	StatusClass int           // status class: 4 matches 4xx, 5 matches 5xx
	MinDuration time.Duration // events at least this slow
	Limit       int           // at most this many events (most recent win); 0 = all
}

// Match reports whether f admits e.
func (f EventFilter) Match(e *EventFields) bool {
	if e == nil {
		return false
	}
	if f.Kind != "" && e.Kind != f.Kind {
		return false
	}
	if f.Route != "" && e.Route != f.Route {
		return false
	}
	if f.Status != 0 && e.Status != f.Status {
		return false
	}
	if f.StatusClass != 0 && e.Status/100 != f.StatusClass {
		return false
	}
	if f.MinDuration > 0 && e.DurationMS < float64(f.MinDuration)/float64(time.Millisecond) {
		return false
	}
	return true
}

// WriteNDJSON writes the retained events matching f to w as NDJSON (one
// JSON object per line), oldest first, and reports how many lines it
// wrote. With Limit > 0 only the most recent matching events are written.
func (k *EventSink) WriteNDJSON(w io.Writer, f EventFilter) (int, error) {
	events := k.Events()
	matched := events[:0:0]
	for _, e := range events {
		if f.Match(e) {
			matched = append(matched, e)
		}
	}
	if f.Limit > 0 && len(matched) > f.Limit {
		matched = matched[len(matched)-f.Limit:]
	}
	enc := json.NewEncoder(w)
	for i, e := range matched {
		if err := enc.Encode(e); err != nil {
			return i, err
		}
	}
	return len(matched), nil
}

// --- process-wide sink seam -----------------------------------------------------

// The active sink mirrors the tracer seam: one atomic pointer consulted
// by layers that have no explicit sink handle (the store's lifecycle
// events, the typed client). The HTTP service installs its sink here so
// the whole process shares one flight recorder.
var activeEventSink atomic.Pointer[EventSink]

// SetEventSink installs k as the process-wide event sink; nil disables
// wide events (the default). Disabled call sites pay one atomic load.
func SetEventSink(k *EventSink) {
	if k == nil {
		activeEventSink.Store(nil)
		return
	}
	activeEventSink.Store(k)
}

// ActiveEventSink returns the installed process-wide sink, or nil.
func ActiveEventSink() *EventSink { return activeEventSink.Load() }

// --- the in-flight event --------------------------------------------------------

// Event is one wide event being accumulated. Mutators are safe for
// concurrent use (kernel shards report into one event from many
// goroutines) and all are no-ops on a nil *Event, so disabled telemetry
// composes through call chains exactly like a nil *Span.
type Event struct {
	sink  *EventSink
	start time.Time

	mu      sync.Mutex
	f       EventFields
	emitted bool
}

// NewEvent begins a wide event destined for k. A nil sink returns a nil
// event, on which every method is a no-op.
func (k *EventSink) NewEvent(kind, route string) *Event {
	if k == nil {
		return nil
	}
	now := time.Now()
	return &Event{
		sink:  k,
		start: now,
		f:     EventFields{Kind: kind, Route: route, Time: now.UTC().Format(time.RFC3339Nano)},
	}
}

// NewEvent begins a wide event on the process-wide sink (one atomic load;
// nil when no sink is installed).
func NewEvent(kind, route string) *Event { return ActiveEventSink().NewEvent(kind, route) }

// Emit finalizes the event — stamping the wall duration — and appends it
// to its sink. Emitting twice, or emitting a nil event, is a no-op, so an
// owner may emit defensively on every exit path.
func (e *Event) Emit() {
	if e == nil {
		return
	}
	e.mu.Lock()
	if e.emitted {
		e.mu.Unlock()
		return
	}
	e.emitted = true
	e.f.DurationMS = float64(time.Since(e.start)) / float64(time.Millisecond)
	f := e.f // copy under the lock; the ring holds an immutable record
	e.mu.Unlock()
	e.sink.emit(&f)
}

// Fields returns a snapshot of the event's current fields (tests and the
// CLI exporter; the wall duration is only stamped by Emit).
func (e *Event) Fields() EventFields {
	if e == nil {
		return EventFields{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.f
}

// set runs fn under the event's lock; the no-op nil check lives here so
// every mutator below stays one line.
func (e *Event) set(fn func(*EventFields)) {
	if e == nil {
		return
	}
	e.mu.Lock()
	fn(&e.f)
	e.mu.Unlock()
}

// SetRequestID stamps the request ID (and, by the server's convention,
// the trace ID — they are the same identifier for HTTP requests).
func (e *Event) SetRequestID(id string) { e.set(func(f *EventFields) { f.RequestID = id }) }

// SetTraceID stamps the trace ID when it differs from the request ID.
func (e *Event) SetTraceID(id string) { e.set(func(f *EventFields) { f.TraceID = id }) }

// SetMethod records the HTTP method.
func (e *Event) SetMethod(m string) { e.set(func(f *EventFields) { f.Method = m }) }

// SetStatus records the final HTTP status.
func (e *Event) SetStatus(code int) { e.set(func(f *EventFields) { f.Status = code }) }

// SetError records the unit's terminal error.
func (e *Event) SetError(msg string) { e.set(func(f *EventFields) { f.Error = msg }) }

// SetOp records the algebra operator that served the unit of work.
func (e *Event) SetOp(op string) { e.set(func(f *EventFields) { f.Op = op }) }

// SetResponseBytes records the response body size.
func (e *Event) SetResponseBytes(n int64) { e.set(func(f *EventFields) { f.ResponseBytes = n }) }

// SetAttempts records how many HTTP attempts a client call took.
func (e *Event) SetAttempts(n int) { e.set(func(f *EventFields) { f.Attempts = n }) }

// AddOperand attributes one operand to the event. source is "inline"
// (uploaded in the request body) or "digest" (resolved from the store).
func (e *Event) AddOperand(source string, bytes int64) {
	e.set(func(f *EventFields) {
		f.Operands++
		f.OperandBytes += bytes
		switch source {
		case "digest":
			f.DigestOperands++
		default:
			f.InlineOperands++
		}
	})
}

// AddXMLRead attributes one XML parse: bytes consumed and (when the limit
// scan counted them) elements decoded.
func (e *Event) AddXMLRead(bytes int64, elements int) {
	e.set(func(f *EventFields) {
		f.XMLReadBytes += bytes
		f.XMLReadElems += int64(elements)
	})
}

// AddXMLWrite attributes one XML encode.
func (e *Event) AddXMLWrite(bytes int64) {
	e.set(func(f *EventFields) { f.XMLWriteBytes += bytes })
}

// ParseCache attributes one parse-cache lookup.
func (e *Event) ParseCache(hit bool) {
	e.set(func(f *EventFields) {
		if hit {
			f.ParseCacheHits++
		} else {
			f.ParseCacheMisses++
		}
	})
}

// AddStoreGet attributes one store read of the given size.
func (e *Event) AddStoreGet(bytes int64) {
	e.set(func(f *EventFields) { f.StoreGets++; f.StoreBytes += bytes })
}

// AddStorePut attributes one store write of the given size.
func (e *Event) AddStorePut(bytes int64) {
	e.set(func(f *EventFields) { f.StorePuts++; f.StoreBytes += bytes })
}

// AddStorePin attributes one blob pin.
func (e *Event) AddStorePin() { e.set(func(f *EventFields) { f.StorePins++ }) }

// SetExprStats records what one expression evaluation did: unique DAG
// nodes after CSE, eliminated subexpression references, result-cache
// hits, and operator nodes actually executed.
func (e *Event) SetExprStats(nodes, cseHits, cacheHits, evaluated int) {
	e.set(func(f *EventFields) {
		f.ExprNodes = nodes
		f.ExprCSEHits = cseHits
		f.ExprCacheHits = cacheHits
		f.ExprEvaluated = evaluated
	})
}

// AddMetaFastpath attributes one metadata fast-path outcome in integrate:
// "identity" (all operand digests equal), "memo" (integration memo hit),
// or "miss" (digest-eligible but not cached). Full-merge integrations with
// fewer than two operands, or with the fast path disabled, report nothing.
func (e *Event) AddMetaFastpath(kind string) {
	e.set(func(f *EventFields) {
		switch kind {
		case "identity":
			f.MetaIdentity++
		case "memo":
			f.MetaMemoHits++
		case "miss":
			f.MetaMemoMisses++
		}
	})
}

// LowerCache attributes one lowered-block reuse decision: whether an
// operand was served as a shared pre-lowered master (hit) or required a
// per-request clone (miss).
func (e *Event) LowerCache(hit bool) {
	e.set(func(f *EventFields) {
		if hit {
			f.LowerCacheHits++
		} else {
			f.LowerCacheMisses++
		}
	})
}

// AddKernelPlan attributes one kernel plan: its worker shard count and
// the operand tuples it consumes.
func (e *Event) AddKernelPlan(shards int, tuples int64) {
	e.set(func(f *EventFields) {
		f.KernelShards += shards
		f.KernelTuples += tuples
	})
}

// AddKernelCells attributes result severity cells produced.
func (e *Event) AddKernelCells(n int64) {
	e.set(func(f *EventFields) { f.KernelCells += n })
}

// AddCompute attributes compute wall time (summed across parallel worker
// shards, so it can exceed the event's own wall duration).
func (e *Event) AddCompute(d time.Duration) {
	e.set(func(f *EventFields) { f.ComputeMS += float64(d) / float64(time.Millisecond) })
}

// SetAccumulator records the kernel accumulator choice ("dense",
// "sparse", or "fold").
func (e *Event) SetAccumulator(a string) { e.set(func(f *EventFields) { f.Accumulator = a }) }

// SetStoreLifecycle stamps the store-lifecycle fields of a kind "store"
// event: which transition, which blob (may be empty), and why.
func (e *Event) SetStoreLifecycle(event, digest, detail string) {
	e.set(func(f *EventFields) {
		f.StoreEvent = event
		f.Digest = digest
		f.Detail = detail
	})
}

// --- context propagation --------------------------------------------------------

// ContextWithEvent returns a context carrying e as the current wide event,
// so lower layers (codec, cache, store access) attribute their work to it.
func ContextWithEvent(ctx context.Context, e *Event) context.Context {
	if e == nil {
		return ctx
	}
	return context.WithValue(ctx, eventKey, e)
}

// EventFromContext returns the wide event carried by ctx, or nil.
func EventFromContext(ctx context.Context) *Event {
	if ctx == nil {
		return nil
	}
	e, _ := ctx.Value(eventKey).(*Event)
	return e
}
