package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventSinkRingBounds(t *testing.T) {
	sink := NewEventSink(4)
	for i := 0; i < 10; i++ {
		ev := sink.NewEvent("http", fmt.Sprintf("r%d", i))
		ev.SetStatus(200)
		ev.Emit()
	}
	got := sink.Events()
	if len(got) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(got))
	}
	// Oldest first: the ring keeps the most recent 4 of 10.
	for i, e := range got {
		want := fmt.Sprintf("r%d", 6+i)
		if e.Route != want {
			t.Errorf("event %d route = %q, want %q", i, e.Route, want)
		}
	}
	if sink.Total() != 10 {
		t.Errorf("Total = %d, want 10", sink.Total())
	}
}

func TestEventNilSafety(t *testing.T) {
	// Every mutator and accessor must be a no-op on nil receivers: this is
	// the disabled path every instrumented call site takes.
	var sink *EventSink
	ev := sink.NewEvent("http", "/")
	if ev != nil {
		t.Fatalf("nil sink produced non-nil event")
	}
	ev.SetRequestID("x")
	ev.SetStatus(200)
	ev.SetOp("merge")
	ev.AddOperand("inline", 10)
	ev.AddXMLRead(1, 2)
	ev.AddXMLWrite(3)
	ev.ParseCache(true)
	ev.AddStoreGet(4)
	ev.AddStorePut(5)
	ev.AddStorePin()
	ev.AddKernelPlan(2, 100)
	ev.AddKernelCells(50)
	ev.AddCompute(time.Millisecond)
	ev.SetAccumulator("dense")
	ev.Emit()
	if f := ev.Fields(); f.Kind != "" {
		t.Errorf("nil event Fields = %+v, want zero", f)
	}
	sink.emit(&EventFields{})
	if sink.Events() != nil || sink.Total() != 0 {
		t.Errorf("nil sink retained events")
	}
	var n int
	n, err := sink.WriteNDJSON(&bytes.Buffer{}, EventFilter{})
	if n != 0 || err != nil {
		t.Errorf("nil sink WriteNDJSON = %d, %v", n, err)
	}
}

func TestEventEmitIdempotent(t *testing.T) {
	sink := NewEventSink(8)
	ev := sink.NewEvent("cli", "cube-diff")
	ev.Emit()
	ev.Emit()
	ev.Emit()
	if got := len(sink.Events()); got != 1 {
		t.Fatalf("double Emit recorded %d events, want 1", got)
	}
}

func TestEventAccumulation(t *testing.T) {
	sink := NewEventSink(8)
	ev := sink.NewEvent("http", "/api/v1/merge")
	ev.SetRequestID("abc123")
	ev.SetMethod("POST")
	ev.SetStatus(200)
	ev.SetOp("merge")
	ev.AddOperand("inline", 100)
	ev.AddOperand("digest", 200)
	ev.AddOperand("digest", 300)
	ev.AddXMLRead(600, 42)
	ev.AddXMLWrite(250)
	ev.ParseCache(true)
	ev.ParseCache(false)
	ev.ParseCache(false)
	ev.AddStoreGet(200)
	ev.AddStorePut(300)
	ev.AddStorePin()
	ev.AddKernelPlan(4, 1000)
	ev.AddKernelCells(512)
	ev.SetAccumulator("dense")
	ev.AddCompute(5 * time.Millisecond)
	ev.SetResponseBytes(250)
	ev.Emit()

	events := sink.Events()
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	f := events[0]
	if f.Operands != 3 || f.InlineOperands != 1 || f.DigestOperands != 2 {
		t.Errorf("operands = %d/%d/%d, want 3/1/2", f.Operands, f.InlineOperands, f.DigestOperands)
	}
	if f.OperandBytes != 600 {
		t.Errorf("operand bytes = %d, want 600", f.OperandBytes)
	}
	if f.XMLReadBytes != 600 || f.XMLReadElems != 42 || f.XMLWriteBytes != 250 {
		t.Errorf("xml = %d/%d/%d", f.XMLReadBytes, f.XMLReadElems, f.XMLWriteBytes)
	}
	if f.ParseCacheHits != 1 || f.ParseCacheMisses != 2 {
		t.Errorf("cache = %d hits / %d misses", f.ParseCacheHits, f.ParseCacheMisses)
	}
	if f.StoreGets != 1 || f.StorePuts != 1 || f.StorePins != 1 || f.StoreBytes != 500 {
		t.Errorf("store = %d/%d/%d/%d", f.StoreGets, f.StorePuts, f.StorePins, f.StoreBytes)
	}
	if f.KernelShards != 4 || f.KernelTuples != 1000 || f.KernelCells != 512 || f.Accumulator != "dense" {
		t.Errorf("kernel = %d/%d/%d/%s", f.KernelShards, f.KernelTuples, f.KernelCells, f.Accumulator)
	}
	if f.ComputeMS != 5 {
		t.Errorf("compute_ms = %g, want 5", f.ComputeMS)
	}
	if f.DurationMS < 0 {
		t.Errorf("duration_ms = %g", f.DurationMS)
	}
	if err := ValidateEvent(f); err != nil {
		t.Errorf("ValidateEvent: %v", err)
	}
}

func TestEventConcurrentMutation(t *testing.T) {
	// Kernel shards report into one event from many goroutines; the
	// accumulators must not lose updates. Run under -race in make race.
	sink := NewEventSink(8)
	ev := sink.NewEvent("http", "/api/v1/mean")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ev.AddKernelCells(1)
				ev.AddCompute(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	ev.Emit()
	f := sink.Events()[0]
	if f.KernelCells != workers*per {
		t.Errorf("kernel cells = %d, want %d", f.KernelCells, workers*per)
	}
	wantMS := float64(workers*per) / 1000
	if f.ComputeMS < wantMS-0.001 || f.ComputeMS > wantMS+0.001 {
		t.Errorf("compute_ms = %g, want %g", f.ComputeMS, wantMS)
	}
}

func TestEventSinkConcurrentEmit(t *testing.T) {
	sink := NewEventSink(64)
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ev := sink.NewEvent("http", fmt.Sprintf("/w%d", w))
				ev.SetStatus(200)
				ev.Emit()
			}
		}(w)
	}
	wg.Wait()
	if sink.Total() != workers*per {
		t.Errorf("Total = %d, want %d", sink.Total(), workers*per)
	}
	if got := len(sink.Events()); got != 64 {
		t.Errorf("retained %d, want ring cap 64", got)
	}
}

func TestEventNDJSONAndFilter(t *testing.T) {
	sink := NewEventSink(32)
	mk := func(route string, status int, d time.Duration) {
		ev := sink.NewEvent("http", route)
		ev.SetRequestID(NewRequestID())
		ev.SetStatus(status)
		// Backdate via direct field access for a deterministic duration.
		ev.mu.Lock()
		ev.start = ev.start.Add(-d)
		ev.mu.Unlock()
		ev.Emit()
	}
	mk("/api/v1/merge", 200, 1*time.Millisecond)
	mk("/api/v1/merge", 500, 50*time.Millisecond)
	mk("/api/v1/diff", 404, 2*time.Millisecond)
	mk("/api/v1/diff", 200, 100*time.Millisecond)

	cases := []struct {
		name   string
		filter EventFilter
		want   int
	}{
		{"all", EventFilter{}, 4},
		{"route", EventFilter{Route: "/api/v1/merge"}, 2},
		{"status", EventFilter{Status: 404}, 1},
		{"class5xx", EventFilter{StatusClass: 5}, 1},
		{"class4xx", EventFilter{StatusClass: 4}, 1},
		{"minDuration", EventFilter{MinDuration: 40 * time.Millisecond}, 2},
		{"limit", EventFilter{Limit: 3}, 3},
		{"kindMiss", EventFilter{Kind: "cli"}, 0},
		{"combined", EventFilter{Route: "/api/v1/diff", MinDuration: 40 * time.Millisecond}, 1},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		n, err := sink.WriteNDJSON(&buf, tc.filter)
		if err != nil {
			t.Fatalf("%s: WriteNDJSON: %v", tc.name, err)
		}
		if n != tc.want {
			t.Errorf("%s: wrote %d lines, want %d", tc.name, n, tc.want)
		}
		// Every line must decode and validate against the schema.
		sc := bufio.NewScanner(&buf)
		lines := 0
		for sc.Scan() {
			lines++
			var f EventFields
			if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
				t.Fatalf("%s: line %d: %v", tc.name, lines, err)
			}
			if err := ValidateEvent(&f); err != nil {
				t.Errorf("%s: line %d: %v", tc.name, lines, err)
			}
		}
		if lines != n {
			t.Errorf("%s: reported %d lines, found %d", tc.name, n, lines)
		}
	}
}

func TestEventNDJSONLimitKeepsNewest(t *testing.T) {
	sink := NewEventSink(16)
	for i := 0; i < 6; i++ {
		ev := sink.NewEvent("http", fmt.Sprintf("/r%d", i))
		ev.SetStatus(200)
		ev.Emit()
	}
	var buf bytes.Buffer
	sink.WriteNDJSON(&buf, EventFilter{Limit: 2})
	out := strings.TrimSpace(buf.String())
	lines := strings.Split(out, "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "/r4") || !strings.Contains(lines[1], "/r5") {
		t.Errorf("Limit=2 kept %q, want the two newest (/r4, /r5)", out)
	}
}

func TestValidateEvent(t *testing.T) {
	now := time.Now().UTC().Format(time.RFC3339Nano)
	ok := func(f EventFields) EventFields { return f }
	cases := []struct {
		name    string
		f       EventFields
		wantErr bool
	}{
		{"http ok", ok(EventFields{Kind: "http", Time: now, Route: "/x", RequestID: "a", Status: 200}), false},
		{"client ok", ok(EventFields{Kind: "client", Time: now, Route: "/experiments/{digest}", RequestID: "a"}), false},
		{"cli ok", ok(EventFields{Kind: "cli", Time: now, Route: "cube-diff"}), false},
		{"store ok", ok(EventFields{Kind: "store", Time: now, StoreEvent: "evict", Digest: "ab"}), false},
		{"bad kind", ok(EventFields{Kind: "nope", Time: now}), true},
		{"no time", ok(EventFields{Kind: "cli", Route: "x"}), true},
		{"bad time", ok(EventFields{Kind: "cli", Route: "x", Time: "yesterday"}), true},
		{"http no route", ok(EventFields{Kind: "http", Time: now, RequestID: "a", Status: 200}), true},
		{"http no reqid", ok(EventFields{Kind: "http", Time: now, Route: "/x", Status: 200}), true},
		{"http bad status", ok(EventFields{Kind: "http", Time: now, Route: "/x", RequestID: "a", Status: 42}), true},
		{"store bad event", ok(EventFields{Kind: "store", Time: now, StoreEvent: "explode"}), true},
		{"negative duration", ok(EventFields{Kind: "cli", Time: now, Route: "x", DurationMS: -1}), true},
	}
	for _, tc := range cases {
		err := ValidateEvent(&tc.f)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: ValidateEvent = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
	}
	if ValidateEvent(nil) == nil {
		t.Error("ValidateEvent(nil) = nil, want error")
	}
}

func TestActiveEventSinkSeam(t *testing.T) {
	defer SetEventSink(nil)
	if ActiveEventSink() != nil {
		t.Fatal("sink installed at test start")
	}
	if ev := NewEvent("cli", "t"); ev != nil {
		t.Fatal("NewEvent with no sink returned non-nil")
	}
	sink := NewEventSink(4)
	SetEventSink(sink)
	if ActiveEventSink() != sink {
		t.Fatal("ActiveEventSink did not return the installed sink")
	}
	ev := NewEvent("cli", "t")
	if ev == nil {
		t.Fatal("NewEvent with installed sink returned nil")
	}
	ev.Emit()
	if sink.Total() != 1 {
		t.Fatalf("Total = %d, want 1", sink.Total())
	}
	SetEventSink(nil)
	if ActiveEventSink() != nil {
		t.Fatal("SetEventSink(nil) did not clear the seam")
	}
}

func TestContextWithEvent(t *testing.T) {
	sink := NewEventSink(4)
	ev := sink.NewEvent("http", "/x")
	ctx := ContextWithEvent(t.Context(), ev)
	if got := EventFromContext(ctx); got != ev {
		t.Errorf("EventFromContext = %p, want %p", got, ev)
	}
	if got := EventFromContext(t.Context()); got != nil {
		t.Errorf("EventFromContext(empty) = %p, want nil", got)
	}
	// Carrying a nil event is a no-op, not a nil-typed value in the ctx.
	ctx2 := ContextWithEvent(t.Context(), nil)
	if got := EventFromContext(ctx2); got != nil {
		t.Errorf("EventFromContext after nil carry = %p, want nil", got)
	}
}

// TestEventNDJSONOrderAfterWraparound: once the ring has lapped, the
// NDJSON dump must still read oldest-to-newest — the wrap point in the
// backing array must not show as a seam in the output.
func TestEventNDJSONOrderAfterWraparound(t *testing.T) {
	sink := NewEventSink(4)
	for i := 0; i < 11; i++ { // 11 emits into 4 slots: 7 overwrites, seam mid-array
		ev := sink.NewEvent("http", fmt.Sprintf("/r%02d", i))
		ev.SetStatus(200)
		ev.Emit()
	}
	if got := sink.Total(); got != 11 {
		t.Fatalf("Total = %d, want 11 (overwritten events still counted)", got)
	}

	var buf bytes.Buffer
	n, err := sink.WriteNDJSON(&buf, EventFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("wrote %d lines, want the 4 retained", n)
	}
	var routes, times []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var f EventFields
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatal(err)
		}
		routes = append(routes, f.Route)
		times = append(times, f.Time)
	}
	want := []string{"/r07", "/r08", "/r09", "/r10"}
	for i := range want {
		if routes[i] != want[i] {
			t.Fatalf("dump order = %v, want %v (oldest first across the wrap)", routes, want)
		}
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Errorf("timestamps go backwards at line %d: %v", i, times)
		}
	}

	// Limit composes with the wrap: the newest two, still in order.
	buf.Reset()
	sink.WriteNDJSON(&buf, EventFilter{Limit: 2})
	out := strings.TrimSpace(buf.String())
	lines := strings.Split(out, "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "/r09") || !strings.Contains(lines[1], "/r10") {
		t.Errorf("Limit=2 after wrap kept %q, want /r09 then /r10", out)
	}
}
