package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

func TestSpanTreeBasics(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1})
	root := tr.StartTrace("op.merge", "abc123")
	if root.TraceID() != "abc123" {
		t.Errorf("trace ID = %q, want abc123", root.TraceID())
	}
	c1 := root.StartChild("integrate")
	c1.SetAttr("metrics", 3)
	c1.SetAttr("metrics", 4) // overwrite, not duplicate
	c1.End()
	c2 := root.StartChild("kernel")
	c2.End()
	root.End()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.ID() != "abc123" || got.Duration() <= 0 || got.SpanCount() != 3 {
		t.Errorf("trace = id %q dur %v spans %d", got.ID(), got.Duration(), got.SpanCount())
	}
	kids := got.Root().Children()
	if len(kids) != 2 || kids[0].Name() != "integrate" || kids[1].Name() != "kernel" {
		t.Errorf("children = %v", kids)
	}
	attrs := kids[0].Attrs()
	if len(attrs) != 1 || attrs[0].Key != "metrics" || attrs[0].Value != 4 {
		t.Errorf("attrs = %+v", attrs)
	}
	if tr.Trace("abc123") != got {
		t.Errorf("lookup by ID failed")
	}
	if tr.Trace("missing") != nil {
		t.Errorf("lookup of unknown ID returned a trace")
	}
}

func TestStartTraceMintsID(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1})
	root := tr.StartTrace("op.mean", "")
	if id := root.TraceID(); len(id) != 16 {
		t.Errorf("minted trace ID %q, want 16 hex chars", id)
	}
}

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	sp := tr.StartTrace("x", "")
	if sp != nil {
		t.Fatalf("nil tracer produced a span")
	}
	// The whole span API must be a no-op on nil.
	sp.SetAttr("k", 1)
	child := sp.StartChild("c")
	if child != nil {
		t.Errorf("nil span produced a child")
	}
	child.End()
	sp.End()
	if sp.TraceID() != "" || sp.Name() != "" || sp.Duration() != 0 {
		t.Errorf("nil span accessors not zero")
	}
	if tr.Traces() != nil || tr.Trace("x") != nil {
		t.Errorf("nil tracer retained traces")
	}
}

// TestConcurrentChildSpans mirrors the kernel's worker shards: many
// goroutines attach children and attributes to one parent. Run with
// -race (the Makefile race target covers this package).
func TestConcurrentChildSpans(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1})
	root := tr.StartTrace("op.diff", "")
	kernel := root.StartChild("kernel-stage")
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp := kernel.StartChild("kernel")
			sp.SetAttr("shard", w)
			for i := 0; i < 100; i++ {
				sp.SetAttr("rows", i)
			}
			sp.End()
		}(w)
	}
	wg.Wait()
	kernel.End()
	root.End()
	if got := len(kernel.Children()); got != workers {
		t.Errorf("kernel stage has %d children, want %d", got, workers)
	}
	if tr.Traces()[0].SpanCount() != workers+2 {
		t.Errorf("span count = %d, want %d", tr.Traces()[0].SpanCount(), workers+2)
	}
}

func TestRingEvictionOrder(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1, RingSize: 3})
	for i := 1; i <= 5; i++ {
		tr.StartTrace("op", fmt.Sprintf("t%d", i)).End()
	}
	var ids []string
	for _, x := range tr.Traces() {
		ids = append(ids, x.ID())
	}
	want := []string{"t5", "t4", "t3"}
	if strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Errorf("ring (newest first) = %v, want %v", ids, want)
	}
	for _, evicted := range []string{"t1", "t2"} {
		if tr.Trace(evicted) != nil {
			t.Errorf("evicted trace %s still retrievable", evicted)
		}
	}
	if tr.Trace("t3") == nil {
		t.Errorf("retained trace t3 not retrievable")
	}
}

func TestSamplingAndSlowRetention(t *testing.T) {
	// Rate 0: nothing retained.
	tr := NewTracer(TracerOptions{SampleRate: 0})
	tr.StartTrace("op", "a").End()
	if len(tr.Traces()) != 0 {
		t.Errorf("rate-0 tracer retained %d traces", len(tr.Traces()))
	}

	// Rate 0 but a slow threshold: slow traces are rescued and logged
	// with their hottest spans.
	var logBuf bytes.Buffer
	slow := NewTracer(TracerOptions{
		SampleRate: 0,
		Slow:       time.Millisecond,
		Logger:     slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	root := slow.StartTrace("op.merge", "slow1")
	child := root.StartChild("kernel")
	time.Sleep(2 * time.Millisecond)
	child.End()
	root.End()
	if slow.Trace("slow1") == nil {
		t.Fatalf("slow trace not retained despite 0 sample rate")
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "slow trace") || !strings.Contains(logged, "slow1") {
		t.Errorf("slow trace not logged: %q", logged)
	}
	if !strings.Contains(logged, "kernel") {
		t.Errorf("slow log lacks hottest spans: %q", logged)
	}

	// Fractional rate: roughly that share of traces retained.
	frac := NewTracer(TracerOptions{SampleRate: 0.25, RingSize: 4096})
	const n = 4000
	for i := 0; i < n; i++ {
		frac.StartTrace("op", "").End()
	}
	got := len(frac.Traces())
	if got < n/8 || got > n/2 {
		t.Errorf("rate-0.25 retained %d of %d traces", got, n)
	}
}

func TestHottestSpansSelfTime(t *testing.T) {
	base := time.Now()
	tr := &Trace{id: "x", start: base}
	root := testSpan(tr, nil, "root", base, 10*time.Millisecond)
	a := testSpan(tr, root, "a", base, 7*time.Millisecond)
	testSpan(tr, a, "a1", base, 6*time.Millisecond)
	testSpan(tr, root, "b", base.Add(7*time.Millisecond), 1*time.Millisecond)
	tr.root = root

	hot := HottestSpans(root, 3)
	if len(hot) != 3 {
		t.Fatalf("got %d hot spans", len(hot))
	}
	// Self times: a1=6ms, root=10-7-1=2ms, a=7-6=1ms, b=1ms.
	if hot[0].Span.Name() != "a1" || hot[0].Self != 6*time.Millisecond {
		t.Errorf("hottest = %s %v", hot[0].Span.Name(), hot[0].Self)
	}
	if hot[1].Span.Name() != "root" || hot[1].Self != 2*time.Millisecond {
		t.Errorf("second = %s %v", hot[1].Span.Name(), hot[1].Self)
	}
}

func TestActiveTracerSeam(t *testing.T) {
	if ActiveTracer() != nil {
		t.Fatalf("tracer installed at test start")
	}
	tr := NewTracer(TracerOptions{SampleRate: 1})
	SetTracer(tr)
	defer SetTracer(nil)
	if ActiveTracer() != tr {
		t.Errorf("ActiveTracer did not return installed tracer")
	}

	// No span in ctx: a root trace opens on the seam, seeded with the
	// context's request ID.
	ctx := WithRequestID(context.Background(), "req42")
	sp, ctx2 := StartSpanContext(ctx, "cubexml.read")
	if sp == nil || sp.TraceID() != "req42" {
		t.Fatalf("span = %v (trace %q)", sp, sp.TraceID())
	}
	// A span already in ctx: children chain under it, same trace.
	child, _ := StartSpanContext(ctx2, "decode")
	if child.TraceID() != "req42" {
		t.Errorf("child trace ID = %q", child.TraceID())
	}
	child.End()
	sp.End()
	got := tr.Trace("req42")
	if got == nil || got.SpanCount() != 2 {
		t.Fatalf("trace not retained with both spans: %v", got)
	}
	if got.Root().Children()[0].Name() != "decode" {
		t.Errorf("child span not attached to root")
	}

	SetTracer(nil)
	if sp, _ := StartSpanContext(context.Background(), "x"); sp != nil {
		t.Errorf("span created with no tracer and no parent")
	}
}

func TestSanitizeRequestID(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc-DEF_123.z", "abc-DEF_123.z"},
		{"", ""},
		{strings.Repeat("a", 64), strings.Repeat("a", 64)},
		{strings.Repeat("a", 65), ""},
		{"has space", ""},
		{"semi;colon", ""},
		{"new\nline", ""},
		{`quote"`, ""},
	}
	for _, c := range cases {
		if got := SanitizeRequestID(c.in); got != c.want {
			t.Errorf("SanitizeRequestID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// testSpan hand-builds an ended span at a fixed time, so exporter tests
// are deterministic.
func testSpan(tr *Trace, parent *Span, name string, start time.Time, dur time.Duration, attrs ...Attr) *Span {
	s := &Span{name: name, start: start, tr: tr, parent: parent, dur: dur, ended: true, attrs: attrs}
	if parent != nil {
		parent.children = append(parent.children, s)
	}
	return s
}

// goldenTrace builds the fixed trace used by the exporter tests: a Merge
// with integrate, two lowers, two overlapping kernel shards, and a
// materialize with a radix sort — the span taxonomy the operators emit.
func goldenTrace() *Trace {
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	at := func(ms float64) time.Time { return base.Add(time.Duration(ms * float64(time.Millisecond))) }
	ms := func(d float64) time.Duration { return time.Duration(d * float64(time.Millisecond)) }

	tr := &Trace{id: "req-0001", start: base, sampled: true}
	root := testSpan(tr, nil, "op.merge", base, ms(9), Attr{"operands", 2}, Attr{"cells_in", 200})
	tr.root = root
	tr.dur.Store(int64(ms(9)))

	testSpan(tr, root, "integrate", at(0), ms(1), Attr{"metrics", 4}, Attr{"callnodes", 25})
	testSpan(tr, root, "lower", at(1), ms(2), Attr{"operand", 0}, Attr{"cells", 100})
	testSpan(tr, root, "lower", at(3), ms(1), Attr{"operand", 1}, Attr{"cells", 100})
	testSpan(tr, root, "kernel", at(4), ms(3), Attr{"shard", 0}, Attr{"rows", 13}, Attr{"accumulator", "dense"})
	testSpan(tr, root, "kernel", at(4), ms(2.5), Attr{"shard", 1}, Attr{"rows", 12}, Attr{"accumulator", "dense"})
	mat := testSpan(tr, root, "materialize", at(7.5), ms(1.5), Attr{"cells", 180})
	testSpan(tr, mat, "radix-sort", at(7.5), ms(0.5), Attr{"keys", 180})
	return tr
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n got: %s\nwant: %s", path, got, want)
	}
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenTrace()); err != nil {
		t.Fatal(err)
	}
	// The export must be a valid trace-event document before anything else.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 9 { // 1 metadata + 8 spans
		t.Errorf("export has %d events, want 9", len(doc.TraceEvents))
	}
	checkGolden(t, "chrome_trace.golden.json", buf.Bytes())

	// The overlapping kernel shards must land on distinct lanes; the
	// nested radix-sort shares its parent's.
	lanes := map[string][]float64{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			lanes[ev["name"].(string)] = append(lanes[ev["name"].(string)], ev["tid"].(float64))
		}
	}
	if k := lanes["kernel"]; len(k) != 2 || k[0] == k[1] {
		t.Errorf("parallel kernel shards share a lane: %v", k)
	}
	if lanes["materialize"][0] != lanes["radix-sort"][0] {
		t.Errorf("nested radix-sort not in parent lane: %v vs %v", lanes["materialize"], lanes["radix-sort"])
	}
}

func TestWriteTreeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace_tree.golden.txt", buf.Bytes())
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Errorf("empty export lacks traceEvents array: %s", buf.String())
	}
}
