package obs

import (
	"math"
	"runtime"
	"strings"
	"testing"
)

func TestObserveN(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	h.ObserveN(0.5, 3)
	h.ObserveN(5, 2)
	h.ObserveN(100, 1)
	h.ObserveN(1, -4) // no-op
	if got := h.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	if got, want := h.Sum(), 0.5*3+5*2+100; got != want {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
	for i, want := range []int64{3, 2, 1} {
		if got := h.counts[i].Load(); got != want {
			t.Fatalf("bucket %d count = %d, want %d", i, got, want)
		}
	}
}

func TestGoRuntimeSamplerGauges(t *testing.T) {
	reg := NewRegistry()
	g := NewGoRuntimeSampler(reg)
	g.Sample()
	if v := reg.Gauge("cube_go_heap_alloc_bytes").Value(); v <= 0 {
		t.Errorf("cube_go_heap_alloc_bytes = %d, want > 0", v)
	}
	if v := reg.Gauge("cube_go_goroutines").Value(); v <= 0 {
		t.Errorf("cube_go_goroutines = %d, want > 0", v)
	}
	if v := reg.Gauge("cube_go_gomaxprocs").Value(); v <= 0 {
		t.Errorf("cube_go_gomaxprocs = %d, want > 0", v)
	}
}

func TestGoRuntimeSamplerGCDeltas(t *testing.T) {
	reg := NewRegistry()
	g := NewGoRuntimeSampler(reg)
	g.Sample()
	before := reg.CounterValue("cube_go_gc_cycles_total")
	runtime.GC()
	runtime.GC()
	g.Sample()
	after := reg.CounterValue("cube_go_gc_cycles_total")
	if after < before+2 {
		t.Errorf("gc cycles went %d -> %d, want +2 at least", before, after)
	}
	// Two forced GCs must have recorded pauses in the replayed histogram.
	var pauses int64
	for _, h := range reg.Snapshot().Histograms {
		if h.Name == "cube_go_gc_pause_seconds" {
			pauses = h.Count
			if math.IsNaN(h.Sum) || h.Sum < 0 {
				t.Errorf("pause sum = %g, want finite >= 0", h.Sum)
			}
		}
	}
	if pauses <= 0 {
		t.Errorf("cube_go_gc_pause_seconds count = %d, want > 0 after forced GC", pauses)
	}
}

func TestGoRuntimeSamplerExposition(t *testing.T) {
	reg := NewRegistry()
	NewGoRuntimeSampler(reg).Sample()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cube_go_heap_alloc_bytes", "cube_go_goroutines", "cube_go_gc_pause_seconds_bucket"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("/metrics exposition missing %s", want)
		}
	}
}

func TestGoBucketMid(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct{ lo, hi, want float64 }{
		{1, 3, 2},
		{math.Inf(-1), 4, 4},
		{2, inf, 2},
		{math.Inf(-1), inf, 0},
	}
	for _, c := range cases {
		if got := goBucketMid(c.lo, c.hi); got != c.want {
			t.Errorf("goBucketMid(%g, %g) = %g, want %g", c.lo, c.hi, got, c.want)
		}
	}
}
