package obs

import (
	"log/slog"
	"sort"
	"sync"
	"time"
)

// Windowed SLO tracking. The server declares per-route objectives —
// availability ("99.9% of requests succeed") and latency ("99% of
// requests finish under 250ms") — and the tracker maintains, over a
// rolling window, how much of each route's error budget has burned.
// Burn is the standard ratio
//
//	burn = bad / ((1 - target) × total)
//
// so burn < 1 means the route is inside its objective for the window,
// burn = 1 means the budget is exactly spent, and burn > 1 means the
// objective is violated. State lives in per-second buckets per route;
// Observe is O(1) (aggregates are maintained incrementally, expiry
// retires at most the buckets the clock actually passed).

// SLOConfig declares the objectives a tracker enforces.
type SLOConfig struct {
	// Window is the rolling evaluation window. Defaults to 5 minutes.
	Window time.Duration

	// LatencyThreshold is the per-request latency objective; requests at
	// or under it count as fast. Zero disables latency tracking.
	LatencyThreshold time.Duration

	// LatencyTarget is the fraction of requests that must be fast
	// (default 0.99 when latency tracking is enabled).
	LatencyTarget float64

	// AvailabilityTarget is the fraction of requests that must not fail
	// with a 5xx (e.g. 0.999). Zero disables availability tracking.
	AvailabilityTarget float64

	// Logger receives budget-exhausted warnings (one per transition into
	// burn ≥ 1, per route and objective). Nil uses slog.Default.
	Logger *slog.Logger

	// Registry receives cube_slo_* gauges on every Observe. Nil skips
	// metric export.
	Registry *Registry

	// now overrides the clock in tests.
	now func() time.Time
}

// SLOTracker tracks rolling error-budget burn per route.
type SLOTracker struct {
	cfg SLOConfig

	mu     sync.Mutex
	routes map[string]*sloRoute
}

// sloBucket accumulates one second of observations for one route.
type sloBucket struct {
	sec    int64 // unix second this bucket covers; 0 = empty
	total  int64
	errors int64 // 5xx responses
	slow   int64 // responses over LatencyThreshold
}

type sloRoute struct {
	buckets []sloBucket // ring indexed by sec % len
	// Rolling aggregates over the live buckets.
	total, errors, slow int64
	// Budget-exhausted edge detection, per objective.
	availExhausted, latExhausted bool
}

// NewSLOTracker returns a tracker enforcing cfg, or nil when cfg declares
// no objective at all — a nil tracker's methods are no-ops, so callers
// wire it unconditionally.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	if cfg.AvailabilityTarget <= 0 && cfg.LatencyThreshold <= 0 {
		return nil
	}
	if cfg.Window <= 0 {
		cfg.Window = 5 * time.Minute
	}
	if cfg.LatencyThreshold > 0 && cfg.LatencyTarget <= 0 {
		cfg.LatencyTarget = 0.99
	}
	// Targets are fractions strictly below 1: a target of 1 leaves a zero
	// budget and burn is undefined; clamp to "five nines" instead.
	if cfg.AvailabilityTarget >= 1 {
		cfg.AvailabilityTarget = 0.99999
	}
	if cfg.LatencyTarget >= 1 {
		cfg.LatencyTarget = 0.99999
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &SLOTracker{cfg: cfg, routes: make(map[string]*sloRoute)}
}

// Window returns the tracker's rolling window (0 on a nil tracker).
func (t *SLOTracker) Window() time.Duration {
	if t == nil {
		return 0
	}
	return t.cfg.Window
}

// route returns (creating if needed) the state for one route. Caller
// holds t.mu.
func (t *SLOTracker) route(name string) *sloRoute {
	r := t.routes[name]
	if r == nil {
		// One bucket per second of window, plus one so the bucket being
		// filled never aliases the oldest still-counted bucket.
		n := int(t.cfg.Window/time.Second) + 1
		if n < 2 {
			n = 2
		}
		r = &sloRoute{buckets: make([]sloBucket, n)}
		t.routes[name] = r
	}
	return r
}

// expire retires buckets that have fallen out of the window. Caller
// holds t.mu. now is the current unix second.
func (r *sloRoute) expire(now int64, window int64) {
	oldest := now - window + 1
	for i := range r.buckets {
		b := &r.buckets[i]
		if b.sec != 0 && b.sec < oldest {
			r.total -= b.total
			r.errors -= b.errors
			r.slow -= b.slow
			*b = sloBucket{}
		}
	}
}

// Observe records one completed request against route's objectives.
func (t *SLOTracker) Observe(route string, status int, dur time.Duration) {
	if t == nil {
		return
	}
	now := t.cfg.now()
	sec := now.Unix()
	isErr := status >= 500
	isSlow := t.cfg.LatencyThreshold > 0 && dur > t.cfg.LatencyThreshold

	t.mu.Lock()
	r := t.route(route)
	r.expire(sec, int64(t.cfg.Window/time.Second))
	b := &r.buckets[sec%int64(len(r.buckets))]
	if b.sec != sec {
		// Reclaim a stale slot the expiry pass didn't touch (it can only
		// be outside the window, since the ring spans window+1 seconds).
		r.total -= b.total
		r.errors -= b.errors
		r.slow -= b.slow
		*b = sloBucket{sec: sec}
	}
	b.total++
	r.total++
	if isErr {
		b.errors++
		r.errors++
	}
	if isSlow {
		b.slow++
		r.slow++
	}
	availBurn, latBurn := t.burnsLocked(r)
	availEdge := !r.availExhausted && availBurn >= 1
	latEdge := !r.latExhausted && latBurn >= 1
	r.availExhausted = availBurn >= 1
	r.latExhausted = latBurn >= 1
	t.mu.Unlock()

	t.export(route, availBurn, latBurn)
	if availEdge {
		t.warn(route, "availability", availBurn)
	}
	if latEdge {
		t.warn(route, "latency", latBurn)
	}
}

// burnsLocked computes the route's current burn ratios. Caller holds t.mu.
// A disabled objective reports burn 0; an enabled objective with no
// traffic reports 0 (an empty window cannot be out of budget).
func (t *SLOTracker) burnsLocked(r *sloRoute) (avail, lat float64) {
	if r.total == 0 {
		return 0, 0
	}
	if t.cfg.AvailabilityTarget > 0 {
		avail = float64(r.errors) / ((1 - t.cfg.AvailabilityTarget) * float64(r.total))
	}
	if t.cfg.LatencyThreshold > 0 {
		lat = float64(r.slow) / ((1 - t.cfg.LatencyTarget) * float64(r.total))
	}
	return avail, lat
}

// export publishes burn gauges. Burn is exported in parts-per-million so
// the integer gauge keeps precision (1_000_000 = budget exactly spent).
func (t *SLOTracker) export(route string, availBurn, latBurn float64) {
	reg := t.cfg.Registry
	if reg == nil {
		return
	}
	const ppm = 1e6
	if t.cfg.AvailabilityTarget > 0 {
		reg.Gauge("cube_slo_availability_burn_ppm", L("route", route)).Set(int64(availBurn * ppm))
	}
	if t.cfg.LatencyThreshold > 0 {
		reg.Gauge("cube_slo_latency_burn_ppm", L("route", route)).Set(int64(latBurn * ppm))
	}
}

func (t *SLOTracker) warn(route, objective string, burn float64) {
	lg := t.cfg.Logger
	if lg == nil {
		lg = slog.Default()
	}
	lg.Warn("slo error budget exhausted",
		"route", route,
		"objective", objective,
		"burn", burn,
		"window", t.cfg.Window.String(),
	)
}

// SLORouteStatus is one route's standing in the current window.
type SLORouteStatus struct {
	Route string `json:"route"`
	Total int64  `json:"total"`

	// Availability objective (present when configured).
	Errors           int64   `json:"errors"`
	AvailabilityBurn float64 `json:"availability_burn,omitempty"`

	// Latency objective (present when configured).
	Slow        int64   `json:"slow"`
	LatencyBurn float64 `json:"latency_burn,omitempty"`

	// BudgetRemaining is the worse objective's remaining budget fraction:
	// 1 - max(burn); clamped at 0.
	BudgetRemaining float64 `json:"budget_remaining"`
}

// SLOSnapshot is the full tracker state served on /debug/slo.
type SLOSnapshot struct {
	Window             string           `json:"window"`
	AvailabilityTarget float64          `json:"availability_target,omitempty"`
	LatencyThresholdMS float64          `json:"latency_threshold_ms,omitempty"`
	LatencyTarget      float64          `json:"latency_target,omitempty"`
	Routes             []SLORouteStatus `json:"routes"`
}

// Snapshot returns the current per-route standing, routes sorted by name.
func (t *SLOTracker) Snapshot() SLOSnapshot {
	if t == nil {
		return SLOSnapshot{}
	}
	snap := SLOSnapshot{
		Window:             t.cfg.Window.String(),
		AvailabilityTarget: t.cfg.AvailabilityTarget,
		LatencyTarget:      t.cfg.LatencyTarget,
	}
	if t.cfg.LatencyThreshold > 0 {
		snap.LatencyThresholdMS = float64(t.cfg.LatencyThreshold) / float64(time.Millisecond)
	} else {
		snap.LatencyTarget = 0
	}
	sec := t.cfg.now().Unix()

	t.mu.Lock()
	for name, r := range t.routes {
		r.expire(sec, int64(t.cfg.Window/time.Second))
		avail, lat := t.burnsLocked(r)
		worst := avail
		if lat > worst {
			worst = lat
		}
		remaining := 1 - worst
		if remaining < 0 {
			remaining = 0
		}
		snap.Routes = append(snap.Routes, SLORouteStatus{
			Route:            name,
			Total:            r.total,
			Errors:           r.errors,
			AvailabilityBurn: avail,
			Slow:             r.slow,
			LatencyBurn:      lat,
			BudgetRemaining:  remaining,
		})
	}
	t.mu.Unlock()

	sort.Slice(snap.Routes, func(i, j int) bool { return snap.Routes[i].Route < snap.Routes[j].Route })
	return snap
}
