package obs

import (
	"bytes"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// sloClock is a settable test clock.
type sloClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *sloClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *sloClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newSLOClock() *sloClock {
	return &sloClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func TestSLOTrackerDisabled(t *testing.T) {
	if tr := NewSLOTracker(SLOConfig{}); tr != nil {
		t.Fatal("no objectives should produce a nil tracker")
	}
	var tr *SLOTracker
	tr.Observe("/x", 500, time.Second) // must not panic
	if snap := tr.Snapshot(); len(snap.Routes) != 0 {
		t.Errorf("nil tracker snapshot has routes: %+v", snap)
	}
	if tr.Window() != 0 {
		t.Errorf("nil tracker window = %v", tr.Window())
	}
}

func TestSLOAvailabilityBurn(t *testing.T) {
	clk := newSLOClock()
	tr := NewSLOTracker(SLOConfig{
		Window:             time.Minute,
		AvailabilityTarget: 0.9, // budget: 10% of requests may 5xx
		now:                clk.now,
	})
	// 100 requests, 5 of them 5xx → burn = 5 / (0.1 × 100) = 0.5.
	for i := 0; i < 95; i++ {
		tr.Observe("/op", 200, time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		tr.Observe("/op", 500, time.Millisecond)
	}
	snap := tr.Snapshot()
	if len(snap.Routes) != 1 {
		t.Fatalf("routes = %d, want 1", len(snap.Routes))
	}
	r := snap.Routes[0]
	if r.Total != 100 || r.Errors != 5 {
		t.Errorf("total/errors = %d/%d, want 100/5", r.Total, r.Errors)
	}
	if math.Abs(r.AvailabilityBurn-0.5) > 1e-9 {
		t.Errorf("availability burn = %g, want 0.5", r.AvailabilityBurn)
	}
	if math.Abs(r.BudgetRemaining-0.5) > 1e-9 {
		t.Errorf("budget remaining = %g, want 0.5", r.BudgetRemaining)
	}
}

func TestSLOLatencyBurn(t *testing.T) {
	clk := newSLOClock()
	tr := NewSLOTracker(SLOConfig{
		Window:           time.Minute,
		LatencyThreshold: 100 * time.Millisecond,
		LatencyTarget:    0.9, // budget: 10% of requests may be slow
		now:              clk.now,
	})
	for i := 0; i < 8; i++ {
		tr.Observe("/op", 200, 10*time.Millisecond)
	}
	tr.Observe("/op", 200, 500*time.Millisecond)
	tr.Observe("/op", 200, 500*time.Millisecond)
	// 2 slow of 10 → burn = 2 / (0.1 × 10) = 2.0: budget violated.
	r := tr.Snapshot().Routes[0]
	if r.Slow != 2 {
		t.Errorf("slow = %d, want 2", r.Slow)
	}
	if math.Abs(r.LatencyBurn-2.0) > 1e-9 {
		t.Errorf("latency burn = %g, want 2.0", r.LatencyBurn)
	}
	if r.BudgetRemaining != 0 {
		t.Errorf("budget remaining = %g, want 0 (clamped)", r.BudgetRemaining)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	clk := newSLOClock()
	tr := NewSLOTracker(SLOConfig{
		Window:             10 * time.Second,
		AvailabilityTarget: 0.9,
		now:                clk.now,
	})
	tr.Observe("/op", 500, time.Millisecond)
	tr.Observe("/op", 500, time.Millisecond)
	if r := tr.Snapshot().Routes[0]; r.Errors != 2 {
		t.Fatalf("errors = %d, want 2", r.Errors)
	}
	// Advance past the window: the errors must age out.
	clk.advance(11 * time.Second)
	tr.Observe("/op", 200, time.Millisecond)
	r := tr.Snapshot().Routes[0]
	if r.Total != 1 || r.Errors != 0 {
		t.Errorf("after expiry total/errors = %d/%d, want 1/0", r.Total, r.Errors)
	}
	if r.AvailabilityBurn != 0 {
		t.Errorf("burn = %g, want 0 after expiry", r.AvailabilityBurn)
	}
}

func TestSLOBucketReclaimOnWrap(t *testing.T) {
	// The ring spans window+1 slots; writing into a slot still holding a
	// stale second (clock jumped a whole multiple of the ring) must
	// retire the stale counts from the aggregates.
	clk := newSLOClock()
	tr := NewSLOTracker(SLOConfig{
		Window:             2 * time.Second, // ring of 3 slots
		AvailabilityTarget: 0.9,
		now:                clk.now,
	})
	tr.Observe("/op", 500, time.Millisecond)
	clk.advance(3 * time.Second) // exactly one full ring revolution
	tr.Observe("/op", 200, time.Millisecond)
	r := tr.Snapshot().Routes[0]
	if r.Total != 1 || r.Errors != 0 {
		t.Errorf("total/errors = %d/%d, want 1/0", r.Total, r.Errors)
	}
}

func TestSLOBudgetExhaustedWarning(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(slog.NewTextHandler(&buf, nil))
	clk := newSLOClock()
	tr := NewSLOTracker(SLOConfig{
		Window:             time.Minute,
		AvailabilityTarget: 0.5, // half the requests may fail — easy to blow
		Logger:             lg,
		now:                clk.now,
	})
	tr.Observe("/op", 500, time.Millisecond) // burn = 1/(0.5×1) = 2 → warn
	tr.Observe("/op", 500, time.Millisecond) // still exhausted → no second warn
	out := buf.String()
	if n := strings.Count(out, "slo error budget exhausted"); n != 1 {
		t.Errorf("warned %d times, want exactly 1 per transition:\n%s", n, out)
	}
	if !strings.Contains(out, "objective=availability") || !strings.Contains(out, "route=/op") {
		t.Errorf("warning missing objective/route: %s", out)
	}
	// Recover (errors age out), then fail again: a second transition warns again.
	clk.advance(2 * time.Minute)
	tr.Observe("/op", 200, time.Millisecond)
	tr.Observe("/op", 500, time.Millisecond)
	if n := strings.Count(buf.String(), "slo error budget exhausted"); n != 2 {
		t.Errorf("after recovery+re-burn warned %d times total, want 2", n)
	}
}

func TestSLOMetricsExport(t *testing.T) {
	reg := NewRegistry()
	clk := newSLOClock()
	tr := NewSLOTracker(SLOConfig{
		Window:             time.Minute,
		AvailabilityTarget: 0.9,
		LatencyThreshold:   100 * time.Millisecond,
		LatencyTarget:      0.9,
		Registry:           reg,
		now:                clk.now,
	})
	for i := 0; i < 9; i++ {
		tr.Observe("/op", 200, time.Millisecond)
	}
	tr.Observe("/op", 500, 500*time.Millisecond)
	// availability burn = 1/(0.1×10) = 1.0 → 1_000_000 ppm; same for latency.
	if got := reg.Gauge("cube_slo_availability_burn_ppm", L("route", "/op")).Value(); got != 1_000_000 {
		t.Errorf("availability gauge = %d, want 1000000", got)
	}
	if got := reg.Gauge("cube_slo_latency_burn_ppm", L("route", "/op")).Value(); got != 1_000_000 {
		t.Errorf("latency gauge = %d, want 1000000", got)
	}
}

func TestSLOSnapshotShape(t *testing.T) {
	clk := newSLOClock()
	tr := NewSLOTracker(SLOConfig{
		Window:             30 * time.Second,
		AvailabilityTarget: 0.999,
		LatencyThreshold:   250 * time.Millisecond,
		now:                clk.now,
	})
	tr.Observe("/b", 200, time.Millisecond)
	tr.Observe("/a", 200, time.Millisecond)
	snap := tr.Snapshot()
	if snap.Window != "30s" {
		t.Errorf("window = %q", snap.Window)
	}
	if snap.LatencyTarget != 0.99 { // defaulted
		t.Errorf("latency target = %g, want default 0.99", snap.LatencyTarget)
	}
	if snap.LatencyThresholdMS != 250 {
		t.Errorf("latency threshold = %g ms", snap.LatencyThresholdMS)
	}
	if len(snap.Routes) != 2 || snap.Routes[0].Route != "/a" || snap.Routes[1].Route != "/b" {
		t.Errorf("routes not sorted: %+v", snap.Routes)
	}
}

func TestSLOConcurrentObserve(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{
		Window:             time.Minute,
		AvailabilityTarget: 0.99,
		LatencyThreshold:   time.Millisecond,
	})
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				status := 200
				if i%10 == 0 {
					status = 500
				}
				tr.Observe("/op", status, time.Duration(i)*time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	r := tr.Snapshot().Routes[0]
	if r.Total != workers*per {
		t.Errorf("total = %d, want %d", r.Total, workers*per)
	}
	if r.Errors != workers*per/10 {
		t.Errorf("errors = %d, want %d", r.Errors, workers*per/10)
	}
}
