// Package obs is the dependency-free observability layer shared by every
// other package in the module: a named registry of labeled counters,
// gauges, and fixed-bucket histograms (all lock-free on the hot path),
// plus context-propagated request IDs and span-style timers.
//
// The package deliberately has no third-party dependencies and exposes the
// collected state in two wire formats — the Prometheus text exposition
// format and a JSON snapshot (expvar-style) — so the HTTP service, the
// CLIs, and the tests can all report through the same seam. Later
// performance work (sharding, caching, parallel operators) is expected to
// publish its numbers here rather than inventing new side channels.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of a metric series. Series with the
// same metric name but different label values are tracked independently.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// --- metric primitives ---------------------------------------------------------

// Counter is a monotonically increasing integer. The zero value is ready
// to use; a nil *Counter ignores all updates, so disabled instrumentation
// costs one branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increases the counter by n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer that can go up and down (in-flight requests, queue
// depths). A nil *Gauge ignores all updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets and tracks their count
// and sum, like a Prometheus histogram: bucket i counts observations
// v <= bounds[i], and one implicit overflow bucket (+Inf) catches the rest.
// All updates are atomic; a nil *Histogram ignores observations. Each
// bucket can additionally hold one exemplar — the trace ID of the most
// recent observation that landed in it — so a latency outlier on a
// dashboard links straight to its trace in /debug/traces.
type Histogram struct {
	bounds    []float64 // sorted upper bounds, exclusive of +Inf
	counts    []atomic.Int64
	exemplars []atomic.Pointer[exemplar] // one slot per bucket, last-write-wins
	count     atomic.Int64
	sum       atomicFloat
}

// exemplar ties one observed value to the trace that produced it.
type exemplar struct {
	traceID string
	value   float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.observe(v)
}

// ObserveExemplar records one value and, when traceID is non-empty,
// stamps the bucket it lands in with that trace ID. With an empty
// traceID it is exactly Observe, so call sites can pass the (possibly
// empty) ID of whatever span is active without branching.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := h.observe(v)
	if traceID != "" {
		h.exemplars[i].Store(&exemplar{traceID: traceID, value: v})
	}
}

// ObserveN records n identical observations of v in one update — the bulk
// path for replaying externally aggregated histograms (the Go runtime's GC
// pause and scheduler latency distributions, gometrics.go) without O(n)
// per-sample loops. n <= 0 is a no-op.
func (h *Histogram) ObserveN(v float64, n int64) {
	if h == nil || n <= 0 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(n)
	h.count.Add(n)
	h.sum.Add(v * float64(n))
}

func (h *Histogram) observe(v float64) int {
	// Buckets are few (tens); linear scan beats binary search at this size
	// and keeps the code branch-predictable.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	return i
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// atomicFloat is a float64 with atomic add via compare-and-swap on its bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Default bucket layouts. Bounds are in seconds (latency), bytes (size),
// and dimensionless multiples (ratio).
var (
	// DefLatencyBuckets spans 100µs to 10s, the plausible range for
	// operator and request latencies on one machine.
	DefLatencyBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
	// DefSizeBuckets spans 256 B to 256 MiB in powers of four.
	DefSizeBuckets = []float64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20}
	// DefRatioBuckets suits expansion/overhead factors that start at 1.
	DefRatioBuckets = []float64{1, 1.1, 1.25, 1.5, 2, 3, 5, 10, 25, 100}
)

// --- registry ------------------------------------------------------------------

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// series is one labeled instance of a metric family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name    string
	kind    metricKind
	buckets []float64 // histogram families only
	mu      sync.RWMutex
	series  map[string]*series // canonical label string -> series
}

// Registry is a named collection of metrics. The zero value is not usable;
// call NewRegistry. A nil *Registry is a valid "disabled" registry: every
// lookup returns a nil metric whose updates are no-ops.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Default is the process-wide registry used when no explicit registry is
// configured (the HTTP service, the CLIs' -stats flag, the typed client).
var Default = NewRegistry()

// validName reports whether name is a legal metric or label name
// ([a-zA-Z_:][a-zA-Z0-9_:]*), mirroring the Prometheus data model.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// labelKey returns the canonical identity of a label set. Labels are
// sorted, so the caller's argument order never splits a series.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte(1)
		sb.WriteString(l.Value)
		sb.WriteByte(2)
	}
	return sb.String()
}

func sortedLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return append([]Label(nil), labels...)
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup returns the series for (name, labels), creating family and series
// on first use. It panics on invalid names and on kind conflicts — both
// are programming errors, not runtime conditions.
func (r *Registry) lookup(name string, kind metricKind, buckets []float64, labels []Label) *series {
	if r == nil {
		return nil
	}
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l.Key))
		}
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, kind: kind, buckets: append([]float64(nil), buckets...), series: map[string]*series{}}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %v, requested as %v", name, f.kind, kind))
	}
	ls := sortedLabels(labels)
	key := labelKey(ls)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labels: ls}
	switch kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = newHistogram(f.buckets)
	}
	f.series[key] = s
	return s
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(b)+1),
	}
}

// Counter returns (creating on first use) the counter named name with the
// given labels. The returned pointer is stable and may be cached by hot
// paths. On a nil registry it returns nil, which is safe to update.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	s := r.lookup(name, kindCounter, nil, labels)
	if s == nil {
		return nil
	}
	return s.c
}

// Gauge returns (creating on first use) the gauge named name.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	s := r.lookup(name, kindGauge, nil, labels)
	if s == nil {
		return nil
	}
	return s.g
}

// Histogram returns (creating on first use) the histogram named name with
// the given bucket upper bounds. The bucket layout is fixed by the first
// registration; later calls for the same name reuse it.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	s := r.lookup(name, kindHistogram, buckets, labels)
	if s == nil {
		return nil
	}
	return s.h
}
