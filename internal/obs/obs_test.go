package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("route", "/op"))
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same series; label order must not matter.
	c2 := r.Counter("requests_total", L("route", "/op"))
	if c2 != c {
		t.Errorf("lookup did not return the cached series")
	}
	multi := r.Counter("multi_total", L("b", "2"), L("a", "1"))
	multi.Inc()
	if got := r.CounterValue("multi_total", L("a", "1"), L("b", "2")); got != 1 {
		t.Errorf("label order split the series: got %d, want 1", got)
	}

	g := r.Gauge("in_flight")
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %d, want 2", got)
	}
	g.Set(10)
	if got := g.Value(); got != 10 {
		t.Errorf("gauge after Set = %d, want 10", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5, 0.01} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.565) > 1e-9 {
		t.Errorf("sum = %g, want 5.565", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms, want 1", len(snap.Histograms))
	}
	got := snap.Histograms[0].Buckets
	want := []BucketValue{
		{UpperBound: 0.01, Count: 2}, // 0.005 and the boundary value 0.01 (le is inclusive)
		{UpperBound: 0.1, Count: 3},
		{UpperBound: 1, Count: 4},
		{UpperBound: math.Inf(1), Count: 5},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("buckets = %+v, want %+v", got, want)
	}
}

func TestNilRegistryAndMetricsAreInert(t *testing.T) {
	var r *Registry
	r.Counter("c_total").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", DefLatencyBuckets).Observe(1)
	r.Histogram("h", DefLatencyBuckets).ObserveExemplar(1, "deadbeef")
	if snap := r.Snapshot(); len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
	if got := r.CounterValue("c_total"); got != 0 {
		t.Errorf("nil registry counter value = %d", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Errorf("registering x_total as gauge did not panic")
		}
	}()
	r.Gauge("x_total")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Errorf("invalid metric name did not panic")
		}
	}()
	r.Counter("bad name")
}

// TestConcurrentUpdates exercises every metric type from many goroutines;
// run with -race to verify lock-freedom is actually safe. Totals must be
// exact: atomic updates lose nothing.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Mix cached and uncached lookups to race the registry maps.
				r.Counter("ops_total", L("op", "difference")).Inc()
				r.Gauge("depth").Add(1)
				r.Histogram("dur_seconds", DefLatencyBuckets, L("op", "difference")).Observe(float64(i) / perWorker)
				r.Gauge("depth").Add(-1)
			}
		}(w)
	}
	wg.Wait()
	if got := r.CounterValue("ops_total", L("op", "difference")); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != workers*perWorker {
		t.Errorf("histogram count = %+v, want %d observations", snap.Histograms, workers*perWorker)
	}
	if got := snap.Gauges[0].Value; got != 0 {
		t.Errorf("gauge = %d, want 0 after balanced adds", got)
	}
}

// TestSnapshotDeterminism: two snapshots of the same state are identical,
// and ordering is stable regardless of registration order.
func TestSnapshotDeterminism(t *testing.T) {
	build := func(order []string) Snapshot {
		r := NewRegistry()
		for _, op := range order {
			r.Counter("ops_total", L("op", op)).Inc()
		}
		r.Gauge("g").Set(7)
		r.Histogram("h_seconds", []float64{1}).Observe(0.5)
		return r.Snapshot()
	}
	a := build([]string{"merge", "difference", "mean"})
	b := build([]string{"mean", "merge", "difference"})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("snapshots differ under registration order:\n%+v\n%+v", a, b)
	}
	if !reflect.DeepEqual(a, build([]string{"merge", "difference", "mean"})) {
		t.Errorf("repeated snapshot not identical")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("cube_op_invocations_total", L("op", "difference")).Add(3)
	r.Gauge("cube_http_in_flight").Set(2)
	h := r.Histogram("cube_dur_seconds", []float64{0.1, 1}, L("route", `/op/{op}`))
	h.Observe(0.05)
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE cube_op_invocations_total counter",
		`cube_op_invocations_total{op="difference"} 3`,
		"# TYPE cube_http_in_flight gauge",
		"cube_http_in_flight 2",
		"# TYPE cube_dur_seconds histogram",
		`cube_dur_seconds_bucket{route="/op/{op}",le="0.1"} 1`,
		`cube_dur_seconds_bucket{route="/op/{op}",le="+Inf"} 2`,
		`cube_dur_seconds_sum{route="/op/{op}"} 0.55`,
		`cube_dur_seconds_count{route="/op/{op}"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q in:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", L("path", "a\"b\\c\nd")).Inc()
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if want := `c_total{path="a\"b\\c\nd"} 1`; !strings.Contains(buf.String(), want) {
		t.Errorf("escaped output missing %q in:\n%s", want, buf.String())
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", L("k", "v")).Add(9)
	// A histogram exercises the +Inf terminal bucket, which needs the
	// custom JSON marshalling (encoding/json rejects non-finite floats).
	r.Histogram("h_seconds", []float64{0.1, 1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 9 {
		t.Errorf("round-tripped snapshot = %+v", snap)
	}
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	h := snap.Histograms[0]
	last := h.Buckets[len(h.Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) || last.Count != 1 {
		t.Errorf("terminal bucket = %+v, want +Inf/1", last)
	}
}

func TestHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Inc()
	rw := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type = %q", ct)
	}
	if !strings.Contains(rw.Body.String(), "c_total 1") {
		t.Errorf("metrics body = %q", rw.Body.String())
	}
	rw = httptest.NewRecorder()
	r.VarsHandler().ServeHTTP(rw, httptest.NewRequest("GET", "/debug/vars", nil))
	var doc map[string]any
	if err := json.Unmarshal(rw.Body.Bytes(), &doc); err != nil {
		t.Fatalf("vars output not JSON: %v", err)
	}
	if _, ok := doc["memstats"]; !ok {
		t.Errorf("vars output missing memstats: %v", doc)
	}
}

func TestRequestIDContext(t *testing.T) {
	if RequestID(context.Background()) != "" {
		t.Errorf("empty context has a request ID")
	}
	id := NewRequestID()
	if len(id) != 16 {
		t.Errorf("request ID %q not 16 hex chars", id)
	}
	if id2 := NewRequestID(); id2 == id {
		t.Errorf("request IDs collide: %q", id)
	}
	ctx := WithRequestID(context.Background(), id)
	if got := RequestID(ctx); got != id {
		t.Errorf("RequestID = %q, want %q", got, id)
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", DefLatencyBuckets)
	tm := StartTimer(h)
	time.Sleep(time.Millisecond)
	if d := tm.Stop(); d <= 0 {
		t.Errorf("timer duration = %v", d)
	}
	if h.Count() != 1 {
		t.Errorf("timer did not record")
	}
	// Inert form.
	if d := StartTimer(nil).Stop(); d != 0 {
		t.Errorf("inert timer returned %v", d)
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	h.ObserveExemplar(0.005, "aaaa00001111bbbb")
	h.ObserveExemplar(0.5, "") // no trace active: records, no exemplar
	h.ObserveExemplar(2, "cccc2222dddd3333")

	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms, want 1", len(snap.Histograms))
	}
	b := snap.Histograms[0].Buckets
	if b[0].ExemplarTraceID != "aaaa00001111bbbb" || b[0].ExemplarValue != 0.005 {
		t.Errorf("bucket 0 exemplar = %+v", b[0])
	}
	if b[2].ExemplarTraceID != "" {
		t.Errorf("bucket le=1 unexpectedly has exemplar %+v", b[2])
	}
	if b[3].ExemplarTraceID != "cccc2222dddd3333" {
		t.Errorf("+Inf bucket exemplar = %+v", b[3])
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	want := `lat_seconds_bucket{le="0.01"} 1 # {trace_id="aaaa00001111bbbb"} 0.005`
	if !strings.Contains(text, want) {
		t.Errorf("prometheus output missing exemplar line %q:\n%s", want, text)
	}
	if !strings.Contains(text, `lat_seconds_bucket{le="1"} 2`+"\n") {
		t.Errorf("exemplar-free bucket line changed:\n%s", text)
	}

	// Exemplars survive the JSON round trip of a Snapshot.
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("snapshot round trip mismatch:\n got %+v\nwant %+v", back, snap)
	}
}
