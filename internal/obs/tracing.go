package obs

import (
	"context"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span-based execution tracing. A Tracer produces trees of Spans — one
// tree per traced operation (an HTTP request, a CLI operator run) — with
// head-based sampling, a bounded ring of recent completed traces, and a
// slow-trace log. The package stays dependency-free like the metrics
// layer; exporters (Chrome trace-event JSON and a human-readable tree
// dump) live in traceexport.go.
//
// Concurrency: Spans are safe for concurrent child creation and
// attribute updates (kernel worker shards attach children to one parent
// from many goroutines). A nil *Span and a nil *Tracer are valid
// "disabled" values on which every method is a no-op, so disabled call
// sites pay a nil check and nothing else.

// Attr is one key/value annotation on a span. Values should be strings,
// booleans, integers, or floats so every exporter can render them.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Span is one timed operation in a trace tree: a name, a start time and
// duration, attributes, and child spans for the operation's parts.
type Span struct {
	name   string
	start  time.Time
	tr     *Trace
	parent *Span

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// StartChild opens a sub-span under s. Safe to call concurrently from
// several goroutines (worker shards). On a nil span it returns nil, so
// disabled tracing composes through call chains for free.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), tr: s.tr, parent: s}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr records (or overwrites) one attribute. No-op on a nil span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End stops the span. Ending the root span completes the trace: the
// owning tracer decides retention (sampling, slow threshold) and logs
// slow traces. Ending twice, or ending a nil span, is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.mu.Unlock()
	if s.parent == nil && s.tr != nil && s.tr.tracer != nil {
		s.tr.tracer.finish(s.tr)
	}
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's start time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the span's duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Attrs returns a copy of the span's attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children returns the span's children ordered by start time (child
// creation from concurrent shards appends in scheduling order).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].start.Before(out[j].start) })
	return out
}

// TraceID returns the ID of the trace the span belongs to ("" on nil).
func (s *Span) TraceID() string {
	if s == nil || s.tr == nil {
		return ""
	}
	return s.tr.id
}

// Trace is one completed (or in-flight) span tree.
type Trace struct {
	id      string
	root    *Span
	start   time.Time
	sampled bool
	tracer  *Tracer
	dur     atomic.Int64 // nanoseconds, set when the root ends
}

// ID returns the trace ID (shared with the request ID when the trace was
// started for an HTTP request).
func (t *Trace) ID() string { return t.id }

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// Start returns the trace's start time.
func (t *Trace) Start() time.Time { return t.start }

// Duration returns the root span's duration (zero while in flight).
func (t *Trace) Duration() time.Duration { return time.Duration(t.dur.Load()) }

// Sampled reports whether the head-based sampling decision admitted the
// trace independently of its duration.
func (t *Trace) Sampled() bool { return t.sampled }

// SpanCount returns the number of spans in the tree.
func (t *Trace) SpanCount() int {
	n := 0
	var walk func(s *Span)
	walk = func(s *Span) {
		n++
		for _, c := range s.Children() {
			walk(c)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return n
}

// TracerOptions configure a Tracer.
type TracerOptions struct {
	// SampleRate is the fraction of traces ([0,1]) retained in the ring
	// regardless of duration (head-based sampling). Traces outside the
	// sample are still recorded while in flight — cheaply, the tree is
	// small — so the slow threshold below can rescue them at completion.
	SampleRate float64
	// Slow, when > 0, retains every trace at least this slow even if the
	// sampling decision dropped it, and logs it through Logger with its
	// three hottest spans inline.
	Slow time.Duration
	// RingSize bounds the completed traces kept for inspection
	// (default 64). The oldest trace is evicted first.
	RingSize int
	// Logger receives the slow-trace records; nil disables the slow log.
	Logger *slog.Logger
}

// DefaultTraceRingSize is the ring capacity used when TracerOptions
// leaves RingSize zero.
const DefaultTraceRingSize = 64

// Tracer produces and retains traces. A nil *Tracer is a valid disabled
// tracer: StartTrace returns a nil span.
type Tracer struct {
	opts TracerOptions
	seq  atomic.Uint64

	mu   sync.Mutex
	ring []*Trace // insertion order; wraps at capacity
	next int      // slot the next completed trace overwrites once full
}

// NewTracer returns a tracer with the given options.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.RingSize <= 0 {
		opts.RingSize = DefaultTraceRingSize
	}
	return &Tracer{opts: opts}
}

// sampleIn makes the head-based sampling decision. The generator is a
// splitmix64 walk over an atomic sequence — uniform enough for sampling,
// lock-free, and free of math/rand's global state.
func (t *Tracer) sampleIn() bool {
	r := t.opts.SampleRate
	if r >= 1 {
		return true
	}
	if r <= 0 {
		return false
	}
	x := t.seq.Add(1) * 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < r
}

// StartTrace opens a new trace rooted at a span named name. id becomes
// the trace ID; an empty id mints a fresh one (NewRequestID). On a nil
// tracer it returns nil.
func (t *Tracer) StartTrace(name, id string) *Span {
	if t == nil {
		return nil
	}
	if id == "" {
		id = NewRequestID()
	}
	tr := &Trace{id: id, start: time.Now(), tracer: t, sampled: t.sampleIn()}
	tr.root = &Span{name: name, start: tr.start, tr: tr}
	return tr.root
}

// finish runs when a trace's root span ends: record the duration, decide
// retention, and emit the slow-trace log record.
func (t *Tracer) finish(tr *Trace) {
	dur := tr.root.Duration()
	tr.dur.Store(int64(dur))
	slow := t.opts.Slow > 0 && dur >= t.opts.Slow
	if tr.sampled || slow {
		t.mu.Lock()
		if len(t.ring) < t.opts.RingSize {
			t.ring = append(t.ring, tr)
		} else {
			t.ring[t.next] = tr
			t.next = (t.next + 1) % len(t.ring)
		}
		t.mu.Unlock()
	}
	if slow && t.opts.Logger != nil {
		hot := HottestSpans(tr.root, 3)
		parts := make([]string, len(hot))
		for i, h := range hot {
			parts[i] = h.Span.Name() + "=" + h.Self.Round(time.Microsecond).String()
		}
		t.opts.Logger.LogAttrs(context.Background(), slog.LevelWarn, "slow trace",
			slog.String("trace_id", tr.id),
			slog.String("root", tr.root.Name()),
			slog.Duration("dur", dur.Round(time.Microsecond)),
			slog.Int("spans", tr.SpanCount()),
			slog.Any("hottest", parts),
		)
	}
}

// Traces returns the retained traces, newest first.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, len(t.ring))
	// t.next is the oldest slot once the ring has wrapped; walk backwards
	// from the slot before it.
	for i := 0; i < len(t.ring); i++ {
		out = append(out, t.ring[(t.next+len(t.ring)-1-i)%len(t.ring)])
	}
	return out
}

// Trace returns the retained trace with the given ID, or nil.
func (t *Tracer) Trace(id string) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Newest first, so a reused request ID resolves to the latest trace.
	for i := 0; i < len(t.ring); i++ {
		tr := t.ring[(t.next+len(t.ring)-1-i)%len(t.ring)]
		if tr.id == id {
			return tr
		}
	}
	return nil
}

// HotSpan is one entry of a trace's self-time ranking.
type HotSpan struct {
	Span *Span
	// Self is the span's duration minus its children's — the time spent
	// in the span's own code rather than delegated further down.
	Self time.Duration
}

// HottestSpans ranks the spans under root (inclusive) by self time and
// returns the top n — the inline summary the slow-trace log carries.
func HottestSpans(root *Span, n int) []HotSpan {
	var all []HotSpan
	var walk func(s *Span)
	walk = func(s *Span) {
		self := s.Duration()
		for _, c := range s.Children() {
			self -= c.Duration()
			walk(c)
		}
		if self < 0 {
			self = 0 // overlapping concurrent children
		}
		all = append(all, HotSpan{Span: s, Self: self})
	}
	if root == nil {
		return nil
	}
	walk(root)
	sort.SliceStable(all, func(i, j int) bool { return all[i].Self > all[j].Self })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// --- process-wide tracer seam ---------------------------------------------------

// The active tracer mirrors core.Instrument's registry seam: a single
// atomic pointer every layer (operators, codec, client, CLIs) consults
// when no explicit parent span reaches it through a context or Options.
var activeTracer atomic.Pointer[Tracer]

// SetTracer installs t as the process-wide tracer; nil disables tracing
// (the default). Disabled call sites pay one atomic pointer load.
func SetTracer(t *Tracer) {
	if t == nil {
		activeTracer.Store(nil)
		return
	}
	activeTracer.Store(t)
}

// ActiveTracer returns the installed process-wide tracer, or nil.
func ActiveTracer() *Tracer { return activeTracer.Load() }

// --- context propagation --------------------------------------------------------

// ContextWithSpan returns a context carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, traceSpanKey, s)
}

// SpanFromContext returns the current span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(traceSpanKey).(*Span)
	return s
}

// StartSpanContext opens a span named name as a child of the span
// carried by ctx; with no span in ctx it opens a new root trace on the
// process-wide tracer (using ctx's request ID as the trace ID); with
// neither it returns (nil, ctx). The returned context carries the new
// span so nested layers chain automatically.
func StartSpanContext(ctx context.Context, name string) (*Span, context.Context) {
	if parent := SpanFromContext(ctx); parent != nil {
		s := parent.StartChild(name)
		return s, ContextWithSpan(ctx, s)
	}
	if t := ActiveTracer(); t != nil {
		s := t.StartTrace(name, SanitizeRequestID(RequestID(ctx)))
		return s, ContextWithSpan(ctx, s)
	}
	return nil, ctx
}
