package promtext

// Regression tests for counter-reset handling: Delta must never emit
// negative rates, and a reset histogram must still quantile to a finite
// number (not NaN, not negative) because the whole series group restarts
// from a consistent fresh baseline.

import (
	"math"
	"testing"
)

const beforeReset = `
cube_http_requests_total{route="/op/{op}"} 100
cube_http_requests_total{route="/healthz"} 50
cube_goroutines 12
cube_http_request_duration_seconds_bucket{route="/op/{op}",le="0.01"} 60
cube_http_request_duration_seconds_bucket{route="/op/{op}",le="0.1"} 90
cube_http_request_duration_seconds_bucket{route="/op/{op}",le="+Inf"} 100
cube_http_request_duration_seconds_sum{route="/op/{op}"} 7.5
cube_http_request_duration_seconds_count{route="/op/{op}"} 100
`

// The server restarted: every counter is small again, and one route kept
// growing normally (it was scraped from before the restart boundary).
const afterReset = `
cube_http_requests_total{route="/op/{op}"} 5
cube_http_requests_total{route="/healthz"} 56
cube_goroutines 9
cube_http_request_duration_seconds_bucket{route="/op/{op}",le="0.01"} 2
cube_http_request_duration_seconds_bucket{route="/op/{op}",le="0.1"} 4
cube_http_request_duration_seconds_bucket{route="/op/{op}",le="+Inf"} 5
cube_http_request_duration_seconds_sum{route="/op/{op}"} 0.9
cube_http_request_duration_seconds_count{route="/op/{op}"} 5
`

func TestDeltaCounterReset(t *testing.T) {
	d := Delta(mustParse(t, beforeReset), mustParse(t, afterReset))

	// The reset counter restarts from its current value: the increments
	// observed since the restart, never a negative rate and not a
	// swallowed-to-zero interval.
	if v, _ := d.Value("cube_http_requests_total", map[string]string{"route": "/op/{op}"}); v != 5 {
		t.Errorf("reset counter delta = %v, want 5 (fresh baseline)", v)
	}
	// The unreset series still subtracts normally.
	if v, _ := d.Value("cube_http_requests_total", map[string]string{"route": "/healthz"}); v != 6 {
		t.Errorf("healthy counter delta = %v, want 6", v)
	}
	for _, s := range d["cube_http_requests_total"] {
		if s.Value < 0 {
			t.Errorf("negative rate %v for %v", s.Value, s.Labels)
		}
	}
	// Gauges that decreased are their own group: current value passes
	// through rather than a negative delta (12 → 9 is a reset by the
	// counter rule, and gauges are read as levels anyway).
	if v, _ := d.Value("cube_goroutines", nil); v != 9 {
		t.Errorf("gauge after decrease = %v, want 9", v)
	}
}

func TestDeltaHistogramResetStaysCoherent(t *testing.T) {
	d := Delta(mustParse(t, beforeReset), mustParse(t, afterReset))
	sel := map[string]string{"route": "/op/{op}"}

	// The whole histogram group rebased: buckets, count, and sum carry the
	// post-restart values, still a valid cumulative distribution.
	if v, _ := d.Value("cube_http_request_duration_seconds_count", sel); v != 5 {
		t.Errorf("reset histogram count = %v, want 5", v)
	}
	if v, _ := d.Value("cube_http_request_duration_seconds_sum", sel); v != 0.9 {
		t.Errorf("reset histogram sum = %v, want 0.9", v)
	}
	p99, ok := d.Quantile("cube_http_request_duration_seconds", 0.99, sel)
	if !ok {
		t.Fatal("quantile of reset histogram reported absent")
	}
	if math.IsNaN(p99) || p99 < 0 {
		t.Fatalf("p99 after reset = %v, want finite and non-negative", p99)
	}
}

func TestDeltaNoPrev(t *testing.T) {
	cur := mustParse(t, afterReset)
	d := Delta(Metrics{}, cur)
	if v, _ := d.Value("cube_http_requests_total", map[string]string{"route": "/healthz"}); v != 56 {
		t.Errorf("delta without prev = %v, want pass-through 56", v)
	}
}

// Quantile guards: NaN bucket samples are ignored, and buckets whose
// cumulative counts came out non-monotonic (a torn scrape) are repaired
// with a running max instead of interpolating to garbage.
func TestQuantileGuards(t *testing.T) {
	m := mustParse(t, `
h_bucket{le="0.1"} NaN
h_bucket{le="1"} NaN
h_bucket{le="+Inf"} NaN
`)
	if _, ok := m.Quantile("h", 0.99, nil); ok {
		t.Error("all-NaN histogram reported a quantile")
	}

	torn := mustParse(t, `
t_bucket{le="0.1"} 50
t_bucket{le="1"} 3
t_bucket{le="+Inf"} 5
`)
	q, ok := torn.Quantile("t", 0.99, nil)
	if !ok || math.IsNaN(q) || q < 0 {
		t.Errorf("torn histogram quantile = %v, %v; want finite non-negative", q, ok)
	}
	if _, ok := torn.Quantile("t", math.NaN(), nil); ok {
		t.Error("NaN quantile rank reported ok")
	}
}
