// Package promtext parses the Prometheus text exposition format — the
// consumer side of obs.Registry.WritePrometheus — far enough to power
// dashboards like cube-top: counters, gauges, and histogram quantiles,
// selected by name and label subset. It is not a full OpenMetrics parser;
// it understands exactly the dialect the obs registry emits (and that
// real Prometheus servers scrape): `name{label="value",...} number`,
// with # comment lines ignored.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exposition line: a metric name, its label set, its value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Metrics is a parsed exposition, samples grouped by metric name.
type Metrics map[string][]Sample

// Parse reads a text exposition. Lines that do not parse are reported,
// not skipped: a scrape that half-parses misleads the dashboard reading it.
func Parse(r io.Reader) (Metrics, error) {
	m := Metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("promtext: line %d: %w", lineno, err)
		}
		m[s.Name] = append(m[s.Name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

func parseLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		labels, tail, err := parseLabels(rest[i+1:])
		if err != nil {
			return s, err
		}
		s.Labels, rest = labels, strings.TrimSpace(tail)
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name, rest = fields[0], fields[1]
	}
	// A value, optionally followed by a timestamp and exemplar commentary
	// ("# {trace_id=...}"), both of which we ignore.
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes `label="value",...}` and returns what follows.
func parseLabels(in string) (map[string]string, string, error) {
	labels := map[string]string{}
	for {
		in = strings.TrimLeft(in, ", \t")
		if in == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if in[0] == '}' {
			return labels, in[1:], nil
		}
		eq := strings.IndexByte(in, '=')
		if eq < 0 || len(in) < eq+2 || in[eq+1] != '"' {
			return nil, "", fmt.Errorf("malformed label in %q", in)
		}
		key := strings.TrimSpace(in[:eq])
		val, rest, err := parseQuoted(in[eq+1:])
		if err != nil {
			return nil, "", err
		}
		labels[key] = val
		in = rest
	}
}

// parseQuoted consumes a leading double-quoted string with \" \\ \n
// escapes and returns the remainder.
func parseQuoted(in string) (string, string, error) {
	var sb strings.Builder
	for i := 1; i < len(in); i++ {
		switch c := in[i]; c {
		case '\\':
			if i+1 >= len(in) {
				return "", "", fmt.Errorf("dangling escape in %q", in)
			}
			i++
			switch in[i] {
			case 'n':
				sb.WriteByte('\n')
			default:
				sb.WriteByte(in[i])
			}
		case '"':
			return sb.String(), in[i+1:], nil
		default:
			sb.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string in %q", in)
}

// matches reports whether the sample carries every label in want.
func (s Sample) matches(want map[string]string) bool {
	for k, v := range want {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// Sum adds the values of every sample of name whose labels include want
// (nil matches all). Summing counters across label dimensions is how a
// dashboard rolls `requests_total{route,method,status}` up to one number.
func (m Metrics) Sum(name string, want map[string]string) float64 {
	var total float64
	for _, s := range m[name] {
		if s.matches(want) {
			total += s.Value
		}
	}
	return total
}

// Value returns the first sample of name matching want.
func (m Metrics) Value(name string, want map[string]string) (float64, bool) {
	for _, s := range m[name] {
		if s.matches(want) {
			return s.Value, true
		}
	}
	return 0, false
}

// LabelValues returns the distinct values of label across the samples of
// name, sorted.
func (m Metrics) LabelValues(name, label string) []string {
	seen := map[string]bool{}
	for _, s := range m[name] {
		if v, ok := s.Labels[label]; ok && !seen[v] {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Delta subtracts prev from cur sample-by-sample (matched on name and
// full label set), the scrape-interval view dashboards like cube-top
// render. Samples absent from prev pass through unchanged.
//
// Counter resets (a restarted server exposes counters that restarted
// from zero) are handled group-wise: a histogram's buckets, _count, and
// _sum form one series group, keyed by the family name and the label set
// minus `le`. If any member of a group decreased since prev, the whole
// group is treated as freshly reset and its current values become the
// delta — the increments since the restart. Clamping members one at a
// time instead would tear the group apart: some buckets at zero, others
// not, a cumulative distribution that no longer is one, and a NaN or
// negative quantile out of Quantile.
func Delta(prev, cur Metrics) Metrics {
	reset := map[string]bool{}
	for name, samples := range cur {
		for _, s := range samples {
			if p, ok := lookup(prev[name], s.Labels); ok && s.Value < p {
				reset[groupKey(name, s.Labels)] = true
			}
		}
	}
	out := Metrics{}
	for name, samples := range cur {
		for _, s := range samples {
			d := s
			if !reset[groupKey(name, s.Labels)] {
				if p, ok := lookup(prev[name], s.Labels); ok {
					d.Value = s.Value - p
				}
			}
			out[name] = append(out[name], d)
		}
	}
	return out
}

// groupKey names the reset domain of a sample: histogram members share
// one key (family name + labels minus le), everything else stands alone.
func groupKey(name string, labels map[string]string) string {
	for _, suffix := range []string{"_bucket", "_count", "_sum"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			name = base
			break
		}
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(name)
	for _, k := range keys {
		sb.WriteByte(0)
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(labels[k])
	}
	return sb.String()
}

// lookup finds the sample with exactly the given label set.
func lookup(samples []Sample, labels map[string]string) (float64, bool) {
	for _, s := range samples {
		if len(s.Labels) != len(labels) {
			continue
		}
		same := true
		for k, v := range labels {
			if s.Labels[k] != v {
				same = false
				break
			}
		}
		if same {
			return s.Value, true
		}
	}
	return 0, false
}

// bucket is one cumulative histogram bucket.
type bucket struct {
	le    float64
	count float64
}

// Quantile estimates the q-quantile (0 < q < 1) of the histogram `name`
// restricted to samples matching want, by linear interpolation within the
// bucket holding the target rank — the same estimate PromQL's
// histogram_quantile computes. The second return is false when the
// histogram is absent or empty. Buckets from multiple matching series
// (e.g. several routes) are merged by `le` first.
func (m Metrics) Quantile(name string, q float64, want map[string]string) (float64, bool) {
	byLE := map[float64]float64{}
	for _, s := range m[name+"_bucket"] {
		// ParseFloat accepts "+Inf", so the overflow bucket needs no
		// special case here.
		le, err := strconv.ParseFloat(s.Labels["le"], 64)
		if err != nil || !s.matches(want) || math.IsNaN(s.Value) {
			continue
		}
		byLE[le] += s.Value
	}
	if len(byLE) == 0 {
		return 0, false
	}
	buckets := make([]bucket, 0, len(byLE))
	for le, c := range byLE {
		buckets = append(buckets, bucket{le, c})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	// Cumulative bucket counts must be non-decreasing in le; a torn scrape
	// (e.g. a counter reset mid-exposition) can violate that and would
	// otherwise interpolate to a negative or nonsensical quantile. Restore
	// monotonicity with a running max, as PromQL does.
	var running float64
	for i := range buckets {
		if buckets[i].count < running {
			buckets[i].count = running
		}
		running = buckets[i].count
	}
	total := buckets[len(buckets)-1].count
	if total <= 0 || math.IsNaN(q) {
		return 0, false
	}
	rank := q * total
	var prevLE, prevCount float64
	for _, b := range buckets {
		if b.count >= rank {
			if math.IsInf(b.le, 1) {
				// The rank falls in the overflow bucket: the best honest
				// answer is the largest finite bound.
				return prevLE, true
			}
			span := b.count - prevCount
			if span <= 0 {
				return b.le, true
			}
			return prevLE + (b.le-prevLE)*(rank-prevCount)/span, true
		}
		prevLE, prevCount = b.le, b.count
	}
	return buckets[len(buckets)-1].le, true
}
