package promtext

import (
	"math"
	"strings"
	"testing"
)

const exposition = `# HELP cube_http_requests_total Requests served.
# TYPE cube_http_requests_total counter
cube_http_requests_total{method="POST",route="/op/{op}",status="200"} 40
cube_http_requests_total{method="POST",route="/op/{op}",status="500"} 2
cube_http_requests_total{method="GET",route="/healthz",status="200"} 8
cube_goroutines 12
cube_parse_cache_hits_total 30
cube_parse_cache_misses_total 10
# TYPE cube_http_request_duration_seconds histogram
cube_http_request_duration_seconds_bucket{route="/op/{op}",le="0.01"} 10
cube_http_request_duration_seconds_bucket{route="/op/{op}",le="0.1"} 30
cube_http_request_duration_seconds_bucket{route="/op/{op}",le="1"} 40
cube_http_request_duration_seconds_bucket{route="/op/{op}",le="+Inf"} 42
cube_http_request_duration_seconds_sum{route="/op/{op}"} 5.5
cube_http_request_duration_seconds_count{route="/op/{op}"} 42
odd_label{msg="a \"quoted\" v,alue"} 1
`

func mustParse(t *testing.T, text string) Metrics {
	t.Helper()
	m, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseAndSelect(t *testing.T) {
	m := mustParse(t, exposition)

	if got := m.Sum("cube_http_requests_total", nil); got != 50 {
		t.Errorf("Sum(all) = %v, want 50", got)
	}
	if got := m.Sum("cube_http_requests_total", map[string]string{"route": "/op/{op}"}); got != 42 {
		t.Errorf("Sum(route) = %v, want 42", got)
	}
	if got := m.Sum("cube_http_requests_total", map[string]string{"status": "500"}); got != 2 {
		t.Errorf("Sum(5xx) = %v, want 2", got)
	}
	if v, ok := m.Value("cube_goroutines", nil); !ok || v != 12 {
		t.Errorf("Value(cube_goroutines) = %v, %v", v, ok)
	}
	if _, ok := m.Value("nope", nil); ok {
		t.Error("Value of absent metric reported ok")
	}
	if got := m.LabelValues("cube_http_requests_total", "route"); len(got) != 2 || got[0] != "/healthz" || got[1] != "/op/{op}" {
		t.Errorf("LabelValues = %v", got)
	}
	if v, _ := m.Value("odd_label", nil); v != 1 {
		t.Errorf(`odd_label = %v`, v)
	}
	if v, ok := m.Value("odd_label", map[string]string{"msg": `a "quoted" v,alue`}); !ok || v != 1 {
		t.Errorf("escaped label did not round-trip: %v %v", v, ok)
	}
}

func TestQuantile(t *testing.T) {
	m := mustParse(t, exposition)
	sel := map[string]string{"route": "/op/{op}"}

	// Rank 21 of 42 lands in the (0.01, 0.1] bucket: 10 below, 30 at the
	// bound, so 0.01 + 0.09*(21-10)/20 = 0.0595.
	p50, ok := m.Quantile("cube_http_request_duration_seconds", 0.5, sel)
	if !ok || math.Abs(p50-0.0595) > 1e-9 {
		t.Errorf("p50 = %v, %v; want 0.0595", p50, ok)
	}
	// Rank 0.99*42 = 41.58 exceeds the 40 observations at le=1, so it
	// falls in the +Inf overflow bucket and clamps to the largest finite
	// bound.
	p99, ok := m.Quantile("cube_http_request_duration_seconds", 0.99, sel)
	if !ok || p99 != 1 {
		t.Errorf("p99 = %v, %v; want clamp to 1", p99, ok)
	}
	if _, ok := m.Quantile("cube_http_request_duration_seconds", 0.5, map[string]string{"route": "/nope"}); ok {
		t.Error("quantile of absent series reported ok")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"name_only\n",
		`unterminated{a="b" 1` + "\n",
		`badvalue{a="b"} fish` + "\n",
		`dangling{a="b\` + "\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}
