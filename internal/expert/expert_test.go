package expert

import (
	"math"
	"strings"
	"testing"

	"cube/internal/apps"
	"cube/internal/core"
	"cube/internal/trace"
)

const eps = 1e-12

func approx(a, b float64) bool { return math.Abs(a-b) <= eps }

// tb is a small helper for building hand-crafted traces.
type tb struct {
	tr *trace.Trace
}

func newTB(np int) *tb {
	return &tb{tr: trace.New("hand", np)}
}

func (b *tb) enter(rank int, t float64, region string) {
	id := b.tr.DefineRegion(region, modOf(region), 0)
	b.tr.Append(trace.Event{Kind: trace.Enter, Time: t, Rank: int32(rank), Region: id, Partner: trace.NoPartner})
}

func (b *tb) exit(rank int, t float64, region string) {
	id := b.tr.DefineRegion(region, modOf(region), 0)
	b.tr.Append(trace.Event{Kind: trace.Exit, Time: t, Rank: int32(rank), Region: id, Partner: trace.NoPartner})
}

func (b *tb) collExit(rank int, t float64, region string, kind trace.CollKind, seq, root int, bytes int64) {
	id := b.tr.DefineRegion(region, modOf(region), 0)
	b.tr.Append(trace.Event{Kind: trace.Exit, Time: t, Rank: int32(rank), Region: id, Partner: trace.NoPartner,
		Coll: kind, CollSeq: int32(seq), Root: int32(root), Bytes: bytes})
}

func (b *tb) send(rank int, t float64, dst, tag int, bytes int64) {
	b.tr.Append(trace.Event{Kind: trace.Send, Time: t, Rank: int32(rank), Region: -1,
		Partner: int32(dst), Tag: int32(tag), Bytes: bytes})
}

func (b *tb) recv(rank int, t float64, src, tag int, bytes int64) {
	b.tr.Append(trace.Event{Kind: trace.Recv, Time: t, Rank: int32(rank), Region: -1,
		Partner: int32(src), Tag: int32(tag), Bytes: bytes})
}

func modOf(region string) string {
	if strings.HasPrefix(region, "MPI_") {
		return "libmpi"
	}
	return "app"
}

func (b *tb) analyze(t *testing.T) *core.Experiment {
	t.Helper()
	b.tr.Sort()
	e, err := Analyze(b.tr, nil)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return e
}

func metricAt(e *core.Experiment, metric, call string, rank int) float64 {
	m := e.FindMetricByName(metric)
	c := e.FindCallNode(call)
	th := e.FindThread(rank, 0)
	if m == nil || c == nil || th == nil {
		return math.NaN()
	}
	return e.Severity(m, c, th)
}

func TestExecutionTimeExclusive(t *testing.T) {
	b := newTB(1)
	b.enter(0, 0.0, "main")
	b.enter(0, 1.0, "solver")
	b.exit(0, 4.0, "solver")
	b.exit(0, 10.0, "main")
	e := b.analyze(t)

	// main exclusive: 10 - 3 = 7; solver: 3.
	if got := metricAt(e, MetricExecution, "main", 0); !approx(got, 7) {
		t.Errorf("main execution = %v, want 7", got)
	}
	if got := metricAt(e, MetricExecution, "main/solver", 0); !approx(got, 3) {
		t.Errorf("solver execution = %v, want 3", got)
	}
	// Visits.
	if got := metricAt(e, MetricVisits, "main/solver", 0); got != 1 {
		t.Errorf("solver visits = %v", got)
	}
	// Inclusive time over the whole tree equals wall time.
	total := e.MetricInclusive(e.FindMetricByName(MetricTime))
	if !approx(total, 10) {
		t.Errorf("total time = %v, want 10", total)
	}
}

func TestCallTreeSharedAcrossRanks(t *testing.T) {
	b := newTB(2)
	for r := 0; r < 2; r++ {
		b.enter(r, 0, "main")
		b.enter(r, 1, "work")
		b.exit(r, 2, "work")
		b.exit(r, 3, "main")
	}
	e := b.analyze(t)
	if len(e.CallRoots()) != 1 {
		t.Fatalf("ranks with identical structure must share one call tree")
	}
	if got := e.MetricValue(e.FindMetricByName(MetricExecution), e.FindCallNode("main/work")); !approx(got, 2) {
		t.Errorf("work total = %v, want 2", got)
	}
}

func TestLateSenderPattern(t *testing.T) {
	b := newTB(2)
	// Rank 1 computes until t=5, then sends. Rank 0 waits in MPI_Recv
	// from t=1; message arrives at t=6.
	b.enter(0, 0, "main")
	b.enter(0, 1, "MPI_Recv")
	b.recv(0, 6, 1, 7, 4096)
	b.exit(0, 6, "MPI_Recv")
	b.exit(0, 8, "main")

	b.enter(1, 0, "main")
	b.enter(1, 5, "MPI_Send")
	b.send(1, 5, 0, 7, 4096)
	b.exit(1, 5.1, "MPI_Send")
	b.exit(1, 8, "main")
	e := b.analyze(t)

	// Late sender = send start (5) - recv enter (1) = 4; remaining
	// 6-1-4 = 1 is plain P2P.
	if got := metricAt(e, MetricLateSender, "main/MPI_Recv", 0); !approx(got, 4) {
		t.Errorf("late sender = %v, want 4", got)
	}
	if got := metricAt(e, MetricP2P, "main/MPI_Recv", 0); !approx(got, 1) {
		t.Errorf("recv p2p remainder = %v, want 1", got)
	}
	// Send side accounted as P2P.
	if got := metricAt(e, MetricP2P, "main/MPI_Send", 1); !approx(got, 0.1) {
		t.Errorf("send p2p = %v, want 0.1", got)
	}
	// Volume metrics.
	if got := metricAt(e, MetricBytesSent, "main/MPI_Send", 1); got != 4096 {
		t.Errorf("bytes sent = %v", got)
	}
	if got := metricAt(e, MetricBytesRecv, "main/MPI_Recv", 0); got != 4096 {
		t.Errorf("bytes received = %v", got)
	}
}

func TestNoLateSenderWhenSendFirst(t *testing.T) {
	b := newTB(2)
	b.enter(0, 0, "main")
	b.enter(0, 0.1, "MPI_Send")
	b.send(0, 0.1, 1, 1, 100)
	b.exit(0, 0.2, "MPI_Send")
	b.exit(0, 0.3, "main")

	b.enter(1, 0, "main")
	b.enter(1, 5, "MPI_Recv") // long after the send
	b.recv(1, 5.01, 0, 1, 100)
	b.exit(1, 5.01, "MPI_Recv")
	b.exit(1, 6, "main")
	e := b.analyze(t)
	if got := metricAt(e, MetricLateSender, "main/MPI_Recv", 1); !approx(got, 0) {
		t.Errorf("late sender = %v, want 0 (send preceded recv)", got)
	}
}

func TestWrongOrderPattern(t *testing.T) {
	b := newTB(3)
	// Rank 1 sends at t=1 (tag 1), rank 2 sends at t=3 (tag 2). Rank 0
	// asks for tag 2 FIRST (waits until 3), then tag 1 — the first wait
	// happened although rank 1's message (sent earlier) was available:
	// wrong order.
	b.enter(0, 0, "main")
	b.enter(0, 0.5, "MPI_Recv")
	b.recv(0, 3.1, 2, 2, 64)
	b.exit(0, 3.1, "MPI_Recv")
	b.enter(0, 3.2, "MPI_Recv")
	b.recv(0, 3.3, 1, 1, 64)
	b.exit(0, 3.3, "MPI_Recv")
	b.exit(0, 4, "main")

	b.enter(1, 0, "main")
	b.enter(1, 1, "MPI_Send")
	b.send(1, 1, 0, 1, 64)
	b.exit(1, 1.1, "MPI_Send")
	b.exit(1, 4, "main")

	b.enter(2, 0, "main")
	b.enter(2, 3, "MPI_Send")
	b.send(2, 3, 0, 2, 64)
	b.exit(2, 3.1, "MPI_Send")
	b.exit(2, 4, "main")
	e := b.analyze(t)

	// The tag-2 wait (3 - 0.5 = 2.5) is late-sender waiting in wrong
	// order: a message posted at t=1 was pending for the same receiver.
	if got := metricAt(e, MetricWrongOrder, "main/MPI_Recv", 0); !approx(got, 2.5) {
		t.Errorf("wrong order = %v, want 2.5", got)
	}
	// The tag-1 receive found its message long sent: no late sender.
	if got := metricAt(e, MetricLateSender, "main/MPI_Recv", 0); !approx(got, 0) {
		t.Errorf("late sender (excl) = %v, want 0", got)
	}
}

func TestBarrierPattern(t *testing.T) {
	b := newTB(2)
	// Rank 0 enters at 1, rank 1 at 3 (maxEnter). Exits at 4.0 and 4.5
	// (minExit 4.0).
	for r, enter := range []float64{1, 3} {
		b.enter(r, 0, "main")
		b.enter(r, enter, "MPI_Barrier")
	}
	b.collExit(0, 4.0, "MPI_Barrier", trace.CollBarrier, 0, -1, 0)
	b.collExit(1, 4.5, "MPI_Barrier", trace.CollBarrier, 0, -1, 0)
	b.exit(0, 5, "main")
	b.exit(1, 5, "main")
	e := b.analyze(t)

	// Rank 0: wait = 3-1 = 2, completion = 4.0-4.0 = 0, middle = 1.
	if got := metricAt(e, MetricWaitAtBarrier, "main/MPI_Barrier", 0); !approx(got, 2) {
		t.Errorf("rank0 wait = %v, want 2", got)
	}
	if got := metricAt(e, MetricSync, "main/MPI_Barrier", 0); !approx(got, 1) {
		t.Errorf("rank0 middle = %v, want 1", got)
	}
	if got := metricAt(e, MetricBarrierCompl, "main/MPI_Barrier", 0); !approx(got, 0) {
		t.Errorf("rank0 completion = %v, want 0", got)
	}
	// Rank 1: wait = 0, completion = 4.5-4.0 = 0.5, middle = 1.
	if got := metricAt(e, MetricWaitAtBarrier, "main/MPI_Barrier", 1); !approx(got, 0) {
		t.Errorf("rank1 wait = %v", got)
	}
	if got := metricAt(e, MetricBarrierCompl, "main/MPI_Barrier", 1); !approx(got, 0.5) {
		t.Errorf("rank1 completion = %v, want 0.5", got)
	}
	// Conservation: wait+middle+completion = total barrier time.
	var sum float64
	for _, name := range []string{MetricWaitAtBarrier, MetricSync, MetricBarrierCompl} {
		sum += e.MetricTotal(e.FindMetricByName(name))
	}
	if !approx(sum, (4.0-1)+(4.5-3)) {
		t.Errorf("barrier time not conserved: %v", sum)
	}
}

func TestWaitAtNxNPattern(t *testing.T) {
	b := newTB(2)
	for r, enter := range []float64{0.5, 2.0} {
		b.enter(r, 0, "main")
		b.enter(r, enter, "MPI_Alltoall")
	}
	b.collExit(0, 3.0, "MPI_Alltoall", trace.CollAllToAll, 0, -1, 1024)
	b.collExit(1, 3.0, "MPI_Alltoall", trace.CollAllToAll, 0, -1, 1024)
	b.exit(0, 4, "main")
	b.exit(1, 4, "main")
	e := b.analyze(t)

	if got := metricAt(e, MetricWaitAtNxN, "main/MPI_Alltoall", 0); !approx(got, 1.5) {
		t.Errorf("rank0 NxN wait = %v, want 1.5", got)
	}
	if got := metricAt(e, MetricCollective, "main/MPI_Alltoall", 0); !approx(got, 1.0) {
		t.Errorf("rank0 collective = %v, want 1.0", got)
	}
	if got := metricAt(e, MetricWaitAtNxN, "main/MPI_Alltoall", 1); !approx(got, 0) {
		t.Errorf("rank1 NxN wait = %v, want 0", got)
	}
}

func TestAllGatherPattern(t *testing.T) {
	b := newTB(2)
	for r, enter := range []float64{0.5, 2.0} {
		b.enter(r, 0, "main")
		b.enter(r, enter, "MPI_Allgather")
	}
	b.collExit(0, 3.0, "MPI_Allgather", trace.CollAllGather, 0, -1, 1024)
	b.collExit(1, 3.0, "MPI_Allgather", trace.CollAllGather, 0, -1, 1024)
	b.exit(0, 4, "main")
	b.exit(1, 4, "main")
	e := b.analyze(t)
	if got := metricAt(e, MetricWaitAtNxN, "main/MPI_Allgather", 0); !approx(got, 1.5) {
		t.Errorf("allgather NxN wait = %v, want 1.5", got)
	}
}

func TestAnalyzeAttachesTopology(t *testing.T) {
	b := newTB(4)
	for r := 0; r < 4; r++ {
		b.enter(r, 0, "main")
		b.exit(r, 1, "main")
	}
	b.tr.Sort()
	topo, err := core.NewCartesian("grid", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Analyze(b.tr, &Options{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Topology().Equal(topo) {
		t.Errorf("topology not attached")
	}
	// The analyzer owns a copy.
	e.Topology().Coords[0][0] = 1
	if topo.Coords[0][0] != 0 {
		t.Errorf("analyzer aliased the caller's topology")
	}
}

func TestLateBroadcastPattern(t *testing.T) {
	b := newTB(2)
	// Root (rank 1) enters late at t=2; rank 0 waits from t=0.5.
	b.enter(0, 0, "main")
	b.enter(0, 0.5, "MPI_Bcast")
	b.enter(1, 0, "main")
	b.enter(1, 2.0, "MPI_Bcast")
	b.collExit(0, 3, "MPI_Bcast", trace.CollBcast, 0, 1, 4096)
	b.collExit(1, 3, "MPI_Bcast", trace.CollBcast, 0, 1, 4096)
	b.exit(0, 4, "main")
	b.exit(1, 4, "main")
	e := b.analyze(t)

	if got := metricAt(e, MetricLateBroadcast, "main/MPI_Bcast", 0); !approx(got, 1.5) {
		t.Errorf("late broadcast = %v, want 1.5", got)
	}
	if got := metricAt(e, MetricLateBroadcast, "main/MPI_Bcast", 1); !approx(got, 0) {
		t.Errorf("root late broadcast = %v, want 0", got)
	}
}

func TestEarlyReducePattern(t *testing.T) {
	b := newTB(2)
	// Root (rank 0) enters at 0.5, sender (rank 1) at 2: root waits 1.5.
	b.enter(0, 0, "main")
	b.enter(0, 0.5, "MPI_Reduce")
	b.enter(1, 0, "main")
	b.enter(1, 2.0, "MPI_Reduce")
	b.collExit(0, 3, "MPI_Reduce", trace.CollReduce, 0, 0, 64)
	b.collExit(1, 3, "MPI_Reduce", trace.CollReduce, 0, 0, 64)
	b.exit(0, 4, "main")
	b.exit(1, 4, "main")
	e := b.analyze(t)

	if got := metricAt(e, MetricEarlyReduce, "main/MPI_Reduce", 0); !approx(got, 1.5) {
		t.Errorf("early reduce = %v, want 1.5", got)
	}
	if got := metricAt(e, MetricEarlyReduce, "main/MPI_Reduce", 1); !approx(got, 0) {
		t.Errorf("sender early reduce = %v, want 0", got)
	}
}

func TestCounterAccumulation(t *testing.T) {
	b := newTB(1)
	b.tr.Counters = []string{"PAPI_FP_INS"}
	add := func(kind trace.Kind, tm float64, region string, v int64) {
		id := b.tr.DefineRegion(region, modOf(region), 0)
		b.tr.Append(trace.Event{Kind: kind, Time: tm, Rank: 0, Region: id,
			Partner: trace.NoPartner, Counters: []int64{v}})
	}
	add(trace.Enter, 0, "main", 0)
	add(trace.Enter, 1, "inner", 100)
	add(trace.Exit, 2, "inner", 400)
	add(trace.Exit, 3, "main", 500)
	e := b.analyze(t)

	// inner: 300, main exclusive: 500 - 300 = 200.
	if got := metricAt(e, "PAPI_FP_INS", "main/inner", 0); got != 300 {
		t.Errorf("inner counter = %v, want 300", got)
	}
	if got := metricAt(e, "PAPI_FP_INS", "main", 0); got != 200 {
		t.Errorf("main counter = %v, want 200", got)
	}
}

func TestAnalyzeRejectsInvalidTrace(t *testing.T) {
	b := newTB(1)
	b.enter(0, 0, "main") // never exited
	b.tr.Sort()
	if _, err := Analyze(b.tr, nil); err == nil {
		t.Errorf("invalid trace accepted")
	}
}

func TestAnalyzeRejectsOrphanReceive(t *testing.T) {
	b := newTB(2)
	b.enter(0, 0, "main")
	b.enter(0, 1, "MPI_Recv")
	b.recv(0, 2, 1, 1, 8) // no matching send anywhere
	b.exit(0, 2, "MPI_Recv")
	b.exit(0, 3, "main")
	b.enter(1, 0, "main")
	b.exit(1, 3, "main")
	b.tr.Sort()
	if _, err := Analyze(b.tr, nil); err == nil || !strings.Contains(err.Error(), "no matching send") {
		t.Errorf("orphan receive: %v", err)
	}
}

func TestOptionsSystemShape(t *testing.T) {
	b := newTB(4)
	for r := 0; r < 4; r++ {
		b.enter(r, 0, "main")
		b.exit(r, 1, "main")
	}
	b.tr.Sort()
	e, err := Analyze(b.tr, &Options{Machine: "torc", Nodes: 2, Title: "custom"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Title != "custom" {
		t.Errorf("title = %q", e.Title)
	}
	if e.Machines()[0].Name != "torc" || len(e.Machines()[0].Nodes()) != 2 {
		t.Errorf("system shape wrong")
	}
}

// Integration: a full PESCAN run analyzed end-to-end conserves time — the
// inclusive Time total equals the sum of all ranks' main-region durations.
func TestPescanTimeConservation(t *testing.T) {
	run, err := apps.RunPescan(apps.PescanConfig{Barriers: true, Seed: 5, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Analyze(run.Trace, &Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("experiment invalid: %v", err)
	}
	total := e.MetricInclusive(e.FindMetricByName(MetricTime))
	var wall float64
	for _, d := range run.RankEnd {
		wall += d
	}
	if math.Abs(total-wall) > 1e-6*wall {
		t.Errorf("time not conserved: analyzed %v, simulated %v", total, wall)
	}
	// No negative severities in an original experiment.
	neg := false
	e.EachSeverity(func(m *core.Metric, c *core.CallNode, th *core.Thread, v float64) {
		if v < -1e-9 {
			neg = true
			t.Logf("negative severity %v at (%s, %s)", v, m.Name, c.Path())
		}
	})
	if neg {
		t.Errorf("original experiment contains negative severities")
	}
}

// Integration: sweep3d produces substantial Late Sender waiting
// concentrated at MPI_Recv (the §5.2 premise).
func TestSweep3DLateSenderConcentration(t *testing.T) {
	run, err := apps.RunSweep3D(apps.Sweep3DConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Analyze(run.Trace, &Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	ls := e.MetricInclusive(e.FindMetricByName(MetricLateSender))
	total := e.MetricInclusive(e.FindMetricByName(MetricTime))
	if ls/total < 0.10 {
		t.Errorf("late sender share = %.1f%%, want >= 10%%", 100*ls/total)
	}
	// All late-sender severity sits at MPI_Recv call paths.
	m := e.FindMetricByName(MetricLateSender)
	for _, cn := range e.CallNodes() {
		if v := e.MetricValue(m, cn); v > 0 && cn.Callee().Name != "MPI_Recv" {
			t.Errorf("late sender at %s", cn.Path())
		}
	}
}
