// Package expert is a post-mortem trace analyzer in the style of EXPERT:
// it searches event traces of message-passing applications for execution
// patterns that indicate inefficient behaviour, and transforms the trace
// into a compact representation of performance behaviour — a mapping of
// (performance problem, call path, location) onto the time spent on that
// problem at that call path and location — stored as a CUBE experiment.
//
// The performance problems are organised in a specialization hierarchy from
// general (communication overhead) to specific (a receiver waiting for a
// message because the sender started late).
package expert

import "cube/internal/core"

// Names of the metrics in EXPERT's specialization hierarchy. The severity
// stored for each metric is exclusive: the value attributed to exactly that
// problem, not including its more specific descendants.
const (
	MetricTime          = "Time"
	MetricExecution     = "Execution"
	MetricMPI           = "MPI"
	MetricCommunication = "Communication"
	MetricCollective    = "Collective"
	MetricWaitAtNxN     = "Wait at N x N"
	MetricLateBroadcast = "Late Broadcast"
	MetricEarlyReduce   = "Early Reduce"
	MetricP2P           = "P2P"
	MetricLateSender    = "Late Sender"
	MetricWrongOrder    = "Messages in Wrong Order"
	MetricLateReceiver  = "Late Receiver"
	MetricSync          = "Synchronization"
	MetricWaitAtBarrier = "Wait at Barrier"
	MetricBarrierCompl  = "Barrier Completion"
	MetricOMP           = "OMP"
	MetricOMPBarrier    = "Wait at OpenMP Barrier"
	MetricIdleThreads   = "Idle Threads"

	MetricVisits    = "Visits"
	MetricCommVol   = "Communication Volume"
	MetricBytesSent = "Bytes Sent"
	MetricBytesRecv = "Bytes Received"
)

// timeMetrics bundles the nodes of the time hierarchy for severity
// attribution during analysis.
type timeMetrics struct {
	time, execution, mpi              *core.Metric
	comm, coll, waitNxN, lateBcast    *core.Metric
	earlyReduce                       *core.Metric
	p2p, lateSender, wrongOrder       *core.Metric
	lateReceiver                      *core.Metric
	sync, waitBarrier, barrierCompl   *core.Metric
	omp, ompBarrier, idle             *core.Metric
	visits, commVol, bSent, bReceived *core.Metric
}

// buildMetrics creates EXPERT's metric hierarchy in the experiment:
//
//	Time
//	└── Execution
//	    └── MPI
//	        ├── Communication
//	        │   ├── Collective
//	        │   │   ├── Wait at N x N
//	        │   │   ├── Late Broadcast
//	        │   │   └── Early Reduce
//	        │   └── P2P
//	        │       ├── Late Sender
//	        │       │   └── Messages in Wrong Order
//	        │       └── Late Receiver
//	        └── Synchronization
//	            ├── Wait at Barrier
//	            └── Barrier Completion
//	    └── OMP
//	        └── Wait at OpenMP Barrier
//	└── Idle Threads
//	Visits                       (occurrences)
//	Communication Volume         (bytes)
//	├── Bytes Sent
//	└── Bytes Received
func buildMetrics(e *core.Experiment) *timeMetrics {
	tm := &timeMetrics{}
	tm.time = e.NewMetric(MetricTime, core.Seconds, "Total wall-clock time accumulated over all locations")
	tm.execution = tm.time.NewChild(MetricExecution, "Time spent executing application code")
	tm.mpi = tm.execution.NewChild(MetricMPI, "Time spent in MPI calls")
	tm.comm = tm.mpi.NewChild(MetricCommunication, "Time spent in MPI communication calls")
	tm.coll = tm.comm.NewChild(MetricCollective, "Time spent in collective communication")
	tm.waitNxN = tm.coll.NewChild(MetricWaitAtNxN, "Waiting time in front of N-to-N operations until the last participant enters")
	tm.lateBcast = tm.coll.NewChild(MetricLateBroadcast, "Waiting time of destination processes entering a 1-to-N operation before the root")
	tm.earlyReduce = tm.coll.NewChild(MetricEarlyReduce, "Waiting time of the root of an N-to-1 operation entering before its senders")
	tm.p2p = tm.comm.NewChild(MetricP2P, "Time spent in point-to-point communication")
	tm.lateSender = tm.p2p.NewChild(MetricLateSender, "Receiver blocked because the corresponding send started late")
	tm.wrongOrder = tm.lateSender.NewChild(MetricWrongOrder, "Late-sender waiting caused by messages received in the wrong order")
	tm.lateReceiver = tm.p2p.NewChild(MetricLateReceiver, "Sender blocked because the receiver was not ready (rendezvous)")
	tm.sync = tm.mpi.NewChild(MetricSync, "Time spent in MPI synchronization (barriers)")
	tm.waitBarrier = tm.sync.NewChild(MetricWaitAtBarrier, "Waiting time inside a barrier for the last process to reach it")
	tm.barrierCompl = tm.sync.NewChild(MetricBarrierCompl, "Time inside a barrier after the first process has left it")
	tm.omp = tm.execution.NewChild(MetricOMP, "Time spent in the OpenMP runtime (parallel-region management and barriers)")
	tm.ompBarrier = tm.omp.NewChild(MetricOMPBarrier, "Waiting time of a thread at the implicit join barrier of a parallel region")
	tm.idle = tm.time.NewChild(MetricIdleThreads, "Time worker threads idle while their process executes serial code")

	tm.visits = e.NewMetric(MetricVisits, core.Occurrences, "Number of visits of a call path")
	tm.commVol = e.NewMetric(MetricCommVol, core.Bytes, "Point-to-point and collective data volume")
	tm.bSent = tm.commVol.NewChild(MetricBytesSent, "Bytes sent in point-to-point operations")
	tm.bReceived = tm.commVol.NewChild(MetricBytesRecv, "Bytes received in point-to-point operations")
	return tm
}
