package expert

import (
	"math"
	"testing"

	"cube/internal/counters"
	"cube/internal/mpisim"
	"cube/internal/trace"
)

// rendezvousRun simulates a 2-rank program where rank 0 posts a large
// rendezvous send at t=0 while rank 1 only posts its receive at t=0.05:
// the sender must block (Late Receiver).
func rendezvousRun(t *testing.T) *mpisim.Run {
	t.Helper()
	cfg := mpisim.Config{Program: "rv", NumRanks: 2, Seed: 1, RendezvousBytes: 1 << 16}
	run, err := mpisim.Simulate(cfg, func(b *mpisim.B) {
		b.Enter("main")
		if b.Rank() == 0 {
			b.Send(1, 5, 1<<20) // 1 MiB: rendezvous
		} else {
			b.Compute(0.05, counters.Work{})
			b.Recv(0, 5)
		}
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestSimulatorRendezvousBlocksSender(t *testing.T) {
	run := rendezvousRun(t)
	cfg := run.Config
	// Transfer starts when the receiver posts at 0.05.
	wantArrival := 0.05 + cfg.Latency + float64(1<<20)/cfg.Bandwidth
	var sendExit float64
	for _, ev := range run.Trace.Events {
		if ev.Kind == trace.Exit && ev.Rank == 0 && run.Trace.RegionName(ev.Region) == "MPI_Send" {
			sendExit = ev.Time
		}
		if ev.Kind == trace.Send && ev.Root != 1 {
			t.Errorf("rendezvous send not marked: %+v", ev)
		}
	}
	if math.Abs(sendExit-wantArrival) > 1e-12 {
		t.Errorf("sender exit = %v, want %v (blocked until transfer complete)", sendExit, wantArrival)
	}
}

func TestSimulatorEagerBelowThreshold(t *testing.T) {
	cfg := mpisim.Config{Program: "rv", NumRanks: 2, Seed: 1, RendezvousBytes: 1 << 16}
	run, err := mpisim.Simulate(cfg, func(b *mpisim.B) {
		b.Enter("main")
		if b.Rank() == 0 {
			b.Send(1, 5, 128) // small: eager even with rendezvous enabled
		} else {
			b.Compute(0.05, counters.Work{})
			b.Recv(0, 5)
		}
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range run.Trace.Events {
		if ev.Kind == trace.Send && ev.Root == 1 {
			t.Errorf("small message used rendezvous")
		}
	}
	if run.RankEnd[0] > 0.001 {
		t.Errorf("eager sender blocked: end %v", run.RankEnd[0])
	}
}

func TestLateReceiverPattern(t *testing.T) {
	run := rendezvousRun(t)
	e, err := Analyze(run.Trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	lr := e.FindMetricByName(MetricLateReceiver)
	got := e.Severity(lr, e.FindCallNode("main/MPI_Send"), e.FindThread(0, 0))
	// The sender entered MPI_Send at 0, the receiver posted at 0.05.
	if math.Abs(got-0.05) > 1e-12 {
		t.Errorf("late receiver = %v, want 0.05", got)
	}
	// The transfer remainder is plain P2P, positive.
	p2p := e.Severity(e.FindMetricByName(MetricP2P), e.FindCallNode("main/MPI_Send"), e.FindThread(0, 0))
	if p2p <= 0 {
		t.Errorf("p2p remainder = %v, want > 0", p2p)
	}
	// No late-sender waiting on the receiver: the send was posted long
	// before the receive.
	ls := e.MetricInclusive(e.FindMetricByName(MetricLateSender))
	if ls > 1e-9 {
		t.Errorf("late sender = %v, want ~0", ls)
	}
}

func TestLateReceiverZeroWhenReceiverFirst(t *testing.T) {
	cfg := mpisim.Config{Program: "rv", NumRanks: 2, Seed: 1, RendezvousBytes: 1 << 10}
	run, err := mpisim.Simulate(cfg, func(b *mpisim.B) {
		b.Enter("main")
		if b.Rank() == 0 {
			b.Compute(0.05, counters.Work{})
			b.Send(1, 5, 1<<20)
		} else {
			b.Recv(0, 5) // posted long before the send
		}
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Analyze(run.Trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	lr := e.MetricInclusive(e.FindMetricByName(MetricLateReceiver))
	if lr > 1e-9 {
		t.Errorf("late receiver = %v, want 0 (receiver was ready)", lr)
	}
	// The receiver instead waited: late sender.
	ls := e.MetricInclusive(e.FindMetricByName(MetricLateSender))
	if ls < 0.04 {
		t.Errorf("late sender = %v, want ~0.05", ls)
	}
}

func TestRendezvousDeadlockDetected(t *testing.T) {
	// Both ranks send large messages first: with rendezvous this is the
	// classic head-to-head deadlock that eager transmission would hide.
	cfg := mpisim.Config{Program: "rv", NumRanks: 2, Seed: 1, RendezvousBytes: 1 << 10}
	_, err := mpisim.Simulate(cfg, func(b *mpisim.B) {
		other := 1 - b.Rank()
		b.Enter("main")
		b.Send(other, 1, 1<<20)
		b.Recv(other, 1)
		b.Exit()
	})
	if err == nil {
		t.Fatalf("head-to-head rendezvous deadlock not detected")
	}
}
