package expert

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cube/internal/cone"
	"cube/internal/core"
	"cube/internal/counters"
	"cube/internal/mpisim"
)

// randomProgram generates a random but deadlock-free SPMD program: a
// sequence of phases drawn from compute, nested regions, shift-pattern
// point-to-point exchanges, collectives, and OpenMP parallel regions. All
// ranks follow the same control flow (true SPMD), which guarantees
// progress under the simulator's eager sends.
func randomProgram(r *rand.Rand, np, threads int) mpisim.Program {
	type phase struct {
		kind  int
		sec   float64
		bytes int64
		shift int
		root  int
		name  string
	}
	n := 2 + r.Intn(8)
	phases := make([]phase, n)
	for i := range phases {
		phases[i] = phase{
			kind:  r.Intn(8),
			sec:   0.0005 + r.Float64()*0.003,
			bytes: int64(64 + r.Intn(1<<14)),
			shift: 1 + r.Intn(np),
			root:  r.Intn(np),
			name:  fmt.Sprintf("phase%d", i),
		}
	}
	return func(b *mpisim.B) {
		rank := b.Rank()
		b.Enter("main")
		for _, p := range phases {
			switch p.kind {
			case 0:
				b.Region(p.name, func() {
					b.Compute(p.sec*(1+0.3*float64(rank)/float64(np)), counters.Work{Flops: p.sec * 1e8})
				})
			case 1:
				if p.shift%np != 0 {
					b.Region(p.name, func() {
						dst := (rank + p.shift) % np
						src := (rank - p.shift%np + np) % np
						b.Send(dst, 10+p.shift, p.bytes)
						b.Recv(src, 10+p.shift)
					})
				}
			case 2:
				b.Barrier()
			case 3:
				b.AllToAll(p.bytes)
			case 4:
				b.AllReduce(64)
			case 5:
				b.Bcast(p.root, p.bytes)
			case 6:
				b.Reduce(p.root, 64)
			case 7:
				if threads > 1 {
					b.Parallel(p.name, threads, func(tid int) (float64, counters.Work) {
						return p.sec * (1 + 0.5*float64(tid)/float64(threads)), counters.Work{Flops: p.sec * 1e8}
					})
				} else {
					b.Compute(p.sec, counters.Work{})
				}
			}
		}
		b.Exit()
	}
}

// Property: for any random program, the analyzed experiment is valid, has
// no negative severities, and conserves the total CPU allocation:
// inclusive Time equals sum over ranks of threads x rank wall time.
func TestQuickAnalysisConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		np := 2 + r.Intn(4)
		threads := 1 + r.Intn(3)
		prog := randomProgram(r, np, threads)
		run, err := mpisim.Simulate(mpisim.Config{Program: "rnd", NumRanks: np, Seed: seed}, prog)
		if err != nil {
			t.Logf("seed %d: simulate: %v", seed, err)
			return false
		}
		e, err := Analyze(run.Trace, nil)
		if err != nil {
			t.Logf("seed %d: analyze: %v", seed, err)
			return false
		}
		if err := e.Validate(); err != nil {
			t.Logf("seed %d: validate: %v", seed, err)
			return false
		}
		neg := false
		e.EachSeverity(func(m *core.Metric, c *core.CallNode, th *core.Thread, v float64) {
			if v < -1e-9 {
				neg = true
				t.Logf("seed %d: negative severity %v at (%s, %s)", seed, v, m.Name, c.Path())
			}
		})
		if neg {
			return false
		}
		perRank := run.Trace.ThreadsPerRank()
		var want float64
		for rank, end := range run.RankEnd {
			want += float64(perRank[rank]) * end
		}
		got := e.MetricInclusive(e.FindMetricByName(MetricTime))
		if math.Abs(got-want) > 1e-6*want {
			t.Logf("seed %d: allocation %v != %v", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: EXPERT's Time and Visits agree with CONE's on the same trace
// (two independent consumers of the instrumentation stream) for
// single-threaded programs, where both tools build identical call trees.
func TestQuickExpertConeAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		np := 2 + r.Intn(3)
		prog := randomProgram(r, np, 1)
		run, err := mpisim.Simulate(mpisim.Config{Program: "rnd", NumRanks: np, Seed: seed}, prog)
		if err != nil {
			return false
		}
		ee, err := Analyze(run.Trace, nil)
		if err != nil {
			return false
		}
		ce, err := cone.Profile(run.Trace, nil)
		if err != nil {
			return false
		}
		et := ee.MetricInclusive(ee.FindMetricByName(MetricTime))
		ct := ce.MetricInclusive(ce.FindMetricByName("Time"))
		if math.Abs(et-ct) > 1e-6*et {
			t.Logf("seed %d: expert time %v vs cone time %v", seed, et, ct)
			return false
		}
		ev := ee.MetricInclusive(ee.FindMetricByName(MetricVisits))
		cv := ce.MetricInclusive(ce.FindMetricByName("Visits"))
		if ev != cv {
			t.Logf("seed %d: visits %v vs %v", seed, ev, cv)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: analysis results are insensitive to trace event order: sorting
// the trace differently (it arrives time-sorted; we shuffle and re-sort)
// reproduces the same experiment.
func TestQuickAnalysisDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		np := 2 + r.Intn(3)
		prog := randomProgram(r, np, 2)
		run, err := mpisim.Simulate(mpisim.Config{Program: "rnd", NumRanks: np, Seed: seed}, prog)
		if err != nil {
			return false
		}
		e1, err := Analyze(run.Trace, nil)
		if err != nil {
			return false
		}
		// Shuffle and restore the global order.
		r.Shuffle(len(run.Trace.Events), func(i, j int) {
			run.Trace.Events[i], run.Trace.Events[j] = run.Trace.Events[j], run.Trace.Events[i]
		})
		run.Trace.Sort()
		e2, err := Analyze(run.Trace, nil)
		if err != nil {
			return false
		}
		return e1.Fingerprint() == e2.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
