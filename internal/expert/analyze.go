package expert

import (
	"fmt"
	"sort"
	"strings"

	"cube/internal/core"
	"cube/internal/trace"
)

// Options configure an analysis run.
type Options struct {
	// Machine and Nodes describe the system the trace was recorded on
	// (the trace itself carries only ranks and thread ids). Defaults:
	// "cluster", 1.
	Machine string
	Nodes   int
	// Title overrides the experiment title; default "<program> (expert)".
	Title string
	// Topology optionally attaches a Cartesian process topology to the
	// produced experiment (as instrumented MPI topology routines would).
	Topology *core.Topology
}

func (o *Options) orDefault(tr *trace.Trace) Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Machine == "" {
		out.Machine = "cluster"
	}
	if out.Nodes <= 0 {
		out.Nodes = 1
	}
	if out.Title == "" {
		out.Title = tr.Program + " (expert)"
	}
	return out
}

type chanKey struct {
	src, dst, tag int32
}

// matchInfo describes a matched message: the send posting time, whether the
// late-sender waiting was caused by messages arriving in the wrong order,
// and — for rendezvous-protocol messages — when the receiver posted its
// receive (the sender blocks until then: Late Receiver).
type matchInfo struct {
	sendTime   float64
	bytes      int64
	wrongOrder bool
	rendezvous bool
	recvEnter  float64
}

// collRec is one location's participation in a collective instance.
type collRec struct {
	rank  int
	tid   int
	enter float64
	exit  float64
	cnode *core.CallNode
	root  int32
}

type collInstKey struct {
	kind trace.CollKind
	seq  int32
}

// ompKey identifies an OpenMP join-barrier instance: they are local to one
// process.
type ompKey struct {
	rank int
	seq  int32
}

type frame struct {
	cn       *core.CallNode
	region   int32
	enter    float64
	childDur float64
	enterCnt []int64
	childCnt []int64
	recv     *matchInfo
	send     *matchInfo
	serial   bool // frame content runs outside any parallel region
}

type analyzer struct {
	tr       *trace.Trace
	e        *core.Experiment
	tm       *timeMetrics
	cntM     []*core.Metric
	threads  [][]*core.Thread
	roots    map[int32]*core.CallNode
	children map[*core.CallNode]map[int32]*core.CallNode
	regions  map[int32]*core.Region
	matches  map[chanKey][]matchInfo
	seen     map[chanKey]int
	seenSend map[chanKey]int
	colls    map[collInstKey][]collRec
	omps     map[ompKey][]collRec
	// ompInstances records, per rank and parallel-region id, the call
	// nodes of the region's instances in master-thread execution order,
	// so worker-thread lanes can attach to the right call path.
	ompInstances map[int]map[int32][]*core.CallNode
}

// Analyze transforms an event trace into a CUBE experiment: it builds the
// global call tree from the enter/exit nesting, accumulates visit counts,
// communication volume, and (when the trace carries them) per-record
// hardware counters, and searches the trace for inefficiency patterns whose
// severities populate EXPERT's specialization hierarchy — including the
// OpenMP patterns (join-barrier waiting and idle threads) for hybrid
// multi-threaded traces.
func Analyze(tr *trace.Trace, opts *Options) (*core.Experiment, error) {
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("expert: %w", err)
	}
	o := opts.orDefault(tr)
	a := &analyzer{
		tr:           tr,
		e:            core.New(o.Title),
		roots:        map[int32]*core.CallNode{},
		children:     map[*core.CallNode]map[int32]*core.CallNode{},
		regions:      map[int32]*core.Region{},
		seen:         map[chanKey]int{},
		seenSend:     map[chanKey]int{},
		colls:        map[collInstKey][]collRec{},
		omps:         map[ompKey][]collRec{},
		ompInstances: map[int]map[int32][]*core.CallNode{},
	}
	a.tm = buildMetrics(a.e)
	for _, c := range tr.Counters {
		a.cntM = append(a.cntM, a.e.NewMetric(c, core.Occurrences, "Hardware counter accumulated per call path"))
	}
	a.threads = a.e.ThreadedSystem(o.Machine, o.Nodes, tr.ThreadsPerRank())
	if o.Topology != nil {
		a.e.SetTopology(o.Topology.Clone())
	}
	a.e.Attrs["expert.program"] = tr.Program
	a.e.Attrs["expert.ranks"] = fmt.Sprintf("%d", tr.NumRanks)

	if err := a.matchMessages(); err != nil {
		return nil, err
	}
	if err := a.replay(); err != nil {
		return nil, err
	}
	if err := a.collectivePatterns(); err != nil {
		return nil, err
	}
	a.ompBarrierPattern()
	if err := a.e.Validate(); err != nil {
		return nil, fmt.Errorf("expert: produced invalid experiment: %w", err)
	}
	return a.e, nil
}

// matchMessages pairs the k-th receive on every (src, dst, tag) channel with
// the k-th send (MPI message-matching order) and flags late-sender waiting
// caused by wrong-order message consumption: a receive whose matched send
// was posted after another still-pending send to the same destination.
func (a *analyzer) matchMessages() error {
	type pair struct {
		sendTime float64
		recvTime float64
		ch       chanKey
		idx      int
	}
	sends := map[chanKey][]trace.Event{}
	recvCount := map[chanKey]int{}
	a.matches = map[chanKey][]matchInfo{}
	perDst := map[int32][]pair{}
	// lastEnter tracks each rank's innermost region entry on the master
	// thread; a Recv record always follows the Enter of its MPI_Recv, so
	// this is the receive posting time used by Late-Receiver analysis.
	lastEnter := map[int32]float64{}
	for i := range a.tr.Events {
		ev := &a.tr.Events[i]
		switch ev.Kind {
		case trace.Enter:
			if ev.Thread == 0 {
				lastEnter[ev.Rank] = ev.Time
			}
		case trace.Send:
			k := chanKey{src: ev.Rank, dst: ev.Partner, tag: ev.Tag}
			sends[k] = append(sends[k], *ev)
		case trace.Recv:
			k := chanKey{src: ev.Partner, dst: ev.Rank, tag: ev.Tag}
			idx := recvCount[k]
			recvCount[k]++
			if idx >= len(sends[k]) {
				// The trace is time-sorted, so the matching send of any
				// completed receive must precede it.
				return fmt.Errorf("expert: receive %d on channel %d->%d tag %d has no matching send",
					idx, k.src, k.dst, k.tag)
			}
			s := sends[k][idx]
			a.matches[k] = append(a.matches[k], matchInfo{
				sendTime:   s.Time,
				bytes:      s.Bytes,
				rendezvous: s.Root == 1,
				recvEnter:  lastEnter[ev.Rank],
			})
			perDst[ev.Rank] = append(perDst[ev.Rank], pair{sendTime: s.Time, recvTime: ev.Time, ch: k, idx: idx})
		}
	}
	// Wrong-order detection per destination: the waiting for a matched
	// send S is wrong-order-induced when some send S' to the same
	// destination was posted before S but consumed after this receive.
	for _, pairs := range perDst {
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].sendTime < pairs[j].sendTime })
		maxRecvSoFar := -1.0
		for _, p := range pairs {
			if maxRecvSoFar > p.recvTime {
				a.matches[p.ch][p.idx].wrongOrder = true
			}
			if p.recvTime > maxRecvSoFar {
				maxRecvSoFar = p.recvTime
			}
		}
	}
	return nil
}

// regionFor interns a trace region in the experiment.
func (a *analyzer) regionFor(id int32) *core.Region {
	if r, ok := a.regions[id]; ok {
		return r
	}
	ri := a.tr.Regions[id]
	r := a.e.NewRegion(ri.Name, ri.Module, ri.Line, 0)
	a.regions[id] = r
	return r
}

// callNodeFor resolves (or creates) the call node for entering region id
// from parent (nil for a root).
func (a *analyzer) callNodeFor(parent *core.CallNode, id int32) *core.CallNode {
	if parent == nil {
		if cn, ok := a.roots[id]; ok {
			return cn
		}
		r := a.regionFor(id)
		site := a.e.NewCallSite(r.Module, a.tr.Regions[id].Line, r)
		cn := a.e.NewCallRoot(site)
		a.roots[id] = cn
		return cn
	}
	kids := a.children[parent]
	if kids == nil {
		kids = map[int32]*core.CallNode{}
		a.children[parent] = kids
	}
	if cn, ok := kids[id]; ok {
		return cn
	}
	r := a.regionFor(id)
	site := a.e.NewCallSite(parent.Callee().Module, a.tr.Regions[id].Line, r)
	cn := parent.NewChild(site)
	a.e.Invalidate()
	kids[id] = cn
	return cn
}

func isOMPParallel(name string) bool {
	return trace.IsOMPParallel(name)
}

func (a *analyzer) replay() error {
	perLoc := a.tr.PerLocation()
	for rank, lanes := range perLoc {
		for tid, idx := range lanes {
			var err error
			if tid == 0 {
				err = a.replayMaster(rank, idx)
			} else {
				err = a.replayWorker(rank, tid, idx)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// replayMaster processes a rank's thread-0 lane: the full application
// control flow including MPI operations and the master's share of parallel
// regions.
func (a *analyzer) replayMaster(rank int, idx []int) error {
	th := a.threads[rank][0]
	workers := a.threads[rank][1:]
	var stack []frame
	ompDepth := 0
	for _, i := range idx {
		ev := &a.tr.Events[i]
		switch ev.Kind {
		case trace.Enter:
			var parent *core.CallNode
			if len(stack) > 0 {
				parent = stack[len(stack)-1].cn
			}
			cn := a.callNodeFor(parent, ev.Region)
			name := a.tr.RegionName(ev.Region)
			f := frame{cn: cn, region: ev.Region, enter: ev.Time, enterCnt: ev.Counters,
				serial: ompDepth == 0 && !isOMPParallel(name)}
			if isOMPParallel(name) {
				byRegion := a.ompInstances[rank]
				if byRegion == nil {
					byRegion = map[int32][]*core.CallNode{}
					a.ompInstances[rank] = byRegion
				}
				byRegion[ev.Region] = append(byRegion[ev.Region], cn)
				ompDepth++
			}
			if len(a.cntM) > 0 {
				f.childCnt = make([]int64, len(a.cntM))
			}
			stack = append(stack, f)
			a.e.AddSeverity(a.tm.visits, cn, th, 1)
		case trace.Send:
			if len(stack) == 0 {
				return fmt.Errorf("expert: rank %d send outside any region", rank)
			}
			top := &stack[len(stack)-1]
			a.e.AddSeverity(a.tm.bSent, top.cn, th, float64(ev.Bytes))
			k := chanKey{src: ev.Rank, dst: ev.Partner, tag: ev.Tag}
			if idx := a.seenSend[k]; idx < len(a.matches[k]) {
				mi := a.matches[k][idx]
				top.send = &mi
			}
			a.seenSend[k]++
		case trace.Recv:
			if len(stack) == 0 {
				return fmt.Errorf("expert: rank %d receive outside any region", rank)
			}
			top := &stack[len(stack)-1]
			a.e.AddSeverity(a.tm.bReceived, top.cn, th, float64(ev.Bytes))
			k := chanKey{src: ev.Partner, dst: ev.Rank, tag: ev.Tag}
			mi := a.matches[k][a.seen[k]]
			a.seen[k]++
			top.recv = &mi
		case trace.Exit:
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			name := a.tr.RegionName(ev.Region)
			if isOMPParallel(name) {
				ompDepth--
			}
			dur := ev.Time - f.enter
			excl := dur - f.childDur
			if len(stack) > 0 {
				stack[len(stack)-1].childDur += dur
			}
			// Per-record hardware counters: exclusive deltas.
			if len(a.cntM) > 0 && len(ev.Counters) == len(a.cntM) && len(f.enterCnt) == len(a.cntM) {
				for ci := range a.cntM {
					total := ev.Counters[ci] - f.enterCnt[ci]
					a.e.AddSeverity(a.cntM[ci], f.cn, th, float64(total-f.childCnt[ci]))
					if len(stack) > 0 && stack[len(stack)-1].childCnt != nil {
						stack[len(stack)-1].childCnt[ci] += total
					}
				}
			}
			// Idle threads: while the master executes serial code, the
			// process's worker threads are idle.
			if f.serial && len(workers) > 0 && excl > 0 {
				for _, w := range workers {
					a.e.AddSeverity(a.tm.idle, f.cn, w, excl)
				}
			}
			// Time attribution.
			switch {
			case ev.Coll == trace.CollOMPBarrier:
				a.omps[ompKey{rank, ev.CollSeq}] = append(a.omps[ompKey{rank, ev.CollSeq}],
					collRec{rank: rank, tid: 0, enter: f.enter, exit: ev.Time, cnode: f.cn})
			case ev.Coll != trace.CollNone:
				key := collInstKey{ev.Coll, ev.CollSeq}
				a.colls[key] = append(a.colls[key],
					collRec{rank: rank, tid: 0, enter: f.enter, exit: ev.Time, cnode: f.cn, root: ev.Root})
			case f.recv != nil:
				ls := f.recv.sendTime
				if ls > ev.Time {
					ls = ev.Time
				}
				ls -= f.enter
				if ls < 0 {
					ls = 0
				}
				if f.recv.wrongOrder {
					a.e.AddSeverity(a.tm.wrongOrder, f.cn, th, ls)
				} else if ls > 0 {
					a.e.AddSeverity(a.tm.lateSender, f.cn, th, ls)
				}
				a.e.AddSeverity(a.tm.p2p, f.cn, th, excl-ls)
			case f.send != nil && f.send.rendezvous:
				// Rendezvous send: the sender blocked until the receiver
				// posted its receive — Late Receiver waiting.
				lr := f.send.recvEnter
				if lr > ev.Time {
					lr = ev.Time
				}
				lr -= f.enter
				if lr < 0 {
					lr = 0
				}
				a.e.AddSeverity(a.tm.lateReceiver, f.cn, th, lr)
				a.e.AddSeverity(a.tm.p2p, f.cn, th, excl-lr)
			case name == "MPI_Send":
				a.e.AddSeverity(a.tm.p2p, f.cn, th, excl)
			case strings.HasPrefix(name, "MPI_"):
				a.e.AddSeverity(a.tm.mpi, f.cn, th, excl)
			default:
				// User code and the master's work inside parallel
				// regions.
				a.e.AddSeverity(a.tm.execution, f.cn, th, excl)
			}
		}
	}
	return nil
}

// replayWorker processes a worker-thread lane: sequences of parallel-region
// instances, each attached to the call path the master opened the region
// under (matched by per-region instance order).
func (a *analyzer) replayWorker(rank, tid int, idx []int) error {
	if tid >= len(a.threads[rank]) {
		return fmt.Errorf("expert: rank %d thread %d exceeds system size", rank, tid)
	}
	th := a.threads[rank][tid]
	instSeen := map[int32]int{}
	var stack []frame
	for _, i := range idx {
		ev := &a.tr.Events[i]
		switch ev.Kind {
		case trace.Enter:
			var cn *core.CallNode
			if len(stack) == 0 {
				name := a.tr.RegionName(ev.Region)
				if !isOMPParallel(name) {
					return fmt.Errorf("expert: rank %d thread %d enters %q outside a parallel region",
						rank, tid, name)
				}
				insts := a.ompInstances[rank][ev.Region]
				k := instSeen[ev.Region]
				instSeen[ev.Region]++
				if k >= len(insts) {
					return fmt.Errorf("expert: rank %d thread %d has more instances of %q than the master",
						rank, tid, name)
				}
				cn = insts[k]
			} else {
				cn = a.callNodeFor(stack[len(stack)-1].cn, ev.Region)
			}
			stack = append(stack, frame{cn: cn, region: ev.Region, enter: ev.Time})
			a.e.AddSeverity(a.tm.visits, cn, th, 1)
		case trace.Exit:
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			dur := ev.Time - f.enter
			excl := dur - f.childDur
			if len(stack) > 0 {
				stack[len(stack)-1].childDur += dur
			}
			if ev.Coll == trace.CollOMPBarrier {
				a.omps[ompKey{rank, ev.CollSeq}] = append(a.omps[ompKey{rank, ev.CollSeq}],
					collRec{rank: rank, tid: tid, enter: f.enter, exit: ev.Time, cnode: f.cn})
			} else {
				a.e.AddSeverity(a.tm.execution, f.cn, th, excl)
			}
		default:
			return fmt.Errorf("expert: rank %d thread %d has a %v record (MPI on worker threads is not supported)",
				rank, tid, ev.Kind)
		}
	}
	if len(stack) != 0 {
		return fmt.Errorf("expert: rank %d thread %d lane ends inside a region", rank, tid)
	}
	return nil
}

// collectivePatterns distributes the duration of every MPI collective
// instance over the pattern metrics: waiting time before the last
// participant arrives (Wait at Barrier / Wait at N x N / Late Broadcast /
// Early Reduce), the collective execution itself, and — for barriers — the
// completion time after the first process has left.
func (a *analyzer) collectivePatterns() error {
	for key, recs := range a.colls {
		if len(recs) != a.tr.NumRanks {
			return fmt.Errorf("expert: collective %v instance %d has %d participants, want %d",
				key.kind, key.seq, len(recs), a.tr.NumRanks)
		}
		maxEnter, minExit := recs[0].enter, recs[0].exit
		var rootEnter float64
		for _, r := range recs {
			if r.enter > maxEnter {
				maxEnter = r.enter
			}
			if r.exit < minExit {
				minExit = r.exit
			}
			if int32(r.rank) == r.root {
				rootEnter = r.enter
			}
		}
		for _, r := range recs {
			th := a.threads[r.rank][0]
			dur := r.exit - r.enter
			switch key.kind {
			case trace.CollBarrier:
				wait := maxEnter - r.enter
				compl := r.exit - minExit
				if compl < 0 {
					compl = 0
				}
				middle := dur - wait - compl
				if middle < 0 {
					middle = 0
				}
				a.e.AddSeverity(a.tm.waitBarrier, r.cnode, th, wait)
				a.e.AddSeverity(a.tm.barrierCompl, r.cnode, th, compl)
				a.e.AddSeverity(a.tm.sync, r.cnode, th, middle)
			case trace.CollAllToAll, trace.CollAllReduce, trace.CollAllGather:
				wait := maxEnter - r.enter
				a.e.AddSeverity(a.tm.waitNxN, r.cnode, th, wait)
				a.e.AddSeverity(a.tm.coll, r.cnode, th, dur-wait)
			case trace.CollBcast:
				var wait float64
				if int32(r.rank) != r.root && rootEnter > r.enter {
					wait = rootEnter - r.enter
					if wait > dur {
						wait = dur
					}
				}
				a.e.AddSeverity(a.tm.lateBcast, r.cnode, th, wait)
				a.e.AddSeverity(a.tm.coll, r.cnode, th, dur-wait)
			case trace.CollReduce:
				var wait float64
				if int32(r.rank) == r.root && maxEnter > r.enter {
					wait = maxEnter - r.enter
					if wait > dur {
						wait = dur
					}
				}
				a.e.AddSeverity(a.tm.earlyReduce, r.cnode, th, wait)
				a.e.AddSeverity(a.tm.coll, r.cnode, th, dur-wait)
			default:
				a.e.AddSeverity(a.tm.coll, r.cnode, th, dur)
			}
		}
	}
	return nil
}

// ompBarrierPattern distributes every join-barrier instance: each thread's
// waiting until the last thread finishes its share of the parallel region
// becomes Wait-at-OpenMP-Barrier; any remainder is OpenMP runtime time.
func (a *analyzer) ompBarrierPattern() {
	for key, recs := range a.omps {
		maxEnter := recs[0].enter
		for _, r := range recs {
			if r.enter > maxEnter {
				maxEnter = r.enter
			}
		}
		for _, r := range recs {
			th := a.threads[key.rank][r.tid]
			wait := maxEnter - r.enter
			if wait < 0 {
				wait = 0
			}
			a.e.AddSeverity(a.tm.ompBarrier, r.cnode, th, wait)
			a.e.AddSeverity(a.tm.omp, r.cnode, th, (r.exit-r.enter)-wait)
		}
	}
}
