package expert

import (
	"math"
	"testing"

	"cube/internal/apps"
	"cube/internal/core"
	"cube/internal/counters"
	"cube/internal/mpisim"
)

// runHybrid simulates a minimal deterministic hybrid program: one serial
// phase of 2ms, one 3-thread parallel region with per-thread durations
// 10/20/30 ms, inside main.
func runHybrid(t *testing.T, np int) *core.Experiment {
	t.Helper()
	run, err := mpisim.Simulate(mpisim.Config{Program: "h", NumRanks: np, Seed: 1}, func(b *mpisim.B) {
		b.Enter("main")
		b.Region("serial", func() {
			b.Compute(0.002, counters.Work{})
		})
		b.Parallel("loop", 3, func(tid int) (float64, counters.Work) {
			return 0.010 * float64(tid+1), counters.Work{}
		})
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Analyze(run.Trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestOMPSystemHasThreadLevel(t *testing.T) {
	e := runHybrid(t, 2)
	for rank := 0; rank < 2; rank++ {
		p := e.FindProcess(rank)
		if len(p.Threads()) != 3 {
			t.Errorf("rank %d has %d threads, want 3", rank, len(p.Threads()))
		}
	}
}

func TestOMPWorkerTimeAttribution(t *testing.T) {
	e := runHybrid(t, 1)
	loop := e.FindCallNode("main/" + mpisim.OMPPrefix + "loop")
	if loop == nil {
		t.Fatalf("parallel region call node missing; call nodes: %v", paths(e))
	}
	exec := e.FindMetricByName(MetricExecution)
	// Thread work: 10, 20, 30 ms exclusive at the region node.
	for tid, want := range []float64{0.010, 0.020, 0.030} {
		got := e.Severity(exec, loop, e.FindThread(0, tid))
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("thread %d execution = %v, want %v", tid, got, want)
		}
	}
	// Visits: one per thread on the region.
	visits := e.FindMetricByName(MetricVisits)
	if got := e.MetricValue(visits, loop); got != 3 {
		t.Errorf("region visits = %v, want 3", got)
	}
}

func TestOMPJoinBarrierWait(t *testing.T) {
	e := runHybrid(t, 1)
	bar := e.FindCallNode("main/" + mpisim.OMPPrefix + "loop/" + mpisim.OMPBarrierRegion)
	if bar == nil {
		t.Fatalf("implicit barrier call node missing; call nodes: %v", paths(e))
	}
	wait := e.FindMetricByName(MetricOMPBarrier)
	// Join at 30ms after region start: thread 0 waits 20ms, thread 1
	// 10ms, thread 2 0.
	for tid, want := range []float64{0.020, 0.010, 0} {
		got := e.Severity(wait, bar, e.FindThread(0, tid))
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("thread %d barrier wait = %v, want %v", tid, got, want)
		}
	}
}

func TestOMPIdleThreads(t *testing.T) {
	e := runHybrid(t, 1)
	idle := e.FindMetricByName(MetricIdleThreads)
	serial := e.FindCallNode("main/serial")
	// During the 2ms serial phase, threads 1 and 2 idle.
	for _, tid := range []int{1, 2} {
		got := e.Severity(idle, serial, e.FindThread(0, tid))
		if math.Abs(got-0.002) > 1e-12 {
			t.Errorf("thread %d idle at serial = %v, want 0.002", tid, got)
		}
	}
	if got := e.Severity(idle, serial, e.FindThread(0, 0)); got != 0 {
		t.Errorf("master thread must not be idle: %v", got)
	}
	// Total idle = serial wall time outside parallel regions x workers:
	// (main excl + serial) x 2. main excl here is 0 (no compute between
	// regions), so 2 x 2ms = 4ms.
	total := e.MetricInclusive(idle)
	if math.Abs(total-0.004) > 1e-12 {
		t.Errorf("total idle = %v, want 0.004", total)
	}
}

func TestOMPTimeAllocationConservation(t *testing.T) {
	// Inclusive Time (= execution + waits + idle) must equal the total
	// CPU allocation: per rank, threads x wall time.
	e := runHybrid(t, 2)
	got := e.MetricInclusive(e.FindMetricByName(MetricTime))
	want := 2 * 3 * 0.032 // 2 ranks x 3 threads x (2ms serial + 30ms parallel)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("total allocation = %v, want %v", got, want)
	}
}

func TestHybridWithTraceCounters(t *testing.T) {
	// Counters are sampled on the master thread only; worker records carry
	// none. The analyzer must accumulate counter metrics without tripping
	// over the mixed record shapes.
	cfg := mpisim.Config{Program: "hc", NumRanks: 2, Seed: 5,
		TraceCounters: counters.EventSet{counters.TotalCycles, counters.FPIns}}
	run, err := mpisim.Simulate(cfg, func(b *mpisim.B) {
		b.Enter("main")
		b.Compute(0.002, counters.Work{Flops: 1e5})
		b.Parallel("loop", 2, func(tid int) (float64, counters.Work) {
			return 0.001 * float64(tid+1), counters.Work{Flops: 2e5}
		})
		b.Barrier()
		b.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Analyze(run.Trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	fp := e.FindMetricByName("PAPI_FP_INS")
	if fp == nil {
		t.Fatalf("counter metric missing")
	}
	// Per rank: 1e5 serial + 2x2e5 parallel = 5e5; two ranks = 1e6.
	if got := e.MetricInclusive(fp); got != 1e6 {
		t.Errorf("FP_INS total = %v, want 1e6", got)
	}
}

func TestHybridAppEndToEnd(t *testing.T) {
	run, err := apps.RunHybrid(apps.HybridConfig{Seed: 3, Iterations: 5, NoiseAmp: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Analyze(run.Trace, &Options{Machine: "smp", Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	idle := e.MetricInclusive(e.FindMetricByName(MetricIdleThreads))
	ompWait := e.MetricInclusive(e.FindMetricByName(MetricOMPBarrier))
	if idle <= 0 {
		t.Errorf("hybrid app produced no idle-thread time")
	}
	if ompWait <= 0 {
		t.Errorf("hybrid app produced no OpenMP barrier waiting")
	}
	// A balanced variant eliminates (most) join waiting.
	run2, err := apps.RunHybrid(apps.HybridConfig{Seed: 3, Iterations: 5, ThreadImbalance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Analyze(run2.Trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	ompWait2 := e2.MetricInclusive(e2.FindMetricByName(MetricOMPBarrier))
	if ompWait2 >= ompWait/2 {
		t.Errorf("balanced variant should roughly halve join waiting: %v vs %v", ompWait2, ompWait)
	}
	// The difference operator works across hybrid experiments (closure
	// with a thread-level system dimension).
	d, err := core.Difference(e, e2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("hybrid difference invalid: %v", err)
	}
}

func paths(e *core.Experiment) []string {
	var out []string
	for _, c := range e.CallNodes() {
		out = append(out, c.Path())
	}
	return out
}
