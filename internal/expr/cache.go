package expr

import (
	"container/list"
	"crypto/sha256"
	"strconv"
	"sync"

	"cube/internal/core"
	"cube/internal/obs"
)

// resultCache is the expression-digest result cache: evaluated
// subexpressions, keyed by canonical node digest × evaluation-options
// fingerprint, held as compacted columnar masters. A hit returns a clone
// (two flat array copies) instead of re-running kernels — the same
// master/clone discipline as the server's parse cache, so concurrent hits
// on one entry are pure reads.
//
// The cache is byte-budgeted: entries are charged an estimate of their
// resident size and evicted least-recently-used. An entry larger than the
// whole budget is never cached.
type resultCache struct {
	reg    *obs.Registry
	budget int64

	mu      sync.Mutex
	entries map[resultKey]*list.Element
	lru     *list.List // of *resultEntry; front = most recently used
	bytes   int64
}

// resultKey is the cache key: the canonical expression digest plus a
// fingerprint of the evaluation options that shape the result (call-path
// matching, system integration, engine). Workers is deliberately not part
// of the fingerprint: results are identical for every worker count.
type resultKey struct {
	node [sha256.Size]byte
	opts string
}

type resultEntry struct {
	key  resultKey
	size int64
	e    *core.Experiment
}

// optsFingerprint renders the result-shaping options. Engine is included
// conservatively: kernel and legacy results are asserted equal by the
// property suite, but keeping their cache lines separate means a cached
// result always came from the engine the caller asked for.
func optsFingerprint(o *core.Options) string {
	if o == nil {
		o = &core.Options{}
	}
	return "cm=" + strconv.Itoa(int(o.CallMatch)) + ";sys=" + strconv.Itoa(int(o.System)) +
		";machine=" + o.CollapsedMachine + ";engine=" + strconv.Itoa(int(o.Engine))
}

func newResultCache(budget int64, reg *obs.Registry) *resultCache {
	if budget <= 0 {
		return nil
	}
	return &resultCache{
		reg:     reg,
		budget:  budget,
		entries: map[resultKey]*list.Element{},
		lru:     list.New(),
	}
}

func (rc *resultCache) count(name string) {
	if rc != nil && rc.reg != nil {
		rc.reg.Counter(name).Inc()
	}
}

// get returns a private clone of the cached result, or nil. A nil cache
// never hits.
func (rc *resultCache) get(key resultKey) *core.Experiment {
	if rc == nil {
		return nil
	}
	rc.mu.Lock()
	el, ok := rc.entries[key]
	if !ok {
		rc.mu.Unlock()
		return nil
	}
	rc.lru.MoveToFront(el)
	master := el.Value.(*resultEntry).e
	rc.mu.Unlock()
	// Cloning a compacted master is pure reads, so concurrent hits on the
	// same entry proceed without the lock.
	return master.Clone()
}

// put inserts a compacted master under the key, evicting from the LRU
// tail until the byte budget holds again.
func (rc *resultCache) put(key resultKey, master *core.Experiment) {
	if rc == nil {
		return
	}
	size := estimateSize(master)
	if size > rc.budget {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if _, ok := rc.entries[key]; ok {
		return // a concurrent evaluation of the same expression won the race
	}
	for rc.bytes+size > rc.budget {
		back := rc.lru.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*resultEntry)
		rc.lru.Remove(back)
		delete(rc.entries, ent.key)
		rc.bytes -= ent.size
		rc.count("cube_expr_cache_evictions_total")
	}
	rc.entries[key] = rc.lru.PushFront(&resultEntry{key: key, size: size, e: master})
	rc.bytes += size
	if rc.reg != nil {
		rc.reg.Gauge("cube_expr_cache_bytes").Set(rc.bytes)
	}
}

// estimateSize approximates an experiment's resident bytes for the cache
// budget: the columnar severity store (one uint64 key + one float64 value
// per tuple) plus a flat per-metadata-node charge for the metric, call,
// and system forests. It is an estimate — the budget bounds order of
// magnitude, not bytes — but it is monotone in the quantities that
// actually dominate memory.
func estimateSize(e *core.Experiment) int64 {
	const (
		perTuple = 16  // packed key + value
		perNode  = 160 // tree node, names, pointers (amortized)
		base     = 1024
	)
	return base +
		perTuple*int64(e.NonZeroCount()) +
		perNode*int64(len(e.Metrics())+len(e.CallNodes())+len(e.Threads()))
}
