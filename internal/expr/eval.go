package expr

import (
	"context"
	"encoding/hex"
	"fmt"
	"sync"

	"cube/internal/core"
	"cube/internal/obs"
)

// Engine evaluates canonicalized expression plans. It owns the
// expression-digest result cache and deduplicates concurrent evaluations
// of the same expression (singleflight), so a burst of identical DAGs
// runs the kernels once. An Engine is safe for concurrent use.
//
// Metrics (registry from Config.Metrics):
//
//	cube_expr_requests_total        expressions evaluated (or served cached)
//	cube_expr_nodes_total           unique DAG nodes planned
//	cube_expr_cse_hits_total        subexpression references eliminated by CSE
//	cube_expr_eval_nodes_total      operator nodes actually executed
//	cube_expr_cache_hits_total      result-cache hits (node granularity)
//	cube_expr_cache_misses_total    operator nodes not found in the cache
//	cube_expr_cache_evictions_total LRU evictions under the byte budget
//	cube_expr_cache_bytes           resident size estimate of the cache
type Engine struct {
	reg   *obs.Registry
	cache *resultCache

	mu      sync.Mutex
	flights map[resultKey]*flight
}

// Config configures an Engine.
type Config struct {
	// CacheBytes is the byte budget of the expression-digest result
	// cache; 0 disables result caching (every request recomputes).
	CacheBytes int64
	// Metrics receives the cube_expr_* series; nil disables them.
	Metrics *obs.Registry
}

// NewEngine returns an evaluation engine.
func NewEngine(cfg Config) *Engine {
	return &Engine{
		reg:     cfg.Metrics,
		cache:   newResultCache(cfg.CacheBytes, cfg.Metrics),
		flights: map[resultKey]*flight{},
	}
}

// flight is one in-progress evaluation concurrent identical requests wait
// on; the winner publishes the compacted root master (or the error).
type flight struct {
	wg  sync.WaitGroup
	e   *core.Experiment
	err error
}

// Resolver supplies leaf operands: stored experiments by digest, inline
// request operands by index. The engine only ever reads the experiments a
// Resolver returns — operators never mutate operands — so a resolver may
// hand out shared pre-lowered masters (the server's parse cache does) as
// long as nothing else mutates them either. A bare-leaf root is the one
// exception: it is compacted (CompactSeverities) before the response
// clone, which a columnar-only master is indifferent to.
type Resolver func(ctx context.Context, leaf Leaf) (*core.Experiment, error)

// Stats reports what one evaluation did — the numbers the server folds
// into its wide event and the smoke tests assert on.
type Stats struct {
	Nodes      int  // unique DAG nodes after CSE
	CSEHits    int  // subexpression references eliminated by sharing
	CacheHits  int  // node results served from the expression-digest cache
	Evaluated  int  // operator nodes actually executed
	RootCached bool // whole expression answered without evaluating anything
}

func (g *Engine) count(name string, n int64) {
	if g.reg != nil {
		g.reg.Counter(name).Add(n)
	}
}

// Eval evaluates the plan and returns the root experiment, which the
// caller owns and may mutate freely. Identical concurrent evaluations are
// shared; repeated evaluations are served from the result cache without
// touching a kernel.
func (g *Engine) Eval(ctx context.Context, plan *Plan, opts *core.Options, resolve Resolver) (*core.Experiment, Stats, error) {
	stats := Stats{Nodes: len(plan.Nodes), CSEHits: plan.CSEHits}
	g.count("cube_expr_requests_total", 1)
	g.count("cube_expr_nodes_total", int64(stats.Nodes))
	g.count("cube_expr_cse_hits_total", int64(stats.CSEHits))

	fp := optsFingerprint(opts)
	rootKey := resultKey{node: plan.Root.Key, opts: fp}
	if e := g.cache.get(rootKey); e != nil {
		g.count("cube_expr_cache_hits_total", 1)
		stats.CacheHits++
		stats.RootCached = true
		return e, stats, nil
	}

	// Singleflight: the first evaluation of an expression runs, identical
	// concurrent requests wait and clone its result (sharing the error on
	// failure, so a poisoned expression does not dogpile the kernels).
	g.mu.Lock()
	if fl, ok := g.flights[rootKey]; ok {
		g.mu.Unlock()
		fl.wg.Wait()
		if fl.err != nil {
			return nil, stats, fl.err
		}
		g.count("cube_expr_cache_hits_total", 1)
		stats.CacheHits++
		stats.RootCached = true
		return fl.e.Clone(), stats, nil
	}
	fl := &flight{}
	fl.wg.Add(1)
	g.flights[rootKey] = fl
	g.mu.Unlock()

	masters, err := g.evalAll(ctx, plan, fp, opts, resolve, &stats, []*Node{plan.Root})
	var master *core.Experiment
	if err == nil {
		master = masters[plan.Root]
	}
	fl.e, fl.err = master, err
	fl.wg.Done()
	g.mu.Lock()
	delete(g.flights, rootKey)
	g.mu.Unlock()
	if err != nil {
		return nil, stats, err
	}
	return master.Clone(), stats, nil
}

// EvalMulti evaluates every root of a batched plan in one pass over the
// shared DAG and returns one experiment per root, in plan order, each
// owned by the caller. A subexpression common to several roots — or one
// root nested inside another — runs once. Batched evaluations skip the
// whole-request singleflight (their identity is the root set, which the
// node-granular result cache already deduplicates), so concurrent
// identical batches race only on cache insertion, benignly.
func (g *Engine) EvalMulti(ctx context.Context, plan *Plan, opts *core.Options, resolve Resolver) ([]*core.Experiment, Stats, error) {
	stats := Stats{Nodes: len(plan.Nodes), CSEHits: plan.CSEHits}
	g.count("cube_expr_requests_total", 1)
	g.count("cube_expr_nodes_total", int64(stats.Nodes))
	g.count("cube_expr_cse_hits_total", int64(stats.CSEHits))

	fp := optsFingerprint(opts)
	masters, err := g.evalAll(ctx, plan, fp, opts, resolve, &stats, plan.Roots)
	if err != nil {
		return nil, stats, err
	}
	outs := make([]*core.Experiment, len(plan.Roots))
	for i, r := range plan.Roots {
		outs[i] = masters[r].Clone()
	}
	stats.RootCached = stats.Evaluated == 0 && stats.CacheHits > 0
	return outs, stats, nil
}

// evalAll walks the plan in topological order (children before parents),
// so every unique subexpression is computed exactly once and its result —
// including its lazily built columnar lowering — is reused by every
// parent. It returns the compacted master of each requested root; callers
// clone them across the ownership boundary.
func (g *Engine) evalAll(ctx context.Context, plan *Plan, fp string, opts *core.Options, resolve Resolver, stats *Stats, roots []*Node) (map[*Node]*core.Experiment, error) {
	// results holds each node's experiment for use as an operand of its
	// parents. Operators never mutate their operands — severity access
	// streams the read-only columnar lowering — so one experiment serves
	// every parent without per-parent cloning, and an operand feeding
	// several operators is lowered to its columnar block once. The same
	// contract is what lets leaf resolvers hand out shared pre-lowered
	// masters (the server's parse cache) instead of per-request clones.
	results := make(map[*Node]*core.Experiment, len(plan.Nodes))
	isRoot := make(map[*Node]bool, len(roots))
	for _, r := range roots {
		isRoot[r] = true
	}
	masters := make(map[*Node]*core.Experiment, len(roots))
	for _, n := range plan.Nodes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if n.Spec == nil {
			e, err := resolve(ctx, n.Leaf)
			if err != nil {
				return nil, fmt.Errorf("expr: resolving %s: %w", n.Leaf, err)
			}
			results[n] = e
			if isRoot[n] {
				// A bare-leaf root: compact so the boundary clone (and
				// any flight waiter) takes the columnar path.
				e.CompactSeverities()
				masters[n] = e
			}
			continue
		}
		key := resultKey{node: n.Key, opts: fp}
		if e := g.cache.get(key); e != nil {
			g.count("cube_expr_cache_hits_total", 1)
			stats.CacheHits++
			results[n] = e
			if isRoot[n] {
				masters[n] = e
			}
			continue
		}
		g.count("cube_expr_cache_misses_total", 1)
		operands := make([]*core.Experiment, len(n.Args))
		for i, a := range n.Args {
			operands[i] = results[a]
		}
		sp, _ := obs.StartSpanContext(ctx, "expr.node")
		sp.SetAttr("op", n.Spec.name)
		sp.SetAttr("key", n.KeyString()[:12])
		nopts := opts
		if sp != nil {
			// Parent the operator's op.<name> span under expr.node so
			// traces show which DAG node each kernel run belongs to.
			var o core.Options
			if opts != nil {
				o = *opts
			}
			o.Trace = sp
			nopts = &o
		}
		master, err := applyOp(n, nopts, operands)
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			return nil, fmt.Errorf("expr: %s: %w", n.Spec.name, err)
		}
		sp.End()
		stats.Evaluated++
		g.count("cube_expr_eval_nodes_total", 1)
		// Compact and publish the master. Once it is visible in the
		// cache, concurrent requests clone it; this request also only
		// reads it — as an operand of parent nodes, and for roots
		// through the boundary clone its caller receives.
		master.CompactSeverities()
		g.cache.put(key, master)
		results[n] = master
		if isRoot[n] {
			masters[n] = master
		}
	}
	return masters, nil
}

// applyOp dispatches one operator node to the core algebra.
func applyOp(n *Node, opts *core.Options, operands []*core.Experiment) (*core.Experiment, error) {
	switch n.Spec.name {
	case "difference":
		return core.Difference(operands[0], operands[1], opts)
	case "merge":
		return core.MergeAll(opts, operands...)
	case "mean":
		return core.Mean(opts, operands...)
	case "sum":
		return core.Sum(opts, operands...)
	case "min":
		return core.Min(opts, operands...)
	case "max":
		return core.Max(opts, operands...)
	case "stddev":
		return core.StdDev(opts, operands...)
	case "flatten":
		return core.Flatten(operands[0])
	case "extract":
		return core.ExtractMetrics(operands[0], n.Metrics...)
	case "prune":
		return core.Prune(operands[0], n.Metric, n.Threshold)
	case "scale":
		return core.Scale(operands[0], n.Factor, opts)
	default:
		return nil, fmt.Errorf("unimplemented operator %q", n.Spec.name)
	}
}

// DigestOfKey renders a plan key for logs and span attributes.
func DigestOfKey(key [32]byte) string { return hex.EncodeToString(key[:]) }
