package expr

import (
	"context"
	"encoding/hex"
	"fmt"
	"sync"

	"cube/internal/core"
	"cube/internal/obs"
)

// Engine evaluates canonicalized expression plans. It owns the
// expression-digest result cache and deduplicates concurrent evaluations
// of the same expression (singleflight), so a burst of identical DAGs
// runs the kernels once. An Engine is safe for concurrent use.
//
// Metrics (registry from Config.Metrics):
//
//	cube_expr_requests_total        expressions evaluated (or served cached)
//	cube_expr_nodes_total           unique DAG nodes planned
//	cube_expr_cse_hits_total        subexpression references eliminated by CSE
//	cube_expr_eval_nodes_total      operator nodes actually executed
//	cube_expr_cache_hits_total      result-cache hits (node granularity)
//	cube_expr_cache_misses_total    operator nodes not found in the cache
//	cube_expr_cache_evictions_total LRU evictions under the byte budget
//	cube_expr_cache_bytes           resident size estimate of the cache
type Engine struct {
	reg   *obs.Registry
	cache *resultCache

	mu      sync.Mutex
	flights map[resultKey]*flight
}

// Config configures an Engine.
type Config struct {
	// CacheBytes is the byte budget of the expression-digest result
	// cache; 0 disables result caching (every request recomputes).
	CacheBytes int64
	// Metrics receives the cube_expr_* series; nil disables them.
	Metrics *obs.Registry
}

// NewEngine returns an evaluation engine.
func NewEngine(cfg Config) *Engine {
	return &Engine{
		reg:     cfg.Metrics,
		cache:   newResultCache(cfg.CacheBytes, cfg.Metrics),
		flights: map[resultKey]*flight{},
	}
}

// flight is one in-progress evaluation concurrent identical requests wait
// on; the winner publishes the compacted root master (or the error).
type flight struct {
	wg  sync.WaitGroup
	e   *core.Experiment
	err error
}

// Resolver supplies leaf operands: stored experiments by digest, inline
// request operands by index. The experiments it returns must be private
// to the caller (the server resolves through its parse cache, which
// returns clones).
type Resolver func(ctx context.Context, leaf Leaf) (*core.Experiment, error)

// Stats reports what one evaluation did — the numbers the server folds
// into its wide event and the smoke tests assert on.
type Stats struct {
	Nodes      int  // unique DAG nodes after CSE
	CSEHits    int  // subexpression references eliminated by sharing
	CacheHits  int  // node results served from the expression-digest cache
	Evaluated  int  // operator nodes actually executed
	RootCached bool // whole expression answered without evaluating anything
}

func (g *Engine) count(name string, n int64) {
	if g.reg != nil {
		g.reg.Counter(name).Add(n)
	}
}

// Eval evaluates the plan and returns the root experiment, which the
// caller owns and may mutate freely. Identical concurrent evaluations are
// shared; repeated evaluations are served from the result cache without
// touching a kernel.
func (g *Engine) Eval(ctx context.Context, plan *Plan, opts *core.Options, resolve Resolver) (*core.Experiment, Stats, error) {
	stats := Stats{Nodes: len(plan.Nodes), CSEHits: plan.CSEHits}
	g.count("cube_expr_requests_total", 1)
	g.count("cube_expr_nodes_total", int64(stats.Nodes))
	g.count("cube_expr_cse_hits_total", int64(stats.CSEHits))

	fp := optsFingerprint(opts)
	rootKey := resultKey{node: plan.Root.Key, opts: fp}
	if e := g.cache.get(rootKey); e != nil {
		g.count("cube_expr_cache_hits_total", 1)
		stats.CacheHits++
		stats.RootCached = true
		return e, stats, nil
	}

	// Singleflight: the first evaluation of an expression runs, identical
	// concurrent requests wait and clone its result (sharing the error on
	// failure, so a poisoned expression does not dogpile the kernels).
	g.mu.Lock()
	if fl, ok := g.flights[rootKey]; ok {
		g.mu.Unlock()
		fl.wg.Wait()
		if fl.err != nil {
			return nil, stats, fl.err
		}
		g.count("cube_expr_cache_hits_total", 1)
		stats.CacheHits++
		stats.RootCached = true
		return fl.e.Clone(), stats, nil
	}
	fl := &flight{}
	fl.wg.Add(1)
	g.flights[rootKey] = fl
	g.mu.Unlock()

	master, err := g.eval(ctx, plan, fp, opts, resolve, &stats)
	fl.e, fl.err = master, err
	fl.wg.Done()
	g.mu.Lock()
	delete(g.flights, rootKey)
	g.mu.Unlock()
	if err != nil {
		return nil, stats, err
	}
	return master.Clone(), stats, nil
}

// eval walks the plan in topological order (children before parents), so
// every unique subexpression is computed exactly once and its result —
// including its lazily built columnar lowering — is reused by every
// parent. The returned root is the compacted master shared with the
// result cache; the caller clones it.
func (g *Engine) eval(ctx context.Context, plan *Plan, fp string, opts *core.Options, resolve Resolver, stats *Stats) (*core.Experiment, error) {
	// results holds each node's private, per-request experiment. One
	// clone serves all parents of a node: within the single evaluation
	// goroutine that is safe, and it means an operand feeding several
	// operators is lowered to its columnar block once, not once per use.
	results := make(map[*Node]*core.Experiment, len(plan.Nodes))
	var rootMaster *core.Experiment
	for _, n := range plan.Nodes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if n.Spec == nil {
			e, err := resolve(ctx, n.Leaf)
			if err != nil {
				return nil, fmt.Errorf("expr: resolving %s: %w", n.Leaf, err)
			}
			results[n] = e
			continue
		}
		key := resultKey{node: n.Key, opts: fp}
		if e := g.cache.get(key); e != nil {
			g.count("cube_expr_cache_hits_total", 1)
			stats.CacheHits++
			results[n] = e
			if n == plan.Root {
				rootMaster = e // already a private clone; see below
			}
			continue
		}
		g.count("cube_expr_cache_misses_total", 1)
		operands := make([]*core.Experiment, len(n.Args))
		for i, a := range n.Args {
			operands[i] = results[a]
		}
		sp, _ := obs.StartSpanContext(ctx, "expr.node")
		sp.SetAttr("op", n.Spec.name)
		sp.SetAttr("key", n.KeyString()[:12])
		nopts := opts
		if sp != nil {
			// Parent the operator's op.<name> span under expr.node so
			// traces show which DAG node each kernel run belongs to.
			var o core.Options
			if opts != nil {
				o = *opts
			}
			o.Trace = sp
			nopts = &o
		}
		master, err := applyOp(n, nopts, operands)
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			return nil, fmt.Errorf("expr: %s: %w", n.Spec.name, err)
		}
		sp.End()
		stats.Evaluated++
		g.count("cube_expr_eval_nodes_total", 1)
		// Compact and publish the master, then hand this request a
		// clone: once the master is visible in the cache, concurrent
		// requests clone it, so this request must not mutate it either.
		master.CompactSeverities()
		g.cache.put(resultKey{node: n.Key, opts: fp}, master)
		if n == plan.Root {
			rootMaster = master
		} else {
			results[n] = master.Clone()
		}
	}
	if rootMaster == nil {
		// Root is a bare leaf (`{"ref": "digest:..."}`): the resolved
		// operand, compacted so flight waiters can clone it safely.
		rootMaster = results[plan.Root]
		rootMaster.CompactSeverities()
	}
	return rootMaster, nil
}

// applyOp dispatches one operator node to the core algebra.
func applyOp(n *Node, opts *core.Options, operands []*core.Experiment) (*core.Experiment, error) {
	switch n.Spec.name {
	case "difference":
		return core.Difference(operands[0], operands[1], opts)
	case "merge":
		return core.MergeAll(opts, operands...)
	case "mean":
		return core.Mean(opts, operands...)
	case "sum":
		return core.Sum(opts, operands...)
	case "min":
		return core.Min(opts, operands...)
	case "max":
		return core.Max(opts, operands...)
	case "stddev":
		return core.StdDev(opts, operands...)
	case "flatten":
		return core.Flatten(operands[0])
	case "extract":
		return core.ExtractMetrics(operands[0], n.Metrics...)
	case "prune":
		return core.Prune(operands[0], n.Metric, n.Threshold)
	case "scale":
		return core.Scale(operands[0], n.Factor, opts)
	default:
		return nil, fmt.Errorf("unimplemented operator %q", n.Spec.name)
	}
}

// DigestOfKey renders a plan key for logs and span attributes.
func DigestOfKey(key [32]byte) string { return hex.EncodeToString(key[:]) }
