package expr

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"
)

// digestFor fabricates a digest ref for tests: the content address of the
// given name, in the wire form leaves use.
func digestFor(name string) string {
	sum := sha256.Sum256([]byte(name))
	return "digest:" + hex.EncodeToString(sum[:])
}

func mustParse(t *testing.T, src string) *Expr {
	t.Helper()
	e, err := Parse([]byte(src), Limits{})
	if err != nil {
		t.Fatalf("Parse(%s): %v", src, err)
	}
	return e
}

func mustPlan(t *testing.T, src string) *Plan {
	t.Helper()
	p, err := mustParse(t, src).Plan(nil)
	if err != nil {
		t.Fatalf("Plan(%s): %v", src, err)
	}
	return p
}

func parseErr(t *testing.T, src string, wantSub string) {
	t.Helper()
	_, err := Parse([]byte(src), Limits{})
	if err == nil {
		t.Fatalf("Parse(%s): want error containing %q, got nil", src, wantSub)
	}
	var pe *ParseError
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("Parse(%s): error %q does not contain %q", src, err, wantSub)
	}
	if ok := asParseError(err, &pe); !ok {
		t.Fatalf("Parse(%s): error %T is not a *ParseError", src, err)
	}
}

func asParseError(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestParseBareNode(t *testing.T) {
	src := fmt.Sprintf(`{"op":"Mean","args":[{"ref":%q},{"ref":%q}]}`, digestFor("a"), digestFor("b"))
	e := mustParse(t, src)
	if e.WireNodes() != 3 {
		t.Fatalf("WireNodes = %d, want 3", e.WireNodes())
	}
	if e.MaxOperandRef() != -1 {
		t.Fatalf("MaxOperandRef = %d, want -1", e.MaxOperandRef())
	}
}

func TestParseOperandRefs(t *testing.T) {
	e := mustParse(t, `{"op":"difference","args":[{"ref":"operand:0"},{"ref":"operand:3"}]}`)
	if e.MaxOperandRef() != 3 {
		t.Fatalf("MaxOperandRef = %d, want 3", e.MaxOperandRef())
	}
}

func TestParseDefsForm(t *testing.T) {
	src := fmt.Sprintf(`{
		"defs": {"d": {"op":"difference","args":[{"ref":%q},{"ref":%q}]}},
		"expr": {"op":"mean","args":[{"ref":"def:d"},{"ref":"def:d"}]}
	}`, digestFor("a"), digestFor("b"))
	p, err := mustParse(t, src).Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	// a, b, difference, mean — the second def:d reference is shared.
	if len(p.Nodes) != 4 {
		t.Fatalf("plan has %d nodes, want 4", len(p.Nodes))
	}
	if p.CSEHits != 1 {
		t.Fatalf("CSEHits = %d, want 1", p.CSEHits)
	}
}

func TestParseErrors(t *testing.T) {
	d := digestFor("x")
	cases := []struct{ src, want string }{
		{`{`, "bad JSON"},
		{`{"op":"Transmogrify","args":[{"ref":"operand:0"}]}`, "unknown operator"},
		{`{"op":"difference","args":[{"ref":"operand:0"}]}`, "at least 2"},
		{`{"op":"flatten","args":[{"ref":"operand:0"},{"ref":"operand:1"}]}`, "at most 1"},
		{`{"op":"stddev","args":[{"ref":"operand:0"}]}`, "at least 2"},
		{`{"op":"prune","args":[{"ref":"operand:0"}]}`, `"metric"`},
		{`{"op":"prune","metric":"Time","args":[{"ref":"operand:0"}]}`, `"threshold"`},
		{`{"op":"scale","args":[{"ref":"operand:0"}]}`, `"factor"`},
		{`{"op":"extract","args":[{"ref":"operand:0"}]}`, `"metrics"`},
		{`{"op":"mean","factor":2,"args":[{"ref":"operand:0"}]}`, "no parameters"},
		{`{"ref":"digest:abc"}`, "64 hex"},
		{`{"ref":"operand:-1"}`, "non-negative"},
		{`{"ref":"bogus:x"}`, "want digest:"},
		{`{"ref":"def:missing"}`, "names no definition"},
		{`{"op":"mean","ref":"operand:0","args":[{"ref":"operand:1"}]}`, "mixes ref"},
		{`{"args":[{"ref":"operand:0"}]}`, `neither "expr", "roots", nor a top-level node`},
		{`{"defs":{}}`, `neither "expr", "roots", nor a top-level node`},
		{fmt.Sprintf(`{"expr":{"ref":%q},"op":"mean"}`, d), `mixes "expr"`},
		{`{"op":"mean","argz":[{"ref":"operand:0"}]}`, "bad JSON"},
		{`{"defs":{"a":{"op":"flatten","args":[{"ref":"def:b"}]},"b":{"op":"flatten","args":[{"ref":"def:a"}]}},"expr":{"ref":"def:a"}}`, "definition cycle"},
	}
	for _, c := range cases {
		parseErr(t, c.src, c.want)
	}
}

func TestParseNodeCap(t *testing.T) {
	// mean of 20 operand leaves = 21 wire nodes; cap at 10.
	args := make([]string, 20)
	for i := range args {
		args[i] = fmt.Sprintf(`{"ref":"operand:%d"}`, i)
	}
	src := `{"op":"mean","args":[` + strings.Join(args, ",") + `]}`
	if _, err := Parse([]byte(src), Limits{MaxNodes: 10}); err == nil || !strings.Contains(err.Error(), "limit of 10 nodes") {
		t.Fatalf("want node-cap error, got %v", err)
	}
	if _, err := Parse([]byte(src), Limits{MaxNodes: 21}); err != nil {
		t.Fatalf("within cap: %v", err)
	}
}

func TestParseDepthCap(t *testing.T) {
	src := `{"ref":"operand:0"}`
	for i := 0; i < 8; i++ {
		src = `{"op":"flatten","args":[` + src + `]}`
	}
	if _, err := Parse([]byte(src), Limits{MaxDepth: 5}); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("want depth-cap error, got %v", err)
	}
	if _, err := Parse([]byte(src), Limits{MaxDepth: 9}); err != nil {
		t.Fatalf("within cap: %v", err)
	}
}

// Defs expand as a DAG, not a copied tree: a chain of defs that doubles at
// every level parses in linear time and node count.
func TestParseDefSharingIsLinear(t *testing.T) {
	var defs []string
	defs = append(defs, `"d0": {"ref":"operand:0"}`)
	const n = 30
	for i := 1; i <= n; i++ {
		defs = append(defs, fmt.Sprintf(`"d%d": {"op":"sum","args":[{"ref":"def:d%d"},{"ref":"def:d%d"}]}`, i, i-1, i-1))
	}
	src := `{"defs":{` + strings.Join(defs, ",") + fmt.Sprintf(`},"expr":{"ref":"def:d%d"}}`, n)
	e, err := Parse([]byte(src), Limits{})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	p, err := e.Plan(func(int) ([sha256.Size]byte, error) { return sha256.Sum256([]byte("op0")), nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != n+1 {
		t.Fatalf("plan has %d nodes, want %d", len(p.Nodes), n+1)
	}
	if p.Depth != n+1 {
		t.Fatalf("Depth = %d, want %d", p.Depth, n+1)
	}
	// Each of d1..d(n-1) is referenced a second time by the level above
	// (dn once, d0 is a leaf and leaf sharing does not count).
	if p.CSEHits != n-1 {
		t.Fatalf("CSEHits = %d, want %d", p.CSEHits, n-1)
	}
}

func TestCommutativeCanonicalization(t *testing.T) {
	a, b := digestFor("a"), digestFor("b")
	ab := mustPlan(t, fmt.Sprintf(`{"op":"mean","args":[{"ref":%q},{"ref":%q}]}`, a, b))
	ba := mustPlan(t, fmt.Sprintf(`{"op":"mean","args":[{"ref":%q},{"ref":%q}]}`, b, a))
	if ab.Root.Key != ba.Root.Key {
		t.Fatal("Mean(a,b) and Mean(b,a) should canonicalize to the same key")
	}

	dab := mustPlan(t, fmt.Sprintf(`{"op":"difference","args":[{"ref":%q},{"ref":%q}]}`, a, b))
	dba := mustPlan(t, fmt.Sprintf(`{"op":"difference","args":[{"ref":%q},{"ref":%q}]}`, b, a))
	if dab.Root.Key == dba.Root.Key {
		t.Fatal("Difference is positional; operand order must distinguish keys")
	}

	mab := mustPlan(t, fmt.Sprintf(`{"op":"merge","args":[{"ref":%q},{"ref":%q}]}`, a, b))
	mba := mustPlan(t, fmt.Sprintf(`{"op":"merge","args":[{"ref":%q},{"ref":%q}]}`, b, a))
	if mab.Root.Key == mba.Root.Key {
		t.Fatal("Merge is first-operand-wins; operand order must distinguish keys")
	}
}

func TestStructuralCSE(t *testing.T) {
	a, b := digestFor("a"), digestFor("b")
	// The shared subexpression is written out twice — and once with its
	// operands swapped under a commutative op, which must still unify.
	src := fmt.Sprintf(`{"op":"difference","args":[
		{"op":"sum","args":[{"ref":%q},{"ref":%q}]},
		{"op":"sum","args":[{"ref":%q},{"ref":%q}]}]}`, a, b, b, a)
	p := mustPlan(t, src)
	// a, b, sum, difference.
	if len(p.Nodes) != 4 {
		t.Fatalf("plan has %d nodes, want 4", len(p.Nodes))
	}
	if p.CSEHits != 1 {
		t.Fatalf("CSEHits = %d, want 1", p.CSEHits)
	}
	if p.Root.Args[0] != p.Root.Args[1] {
		t.Fatal("the two sum operands should be one shared node")
	}
}

func TestParamsDistinguishKeys(t *testing.T) {
	a := digestFor("a")
	s2 := mustPlan(t, fmt.Sprintf(`{"op":"scale","factor":2,"args":[{"ref":%q}]}`, a))
	s3 := mustPlan(t, fmt.Sprintf(`{"op":"scale","factor":3,"args":[{"ref":%q}]}`, a))
	if s2.Root.Key == s3.Root.Key {
		t.Fatal("scale factor must be part of the canonical key")
	}
	p1 := mustPlan(t, fmt.Sprintf(`{"op":"prune","metric":"Time","threshold":0.5,"args":[{"ref":%q}]}`, a))
	p2 := mustPlan(t, fmt.Sprintf(`{"op":"prune","metric":"Time","threshold":0.25,"args":[{"ref":%q}]}`, a))
	if p1.Root.Key == p2.Root.Key {
		t.Fatal("prune threshold must be part of the canonical key")
	}
	e1 := mustPlan(t, fmt.Sprintf(`{"op":"extract","metrics":["Time"],"args":[{"ref":%q}]}`, a))
	e2 := mustPlan(t, fmt.Sprintf(`{"op":"extract","metrics":["MPI"],"args":[{"ref":%q}]}`, a))
	if e1.Root.Key == e2.Root.Key {
		t.Fatal("extract metric list must be part of the canonical key")
	}
}

// Inline operands canonicalize by content digest, so an operand whose
// bytes match a stored experiment unifies with the digest leaf.
func TestOperandLeafUnifiesWithDigestLeaf(t *testing.T) {
	sum := sha256.Sum256([]byte("a"))
	src := fmt.Sprintf(`{"op":"sum","args":[{"ref":%q},{"ref":"operand:0"}]}`, digestFor("a"))
	p, err := mustParse(t, src).Plan(func(i int) ([sha256.Size]byte, error) {
		if i != 0 {
			t.Fatalf("digester asked for operand %d", i)
		}
		return sum, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// operand:0 and digest:<sha256("a")> are the same content: 2 nodes.
	if len(p.Nodes) != 2 {
		t.Fatalf("plan has %d nodes, want 2 (leaf unification)", len(p.Nodes))
	}
	if p.CSEHits != 0 {
		t.Fatalf("CSEHits = %d, want 0 (leaf sharing is not a CSE hit)", p.CSEHits)
	}
}

func TestPlanWithoutDigesterRejectsOperands(t *testing.T) {
	_, err := mustParse(t, `{"op":"flatten","args":[{"ref":"operand:0"}]}`).Plan(nil)
	if err == nil || !strings.Contains(err.Error(), "no inline operands") {
		t.Fatalf("want no-operands error, got %v", err)
	}
}

func TestTopologicalOrder(t *testing.T) {
	a, b, c := digestFor("a"), digestFor("b"), digestFor("c")
	src := fmt.Sprintf(`{"op":"mean","args":[
		{"op":"difference","args":[{"ref":%q},{"ref":%q}]},
		{"op":"difference","args":[{"ref":%q},{"ref":%q}]}]}`, a, b, a, c)
	p := mustPlan(t, src)
	seen := map[*Node]bool{}
	for _, n := range p.Nodes {
		for _, arg := range n.Args {
			if !seen[arg] {
				t.Fatalf("node %s appears before its operand %s", n.Op(), arg.Op())
			}
		}
		seen[n] = true
	}
	if p.Nodes[len(p.Nodes)-1] != p.Root {
		t.Fatal("root must be last in topological order")
	}
}
