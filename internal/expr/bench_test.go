package expr

// Deep-DAG evaluation vs sequential single-operator composition. The DAG
// form wins twice: shared subexpressions evaluate once (CSE), and a
// repeated document costs one cache lookup instead of any evaluation.
// `make bench-expr` records these as BENCH_<date>-expr.json.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"

	"cube/internal/core"
)

// benchDAG builds a depth-d chain where every level references the
// previous level twice (sum(x, x) alternating with mean(x, x)): a
// diamond ladder with d CSE hits under def sharing.
func benchDAG(d int, leafA, leafB string) string {
	var sb strings.Builder
	sb.WriteString(`{"defs":{`)
	fmt.Fprintf(&sb, `"n0":{"op":"difference","args":[{"ref":"digest:%s"},{"ref":"digest:%s"}]}`, leafA, leafB)
	for i := 1; i <= d; i++ {
		op := "sum"
		if i%2 == 0 {
			op = "mean"
		}
		fmt.Fprintf(&sb, `,"n%d":{"op":"%s","args":[{"ref":"def:n%d"},{"ref":"def:n%d"}]}`, i, op, i-1, i-1)
	}
	fmt.Fprintf(&sb, `},"expr":{"ref":"def:n%d"}}`, d)
	return sb.String()
}

func benchOperands(nThreads int) (map[string]*core.Experiment, string, string) {
	mk := func(title string, base float64) *core.Experiment {
		vals := make([]float64, nThreads)
		for i := range vals {
			vals[i] = base + float64(i)*0.25
		}
		return evalExperiment(title, vals...)
	}
	dig := func(name string) string {
		sum := sha256.Sum256([]byte(name))
		return hex.EncodeToString(sum[:])
	}
	return map[string]*core.Experiment{"a": mk("a", 3), "b": mk("b", 1)}, dig("a"), dig("b")
}

const benchDepth = 12

// BenchmarkExprDeepDAG evaluates the depth-12 diamond ladder as one plan
// per iteration, result cache off: the cost of CSE-shared evaluation.
func BenchmarkExprDeepDAG(b *testing.B) {
	exps, da, db := benchOperands(8)
	st := newTestStore(exps)
	src := benchDAG(benchDepth, da, db)
	e, err := Parse([]byte(src), Limits{})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := e.Plan(nil)
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(Config{}) // no result cache: measure evaluation
	b.ReportAllocs()
	for b.Loop() {
		if _, _, err := eng.Eval(context.Background(), plan, nil, st.resolver()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExprSequential computes the same ladder one operator call at
// a time, the way a client without /expr would: every level re-derives
// its operand, nothing is shared or cached.
func BenchmarkExprSequential(b *testing.B) {
	exps, _, _ := benchOperands(8)
	a, bb := exps["a"], exps["b"]
	b.ReportAllocs()
	for b.Loop() {
		x, err := core.Difference(a, bb, nil)
		if err != nil {
			b.Fatal(err)
		}
		for i := 1; i <= benchDepth; i++ {
			if i%2 == 0 {
				x, err = core.Mean(nil, x, x)
			} else {
				x, err = core.Sum(nil, x, x)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExprResultCacheHit replays an identical plan against a warm
// result cache: the steady-state cost of a repeated dashboard query.
func BenchmarkExprResultCacheHit(b *testing.B) {
	exps, da, db := benchOperands(8)
	st := newTestStore(exps)
	e, err := Parse([]byte(benchDAG(benchDepth, da, db)), Limits{})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := e.Plan(nil)
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(Config{CacheBytes: 64 << 20})
	if _, _, err := eng.Eval(context.Background(), plan, nil, st.resolver()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for b.Loop() {
		_, stats, err := eng.Eval(context.Background(), plan, nil, st.resolver())
		if err != nil {
			b.Fatal(err)
		}
		if !stats.RootCached {
			b.Fatal("expected a result-cache hit")
		}
	}
}

// BenchmarkExprPlan isolates parse + canonicalization + CSE of the
// depth-12 document, the per-request planning overhead.
func BenchmarkExprPlan(b *testing.B) {
	src := []byte(benchDAG(benchDepth, strings.Repeat("aa", 32), strings.Repeat("bb", 32)))
	b.ReportAllocs()
	for b.Loop() {
		e, err := Parse(src, Limits{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Plan(nil); err != nil {
			b.Fatal(err)
		}
	}
}
