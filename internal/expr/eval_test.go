package expr

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cube/internal/core"
	"cube/internal/obs"
)

// evalExperiment builds a tiny single-metric experiment with the given
// per-thread severities.
func evalExperiment(title string, vals ...float64) *core.Experiment {
	e := core.New(title)
	m := e.NewMetric("Time", core.Seconds, "")
	c := e.NewCallRoot(e.NewCallSite("app", 0, e.NewRegion("main", "app", 0, 0)))
	e.Invalidate()
	e.SingleThreadedSystem("mach", 1, len(vals))
	for i, th := range e.Threads() {
		e.SetSeverity(m, c, th, vals[i])
	}
	return e
}

// testStore maps fabricated digests to experiments and counts resolutions.
type testStore struct {
	byDigest map[string]*core.Experiment
	resolves atomic.Int64
}

func newTestStore(exps map[string]*core.Experiment) *testStore {
	s := &testStore{byDigest: map[string]*core.Experiment{}}
	for name, e := range exps {
		sum := sha256.Sum256([]byte(name))
		s.byDigest[hex.EncodeToString(sum[:])] = e
	}
	return s
}

func (s *testStore) resolver() Resolver {
	return func(ctx context.Context, leaf Leaf) (*core.Experiment, error) {
		s.resolves.Add(1)
		if leaf.Kind != LeafDigest {
			return nil, fmt.Errorf("test store resolves digests only, got %s", leaf)
		}
		e, ok := s.byDigest[leaf.Digest]
		if !ok {
			return nil, errors.New("not stored")
		}
		return e.Clone(), nil
	}
}

func planFor(t *testing.T, src string) *Plan {
	t.Helper()
	e, err := Parse([]byte(src), Limits{})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	p, err := e.Plan(nil)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	return p
}

// The acceptance-criteria scenario: a DAG containing the same
// subexpression twice evaluates it exactly once, the result matches the
// sequential composition, and a resubmitted identical DAG is served from
// the result cache without running any operator.
func TestEvalSharedSubexpressionOnceAndResultCache(t *testing.T) {
	a := evalExperiment("a", 4, 8, 12)
	b := evalExperiment("b", 1, 2, 3)
	store := newTestStore(map[string]*core.Experiment{"a": a, "b": b})
	reg := obs.NewRegistry()
	eng := NewEngine(Config{CacheBytes: 1 << 20, Metrics: reg})

	// mean(diff(a,b), scale(diff(a,b), 2)) — diff(a,b) written twice.
	src := fmt.Sprintf(`{"op":"mean","args":[
		{"op":"difference","args":[{"ref":%q},{"ref":%q}]},
		{"op":"scale","factor":2,"args":[{"op":"difference","args":[{"ref":%q},{"ref":%q}]}]}]}`,
		digestFor("a"), digestFor("b"), digestFor("a"), digestFor("b"))
	plan := planFor(t, src)
	if plan.CSEHits != 1 {
		t.Fatalf("CSEHits = %d, want 1", plan.CSEHits)
	}

	got, stats, err := eng.Eval(context.Background(), plan, nil, store.resolver())
	if err != nil {
		t.Fatal(err)
	}
	// Exactly 3 operator nodes run: difference once (not twice), scale, mean.
	if stats.Evaluated != 3 {
		t.Fatalf("Evaluated = %d, want 3 (shared difference must run once)", stats.Evaluated)
	}
	if v := reg.CounterValue("cube_expr_eval_nodes_total"); v != 3 {
		t.Fatalf("cube_expr_eval_nodes_total = %d, want 3", v)
	}
	if v := reg.CounterValue("cube_expr_cse_hits_total"); v != 1 {
		t.Fatalf("cube_expr_cse_hits_total = %d, want 1", v)
	}

	// Sequential single-operator composition of the same expression.
	d, err := core.Difference(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Scale(d, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Mean(nil, d, s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatal("DAG evaluation differs from sequential composition")
	}

	// Resubmit the identical DAG: served from the expression-digest cache —
	// no operator runs, no leaf resolves.
	before := store.resolves.Load()
	got2, stats2, err := eng.Eval(context.Background(), plan, nil, store.resolver())
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.RootCached || stats2.Evaluated != 0 {
		t.Fatalf("replay: RootCached=%v Evaluated=%d, want cached with 0 evaluations", stats2.RootCached, stats2.Evaluated)
	}
	if store.resolves.Load() != before {
		t.Fatal("replay resolved leaves; want pure cache hit")
	}
	if v := reg.CounterValue("cube_expr_eval_nodes_total"); v != 3 {
		t.Fatalf("replay ran %d extra operator nodes", v-3)
	}
	if got2.Fingerprint() != want.Fingerprint() {
		t.Fatal("cached result differs")
	}
	// The cached clone is the caller's to mutate: changing it must not
	// poison later hits.
	got2.SetSeverity(got2.Metrics()[0], got2.CallNodes()[0], got2.Threads()[0], 999)
	got3, _, err := eng.Eval(context.Background(), plan, nil, store.resolver())
	if err != nil {
		t.Fatal(err)
	}
	if got3.Fingerprint() != want.Fingerprint() {
		t.Fatal("mutating a returned clone corrupted the cache")
	}
}

// A bare-leaf expression (`{"ref":"digest:..."}`) evaluates to the stored
// experiment itself.
func TestEvalBareLeaf(t *testing.T) {
	a := evalExperiment("a", 5, 7)
	store := newTestStore(map[string]*core.Experiment{"a": a})
	eng := NewEngine(Config{CacheBytes: 1 << 20})
	plan := planFor(t, fmt.Sprintf(`{"ref":%q}`, digestFor("a")))
	got, stats, err := eng.Eval(context.Background(), plan, nil, store.resolver())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Evaluated != 0 {
		t.Fatalf("Evaluated = %d, want 0", stats.Evaluated)
	}
	if got.Fingerprint() != a.Fingerprint() {
		t.Fatal("bare leaf should return the stored experiment")
	}
}

// Subexpression cache lines serve later expressions that embed the same
// subtree, even when the enclosing expression is new.
func TestEvalSubexpressionCacheReuse(t *testing.T) {
	a := evalExperiment("a", 4, 8)
	b := evalExperiment("b", 1, 2)
	store := newTestStore(map[string]*core.Experiment{"a": a, "b": b})
	eng := NewEngine(Config{CacheBytes: 1 << 20})

	diff := fmt.Sprintf(`{"op":"difference","args":[{"ref":%q},{"ref":%q}]}`, digestFor("a"), digestFor("b"))
	if _, _, err := eng.Eval(context.Background(), planFor(t, diff), nil, store.resolver()); err != nil {
		t.Fatal(err)
	}
	// A new expression containing diff as a subtree: only scale runs.
	_, stats, err := eng.Eval(context.Background(), planFor(t, `{"op":"scale","factor":3,"args":[`+diff+`]}`), nil, store.resolver())
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 1 || stats.Evaluated != 1 {
		t.Fatalf("CacheHits=%d Evaluated=%d, want 1 and 1 (difference served from cache)", stats.CacheHits, stats.Evaluated)
	}
}

// Different evaluation options must not share cache lines, and both
// engines produce identical results.
func TestEvalOptionsKeyCacheSeparately(t *testing.T) {
	a := evalExperiment("a", 4, 8)
	b := evalExperiment("b", 1, 2)
	store := newTestStore(map[string]*core.Experiment{"a": a, "b": b})
	eng := NewEngine(Config{CacheBytes: 1 << 20})
	plan := planFor(t, fmt.Sprintf(`{"op":"sum","args":[{"ref":%q},{"ref":%q}]}`, digestFor("a"), digestFor("b")))

	k, statsK, err := eng.Eval(context.Background(), plan, &core.Options{Engine: core.EngineKernel}, store.resolver())
	if err != nil {
		t.Fatal(err)
	}
	l, statsL, err := eng.Eval(context.Background(), plan, &core.Options{Engine: core.EngineLegacy}, store.resolver())
	if err != nil {
		t.Fatal(err)
	}
	if statsK.RootCached || statsL.RootCached {
		t.Fatal("kernel and legacy options must not share a cache line")
	}
	if k.Fingerprint() != l.Fingerprint() {
		t.Fatal("kernel and legacy engines disagree")
	}
}

// With caching disabled every evaluation recomputes, and nothing breaks.
func TestEvalNoCache(t *testing.T) {
	a := evalExperiment("a", 4)
	b := evalExperiment("b", 1)
	store := newTestStore(map[string]*core.Experiment{"a": a, "b": b})
	eng := NewEngine(Config{})
	plan := planFor(t, fmt.Sprintf(`{"op":"difference","args":[{"ref":%q},{"ref":%q}]}`, digestFor("a"), digestFor("b")))
	for i := 0; i < 2; i++ {
		_, stats, err := eng.Eval(context.Background(), plan, nil, store.resolver())
		if err != nil {
			t.Fatal(err)
		}
		if stats.RootCached || stats.Evaluated != 1 {
			t.Fatalf("run %d: RootCached=%v Evaluated=%d, want uncached single evaluation", i, stats.RootCached, stats.Evaluated)
		}
	}
}

// Concurrent identical requests share one evaluation via singleflight: the
// operator work happens once no matter how the requests interleave.
func TestEvalSingleflight(t *testing.T) {
	a := evalExperiment("a", 4, 8, 16)
	b := evalExperiment("b", 1, 2, 3)
	store := newTestStore(map[string]*core.Experiment{"a": a, "b": b})
	eng := NewEngine(Config{CacheBytes: 1 << 20})
	plan := planFor(t, fmt.Sprintf(`{"op":"stddev","args":[{"ref":%q},{"ref":%q}]}`, digestFor("a"), digestFor("b")))

	const n = 8
	var wg sync.WaitGroup
	var evaluated atomic.Int64
	fps := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, stats, err := eng.Eval(context.Background(), plan, nil, store.resolver())
			if err != nil {
				t.Error(err)
				return
			}
			evaluated.Add(int64(stats.Evaluated))
			fps[i] = e.Fingerprint()
		}(i)
	}
	wg.Wait()
	if evaluated.Load() != 1 {
		t.Fatalf("total operator evaluations = %d, want 1 (singleflight + cache)", evaluated.Load())
	}
	for i := 1; i < n; i++ {
		if fps[i] != fps[0] {
			t.Fatal("concurrent evaluations disagree")
		}
	}
}

// An evaluation error is shared with concurrent waiters but not cached:
// the next request retries.
func TestEvalErrorNotCached(t *testing.T) {
	store := newTestStore(nil) // empty: every digest resolve fails
	eng := NewEngine(Config{CacheBytes: 1 << 20})
	plan := planFor(t, fmt.Sprintf(`{"op":"flatten","args":[{"ref":%q}]}`, digestFor("missing")))
	if _, _, err := eng.Eval(context.Background(), plan, nil, store.resolver()); err == nil {
		t.Fatal("want resolve error")
	}
	// Now store the experiment under that digest and retry: must succeed.
	sum := sha256.Sum256([]byte("missing"))
	store.byDigest[hex.EncodeToString(sum[:])] = evalExperiment("missing", 3)
	if _, _, err := eng.Eval(context.Background(), plan, nil, store.resolver()); err != nil {
		t.Fatalf("retry after error: %v", err)
	}
}

func TestEvalContextCancelled(t *testing.T) {
	a := evalExperiment("a", 1)
	store := newTestStore(map[string]*core.Experiment{"a": a})
	eng := NewEngine(Config{})
	plan := planFor(t, fmt.Sprintf(`{"op":"flatten","args":[{"ref":%q}]}`, digestFor("a")))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := eng.Eval(ctx, plan, nil, store.resolver()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// The byte budget is enforced: a tiny budget evicts old entries and the
// eviction counter moves.
func TestResultCacheEviction(t *testing.T) {
	reg := obs.NewRegistry()
	rc := newResultCache(2000, reg) // one tiny experiment (~1.5 KiB estimate) fits, two don't
	k1 := resultKey{node: sha256.Sum256([]byte("k1"))}
	k2 := resultKey{node: sha256.Sum256([]byte("k2"))}
	e1 := evalExperiment("e1", 1)
	e2 := evalExperiment("e2", 2)
	e1.CompactSeverities()
	e2.CompactSeverities()
	rc.put(k1, e1)
	rc.put(k2, e2)
	if rc.get(k1) != nil {
		t.Fatal("k1 should have been evicted")
	}
	if rc.get(k2) == nil {
		t.Fatal("k2 should be resident")
	}
	if v := reg.CounterValue("cube_expr_cache_evictions_total"); v != 1 {
		t.Fatalf("evictions = %d, want 1", v)
	}
}

// randomDAG builds a random wire expression over the named leaves, writing
// shared subexpressions out in full so CSE has real work to do. Returns
// the JSON and the expected experiment computed by sequential
// single-operator composition.
func randomDAG(r *rand.Rand, leaves map[string]*core.Experiment, names []string, depth int, opts *core.Options) (string, *core.Experiment, error) {
	if depth <= 0 || r.Intn(3) == 0 {
		name := names[r.Intn(len(names))]
		return fmt.Sprintf(`{"ref":%q}`, digestFor(name)), leaves[name].Clone(), nil
	}
	switch r.Intn(6) {
	case 0:
		ls, le, err := randomDAG(r, leaves, names, depth-1, opts)
		if err != nil {
			return "", nil, err
		}
		rs, re, err := randomDAG(r, leaves, names, depth-1, opts)
		if err != nil {
			return "", nil, err
		}
		out, err := core.Difference(le, re, opts)
		return fmt.Sprintf(`{"op":"difference","args":[%s,%s]}`, ls, rs), out, err
	case 1, 2:
		op := []string{"mean", "sum", "min"}[r.Intn(3)]
		ls, le, err := randomDAG(r, leaves, names, depth-1, opts)
		if err != nil {
			return "", nil, err
		}
		rs, re, err := randomDAG(r, leaves, names, depth-1, opts)
		if err != nil {
			return "", nil, err
		}
		var out *core.Experiment
		switch op {
		case "mean":
			out, err = core.Mean(opts, le, re)
		case "sum":
			out, err = core.Sum(opts, le, re)
		case "min":
			out, err = core.Min(opts, le, re)
		}
		return fmt.Sprintf(`{"op":%q,"args":[%s,%s]}`, op, ls, rs), out, err
	case 3:
		ls, le, err := randomDAG(r, leaves, names, depth-1, opts)
		if err != nil {
			return "", nil, err
		}
		out, err := core.Scale(le, 2, opts)
		return fmt.Sprintf(`{"op":"scale","factor":2,"args":[%s]}`, ls), out, err
	case 4:
		ls, le, err := randomDAG(r, leaves, names, depth-1, opts)
		if err != nil {
			return "", nil, err
		}
		out, err := core.Flatten(le)
		return fmt.Sprintf(`{"op":"flatten","args":[%s]}`, ls), out, err
	default:
		// Duplicate subexpression on purpose: X - X == zero everywhere,
		// and the DAG contains the same subtree twice.
		ls, le, err := randomDAG(r, leaves, names, depth-1, opts)
		if err != nil {
			return "", nil, err
		}
		out, err := core.Difference(le, le.Clone(), opts)
		return fmt.Sprintf(`{"op":"difference","args":[%s,%s]}`, ls, ls), out, err
	}
}

// Property: any random DAG evaluated through the engine equals the same
// composition executed as sequential single-operator calls, on both
// engines, and CSE/caching never change results.
func TestEvalMatchesSequentialProperty(t *testing.T) {
	leaves := map[string]*core.Experiment{}
	names := []string{"a", "b", "c"}
	r := rand.New(rand.NewSource(42))
	for i, name := range names {
		vals := make([]float64, 4)
		for j := range vals {
			// Dyadic values: sums are exact, fingerprints comparable.
			vals[j] = float64(r.Intn(64)) / 16 * float64(i+1)
		}
		leaves[name] = evalExperiment(name, vals...)
	}
	store := newTestStore(leaves)

	engines := []core.Engine{core.EngineKernel, core.EngineLegacy}
	for iter := 0; iter < 25; iter++ {
		opts := &core.Options{Engine: engines[iter%len(engines)]}
		src, want, err := randomDAG(r, leaves, names, 3, opts)
		if err != nil {
			t.Fatalf("iter %d: sequential composition: %v", iter, err)
		}
		// Fresh engine per iteration: the cache must not be needed for
		// correctness. Evaluate twice — cold and cached — and require
		// both to match the sequential result.
		eng := NewEngine(Config{CacheBytes: 1 << 20})
		plan := planFor(t, src)
		for run := 0; run < 2; run++ {
			got, _, err := eng.Eval(context.Background(), plan, opts, store.resolver())
			if err != nil {
				t.Fatalf("iter %d run %d: %v", iter, run, err)
			}
			if got.Fingerprint() != want.Fingerprint() {
				t.Fatalf("iter %d run %d (%v): DAG result differs from sequential composition\nsrc: %s",
					iter, run, opts.Engine, src)
			}
		}
	}
}

// CSE sanity at the property level: duplicated subtrees never evaluate
// twice.
func TestEvalCSENeverReevaluates(t *testing.T) {
	leaves := map[string]*core.Experiment{
		"a": evalExperiment("a", 2, 4), "b": evalExperiment("b", 8, 16),
	}
	store := newTestStore(leaves)
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 20; iter++ {
		src, _, err := randomDAG(r, leaves, []string{"a", "b"}, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(Config{CacheBytes: 1 << 20})
		plan := planFor(t, src)
		_, stats, err := eng.Eval(context.Background(), plan, nil, store.resolver())
		if err != nil {
			t.Fatalf("iter %d: %v\nsrc: %s", iter, err, src)
		}
		var opNodes int
		for _, n := range plan.Nodes {
			if n.Spec != nil {
				opNodes++
			}
		}
		if stats.Evaluated != opNodes {
			t.Fatalf("iter %d: Evaluated=%d but plan has %d operator nodes", iter, stats.Evaluated, opNodes)
		}
		if wire := strings.Count(src, `"op"`); wire > opNodes && stats.CSEHits == 0 {
			t.Fatalf("iter %d: %d wire ops collapsed to %d nodes but CSEHits=0", iter, wire, opNodes)
		}
	}
}

// A batched plan evaluates every root over one shared DAG: the common
// subexpression runs once, each root's result matches the sequential
// composition, a bare-leaf root round-trips, and a replayed batch is
// served entirely from the result cache.
func TestEvalMulti(t *testing.T) {
	a := evalExperiment("a", 4, 8, 12)
	b := evalExperiment("b", 1, 2, 3)
	store := newTestStore(map[string]*core.Experiment{"a": a, "b": b})
	eng := NewEngine(Config{CacheBytes: 1 << 20})

	d, _ := core.Difference(a, b, nil)
	sc, _ := core.Scale(d, 2, nil)

	src := fmt.Sprintf(`{"defs":{"d":{"op":"difference","args":[{"ref":%q},{"ref":%q}]}},
		"roots":[{"ref":"def:d"},{"op":"scale","factor":2,"args":[{"ref":"def:d"}]},{"ref":%q}]}`,
		digestFor("a"), digestFor("b"), digestFor("a"))
	plan := planFor(t, src)
	if len(plan.Roots) != 3 {
		t.Fatalf("plan has %d roots, want 3", len(plan.Roots))
	}

	outs, stats, err := eng.EvalMulti(context.Background(), plan, nil, store.resolver())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("got %d results, want 3", len(outs))
	}
	// difference once (shared by roots 0 and 1) + scale once.
	if stats.Evaluated != 2 {
		t.Errorf("Evaluated = %d, want 2 (difference shared across roots)", stats.Evaluated)
	}
	if outs[0].Fingerprint() != d.Fingerprint() {
		t.Error("root 0 differs from sequential difference")
	}
	if outs[1].Fingerprint() != sc.Fingerprint() {
		t.Error("root 1 differs from sequential scale")
	}
	if outs[2].Fingerprint() != a.Fingerprint() {
		t.Error("bare-leaf root did not round-trip")
	}

	// Each result is a private clone: mutating one must not leak into a
	// replay served from the result cache.
	for _, th := range outs[0].Threads() {
		outs[0].SetSeverity(outs[0].Metrics()[0], outs[0].CallNodes()[0], th, 999)
	}
	outs2, stats2, err := eng.EvalMulti(context.Background(), plan, nil, store.resolver())
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Evaluated != 0 {
		t.Errorf("replay Evaluated = %d, want 0", stats2.Evaluated)
	}
	if !stats2.RootCached {
		t.Error("replay RootCached = false, want true")
	}
	if outs2[0].Fingerprint() != d.Fingerprint() {
		t.Error("replayed root 0 sees the caller's mutation (shared master leaked)")
	}
}
