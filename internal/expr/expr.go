// Package expr implements the server-side expression engine: whole
// algebra DAGs — compositions the paper's closure property makes legal —
// parsed from a JSON wire form, validated, canonicalized, deduplicated
// (common-subexpression elimination), and evaluated once per distinct
// subexpression over operands resolved from the content-addressed store
// or the request body.
//
// The wire form is a tree of nodes:
//
//	{"op": "Mean", "args": [
//	    {"op": "Difference", "args": [{"ref": "digest:<a>"}, {"ref": "digest:<b>"}]},
//	    {"op": "Difference", "args": [{"ref": "digest:<a>"}, {"ref": "digest:<c>"}]}]}
//
// Leaves reference stored experiments (`digest:<sha256>`) or inline
// multipart operands of the carrying request (`operand:<index>`). A
// request may also name subexpressions once and reference them many
// times (`{"defs": {"d": {...}}, "expr": {"op":"Mean","args":[{"ref":"def:d"}, ...]}}`);
// defs are a convenience spelling — structurally identical subtrees are
// shared whether or not they were written as defs, because sharing is
// decided by canonical content digest, not by name.
//
// Canonicalization assigns every node a digest over (operator, parameters,
// child digests), sorting the child digests of commutative operators so
// Mean(a,b) and Mean(b,a) share one node. Operand order is canonicalized
// only where the algebra guarantees order-invariance (mean, sum, min, max,
// stddev); merge keeps its operand order because its metric-ownership rule
// — the first operand providing a metric wins — is order-sensitive, and
// difference, prune, extract, and scale are inherently positional. This is
// the rewrite set whose correctness follows directly from the commutativity
// of the underlying element-wise arithmetic (cf. the multi-query
// optimization literature on the Analyze operator in PAPERS.md: shared
// sub-plans must be semantics-preserving rewrites).
package expr

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Limits bounds the expression structures the parser accepts; both are
// denial-of-service guards, not semantic restrictions.
type Limits struct {
	// MaxNodes caps the number of node objects in the wire form
	// (defs bodies included). 0 means DefaultLimits.MaxNodes.
	MaxNodes int
	// MaxDepth caps the operator nesting depth of the expanded DAG
	// (a leaf has depth 1). 0 means DefaultLimits.MaxDepth.
	MaxDepth int
}

// DefaultLimits are generous for human-written and tool-generated
// expressions while keeping hostile payloads cheap to reject.
var DefaultLimits = Limits{MaxNodes: 1024, MaxDepth: 64}

func (l Limits) orDefault() Limits {
	if l.MaxNodes <= 0 {
		l.MaxNodes = DefaultLimits.MaxNodes
	}
	if l.MaxDepth <= 0 {
		l.MaxDepth = DefaultLimits.MaxDepth
	}
	return l
}

// opSpec describes one operator of the algebra as the engine sees it.
type opSpec struct {
	name        string
	minArgs     int
	maxArgs     int  // 0 = unbounded
	commutative bool // operand order canonicalized (element-wise order-invariant)
	needsMetric bool // prune
	needsThresh bool // prune
	needsFactor bool // scale
	takesNames  bool // extract
}

// ops is the operator table, keyed by lower-cased wire name.
var ops = map[string]*opSpec{
	"difference": {name: "difference", minArgs: 2, maxArgs: 2},
	"merge":      {name: "merge", minArgs: 1},
	"mean":       {name: "mean", minArgs: 1, commutative: true},
	"sum":        {name: "sum", minArgs: 1, commutative: true},
	"min":        {name: "min", minArgs: 1, commutative: true},
	"max":        {name: "max", minArgs: 1, commutative: true},
	"stddev":     {name: "stddev", minArgs: 2, commutative: true},
	"flatten":    {name: "flatten", minArgs: 1, maxArgs: 1},
	"extract":    {name: "extract", minArgs: 1, maxArgs: 1, takesNames: true},
	"prune":      {name: "prune", minArgs: 1, maxArgs: 1, needsMetric: true, needsThresh: true},
	"scale":      {name: "scale", minArgs: 1, maxArgs: 1, needsFactor: true},
}

// wireNode is the JSON shape of one expression node.
type wireNode struct {
	Op   string      `json:"op,omitempty"`
	Args []*wireNode `json:"args,omitempty"`
	Ref  string      `json:"ref,omitempty"`

	// Operator parameters.
	Metric    string   `json:"metric,omitempty"`    // prune
	Threshold *float64 `json:"threshold,omitempty"` // prune
	Factor    *float64 `json:"factor,omitempty"`    // scale
	Metrics   []string `json:"metrics,omitempty"`   // extract
}

// wireRequest is the JSON shape of a whole request: a bare node, a node
// plus named definitions it may reference as `def:<name>`, or a batch of
// root nodes (`{"roots": [...]}`') evaluated over one shared DAG.
type wireRequest struct {
	Defs  map[string]*wireNode `json:"defs,omitempty"`
	Expr  *wireNode            `json:"expr,omitempty"`
	Roots []*wireNode          `json:"roots,omitempty"`
	wireNode
}

// LeafKind distinguishes the two operand sources of a leaf.
type LeafKind int

const (
	// LeafDigest references a stored experiment by content address.
	LeafDigest LeafKind = iota
	// LeafOperand references an inline multipart operand by index.
	LeafOperand
)

// Leaf identifies one operand source of the expression.
type Leaf struct {
	Kind    LeafKind
	Digest  string // sha-256 hex, for LeafDigest
	Operand int    // operand index, for LeafOperand
}

func (l Leaf) String() string {
	if l.Kind == LeafDigest {
		return "digest:" + l.Digest
	}
	return "operand:" + strconv.Itoa(l.Operand)
}

// Node is one node of the parsed expression DAG. Leaves have Spec == nil;
// interior nodes carry their operator spec and parameters. After Plan,
// structurally identical nodes are one *Node and Key is the canonical
// content digest.
type Node struct {
	Spec *opSpec
	Args []*Node
	Leaf Leaf // valid when Spec == nil

	// Parameters (by operator).
	Metric    string
	Threshold float64
	Factor    float64
	Metrics   []string

	// Key is the canonical digest: sha-256 over the operator, its
	// parameters, and the (order-canonicalized) child keys; for leaves,
	// over the operand's own content digest. Two nodes with equal keys
	// compute equal experiments.
	Key [sha256.Size]byte

	depth int
}

// Op returns the node's operator name, or the leaf reference.
func (n *Node) Op() string {
	if n.Spec == nil {
		return n.Leaf.String()
	}
	return n.Spec.name
}

// KeyString is the hex form of the canonical digest.
func (n *Node) KeyString() string { return hex.EncodeToString(n.Key[:]) }

// Expr is a parsed (but not yet canonicalized) expression — one root, or
// several roots sharing one definition scope and one evaluation DAG.
type Expr struct {
	roots     []*Node
	wireNodes int // node objects in the wire form, defs included
	maxOp     int // largest inline operand index referenced, -1 if none
}

// NumRoots reports how many root expressions the request carried (1 for
// the single-expression forms).
func (e *Expr) NumRoots() int { return len(e.roots) }

// MaxOperandRef returns the largest `operand:<i>` index the expression
// references, or -1 when it references none — the carrying request must
// supply at least MaxOperandRef+1 inline operands.
func (e *Expr) MaxOperandRef() int { return e.maxOp }

// WireNodes reports how many node objects the wire form carried.
func (e *Expr) WireNodes() int { return e.wireNodes }

// ParseError is a structural or semantic error in the expression; the
// server maps it to 400.
type ParseError struct{ msg string }

func (e *ParseError) Error() string { return "expr: " + e.msg }

func parseErrf(format string, args ...any) error {
	return &ParseError{fmt.Sprintf(format, args...)}
}

// Parse decodes and validates the wire JSON: known operators, arity,
// parameter presence, well-formed leaf references, def-cycle rejection,
// and the node/depth caps.
func Parse(data []byte, lim Limits) (*Expr, error) {
	lim = lim.orDefault()
	var req wireRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, parseErrf("bad JSON: %v", err)
	}
	var wireRoots []*wireNode
	switch {
	case len(req.Roots) > 0:
		if req.Expr != nil || req.Op != "" || req.Ref != "" {
			return nil, parseErrf(`request mixes "roots" with "expr" or top-level node fields`)
		}
		wireRoots = req.Roots
	case req.Expr != nil:
		if req.Op != "" || req.Ref != "" {
			return nil, parseErrf(`request mixes "expr" with top-level node fields`)
		}
		wireRoots = []*wireNode{req.Expr}
	default:
		// Bare-node form: the top-level object is itself the expression.
		if req.Op == "" && req.Ref == "" {
			return nil, parseErrf(`request carries neither "expr", "roots", nor a top-level node`)
		}
		wireRoots = []*wireNode{&req.wireNode}
	}
	p := &parser{lim: lim, defs: req.Defs, resolving: map[string]bool{}, built: map[string]*Node{}, maxOp: -1}
	roots := make([]*Node, len(wireRoots))
	for i, w := range wireRoots {
		n, err := p.build(w)
		if err != nil {
			return nil, err
		}
		if d := n.depth; d > lim.MaxDepth {
			return nil, parseErrf("expression depth %d exceeds the limit of %d", d, lim.MaxDepth)
		}
		roots[i] = n
	}
	return &Expr{roots: roots, wireNodes: p.count, maxOp: p.maxOp}, nil
}

type parser struct {
	lim       Limits
	defs      map[string]*wireNode
	resolving map[string]bool  // defs on the current resolution path (cycle detection)
	built     map[string]*Node // defs already resolved, shared by pointer
	count     int
	maxOp     int
}

// build validates one wire node and its subtree. Resolved defs are shared
// by pointer, so a def referenced many times costs one traversal and the
// expanded structure is a DAG, not an exponentially copied tree.
func (p *parser) build(w *wireNode) (*Node, error) {
	if w == nil {
		return nil, parseErrf("null node")
	}
	p.count++
	if p.count > p.lim.MaxNodes {
		return nil, parseErrf("expression exceeds the limit of %d nodes", p.lim.MaxNodes)
	}
	if w.Ref != "" {
		if w.Op != "" || len(w.Args) > 0 {
			return nil, parseErrf("node mixes ref %q with an operator", w.Ref)
		}
		return p.buildRef(w.Ref)
	}
	if w.Op == "" {
		return nil, parseErrf(`node has neither "op" nor "ref"`)
	}
	spec, ok := ops[strings.ToLower(w.Op)]
	if !ok {
		return nil, parseErrf("unknown operator %q", w.Op)
	}
	if len(w.Args) < spec.minArgs {
		return nil, parseErrf("%s needs at least %d args, got %d", spec.name, spec.minArgs, len(w.Args))
	}
	if spec.maxArgs > 0 && len(w.Args) > spec.maxArgs {
		return nil, parseErrf("%s takes at most %d args, got %d", spec.name, spec.maxArgs, len(w.Args))
	}
	n := &Node{Spec: spec}
	switch {
	case spec.needsMetric || spec.needsThresh: // prune
		if w.Metric == "" {
			return nil, parseErrf(`%s needs a "metric" parameter`, spec.name)
		}
		if w.Threshold == nil {
			return nil, parseErrf(`%s needs a "threshold" parameter`, spec.name)
		}
		n.Metric, n.Threshold = w.Metric, *w.Threshold
	case spec.needsFactor: // scale
		if w.Factor == nil {
			return nil, parseErrf(`%s needs a "factor" parameter`, spec.name)
		}
		n.Factor = *w.Factor
	case spec.takesNames: // extract
		if len(w.Metrics) == 0 {
			return nil, parseErrf(`%s needs a non-empty "metrics" list`, spec.name)
		}
		n.Metrics = append([]string(nil), w.Metrics...)
	default:
		if w.Metric != "" || w.Threshold != nil || w.Factor != nil || len(w.Metrics) > 0 {
			return nil, parseErrf("%s takes no parameters", spec.name)
		}
	}
	n.depth = 1
	for _, arg := range w.Args {
		c, err := p.build(arg)
		if err != nil {
			return nil, err
		}
		n.Args = append(n.Args, c)
		if c.depth+1 > n.depth {
			n.depth = c.depth + 1
		}
	}
	return n, nil
}

func (p *parser) buildRef(ref string) (*Node, error) {
	switch {
	case strings.HasPrefix(ref, "digest:"):
		d := strings.ToLower(strings.TrimSpace(ref[len("digest:"):]))
		if len(d) != 2*sha256.Size || strings.Trim(d, "0123456789abcdef") != "" {
			return nil, parseErrf("ref %q: want digest:<64 hex chars>", ref)
		}
		return &Node{Leaf: Leaf{Kind: LeafDigest, Digest: d}, depth: 1}, nil
	case strings.HasPrefix(ref, "operand:"):
		i, err := strconv.Atoi(ref[len("operand:"):])
		if err != nil || i < 0 {
			return nil, parseErrf("ref %q: want operand:<non-negative index>", ref)
		}
		if i > p.maxOp {
			p.maxOp = i
		}
		return &Node{Leaf: Leaf{Kind: LeafOperand, Operand: i}, depth: 1}, nil
	case strings.HasPrefix(ref, "def:"):
		name := ref[len("def:"):]
		if n, ok := p.built[name]; ok {
			return n, nil
		}
		if p.resolving[name] {
			return nil, parseErrf("definition cycle through %q", name)
		}
		w, ok := p.defs[name]
		if !ok {
			return nil, parseErrf("ref %q names no definition", ref)
		}
		p.resolving[name] = true
		n, err := p.build(w)
		if err != nil {
			return nil, err
		}
		delete(p.resolving, name)
		p.built[name] = n
		return n, nil
	default:
		return nil, parseErrf("ref %q: want digest:<sha256>, operand:<index>, or def:<name>", ref)
	}
}

// Plan is the canonicalized, deduplicated evaluation plan: every
// structurally distinct subexpression appears exactly once in Nodes, in a
// topological order (children strictly before parents, roots last).
type Plan struct {
	Nodes []*Node
	// Root is the single root of the classic one-expression forms, and
	// the first root of a batch request.
	Root *Node
	// Roots holds every requested root in request order. Batched roots
	// share one DAG: a subexpression common to two roots — or one root
	// that is a subexpression of another — plans and evaluates once.
	Roots []*Node
	// CSEHits counts references to operator subexpressions that were
	// already planned — the evaluations the sharing pass eliminates.
	// Deduplicated leaf references do not count.
	CSEHits int
	// Depth is the operator nesting depth of the DAG.
	Depth int
}

// LeafDigester supplies the content digest of an inline operand, so
// leaf keys — and therefore every expression digest — are content
// addresses: the same bytes uploaded inline or referenced from the store
// canonicalize to the same node.
type LeafDigester func(operand int) ([sha256.Size]byte, error)

// Plan canonicalizes e into a deduplicated DAG. digester resolves
// `operand:<i>` leaves to their content digests; it may be nil when the
// expression references no inline operands.
func (e *Expr) Plan(digester LeafDigester) (*Plan, error) {
	pl := &planner{
		digester: digester,
		byPtr:    map[*Node]*Node{},
		byKey:    map[[sha256.Size]byte]*Node{},
	}
	roots := make([]*Node, len(e.roots))
	depth := 0
	for i, r := range e.roots {
		cr, err := pl.canon(r)
		if err != nil {
			return nil, err
		}
		roots[i] = cr
		if cr.depth > depth {
			depth = cr.depth
		}
	}
	return &Plan{Nodes: pl.order, Root: roots[0], Roots: roots, CSEHits: pl.cseHits, Depth: depth}, nil
}

type planner struct {
	digester LeafDigester
	byPtr    map[*Node]*Node
	byKey    map[[sha256.Size]byte]*Node
	order    []*Node
	cseHits  int
}

// canon returns the canonical shared node for n, building it if this is
// the first structurally equal subexpression encountered.
func (pl *planner) canon(n *Node) (*Node, error) {
	if cn, ok := pl.byPtr[n]; ok {
		// The same parsed node (a def) referenced again: pure sharing.
		if cn.Spec != nil {
			pl.cseHits++
		}
		return cn, nil
	}
	args := make([]*Node, len(n.Args))
	for i, a := range n.Args {
		ca, err := pl.canon(a)
		if err != nil {
			return nil, err
		}
		args[i] = ca
	}
	if n.Spec != nil && n.Spec.commutative {
		// Order-invariant operator: sort operands by canonical key so
		// Mean(a, b) and Mean(b, a) hash — and evaluate — identically.
		sort.SliceStable(args, func(i, j int) bool {
			return bytes.Compare(args[i].Key[:], args[j].Key[:]) < 0
		})
	}
	key, err := pl.keyOf(n, args)
	if err != nil {
		return nil, err
	}
	if cn, ok := pl.byKey[key]; ok {
		pl.byPtr[n] = cn
		// Only operator sharing counts as a CSE hit: an eliminated hit is
		// an evaluation that will not run. Leaf dedup merely coalesces
		// operand resolution and would inflate the number.
		if cn.Spec != nil {
			pl.cseHits++
		}
		return cn, nil
	}
	cn := &Node{
		Spec: n.Spec, Args: args, Leaf: n.Leaf, Key: key,
		Metric: n.Metric, Threshold: n.Threshold, Factor: n.Factor, Metrics: n.Metrics,
		depth: 1,
	}
	for _, a := range args {
		if a.depth+1 > cn.depth {
			cn.depth = a.depth + 1
		}
	}
	pl.byKey[key] = cn
	pl.byPtr[n] = cn
	pl.order = append(pl.order, cn)
	return cn, nil
}

// keyOf computes the canonical digest of a node from its operator, its
// parameters, and its children's keys.
func (pl *planner) keyOf(n *Node, args []*Node) ([sha256.Size]byte, error) {
	h := sha256.New()
	if n.Spec == nil {
		switch n.Leaf.Kind {
		case LeafDigest:
			fmt.Fprintf(h, "leaf|%s", n.Leaf.Digest)
		case LeafOperand:
			if pl.digester == nil {
				return [sha256.Size]byte{}, parseErrf("ref %q: no inline operands supplied", n.Leaf)
			}
			d, err := pl.digester(n.Leaf.Operand)
			if err != nil {
				return [sha256.Size]byte{}, err
			}
			fmt.Fprintf(h, "leaf|%s", hex.EncodeToString(d[:]))
		}
		return sum256(h.Sum(nil)), nil
	}
	fmt.Fprintf(h, "op|%s", n.Spec.name)
	if n.Spec.needsMetric || n.Spec.needsThresh {
		fmt.Fprintf(h, "|metric=%s|threshold=%s", n.Metric, strconv.FormatFloat(n.Threshold, 'g', -1, 64))
	}
	if n.Spec.needsFactor {
		fmt.Fprintf(h, "|factor=%s", strconv.FormatFloat(n.Factor, 'g', -1, 64))
	}
	for _, m := range n.Metrics {
		fmt.Fprintf(h, "|name=%s", m)
	}
	for _, a := range args {
		h.Write([]byte{'|'})
		h.Write(a.Key[:])
	}
	return sum256(h.Sum(nil)), nil
}

func sum256(b []byte) (out [sha256.Size]byte) {
	copy(out[:], b)
	return out
}
