// Package selfcube closes the observability loop: it materialises the
// server's own telemetry — the obs metrics registry, the Go runtime
// estimates, and the retained trace spans — as an ordinary CUBE
// experiment, so the algebra analyses the process that implements it.
// "What regressed between run N and N-1 of cube-server?" becomes
// Difference over two self-snapshots, answered by the same kernels,
// the same /expr endpoint, and the same digest-addressed store every
// other experiment uses.
//
// The mapping onto the three CUBE dimensions:
//
//   - metric dimension: one metric tree per registry family. Counters and
//     gauges become a root metric (unit inferred from the family name:
//     *_seconds → sec, *_bytes → bytes, everything else occ), with one
//     child metric per labeled series (named "k=v,k2=v2"). Histograms
//     split into <family>_count (occ) and <family>_sum (inferred unit)
//     trees, because one CUBE metric tree must hold a single unit. Two
//     more trees — Time (sec) and Visits (occ) — carry the span taxonomy.
//   - program dimension: the call tree is the span-name taxonomy
//     aggregated over the tracer's retained traces, rooted at a synthetic
//     region named after the process. Severity is span self-time
//     (duration minus children) for Time and the span count for Visits.
//   - system dimension: one machine (the host), one node, one process
//     (rank 0, the live PID), one thread. Registry-derived values attach
//     at the root call node of that single thread.
//
// Severities land through the columnar SeverityIngest path, so a
// self-experiment is byte-for-byte an ordinary experiment: it validates,
// serialises, diffs, and caches exactly like collected data.
package selfcube

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"cube/internal/core"
	"cube/internal/obs"
)

// Collector gathers one self-telemetry experiment from the live process.
// All fields may be nil/empty except Registry; a nil Tracer yields an
// experiment whose call tree is just the synthetic process root.
type Collector struct {
	Registry *obs.Registry
	Tracer   *obs.Tracer
	Go       *obs.GoRuntimeSampler // sampled before each collection when set
	Process  string                // process name used in titles and the system tree
	Host     string
	PID      int
}

// NewCollector returns a collector for the current process.
func NewCollector(reg *obs.Registry, tracer *obs.Tracer, gs *obs.GoRuntimeSampler, process string) *Collector {
	host, _ := os.Hostname()
	if host == "" {
		host = "localhost"
	}
	if process == "" {
		process = "self"
	}
	return &Collector{Registry: reg, Tracer: tracer, Go: gs, Process: process, Host: host, PID: os.Getpid()}
}

// RunTitle is the monotonic run-series naming scheme: self:<process>:<seq>,
// zero-padded so titles sort lexically in sequence order.
func RunTitle(process string, seq uint64) string {
	return fmt.Sprintf("self:%s:%06d", process, seq)
}

// SeriesName renders a label set as the child-metric name of a labeled
// series: "k=v,k2=v2" with keys sorted, "" for the unlabeled series.
func SeriesName(labels []obs.Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]obs.Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Key + "=" + l.Value
	}
	return strings.Join(parts, ",")
}

// UnitFor infers the CUBE unit of a registry family from its name, the
// same convention the Prometheus ecosystem encodes in suffixes.
func UnitFor(family string) core.Unit {
	switch {
	case strings.Contains(family, "_seconds"):
		return core.Seconds
	case strings.Contains(family, "_bytes"):
		return core.Bytes
	}
	return core.Occurrences
}

// cell is one severity value waiting for columnar ingest.
type cell struct {
	m *core.Metric
	c *core.CallNode
	v float64
}

// Collect materialises one experiment from the current process state.
// seq numbers the run within its series and at stamps the collection
// time into the experiment attributes.
func (c *Collector) Collect(seq uint64, at time.Time) (*core.Experiment, error) {
	if c.Go != nil {
		c.Go.Sample()
	}
	snap := c.Registry.Snapshot()

	e := core.New(RunTitle(c.Process, seq))
	e.Attrs["self/seq"] = fmt.Sprintf("%d", seq)
	e.Attrs["self/process"] = c.Process
	e.Attrs["self/host"] = c.Host
	e.Attrs["self/pid"] = fmt.Sprintf("%d", c.PID)
	e.Attrs["self/time"] = at.UTC().Format(time.RFC3339Nano)

	// System dimension: this process on this host, one thread.
	mach := e.NewMachine(c.Host)
	proc := mach.NewNode(c.Host).NewProcess(0, fmt.Sprintf("%s pid %d", c.Process, c.PID))
	proc.NewThread(0, "collector")

	// Program dimension: the aggregated span taxonomy under a synthetic
	// process root. The root region is also where registry-wide values
	// (which have no call context) attach.
	rootRegion := e.NewRegion(c.Process, "self", 0, 0)
	rootNode := e.NewCallRoot(e.NewCallSite("", 0, rootRegion))
	tax := aggregateSpans(c.Tracer)

	var cells []cell
	timeM := e.NewMetric("Time", core.Seconds, "span self-time aggregated from retained traces")
	visitsM := e.NewMetric("Visits", core.Occurrences, "spans aggregated at this call path")
	buildTaxonomy(e, rootNode, tax, timeM, visitsM, &cells)

	// Metric dimension: the registry snapshot, one tree per family.
	famRoots := map[string]*core.Metric{}
	familyNode := func(name string, unit core.Unit, desc string, labels []obs.Label) *core.Metric {
		root := famRoots[name]
		if root == nil {
			root = e.NewMetric(name, unit, desc)
			famRoots[name] = root
		}
		series := SeriesName(labels)
		if series == "" {
			return root
		}
		for _, ch := range root.Children() {
			if ch.Name == series {
				return ch
			}
		}
		return root.NewChild(series, "")
	}
	for _, cv := range snap.Counters {
		m := familyNode(cv.Name, UnitFor(cv.Name), "registry counter", cv.Labels)
		cells = append(cells, cell{m, rootNode, float64(cv.Value)})
	}
	for _, gv := range snap.Gauges {
		m := familyNode(gv.Name, UnitFor(gv.Name), "registry gauge", gv.Labels)
		cells = append(cells, cell{m, rootNode, float64(gv.Value)})
	}
	for _, hv := range snap.Histograms {
		cm := familyNode(hv.Name+"_count", core.Occurrences, "registry histogram observation count", hv.Labels)
		cells = append(cells, cell{cm, rootNode, float64(hv.Count)})
		sm := familyNode(hv.Name+"_sum", UnitFor(hv.Name), "registry histogram observation sum", hv.Labels)
		cells = append(cells, cell{sm, rootNode, hv.Sum})
	}

	// Install the severities through the columnar path. Construction above
	// guarantees uniqueness per (metric, call node): each registry series
	// maps to exactly one metric node, each taxonomy node appears once.
	ing := e.NewSeverityIngest()
	keys := make([]uint64, 0, len(cells))
	vals := make([]float64, 0, len(cells))
	for _, cl := range cells {
		if cl.v == 0 || math.IsNaN(cl.v) || math.IsInf(cl.v, 0) {
			continue
		}
		mi, ok1 := e.MetricIndex(cl.m)
		ci, ok2 := e.CallNodeIndex(cl.c)
		if !ok1 || !ok2 {
			continue
		}
		keys = append(keys, ing.RowKey(mi, ci)) // + thread 0
		vals = append(vals, cl.v)
	}
	ing.Commit(keys, vals, false)

	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("selfcube: collected experiment invalid: %w", err)
	}
	return e, nil
}

// taxNode is one node of the span-name taxonomy: spans with the same name
// under the same parent path merge, accumulating self-time and visits.
type taxNode struct {
	name     string
	selfSec  float64
	visits   int64
	children map[string]*taxNode
}

func newTaxNode(name string) *taxNode {
	return &taxNode{name: name, children: map[string]*taxNode{}}
}

// aggregateSpans folds every completed retained trace into one taxonomy.
// In-flight traces (root duration still zero) are skipped: their timings
// are not final and would under-report.
func aggregateSpans(tracer *obs.Tracer) *taxNode {
	root := newTaxNode("")
	for _, tr := range tracer.Traces() {
		if tr.Root() == nil || tr.Duration() <= 0 {
			continue
		}
		mergeSpan(root, tr.Root())
	}
	return root
}

func mergeSpan(parent *taxNode, s *obs.Span) {
	n := parent.children[s.Name()]
	if n == nil {
		n = newTaxNode(s.Name())
		parent.children[s.Name()] = n
	}
	self := s.Duration()
	for _, ch := range s.Children() {
		self -= ch.Duration()
		mergeSpan(n, ch)
	}
	if self < 0 {
		self = 0 // overlapping concurrent children (kernel shards)
	}
	n.selfSec += self.Seconds()
	n.visits++
}

// buildTaxonomy materialises the taxonomy as call nodes under parent and
// queues the Time/Visits severities. Children are created in sorted name
// order so collection is deterministic for a given taxonomy.
func buildTaxonomy(e *core.Experiment, parent *core.CallNode, tn *taxNode, timeM, visitsM *core.Metric, cells *[]cell) {
	names := make([]string, 0, len(tn.children))
	for name := range tn.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		child := tn.children[name]
		region := e.FindRegion(name)
		if region == nil || region.Module != "span" {
			region = e.NewRegion(name, "span", 0, 0)
		}
		node := parent.NewChild(e.NewCallSite("", 0, region))
		*cells = append(*cells, cell{timeM, node, child.selfSec})
		*cells = append(*cells, cell{visitsM, node, float64(child.visits)})
		buildTaxonomy(e, node, child, timeM, visitsM, cells)
	}
	e.Invalidate()
}

// FindSeries returns the metric node carrying the family's series with the
// given labels — the family root itself for the unlabeled series — or nil.
// It works on self-experiments and on experiments derived from them (the
// integrated metric forest of a Difference keeps names and units).
func FindSeries(e *core.Experiment, family string, labels ...obs.Label) *core.Metric {
	for _, root := range e.MetricRoots() {
		if root.Name != family {
			continue
		}
		want := SeriesName(labels)
		if want == "" {
			return root
		}
		for _, ch := range root.Children() {
			if ch.Name == want {
				return ch
			}
		}
	}
	return nil
}

// SeriesValue returns the severity total of the family's series with the
// given labels, or 0 when absent. On a difference experiment this is the
// per-series delta between the two runs.
func SeriesValue(e *core.Experiment, family string, labels ...obs.Label) float64 {
	m := FindSeries(e, family, labels...)
	if m == nil {
		return 0
	}
	return e.MetricTotal(m)
}
