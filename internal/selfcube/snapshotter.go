package selfcube

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"cube/internal/cubexml"
	"cube/internal/obs"
	"cube/internal/store"
)

// DefaultKeep is how many self-snapshot runs stay pinned in the store when
// SnapshotterConfig.Keep is zero.
const DefaultKeep = 32

// Run is one committed self-snapshot: a member of the process's run series.
type Run struct {
	Seq    uint64 `json:"seq"`
	Title  string `json:"title"`
	Digest string `json:"digest"`
	Bytes  int64  `json:"bytes"`
	Time   string `json:"time"` // RFC 3339, UTC
}

// SnapshotterConfig configures a Snapshotter.
type SnapshotterConfig struct {
	Collector *Collector
	Store     *store.Store
	// Interval between snapshots for Loop. Zero disables the loop (manual
	// Snapshot calls still work — tests and POST /debug/self/snapshot).
	Interval time.Duration
	// Keep bounds the run series: older runs beyond Keep are unpinned and
	// forgotten (the store may then evict them). Zero means DefaultKeep.
	Keep    int
	Logger  *slog.Logger
	Metrics *obs.Registry
}

// Snapshotter periodically materialises self-telemetry experiments and
// commits them to the store under a monotonic run series, keeping the
// newest Keep runs pinned so clients can always diff recent history.
type Snapshotter struct {
	cfg SnapshotterConfig

	mu   sync.Mutex
	seq  uint64
	runs []Run // oldest first, at most cfg.Keep entries
}

// NewSnapshotter validates cfg and returns a snapshotter. Collector and
// Store are required.
func NewSnapshotter(cfg SnapshotterConfig) (*Snapshotter, error) {
	if cfg.Collector == nil {
		return nil, fmt.Errorf("selfcube: snapshotter requires a collector")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("selfcube: snapshotter requires a store")
	}
	if cfg.Keep == 0 {
		cfg.Keep = DefaultKeep
	}
	if cfg.Keep < 0 {
		return nil, fmt.Errorf("selfcube: negative keep %d", cfg.Keep)
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("selfcube: negative interval %v", cfg.Interval)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	return &Snapshotter{cfg: cfg}, nil
}

// Snapshot collects one experiment, writes it as CUBE XML, commits the
// blob to the store, and pins it into the run series. It returns the new
// run. Concurrent calls serialise; each gets its own sequence number.
func (s *Snapshotter) Snapshot(ctx context.Context) (Run, error) {
	ev := obs.NewEvent("self", "self.snapshot")
	defer ev.Emit()

	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.seq + 1

	start := time.Now()
	run, err := s.snapshotLocked(obs.ContextWithEvent(ctx, ev), seq, start)
	dur := time.Since(start).Seconds()
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Histogram("cube_self_snapshot_duration_seconds", obs.DefLatencyBuckets).Observe(dur)
		if err != nil {
			s.cfg.Metrics.Counter("cube_self_snapshot_errors_total").Inc()
		} else {
			s.cfg.Metrics.Counter("cube_self_snapshots_total").Inc()
			s.cfg.Metrics.Gauge("cube_self_series_runs").Set(int64(len(s.runs)))
			s.cfg.Metrics.Gauge("cube_self_snapshot_bytes").Set(run.Bytes)
		}
	}
	if err != nil {
		ev.SetError(err.Error())
		s.cfg.Logger.Warn("self snapshot failed", slog.Uint64("seq", seq), slog.Any("err", err))
		return Run{}, err
	}
	s.seq = seq
	s.cfg.Logger.Info("self snapshot",
		slog.Uint64("seq", run.Seq),
		slog.String("digest", run.Digest),
		slog.Int64("bytes", run.Bytes),
	)
	return run, nil
}

// snapshotLocked is Snapshot minus the bookkeeping; the caller holds s.mu.
func (s *Snapshotter) snapshotLocked(ctx context.Context, seq uint64, at time.Time) (Run, error) {
	e, err := s.cfg.Collector.Collect(seq, at)
	if err != nil {
		return Run{}, err
	}
	var buf bytes.Buffer
	if err := cubexml.WriteContext(ctx, &buf, e); err != nil {
		return Run{}, fmt.Errorf("selfcube: encode snapshot: %w", err)
	}
	d, _, err := s.cfg.Store.PutContext(ctx, buf.Bytes(), nil)
	if err != nil {
		return Run{}, fmt.Errorf("selfcube: store snapshot: %w", err)
	}
	s.cfg.Store.Pin(d)
	run := Run{
		Seq:    seq,
		Title:  e.Title,
		Digest: d.String(),
		Bytes:  int64(buf.Len()),
		Time:   at.UTC().Format(time.RFC3339Nano),
	}
	s.runs = append(s.runs, run)
	// Rotate: unpin runs past the retention bound. The store may now evict
	// them under budget pressure, but does not have to — a diff against a
	// just-rotated run keeps working until space is actually needed.
	for len(s.runs) > s.cfg.Keep {
		old := s.runs[0]
		s.runs = s.runs[1:]
		if d, ok := store.ParseDigest(old.Digest); ok {
			s.cfg.Store.Unpin(d)
		}
	}
	return run, nil
}

// Runs returns the retained run series, oldest first.
func (s *Snapshotter) Runs() []Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Run(nil), s.runs...)
}

// Latest returns the newest run, if any.
func (s *Snapshotter) Latest() (Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.runs) == 0 {
		return Run{}, false
	}
	return s.runs[len(s.runs)-1], true
}

// Loop snapshots every cfg.Interval until ctx is cancelled. Errors are
// logged (and counted) but do not stop the loop: a degraded store heals,
// and the series resumes. A zero interval returns immediately.
func (s *Snapshotter) Loop(ctx context.Context) {
	if s.cfg.Interval <= 0 {
		return
	}
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_, _ = s.Snapshot(ctx)
		}
	}
}
