package selfcube

import (
	"context"
	"log/slog"
	"testing"
	"time"

	"cube/internal/core"
	"cube/internal/cubexml"
	"cube/internal/obs"
	"cube/internal/store"
)

func TestRunTitle(t *testing.T) {
	if got, want := RunTitle("cube-server", 7), "self:cube-server:000007"; got != want {
		t.Fatalf("RunTitle = %q, want %q", got, want)
	}
	// Zero padding keeps titles in lexical == numeric order.
	if RunTitle("s", 9) >= RunTitle("s", 10) {
		t.Fatal("run titles do not sort in sequence order")
	}
}

func TestSeriesName(t *testing.T) {
	if got := SeriesName(nil); got != "" {
		t.Fatalf("SeriesName(nil) = %q, want empty", got)
	}
	got := SeriesName([]obs.Label{obs.L("route", "/expr"), obs.L("code", "200")})
	if want := "code=200,route=/expr"; got != want {
		t.Fatalf("SeriesName = %q, want %q (keys sorted)", got, want)
	}
}

func TestUnitFor(t *testing.T) {
	cases := []struct {
		family string
		want   core.Unit
	}{
		{"cube_http_request_duration_seconds", core.Seconds},
		{"cube_go_heap_alloc_bytes", core.Bytes},
		{"cube_http_requests_total", core.Occurrences},
		{"cube_http_request_duration_seconds_sum", core.Seconds},
	}
	for _, c := range cases {
		if got := UnitFor(c.family); got != c.want {
			t.Errorf("UnitFor(%s) = %v, want %v", c.family, got, c.want)
		}
	}
}

// testCollector builds a collector over a populated registry and tracer.
func testCollector(t *testing.T) (*Collector, *obs.Registry, *obs.Tracer) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("cube_http_requests_total", obs.L("route", "/expr")).Add(5)
	reg.Counter("cube_http_requests_total", obs.L("route", "/healthz")).Add(2)
	reg.Gauge("cube_http_inflight").Set(3)
	reg.Histogram("cube_http_request_duration_seconds", obs.DefLatencyBuckets, obs.L("route", "/expr")).Observe(0.25)
	tracer := obs.NewTracer(obs.TracerOptions{SampleRate: 1})
	root := tracer.StartTrace("POST /expr", "t1")
	child := root.StartChild("evaluate")
	child.StartChild("difference").End()
	child.End()
	root.End()
	c := NewCollector(reg, tracer, nil, "testproc")
	return c, reg, tracer
}

func TestCollect(t *testing.T) {
	c, _, _ := testCollector(t)
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	e, err := c.Collect(3, at)
	if err != nil {
		t.Fatal(err)
	}
	if e.Title != "self:testproc:000003" {
		t.Errorf("title = %q", e.Title)
	}
	if e.Attrs["self/seq"] != "3" || e.Attrs["self/process"] != "testproc" {
		t.Errorf("attrs = %v", e.Attrs)
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	// Registry series land as per-series child metrics with the right values.
	if got := SeriesValue(e, "cube_http_requests_total", obs.L("route", "/expr")); got != 5 {
		t.Errorf("requests_total{route=/expr} = %g, want 5", got)
	}
	if got := SeriesValue(e, "cube_http_requests_total", obs.L("route", "/healthz")); got != 2 {
		t.Errorf("requests_total{route=/healthz} = %g, want 2", got)
	}
	if got := SeriesValue(e, "cube_http_inflight"); got != 3 {
		t.Errorf("inflight = %g, want 3", got)
	}
	// Histograms split into _count (occ) and _sum (unit of the family).
	if got := SeriesValue(e, "cube_http_request_duration_seconds_count", obs.L("route", "/expr")); got != 1 {
		t.Errorf("duration_count = %g, want 1", got)
	}
	if got := SeriesValue(e, "cube_http_request_duration_seconds_sum", obs.L("route", "/expr")); got != 0.25 {
		t.Errorf("duration_sum = %g, want 0.25", got)
	}
	sum := FindSeries(e, "cube_http_request_duration_seconds_sum", obs.L("route", "/expr"))
	if sum == nil || sum.Root().Unit != core.Seconds {
		t.Errorf("duration_sum unit: got %+v, want sec tree", sum)
	}
	cnt := FindSeries(e, "cube_http_request_duration_seconds_count", obs.L("route", "/expr"))
	if cnt == nil || cnt.Root().Unit != core.Occurrences {
		t.Errorf("duration_count unit: got %+v, want occ tree", cnt)
	}

	// The span taxonomy became the call tree: process root, then the
	// trace's span names as nested regions.
	if len(e.CallRoots()) != 1 {
		t.Fatalf("call roots = %d, want 1", len(e.CallRoots()))
	}
	root := e.CallRoots()[0]
	if root.Callee().Name != "testproc" {
		t.Errorf("call root = %q, want testproc", root.Callee().Name)
	}
	req := root.FindChild("POST /expr")
	if req == nil {
		t.Fatal("span 'POST /expr' missing from call tree")
	}
	eval := req.FindChild("evaluate")
	if eval == nil || eval.FindChild("difference") == nil {
		t.Fatal("nested spans missing from call tree")
	}
	// Time and Visits carry the aggregated span severities.
	timeM := e.FindMetricByName("Time")
	visits := e.FindMetricByName("Visits")
	if timeM == nil || visits == nil {
		t.Fatal("Time/Visits metrics missing")
	}
	if got := e.MetricTotal(visits); got != 3 {
		t.Errorf("total visits = %g, want 3 (three spans)", got)
	}
	if got := e.MetricTotal(timeM); got <= 0 {
		t.Errorf("total self-time = %g, want > 0", got)
	}

	// System dimension: one machine/node/process/thread.
	if n := len(e.Machines()); n != 1 {
		t.Fatalf("machines = %d, want 1", n)
	}
}

func TestCollectDifference(t *testing.T) {
	c, reg, _ := testCollector(t)
	a, err := c.Collect(1, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	reg.Counter("cube_http_requests_total", obs.L("route", "/expr")).Add(10)
	reg.Histogram("cube_http_request_duration_seconds", obs.DefLatencyBuckets, obs.L("route", "/expr")).Observe(1.5)
	b, err := c.Collect(2, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Difference(b, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := SeriesValue(d, "cube_http_requests_total", obs.L("route", "/expr")); got != 10 {
		t.Errorf("diff requests_total = %g, want 10", got)
	}
	if got := SeriesValue(d, "cube_http_requests_total", obs.L("route", "/healthz")); got != 0 {
		t.Errorf("diff requests_total{/healthz} = %g, want 0", got)
	}
	if got := SeriesValue(d, "cube_http_request_duration_seconds_sum", obs.L("route", "/expr")); got != 1.5 {
		t.Errorf("diff duration_sum = %g, want 1.5", got)
	}
}

func TestCollectRoundTrip(t *testing.T) {
	c, _, _ := testCollector(t)
	e, err := c.Collect(1, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	{
		w := &writerBuf{}
		if err := cubexml.Write(w, e); err != nil {
			t.Fatal(err)
		}
		buf = w.b
	}
	got, err := cubexml.ReadBytes(context.Background(), buf, cubexml.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != e.Title {
		t.Errorf("round-trip title = %q, want %q", got.Title, e.Title)
	}
	if v := SeriesValue(got, "cube_http_requests_total", obs.L("route", "/expr")); v != 5 {
		t.Errorf("round-trip requests_total = %g, want 5", v)
	}
	if got.FindRegion("evaluate") == nil {
		t.Error("round-trip lost span taxonomy region")
	}
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }

func TestCollectEmptyTracer(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("cube_requests_total").Inc()
	c := NewCollector(reg, nil, nil, "p")
	e, err := c.Collect(1, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := SeriesValue(e, "cube_requests_total"); got != 1 {
		t.Errorf("requests_total = %g, want 1", got)
	}
}

func TestSnapshotterConfigValidation(t *testing.T) {
	if _, err := NewSnapshotter(SnapshotterConfig{}); err == nil {
		t.Error("want error without collector")
	}
	c, _, _ := testCollector(t)
	if _, err := NewSnapshotter(SnapshotterConfig{Collector: c}); err == nil {
		t.Error("want error without store")
	}
}

func TestSnapshotterSeriesAndRotation(t *testing.T) {
	c, reg, _ := testCollector(t)
	st, err := store.Open(t.TempDir(), store.Options{Logger: slog.Default()})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := NewSnapshotter(SnapshotterConfig{
		Collector: c, Store: st, Keep: 2, Metrics: reg, Logger: slog.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var runs []Run
	for i := 0; i < 3; i++ {
		// Change the registry between runs so each blob (and digest) differs.
		reg.Counter("cube_http_requests_total", obs.L("route", "/expr")).Inc()
		r, err := snap.Snapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}
	if runs[0].Seq != 1 || runs[2].Seq != 3 {
		t.Errorf("seqs = %d..%d, want 1..3", runs[0].Seq, runs[2].Seq)
	}
	if runs[0].Digest == runs[1].Digest {
		t.Error("distinct snapshots share a digest")
	}
	kept := snap.Runs()
	if len(kept) != 2 || kept[0].Seq != 2 || kept[1].Seq != 3 {
		t.Fatalf("retained runs = %+v, want seqs 2,3", kept)
	}
	latest, ok := snap.Latest()
	if !ok || latest.Seq != 3 {
		t.Fatalf("Latest = %+v/%v, want seq 3", latest, ok)
	}

	// The latest blob decodes back into the experiment it claims to be.
	d, ok := store.ParseDigest(latest.Digest)
	if !ok {
		t.Fatalf("bad digest %q", latest.Digest)
	}
	data, err := st.GetContext(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	e, err := cubexml.ReadBytes(ctx, data, cubexml.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Title != latest.Title {
		t.Errorf("blob title = %q, want %q", e.Title, latest.Title)
	}
	if e.Attrs["self/seq"] != "3" {
		t.Errorf("blob seq attr = %q, want 3", e.Attrs["self/seq"])
	}

	// Snapshot bookkeeping metrics moved.
	if got := reg.CounterValue("cube_self_snapshots_total"); got != 3 {
		t.Errorf("cube_self_snapshots_total = %d, want 3", got)
	}
	if got := reg.Gauge("cube_self_series_runs").Value(); got != 2 {
		t.Errorf("cube_self_series_runs = %d, want 2", got)
	}
}
