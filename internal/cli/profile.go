package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"cube/internal/core"
	"cube/internal/cubexml"
	"cube/internal/obs"
)

// Profile wires the shared observability flags into a command-line tool:
//
//	-cpuprofile file   write a CPU profile (go tool pprof format)
//	-memprofile file   write a heap profile on exit
//	-stats             dump operator/codec metrics to stderr on exit
//	-trace file        write span traces as Chrome trace-event JSON on exit
//	-events file       write wide events as NDJSON on exit (- for stderr)
//
// Register the flags with NewProfile before flag.Parse, then call Start
// after it and the returned stop function on the success path. -stats
// points core.Instrument and cubexml.Instrument at obs.Default, so the
// dump shows exactly what the algebra did: operator invocations and wall
// time, severity cells produced, zero-fill expansion, and XML bytes
// parsed/written. -trace installs a process-wide always-sample tracer and
// exports every operator invocation's span tree (integrate, per-operand
// lower, per-shard kernel, materialize) to the file; load it into
// Perfetto or chrome://tracing.
type Profile struct {
	cpu, mem, trace *string
	events          *string
	stats           *bool
	cpuFile         *os.File
	tracer          *obs.Tracer
	sink            *obs.EventSink
	event           *obs.Event
	tool            string
}

// NewProfile registers the profiling flags on fs (flag.CommandLine when
// nil) and returns the handle to Start them with.
func NewProfile(fs *flag.FlagSet) *Profile {
	if fs == nil {
		fs = flag.CommandLine
	}
	p := &Profile{}
	p.cpu = fs.String("cpuprofile", "", "write a CPU profile to `file`")
	p.mem = fs.String("memprofile", "", "write a heap profile to `file` on exit")
	p.stats = fs.Bool("stats", false, "dump operator/codec metrics to stderr on exit")
	p.trace = fs.String("trace", "", "write span traces as Chrome trace-event JSON to `file`")
	p.events = fs.String("events", "", "write wide events as NDJSON to `file` on exit (- for stderr)")
	return p
}

// Event returns the invocation's wide event — nil (every method a no-op)
// unless -events is set. Tools hand it to core.Options.Event so the
// kernel layer attributes shards, tuples, cells, and compute time to the
// run.
func (p *Profile) Event() *obs.Event { return p.event }

// Start begins profiling according to the parsed flags. Call it after
// flag.Parse; the returned stop function finishes the CPU profile, writes
// the heap profile, and prints the -stats dump. Error exits via Fatal skip
// stop, which is fine: partial profiles of failed runs mislead more than
// they help.
func (p *Profile) Start(tool string) (stop func(), err error) {
	p.tool = tool
	if *p.stats {
		core.Instrument(obs.Default)
		cubexml.Instrument(obs.Default)
	}
	if *p.trace != "" {
		// Sample everything: a CLI run traces a handful of operator
		// invocations, so there is nothing to shed. The ring must hold
		// them all — scripts may chain many operations per process.
		p.tracer = obs.NewTracer(obs.TracerOptions{SampleRate: 1, RingSize: 1024})
		obs.SetTracer(p.tracer)
	}
	if *p.events != "" {
		// The process-wide sink catches store/client events too; the
		// invocation itself is one kind "cli" event, routed by tool name.
		p.sink = obs.NewEventSink(obs.DefaultEventRingSize)
		obs.SetEventSink(p.sink)
		p.event = p.sink.NewEvent("cli", tool)
	}
	if *p.cpu != "" {
		f, err := os.Create(*p.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
		p.cpuFile = f
	}
	return p.stop, nil
}

func (p *Profile) stop() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: closing CPU profile: %v\n", p.tool, err)
		}
		p.cpuFile = nil
	}
	if *p.mem != "" {
		f, err := os.Create(*p.mem)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", p.tool, err)
		} else {
			runtime.GC() // materialise final heap state before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing heap profile: %v\n", p.tool, err)
			}
			f.Close()
		}
	}
	if *p.stats {
		fmt.Fprintf(os.Stderr, "--- %s metrics ---\n", p.tool)
		if err := obs.Default.WritePrometheus(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "%s: writing metrics: %v\n", p.tool, err)
		}
	}
	if p.sink != nil {
		obs.SetEventSink(nil)
		p.event.Emit()
		w := os.Stderr
		if *p.events != "-" {
			f, err := os.Create(*p.events)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", p.tool, err)
				w = nil
			} else {
				defer f.Close()
				w = f
			}
		}
		if w != nil {
			if _, err := p.sink.WriteNDJSON(w, obs.EventFilter{}); err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing events: %v\n", p.tool, err)
			}
		}
	}
	if p.tracer != nil {
		obs.SetTracer(nil)
		traces := p.tracer.Traces() // newest first; export chronologically
		for i, j := 0, len(traces)-1; i < j; i, j = i+1, j-1 {
			traces[i], traces[j] = traces[j], traces[i]
		}
		f, err := os.Create(*p.trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", p.tool, err)
			return
		}
		if err := obs.WriteChromeTrace(f, traces...); err != nil {
			fmt.Fprintf(os.Stderr, "%s: writing trace: %v\n", p.tool, err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: closing trace: %v\n", p.tool, err)
		}
	}
}
