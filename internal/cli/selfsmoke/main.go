// Command selfsmoke is the assertion half of `make self-smoke`: it
// stands up an in-process cube-server with a store, drives operator
// traffic, takes two self-telemetry snapshots around a second burst of
// traffic, and then checks the closed loop from the outside, the way an
// operator would:
//
//   - both snapshots land in the run series with distinct digests and
//     parse back as schema-valid CUBE XML (Validate passes),
//   - the server-side Difference of the two runs (one POST /expr with
//     digest: leaves) is nonzero exactly where the between-runs traffic
//     went: the request counter for the operator route moved by the
//     number of requests driven between the snapshots,
//   - GET /debug/self/experiment.xml serves the newest snapshot.
package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"

	"cube"
	"cube/client"
	"cube/internal/cubexml"
	"cube/internal/obs"
	"cube/internal/server"
	"cube/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "selfsmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("selfsmoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "selfsmoke-store-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	cfg := server.DefaultConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.Store = st
	cfg.Debug = true
	cfg.SelfKeep = 8
	cfg.SelfProcess = "selfsmoke"
	if err := cfg.Validate(); err != nil {
		return err
	}
	srv := httptest.NewServer(server.NewHandler(cfg))
	defer srv.Close()

	ctx := context.Background()
	cl := client.New(srv.URL)
	a, b := buildExp("smoke-a", 3), buildExp("smoke-b", 1)

	// Warm-up traffic, then the baseline snapshot.
	if _, err := cl.Sum(ctx, nil, a, b); err != nil {
		return err
	}
	run1, err := cl.SelfSnapshot(ctx)
	if err != nil {
		return fmt.Errorf("first snapshot: %w", err)
	}

	// The between-runs burst the diff must localize.
	const burst = 5
	for i := 0; i < burst; i++ {
		if _, err := cl.Difference(ctx, a, b, nil); err != nil {
			return err
		}
	}
	run2, err := cl.SelfSnapshot(ctx)
	if err != nil {
		return fmt.Errorf("second snapshot: %w", err)
	}
	if run2.Seq != run1.Seq+1 || run1.Digest == run2.Digest {
		return fmt.Errorf("runs did not advance: %+v then %+v", run1, run2)
	}

	// Both runs are retained and the newest is served as XML that parses
	// and validates.
	series, err := cl.SelfSeries(ctx)
	if err != nil {
		return err
	}
	if !series.Enabled || len(series.Runs) != 2 {
		return fmt.Errorf("series = %+v, want 2 retained runs", series)
	}
	latest, err := fetchLatest(ctx, srv.URL)
	if err != nil {
		return err
	}
	if latest.Title != run2.Title {
		return fmt.Errorf("experiment.xml is %q, want the newest run %q", latest.Title, run2.Title)
	}
	if err := latest.Validate(); err != nil {
		return fmt.Errorf("newest snapshot fails validation: %w", err)
	}

	// The server diffs its own history: run2 − run1 via POST /expr.
	d, err := cl.SelfDiff(ctx, run2.Digest, run1.Digest, nil)
	if err != nil {
		return fmt.Errorf("self diff: %w", err)
	}
	if err := d.Validate(); err != nil {
		return fmt.Errorf("diff fails validation: %w", err)
	}
	reqs := familyTotal(d, "cube_http_requests_total")
	if reqs < burst {
		return fmt.Errorf("request-counter delta = %v, want >= %d (the between-runs burst)", reqs, burst)
	}
	if familyTotal(d, "cube_op_invocations_total") < burst {
		return fmt.Errorf("operator-invocation delta < %d: the burst is invisible in the diff", burst)
	}
	return nil
}

// familyTotal sums the between-runs delta over every series of one
// metric family in the diff.
func familyTotal(e *cube.Experiment, family string) float64 {
	for _, root := range e.MetricRoots() {
		if root.Name == family {
			return e.MetricInclusive(root)
		}
	}
	return 0
}

// fetchLatest downloads and parses GET /debug/self/experiment.xml.
func fetchLatest(ctx context.Context, base string) (*cube.Experiment, error) {
	resp, err := http.Get(base + "/debug/self/experiment.xml")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("experiment.xml: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return cubexml.ReadBytes(ctx, data, cubexml.ReadOptions{})
}

// buildExp makes a minimal single-metric experiment so the operator
// endpoints have real work to do.
func buildExp(title string, seed float64) *cube.Experiment {
	e := cube.New(title)
	m := e.NewMetric("Time", cube.Seconds, "")
	root := e.NewCallRoot(e.NewCallSite("", 0, e.NewRegion("main", "app", 0, 0)))
	for i, th := range e.SingleThreadedSystem("m", 1, 4) {
		e.SetSeverity(m, root, th, seed+float64(i))
	}
	return e
}
