// Package cli holds small helpers shared by the cube command-line tools.
package cli

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"cube/internal/core"
)

// ParseOptions translates the -callmatch and -system flag values into
// operator options.
func ParseOptions(callMatch, system string) (*core.Options, error) {
	opts := &core.Options{}
	switch callMatch {
	case "callee":
		opts.CallMatch = core.CallMatchCallee
	case "callee+line":
		opts.CallMatch = core.CallMatchCalleeLine
	default:
		return nil, fmt.Errorf("unknown -callmatch %q (want callee or callee+line)", callMatch)
	}
	switch system {
	case "auto":
		opts.System = core.SystemAuto
	case "collapse":
		opts.System = core.SystemCollapse
	case "copy-first":
		opts.System = core.SystemCopyFirst
	default:
		return nil, fmt.Errorf("unknown -system %q (want auto, collapse, or copy-first)", system)
	}
	return opts, nil
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM, for
// tools (cube-server) that shut down gracefully. A second signal while
// draining kills the process via the default handler, because stop()
// restores default signal behavior once the context is cancelled — call
// stop() on exit paths to release the signal registration.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Fatal prints the error prefixed with the tool name and exits.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}
