// Command tracecheck validates a Chrome trace-event JSON export produced
// by the -trace flag (or GET /debug/traces/{id}): the document must parse,
// contain complete ("X") events, and cover the operator span taxonomy —
// op root, integrate, per-operand lower, kernel shards, materialize. It is
// the assertion half of `make trace-smoke`; CI runs it against a fresh
// cube-diff -trace export.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatal("%v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fatal("not valid trace-event JSON: %v", err)
	}
	names := map[string]int{}
	ops := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Dur < 0 || ev.Ts < 0 {
			fatal("event %q has negative ts/dur (%v/%v)", ev.Name, ev.Ts, ev.Dur)
		}
		names[ev.Name]++
		if strings.HasPrefix(ev.Name, "op.") {
			ops++
		}
	}
	if ops == 0 {
		fatal("no op.* root events (got %v)", names)
	}
	for _, want := range []string{"integrate", "lower", "kernel", "materialize"} {
		if names[want] == 0 {
			fatal("no %q events (got %v)", want, names)
		}
	}
	fmt.Printf("tracecheck: %d events, %d operator invocations\n", len(doc.TraceEvents), ops)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
