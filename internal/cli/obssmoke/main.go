// Command obssmoke is the assertion half of `make obs-smoke`: it stands
// up an in-process cube-server with the debug gate, an experiment store,
// and SLO objectives; drives inline, digest-referenced, and failing
// requests through the typed client; and then validates the telemetry
// the way an operator would consume it — over HTTP:
//
//   - every /debug/events NDJSON line parses and passes the wide-event
//     schema check (obs.ValidateEvent),
//   - the exactly-one-http-event-per-request invariant holds, with
//     distinct request IDs,
//   - client calls and store lifecycle transitions are present as their
//     own event kinds in the same ring,
//   - /debug/slo burn rates agree with recomputing the SLO arithmetic
//     from the same snapshot's raw counters,
//   - /debug/store inventory matches the traffic driven,
//   - /metrics carries the cube_slo_* gauges and parses with promtext.
//
// The latency objective is set to 1ns so every request is deliberately
// "slow": latency burn must then equal total/((1-target)·total), which
// pins the burn formula, not just its zero.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"cube"
	"cube/client"
	"cube/internal/obs"
	"cube/internal/promtext"
	"cube/internal/server"
	"cube/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "obssmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "obssmoke-store-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	sink := obs.NewEventSink(0)
	st, err := store.Open(dir, store.Options{Events: sink})
	if err != nil {
		return err
	}
	cfg := server.DefaultConfig()
	cfg.Debug = true
	cfg.Metrics = obs.NewRegistry()
	cfg.Events = sink
	cfg.Store = st
	cfg.SLOAvailability = 0.999
	cfg.SLOLatency = time.Nanosecond // every request is "slow" on purpose
	if err := cfg.Validate(); err != nil {
		return err
	}
	srv := httptest.NewServer(server.NewHandler(cfg))
	defer srv.Close()
	defer obs.SetEventSink(nil)

	// Traffic: 1 inline op, 2 store puts, 1 digest-referenced op, one
	// 404, one 422 — six HTTP requests, five typed-client calls. None of
	// these retry, so the event arithmetic below is exact.
	ctx := context.Background()
	cl := client.New(srv.URL)
	a, b := buildExp("before", 3), buildExp("after", 1)
	if _, err := cl.Difference(ctx, a, b, nil); err != nil {
		return fmt.Errorf("inline difference: %w", err)
	}
	da, err := cl.Put(ctx, a)
	if err != nil {
		return fmt.Errorf("put a: %w", err)
	}
	db, err := cl.Put(ctx, b)
	if err != nil {
		return fmt.Errorf("put b: %w", err)
	}
	if _, err := cl.DifferenceByDigest(ctx, da, db, nil); err != nil {
		return fmt.Errorf("digest difference: %w", err)
	}
	resp, err := http.Get(srv.URL + "/no/such/route")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("GET /no/such/route = %d, want 404", resp.StatusCode)
	}
	if _, err := cl.Prune(ctx, a, "NoSuchMetric", 0.5); err == nil {
		return fmt.Errorf("prune of unknown metric succeeded, want 422")
	}
	const wantHTTP, wantClient = 6, 5

	// Events emit after the response flushes; wait for the last one.
	deadline := time.Now().Add(5 * time.Second)
	for countKind(sink.Events(), "http") < wantHTTP {
		if time.Now().After(deadline) {
			return fmt.Errorf("ring has %d http events, want %d", countKind(sink.Events(), "http"), wantHTTP)
		}
		time.Sleep(time.Millisecond)
	}

	if err := checkEvents(srv.URL, wantHTTP, wantClient); err != nil {
		return err
	}
	if err := checkSLO(srv.URL); err != nil {
		return err
	}
	if err := checkStore(srv.URL); err != nil {
		return err
	}
	return checkMetrics(srv.URL)
}

// checkEvents validates the NDJSON export: schema per line, event counts
// per kind, distinct request IDs on the http events.
func checkEvents(base string, wantHTTP, wantClient int) error {
	resp, err := http.Get(base + "/debug/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		return fmt.Errorf("/debug/events Content-Type = %q", ct)
	}
	kinds := map[string]int{}
	ids := map[string]bool{}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
		var f obs.EventFields
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return fmt.Errorf("/debug/events line %d is not JSON: %v", lines, err)
		}
		if err := obs.ValidateEvent(&f); err != nil {
			return fmt.Errorf("/debug/events line %d fails schema: %v\n%s", lines, err, sc.Text())
		}
		kinds[f.Kind]++
		if f.Kind == "http" {
			if ids[f.RequestID] {
				return fmt.Errorf("duplicate http request_id %q", f.RequestID)
			}
			ids[f.RequestID] = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if kinds["http"] != wantHTTP {
		return fmt.Errorf("http events = %d, want exactly %d (one per request); kinds = %v", kinds["http"], wantHTTP, kinds)
	}
	if kinds["client"] != wantClient {
		return fmt.Errorf("client events = %d, want %d; kinds = %v", kinds["client"], wantClient, kinds)
	}
	if kinds["store"] == 0 {
		return fmt.Errorf("no store lifecycle events in the ring; kinds = %v", kinds)
	}
	return nil
}

// checkSLO recomputes burn = bad/((1-target)·total) from the snapshot's
// own counters and requires the served values to match.
func checkSLO(base string) error {
	var doc struct {
		Enabled            bool    `json:"enabled"`
		AvailabilityTarget float64 `json:"availability_target"`
		LatencyTarget      float64 `json:"latency_target"`
		Routes             []struct {
			Route            string  `json:"route"`
			Total            int64   `json:"total"`
			Errors           int64   `json:"errors"`
			AvailabilityBurn float64 `json:"availability_burn"`
			Slow             int64   `json:"slow"`
			LatencyBurn      float64 `json:"latency_burn"`
			BudgetRemaining  float64 `json:"budget_remaining"`
		} `json:"routes"`
	}
	if err := getJSON(base+"/debug/slo", &doc); err != nil {
		return err
	}
	if !doc.Enabled || doc.AvailabilityTarget != 0.999 || len(doc.Routes) == 0 {
		return fmt.Errorf("/debug/slo = %+v, want enabled with availability 0.999 and routes", doc)
	}
	for _, r := range doc.Routes {
		if r.Total == 0 {
			return fmt.Errorf("slo route %q has zero total", r.Route)
		}
		wantAvail := float64(r.Errors) / ((1 - doc.AvailabilityTarget) * float64(r.Total))
		if math.Abs(r.AvailabilityBurn-wantAvail) > 1e-6 {
			return fmt.Errorf("route %q availability burn = %v, recomputed %v", r.Route, r.AvailabilityBurn, wantAvail)
		}
		// The 1ns threshold makes every request slow, so the latency burn
		// must be exactly 1/(1-target) — the formula with slow == total.
		if r.Slow != r.Total {
			return fmt.Errorf("route %q slow = %d of %d, want all slow under a 1ns threshold", r.Route, r.Slow, r.Total)
		}
		wantLat := float64(r.Slow) / ((1 - doc.LatencyTarget) * float64(r.Total))
		if math.Abs(r.LatencyBurn-wantLat) > 1e-6 {
			return fmt.Errorf("route %q latency burn = %v, recomputed %v", r.Route, r.LatencyBurn, wantLat)
		}
		if r.BudgetRemaining != 0 {
			return fmt.Errorf("route %q budget remaining = %v, want 0 with the latency budget torched", r.Route, r.BudgetRemaining)
		}
	}
	return nil
}

// checkStore matches the inventory against the traffic: two distinct
// documents were put, and the digest-referenced op read them back.
func checkStore(base string) error {
	var doc struct {
		Enabled bool  `json:"enabled"`
		Blobs   int   `json:"blobs"`
		Puts    int64 `json:"puts"`
		Gets    int64 `json:"gets"`
	}
	if err := getJSON(base+"/debug/store", &doc); err != nil {
		return err
	}
	if !doc.Enabled || doc.Blobs != 2 || doc.Puts != 2 || doc.Gets < 2 {
		return fmt.Errorf("/debug/store = %+v, want enabled, 2 blobs, 2 puts, >=2 gets", doc)
	}
	return nil
}

// checkMetrics parses the exposition and requires the SLO gauges the
// dashboards read. A fully-burned latency budget is 100x = 1e8 ppm.
func checkMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	m, err := promtext.Parse(resp.Body)
	if err != nil {
		return err
	}
	if v, ok := m.Value("cube_slo_latency_burn_ppm", map[string]string{"route": "/op/{op}"}); !ok || v <= 0 {
		return fmt.Errorf("cube_slo_latency_burn_ppm{route=/op/{op}} = %v, %v; want > 0", v, ok)
	}
	if _, ok := m.Value("cube_slo_availability_burn_ppm", map[string]string{"route": "/op/{op}"}); !ok {
		return fmt.Errorf("cube_slo_availability_burn_ppm absent from /metrics")
	}
	if got := m.Sum("cube_http_requests_total", nil); got == 0 {
		return fmt.Errorf("cube_http_requests_total absent from /metrics")
	}
	return nil
}

func countKind(events []*obs.EventFields, kind string) int {
	n := 0
	for _, f := range events {
		if f.Kind == kind {
			n++
		}
	}
	return n
}

func getJSON(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// buildExp makes a minimal single-metric experiment whose severities
// differ by seed, so differences are non-trivial.
func buildExp(title string, seed float64) *cube.Experiment {
	e := cube.New(title)
	m := e.NewMetric("Time", cube.Seconds, "")
	root := e.NewCallRoot(e.NewCallSite("", 0, e.NewRegion("main", "app", 0, 0)))
	for i, th := range e.SingleThreadedSystem("m", 1, 4) {
		e.SetSeverity(m, root, th, seed+float64(i))
	}
	return e
}
