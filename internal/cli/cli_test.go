package cli

import (
	"testing"

	"cube/internal/core"
)

func TestParseOptions(t *testing.T) {
	opts, err := ParseOptions("callee", "auto")
	if err != nil || opts.CallMatch != core.CallMatchCallee || opts.System != core.SystemAuto {
		t.Errorf("defaults: %+v, %v", opts, err)
	}
	opts, err = ParseOptions("callee+line", "collapse")
	if err != nil || opts.CallMatch != core.CallMatchCalleeLine || opts.System != core.SystemCollapse {
		t.Errorf("callee+line/collapse: %+v, %v", opts, err)
	}
	opts, err = ParseOptions("callee", "copy-first")
	if err != nil || opts.System != core.SystemCopyFirst {
		t.Errorf("copy-first: %+v, %v", opts, err)
	}
	if _, err := ParseOptions("bogus", "auto"); err == nil {
		t.Errorf("bad callmatch accepted")
	}
	if _, err := ParseOptions("callee", "bogus"); err == nil {
		t.Errorf("bad system accepted")
	}
}
