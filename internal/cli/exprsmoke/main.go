// Command exprsmoke is the assertion half of `make expr-smoke`: it
// stands up an in-process cube-server with a store and drives nested
// expression DAGs with shared subexpressions through the typed client,
// then validates the engine's promises from the outside, the way an
// operator would:
//
//   - the result of a deep DAG equals composing the same operators
//     sequentially through the single-operator endpoints,
//   - `cube_expr_cse_hits_total` > 0 after a DAG that repeats a
//     subexpression, and `cube_op_invocations_total` shows the shared
//     operator ran once,
//   - replaying an identical DAG is served from the expression-digest
//     result cache: the cache-hit counter moves, the evaluated-node
//     counter does not, and the response still matches,
//   - the same holds for digest-leaf and inline-leaf spellings of the
//     same experiment (content-addressed leaves unify).
package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"

	"cube"
	"cube/client"
	"cube/internal/obs"
	"cube/internal/promtext"
	"cube/internal/server"
	"cube/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "exprsmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("exprsmoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "exprsmoke-store-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	cfg := server.DefaultConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.Store = st
	if err := cfg.Validate(); err != nil {
		return err
	}
	srv := httptest.NewServer(server.NewHandler(cfg))
	defer srv.Close()

	ctx := context.Background()
	cl := client.New(srv.URL)
	a, b, c := buildExp("run-a", 3), buildExp("run-b", 1), buildExp("run-c", 2)
	da, err := cl.Put(ctx, a)
	if err != nil {
		return err
	}
	db, err := cl.Put(ctx, b)
	if err != nil {
		return err
	}

	// The sequential baseline, one operator endpoint at a time.
	diff, err := cl.DifferenceByDigest(ctx, da, db, nil)
	if err != nil {
		return err
	}
	scaled, err := cl.Expr(ctx, client.ScaleExpr(client.OperandRef(0), 2), nil, diff)
	if err != nil {
		return err
	}
	want, err := cl.Mean(ctx, nil, diff, scaled, c)
	if err != nil {
		return err
	}

	// The same computation as one nested DAG: difference(a,b) appears
	// under two parents and must evaluate once.
	d := client.DifferenceExpr(client.DigestRef(da), client.DigestRef(db))
	root := client.MeanExpr(d, client.ScaleExpr(d, 2), client.OperandRef(0))
	before, err := scrape(srv.URL)
	if err != nil {
		return err
	}
	got, stats, err := cl.ExprStats(ctx, root, nil, c)
	if err != nil {
		return fmt.Errorf("deep DAG: %w", err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		return fmt.Errorf("DAG result differs from sequential composition")
	}
	if stats.CSEHits < 1 || stats.Cached {
		return fmt.Errorf("first DAG stats = %+v, want CSEHits >= 1 and no cache hit", stats)
	}
	after, err := scrape(srv.URL)
	if err != nil {
		return err
	}
	if hits := after.Sum("cube_expr_cse_hits_total", nil) - before.Sum("cube_expr_cse_hits_total", nil); hits < 1 {
		return fmt.Errorf("cube_expr_cse_hits_total moved by %v, want >= 1", hits)
	}
	sel := map[string]string{"op": "difference"}
	if n := after.Sum("cube_op_invocations_total", sel) - before.Sum("cube_op_invocations_total", sel); n != 1 {
		return fmt.Errorf("difference ran %v times inside the DAG, want exactly 1 (CSE)", n)
	}

	// Replaying the identical DAG must be a pure result-cache hit: no
	// node evaluates, no operator runs.
	got2, stats2, err := cl.ExprStats(ctx, root, nil, c)
	if err != nil {
		return fmt.Errorf("replayed DAG: %w", err)
	}
	if !stats2.Cached {
		return fmt.Errorf("replayed DAG stats = %+v, want a result-cache hit", stats2)
	}
	if got2.Fingerprint() != want.Fingerprint() {
		return fmt.Errorf("replayed DAG result differs")
	}
	final, err := scrape(srv.URL)
	if err != nil {
		return err
	}
	if n := final.Sum("cube_expr_eval_nodes_total", nil) - after.Sum("cube_expr_eval_nodes_total", nil); n != 0 {
		return fmt.Errorf("replay evaluated %v nodes, want 0 (result cache)", n)
	}
	if n := final.Sum("cube_expr_cache_hits_total", nil) - after.Sum("cube_expr_cache_hits_total", nil); n < 1 {
		return fmt.Errorf("cube_expr_cache_hits_total moved by %v on replay, want >= 1", n)
	}

	// Leaf spellings unify: sum(digest:a, inline bytes of a) == sum(a, a).
	mixed, err := cl.Expr(ctx, client.SumExpr(client.DigestRef(da), client.OperandRef(0)), nil, a)
	if err != nil {
		return fmt.Errorf("mixed-leaf DAG: %w", err)
	}
	wantSum, err := cl.Sum(ctx, nil, a, a)
	if err != nil {
		return err
	}
	if mixed.Fingerprint() != wantSum.Fingerprint() {
		return fmt.Errorf("digest and inline spellings of one experiment did not unify")
	}
	return nil
}

func scrape(base string) (promtext.Metrics, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return promtext.Parse(resp.Body)
}

// buildExp makes a minimal single-metric experiment whose severities
// differ by seed, so differences and means are non-trivial.
func buildExp(title string, seed float64) *cube.Experiment {
	e := cube.New(title)
	m := e.NewMetric("Time", cube.Seconds, "")
	root := e.NewCallRoot(e.NewCallSite("", 0, e.NewRegion("main", "app", 0, 0)))
	for i, th := range e.SingleThreadedSystem("m", 1, 4) {
		e.SetSeverity(m, root, th, seed+float64(i))
	}
	return e
}
