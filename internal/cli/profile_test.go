package cli

import (
	"bufio"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cube/internal/core"
	"cube/internal/obs"
)

// TestProfileEventsFlag drives the -events flag end to end: Start installs
// the process-wide sink, the invocation event picks up kernel attribution
// through core.Options, and stop writes valid NDJSON.
func TestProfileEventsFlag(t *testing.T) {
	out := filepath.Join(t.TempDir(), "events.ndjson")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := NewProfile(fs)
	if err := fs.Parse([]string{"-events", out}); err != nil {
		t.Fatal(err)
	}
	stop, err := p.Start("cube-test")
	if err != nil {
		t.Fatal(err)
	}
	if obs.ActiveEventSink() == nil {
		t.Fatal("-events did not install the process sink")
	}

	// A real operator run attributes into the invocation event.
	e := core.New("a")
	m := e.NewMetric("Time", core.Seconds, "")
	root := e.NewCallRoot(e.NewCallSite("", 0, e.NewRegion("main", "app", 0, 0)))
	for _, th := range e.SingleThreadedSystem("m", 1, 2) {
		e.SetSeverity(m, root, th, 1)
	}
	opts, err := ParseOptions("callee", "auto")
	if err != nil {
		t.Fatal(err)
	}
	opts.Event = p.Event()
	if _, err := core.Difference(e, e, opts); err != nil {
		t.Fatal(err)
	}
	stop()
	if obs.ActiveEventSink() != nil {
		t.Error("stop did not uninstall the process sink")
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines []map[string]any
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var doc map[string]any
		if err := json.Unmarshal(sc.Bytes(), &doc); err != nil {
			t.Fatalf("line %d is not JSON: %v", len(lines)+1, err)
		}
		lines = append(lines, doc)
	}
	if len(lines) != 1 {
		t.Fatalf("events file has %d lines, want 1", len(lines))
	}
	got := lines[0]
	if got["kind"] != "cli" || got["route"] != "cube-test" || got["op"] != "difference" {
		t.Errorf("event = %v", got)
	}
	if got["kernel_tuples"] == nil || got["duration_ms"] == nil {
		t.Errorf("event missing kernel/duration attribution: %v", got)
	}
}

// TestProfileEventsOff pins the default: without -events there is no sink
// and Event() is nil (safe to hand to core.Options).
func TestProfileEventsOff(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := NewProfile(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := p.Start("cube-test")
	if err != nil {
		t.Fatal(err)
	}
	if p.Event() != nil {
		t.Error("Event() non-nil without -events")
	}
	stop()
}
