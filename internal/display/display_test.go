package display

import (
	"strings"
	"testing"

	"cube/internal/core"
)

// build creates a display-test experiment:
//
//	metrics: Time{Comm{Wait}}
//	calls:   main{work, MPI_Recv}
//	system:  1 machine / 1 node / 2 single-threaded ranks
//
// severities (per thread): Time@main=1, Time@work=4, Comm@recv=2,
// Wait@recv=1 → Time root inclusive = 2*(1+4+2+1) = 16.
func build() *core.Experiment {
	e := core.New("disp")
	time := e.NewMetric("Time", core.Seconds, "")
	comm := time.NewChild("Comm", "")
	wait := comm.NewChild("Wait", "")

	mainR := e.NewRegion("main", "app", 0, 0)
	workR := e.NewRegion("work", "app", 0, 0)
	recvR := e.NewRegion("MPI_Recv", "libmpi", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("", 0, mainR))
	work := root.NewChild(e.NewCallSite("app", 5, workR))
	recv := root.NewChild(e.NewCallSite("app", 9, recvR))

	for _, th := range e.SingleThreadedSystem("m", 1, 2) {
		e.SetSeverity(time, root, th, 1)
		e.SetSeverity(time, work, th, 4)
		e.SetSeverity(comm, recv, th, 2)
		e.SetSeverity(wait, recv, th, 1)
	}
	return e
}

func TestMetricLabelSemantics(t *testing.T) {
	e := build()
	time := e.FindMetricByName("Time")
	comm := e.FindMetricByName("Comm")
	// Expanded: exclusive. Collapsed: inclusive subtree total.
	if got := MetricLabel(e, time, false); got != 10 {
		t.Errorf("expanded Time = %v, want 10", got)
	}
	if got := MetricLabel(e, time, true); got != 16 {
		t.Errorf("collapsed Time = %v, want 16", got)
	}
	if got := MetricLabel(e, comm, false); got != 4 {
		t.Errorf("expanded Comm = %v, want 4", got)
	}
	if got := MetricLabel(e, comm, true); got != 6 {
		t.Errorf("collapsed Comm = %v, want 6", got)
	}
}

func TestCallLabelSemantics(t *testing.T) {
	e := build()
	time := e.FindMetricByName("Time")
	root := e.FindCallNode("main")
	selExpanded := Selection{Metric: time} // expanded: only Time itself
	if got := CallLabel(e, selExpanded, root, false); got != 2 {
		t.Errorf("root label (expanded metric, expanded cnode) = %v, want 2", got)
	}
	if got := CallLabel(e, selExpanded, root, true); got != 10 {
		t.Errorf("root label (collapsed cnode) = %v, want 10", got)
	}
	selCollapsed := Selection{Metric: time, MetricCollapsed: true} // whole metric subtree
	if got := CallLabel(e, selCollapsed, root, true); got != 16 {
		t.Errorf("root label (collapsed metric+cnode) = %v, want 16", got)
	}
	recv := e.FindCallNode("main/MPI_Recv")
	if got := CallLabel(e, selCollapsed, recv, false); got != 6 {
		t.Errorf("recv label = %v, want 6", got)
	}
}

func TestThreadValueAndSelectedTotal(t *testing.T) {
	e := build()
	wait := e.FindMetricByName("Wait")
	recv := e.FindCallNode("main/MPI_Recv")
	th := e.Threads()[0]
	sel := Selection{Metric: wait, CNode: recv}
	if got := ThreadValue(e, sel, th); got != 1 {
		t.Errorf("ThreadValue = %v, want 1", got)
	}
	if got := SelectedTotal(e, sel); got != 2 {
		t.Errorf("SelectedTotal = %v, want 2", got)
	}
	// Collapsed call selection aggregates the subtree.
	root := e.FindCallNode("main")
	selAll := Selection{Metric: e.FindMetricByName("Time"), MetricCollapsed: true,
		CNode: root, CNodeCollapsed: true}
	if got := SelectedTotal(e, selAll); got != 16 {
		t.Errorf("fully collapsed total = %v, want 16", got)
	}
}

func render(t *testing.T, e *core.Experiment, sel Selection, cfg *Config) string {
	t.Helper()
	s, err := RenderString(e, sel, cfg)
	if err != nil {
		t.Fatalf("render: %v", err)
	}
	return s
}

func TestRenderAbsolute(t *testing.T) {
	e := build()
	sel := Selection{Metric: e.FindMetricByName("Wait"), MetricCollapsed: true,
		CNode: e.FindCallNode("main"), CNodeCollapsed: true}
	out := render(t, e, sel, nil)
	for _, want := range []string{
		"CUBE: disp", "Metric tree", "Call tree (metric: Wait", "System tree",
		"Time", "Comm", "Wait", "main", "work", "MPI_Recv",
		"machine m", "node node00", "rank 0", "rank 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
	// Single-threaded: thread rows are hidden.
	if strings.Contains(out, "thread 0") {
		t.Errorf("thread level should be hidden for single-threaded runs")
	}
	// Selected rows marked.
	if !strings.Contains(out, "»") {
		t.Errorf("selection marker missing")
	}
}

func TestRenderPercentMode(t *testing.T) {
	e := build()
	sel := Selection{Metric: e.FindMetricByName("Wait"), MetricCollapsed: true,
		CNode: e.FindCallNode("main"), CNodeCollapsed: true}
	out := render(t, e, sel, &Config{Mode: Percent})
	// Wait total = 2, Time root total = 16 → 12.5%.
	if !strings.Contains(out, "12.5%") {
		t.Errorf("percent value missing:\n%s", out)
	}
	if !strings.Contains(out, "mode: percent") {
		t.Errorf("mode header missing")
	}
}

func TestRenderExternalMode(t *testing.T) {
	e := build()
	sel := Selection{Metric: e.FindMetricByName("Wait"), MetricCollapsed: true,
		CNode: e.FindCallNode("main"), CNodeCollapsed: true}
	out := render(t, e, sel, &Config{Mode: External, Base: 32})
	// Wait total 2 / external base 32 = 6.2%.
	if !strings.Contains(out, "6.2%") {
		t.Errorf("externally normalized value missing:\n%s", out)
	}
}

func TestRenderReliefSigns(t *testing.T) {
	e := build()
	// Make Wait@recv negative (a difference experiment would).
	wait := e.FindMetricByName("Wait")
	recv := e.FindCallNode("main/MPI_Recv")
	for _, th := range e.Threads() {
		e.SetSeverity(wait, recv, th, -1)
	}
	sel := Selection{Metric: wait, MetricCollapsed: true,
		CNode: recv, CNodeCollapsed: true}
	out := render(t, e, sel, nil)
	if !strings.Contains(out, "[-]") {
		t.Errorf("sunken relief missing for negative severity:\n%s", out)
	}
	if !strings.Contains(out, "[+]") {
		t.Errorf("raised relief missing for positive severity")
	}
}

func TestRenderCollapsedNodes(t *testing.T) {
	e := build()
	sel := Selection{Metric: e.FindMetricByName("Time"), MetricCollapsed: true,
		CNode: e.FindCallNode("main"), CNodeCollapsed: true}
	out := render(t, e, sel, &Config{Collapsed: map[string]bool{"Time/Comm": true, "main": true}})
	if strings.Contains(out, "Wait") {
		t.Errorf("children of collapsed metric rendered:\n%s", out)
	}
	if strings.Contains(out, "work") {
		t.Errorf("children of collapsed call node rendered")
	}
}

func TestRenderHideZero(t *testing.T) {
	e := build()
	e.NewMetric("Empty", core.Bytes, "")
	sel := Selection{Metric: e.FindMetricByName("Time"), MetricCollapsed: true,
		CNode: e.FindCallNode("main"), CNodeCollapsed: true}
	out := render(t, e, sel, &Config{HideZero: true})
	if strings.Contains(out, "Empty") {
		t.Errorf("zero subtree rendered with HideZero")
	}
	out = render(t, e, sel, nil)
	if !strings.Contains(out, "Empty") {
		t.Errorf("zero subtree hidden without HideZero")
	}
}

func TestRenderDefaultsWhenSelectionEmpty(t *testing.T) {
	e := build()
	out := render(t, e, Selection{}, nil)
	if !strings.Contains(out, "Call tree (metric: Time") {
		t.Errorf("default metric selection not applied:\n%s", out)
	}
	if !strings.Contains(out, "System tree (no call path selected)") {
		t.Errorf("missing no-cnode note")
	}
}

func TestRenderNoMetrics(t *testing.T) {
	e := core.New("empty")
	if _, err := RenderString(e, Selection{}, nil); err == nil {
		t.Errorf("experiment without metrics accepted")
	}
}

func TestRenderDerivedTitle(t *testing.T) {
	e := build()
	e.Derived = true
	e.Operation = "difference"
	sel := Selection{Metric: e.FindMetricByName("Time"), CNode: e.FindCallNode("main")}
	out := render(t, e, sel, nil)
	if !strings.Contains(out, "(derived: difference)") {
		t.Errorf("derived marker missing")
	}
}

func TestRenderMultiThreadedShowsThreads(t *testing.T) {
	e := core.New("mt")
	time := e.NewMetric("Time", core.Seconds, "")
	mainR := e.NewRegion("main", "app", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("", 0, mainR))
	p := e.NewMachine("m").NewNode("n").NewProcess(0, "")
	t0 := p.NewThread(0, "")
	t1 := p.NewThread(1, "")
	e.SetSeverity(time, root, t0, 1)
	e.SetSeverity(time, root, t1, 2)
	sel := Selection{Metric: time, MetricCollapsed: true, CNode: root, CNodeCollapsed: true}
	out := render(t, e, sel, nil)
	if !strings.Contains(out, "thread 0") || !strings.Contains(out, "thread 1") {
		t.Errorf("thread rows missing for multi-threaded process:\n%s", out)
	}
}

func TestModeString(t *testing.T) {
	if Absolute.String() != "absolute" || Percent.String() != "percent" ||
		External.String() != "external percent" || Mode(9).String() == "" {
		t.Errorf("mode strings wrong")
	}
}

func TestBarScaling(t *testing.T) {
	e := build()
	sel := Selection{Metric: e.FindMetricByName("Time"), MetricCollapsed: true,
		CNode: e.FindCallNode("main"), CNodeCollapsed: true}
	out := render(t, e, sel, &Config{Mode: Percent, BarWidth: 4})
	// The Time root row (100%) must show a full bar.
	if !strings.Contains(out, "|####|") {
		t.Errorf("full bar missing:\n%s", out)
	}
}
