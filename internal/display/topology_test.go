package display

import (
	"strings"
	"testing"

	"cube/internal/core"
)

func buildTopo(t *testing.T) *core.Experiment {
	t.Helper()
	e := core.New("topo")
	time := e.NewMetric("Time", core.Seconds, "")
	mainR := e.NewRegion("main", "app", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("", 0, mainR))
	threads := e.SingleThreadedSystem("m", 1, 4)
	for i, th := range threads {
		e.SetSeverity(time, root, th, float64(i))
	}
	topo, err := core.NewCartesian("grid", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	e.SetTopology(topo)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRenderTopology2D(t *testing.T) {
	e := buildTopo(t)
	sel := Selection{Metric: e.MetricRoots()[0], MetricCollapsed: true,
		CNode: e.CallRoots()[0], CNodeCollapsed: true}
	out, err := RenderTopologyString(e, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `Topology "grid" [2 2]`) {
		t.Errorf("header missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 grid rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Rank 3 (value 3 = max) renders intensity 9 in row 1 col 1;
	// rank 0 (value 0) renders 0.
	if !strings.Contains(lines[2], "+9") {
		t.Errorf("max cell missing: %q", lines[2])
	}
	if !strings.Contains(lines[1], " 0") {
		t.Errorf("zero cell missing: %q", lines[1])
	}
}

func TestRenderTopologyNegative(t *testing.T) {
	e := buildTopo(t)
	time := e.MetricRoots()[0]
	root := e.CallRoots()[0]
	e.SetSeverity(time, root, e.Threads()[1], -3)
	sel := Selection{Metric: time, MetricCollapsed: true, CNode: root, CNodeCollapsed: true}
	out, err := RenderTopologyString(e, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "-9") {
		t.Errorf("negative relief missing:\n%s", out)
	}
}

func TestRenderTopology1D(t *testing.T) {
	e := buildTopo(t)
	topo, _ := core.NewCartesian("line", 4)
	e.SetTopology(topo)
	sel := Selection{Metric: e.MetricRoots()[0], MetricCollapsed: true,
		CNode: e.CallRoots()[0], CNodeCollapsed: true}
	out, err := RenderTopologyString(e, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Errorf("1D topology should render one row:\n%s", out)
	}
}

func TestRenderTopology3D(t *testing.T) {
	e := core.New("t3")
	time := e.NewMetric("Time", core.Seconds, "")
	mainR := e.NewRegion("main", "app", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("", 0, mainR))
	threads := e.SingleThreadedSystem("m", 1, 8)
	for i, th := range threads {
		e.SetSeverity(time, root, th, float64(i))
	}
	topo, _ := core.NewCartesian("cube", 2, 2, 2)
	e.SetTopology(topo)
	sel := Selection{Metric: time, MetricCollapsed: true, CNode: root, CNodeCollapsed: true}
	out, err := RenderTopologyString(e, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "plane 0:") || !strings.Contains(out, "plane 1:") {
		t.Errorf("3D planes missing:\n%s", out)
	}
}

func TestRenderTopologyErrors(t *testing.T) {
	e := core.New("none")
	e.NewMetric("Time", core.Seconds, "")
	if _, err := RenderTopologyString(e, Selection{}, nil); err == nil {
		t.Errorf("missing topology accepted")
	}
	e2 := buildTopo(t)
	topo := &core.Topology{Name: "4d", Dims: []int{1, 1, 1, 1}, Coords: map[int][]int{}}
	e2.SetTopology(topo)
	if _, err := RenderTopologyString(e2, Selection{}, nil); err == nil {
		t.Errorf("4D topology accepted by renderer")
	}
}

func TestRenderTopologyUnmappedCell(t *testing.T) {
	e := buildTopo(t)
	delete(e.Topology().Coords, 2)
	sel := Selection{Metric: e.MetricRoots()[0], MetricCollapsed: true,
		CNode: e.CallRoots()[0], CNodeCollapsed: true}
	out, err := RenderTopologyString(e, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "··") {
		t.Errorf("unmapped cell marker missing:\n%s", out)
	}
}
