// Package display is a text-mode rendering of the CUBE display: three
// coupled tree browsers showing the metric, the program (call tree), and
// the system dimension from left to right (here: top to bottom). Thanks to
// the algebra's closure property the display treats derived experiments
// exactly like original ones.
//
// The display follows the paper's principles:
//
//   - Single representation: within a tree each fraction of the severity is
//     shown only once. An expanded node is labelled with its exclusive
//     value, a collapsed node with the inclusive sum over its subtree.
//   - Aggregation across dimensions by selection: the call tree shows the
//     selected metric, the system tree the selected metric at the selected
//     call path; selecting a collapsed node aggregates its subtree.
//   - Severity ranking: every value carries a relief sign — raised (+) for
//     positive values, sunken (-) for negative ones (differences!) — and a
//     proportional bar standing in for the GUI's colour scale.
//   - Absolute values, percentages of the root total, or percentages
//     normalized with respect to an external total (for comparing
//     experiments).
package display

import (
	"fmt"
	"io"
	"strings"

	"cube/internal/core"
)

// Mode selects how values are displayed.
type Mode int

const (
	// Absolute displays raw severity values with their units.
	Absolute Mode = iota
	// Percent displays values as percentages of the selected metric
	// root's grand total within the same experiment.
	Percent
	// External displays values as percentages of an externally supplied
	// total (e.g. the previous code version's execution time), which
	// simplifies cross-experiment comparison.
	External
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Absolute:
		return "absolute"
	case Percent:
		return "percent"
	case External:
		return "external percent"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Selection is the user's current selection: one metric node and one call
// node, each with its expansion state (a collapsed selection aggregates the
// whole subtree).
type Selection struct {
	Metric          *core.Metric
	MetricCollapsed bool
	CNode           *core.CallNode
	CNodeCollapsed  bool
}

// Config controls rendering.
type Config struct {
	// Mode selects absolute, percent, or external percent display.
	Mode Mode
	// Base is the external 100 % reference (External mode only).
	Base float64
	// Collapsed marks tree nodes (by metric path or call path) rendered
	// collapsed: their subtree is hidden and their label is inclusive.
	Collapsed map[string]bool
	// HideZero suppresses subtrees whose inclusive value is zero.
	HideZero bool
	// BarWidth is the width of the severity bar (0 disables bars).
	BarWidth int
}

func (c *Config) orDefault() Config {
	var out Config
	if c != nil {
		out = *c
	}
	if out.BarWidth == 0 {
		out.BarWidth = 8
	}
	return out
}

// --- Aggregation semantics ---------------------------------------------------

// MetricLabel returns the value shown at a metric-tree node: the exclusive
// severity total when expanded, the inclusive subtree total when collapsed.
func MetricLabel(e *core.Experiment, m *core.Metric, collapsed bool) float64 {
	if collapsed {
		return e.MetricInclusive(m)
	}
	return e.MetricTotal(m)
}

// selMetricValue returns the severity at call node c (exclusive along the
// call tree) for the metric selection.
func selMetricValue(e *core.Experiment, sel Selection, c *core.CallNode) float64 {
	if !sel.MetricCollapsed {
		return e.MetricValue(sel.Metric, c)
	}
	var s float64
	sel.Metric.Walk(func(d *core.Metric) { s += e.MetricValue(d, c) })
	return s
}

// CallLabel returns the value shown at a call-tree node for the current
// metric selection: exclusive when expanded, inclusive over the call
// subtree when collapsed.
func CallLabel(e *core.Experiment, sel Selection, c *core.CallNode, collapsed bool) float64 {
	if !collapsed {
		return selMetricValue(e, sel, c)
	}
	var s float64
	c.Walk(func(d *core.CallNode) { s += selMetricValue(e, sel, d) })
	return s
}

// ThreadValue returns the severity of the current metric and call-path
// selection at thread t.
func ThreadValue(e *core.Experiment, sel Selection, t *core.Thread) float64 {
	var metrics []*core.Metric
	if sel.MetricCollapsed {
		sel.Metric.Walk(func(d *core.Metric) { metrics = append(metrics, d) })
	} else {
		metrics = []*core.Metric{sel.Metric}
	}
	var cnodes []*core.CallNode
	if sel.CNodeCollapsed {
		sel.CNode.Walk(func(d *core.CallNode) { cnodes = append(cnodes, d) })
	} else {
		cnodes = []*core.CallNode{sel.CNode}
	}
	var s float64
	for _, m := range metrics {
		for _, c := range cnodes {
			s += e.Severity(m, c, t)
		}
	}
	return s
}

// SelectedTotal returns the value of the full current selection summed over
// the entire system — the number the paper quotes as e.g. "13.2 % of the
// execution time" when combined with Percent mode.
func SelectedTotal(e *core.Experiment, sel Selection) float64 {
	var s float64
	for _, t := range e.Threads() {
		s += ThreadValue(e, sel, t)
	}
	return s
}

// --- Rendering -----------------------------------------------------------------

type renderer struct {
	w    io.Writer
	e    *core.Experiment
	sel  Selection
	cfg  Config
	base float64 // 100% reference for the current tree
	err  error
}

func (r *renderer) printf(format string, args ...any) {
	if r.err != nil {
		return
	}
	_, r.err = fmt.Fprintf(r.w, format, args...)
}

// value formats a severity value under the current mode and base.
func (r *renderer) value(v float64, unit core.Unit) string {
	switch r.cfg.Mode {
	case Percent, External:
		if r.base == 0 {
			return fmt.Sprintf("%8.1f%%", 0.0)
		}
		return fmt.Sprintf("%8.1f%%", 100*v/r.base)
	default:
		switch unit {
		case core.Seconds:
			return fmt.Sprintf("%12.6f", v)
		default:
			return fmt.Sprintf("%12.0f", v)
		}
	}
}

// relief returns the sign marker: raised for gains (positive), sunken for
// losses (negative).
func relief(v float64) byte {
	switch {
	case v > 0:
		return '+'
	case v < 0:
		return '-'
	}
	return ' '
}

// bar renders the colour-scale substitute proportional to |v|/base.
func (r *renderer) bar(v float64) string {
	if r.cfg.BarWidth <= 0 {
		return ""
	}
	frac := 0.0
	if r.base != 0 {
		frac = v / r.base
		if frac < 0 {
			frac = -frac
		}
		if frac > 1 {
			frac = 1
		}
	}
	n := int(frac*float64(r.cfg.BarWidth) + 0.5)
	return "|" + strings.Repeat("#", n) + strings.Repeat(".", r.cfg.BarWidth-n) + "| "
}

func (r *renderer) collapsed(path string) bool {
	return r.cfg.Collapsed != nil && r.cfg.Collapsed[path]
}

func (r *renderer) mark(selected bool) string {
	if selected {
		return "»"
	}
	return " "
}

// Render writes the three-tree view of the experiment.
func Render(w io.Writer, e *core.Experiment, sel Selection, cfg *Config) error {
	r := &renderer{w: w, e: e, sel: sel, cfg: cfg.orDefault()}
	if sel.Metric == nil {
		if len(e.MetricRoots()) == 0 {
			return fmt.Errorf("display: experiment has no metrics")
		}
		sel.Metric = e.MetricRoots()[0]
		sel.MetricCollapsed = true
		r.sel = sel
	}

	title := e.Title
	if e.Derived {
		title += " (derived: " + e.Operation + ")"
	}
	r.printf("CUBE: %s\n", title)
	r.printf("mode: %s\n", r.cfg.Mode)
	// The colour legend of the GUI, as text: how the bar maps to values.
	if r.cfg.BarWidth > 0 {
		full := strings.Repeat("#", r.cfg.BarWidth)
		switch r.cfg.Mode {
		case External:
			r.printf("legend: |%s| = 100%% of the external reference (%g); relief [+] gain, [-] loss\n", full, r.cfg.Base)
		case Percent:
			r.printf("legend: |%s| = 100%% of the metric root's total; relief [+] positive, [-] negative\n", full)
		default:
			r.printf("legend: |%s| = the metric root's total; relief [+] positive, [-] negative\n", full)
		}
	}
	r.printf("\n")

	// --- Metric tree ---
	r.printf("Metric tree\n")
	for _, root := range e.MetricRoots() {
		r.base = r.metricBase(root)
		r.renderMetric(root, 0)
	}

	// --- Call tree ---
	selVal := SelectedTotal(e, sel)
	r.base = r.treeBase()
	r.printf("\nCall tree (metric: %s = %s)\n", sel.Metric.Name, strings.TrimSpace(r.value(selVal, sel.Metric.Unit)))
	for _, root := range e.CallRoots() {
		r.renderCall(root, 0)
	}

	// --- System tree ---
	if sel.CNode == nil {
		r.printf("\nSystem tree (no call path selected)\n")
		return r.err
	}
	r.printf("\nSystem tree (call path: %s)\n", sel.CNode.Path())
	singleThreaded := true
	for _, p := range e.Processes() {
		if len(p.Threads()) > 1 {
			singleThreaded = false
			break
		}
	}
	for _, mach := range e.Machines() {
		var machTotal float64
		for _, nd := range mach.Nodes() {
			for _, p := range nd.Processes() {
				for _, t := range p.Threads() {
					machTotal += ThreadValue(e, sel, t)
				}
			}
		}
		r.row(0, machTotal, sel.Metric.Unit, false, "machine "+mach.Name)
		for _, nd := range mach.Nodes() {
			var ndTotal float64
			for _, p := range nd.Processes() {
				for _, t := range p.Threads() {
					ndTotal += ThreadValue(e, sel, t)
				}
			}
			r.row(1, ndTotal, sel.Metric.Unit, false, "node "+nd.Name)
			for _, p := range nd.Processes() {
				var pTotal float64
				for _, t := range p.Threads() {
					pTotal += ThreadValue(e, sel, t)
				}
				r.row(2, pTotal, sel.Metric.Unit, false, p.String())
				if !singleThreaded {
					// The thread level of single-threaded applications
					// is hidden.
					for _, t := range p.Threads() {
						r.row(3, ThreadValue(e, sel, t), sel.Metric.Unit, false, fmt.Sprintf("thread %d", t.ID))
					}
				}
			}
		}
	}
	return r.err
}

// metricBase returns the 100% reference for a metric tree. An external
// base only makes sense for roots measured in the same unit as the
// selected metric's root (normalizing a visit count by seconds would be
// meaningless); other roots fall back to their own inclusive total.
func (r *renderer) metricBase(root *core.Metric) float64 {
	switch r.cfg.Mode {
	case External:
		if root.Unit == r.sel.Metric.Root().Unit {
			return r.cfg.Base
		}
		return r.e.MetricInclusive(root)
	case Percent:
		return r.e.MetricInclusive(root)
	}
	return r.e.MetricInclusive(root) // bars still need a scale in Absolute mode
}

// treeBase returns the 100% reference for the call/system trees: the
// selected metric root's grand total (Percent), or the external base.
func (r *renderer) treeBase() float64 {
	if r.cfg.Mode == External {
		return r.cfg.Base
	}
	return r.e.MetricInclusive(r.sel.Metric.Root())
}

func (r *renderer) row(depth int, v float64, unit core.Unit, selected bool, label string) {
	r.printf("%s%s [%c] %s %s%s\n",
		r.mark(selected), strings.Repeat("  ", depth), relief(v), r.value(v, unit), r.bar(v), label)
}

func (r *renderer) renderMetric(m *core.Metric, depth int) {
	collapsed := r.collapsed(m.Path()) || len(m.Children()) == 0
	v := MetricLabel(r.e, m, collapsed)
	if r.cfg.HideZero && MetricLabel(r.e, m, true) == 0 {
		return
	}
	selected := m == r.sel.Metric
	r.row(depth, v, m.Unit, selected, m.Name)
	if r.collapsed(m.Path()) {
		return
	}
	for _, c := range m.Children() {
		r.renderMetric(c, depth+1)
	}
}

func (r *renderer) renderCall(c *core.CallNode, depth int) {
	collapsed := r.collapsed(c.Path()) || len(c.Children()) == 0
	v := CallLabel(r.e, r.sel, c, collapsed)
	if r.cfg.HideZero && CallLabel(r.e, r.sel, c, true) == 0 {
		return
	}
	selected := c == r.sel.CNode
	r.row(depth, v, r.sel.Metric.Unit, selected, c.Callee().Name)
	if r.collapsed(c.Path()) {
		return
	}
	for _, ch := range c.Children() {
		r.renderCall(ch, depth+1)
	}
}

// RenderString renders to a string (convenience for tests and examples).
func RenderString(e *core.Experiment, sel Selection, cfg *Config) (string, error) {
	var sb strings.Builder
	if err := Render(&sb, e, sel, cfg); err != nil {
		return "", err
	}
	return sb.String(), nil
}
