package display

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cube/internal/core"
)

// Browser is an interactive text-mode session over one experiment,
// mirroring the CUBE GUI's two user actions — selecting a node and
// expanding/collapsing a node — plus the display modes. It reads simple
// commands from an input stream and re-renders after every change, so it
// works over a terminal, a pipe, or a test harness alike.
type Browser struct {
	exp  *core.Experiment
	flat *core.Experiment // lazily derived flat-profile view
	sel  Selection
	cfg  Config
	view *core.Experiment // exp or flat
}

// NewBrowser initialises a browser with the default selection (first
// metric root and first call root, both collapsed).
func NewBrowser(e *core.Experiment) (*Browser, error) {
	if len(e.MetricRoots()) == 0 {
		return nil, fmt.Errorf("display: experiment has no metrics")
	}
	b := &Browser{exp: e, view: e}
	b.cfg.Collapsed = map[string]bool{}
	b.sel.Metric = e.MetricRoots()[0]
	b.sel.MetricCollapsed = true
	if len(e.CallRoots()) > 0 {
		b.sel.CNode = e.CallRoots()[0]
		b.sel.CNodeCollapsed = true
	}
	return b, nil
}

// Run reads commands from in until EOF or "quit", writing renders and
// diagnostics to out. Unknown commands produce a help hint but keep the
// session alive; only I/O errors abort it.
func (b *Browser) Run(in io.Reader, out io.Writer) error {
	if err := Render(out, b.view, b.sel, &b.cfg); err != nil {
		return err
	}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		quit, rerender := b.execute(out, line)
		if quit {
			return nil
		}
		if rerender {
			if err := Render(out, b.view, b.sel, &b.cfg); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
			}
		}
	}
	return sc.Err()
}

// execute runs one command; it reports whether to quit and whether the
// view changed.
func (b *Browser) execute(out io.Writer, line string) (quit, rerender bool) {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "quit", "q", "exit":
		return true, false
	case "help", "h", "?":
		fmt.Fprint(out, browserHelp)
	case "render", "r":
		return false, true
	case "metric", "m":
		name, expanded := nameArg(args)
		if name == "" {
			fmt.Fprintln(out, "usage: metric <name-or-path> [expanded]")
			return false, false
		}
		m := b.view.FindMetric(name)
		if m == nil {
			m = b.view.FindMetricByName(name)
		}
		if m == nil {
			fmt.Fprintf(out, "metric %q not found\n", name)
			return false, false
		}
		b.sel.Metric = m
		b.sel.MetricCollapsed = !expanded
		return false, true
	case "cnode", "c":
		path, expanded := nameArg(args)
		if path == "" {
			fmt.Fprintln(out, "usage: cnode <call-path> [expanded]")
			return false, false
		}
		cn := b.view.FindCallNode(path)
		if cn == nil {
			fmt.Fprintf(out, "call path %q not found\n", path)
			return false, false
		}
		b.sel.CNode = cn
		b.sel.CNodeCollapsed = !expanded
		return false, true
	case "toggle", "t":
		if len(args) == 0 {
			fmt.Fprintln(out, "usage: toggle <metric-or-call-path>")
			return false, false
		}
		path := strings.Join(args, " ")
		b.cfg.Collapsed[path] = !b.cfg.Collapsed[path]
		return false, true
	case "mode":
		if len(args) == 0 {
			fmt.Fprintf(out, "mode is %s\n", b.cfg.Mode)
			return false, false
		}
		switch args[0] {
		case "absolute":
			b.cfg.Mode = Absolute
		case "percent":
			b.cfg.Mode = Percent
		case "external":
			if len(args) < 2 {
				fmt.Fprintln(out, "usage: mode external <base>")
				return false, false
			}
			base, err := strconv.ParseFloat(args[1], 64)
			if err != nil {
				fmt.Fprintf(out, "bad base: %v\n", err)
				return false, false
			}
			b.cfg.Mode = External
			b.cfg.Base = base
		default:
			fmt.Fprintf(out, "unknown mode %q\n", args[0])
			return false, false
		}
		return false, true
	case "flat":
		if b.view == b.exp {
			if b.flat == nil {
				var err error
				b.flat, err = core.Flatten(b.exp)
				if err != nil {
					fmt.Fprintf(out, "flatten: %v\n", err)
					return false, false
				}
			}
			b.switchView(b.flat)
			fmt.Fprintln(out, "switched to flat-profile view")
		} else {
			b.switchView(b.exp)
			fmt.Fprintln(out, "switched to call-tree view")
		}
		return false, true
	case "hidezero":
		b.cfg.HideZero = !b.cfg.HideZero
		return false, true
	case "topology", "topo":
		if err := RenderTopology(out, b.view, b.sel, &b.cfg); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		}
	default:
		fmt.Fprintf(out, "unknown command %q (try help)\n", cmd)
	}
	return false, false
}

// nameArg joins the arguments into one name (metric names and call paths
// may contain spaces), honouring a trailing "expanded" keyword.
func nameArg(args []string) (name string, expanded bool) {
	if len(args) > 0 && args[len(args)-1] == "expanded" {
		expanded = true
		args = args[:len(args)-1]
	}
	return strings.Join(args, " "), expanded
}

// switchView swaps between the call-tree and flat-profile experiments,
// re-resolving the selection by path.
func (b *Browser) switchView(target *core.Experiment) {
	metricPath := b.sel.Metric.Path()
	b.view = target
	if m := target.FindMetric(metricPath); m != nil {
		b.sel.Metric = m
	} else {
		b.sel.Metric = target.MetricRoots()[0]
	}
	if len(target.CallRoots()) > 0 {
		b.sel.CNode = target.CallRoots()[0]
		b.sel.CNodeCollapsed = true
	} else {
		b.sel.CNode = nil
	}
}

const browserHelp = `commands:
  metric <name|path> [expanded]  select a metric (collapsed aggregates its subtree)
  cnode <path> [expanded]        select a call path
  toggle <path>                  collapse/expand a tree node
  mode absolute|percent|external <base>
  flat                           switch call-tree <-> flat-profile view
  topology                       render the selection over the process topology
  hidezero                       toggle hiding of zero subtrees
  render                         re-render
  quit
`
