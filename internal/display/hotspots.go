package display

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"cube/internal/core"
)

// Hotspot is one entry of a severity ranking: a (metric, call path)
// combination with its severity summed over the whole system.
type Hotspot struct {
	Metric *core.Metric
	CNode  *core.CallNode
	// Value is the exclusive severity of the combination across all
	// threads.
	Value float64
}

// Hotspots ranks (metric, call path) combinations of the selected metric
// subtree by the magnitude of their exclusive severity and returns the top
// n. Thanks to the closure property the same mechanism applies to original
// experiments (largest time consumers) and to difference experiments
// (largest regressions and improvements — note negative values rank by
// magnitude, so both directions surface).
func Hotspots(e *core.Experiment, sel Selection, n int) []Hotspot {
	if sel.Metric == nil {
		if len(e.MetricRoots()) == 0 {
			return nil
		}
		sel.Metric = e.MetricRoots()[0]
		sel.MetricCollapsed = true
	}
	var metrics []*core.Metric
	if sel.MetricCollapsed {
		sel.Metric.Walk(func(m *core.Metric) { metrics = append(metrics, m) })
	} else {
		metrics = []*core.Metric{sel.Metric}
	}
	var out []Hotspot
	for _, m := range metrics {
		for _, c := range e.CallNodes() {
			if v := e.MetricValue(m, c); v != 0 {
				out = append(out, Hotspot{Metric: m, CNode: c, Value: v})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return math.Abs(out[i].Value) > math.Abs(out[j].Value)
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// RenderHotspots writes the ranking as a table. In Percent/External modes
// values are normalized like the tree views (base: the selected metric
// root's total, or cfg.Base).
func RenderHotspots(w io.Writer, e *core.Experiment, sel Selection, cfg *Config, n int) error {
	c := cfg.orDefault()
	spots := Hotspots(e, sel, n)
	if len(spots) == 0 {
		_, err := fmt.Fprintln(w, "no non-zero severities for the selection")
		return err
	}
	base := 0.0
	switch c.Mode {
	case External:
		base = c.Base
	case Percent:
		base = e.MetricInclusive(spots[0].Metric.Root())
	}
	name := "(default)"
	if sel.Metric != nil {
		name = sel.Metric.Name
	}
	if _, err := fmt.Fprintf(w, "top %d severities for metric %s:\n", len(spots), name); err != nil {
		return err
	}
	for i, h := range spots {
		var val string
		if base != 0 {
			val = fmt.Sprintf("%8.2f%%", 100*h.Value/base)
		} else {
			val = fmt.Sprintf("%12.6g", h.Value)
		}
		sign := '+'
		if h.Value < 0 {
			sign = '-'
		}
		if _, err := fmt.Fprintf(w, "%3d. [%c] %s  %-26s %s\n",
			i+1, sign, val, h.Metric.Name, h.CNode.Path()); err != nil {
			return err
		}
	}
	return nil
}

// HotspotsString renders the ranking to a string.
func HotspotsString(e *core.Experiment, sel Selection, cfg *Config, n int) (string, error) {
	var sb strings.Builder
	if err := RenderHotspots(&sb, e, sel, cfg, n); err != nil {
		return "", err
	}
	return sb.String(), nil
}
