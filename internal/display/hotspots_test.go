package display

import (
	"strings"
	"testing"

	"cube/internal/core"
)

func TestHotspotsRanking(t *testing.T) {
	e := build() // Time@work=4/thread is the biggest severity
	sel := Selection{Metric: e.FindMetricByName("Time"), MetricCollapsed: true}
	spots := Hotspots(e, sel, 3)
	if len(spots) != 3 {
		t.Fatalf("spots = %d", len(spots))
	}
	if spots[0].CNode.Path() != "main/work" || spots[0].Value != 8 {
		t.Errorf("top spot = %s %v, want main/work 8", spots[0].CNode.Path(), spots[0].Value)
	}
	// Descending magnitudes.
	for i := 1; i < len(spots); i++ {
		if abs(spots[i].Value) > abs(spots[i-1].Value) {
			t.Errorf("ranking not descending at %d", i)
		}
	}
	// Expanded metric selection restricts to the one metric.
	selExp := Selection{Metric: e.FindMetricByName("Wait")}
	spots = Hotspots(e, selExp, 0)
	for _, h := range spots {
		if h.Metric.Name != "Wait" {
			t.Errorf("expanded selection leaked metric %s", h.Metric.Name)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestHotspotsNegativeMagnitudes(t *testing.T) {
	e := build()
	wait := e.FindMetricByName("Wait")
	recv := e.FindCallNode("main/MPI_Recv")
	for _, th := range e.Threads() {
		e.SetSeverity(wait, recv, th, -10) // a big regression
	}
	sel := Selection{Metric: e.FindMetricByName("Time"), MetricCollapsed: true}
	spots := Hotspots(e, sel, 1)
	if spots[0].Value != -20 {
		t.Errorf("negative severities must rank by magnitude: top = %v", spots[0].Value)
	}
}

func TestRenderHotspots(t *testing.T) {
	e := build()
	sel := Selection{Metric: e.FindMetricByName("Time"), MetricCollapsed: true}
	out, err := HotspotsString(e, sel, &Config{Mode: Percent}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "top 2 severities") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "main/work") || !strings.Contains(out, "50.00%") {
		t.Errorf("ranking content wrong (work = 8/16 = 50%%):\n%s", out)
	}
	// Absolute mode.
	outAbs, err := HotspotsString(e, sel, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(outAbs, "8") {
		t.Errorf("absolute value missing:\n%s", outAbs)
	}
	// Default selection and empty experiment paths.
	if _, err := HotspotsString(e, Selection{}, nil, 1); err != nil {
		t.Errorf("default selection: %v", err)
	}
	empty := core.New("e")
	empty.NewMetric("Time", core.Seconds, "")
	outEmpty, err := HotspotsString(empty, Selection{}, nil, 5)
	if err != nil || !strings.Contains(outEmpty, "no non-zero severities") {
		t.Errorf("empty case: %v %q", err, outEmpty)
	}
	if got := Hotspots(core.New("none"), Selection{}, 5); got != nil {
		t.Errorf("metric-less experiment should yield nil")
	}
}
