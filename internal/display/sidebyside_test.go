package display

import (
	"strings"
	"testing"

	"cube/internal/core"
)

func TestSideBySide(t *testing.T) {
	a := build()
	b := build()
	b.Title = "after"
	a.Title = "before"
	// Perturb b and give it a metric a lacks.
	wait := b.FindMetricByName("Wait")
	recv := b.FindCallNode("main/MPI_Recv")
	for _, th := range b.Threads() {
		b.SetSeverity(wait, recv, th, 5)
	}
	b.FindMetricByName("Time").NewChild("OnlyB", "")
	b.Invalidate()

	out, err := SideBySideString(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + Time, Comm, Wait, OnlyB
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "before") || !strings.Contains(lines[0], "after") || !strings.Contains(lines[0], "B-A") {
		t.Errorf("header wrong: %q", lines[0])
	}
	// Wait row: a=2, b=10, delta +8.
	var waitLine string
	for _, l := range lines {
		if strings.Contains(l, "Wait") {
			waitLine = l
		}
	}
	for _, want := range []string{"2", "10", "+8"} {
		if !strings.Contains(waitLine, want) {
			t.Errorf("wait row lacks %q: %q", want, waitLine)
		}
	}
	// The union includes b-only metrics, with zero in a's column.
	if !strings.Contains(out, "OnlyB") {
		t.Errorf("union metric missing:\n%s", out)
	}
}

func TestSideBySideDisjoint(t *testing.T) {
	a := build()
	b := core.New("counters")
	fp := b.NewMetric("PAPI_FP_INS", core.Occurrences, "")
	mainR := b.NewRegion("main", "app", 0, 0)
	root := b.NewCallRoot(b.NewCallSite("", 0, mainR))
	for _, th := range b.SingleThreadedSystem("m", 1, 2) {
		b.SetSeverity(fp, root, th, 500)
	}
	out, err := SideBySideString(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "PAPI_FP_INS") || !strings.Contains(out, "Time") {
		t.Errorf("disjoint columns missing:\n%s", out)
	}
}
