package display

import (
	"testing"

	"cube/internal/core"
)

// TestGoldenRender pins the full rendering of a small experiment — a
// regression guard on the display semantics (single representation,
// aggregation, relief, bars, selection markers).
func TestGoldenRender(t *testing.T) {
	e := core.New("golden")
	time := e.NewMetric("Time", core.Seconds, "")
	comm := time.NewChild("Comm", "")
	mainR := e.NewRegion("main", "app", 0, 0)
	recvR := e.NewRegion("MPI_Recv", "libmpi", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("", 0, mainR))
	recv := root.NewChild(e.NewCallSite("app", 7, recvR))
	p := e.NewMachine("m").NewNode("n").NewProcess(0, "rank 0")
	t0 := p.NewThread(0, "")
	e.SetSeverity(time, root, t0, 3)
	e.SetSeverity(comm, recv, t0, 1)

	sel := Selection{Metric: comm, MetricCollapsed: true, CNode: root, CNodeCollapsed: true}
	got, err := RenderString(e, sel, &Config{Mode: Percent, BarWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	const want = `CUBE: golden
mode: percent
legend: |####| = 100% of the metric root's total; relief [+] positive, [-] negative

Metric tree
  [+]     75.0% |###.| Time
»   [+]     25.0% |#...| Comm

Call tree (metric: Comm = 25.0%)
» [ ]      0.0% |....| main
    [+]     25.0% |#...| MPI_Recv

System tree (call path: main)
  [+]     25.0% |#...| machine m
    [+]     25.0% |#...| node n
      [+]     25.0% |#...| rank 0
`
	if got != want {
		t.Errorf("render drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
