package display

import (
	"strings"
	"testing"

	"cube/internal/core"
)

func runBrowser(t *testing.T, e *core.Experiment, script string) string {
	t.Helper()
	b, err := NewBrowser(e)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := b.Run(strings.NewReader(script), &out); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return out.String()
}

func TestBrowserInitialRender(t *testing.T) {
	out := runBrowser(t, build(), "")
	if !strings.Contains(out, "Metric tree") || !strings.Contains(out, "Call tree") {
		t.Errorf("initial render missing:\n%s", out)
	}
}

func TestBrowserSelectAndMode(t *testing.T) {
	out := runBrowser(t, build(), "metric Wait\nmode percent\ncnode main/MPI_Recv\nquit\n")
	if !strings.Contains(out, "Call tree (metric: Wait") {
		t.Errorf("metric selection did not apply:\n%s", out)
	}
	if !strings.Contains(out, "mode: percent") {
		t.Errorf("mode change did not apply")
	}
	if !strings.Contains(out, "System tree (call path: main/MPI_Recv)") {
		t.Errorf("call selection did not apply")
	}
}

func TestBrowserToggleAndFlat(t *testing.T) {
	out := runBrowser(t, build(), "toggle Time/Comm\nflat\nflat\nquit\n")
	if !strings.Contains(out, "switched to flat-profile view") ||
		!strings.Contains(out, "switched to call-tree view") {
		t.Errorf("flat toggling missing:\n%s", out)
	}
	// In the flat view, MPI_Recv is a root.
	if !strings.Contains(out, "derived: flatten") {
		t.Errorf("flat view not rendered")
	}
}

func TestBrowserErrorsKeepSessionAlive(t *testing.T) {
	out := runBrowser(t, build(), strings.Join([]string{
		"metric Nope",
		"cnode nowhere",
		"mode sideways",
		"mode external banana",
		"bogus",
		"metric",
		"cnode",
		"toggle",
		"mode",
		"topology", // no topology attached
		"help",
		"render",
		"hidezero",
		"quit",
	}, "\n"))
	for _, want := range []string{
		`metric "Nope" not found`,
		`call path "nowhere" not found`,
		`unknown mode "sideways"`,
		"bad base",
		`unknown command "bogus"`,
		"usage: metric",
		"usage: cnode",
		"usage: toggle",
		"mode is absolute",
		"error: display: experiment has no topology",
		"commands:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}

func TestBrowserExternalMode(t *testing.T) {
	out := runBrowser(t, build(), "mode external 32\nquit\n")
	if !strings.Contains(out, "mode: external percent") {
		t.Errorf("external mode missing:\n%s", out)
	}
}

func TestBrowserTopology(t *testing.T) {
	e := buildTopo(t)
	out := runBrowser(t, e, "topology\nquit\n")
	if !strings.Contains(out, `Topology "grid"`) {
		t.Errorf("topology render missing:\n%s", out)
	}
}

func TestBrowserNoMetrics(t *testing.T) {
	if _, err := NewBrowser(core.New("empty")); err == nil {
		t.Errorf("metric-less experiment accepted")
	}
}
