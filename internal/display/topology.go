package display

import (
	"fmt"
	"io"
	"math"
	"strings"

	"cube/internal/core"
)

// RenderTopology renders the severity of the current selection (metric and
// call path, with their expansion states) over the experiment's Cartesian
// topology as an ASCII map: one cell per process, intensity digits 0–9
// standing in for the GUI's colour scale and a sign prefix for the relief
// (differences may be negative). One-dimensional topologies render a single
// row, two-dimensional ones a grid, three-dimensional ones a grid per
// outermost plane.
func RenderTopology(w io.Writer, e *core.Experiment, sel Selection, cfg *Config) error {
	topo := e.Topology()
	if topo == nil {
		return fmt.Errorf("display: experiment has no topology")
	}
	if len(topo.Dims) > 3 {
		return fmt.Errorf("display: topology rendering supports up to 3 dimensions, got %d", len(topo.Dims))
	}
	if sel.Metric == nil {
		if len(e.MetricRoots()) == 0 {
			return fmt.Errorf("display: experiment has no metrics")
		}
		sel.Metric = e.MetricRoots()[0]
		sel.MetricCollapsed = true
	}

	// Per-rank value of the selection.
	value := map[int]float64{}
	var maxAbs float64
	for _, p := range e.Processes() {
		var v float64
		for _, th := range p.Threads() {
			v += ThreadValue(e, sel, th)
		}
		value[p.Rank] = v
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}

	cnodeLabel := "entire program"
	if sel.CNode != nil {
		cnodeLabel = sel.CNode.Path()
	}
	if _, err := fmt.Fprintf(w, "Topology %q %v — metric %s, call path %s (max |value| %g)\n",
		topo.Name, topo.Dims, sel.Metric.Name, cnodeLabel, maxAbs); err != nil {
		return err
	}

	cell := func(rank int, ok bool) string {
		if !ok {
			return " ··"
		}
		v := value[rank]
		intensity := 0
		if maxAbs > 0 {
			intensity = int(math.Abs(v) / maxAbs * 9.499)
		}
		sign := ' '
		if v > 0 {
			sign = '+'
		} else if v < 0 {
			sign = '-'
		}
		return fmt.Sprintf(" %c%d", sign, intensity)
	}
	rankAt := func(coord []int) (int, bool) {
		for rank, c := range topo.Coords {
			match := len(c) == len(coord)
			for i := range coord {
				if !match || c[i] != coord[i] {
					match = false
					break
				}
			}
			if match {
				return rank, true
			}
		}
		return 0, false
	}
	writeGrid := func(prefix []int, rows, cols int) error {
		for y := 0; y < rows; y++ {
			var sb strings.Builder
			for x := 0; x < cols; x++ {
				coord := append(append([]int(nil), prefix...), y, x)
				if len(topo.Dims) == 1 {
					coord = []int{x}
				}
				rank, ok := rankAt(coord)
				sb.WriteString(cell(rank, ok))
			}
			if _, err := fmt.Fprintln(w, sb.String()); err != nil {
				return err
			}
		}
		return nil
	}

	switch len(topo.Dims) {
	case 1:
		return writeGrid(nil, 1, topo.Dims[0])
	case 2:
		return writeGrid(nil, topo.Dims[0], topo.Dims[1])
	default:
		for z := 0; z < topo.Dims[0]; z++ {
			if _, err := fmt.Fprintf(w, "plane %d:\n", z); err != nil {
				return err
			}
			if err := writeGrid([]int{z}, topo.Dims[1], topo.Dims[2]); err != nil {
				return err
			}
		}
		return nil
	}
}

// RenderTopologyString renders to a string.
func RenderTopologyString(e *core.Experiment, sel Selection, cfg *Config) (string, error) {
	var sb strings.Builder
	if err := RenderTopology(&sb, e, sel, cfg); err != nil {
		return "", err
	}
	return sb.String(), nil
}
