package display

import (
	"fmt"
	"io"
	"strings"

	"cube/internal/core"
)

// SideBySide renders two experiments' metric trees in adjacent columns over
// their integrated metadata — the "traditional practice of comparing
// different experiments" the paper's introduction describes (multiple
// single-experiment views side by side). It exists mostly as a foil: the
// difference experiment shows the same information as one differentiated,
// browsable structure. The third column shows B−A to make the contrast
// explicit.
func SideBySide(w io.Writer, a, b *core.Experiment, opts *core.Options) error {
	// Integrate by merging metadata through a zero difference: the
	// derived experiment's metric tree is the union of both trees.
	zeroA, err := core.Scale(a, 0, opts)
	if err != nil {
		return err
	}
	zeroB, err := core.Scale(b, 0, opts)
	if err != nil {
		return err
	}
	union, err := core.Sum(opts, zeroA, zeroB)
	if err != nil {
		return err
	}

	if _, err := fmt.Fprintf(w, "%-34s %14s %14s %14s\n", "metric (exclusive totals)", clip(a.Title, 14), clip(b.Title, 14), "B-A"); err != nil {
		return err
	}
	var render func(m *core.Metric, depth int) error
	render = func(m *core.Metric, depth int) error {
		va := totalByPath(a, m.Path())
		vb := totalByPath(b, m.Path())
		label := strings.Repeat("  ", depth) + m.Name
		if _, err := fmt.Fprintf(w, "%-34s %14.6g %14.6g %+14.6g\n", clip(label, 34), va, vb, vb-va); err != nil {
			return err
		}
		for _, c := range m.Children() {
			if err := render(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range union.MetricRoots() {
		if err := render(root, 0); err != nil {
			return err
		}
	}
	return nil
}

// totalByPath returns the exclusive total of the metric with the given
// path, or zero when the experiment lacks it.
func totalByPath(e *core.Experiment, path string) float64 {
	if m := e.FindMetric(path); m != nil {
		return e.MetricTotal(m)
	}
	return 0
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}

// SideBySideString renders to a string.
func SideBySideString(a, b *core.Experiment, opts *core.Options) (string, error) {
	var sb strings.Builder
	if err := SideBySide(&sb, a, b, opts); err != nil {
		return "", err
	}
	return sb.String(), nil
}
