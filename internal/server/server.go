// Package server exposes the CUBE algebra as an HTTP service — the paper's
// closing suggestion ("CUBE can be easily integrated with a Grid
// environment by exposing its functionality as a … Grid service")
// translated to a plain stdlib web service: clients upload experiments in
// the CUBE XML format and receive derived experiments (or renderings) back.
// Because the algebra is closed, the service composes with itself: the
// output of one request is a valid input for the next.
//
// The service is hardened for production use: every request passes through
// a middleware stack (structured logging, panic recovery, a weighted
// concurrency limiter, a wall-clock timeout, and body-size caps — see
// middleware.go), operand parsing enforces the cubexml structural limits,
// and Serve (serve.go) adds connection timeouts and graceful shutdown.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime/multipart"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"cube/internal/cli"
	"cube/internal/core"
	"cube/internal/cubexml"
	"cube/internal/display"
	"cube/internal/expr"
	"cube/internal/obs"
	"cube/internal/report"
	"cube/internal/selfcube"
	"cube/internal/store"
)

// MaxUploadBytes is the default bound on one request's total upload size.
const MaxUploadBytes = 64 << 20

// errTooLarge marks operand-guard violations that should map to
// 413 Request Entity Too Large rather than 400.
var errTooLarge = errors.New("request exceeds limits")

// Handler returns the service's HTTP handler with DefaultConfig:
//
//	POST /op/{difference|merge|mean|sum|min|max}
//	    multipart form, ordered file fields "operand"; optional query
//	    params callmatch=callee|callee+line, system=auto|collapse|copy-first.
//	    Response: the derived experiment as CUBE XML.
//	POST /op/{flatten|prune|extract}
//	    one "operand"; prune: ?metric=<path>&threshold=<frac>;
//	    extract: repeated ?metric=<path>.
//	POST /expr
//	    evaluate a whole algebra DAG server-side: an application/json
//	    body (or a multipart "expr" field plus ordered "operand" files)
//	    carrying {"op":...,"args":[...]} nodes with digest:/operand:
//	    leaves. Identical subtrees evaluate once and results are served
//	    from the expression-digest cache on repeat. See expr.go.
//	POST /view
//	    one "operand"; ?metric=<name>&mode=absolute|percent&flat=1.
//	    Response: the text rendering of the three-tree display.
//	POST /info
//	    one or two "operand"s; with two, includes the structural
//	    comparison. Response: plain text.
//	PUT  /experiments/{sha256}
//	    commit a CUBE XML document in the content-addressed store
//	    (idempotent; body must hash to the URL digest). Requires a
//	    configured store (Config.Store / cube-server -store-dir).
//	GET  /experiments/{sha256}   fetch the stored document (HEAD: stat)
//
// With a store configured, every "operand" part may instead carry the
// reference `digest:<sha256>` to use a stored experiment — upload once,
// reference forever.
//
//	GET  /healthz      liveness (exempt from the concurrency limiter)
//	GET  /readyz       readiness: 503 + JSON while the store is read-only
//	GET  /metrics      Prometheus text exposition of the obs registry
//
// and, only with Config.Debug (cube-server -debug):
//
//	GET  /debug/vars    JSON snapshot of the metrics + memstats
//	GET  /debug/pprof/*  net/http/pprof profiles
//	GET  /debug/events  recent wide events as NDJSON
//	                    (?kind= &route= &status= &class=5xx &min_duration_ms= &limit=)
//	GET  /debug/store   experiment-store inventory as JSON
//	GET  /debug/slo     per-route SLO burn report as JSON
//	GET  /debug/self    self-telemetry run series: the snapshots the server
//	                    took of itself (digests, sizes, times) as JSON
//	GET  /debug/self/experiment.xml  the newest self-snapshot as CUBE XML
//	POST /debug/self/snapshot        take a snapshot now (also needs
//	                    Config.SelfInterval/SelfKeep and a store)
//	GET  /debug/traces       recent request traces (also needs tracing configured)
//	GET  /debug/traces/{id}  one trace: Chrome trace-event JSON, ?format=tree for text
func Handler() http.Handler {
	return NewHandler(nil)
}

// NewHandler returns the service handler with the given configuration
// (nil means DefaultConfig). All limits, the logger, and the metrics
// registry come from cfg. Operator and codec instrumentation
// (core.Instrument, cubexml.Instrument) is pointed at the same registry —
// both are process-wide seams, so the last handler created wins.
func NewHandler(cfg *Config) http.Handler {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	s := &service{cfg: cfg, reg: cfg.Metrics}
	if s.reg == nil {
		s.reg = obs.Default
	}
	if cfg.ParseCacheBytes > 0 {
		s.cache = newParseCache(cfg.ParseCacheBytes, cfg.XML, cfg.ReadEngine, s.reg)
	}
	s.expr = expr.NewEngine(expr.Config{CacheBytes: cfg.ExprCacheBytes, Metrics: s.reg})
	core.Instrument(s.reg)
	cubexml.Instrument(s.reg)
	s.events = cfg.Events
	if s.events == nil {
		s.events = obs.NewEventSink(cfg.EventRingSize)
	}
	// The sink doubles as the process-wide seam (obs.SetEventSink), so
	// store lifecycle transitions that happen outside any request — LRU
	// evictions from recovery, degraded-mode probes — land in the same
	// ring the requests do. Like the instrumentation seams above, the
	// last handler created wins.
	obs.SetEventSink(s.events)
	if cfg.SLOAvailability > 0 || cfg.SLOLatency > 0 {
		s.slo = obs.NewSLOTracker(obs.SLOConfig{
			Window:             cfg.SLOWindow,
			LatencyThreshold:   cfg.SLOLatency,
			LatencyTarget:      cfg.SLOLatencyTarget,
			AvailabilityTarget: cfg.SLOAvailability,
			Logger:             cfg.Logger,
			Registry:           s.reg,
		})
	}
	if cfg.TraceSampleRate > 0 || cfg.TraceSlow > 0 {
		s.tracer = obs.NewTracer(obs.TracerOptions{
			SampleRate: cfg.TraceSampleRate,
			Slow:       cfg.TraceSlow,
			Logger:     cfg.Logger,
		})
	}
	// Go runtime estimates (GC pauses, scheduler latency, heap) join the
	// registry as cube_go_* series; each /metrics scrape and each
	// self-telemetry snapshot samples them first, so the exposition is
	// always current without a background poller.
	s.gor = obs.NewGoRuntimeSampler(s.reg)
	if cfg.Store != nil && cfg.selfEnabled() {
		process := cfg.SelfProcess
		if process == "" {
			process = "cube-server"
		}
		snap, err := selfcube.NewSnapshotter(selfcube.SnapshotterConfig{
			Collector: selfcube.NewCollector(s.reg, s.tracer, s.gor, process),
			Store:     cfg.Store,
			Interval:  cfg.SelfInterval,
			Keep:      cfg.SelfKeep,
			Logger:    cfg.Logger,
			Metrics:   s.reg,
		})
		if err != nil {
			// Config.Validate rejects every input that can get here; a
			// programmatic caller who skipped it gets the loud version.
			panic(err)
		}
		s.self = snap
		cfg.self = snap // backpointer: Serve starts the loop, tests reach the series
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if cfg.Store != nil {
		mux.HandleFunc("PUT /experiments/{digest}", s.handleExperimentPut)
		mux.HandleFunc("GET /experiments/{digest}", s.handleExperimentGet)
	}
	mux.HandleFunc("POST /op/{op}", s.handleOp)
	mux.HandleFunc("POST /expr", s.handleExpr)
	mux.HandleFunc("POST /view", s.handleView)
	mux.HandleFunc("POST /report", s.handleReport)
	mux.HandleFunc("POST /info", s.handleInfo)
	metricsH := s.reg.MetricsHandler()
	mux.Handle("GET /metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.gor.Sample()
		metricsH.ServeHTTP(w, r)
	}))
	// Everything under /debug/* is behind one gate (Config.Debug, with
	// EnablePprof as the deprecated synonym): the routes expose internals
	// and cost CPU, so production deployments opt in. Disabled debug
	// routes 404 like any unknown path.
	if cfg.debugEnabled() {
		mux.Handle("GET /debug/vars", s.reg.VarsHandler())
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		mux.HandleFunc("GET /debug/events", s.handleEvents)
		mux.HandleFunc("GET /debug/store", s.handleStore)
		mux.HandleFunc("GET /debug/slo", s.handleSLO)
		mux.HandleFunc("GET /debug/self", s.handleSelf)
		if s.self != nil {
			mux.HandleFunc("GET /debug/self/experiment.xml", s.handleSelfLatest)
			mux.HandleFunc("POST /debug/self/snapshot", s.handleSelfSnapshot)
		}
		if s.tracer != nil {
			mux.HandleFunc("GET /debug/traces", s.handleTraceList)
			mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceGet)
		}
	}
	return s.wrap(mux)
}

func (s *service) handleReport(w http.ResponseWriter, r *http.Request) {
	operands, ok := s.operands(w, r)
	if !ok {
		return
	}
	if len(operands) != 1 {
		httpError(w, r, http.StatusBadRequest, "report needs exactly 1 operand")
		return
	}
	e := operands[0]
	var sel display.Selection
	if name := r.URL.Query().Get("metric"); name != "" {
		if sel.Metric = e.FindMetric(name); sel.Metric == nil {
			sel.Metric = e.FindMetricByName(name)
		}
		if sel.Metric == nil {
			httpError(w, r, http.StatusBadRequest, "metric %q not found", name)
			return
		}
		sel.MetricCollapsed = true
	}
	var buf bytes.Buffer
	if err := report.Write(&buf, e, &report.Options{Selection: sel}); err != nil {
		httpError(w, r, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	buf.WriteTo(w)
}

// handleTraceList summarizes the tracer's retained ring, newest first.
// Each entry's ID is the request's X-Request-ID, so a caller holding that
// header fetches its trace from /debug/traces/{id}.
func (s *service) handleTraceList(w http.ResponseWriter, r *http.Request) {
	type summary struct {
		ID         string  `json:"id"`
		Name       string  `json:"name"`
		Start      string  `json:"start"`
		DurationMS float64 `json:"duration_ms"`
		Spans      int     `json:"spans"`
		Sampled    bool    `json:"sampled"`
	}
	traces := s.tracer.Traces()
	out := make([]summary, 0, len(traces))
	for _, tr := range traces {
		out = append(out, summary{
			ID:         tr.ID(),
			Name:       tr.Root().Name(),
			Start:      tr.Start().UTC().Format(time.RFC3339Nano),
			DurationMS: float64(tr.Duration()) / float64(time.Millisecond),
			Spans:      tr.SpanCount(),
			Sampled:    tr.Sampled(),
		})
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(out)
}

// handleTraceGet serves one retained trace: Chrome trace-event JSON by
// default (load into Perfetto / chrome://tracing), a plain-text span tree
// with ?format=tree.
func (s *service) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr := s.tracer.Trace(id)
	if tr == nil {
		httpError(w, r, http.StatusNotFound, "no retained trace %q", id)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		obs.WriteChromeTrace(w, tr)
	case "tree":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		tr.WriteTree(w)
	default:
		httpError(w, r, http.StatusBadRequest, "unknown format %q (want chrome or tree)", format)
	}
}

// httpError writes a plain-text error response, stamped with the request
// ID so a client can quote the failing request when reporting problems.
func httpError(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if id := obs.RequestID(r.Context()); id != "" {
		msg += "\nrequest-id: " + id
	}
	http.Error(w, msg, code)
}

// operands parses the request's operand files and writes the appropriate
// error response on failure: 413 for size-guard violations, 404 for a
// digest reference the store does not hold, 400 otherwise.
func (s *service) operands(w http.ResponseWriter, r *http.Request) ([]*core.Experiment, bool) {
	ops, err := s.readOperands(r)
	if err != nil {
		if r.Context().Err() != nil {
			// The request deadline fired mid-parse; the timeout
			// middleware already answered for us.
			return nil, false
		}
		code := http.StatusBadRequest
		var mbe *http.MaxBytesError
		var miss *storeMissError
		if errors.As(err, &mbe) || errors.Is(err, errTooLarge) || errors.Is(err, cubexml.ErrLimit) ||
			strings.Contains(err.Error(), "request body too large") {
			code = http.StatusRequestEntityTooLarge
		} else if errors.As(err, &miss) {
			code = http.StatusNotFound
		}
		httpError(w, r, code, "%v", err)
		return nil, false
	}
	return ops, true
}

// readOperands parses the multipart "operand" parts, in form order,
// enforcing the operand-count, per-file-byte, and XML structural caps and
// abandoning work when the request context is done. A part whose body is
// `digest:<sha256>` resolves from the experiment store instead; every
// referenced blob stays pinned until resolution of all operands is
// complete, so budget-pressure eviction cannot race an in-flight request.
func (s *service) readOperands(r *http.Request) ([]*core.Experiment, error) {
	// Spill large uploads to disk instead of holding them in memory; the
	// total is already bounded by the MaxBytesReader middleware.
	if err := r.ParseMultipartForm(8 << 20); err != nil {
		return nil, fmt.Errorf("parsing multipart form: %w", err)
	}
	var files []*multipart.FileHeader
	if r.MultipartForm != nil {
		files = r.MultipartForm.File["operand"]
	}
	if len(files) == 0 {
		return nil, fmt.Errorf(`no "operand" files in request`)
	}
	if s.cfg.MaxOperands > 0 && len(files) > s.cfg.MaxOperands {
		return nil, fmt.Errorf("%w: %d operands exceed the limit of %d", errTooLarge, len(files), s.cfg.MaxOperands)
	}
	stats := statsFrom(r.Context())
	ev := obs.EventFromContext(r.Context())
	var pinned []store.Digest
	if s.cfg.Store != nil {
		defer func() {
			for _, d := range pinned {
				s.cfg.Store.Unpin(d)
			}
		}()
	}
	var out []*core.Experiment
	for i, fh := range files {
		if err := r.Context().Err(); err != nil {
			return nil, err
		}
		if s.cfg.MaxFileBytes > 0 && fh.Size > s.cfg.MaxFileBytes {
			return nil, fmt.Errorf("%w: operand %d is %d bytes (per-file limit %d)", errTooLarge, i, fh.Size, s.cfg.MaxFileBytes)
		}
		f, err := fh.Open()
		if err != nil {
			return nil, fmt.Errorf("operand %d: %w", i, err)
		}
		// Peek at the head of the part: digest references are short
		// (`digest:` + 64 hex chars) and must fit the peek buffer whole;
		// literal CUBE XML starts with '<' and streams on unharmed.
		peek := make([]byte, digestRefPeek)
		n, rerr := io.ReadFull(f, peek)
		if rerr != nil && rerr != io.ErrUnexpectedEOF && rerr != io.EOF {
			f.Close()
			return nil, fmt.Errorf("operand %d: %w", i, rerr)
		}
		if d, ok := parseDigestRef(peek[:n]); ok && n < len(peek) {
			f.Close()
			e, size, err := s.resolveDigestOperand(r.Context(), i, d, &pinned)
			if err != nil {
				return nil, err
			}
			stats.add(size)
			ev.AddOperand("digest", size)
			out = append(out, e)
			continue
		}
		stats.add(fh.Size)
		ev.AddOperand("inline", fh.Size)
		body := io.MultiReader(bytes.NewReader(peek[:n]), f)
		var e *core.Experiment
		if s.cache != nil {
			// The cache needs the full bytes for content addressing; the
			// size is already bounded by MaxFileBytes and MaxBytesReader.
			data, rerr := io.ReadAll(body)
			f.Close()
			if rerr != nil {
				return nil, fmt.Errorf("operand %d: %w", i, rerr)
			}
			if err := s.verifyDigest(r.Context(), fmt.Sprintf("operand %d (%s)", i, fh.Filename),
				fh.Header.Get("Content-Digest"), data); err != nil {
				return nil, err
			}
			e, err = s.cache.get(r.Context(), data)
		} else {
			e, err = cubexml.ReadWith(r.Context(), body, cubexml.ReadOptions{Limits: s.cfg.XML, Engine: s.cfg.ReadEngine})
			f.Close()
		}
		if err != nil {
			return nil, fmt.Errorf("operand %d: %w", i, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// verifyDigest checks an upload's Content-Digest header (RFC 9530, sent
// by the bundled client) against the received bytes — trust but verify.
// A mismatch means corruption somewhere between the sender's hashing and
// us. By default it is logged and counted and the bytes are processed as
// received (the cache keys on the server-computed digest regardless);
// with Config.DigestStrict the mismatch is returned as an error and the
// request is rejected instead.
func (s *service) verifyDigest(ctx context.Context, what, header string, data []byte) error {
	if header == "" {
		return nil
	}
	want, ok := parseContentDigest(header)
	if !ok {
		return nil // no sha-256 entry, or unparseable: nothing to check against
	}
	if sha256.Sum256(data) == want {
		return nil
	}
	if s.reg != nil {
		s.reg.Counter("cube_digest_mismatch_total").Inc()
	}
	s.logError(ctx, "content digest mismatch",
		slog.String("what", what),
		slog.Bool("strict", s.cfg.DigestStrict),
		slog.Int64("bytes", int64(len(data))))
	if s.cfg.DigestStrict {
		return fmt.Errorf("%s: Content-Digest header does not match the received bytes", what)
	}
	return nil
}

func options(r *http.Request) (*core.Options, error) {
	cm := r.URL.Query().Get("callmatch")
	if cm == "" {
		cm = "callee"
	}
	sys := r.URL.Query().Get("system")
	if sys == "" {
		sys = "auto"
	}
	return cli.ParseOptions(cm, sys)
}

// ctxDone reports whether the request deadline or cancellation fired;
// handlers call it between pipeline stages so a timed-out request stops
// burning CPU on operators whose response will be discarded anyway.
func ctxDone(w http.ResponseWriter, r *http.Request) bool {
	if err := r.Context().Err(); err != nil {
		httpError(w, r, http.StatusServiceUnavailable, "request cancelled: %v", err)
		return true
	}
	return false
}

// writeExperiment encodes the result into a buffer first so a successful
// status line always carries a complete document (and Content-Length);
// encoding failures become a clean 500 instead of a corrupted 200.
func (s *service) writeExperiment(w http.ResponseWriter, r *http.Request, e *core.Experiment) {
	var buf bytes.Buffer
	if err := cubexml.WriteContext(r.Context(), &buf, e); err != nil {
		s.logError(r.Context(), "encoding result experiment",
			slog.String("title", e.Title), slog.Any("err", err))
		httpError(w, r, http.StatusInternalServerError, "encoding result: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	buf.WriteTo(w)
}

func (s *service) handleOp(w http.ResponseWriter, r *http.Request) {
	opName := r.PathValue("op")
	opts, err := options(r)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	// Parent the operator's span tree under the request's root span (nil
	// when tracing is off or the request was not sampled — the operator
	// then falls back to the process-wide tracer, which the server leaves
	// unset). The request's wide event rides along so the kernel layer
	// can attribute shards, tuples, cells, and compute time to it.
	opts.Trace = obs.SpanFromContext(r.Context())
	opts.Event = obs.EventFromContext(r.Context())
	operands, ok := s.operands(w, r)
	if !ok {
		return
	}
	if ctxDone(w, r) {
		return
	}
	binaryOnly := func() bool {
		if len(operands) != 2 {
			httpError(w, r, http.StatusBadRequest, "%s needs exactly 2 operands, got %d", opName, len(operands))
			return false
		}
		return true
	}
	unaryOnly := func() bool {
		if len(operands) != 1 {
			httpError(w, r, http.StatusBadRequest, "%s needs exactly 1 operand, got %d", opName, len(operands))
			return false
		}
		return true
	}
	var result *core.Experiment
	switch opName {
	case "difference":
		if !binaryOnly() {
			return
		}
		result, err = core.Difference(operands[0], operands[1], opts)
	case "merge":
		result, err = core.MergeAll(opts, operands...)
	case "mean":
		result, err = core.Mean(opts, operands...)
	case "sum":
		result, err = core.Sum(opts, operands...)
	case "min":
		result, err = core.Min(opts, operands...)
	case "max":
		result, err = core.Max(opts, operands...)
	case "flatten":
		if !unaryOnly() {
			return
		}
		result, err = core.Flatten(operands[0])
	case "extract":
		if !unaryOnly() {
			return
		}
		metrics := r.URL.Query()["metric"]
		result, err = core.ExtractMetrics(operands[0], metrics...)
	case "prune":
		if !unaryOnly() {
			return
		}
		threshold, perr := strconv.ParseFloat(r.URL.Query().Get("threshold"), 64)
		if perr != nil {
			httpError(w, r, http.StatusBadRequest, "bad threshold: %v", perr)
			return
		}
		result, err = core.Prune(operands[0], r.URL.Query().Get("metric"), threshold)
	default:
		httpError(w, r, http.StatusNotFound, "unknown operation %q", opName)
		return
	}
	if err != nil {
		httpError(w, r, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if ctxDone(w, r) {
		return
	}
	s.writeExperiment(w, r, result)
}

func (s *service) handleView(w http.ResponseWriter, r *http.Request) {
	operands, ok := s.operands(w, r)
	if !ok {
		return
	}
	if len(operands) != 1 {
		httpError(w, r, http.StatusBadRequest, "view needs exactly 1 operand")
		return
	}
	if ctxDone(w, r) {
		return
	}
	e := operands[0]
	var err error
	if r.URL.Query().Get("flat") == "1" {
		if e, err = core.Flatten(e); err != nil {
			httpError(w, r, http.StatusUnprocessableEntity, "%v", err)
			return
		}
	}
	sel := display.Selection{MetricCollapsed: true, CNodeCollapsed: true}
	if name := r.URL.Query().Get("metric"); name != "" {
		if sel.Metric = e.FindMetric(name); sel.Metric == nil {
			sel.Metric = e.FindMetricByName(name)
		}
		if sel.Metric == nil {
			httpError(w, r, http.StatusBadRequest, "metric %q not found", name)
			return
		}
	}
	if len(e.CallRoots()) > 0 {
		sel.CNode = e.CallRoots()[0]
	}
	cfg := &display.Config{HideZero: true}
	switch mode := r.URL.Query().Get("mode"); mode {
	case "", "absolute":
	case "percent":
		cfg.Mode = display.Percent
	default:
		httpError(w, r, http.StatusBadRequest, "unknown mode %q", mode)
		return
	}
	out, err := display.RenderString(e, sel, cfg)
	if err != nil {
		httpError(w, r, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if topStr := r.URL.Query().Get("top"); topStr != "" {
		n, err := strconv.Atoi(topStr)
		if err != nil || n <= 0 {
			httpError(w, r, http.StatusBadRequest, "bad top parameter %q", topStr)
			return
		}
		spots, err := display.HotspotsString(e, sel, cfg, n)
		if err != nil {
			httpError(w, r, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		out += "\n" + spots
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, out)
}

func (s *service) handleInfo(w http.ResponseWriter, r *http.Request) {
	operands, ok := s.operands(w, r)
	if !ok {
		return
	}
	if len(operands) > 2 {
		httpError(w, r, http.StatusBadRequest, "info accepts 1 or 2 operands")
		return
	}
	var sb strings.Builder
	for _, e := range operands {
		fmt.Fprintf(&sb, "%q: %d metrics, %d call paths, %d threads, %d tuples\n",
			e.Title, len(e.Metrics()), len(e.CallNodes()), len(e.Threads()), e.NonZeroCount())
		if e.Derived {
			fmt.Fprintf(&sb, "  derived by %q from %v\n", e.Operation, e.Parents)
		}
	}
	if len(operands) == 2 {
		rep, err := core.StructuralDiff(operands[0], operands[1], nil)
		if err != nil {
			httpError(w, r, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		sb.WriteString(rep.Summary())
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, sb.String())
}
