package server

// End-to-end tests of the experiment-store routes: PUT/GET/HEAD
// /experiments/{digest}, digest-referenced operands, degraded-mode
// serving, probe-route limiter exemption, and -digest-strict.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"cube/internal/obs"
	"cube/internal/store"
)

// newStoreServer serves the real handler over a real store in a temp dir.
func newStoreServer(t *testing.T, cfg *Config, opts store.Options) (*httptest.Server, *store.Store) {
	t.Helper()
	if cfg == nil {
		cfg = quietConfig()
	}
	st, err := store.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	srv := httptest.NewServer(NewHandler(cfg))
	t.Cleanup(srv.Close)
	return srv, st
}

// putExperiment PUTs doc under digest with an optional Content-Digest
// header value ("" omits it).
func putExperiment(t *testing.T, srv *httptest.Server, digest string, doc []byte, contentDigest string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/experiments/"+digest, bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if contentDigest != "" {
		req.Header.Set("Content-Digest", contentDigest)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// operandPart is one multipart operand: either literal document bytes or
// a digest reference.
type operandPart struct {
	literal []byte
	digest  string
}

// postParts POSTs a mix of literal and digest-reference operands,
// preserving order.
func postParts(t *testing.T, srv *httptest.Server, path string, parts ...operandPart) *http.Response {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for i, p := range parts {
		fw, err := mw.CreateFormFile("operand", fmt.Sprintf("op%d.cube", i))
		if err != nil {
			t.Fatal(err)
		}
		if p.digest != "" {
			io.WriteString(fw, "digest:"+p.digest)
		} else {
			fw.Write(p.literal)
		}
	}
	mw.Close()
	resp, err := http.Post(srv.URL+path, mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestExperimentPutGetHead(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := quietConfig()
	cfg.Metrics = reg
	srv, st := newStoreServer(t, cfg, store.Options{})
	doc := encodeExp(t, buildExp("stored", 0))
	d := store.DigestOf(doc)

	// First PUT commits: 201, created=true.
	resp := putExperiment(t, srv, d.String(), doc, digestOf(doc))
	var res struct {
		Digest  string `json:"digest"`
		Bytes   int64  `json:"bytes"`
		Created bool   `json:"created"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || !res.Created || res.Digest != d.String() || res.Bytes != int64(len(doc)) {
		t.Fatalf("first PUT: status %d, result %+v", resp.StatusCode, res)
	}

	// Re-PUT is an idempotent cheap 200.
	resp = putExperiment(t, srv, d.String(), doc, "")
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-PUT status = %d, want 200", resp.StatusCode)
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d blobs, want 1", st.Len())
	}

	// GET round-trips the exact bytes with a Content-Digest header.
	resp, err := http.Get(srv.URL + "/experiments/" + d.String())
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || got != string(doc) {
		t.Fatalf("GET: status %d, %d bytes, want the %d stored bytes", resp.StatusCode, len(got), len(doc))
	}
	if cd := resp.Header.Get("Content-Digest"); cd != digestOf(doc) {
		t.Errorf("GET Content-Digest = %q, want %q", cd, digestOf(doc))
	}

	// HEAD reports existence and size without a body.
	resp, err = http.Head(srv.URL + "/experiments/" + d.String())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.ContentLength != int64(len(doc)) {
		t.Fatalf("HEAD: status %d, length %d, want 200/%d", resp.StatusCode, resp.ContentLength, len(doc))
	}

	// Missing digest: 404 on GET and HEAD.
	absent := store.DigestOf([]byte("absent")).String()
	for _, method := range []string{http.MethodGet, http.MethodHead} {
		req, _ := http.NewRequest(method, srv.URL+"/experiments/"+absent, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s missing: status %d, want 404", method, resp.StatusCode)
		}
	}

	// A malformed digest in the URL is a 400, not a store lookup.
	resp = putExperiment(t, srv, "not-a-digest", doc, "")
	if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad digest PUT status = %d, want 400", resp.StatusCode)
	}
}

func TestExperimentPutRejectsCorruptAndInvalid(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := quietConfig()
	cfg.Metrics = reg
	srv, st := newStoreServer(t, cfg, store.Options{})
	doc := encodeExp(t, buildExp("real", 0))

	// Body does not hash to the URL digest: 400, counted, not stored.
	wrong := store.DigestOf([]byte("something else")).String()
	resp := putExperiment(t, srv, wrong, doc, "")
	if body := readAll(t, resp); resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "hashes to") {
		t.Fatalf("corrupt PUT: status %d body %q, want 400 naming both digests", resp.StatusCode, body)
	}
	if got := counter(reg, "cube_digest_mismatch_total"); got != 1 {
		t.Errorf("mismatch counter = %d, want 1", got)
	}

	// Bytes that hash correctly but are not a CUBE document: 422, not stored.
	junk := []byte("<html>not a cube file</html>")
	resp = putExperiment(t, srv, store.DigestOf(junk).String(), junk, "")
	if readAll(t, resp); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("junk PUT status = %d, want 422", resp.StatusCode)
	}
	if st.Len() != 0 {
		t.Errorf("store holds %d blobs after rejected uploads, want 0", st.Len())
	}
}

// TestOpByDigestRoundTrip is the acceptance path: store two experiments,
// run a non-commutative operator on digest references — including mixed
// with a literal operand — and get byte-identical results to the
// all-literal request.
func TestOpByDigestRoundTrip(t *testing.T) {
	srv, _ := newStoreServer(t, nil, store.Options{})
	a := encodeExp(t, buildExp("exp", 0.5))
	b := encodeExp(t, buildExp("exp", 0))
	da, db := store.DigestOf(a), store.DigestOf(b)
	for _, doc := range [][]byte{a, b} {
		resp := putExperiment(t, srv, store.DigestOf(doc).String(), doc, "")
		if readAll(t, resp); resp.StatusCode != http.StatusCreated {
			t.Fatalf("PUT status = %d", resp.StatusCode)
		}
	}

	resp := postParts(t, srv, "/op/difference", operandPart{literal: a}, operandPart{literal: b})
	wantBody := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("literal difference status = %d: %s", resp.StatusCode, wantBody)
	}

	cases := []struct {
		name  string
		parts []operandPart
	}{
		{"both-refs", []operandPart{{digest: da.String()}, {digest: db.String()}}},
		{"ref-then-literal", []operandPart{{digest: da.String()}, {literal: b}}},
		{"literal-then-ref", []operandPart{{literal: a}, {digest: db.String()}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postParts(t, srv, "/op/difference", tc.parts...)
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			if body != wantBody {
				t.Error("digest-referenced result differs from the all-literal result")
			}
		})
	}

	// Operand order must survive reference resolution: difference is
	// anti-symmetric, so swapping the refs must change the answer.
	resp = postParts(t, srv, "/op/difference", operandPart{digest: db.String()}, operandPart{digest: da.String()})
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("swapped refs status %d", resp.StatusCode)
	} else if body == wantBody {
		t.Error("difference(b,a) equals difference(a,b): operand order was lost")
	}
}

func TestOpByDigestMissingIs404(t *testing.T) {
	srv, _ := newStoreServer(t, nil, store.Options{})
	absent := store.DigestOf([]byte("never uploaded")).String()
	resp := postParts(t, srv, "/op/flatten", operandPart{digest: absent})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if !strings.Contains(body, absent) || !strings.Contains(body, "PUT /experiments/") {
		t.Errorf("404 body %q should name the digest and the upload route", body)
	}
}

func TestDigestRefWithoutStoreIsClientError(t *testing.T) {
	srv := newTestServer(t) // no store configured
	resp := postParts(t, srv, "/op/flatten", operandPart{digest: store.DigestOf([]byte("x")).String()})
	if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 when no store is configured", resp.StatusCode)
	}
}

// TestDegradedModeEndToEnd is the acceptance scenario: the disk fills up
// (injected ENOSPC), uploads start answering 503 + Retry-After while
// operations on already-stored experiments keep succeeding and /readyz
// names the degraded component; when the fault clears, the next due write
// probe re-arms uploads.
func TestDegradedModeEndToEnd(t *testing.T) {
	ffs := store.NewFaultFS(nil)
	reg := obs.NewRegistry()
	cfg := quietConfig()
	cfg.Metrics = reg
	cfg.RetryAfter = 2 * time.Second
	srv, st := newStoreServer(t, cfg, store.Options{
		FS:               ffs,
		Metrics:          reg,
		FailureThreshold: 1,
		ProbeInterval:    time.Second,
	})

	stored := encodeExp(t, buildExp("stored", 0))
	ds := store.DigestOf(stored)
	resp := putExperiment(t, srv, ds.String(), stored, "")
	if readAll(t, resp); resp.StatusCode != http.StatusCreated {
		t.Fatalf("seed PUT status = %d", resp.StatusCode)
	}

	// The disk fills: the first failed write trips the threshold-1 store
	// into degraded mode (a 500 for that request)...
	ffs.Inject(&store.Fault{Op: "sync", Path: ".tmp-", Err: syscall.ENOSPC})
	fresh := encodeExp(t, buildExp("fresh", 0.25))
	df := store.DigestOf(fresh)
	resp = putExperiment(t, srv, df.String(), fresh, "")
	if readAll(t, resp); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("tripping PUT status = %d, want 500", resp.StatusCode)
	}
	if deg, _ := st.Degraded(); !deg {
		t.Fatal("store not degraded after the write failure")
	}

	// ...and every upload inside the probe interval fails fast with 503 +
	// Retry-After.
	resp = putExperiment(t, srv, df.String(), fresh, "")
	if body := readAll(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded PUT status = %d (%s), want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("degraded PUT Retry-After = %q, want \"2\"", ra)
	}

	// Reads and digest-referenced compute keep serving.
	resp = postParts(t, srv, "/op/flatten", operandPart{digest: ds.String()})
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Errorf("degraded op-by-digest status = %d, want 200", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/experiments/" + ds.String())
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Errorf("degraded GET status = %d, want 200", resp.StatusCode)
	}

	// /readyz names the degraded component; /healthz stays green (a
	// read-only store is not a reason to restart the process).
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable ||
		ready["status"] != "degraded" || ready["component"] != "experiment-store" || ready["mode"] != "read-only" {
		t.Errorf("degraded /readyz: status %d body %v", resp.StatusCode, ready)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Errorf("degraded /healthz status = %d, want 200", resp.StatusCode)
	}

	// The fault clears; once the probe interval elapses, the next upload
	// doubles as the probe, succeeds, and re-arms writes.
	ffs.Clear()
	time.Sleep(1100 * time.Millisecond)
	resp = putExperiment(t, srv, df.String(), fresh, "")
	if body := readAll(t, resp); resp.StatusCode != http.StatusCreated {
		t.Fatalf("re-armed PUT status = %d (%s), want 201", resp.StatusCode, body)
	}
	if deg, _ := st.Degraded(); deg {
		t.Fatal("store still degraded after a successful probe")
	}
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Errorf("re-armed /readyz status = %d, want 200", resp.StatusCode)
	}
}

// TestProbesBypassLimiter: liveness and readiness must answer even when
// every concurrency slot is held — a probe that 429s under load gets the
// replica killed or drained exactly when it is busiest.
func TestProbesBypassLimiter(t *testing.T) {
	cfg := quietConfig()
	cfg.MaxConcurrent = 1
	s := &service{cfg: cfg}
	entered := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "ok") })
	mux.HandleFunc("/readyz", s.handleReadyz)
	srv := httptest.NewServer(s.wrap(mux))
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		resp, err := http.Get(srv.URL + "/slow")
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()
	<-entered // the only slot is now held
	defer func() { close(release); <-done }()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if readAll(t, resp); resp.StatusCode != http.StatusOK {
			t.Errorf("%s under saturation: status %d, want 200", path, resp.StatusCode)
		}
	}
	// A normal route is still limited.
	resp, err := http.Get(srv.URL + "/slow")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("saturated /slow status = %d, want 429", resp.StatusCode)
	}
}

// TestDigestStrict: -digest-strict upgrades a Content-Digest mismatch
// from a logged anomaly to a 400 rejection, on both the multipart operand
// path and the store upload path.
func TestDigestStrict(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := quietConfig()
	cfg.Metrics = reg
	cfg.DigestStrict = true
	srv, st := newStoreServer(t, cfg, store.Options{})
	doc := encodeExp(t, buildExp("strict", 0))
	badDigest := digestOf([]byte("other bytes"))

	resp := postWithDigest(t, srv, "/op/flatten", doc, badDigest)
	if body := readAll(t, resp); resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "Content-Digest") {
		t.Errorf("strict multipart mismatch: status %d body %q, want 400", resp.StatusCode, body)
	}

	// PUT with a correct URL digest but a mismatching Content-Digest
	// header: the header is corrupt, strict mode refuses.
	resp = putExperiment(t, srv, store.DigestOf(doc).String(), doc, badDigest)
	if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("strict PUT mismatch status = %d, want 400", resp.StatusCode)
	}
	if st.Len() != 0 {
		t.Errorf("store holds %d blobs after strict rejections, want 0", st.Len())
	}
	if got := counter(reg, "cube_digest_mismatch_total"); got != 2 {
		t.Errorf("mismatch counter = %d, want 2", got)
	}

	// A matching digest still sails through in strict mode.
	resp = postWithDigest(t, srv, "/op/flatten", doc, digestOf(doc))
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Errorf("strict matching digest status = %d, want 200", resp.StatusCode)
	}
}
