package server

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"cube/internal/cubexml"
	"cube/internal/expr"
	"cube/internal/obs"
	"cube/internal/selfcube"
	"cube/internal/store"
)

// Config collects every robustness limit of the service. The zero value of
// a field disables the corresponding guard; DefaultConfig returns
// production defaults. Config is shared by NewHandler (per-request guards)
// and Serve (connection timeouts, graceful shutdown).
type Config struct {
	// Request guards.
	MaxOperands    int            // operand files per request
	MaxUploadBytes int64          // total request body bytes
	MaxFileBytes   int64          // bytes per operand file
	MaxConcurrent  int            // weighted in-flight request slots
	RequestTimeout time.Duration  // wall-clock budget per request
	RetryAfter     time.Duration  // Retry-After hint on 429 responses
	XML            cubexml.Limits // element/depth caps for operand parsing

	// ParseCacheBytes is the byte budget of the content-addressed operand
	// cache (cache.go): repeated uploads of the same bytes are answered
	// from a cached parse instead of re-decoding the XML. The budget
	// counts operand input bytes; zero disables the cache.
	ParseCacheBytes int64

	// ExprCacheBytes is the byte budget of the expression-digest result
	// cache behind POST /expr: evaluated subexpressions, keyed by
	// canonical expression digest × evaluation options, are served as
	// clones instead of re-running kernels. The budget counts an estimate
	// of resident result size; zero disables the cache (every expression
	// recomputes).
	ExprCacheBytes int64

	// MaxExprNodes / MaxExprDepth bound the expression documents POST
	// /expr accepts (denial-of-service guards). Zero selects the
	// expr.DefaultLimits values.
	MaxExprNodes int
	MaxExprDepth int

	// ReadEngine selects the cubexml parser for operand decoding
	// (EngineAuto by default); cube-server -read-engine=legacy is the
	// operational escape hatch if the fast path misbehaves.
	ReadEngine cubexml.ReadEngine

	// Store is the durable content-addressed experiment store. When set,
	// the service mounts PUT/GET/HEAD /experiments/{digest} and operator
	// endpoints accept `digest:<sha256>` operand references; /readyz
	// reports 503 while the store is degraded (read-only). nil disables
	// all of it (cube-server -store-dir="").
	Store *store.Store

	// DigestStrict upgrades a Content-Digest mismatch on uploads from a
	// logged-and-counted anomaly to a 400 rejection (cube-server
	// -digest-strict). Off by default: the document the client meant to
	// send is gone either way, and permissive mode keeps old clients
	// working while the mismatch counter surfaces the corruption.
	DigestStrict bool

	// Connection and shutdown behavior (used by Serve).
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration
	DrainTimeout      time.Duration // grace period for in-flight requests on shutdown

	// Logger receives one structured record per request (including the
	// request ID), plus error and panic reports. nil disables logging.
	Logger *slog.Logger

	// Metrics receives the request, operator, and codec metrics and backs
	// the /metrics and /debug/vars endpoints. nil selects obs.Default.
	Metrics *obs.Registry

	// Debug is the single gate for every /debug/* route: pprof, the
	// metrics vars snapshot, the trace viewer, the wide-event log, the
	// store inventory, and the SLO report. Off by default — the routes
	// expose internals (paths, timings, digests, payload sizes) and cost
	// CPU, so production deployments opt in (cube-server -debug).
	Debug bool

	// EnablePprof is the deprecated spelling of Debug, kept so existing
	// callers of the -pprof flag era keep working; either flag opens all
	// the debug routes.
	EnablePprof bool

	// Events receives the per-request wide events; nil makes NewHandler
	// create a private ring of EventRingSize. cube-server shares one sink
	// between the store (lifecycle events) and the handler.
	Events *obs.EventSink

	// EventRingSize bounds the wide-event ring when Events is nil;
	// zero means obs.DefaultEventRingSize.
	EventRingSize int

	// SLO objectives. SLOAvailability is the availability target (e.g.
	// 0.999: at most 1 request in 1000 answers 5xx) and SLOLatency /
	// SLOLatencyTarget the latency objective (SLOLatencyTarget of
	// requests faster than SLOLatency; target defaults to 0.99). Burn is
	// tracked per route over SLOWindow (default 5m), exported as
	// cube_slo_*_burn_ppm gauges and GET /debug/slo, and logged once per
	// budget exhaustion. All zero disables SLO tracking.
	SLOLatency       time.Duration
	SLOLatencyTarget float64
	SLOAvailability  float64
	SLOWindow        time.Duration

	// TraceSampleRate is the fraction of requests ([0, 1]) whose span
	// trees are retained for GET /debug/traces; TraceSlow additionally
	// retains — and logs through Logger, with the hottest spans inline —
	// every request trace at least this slow, regardless of sampling.
	// With both zero (the default) tracing is fully disabled and the
	// /debug/traces endpoints are not mounted.
	TraceSampleRate float64
	TraceSlow       time.Duration

	// Self-telemetry (internal/selfcube): with a Store configured and
	// SelfInterval or SelfKeep set, the service periodically materialises
	// its own metrics, runtime estimates, and span taxonomy as a CUBE
	// experiment and commits it to the store under the run series
	// self:<SelfProcess>:<seq>. SelfInterval is the snapshot period for
	// Serve's background loop (zero: manual snapshots only, via POST
	// /debug/self/snapshot); SelfKeep bounds how many runs stay pinned
	// (zero: selfcube.DefaultKeep); SelfProcess names the series
	// ("cube-server" by default).
	SelfInterval time.Duration
	SelfKeep     int
	SelfProcess  string

	// handler overrides the service mux inside Serve; tests use it to
	// exercise shutdown draining with controllable handlers.
	handler http.Handler

	// self is the snapshotter NewHandler built from the fields above;
	// Serve reads it back to start the periodic loop with its own
	// lifetime. Tests reach it through the same backpointer.
	self *selfcube.Snapshotter
}

// DefaultConfig returns the production defaults documented in the README.
func DefaultConfig() *Config {
	return &Config{
		MaxOperands:       16,
		MaxUploadBytes:    MaxUploadBytes,
		MaxFileBytes:      32 << 20,
		MaxConcurrent:     64,
		RequestTimeout:    30 * time.Second,
		RetryAfter:        1 * time.Second,
		XML:               cubexml.DefaultLimits,
		ParseCacheBytes:   256 << 20,
		ExprCacheBytes:    128 << 20,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		DrainTimeout:      10 * time.Second,
		Logger:            slog.Default(),
	}
}

// Validate reports configuration errors a flag parser cannot catch
// structurally. NewHandler does not call it — programmatic callers may
// rely on documented clamping — but cube-server rejects its flags
// through here.
func (c *Config) Validate() error {
	if c.TraceSampleRate < 0 || c.TraceSampleRate > 1 {
		return fmt.Errorf("server: trace sample rate %g out of range [0, 1]", c.TraceSampleRate)
	}
	if c.TraceSlow < 0 {
		return fmt.Errorf("server: trace slow threshold %v is negative", c.TraceSlow)
	}
	if c.ParseCacheBytes < 0 {
		return fmt.Errorf("server: parse cache budget %d is negative", c.ParseCacheBytes)
	}
	if c.ExprCacheBytes < 0 {
		return fmt.Errorf("server: expression cache budget %d is negative", c.ExprCacheBytes)
	}
	if c.MaxExprNodes < 0 {
		return fmt.Errorf("server: expression node limit %d is negative", c.MaxExprNodes)
	}
	if c.MaxExprDepth < 0 {
		return fmt.Errorf("server: expression depth limit %d is negative", c.MaxExprDepth)
	}
	if c.EventRingSize < 0 {
		return fmt.Errorf("server: event ring size %d is negative", c.EventRingSize)
	}
	if c.SLOAvailability < 0 || c.SLOAvailability >= 1 {
		return fmt.Errorf("server: availability SLO %g out of range [0, 1)", c.SLOAvailability)
	}
	if c.SLOLatencyTarget < 0 || c.SLOLatencyTarget >= 1 {
		return fmt.Errorf("server: latency SLO target %g out of range [0, 1)", c.SLOLatencyTarget)
	}
	if c.SLOLatency < 0 {
		return fmt.Errorf("server: latency SLO threshold %v is negative", c.SLOLatency)
	}
	if c.SLOWindow < 0 {
		return fmt.Errorf("server: SLO window %v is negative", c.SLOWindow)
	}
	switch c.ReadEngine {
	case cubexml.EngineAuto, cubexml.EngineFast, cubexml.EngineLegacy:
	default:
		return fmt.Errorf("server: unknown read engine %d", int(c.ReadEngine))
	}
	if c.SelfInterval < 0 {
		return fmt.Errorf("server: self-telemetry interval %v is negative", c.SelfInterval)
	}
	if c.SelfKeep < 0 {
		return fmt.Errorf("server: self-telemetry keep %d is negative", c.SelfKeep)
	}
	if c.selfEnabled() && c.Store == nil {
		return fmt.Errorf("server: self-telemetry needs the experiment store (-store-dir)")
	}
	return nil
}

// selfEnabled reports whether the self-telemetry snapshotter is requested
// (it additionally needs a store to commit into).
func (c *Config) selfEnabled() bool { return c.SelfInterval > 0 || c.SelfKeep > 0 }

// service binds the handlers to their configuration.
type service struct {
	cfg    *Config
	reg    *obs.Registry         // resolved metrics registry (may be nil in bare tests)
	tracer *obs.Tracer           // request tracer (nil unless configured)
	cache  *parseCache           // content-addressed operand cache (nil when disabled)
	expr   *expr.Engine          // expression evaluation engine (POST /expr)
	events *obs.EventSink        // wide-event ring; every request emits exactly one
	slo    *obs.SLOTracker       // windowed SLO burn tracker (nil unless configured)
	gor    *obs.GoRuntimeSampler // cube_go_* runtime series, sampled per scrape
	self   *selfcube.Snapshotter // self-telemetry run series (nil unless configured)
}

// debugEnabled reports whether the /debug/* routes are mounted.
func (c *Config) debugEnabled() bool { return c.Debug || c.EnablePprof }

// logError emits an error-level record carrying the request ID.
func (s *service) logError(ctx context.Context, msg string, args ...any) {
	if s.cfg.Logger != nil {
		args = append(args, slog.String("request_id", obs.RequestID(ctx)))
		s.cfg.Logger.ErrorContext(ctx, msg, args...)
	}
}

// wrap composes the middleware stack around h, outermost first: request-ID
// injection, telemetry (structured log + route metrics), panic recovery,
// concurrency limiting, per-request timeout, body caps.
func (s *service) wrap(h http.Handler) http.Handler {
	h = s.withMaxBytes(h)
	h = s.withTimeout(h)
	h = s.withLimit(h)
	h = s.withRecover(h)
	h = s.withTelemetry(h)
	h = s.withRequestID(h)
	return h
}

// --- request IDs ---------------------------------------------------------------

// withRequestID assigns every request an ID — honoring a well-formed
// client X-Request-ID (obs.SanitizeRequestID, the code path shared with
// the client's trace-ID minting), minting one otherwise — and propagates
// it on the context, the response header, log lines, and error bodies.
// The ID doubles as the request's trace ID, so a traced request is
// retrievable from /debug/traces by the X-Request-ID the caller sent or
// received.
func (s *service) withRequestID(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := obs.SanitizeRequestID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		h.ServeHTTP(w, r.WithContext(obs.WithRequestID(r.Context(), id)))
	})
}

// --- telemetry: structured request log + route metrics -------------------------

// reqStats accumulates per-request facts (operand sizes) for the log line;
// it travels in the request context so readOperands can report into it.
type reqStats struct {
	mu       sync.Mutex
	operands []int64
}

func (st *reqStats) add(n int64) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.operands = append(st.operands, n)
	st.mu.Unlock()
}

func (st *reqStats) sizes() []int64 {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]int64(nil), st.operands...)
}

type ctxKey int

const statsKey ctxKey = iota

func statsFrom(ctx context.Context) *reqStats {
	st, _ := ctx.Value(statsKey).(*reqStats)
	return st
}

// statusWriter records the status code and bytes written for the log line
// and the route metrics.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// routeLabel buckets a request path into a bounded label set, so hostile
// or misdirected paths cannot explode metric cardinality.
func routeLabel(path string) string {
	switch {
	case strings.HasPrefix(path, "/op/"):
		return "/op/{op}"
	case path == "/expr", path == "/view", path == "/report", path == "/info", path == "/healthz",
		path == "/readyz", path == "/metrics", path == "/debug/vars",
		path == "/debug/events", path == "/debug/store", path == "/debug/slo":
		return path
	case strings.HasPrefix(path, "/experiments/"):
		return "/experiments/{digest}"
	case strings.HasPrefix(path, "/debug/pprof"):
		return "/debug/pprof"
	case strings.HasPrefix(path, "/debug/traces"):
		return "/debug/traces"
	case strings.HasPrefix(path, "/debug/self"):
		return "/debug/self"
	default:
		return "other"
	}
}

// withTelemetry records per-route counters and latency/size histograms
// into the registry, opens the request's wide event (exactly one per
// request — including panics, timeouts, and limiter rejections, all of
// which run inside this middleware), feeds the SLO tracker, and emits one
// structured log record per request. The registry may be nil (bare test
// services), in which case only logging remains.
func (s *service) withTelemetry(h http.Handler) http.Handler {
	inFlight := s.reg.Gauge("cube_http_in_flight_requests")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		label := routeLabel(r.URL.Path)
		st := &reqStats{}
		r = r.WithContext(context.WithValue(r.Context(), statsKey, st))
		sp := s.startRequestSpan(r)
		if sp != nil {
			r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
		}
		ev := s.events.NewEvent("http", label)
		if ev != nil {
			ev.SetRequestID(obs.RequestID(r.Context()))
			ev.SetMethod(r.Method)
			r = r.WithContext(obs.ContextWithEvent(r.Context(), ev))
		}
		sw := &statusWriter{ResponseWriter: w}
		inFlight.Add(1)
		h.ServeHTTP(sw, r)
		inFlight.Add(-1)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		if sp != nil {
			sp.SetAttr("status", code)
			sp.SetAttr("bytes", sw.bytes)
			sp.End()
		}
		elapsed := time.Since(start)
		ev.SetStatus(code)
		ev.SetResponseBytes(sw.bytes)
		ev.SetTraceID(sp.TraceID())
		ev.Emit()
		s.slo.Observe(label, code, elapsed)
		route := obs.L("route", label)
		s.reg.Counter("cube_http_requests_total", route,
			obs.L("method", r.Method), obs.L("status", strconv.Itoa(code))).Inc()
		s.reg.Histogram("cube_http_request_duration_seconds", obs.DefLatencyBuckets, route).
			ObserveExemplar(elapsed.Seconds(), sp.TraceID())
		s.reg.Histogram("cube_http_response_bytes", obs.DefSizeBuckets, route).Observe(float64(sw.bytes))
		if s.cfg.Logger != nil {
			s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("request_id", obs.RequestID(r.Context())),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", code),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("dur", elapsed.Round(time.Millisecond)),
				slog.Any("operands", st.sizes()),
			)
		}
	})
}

// startRequestSpan opens the request's root trace span, named after the
// bounded route label and identified by the request ID (set by
// withRequestID, which runs outside this middleware). Observability
// endpoints — metrics scrapes, health checks, the trace viewer itself —
// are not traced: they would flood the ring with noise. The span starts
// and ends here, outside withTimeout's handler goroutine, so it
// completes even when the handler overruns its deadline or panics.
func (s *service) startRequestSpan(r *http.Request) *obs.Span {
	if s.tracer == nil {
		return nil
	}
	path := r.URL.Path
	if path == "/metrics" || path == "/healthz" || path == "/readyz" || strings.HasPrefix(path, "/debug/") {
		return nil
	}
	sp := s.tracer.StartTrace("http "+routeLabel(path), obs.RequestID(r.Context()))
	sp.SetAttr("method", r.Method)
	sp.SetAttr("path", path)
	return sp
}

// --- panic recovery ------------------------------------------------------------

func (s *service) withRecover(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					panic(p)
				}
				s.reg.Counter("cube_http_panics_total").Inc()
				s.logError(r.Context(), "panic serving request",
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.Any("panic", p),
					slog.String("stack", string(debug.Stack())))
				// Best effort: if the handler already wrote headers this
				// is a no-op on a broken response, but the server and
				// its other connections stay up either way.
				httpError(w, r, http.StatusInternalServerError, "internal error")
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// --- concurrency limiting ------------------------------------------------------

// semaphore is a weighted counting semaphore. Requests acquire a number of
// slots proportional to their declared body size, so one giant upload
// counts as several ordinary requests.
type semaphore struct {
	mu       sync.Mutex
	cur, cap int64
}

func (s *semaphore) tryAcquire(n int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur+n > s.cap {
		return false
	}
	s.cur += n
	return true
}

func (s *semaphore) release(n int64) {
	s.mu.Lock()
	s.cur -= n
	s.mu.Unlock()
}

// weight maps a request onto semaphore slots: one slot plus one per
// MaxFileBytes of declared body, clamped to the total capacity so a
// maximal request can still run (alone).
func (s *service) weight(r *http.Request) int64 {
	w := int64(1)
	if cl := r.ContentLength; cl > 0 && s.cfg.MaxFileBytes > 0 {
		w += cl / s.cfg.MaxFileBytes
	}
	if cap := int64(s.cfg.MaxConcurrent); w > cap {
		w = cap
	}
	return w
}

func (s *service) withLimit(h http.Handler) http.Handler {
	if s.cfg.MaxConcurrent <= 0 {
		return h
	}
	sem := &semaphore{cap: int64(s.cfg.MaxConcurrent)}
	rejected := s.reg.Counter("cube_http_saturation_rejections_total")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Probes must answer even on a saturated server: a liveness check
		// that 429s under load gets the process killed exactly when it is
		// doing the most work, and readiness needs to keep reporting.
		if r.URL.Path == "/healthz" || r.URL.Path == "/readyz" {
			h.ServeHTTP(w, r)
			return
		}
		n := s.weight(r)
		if !sem.tryAcquire(n) {
			rejected.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter/time.Second)))
			httpError(w, r, http.StatusTooManyRequests, "server saturated, retry later")
			return
		}
		defer sem.release(n)
		h.ServeHTTP(w, r)
	})
}

// --- per-request timeout -------------------------------------------------------

// bufferWriter buffers a response so the timeout middleware can discard it
// wholesale if the deadline fires first (mirroring http.TimeoutHandler).
type bufferWriter struct {
	mu   sync.Mutex
	hdr  http.Header
	buf  bytes.Buffer
	code int
}

func (t *bufferWriter) Header() http.Header { return t.hdr }

func (t *bufferWriter) WriteHeader(code int) {
	t.mu.Lock()
	if t.code == 0 {
		t.code = code
	}
	t.mu.Unlock()
}

func (t *bufferWriter) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.code == 0 {
		t.code = http.StatusOK
	}
	return t.buf.Write(p)
}

func (t *bufferWriter) flushTo(w http.ResponseWriter) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, v := range t.hdr {
		w.Header()[k] = v
	}
	code := t.code
	if code == 0 {
		code = http.StatusOK
	}
	w.WriteHeader(code)
	w.Write(t.buf.Bytes())
}

// withTimeout bounds each request's wall-clock time. The deadline is
// carried on the request context, so handlers abandon work between
// pipeline stages; if the handler overruns anyway, the buffered response
// is discarded and the client gets 503.
func (s *service) withTimeout(h http.Handler) http.Handler {
	if s.cfg.RequestTimeout <= 0 {
		return h
	}
	timeouts := s.reg.Counter("cube_http_timeouts_total")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		done := make(chan struct{})
		panicked := make(chan any, 1)
		tw := &bufferWriter{hdr: make(http.Header)}
		go func() {
			defer func() {
				if p := recover(); p != nil {
					panicked <- p
				}
			}()
			h.ServeHTTP(tw, r)
			close(done)
		}()
		select {
		case p := <-panicked:
			panic(p) // re-raise on the serving goroutine for withRecover
		case <-done:
			tw.flushTo(w)
		case <-ctx.Done():
			timeouts.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter/time.Second)))
			httpError(w, r, http.StatusServiceUnavailable,
				"request timed out after %v", s.cfg.RequestTimeout)
		}
	})
}

// --- body size caps ------------------------------------------------------------

func (s *service) withMaxBytes(h http.Handler) http.Handler {
	if s.cfg.MaxUploadBytes <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.ContentLength > s.cfg.MaxUploadBytes {
			httpError(w, r, http.StatusRequestEntityTooLarge,
				"request body %d bytes exceeds the %d byte limit", r.ContentLength, s.cfg.MaxUploadBytes)
			return
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
		}
		h.ServeHTTP(w, r)
	})
}
