package server

// The self-telemetry routes, mounted with Config.Debug:
//
//	GET  /debug/self                 the run series as JSON: every retained
//	                                 self-snapshot with its seq, title,
//	                                 digest, size, and time. enabled: false
//	                                 when self-telemetry is not configured.
//	GET  /debug/self/experiment.xml  the newest snapshot's CUBE XML, with a
//	                                 Content-Digest header, so a client can
//	                                 eyeball (or re-hash) the latest run
//	                                 without knowing its digest.
//	POST /debug/self/snapshot        take one snapshot right now and return
//	                                 the new run as JSON. This is how tests
//	                                 and operators bracket an experiment
//	                                 ("snapshot, apply load, snapshot,
//	                                 diff") without waiting for the
//	                                 interval.
//
// The snapshots are ordinary store blobs: clients diff them with
// cube-diff digest:<a> digest:<b>, or POST /expr over any algebra DAG of
// the series.

import (
	"encoding/json"
	"errors"
	"net/http"

	"cube/internal/selfcube"
	"cube/internal/store"
)

// selfSeries is the GET /debug/self response body.
type selfSeries struct {
	Enabled bool           `json:"enabled"`
	Process string         `json:"process,omitempty"`
	Runs    []selfcube.Run `json:"runs,omitempty"`
}

func (s *service) handleSelf(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if s.self == nil {
		json.NewEncoder(w).Encode(selfSeries{Enabled: false})
		return
	}
	process := s.cfg.SelfProcess
	if process == "" {
		process = "cube-server"
	}
	json.NewEncoder(w).Encode(selfSeries{Enabled: true, Process: process, Runs: s.self.Runs()})
}

// handleSelfSnapshot takes one snapshot synchronously. A degraded store
// maps to 503 + Retry-After like every other store write.
func (s *service) handleSelfSnapshot(w http.ResponseWriter, r *http.Request) {
	run, err := s.self.Snapshot(r.Context())
	if err != nil {
		if errors.Is(err, store.ErrDegraded) {
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			httpError(w, r, http.StatusServiceUnavailable, "store degraded: %v", err)
			return
		}
		s.logError(r.Context(), "self snapshot", "err", err)
		httpError(w, r, http.StatusInternalServerError, "snapshot failed: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(run)
}

// handleSelfLatest serves the newest snapshot's XML straight from the
// store blob, so what the caller reads is byte-identical to what
// digest:<latest> resolves to in operand references.
func (s *service) handleSelfLatest(w http.ResponseWriter, r *http.Request) {
	run, ok := s.self.Latest()
	if !ok {
		httpError(w, r, http.StatusNotFound, "no self-snapshot taken yet")
		return
	}
	d, ok := store.ParseDigest(run.Digest)
	if !ok {
		httpError(w, r, http.StatusInternalServerError, "corrupt run digest %q", run.Digest)
		return
	}
	data, err := s.cfg.Store.GetContext(r.Context(), d)
	if err != nil {
		if errors.Is(err, store.ErrDegraded) {
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			httpError(w, r, http.StatusServiceUnavailable, "store degraded: %v", err)
			return
		}
		httpError(w, r, http.StatusNotFound, "snapshot blob unavailable: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	w.Header().Set("Content-Digest", contentDigestHeader(d))
	w.Write(data)
}
