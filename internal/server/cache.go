package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"strings"
	"sync"

	"cube/internal/core"
	"cube/internal/cubexml"
	"cube/internal/obs"
)

// parseCache is the server's content-addressed experiment cache: operand
// uploads are keyed by the SHA-256 of their bytes, and a repeated operand
// is answered with a clone of the cached parse instead of another trip
// through the XML decoder. Typical algebra workflows resubmit the same
// experiments many times (a - b, then mean(a, c), then a view of a), so
// the same bytes arrive over and over.
//
// Masters in the cache are compacted to their columnar severity store, so
// a hit costs two flat array copies plus a metadata walk (Experiment.Clone's
// columnar path) — no parsing, no per-tuple allocation. Concurrent misses
// on the same key are deduplicated: one request parses, the rest wait and
// clone its result (including sharing its error). The cache holds at most
// budget bytes of operand input (the decoded experiment is the same order
// of magnitude), evicting least-recently-used entries; an operand larger
// than the whole budget is parsed but never cached.
type parseCache struct {
	reg    *obs.Registry
	budget int64
	limits cubexml.Limits
	engine cubexml.ReadEngine

	mu      sync.Mutex
	entries map[[sha256.Size]byte]*list.Element
	lru     *list.List // of *cacheEntry; front = most recently used
	bytes   int64
	flights map[[sha256.Size]byte]*flight
}

type cacheEntry struct {
	key  [sha256.Size]byte
	size int64
	e    *core.Experiment
	// meta is e's metadata digest, recorded at ingest so lowered-block
	// reuse across requests is keyed by (content digest, metadata digest)
	// without re-walking the forests on every request.
	meta [sha256.Size]byte
	// shared reports whether e is columnar-only, i.e. its lowered
	// severity block may be handed to read-only consumers without a copy.
	shared bool
}

// flight is one in-progress parse other requests for the same key wait on.
type flight struct {
	wg     sync.WaitGroup
	e      *core.Experiment
	meta   [sha256.Size]byte
	shared bool
	err    error
}

func newParseCache(budget int64, lim cubexml.Limits, engine cubexml.ReadEngine, reg *obs.Registry) *parseCache {
	return &parseCache{
		reg:     reg,
		budget:  budget,
		limits:  lim,
		engine:  engine,
		entries: map[[sha256.Size]byte]*list.Element{},
		lru:     list.New(),
		flights: map[[sha256.Size]byte]*flight{},
	}
}

func (pc *parseCache) count(name string) {
	if pc.reg != nil {
		pc.reg.Counter(name).Inc()
	}
}

// get returns an experiment for the operand bytes — a private clone the
// caller may mutate freely — parsing at most once per distinct content.
func (pc *parseCache) get(ctx context.Context, data []byte) (*core.Experiment, error) {
	return pc.resolve(ctx, data, false)
}

// shared returns the cached master itself when it is columnar-only —
// zero-copy reuse of its already-lowered severity block — falling back to
// a private clone otherwise. The caller must treat the result as strictly
// read-only; the expression engine's operand contract (operators never
// mutate operands) is what makes this safe.
func (pc *parseCache) shared(ctx context.Context, data []byte) (*core.Experiment, error) {
	return pc.resolve(ctx, data, true)
}

func (pc *parseCache) resolve(ctx context.Context, data []byte, wantShared bool) (*core.Experiment, error) {
	sp, _ := obs.StartSpanContext(ctx, "cubexml.cache")
	ent, outcome, err := pc.lookup(ctx, data)
	if sp != nil {
		sp.SetAttr("outcome", outcome)
		sp.SetAttr("bytes", int64(len(data)))
		if err != nil {
			sp.SetAttr("error", err.Error())
		} else {
			sp.SetAttr("meta", hex.EncodeToString(ent.meta[:6]))
		}
		sp.End()
	}
	ev := obs.EventFromContext(ctx)
	// A "wait" shared another request's parse, which is a hit from this
	// request's cost perspective.
	ev.ParseCache(outcome != "miss")
	if err != nil {
		return nil, err
	}
	if wantShared {
		// Lowered-block reuse: a repeat request over the same content
		// digest serves the master's columnar block outright instead of
		// copying it. The first parse necessarily builds the block, so it
		// counts as the miss that populates the cache.
		hit := ent.shared && outcome != "miss"
		if hit {
			pc.count("cube_lower_cache_hits_total")
		} else {
			pc.count("cube_lower_cache_misses_total")
		}
		ev.LowerCache(hit)
		if ent.shared {
			return ent.e, nil
		}
	}
	// Cloning is pure reads on the master (columnar fast path), so
	// concurrent resolves of the same entry may proceed in parallel.
	return ent.e.Clone(), nil
}

func (pc *parseCache) lookup(ctx context.Context, data []byte) (cacheEntry, string, error) {
	key := sha256.Sum256(data)
	pc.mu.Lock()
	if el, ok := pc.entries[key]; ok {
		pc.lru.MoveToFront(el)
		ent := *el.Value.(*cacheEntry)
		pc.mu.Unlock()
		pc.count("cube_parse_cache_hits_total")
		return ent, "hit", nil
	}
	if fl, ok := pc.flights[key]; ok {
		pc.mu.Unlock()
		fl.wg.Wait()
		if fl.err != nil {
			return cacheEntry{}, "wait", fl.err
		}
		pc.count("cube_parse_cache_hits_total")
		return cacheEntry{key: key, e: fl.e, meta: fl.meta, shared: fl.shared}, "wait", nil
	}
	fl := &flight{}
	fl.wg.Add(1)
	pc.flights[key] = fl
	pc.mu.Unlock()

	pc.count("cube_parse_cache_misses_total")
	master, err := cubexml.ReadBytes(ctx, data, cubexml.ReadOptions{Limits: pc.limits, Engine: pc.engine})
	ent := cacheEntry{key: key, size: int64(len(data)), e: master}
	if err == nil {
		// Compact to the columnar store and record the metadata digest
		// before the master becomes visible to anyone: from here on,
		// every consumer — cloning or shared — only ever reads it.
		ent.shared = master.CompactSeverities()
		ent.meta = master.MetaDigest()
		fl.e, fl.meta, fl.shared = master, ent.meta, ent.shared
	}
	fl.err = err
	fl.wg.Done()

	pc.mu.Lock()
	delete(pc.flights, key)
	if err == nil {
		pc.insert(&ent)
	}
	pc.mu.Unlock()
	if err != nil {
		return cacheEntry{}, "miss", err
	}
	return ent, "miss", nil
}

// insert adds a parsed master under pc.mu, evicting from the LRU tail
// until the budget holds. Entries larger than the whole budget are not
// cached at all.
func (pc *parseCache) insert(ent *cacheEntry) {
	if ent.size > pc.budget {
		return
	}
	for pc.bytes+ent.size > pc.budget {
		back := pc.lru.Back()
		if back == nil {
			break
		}
		old := back.Value.(*cacheEntry)
		pc.lru.Remove(back)
		delete(pc.entries, old.key)
		pc.bytes -= old.size
		pc.count("cube_parse_cache_evictions_total")
	}
	pc.entries[ent.key] = pc.lru.PushFront(ent)
	pc.bytes += ent.size
	if pc.reg != nil {
		pc.reg.Gauge("cube_parse_cache_bytes").Set(pc.bytes)
	}
}

// parseContentDigest extracts the sha-256 digest from an RFC 9530
// Content-Digest header value ("sha-256=:BASE64:", possibly one of a
// comma-separated list). ok is false when the header carries no sha-256
// entry or it does not decode.
func parseContentDigest(header string) (digest [sha256.Size]byte, ok bool) {
	for _, part := range strings.Split(header, ",") {
		alg, val, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found || !strings.EqualFold(strings.TrimSpace(alg), "sha-256") {
			continue
		}
		val = strings.TrimSpace(val)
		if len(val) < 2 || val[0] != ':' || val[len(val)-1] != ':' {
			return digest, false
		}
		raw, err := base64.StdEncoding.DecodeString(val[1 : len(val)-1])
		if err != nil || len(raw) != sha256.Size {
			return digest, false
		}
		copy(digest[:], raw)
		return digest, true
	}
	return digest, false
}
