package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/base64"
	"strings"
	"sync"

	"cube/internal/core"
	"cube/internal/cubexml"
	"cube/internal/obs"
)

// parseCache is the server's content-addressed experiment cache: operand
// uploads are keyed by the SHA-256 of their bytes, and a repeated operand
// is answered with a clone of the cached parse instead of another trip
// through the XML decoder. Typical algebra workflows resubmit the same
// experiments many times (a - b, then mean(a, c), then a view of a), so
// the same bytes arrive over and over.
//
// Masters in the cache are compacted to their columnar severity store, so
// a hit costs two flat array copies plus a metadata walk (Experiment.Clone's
// columnar path) — no parsing, no per-tuple allocation. Concurrent misses
// on the same key are deduplicated: one request parses, the rest wait and
// clone its result (including sharing its error). The cache holds at most
// budget bytes of operand input (the decoded experiment is the same order
// of magnitude), evicting least-recently-used entries; an operand larger
// than the whole budget is parsed but never cached.
type parseCache struct {
	reg    *obs.Registry
	budget int64
	limits cubexml.Limits
	engine cubexml.ReadEngine

	mu      sync.Mutex
	entries map[[sha256.Size]byte]*list.Element
	lru     *list.List // of *cacheEntry; front = most recently used
	bytes   int64
	flights map[[sha256.Size]byte]*flight
}

type cacheEntry struct {
	key  [sha256.Size]byte
	size int64
	e    *core.Experiment
}

// flight is one in-progress parse other requests for the same key wait on.
type flight struct {
	wg  sync.WaitGroup
	e   *core.Experiment
	err error
}

func newParseCache(budget int64, lim cubexml.Limits, engine cubexml.ReadEngine, reg *obs.Registry) *parseCache {
	return &parseCache{
		reg:     reg,
		budget:  budget,
		limits:  lim,
		engine:  engine,
		entries: map[[sha256.Size]byte]*list.Element{},
		lru:     list.New(),
		flights: map[[sha256.Size]byte]*flight{},
	}
}

func (pc *parseCache) count(name string) {
	if pc.reg != nil {
		pc.reg.Counter(name).Inc()
	}
}

// get returns an experiment for the operand bytes — a private clone the
// caller may mutate freely — parsing at most once per distinct content.
func (pc *parseCache) get(ctx context.Context, data []byte) (*core.Experiment, error) {
	sp, _ := obs.StartSpanContext(ctx, "cubexml.cache")
	e, outcome, err := pc.lookup(ctx, data)
	if sp != nil {
		sp.SetAttr("outcome", outcome)
		sp.SetAttr("bytes", int64(len(data)))
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	// A "wait" shared another request's parse, which is a hit from this
	// request's cost perspective.
	obs.EventFromContext(ctx).ParseCache(outcome != "miss")
	return e, err
}

func (pc *parseCache) lookup(ctx context.Context, data []byte) (*core.Experiment, string, error) {
	key := sha256.Sum256(data)
	pc.mu.Lock()
	if el, ok := pc.entries[key]; ok {
		pc.lru.MoveToFront(el)
		master := el.Value.(*cacheEntry).e
		pc.mu.Unlock()
		pc.count("cube_parse_cache_hits_total")
		// Cloning is pure reads on the master (columnar fast path), so
		// hits on the same entry may proceed concurrently.
		return master.Clone(), "hit", nil
	}
	if fl, ok := pc.flights[key]; ok {
		pc.mu.Unlock()
		fl.wg.Wait()
		if fl.err != nil {
			return nil, "wait", fl.err
		}
		pc.count("cube_parse_cache_hits_total")
		return fl.e.Clone(), "wait", nil
	}
	fl := &flight{}
	fl.wg.Add(1)
	pc.flights[key] = fl
	pc.mu.Unlock()

	pc.count("cube_parse_cache_misses_total")
	master, err := cubexml.ReadBytes(ctx, data, cubexml.ReadOptions{Limits: pc.limits, Engine: pc.engine})
	if err == nil {
		// Columnar-only masters make Clone take its cheap path and are
		// safe to clone concurrently.
		master.CompactSeverities()
	}
	fl.e, fl.err = master, err
	fl.wg.Done()

	pc.mu.Lock()
	delete(pc.flights, key)
	if err == nil {
		pc.insert(key, master, int64(len(data)))
	}
	pc.mu.Unlock()
	if err != nil {
		return nil, "miss", err
	}
	return master.Clone(), "miss", nil
}

// insert adds a parsed master under pc.mu, evicting from the LRU tail
// until the budget holds. Entries larger than the whole budget are not
// cached at all.
func (pc *parseCache) insert(key [sha256.Size]byte, e *core.Experiment, size int64) {
	if size > pc.budget {
		return
	}
	for pc.bytes+size > pc.budget {
		back := pc.lru.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		pc.lru.Remove(back)
		delete(pc.entries, ent.key)
		pc.bytes -= ent.size
		pc.count("cube_parse_cache_evictions_total")
	}
	pc.entries[key] = pc.lru.PushFront(&cacheEntry{key: key, size: size, e: e})
	pc.bytes += size
	if pc.reg != nil {
		pc.reg.Gauge("cube_parse_cache_bytes").Set(pc.bytes)
	}
}

// parseContentDigest extracts the sha-256 digest from an RFC 9530
// Content-Digest header value ("sha-256=:BASE64:", possibly one of a
// comma-separated list). ok is false when the header carries no sha-256
// entry or it does not decode.
func parseContentDigest(header string) (digest [sha256.Size]byte, ok bool) {
	for _, part := range strings.Split(header, ",") {
		alg, val, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found || !strings.EqualFold(strings.TrimSpace(alg), "sha-256") {
			continue
		}
		val = strings.TrimSpace(val)
		if len(val) < 2 || val[0] != ':' || val[len(val)-1] != ':' {
			return digest, false
		}
		raw, err := base64.StdEncoding.DecodeString(val[1 : len(val)-1])
		if err != nil || len(raw) != sha256.Size {
			return digest, false
		}
		copy(digest[:], raw)
		return digest, true
	}
	return digest, false
}
