package server

import (
	"bytes"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cube/internal/core"
	"cube/internal/cubexml"
	"cube/internal/obs"
)

// traceConfig returns a quiet config with always-on tracing and a private
// metrics registry (so exemplar assertions see only this test's traffic).
func traceConfig() *Config {
	cfg := quietConfig()
	cfg.TraceSampleRate = 1
	cfg.Debug = true // the trace viewer lives under the /debug gate
	cfg.Metrics = obs.NewRegistry()
	return cfg
}

// postWithID posts operands like post, but stamps the X-Request-ID header.
func postWithID(t *testing.T, srv *httptest.Server, path, id string, body io.Reader, contentType string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, srv.URL+path, body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set("X-Request-ID", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// chromeEventNames decodes Chrome trace-event JSON and returns the set of
// complete-event names it contains.
func chromeEventNames(t *testing.T, data []byte) map[string]int {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid trace-event JSON: %v\n%s", err, data)
	}
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name]++
		}
	}
	return names
}

// TestServerRequestTrace drives one traced Merge request end to end: the
// X-Request-ID the client sent keys a single connected trace whose span
// tree reaches from the HTTP layer down to the kernel shards, retrievable
// from /debug/traces in both export formats.
func TestServerRequestTrace(t *testing.T) {
	cfg := traceConfig()
	srv := httptest.NewServer(NewHandler(cfg))
	defer srv.Close()

	a, b := buildExp("a", 0), buildExp("b", 0.25)

	// Send the traced request with a caller-chosen request ID.
	const id = "trace-e2e-0001"
	resp := postOperandsWithID(t, srv, "/op/merge?system=collapse", id, a, b)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merge status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	if got := resp.Header.Get("X-Request-ID"); got != id {
		t.Fatalf("X-Request-ID echoed %q, want %q", got, id)
	}
	resp.Body.Close()

	// The trace list mentions the request by its ID.
	lresp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list []struct {
		ID    string `json:"id"`
		Name  string `json:"name"`
		Spans int    `json:"spans"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatalf("decoding trace list: %v", err)
	}
	lresp.Body.Close()
	found := false
	for _, item := range list {
		if item.ID == id {
			found = true
			if item.Name != "http /op/{op}" {
				t.Errorf("trace name = %q, want %q", item.Name, "http /op/{op}")
			}
			if item.Spans < 5 {
				t.Errorf("trace has %d spans, want at least request+op+integrate+lower+kernel+materialize", item.Spans)
			}
		}
	}
	if !found {
		t.Fatalf("trace %q not in /debug/traces list: %+v", id, list)
	}

	// Fetch by ID: Chrome trace-event JSON with the full span taxonomy.
	gresp, err := http.Get(srv.URL + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(gresp.Body)
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch status %d: %s", gresp.StatusCode, data)
	}
	names := chromeEventNames(t, data)
	if names["http /op/{op}"] != 1 || names["op.merge"] != 1 {
		t.Errorf("trace events missing request/op roots: %v", names)
	}
	if names["integrate"] != 1 || names["materialize"] != 1 {
		t.Errorf("trace events missing integrate/materialize: %v", names)
	}
	if names["lower"] != 2 {
		t.Errorf("got %d lower events, want one per operand (2): %v", names["lower"], names)
	}
	if names["kernel"] < 1 {
		t.Errorf("trace events missing kernel shards: %v", names)
	}
	if names["cubexml.read"] != 2 || names["cubexml.write"] != 1 {
		t.Errorf("trace events missing codec spans: %v", names)
	}

	// The tree rendering carries the same structure as text.
	tresp, err := http.Get(srv.URL + "/debug/traces/" + id + "?format=tree")
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	for _, want := range []string{"http /op/{op}", "op.merge", "integrate", "lower", "kernel", "materialize"} {
		if !strings.Contains(string(tree), want) {
			t.Errorf("tree rendering lacks %q:\n%s", want, tree)
		}
	}

	// Unknown formats and unknown IDs answer 400/404.
	if resp, _ := http.Get(srv.URL + "/debug/traces/" + id + "?format=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus format status %d, want 400", resp.StatusCode)
	}
	if resp, _ := http.Get(srv.URL + "/debug/traces/no-such-trace"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace status %d, want 404", resp.StatusCode)
	}

	// The request-duration histogram carries the trace ID as an exemplar.
	snap := cfg.Metrics.Snapshot()
	sawExemplar := false
	for _, h := range snap.Histograms {
		if h.Name != "cube_http_request_duration_seconds" {
			continue
		}
		for _, b := range h.Buckets {
			if b.ExemplarTraceID == id {
				sawExemplar = true
			}
		}
	}
	if !sawExemplar {
		t.Errorf("no duration-histogram exemplar carries trace ID %q", id)
	}
}

// postOperandsWithID marshals operands like post but sets X-Request-ID.
func postOperandsWithID(t *testing.T, srv *httptest.Server, path, id string, exps ...*core.Experiment) *http.Response {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for i, e := range exps {
		fw, err := mw.CreateFormFile("operand", "op"+string(rune('0'+i))+".cube")
		if err != nil {
			t.Fatal(err)
		}
		if err := cubexml.Write(fw, e); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	return postWithID(t, srv, path, id, &body, mw.FormDataContentType())
}

// TestTraceSlowRetention: with sampling off but a slow threshold set, only
// requests exceeding the threshold are retained.
func TestTraceSlowRetention(t *testing.T) {
	cfg := quietConfig()
	cfg.TraceSlow = time.Nanosecond // everything real is slower than this
	cfg.Debug = true
	cfg.Metrics = obs.NewRegistry()
	srv := httptest.NewServer(NewHandler(cfg))
	defer srv.Close()

	a, b := buildExp("a", 0), buildExp("b", 1)
	resp := post(t, srv, "/op/sum", a, b)
	resp.Body.Close()

	lresp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list []json.RawMessage
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatalf("decoding trace list: %v", err)
	}
	lresp.Body.Close()
	if len(list) != 1 {
		t.Fatalf("slow-threshold tracer retained %d traces, want 1", len(list))
	}
}

// TestTraceEndpointsGated: with tracing unconfigured the debug endpoints do
// not exist, mirroring the pprof opt-in.
func TestTraceEndpointsGated(t *testing.T) {
	srv := newTestServer(t) // quietConfig: tracing off
	resp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/traces status %d with tracing off, want 404", resp.StatusCode)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		mutate func(*Config)
		ok     bool
	}{
		{func(c *Config) {}, true},
		{func(c *Config) { c.TraceSampleRate = 1 }, true},
		{func(c *Config) { c.TraceSampleRate = 0.5; c.TraceSlow = time.Second }, true},
		{func(c *Config) { c.TraceSampleRate = -0.1 }, false},
		{func(c *Config) { c.TraceSampleRate = 1.5 }, false},
		{func(c *Config) { c.TraceSlow = -time.Second }, false},
		{func(c *Config) { c.SLOAvailability = 0.999; c.SLOLatency = 250 * time.Millisecond }, true},
		{func(c *Config) { c.SLOAvailability = 1 }, false},
		{func(c *Config) { c.SLOLatencyTarget = -0.5 }, false},
		{func(c *Config) { c.SLOLatency = -time.Second }, false},
		{func(c *Config) { c.SLOWindow = -time.Minute }, false},
		{func(c *Config) { c.EventRingSize = -1 }, false},
	}
	for i, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(cfg)
		err := cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, tc.ok)
		}
	}
}
