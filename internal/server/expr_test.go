package server

// End-to-end tests of POST /expr: DAG evaluation over digest and inline
// leaves, CSE observed through metrics and wide events, result-cache
// replay, and the error mapping.

import (
	"bytes"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cube/internal/core"
	"cube/internal/cubexml"
	"cube/internal/obs"
	"cube/internal/store"
)

// postExprJSON sends an expression as a bare application/json body.
func postExprJSON(t *testing.T, srv *httptest.Server, src string) *http.Response {
	t.Helper()
	resp, err := http.Post(srv.URL+"/expr", "application/json", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// postExprMultipart sends an expression field plus ordered operand files
// (literal documents or digest references).
func postExprMultipart(t *testing.T, srv *httptest.Server, src string, parts ...operandPart) *http.Response {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	if err := mw.WriteField("expr", src); err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		fw, err := mw.CreateFormFile("operand", fmt.Sprintf("op%d.cube", i))
		if err != nil {
			t.Fatal(err)
		}
		if p.digest != "" {
			io.WriteString(fw, "digest:"+p.digest)
		} else {
			fw.Write(p.literal)
		}
	}
	mw.Close()
	resp, err := http.Post(srv.URL+"/expr", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeExpResponse(t *testing.T, resp *http.Response) *core.Experiment {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	e, err := cubexml.Read(strings.NewReader(readAll(t, resp)))
	if err != nil {
		t.Fatalf("response not a cube document: %v", err)
	}
	return e
}

// The acceptance scenario over the wire: a DAG whose shared subexpression
// appears twice runs it once (observed via cube_op_invocations_total, the
// expr metrics, and the request's wide event), the result matches the
// sequential composition, and the replayed DAG is a pure cache hit.
func TestExprEndpointCSEAndReplay(t *testing.T) {
	a := buildExp("a", 0.25)
	b := buildExp("b", 0)
	// Computed before the server exists: core instrumentation is
	// process-global, so running these after newStoreServer would count
	// the local operators into the server's registry.
	d, _ := core.Difference(a, b, nil)
	sc, _ := core.Scale(d, 2, nil)
	want, _ := core.Mean(nil, d, sc)

	reg := obs.NewRegistry()
	cfg := quietConfig()
	cfg.Metrics = reg
	cfg.Events = obs.NewEventSink(64)
	srv, _ := newStoreServer(t, cfg, store.Options{})

	docA, docB := encodeExp(t, a), encodeExp(t, b)
	digA, digB := store.DigestOf(docA).String(), store.DigestOf(docB).String()
	for dig, doc := range map[string][]byte{digA: docA, digB: docB} {
		resp := putExperiment(t, srv, dig, doc, "")
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("PUT %s: status %d", dig, resp.StatusCode)
		}
		resp.Body.Close()
	}

	src := fmt.Sprintf(`{"op":"mean","args":[
		{"op":"difference","args":[{"ref":"digest:%s"},{"ref":"digest:%s"}]},
		{"op":"scale","factor":2,"args":[{"op":"difference","args":[{"ref":"digest:%s"},{"ref":"digest:%s"}]}]}]}`,
		digA, digB, digA, digB)

	resp := postExprJSON(t, srv, src)
	if got := resp.Header.Get("X-Cube-Expr-Cse-Hits"); got != "1" {
		t.Errorf("X-Cube-Expr-Cse-Hits = %q, want 1", got)
	}
	if got := resp.Header.Get("X-Cube-Expr-Cache"); got != "miss" {
		t.Errorf("first request X-Cube-Expr-Cache = %q, want miss", got)
	}
	got := decodeExpResponse(t, resp)
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("/expr result differs from sequential composition")
	}

	// The duplicated difference ran exactly once server-side.
	if v := reg.CounterValue("cube_op_invocations_total", obs.L("op", "difference")); v != 1 {
		t.Errorf("difference ran %d times, want 1 (CSE)", v)
	}
	if v := reg.CounterValue("cube_expr_cse_hits_total"); v != 1 {
		t.Errorf("cube_expr_cse_hits_total = %d, want 1", v)
	}
	evalAfterFirst := reg.CounterValue("cube_expr_eval_nodes_total")
	if evalAfterFirst != 3 {
		t.Errorf("cube_expr_eval_nodes_total = %d, want 3", evalAfterFirst)
	}

	// Replay the identical DAG: answered from the expression-digest cache
	// without running any operator.
	resp2 := postExprJSON(t, srv, src)
	if got := resp2.Header.Get("X-Cube-Expr-Cache"); got != "hit" {
		t.Errorf("replay X-Cube-Expr-Cache = %q, want hit", got)
	}
	got2 := decodeExpResponse(t, resp2)
	if got2.Fingerprint() != want.Fingerprint() {
		t.Error("replayed result differs")
	}
	if v := reg.CounterValue("cube_expr_eval_nodes_total"); v != evalAfterFirst {
		t.Errorf("replay evaluated %d extra nodes", v-evalAfterFirst)
	}
	if v := reg.CounterValue("cube_op_invocations_total", obs.L("op", "difference")); v != 1 {
		t.Errorf("replay re-ran difference (%d invocations)", v)
	}
	if v := reg.CounterValue("cube_expr_cache_hits_total"); v < 1 {
		t.Errorf("cube_expr_cache_hits_total = %d, want >= 1", v)
	}

	// The wide events carry the same story: first request CSE-shared and
	// evaluated, replay cached.
	var first, replay *obs.EventFields
	for _, ev := range cfg.Events.Events() {
		if ev.Route != "/expr" {
			continue
		}
		if first == nil {
			first = ev
		} else {
			replay = ev
		}
	}
	if first == nil || replay == nil {
		t.Fatal("expected two /expr wide events")
	}
	if first.ExprCSEHits != 1 || first.ExprEvaluated != 3 || first.ExprNodes != 5 {
		t.Errorf("first event: nodes=%d cse=%d evaluated=%d, want 5/1/3",
			first.ExprNodes, first.ExprCSEHits, first.ExprEvaluated)
	}
	if replay.ExprEvaluated != 0 || replay.ExprCacheHits != 1 {
		t.Errorf("replay event: evaluated=%d cache_hits=%d, want 0/1", replay.ExprEvaluated, replay.ExprCacheHits)
	}
	if first.Op != "mean" {
		t.Errorf("event op = %q, want mean (the root operator)", first.Op)
	}
}

// Inline multipart operands evaluate without any store, and a digest-ref
// operand part behaves like a digest leaf.
func TestExprMultipartInlineOperands(t *testing.T) {
	srv := newTestServer(t) // no store configured
	a := buildExp("a", 0.5)
	b := buildExp("b", 0)
	src := `{"op":"difference","args":[{"ref":"operand:0"},{"ref":"operand:1"}]}`
	resp := postExprMultipart(t, srv, src,
		operandPart{literal: encodeExp(t, a)}, operandPart{literal: encodeExp(t, b)})
	got := decodeExpResponse(t, resp)
	want, _ := core.Difference(a, b, nil)
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("inline-operand /expr result differs from local operator")
	}
}

// An inline operand whose bytes match a stored digest leaf shares one
// node: the parse and the severities agree regardless of leaf spelling.
func TestExprMixedLeavesUnify(t *testing.T) {
	srv, _ := newStoreServer(t, nil, store.Options{})
	a := buildExp("a", 0.25)
	doc := encodeExp(t, a)
	dig := store.DigestOf(doc).String()
	resp := putExperiment(t, srv, dig, doc, "")
	resp.Body.Close()

	// sum(digest-leaf, inline-operand-with-same-bytes) == sum(a, a).
	src := fmt.Sprintf(`{"op":"sum","args":[{"ref":"digest:%s"},{"ref":"operand:0"}]}`, dig)
	got := decodeExpResponse(t, postExprMultipart(t, srv, src, operandPart{literal: doc}))
	want, _ := core.Sum(nil, a, a)
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("mixed digest/inline leaves produced a wrong result")
	}
}

func TestExprErrorMapping(t *testing.T) {
	cfg := quietConfig()
	cfg.MaxExprNodes = 8
	srv, _ := newStoreServer(t, cfg, store.Options{})
	missing := strings.Repeat("ab", 32)

	cases := []struct {
		name string
		src  string
		want int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown op", `{"op":"nope","args":[{"ref":"operand:0"}]}`, http.StatusBadRequest},
		{"operand out of range", `{"op":"flatten","args":[{"ref":"operand:3"}]}`, http.StatusBadRequest},
		{"missing digest", fmt.Sprintf(`{"op":"flatten","args":[{"ref":"digest:%s"}]}`, missing), http.StatusNotFound},
		{"node cap", `{"op":"mean","args":[` + strings.Repeat(`{"op":"flatten","args":[`, 8) +
			`{"ref":"operand:0"}` + strings.Repeat(`]}`, 8) + `]}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postExprJSON(t, srv, c.src)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.want, readAll(t, resp))
			continue
		}
		resp.Body.Close()
	}

	// Multipart with no "expr" field.
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	fw, _ := mw.CreateFormFile("operand", "op0.cube")
	fw.Write(encodeExp(t, buildExp("a", 0)))
	mw.Close()
	resp, err := http.Post(srv.URL+"/expr", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf(`missing "expr" field: status %d, want 400`, resp.StatusCode)
	}
	resp.Body.Close()
}

// A batched request evaluates several roots over one shared DAG in one
// round trip: the response is multipart/mixed with one CUBE XML part per
// root, the shared difference runs once, and repeated operands are served
// from the shared lowered blocks (cube_lower_cache_hits_total).
func TestExprMultiRoot(t *testing.T) {
	a := buildExp("a", 0.25)
	b := buildExp("b", 0)
	d, _ := core.Difference(a, b, nil)
	sc, _ := core.Scale(d, 2, nil)

	reg := obs.NewRegistry()
	cfg := quietConfig()
	cfg.Metrics = reg
	cfg.Events = obs.NewEventSink(64)
	srv, _ := newStoreServer(t, cfg, store.Options{})

	docA, docB := encodeExp(t, a), encodeExp(t, b)
	digA, digB := store.DigestOf(docA).String(), store.DigestOf(docB).String()
	for dig, doc := range map[string][]byte{digA: docA, digB: docB} {
		resp := putExperiment(t, srv, dig, doc, "")
		resp.Body.Close()
	}

	src := fmt.Sprintf(`{"defs":{"d":{"op":"difference","args":[{"ref":"digest:%s"},{"ref":"digest:%s"}]}},
		"roots":[{"ref":"def:d"},{"op":"scale","factor":2,"args":[{"ref":"def:d"}]}]}`, digA, digB)

	resp := postExprJSON(t, srv, src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	if got := resp.Header.Get("X-Cube-Expr-Roots"); got != "2" {
		t.Errorf("X-Cube-Expr-Roots = %q, want 2", got)
	}
	mt, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || mt != "multipart/mixed" {
		t.Fatalf("Content-Type = %q, want multipart/mixed", resp.Header.Get("Content-Type"))
	}
	mr := multipart.NewReader(resp.Body, params["boundary"])
	var parts []*core.Experiment
	for {
		p, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		e, err := cubexml.Read(p)
		if err != nil {
			t.Fatalf("part %d not a cube document: %v", len(parts), err)
		}
		parts = append(parts, e)
	}
	resp.Body.Close()
	if len(parts) != 2 {
		t.Fatalf("got %d parts, want 2", len(parts))
	}
	if parts[0].Fingerprint() != d.Fingerprint() {
		t.Error("root 0 differs from the sequential difference")
	}
	if parts[1].Fingerprint() != sc.Fingerprint() {
		t.Error("root 1 differs from the sequential scale")
	}
	// The def shared by both roots ran exactly once.
	if v := reg.CounterValue("cube_op_invocations_total", obs.L("op", "difference")); v != 1 {
		t.Errorf("difference ran %d times, want 1 (shared across roots)", v)
	}
}

// Repeated POST /expr over the same operand content reuses the parse
// cache's lowered columnar blocks without copying them: the first request
// populates (a lower-cache miss per leaf resolution), repeats hit.
func TestExprLowerCacheReuse(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := quietConfig()
	cfg.Metrics = reg
	cfg.Events = obs.NewEventSink(64)
	srv, _ := newStoreServer(t, cfg, store.Options{})

	a := buildExp("a", 0.5)
	b := buildExp("b", 0)
	want, _ := core.Difference(a, b, nil)
	src := `{"op":"difference","args":[{"ref":"operand:0"},{"ref":"operand:1"}]}`
	parts := []operandPart{{literal: encodeExp(t, a)}, {literal: encodeExp(t, b)}}

	got := decodeExpResponse(t, postExprMultipart(t, srv, src, parts...))
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("first /expr result differs from local operator")
	}
	if v := reg.CounterValue("cube_lower_cache_hits_total"); v != 0 {
		t.Errorf("first request counted %d lower-cache hits, want 0", v)
	}
	misses := reg.CounterValue("cube_lower_cache_misses_total")
	if misses != 2 {
		t.Errorf("first request counted %d lower-cache misses, want 2", misses)
	}

	// Same operand bytes again — different expression, so the result
	// cache cannot answer and the leaves must resolve again.
	src2 := `{"op":"sum","args":[{"ref":"operand:0"},{"ref":"operand:1"}]}`
	want2, _ := core.Sum(nil, a, b)
	got2 := decodeExpResponse(t, postExprMultipart(t, srv, src2, parts...))
	if got2.Fingerprint() != want2.Fingerprint() {
		t.Error("second /expr result differs from local operator")
	}
	if v := reg.CounterValue("cube_lower_cache_hits_total"); v != 2 {
		t.Errorf("repeat request counted %d lower-cache hits, want 2", v)
	}
	if v := reg.CounterValue("cube_lower_cache_misses_total"); v != misses {
		t.Errorf("repeat request added %d lower-cache misses, want 0", v-misses)
	}

	// The wide events carry the same split.
	var evs []*obs.EventFields
	for _, ev := range cfg.Events.Events() {
		if ev.Route == "/expr" {
			evs = append(evs, ev)
		}
	}
	if len(evs) != 2 {
		t.Fatalf("expected 2 /expr wide events, got %d", len(evs))
	}
	if evs[0].LowerCacheMisses != 2 || evs[0].LowerCacheHits != 0 {
		t.Errorf("first event: lower_cache hits=%d misses=%d, want 0/2",
			evs[0].LowerCacheHits, evs[0].LowerCacheMisses)
	}
	if evs[1].LowerCacheHits != 2 || evs[1].LowerCacheMisses != 0 {
		t.Errorf("repeat event: lower_cache hits=%d misses=%d, want 2/0",
			evs[1].LowerCacheHits, evs[1].LowerCacheMisses)
	}
}

// A bare digest leaf round-trips the stored experiment through the
// evaluation path (closure at the degenerate end).
func TestExprBareLeaf(t *testing.T) {
	srv, _ := newStoreServer(t, nil, store.Options{})
	a := buildExp("a", 0.125)
	doc := encodeExp(t, a)
	dig := store.DigestOf(doc).String()
	resp := putExperiment(t, srv, dig, doc, "")
	resp.Body.Close()
	got := decodeExpResponse(t, postExprJSON(t, srv, fmt.Sprintf(`{"ref":"digest:%s"}`, dig)))
	if got.Fingerprint() != a.Fingerprint() {
		t.Error("bare digest leaf did not round-trip the stored experiment")
	}
}
