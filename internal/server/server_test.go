package server

import (
	"bytes"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cube/internal/core"
	"cube/internal/cubexml"
)

// buildExp creates a small experiment; extraWait perturbs it.
func buildExp(title string, extraWait float64) *core.Experiment {
	e := core.New(title)
	time := e.NewMetric("Time", core.Seconds, "")
	wait := time.NewChild("Wait", "")
	mainR := e.NewRegion("main", "app", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("", 0, mainR))
	sub := root.NewChild(e.NewCallSite("app", 4, e.NewRegion("sub", "app", 0, 0)))
	for _, th := range e.SingleThreadedSystem("m", 1, 2) {
		e.SetSeverity(time, root, th, 1)
		e.SetSeverity(time, sub, th, 0.02)
		e.SetSeverity(wait, root, th, 0.5+extraWait)
	}
	return e
}

// post sends experiments as multipart operands and returns the response.
func post(t *testing.T, srv *httptest.Server, path string, exps ...*core.Experiment) *http.Response {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for i, e := range exps {
		fw, err := mw.CreateFormFile("operand", "op"+string(rune('0'+i))+".cube")
		if err != nil {
			t.Fatal(err)
		}
		if err := cubexml.Write(fw, e); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	resp, err := http.Post(srv.URL+path, mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// newTestServer serves the real handler with request logging silenced.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(quietConfig()))
	t.Cleanup(srv.Close)
	return srv
}

func TestHealthz(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	readAll(t, resp)
}

func TestDifferenceEndpoint(t *testing.T) {
	srv := newTestServer(t)
	a := buildExp("a", 0.25)
	b := buildExp("b", 0)
	resp := post(t, srv, "/op/difference", a, b)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	got, err := cubexml.Read(strings.NewReader(readAll(t, resp)))
	if err != nil {
		t.Fatalf("response not a cube document: %v", err)
	}
	want, _ := core.Difference(a, b, nil)
	if got.Fingerprint() != want.Fingerprint() {
		t.Errorf("service result differs from local operator")
	}
	if !got.Derived || got.Operation != "difference" {
		t.Errorf("provenance lost over the wire")
	}
}

func TestMeanAndComposition(t *testing.T) {
	srv := newTestServer(t)
	runs := []*core.Experiment{buildExp("r1", 0.1), buildExp("r2", 0.2), buildExp("r3", 0.3)}
	resp := post(t, srv, "/op/mean", runs...)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mean status %d", resp.StatusCode)
	}
	mean, err := cubexml.Read(strings.NewReader(readAll(t, resp)))
	if err != nil {
		t.Fatal(err)
	}
	// Closure: the derived result feeds straight back into the service.
	resp2 := post(t, srv, "/op/difference", mean, buildExp("base", 0))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("composed difference status %d: %s", resp2.StatusCode, readAll(t, resp2))
	}
	if _, err := cubexml.Read(strings.NewReader(readAll(t, resp2))); err != nil {
		t.Fatalf("composed result unreadable: %v", err)
	}
}

func TestUnaryEndpoints(t *testing.T) {
	srv := newTestServer(t)
	e := buildExp("x", 0)

	resp := post(t, srv, "/op/flatten", e)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flatten status %d", resp.StatusCode)
	}
	flat, err := cubexml.Read(strings.NewReader(readAll(t, resp)))
	if err != nil || flat.Operation != "flatten" {
		t.Errorf("flatten result wrong: %v %v", err, flat)
	}

	resp = post(t, srv, "/op/extract?metric=Time/Wait", e)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extract status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	ex, err := cubexml.Read(strings.NewReader(readAll(t, resp)))
	if err != nil || len(ex.MetricRoots()) != 1 || ex.MetricRoots()[0].Name != "Wait" {
		t.Errorf("extract result wrong")
	}

	resp = post(t, srv, "/op/prune?metric=Time&threshold=0.5", e)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prune status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	pr, err := cubexml.Read(strings.NewReader(readAll(t, resp)))
	if err != nil || pr.Operation != "prune" {
		t.Errorf("prune result wrong")
	}
}

func TestViewEndpoint(t *testing.T) {
	srv := newTestServer(t)
	resp := post(t, srv, "/view?metric=Wait&mode=percent", buildExp("v", 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := readAll(t, resp)
	for _, want := range []string{"Metric tree", "Call tree", "Wait", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("view lacks %q:\n%s", want, out)
		}
	}
	// Flat view.
	resp = post(t, srv, "/view?flat=1", buildExp("v", 0))
	if !strings.Contains(readAll(t, resp), "flatten") {
		t.Errorf("flat view missing flatten provenance")
	}
	// Hotspot ranking.
	resp = post(t, srv, "/view?metric=Time&top=3", buildExp("v", 0))
	out = readAll(t, resp)
	if !strings.Contains(out, "top 3 severities") && !strings.Contains(out, "top 2 severities") {
		t.Errorf("hotspot listing missing:\n%s", out)
	}
	resp = post(t, srv, "/view?top=banana", buildExp("v", 0))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad top accepted: %d", resp.StatusCode)
	}
	readAll(t, resp)
}

func TestReportEndpoint(t *testing.T) {
	srv := newTestServer(t)
	resp := post(t, srv, "/report?metric=Wait", buildExp("r", 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("content type %q", ct)
	}
	out := readAll(t, resp)
	for _, want := range []string{"<!DOCTYPE html>", "Metric tree", "Hotspots"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q", want)
		}
	}
	resp = post(t, srv, "/report?metric=Nope", buildExp("r", 0))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown metric status %d", resp.StatusCode)
	}
	readAll(t, resp)
	resp = post(t, srv, "/report", buildExp("a", 0), buildExp("b", 0))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("two-operand report status %d", resp.StatusCode)
	}
	readAll(t, resp)
}

func TestInfoEndpoint(t *testing.T) {
	srv := newTestServer(t)
	resp := post(t, srv, "/info", buildExp("a", 0), buildExp("b", 0))
	out := readAll(t, resp)
	for _, want := range []string{`"a"`, `"b"`, "similarity"} {
		if !strings.Contains(out, want) {
			t.Errorf("info lacks %q:\n%s", want, out)
		}
	}
}

func TestErrorResponses(t *testing.T) {
	srv := newTestServer(t)
	e := buildExp("x", 0)

	// Unknown op.
	resp := post(t, srv, "/op/transmogrify", e)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown op status %d", resp.StatusCode)
	}
	readAll(t, resp)
	// Wrong operand count.
	resp = post(t, srv, "/op/difference", e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("single-operand difference status %d", resp.StatusCode)
	}
	readAll(t, resp)
	// Bad options.
	resp = post(t, srv, "/op/merge?system=bogus", e, e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad option status %d", resp.StatusCode)
	}
	readAll(t, resp)
	// No operands.
	body := strings.NewReader("")
	r, err := http.Post(srv.URL+"/op/mean", "multipart/form-data; boundary=x", body)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("empty request status %d", r.StatusCode)
	}
	r.Body.Close()
	// Corrupt operand.
	var mb bytes.Buffer
	mw := multipart.NewWriter(&mb)
	fw, _ := mw.CreateFormFile("operand", "bad.cube")
	fw.Write([]byte("not xml"))
	mw.Close()
	r2, err := http.Post(srv.URL+"/op/flatten", mw.FormDataContentType(), &mb)
	if err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt operand status %d", r2.StatusCode)
	}
	r2.Body.Close()
	// Bad prune threshold.
	resp = post(t, srv, "/op/prune?metric=Time&threshold=banana", e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad threshold status %d", resp.StatusCode)
	}
	readAll(t, resp)
	// Unknown view metric.
	resp = post(t, srv, "/view?metric=Nope", e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown view metric status %d", resp.StatusCode)
	}
	readAll(t, resp)
}

// TestDefaultHandler smoke-tests the zero-config entry point.
func TestDefaultHandler(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	readAll(t, resp)
}

// TestOperandCountErrors checks the arity guard of every operator and
// endpoint: wrong counts must be 400 with a usable message, never 500.
func TestOperandCountErrors(t *testing.T) {
	srv := newTestServer(t)
	e := buildExp("x", 0)
	cases := []struct {
		path     string
		operands int
	}{
		{"/op/difference", 1},
		{"/op/difference", 3},
		{"/op/flatten", 2},
		{"/op/extract?metric=Time", 2},
		{"/op/prune?metric=Time&threshold=0.5", 2},
		{"/view", 2},
		{"/report", 2},
		{"/info", 3},
	}
	for _, c := range cases {
		exps := make([]*core.Experiment, c.operands)
		for i := range exps {
			exps[i] = e
		}
		resp := post(t, srv, c.path, exps...)
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s with %d operands: status %d, want 400 (%s)", c.path, c.operands, resp.StatusCode, body)
		}
	}
	// The n-ary operators accept any positive count, including one.
	for _, op := range []string{"merge", "mean", "sum", "min", "max"} {
		resp := post(t, srv, "/op/"+op, e)
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("unary %s: status %d (%s)", op, resp.StatusCode, body)
		}
	}
}

func TestBadViewMode(t *testing.T) {
	srv := newTestServer(t)
	resp := post(t, srv, "/view?mode=banana", buildExp("v", 0))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad mode status %d, want 400", resp.StatusCode)
	}
	readAll(t, resp)
}

func TestBadCallmatchEveryOp(t *testing.T) {
	srv := newTestServer(t)
	e := buildExp("x", 0)
	for _, op := range []string{"difference", "merge", "mean", "sum", "min", "max"} {
		resp := post(t, srv, "/op/"+op+"?callmatch=bogus", e, e)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s with bad callmatch: status %d, want 400", op, resp.StatusCode)
		}
		readAll(t, resp)
	}
}
