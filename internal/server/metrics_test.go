package server

// Observability tests: the /metrics and /debug/vars endpoints, the
// per-route telemetry recorded by the middleware, and the X-Request-ID
// round trip (honored, minted, logged, and stamped into error bodies).

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cube/internal/obs"
)

// newMetricsServer builds a test server with its own registry so
// assertions are not polluted by other tests sharing obs.Default.
func newMetricsServer(t *testing.T, logBuf *bytes.Buffer) (*httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := quietConfig()
	cfg.Metrics = reg
	if logBuf != nil {
		var mu sync.Mutex
		cfg.Logger = slog.New(slog.NewTextHandler(writerFunc(func(p []byte) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			return logBuf.Write(p)
		}), nil))
	}
	srv := httptest.NewServer(NewHandler(cfg))
	t.Cleanup(srv.Close)
	return srv, reg
}

func TestMetricsEndpointAfterOperation(t *testing.T) {
	srv, _ := newMetricsServer(t, nil)

	resp := post(t, srv, "/op/difference", buildExp("a", 1), buildExp("b", 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("difference status = %d: %s", resp.StatusCode, readAll(t, resp))
	}
	readAll(t, resp)

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q, want text/plain", ct)
	}
	body := readAll(t, mresp)

	for _, want := range []string{
		`cube_op_invocations_total{op="difference"} 1`,
		`cube_http_requests_total{method="POST",route="/op/{op}",status="200"} 1`,
		`cube_http_request_duration_seconds_bucket{route="/op/{op}",le="+Inf"} 1`,
		"cube_xml_read_bytes_total",
		"cube_xml_write_bytes_total",
		"cube_integrate_invocations_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestDebugVarsEndpoint(t *testing.T) {
	cfg := quietConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.Debug = true
	srv := httptest.NewServer(NewHandler(cfg))
	defer srv.Close()
	// Serve one real operation first so the snapshot contains histograms —
	// their +Inf terminal bucket must survive JSON encoding.
	readAll(t, post(t, srv, "/op/flatten", buildExp("a", 0)))
	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/debug/vars Content-Type = %q, want application/json", ct)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	resp.Body.Close()
	if _, ok := doc["memstats"]; !ok {
		t.Errorf("/debug/vars missing memstats")
	}
	if _, ok := doc["metrics"]; !ok {
		t.Errorf("/debug/vars missing metrics")
	}
}

func TestRequestIDHonored(t *testing.T) {
	var logged bytes.Buffer
	srv, _ := newMetricsServer(t, &logged)

	req, _ := http.NewRequest("GET", srv.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-supplied.id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if got := resp.Header.Get("X-Request-ID"); got != "caller-supplied.id-42" {
		t.Errorf("X-Request-ID = %q, want the caller's ID echoed", got)
	}
	if !strings.Contains(logged.String(), "request_id=caller-supplied.id-42") {
		t.Errorf("request log does not carry the request ID: %s", logged.String())
	}
}

func TestRequestIDMinted(t *testing.T) {
	srv, _ := newMetricsServer(t, nil)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	id := resp.Header.Get("X-Request-ID")
	if len(id) != 16 {
		t.Errorf("minted X-Request-ID = %q, want 16 hex chars", id)
	}
}

func TestRequestIDHostileValueReplaced(t *testing.T) {
	srv, _ := newMetricsServer(t, nil)
	req, _ := http.NewRequest("GET", srv.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "bad id\twith spaces")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	id := resp.Header.Get("X-Request-ID")
	if id == "" || strings.ContainsAny(id, " \t") {
		t.Errorf("hostile X-Request-ID not replaced: %q", id)
	}
}

func TestRequestIDInErrorBody(t *testing.T) {
	srv, _ := newMetricsServer(t, nil)
	req, _ := http.NewRequest("POST", srv.URL+"/op/difference", strings.NewReader(""))
	req.Header.Set("X-Request-ID", "err-trace-7")
	req.Header.Set("Content-Type", "multipart/form-data; boundary=x")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("empty upload succeeded unexpectedly")
	}
	if !strings.Contains(body, "request-id: err-trace-7") {
		t.Errorf("error body missing request ID: %q", body)
	}
}

func TestPprofGating(t *testing.T) {
	srv, _ := newMetricsServer(t, nil)
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode == http.StatusOK {
		t.Errorf("/debug/pprof/ served without EnablePprof")
	}

	cfg := quietConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.EnablePprof = true
	on := httptest.NewServer(NewHandler(cfg))
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ with EnablePprof: status %d body %q", resp.StatusCode, body[:min(len(body), 120)])
	}
}

func TestTelemetryCountsErrorsAndPanics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := quietConfig()
	cfg.Metrics = reg
	s := &service{cfg: cfg, reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("/panic", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	srv := httptest.NewServer(s.wrap(mux))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/panic")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := reg.CounterValue("cube_http_panics_total"); got != 1 {
		t.Errorf("cube_http_panics_total = %d, want 1", got)
	}
	if got := reg.CounterValue("cube_http_requests_total",
		obs.L("route", "other"), obs.L("method", "GET"), obs.L("status", "500")); got != 1 {
		t.Errorf("requests_total{other,GET,500} = %d, want 1", got)
	}
}
