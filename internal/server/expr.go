package server

// POST /expr — the expression endpoint: one request evaluates a whole
// algebra DAG server-side instead of one operator per round-trip.
//
// Body forms:
//
//	application/json
//	    the expression document itself; leaves must be digest refs
//	multipart/form-data
//	    field "expr" carries the document; ordered "operand" files carry
//	    inline operands addressed as `operand:<index>` (a file whose body
//	    is `digest:<sha256>` behaves like a digest leaf, as on /op)
//
// The document is a node tree — `{"op":"mean","args":[...]}` with
// `{"ref":"digest:<sha256>"}` / `{"ref":"operand:<i>"}` leaves — or
// `{"defs":{...},"expr":{...}}` naming shared subexpressions (see
// internal/expr). `{"defs":{...},"roots":[...]}` evaluates several
// expressions over one shared DAG in a single request; the response is
// then multipart/mixed with one CUBE XML part per root, in order, plus an
// X-Cube-Expr-Roots count header. Query params callmatch= and system=
// select integration options exactly as on /op/{op}.
//
// Identical subtrees are evaluated once (CSE), evaluated subexpressions
// land in a byte-budgeted expression-digest result cache, and identical
// concurrent requests share one evaluation. The response carries
// X-Cube-Expr-Nodes, X-Cube-Expr-Cse-Hits, and X-Cube-Expr-Cache
// (hit|miss) headers so callers — and the expr-smoke gate — can observe
// the sharing without scraping /metrics.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"strconv"
	"strings"

	"cube/internal/core"
	"cube/internal/cubexml"
	"cube/internal/expr"
	"cube/internal/obs"
	"cube/internal/store"
)

// exprOperand is one inline multipart operand of an expression request:
// either literal CUBE XML bytes or a digest reference, both reduced to
// the content digest the planner keys leaves by.
type exprOperand struct {
	data   []byte // literal bytes; nil for a digest reference
	digest store.Digest
	isRef  bool
}

func (s *service) handleExpr(w http.ResponseWriter, r *http.Request) {
	opts, err := options(r)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	opts.Trace = obs.SpanFromContext(r.Context())
	ev := obs.EventFromContext(r.Context())
	opts.Event = ev

	src, operands, err := s.readExprBody(r)
	if err != nil {
		s.exprError(w, r, err, http.StatusBadRequest)
		return
	}

	// Parse, validate, and canonicalize under an expr.plan span: the
	// plan's node count, CSE hits, and depth are the attributes that
	// explain the evaluation that follows.
	sp, _ := obs.StartSpanContext(r.Context(), "expr.plan")
	plan, err := s.planExpr(src, operands)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		s.exprError(w, r, err, http.StatusBadRequest)
		return
	}
	sp.SetAttr("nodes", len(plan.Nodes))
	sp.SetAttr("cse_hits", plan.CSEHits)
	sp.SetAttr("depth", plan.Depth)
	sp.End()

	// Every digest leaf is pinned when it resolves and stays pinned until
	// evaluation is over, so budget-pressure eviction cannot pull an
	// operand out from under the running expression.
	var pinned []store.Digest
	if s.cfg.Store != nil {
		defer func() {
			for _, d := range pinned {
				s.cfg.Store.Unpin(d)
			}
		}()
	}
	resolve := s.exprResolver(operands, &pinned)
	if len(plan.Roots) > 1 {
		results, stats, err := s.expr.EvalMulti(r.Context(), plan, opts, resolve)
		if err != nil {
			if r.Context().Err() != nil {
				return // the timeout middleware already answered
			}
			s.exprError(w, r, err, http.StatusUnprocessableEntity)
			return
		}
		ev.SetOp(plan.Root.Op())
		ev.SetExprStats(stats.Nodes, stats.CSEHits, stats.CacheHits, stats.Evaluated)
		s.exprHeaders(w, stats)
		w.Header().Set("X-Cube-Expr-Roots", strconv.Itoa(len(results)))
		if ctxDone(w, r) {
			return
		}
		s.writeExperimentParts(w, r, results)
		return
	}
	result, stats, err := s.expr.Eval(r.Context(), plan, opts, resolve)
	if err != nil {
		if r.Context().Err() != nil {
			return // the timeout middleware already answered
		}
		s.exprError(w, r, err, http.StatusUnprocessableEntity)
		return
	}
	ev.SetOp(plan.Root.Op())
	ev.SetExprStats(stats.Nodes, stats.CSEHits, stats.CacheHits, stats.Evaluated)
	s.exprHeaders(w, stats)
	if ctxDone(w, r) {
		return
	}
	s.writeExperiment(w, r, result)
}

// exprHeaders stamps the evaluation-stat response headers shared by the
// single-root and batched forms of POST /expr.
func (s *service) exprHeaders(w http.ResponseWriter, stats expr.Stats) {
	w.Header().Set("X-Cube-Expr-Nodes", strconv.Itoa(stats.Nodes))
	w.Header().Set("X-Cube-Expr-Cse-Hits", strconv.Itoa(stats.CSEHits))
	cacheState := "miss"
	if stats.RootCached {
		cacheState = "hit"
	}
	w.Header().Set("X-Cube-Expr-Cache", cacheState)
}

// writeExperimentParts answers a batched expression with a multipart/mixed
// body carrying one CUBE XML part per root, in root order. Like
// writeExperiment, every document is encoded before the first response
// byte, so encoding failures become a clean 500 rather than a truncated
// multipart stream.
func (s *service) writeExperimentParts(w http.ResponseWriter, r *http.Request, results []*core.Experiment) {
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for i, e := range results {
		var buf bytes.Buffer
		if err := cubexml.WriteContext(r.Context(), &buf, e); err != nil {
			s.logError(r.Context(), "encoding result experiment",
				slog.String("title", e.Title), slog.Any("err", err))
			httpError(w, r, http.StatusInternalServerError, "encoding root %d: %v", i, err)
			return
		}
		hdr := make(textproto.MIMEHeader)
		hdr.Set("Content-Type", "application/xml; charset=utf-8")
		pw, err := mw.CreatePart(hdr)
		if err != nil {
			httpError(w, r, http.StatusInternalServerError, "assembling multipart response: %v", err)
			return
		}
		buf.WriteTo(pw)
	}
	mw.Close()
	w.Header().Set("Content-Type", "multipart/mixed; boundary="+mw.Boundary())
	w.Header().Set("Content-Length", strconv.Itoa(body.Len()))
	body.WriteTo(w)
}

// planExpr parses and canonicalizes the expression document against the
// request's inline operands.
func (s *service) planExpr(src []byte, operands []exprOperand) (*expr.Plan, error) {
	ex, err := expr.Parse(src, expr.Limits{MaxNodes: s.cfg.MaxExprNodes, MaxDepth: s.cfg.MaxExprDepth})
	if err != nil {
		return nil, err
	}
	if m := ex.MaxOperandRef(); m >= len(operands) {
		return nil, fmt.Errorf("expression references operand:%d but the request carries %d operand file(s)", m, len(operands))
	}
	return ex.Plan(func(i int) ([sha256.Size]byte, error) {
		return [sha256.Size]byte(operands[i].digest), nil
	})
}

// exprResolver supplies leaf experiments to the evaluation engine: inline
// operands parse through the content-addressed parse cache, digest leaves
// resolve from the store (pinned into *pinned for the caller to release).
// Leaves resolve through the cache's shared path: the engine's operators
// never mutate operands, so a repeat request over the same content digest
// reuses the cached master's lowered columnar block outright instead of
// copying it (counted as cube_lower_cache_hits_total).
func (s *service) exprResolver(operands []exprOperand, pinned *[]store.Digest) expr.Resolver {
	return func(ctx context.Context, leaf expr.Leaf) (*core.Experiment, error) {
		switch leaf.Kind {
		case expr.LeafOperand:
			op := operands[leaf.Operand]
			if op.isRef {
				return s.resolveDigestLeaf(ctx, op.digest, pinned)
			}
			if s.cache != nil {
				return s.cache.shared(ctx, op.data)
			}
			return cubexml.ReadBytes(ctx, op.data, cubexml.ReadOptions{Limits: s.cfg.XML, Engine: s.cfg.ReadEngine})
		case expr.LeafDigest:
			d, ok := store.ParseDigest(leaf.Digest)
			if !ok {
				return nil, fmt.Errorf("bad digest ref %q", leaf.Digest)
			}
			return s.resolveDigestLeaf(ctx, d, pinned)
		default:
			return nil, fmt.Errorf("unknown leaf kind %d", leaf.Kind)
		}
	}
}

// resolveDigestLeaf is resolveDigestOperand for expression leaves: pin,
// read the verified bytes, parse through the parse cache.
func (s *service) resolveDigestLeaf(ctx context.Context, d store.Digest, pinned *[]store.Digest) (*core.Experiment, error) {
	st := s.cfg.Store
	if st == nil {
		return nil, fmt.Errorf("expression references digest %s but no experiment store is configured", d)
	}
	if !st.Pin(d) {
		return nil, &storeMissError{operand: -1, digest: d.String()}
	}
	*pinned = append(*pinned, d)
	ev := obs.EventFromContext(ctx)
	ev.AddStorePin()
	data, err := st.GetContext(ctx, d)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return nil, &storeMissError{operand: -1, digest: d.String()}
		}
		return nil, err
	}
	ev.AddOperand("digest", int64(len(data)))
	statsFrom(ctx).add(int64(len(data)))
	if s.cache != nil {
		return s.cache.shared(ctx, data)
	}
	return cubexml.ReadBytes(ctx, data, cubexml.ReadOptions{Limits: s.cfg.XML, Engine: s.cfg.ReadEngine})
}

// readExprBody extracts the expression document and the inline operands
// from the request: a bare application/json body, or a multipart form
// with an "expr" field plus ordered "operand" files.
func (s *service) readExprBody(r *http.Request) ([]byte, []exprOperand, error) {
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") || ct == "" {
		src, err := io.ReadAll(r.Body)
		if err != nil {
			return nil, nil, fmt.Errorf("reading expression body: %w", err)
		}
		return src, nil, nil
	}
	if err := r.ParseMultipartForm(8 << 20); err != nil {
		return nil, nil, fmt.Errorf("parsing multipart form: %w (POST /expr takes application/json or multipart/form-data)", err)
	}
	var src []byte
	switch {
	case len(r.MultipartForm.Value["expr"]) > 0:
		src = []byte(r.MultipartForm.Value["expr"][0])
	case len(r.MultipartForm.File["expr"]) > 0:
		f, err := r.MultipartForm.File["expr"][0].Open()
		if err != nil {
			return nil, nil, fmt.Errorf(`"expr" part: %w`, err)
		}
		src, err = io.ReadAll(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf(`"expr" part: %w`, err)
		}
	default:
		return nil, nil, fmt.Errorf(`no "expr" field in multipart request`)
	}
	files := r.MultipartForm.File["operand"]
	if s.cfg.MaxOperands > 0 && len(files) > s.cfg.MaxOperands {
		return nil, nil, fmt.Errorf("%w: %d operands exceed the limit of %d", errTooLarge, len(files), s.cfg.MaxOperands)
	}
	stats := statsFrom(r.Context())
	ev := obs.EventFromContext(r.Context())
	operands := make([]exprOperand, 0, len(files))
	for i, fh := range files {
		if err := r.Context().Err(); err != nil {
			return nil, nil, err
		}
		if s.cfg.MaxFileBytes > 0 && fh.Size > s.cfg.MaxFileBytes {
			return nil, nil, fmt.Errorf("%w: operand %d is %d bytes (per-file limit %d)", errTooLarge, i, fh.Size, s.cfg.MaxFileBytes)
		}
		f, err := fh.Open()
		if err != nil {
			return nil, nil, fmt.Errorf("operand %d: %w", i, err)
		}
		data, err := io.ReadAll(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("operand %d: %w", i, err)
		}
		if len(data) <= digestRefPeek {
			if d, ok := parseDigestRef(data); ok {
				operands = append(operands, exprOperand{digest: d, isRef: true})
				continue
			}
		}
		if err := s.verifyDigest(r.Context(), fmt.Sprintf("operand %d (%s)", i, fh.Filename),
			fh.Header.Get("Content-Digest"), data); err != nil {
			return nil, nil, err
		}
		stats.add(int64(len(data)))
		ev.AddOperand("inline", int64(len(data)))
		operands = append(operands, exprOperand{data: data, digest: store.DigestOf(data)})
	}
	return src, operands, nil
}

// exprError maps an expression-pipeline error onto a status: 400 for
// structural expression errors, 404 for digest leaves the store does not
// hold, 413 for size-guard violations, otherwise the phase default
// (400 while reading the request, 422 once evaluation started).
func (s *service) exprError(w http.ResponseWriter, r *http.Request, err error, fallback int) {
	if r.Context().Err() != nil {
		return // the timeout middleware already answered
	}
	code := fallback
	var pe *expr.ParseError
	var miss *storeMissError
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &pe):
		code = http.StatusBadRequest
	case errors.As(err, &miss):
		code = http.StatusNotFound
	case errors.As(err, &mbe), errors.Is(err, errTooLarge), errors.Is(err, cubexml.ErrLimit),
		strings.Contains(err.Error(), "request body too large"):
		code = http.StatusRequestEntityTooLarge
	}
	httpError(w, r, code, "%v", err)
}
