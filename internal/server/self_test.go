package server

// End-to-end tests of the self-telemetry loop: the server snapshots its
// own metrics into the experiment store, and the algebra over those
// snapshots — Difference via POST /expr with digest: leaves — surfaces a
// latency regression injected between two runs. This is the observability
// acceptance scenario: the server analyses itself with its own operators.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"mime/multipart"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cube/internal/cubexml"
	"cube/internal/obs"
	"cube/internal/selfcube"
	"cube/internal/store"
)

// selfTestServer is a debug-enabled, traced server with a store and
// manual-mode self-telemetry (snapshots on demand, no background loop).
func selfTestServer(t *testing.T, reg *obs.Registry) *httptest.Server {
	t.Helper()
	cfg := quietConfig()
	cfg.Metrics = reg
	cfg.Debug = true
	cfg.TraceSampleRate = 1
	cfg.SelfKeep = 8
	cfg.SelfProcess = "cube-server-test"
	srv, _ := newStoreServer(t, cfg, store.Options{})
	return srv
}

// slowBody delays the first body read, so the server spends that long
// inside the request — an injected latency regression on the route.
type slowBody struct {
	r     io.Reader
	delay time.Duration
	once  sync.Once
}

func (s *slowBody) Read(p []byte) (int, error) {
	s.once.Do(func() { time.Sleep(s.delay) })
	return s.r.Read(p)
}

// postDifference POSTs two operand documents to /op/difference, delaying
// the body by delay (0 for a fast request).
func postDifference(t *testing.T, srv *httptest.Server, delay time.Duration) {
	t.Helper()
	doc := encodeExp(t, buildExp("self-op", 0.5))
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for i := 0; i < 2; i++ {
		fw, err := mw.CreateFormFile("operand", "op.cube")
		if err != nil {
			t.Fatal(err)
		}
		fw.Write(doc)
	}
	mw.Close()
	resp, err := http.Post(srv.URL+"/op/difference", mw.FormDataContentType(),
		&slowBody{r: &body, delay: delay})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("difference: status %d", resp.StatusCode)
	}
}

func takeSnapshot(t *testing.T, srv *httptest.Server) selfcube.Run {
	t.Helper()
	resp, err := http.Post(srv.URL+"/debug/self/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var run selfcube.Run
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		t.Fatal(err)
	}
	return run
}

func TestSelfTelemetryDetectsLatencyRegression(t *testing.T) {
	reg := obs.NewRegistry()
	srv := selfTestServer(t, reg)

	// No snapshot yet: the series is enabled but empty, and there is no
	// latest document to serve.
	resp, err := http.Get(srv.URL + "/debug/self/experiment.xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("experiment.xml before any snapshot: status %d, want 404", resp.StatusCode)
	}

	// Phase 1 — healthy: fast requests, then snapshot run 1.
	for i := 0; i < 3; i++ {
		postDifference(t, srv, 0)
	}
	run1 := takeSnapshot(t, srv)

	// Phase 2 — regressed: the same traffic is now slow, then run 2.
	const injected = 120 * time.Millisecond
	const slowReqs = 3
	for i := 0; i < slowReqs; i++ {
		postDifference(t, srv, injected)
	}
	run2 := takeSnapshot(t, srv)
	if run2.Seq != run1.Seq+1 || run2.Digest == run1.Digest {
		t.Fatalf("runs did not advance: %+v then %+v", run1, run2)
	}

	// The server's own algebra over its own history: run2 − run1.
	src := `{"op":"difference","args":[{"ref":"digest:` + run2.Digest + `"},{"ref":"digest:` + run1.Digest + `"}]}`
	diff := decodeExpResponse(t, postExprJSON(t, srv, src))

	// The regression surfaces in the matching route's latency series:
	// the between-runs delta of the duration sum carries the injected
	// slowness, and the count delta is exactly the slow requests.
	route := obs.L("route", "/op/{op}")
	gotSum := selfcube.SeriesValue(diff, "cube_http_request_duration_seconds_sum", route)
	if want := float64(slowReqs) * injected.Seconds() * 0.8; gotSum < want {
		t.Errorf("duration_sum delta = %gs, want >= %gs (injected %v x %d)",
			gotSum, want, injected, slowReqs)
	}
	gotCount := selfcube.SeriesValue(diff, "cube_http_request_duration_seconds_count", route)
	if gotCount != slowReqs {
		t.Errorf("duration_count delta = %g, want %d", gotCount, slowReqs)
	}

	// The span taxonomy came along: the traced route appears in the call
	// tree of the snapshots (and hence the difference).
	if diff.FindRegion("http /op/{op}") == nil {
		t.Error("span taxonomy region 'http /op/{op}' missing from difference")
	}

	// GET /debug/self lists both runs, oldest first.
	resp, err = http.Get(srv.URL + "/debug/self")
	if err != nil {
		t.Fatal(err)
	}
	var series struct {
		Enabled bool           `json:"enabled"`
		Process string         `json:"process"`
		Runs    []selfcube.Run `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&series); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !series.Enabled || series.Process != "cube-server-test" {
		t.Errorf("series = %+v, want enabled with process cube-server-test", series)
	}
	if len(series.Runs) != 2 || series.Runs[0].Seq != run1.Seq || series.Runs[1].Seq != run2.Seq {
		t.Errorf("runs = %+v, want [run1 run2]", series.Runs)
	}

	// experiment.xml serves the newest snapshot, byte-identical to the
	// stored blob (it re-hashes to run2's digest) and parseable.
	resp, err = http.Get(srv.URL + "/debug/self/experiment.xml")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("experiment.xml: status %d", resp.StatusCode)
	}
	if got := hex.EncodeToString(func() []byte { h := sha256.Sum256(body); return h[:] }()); got != run2.Digest {
		t.Errorf("experiment.xml hashes to %s, want run2 digest %s", got, run2.Digest)
	}
	if resp.Header.Get("Content-Digest") == "" {
		t.Error("experiment.xml missing Content-Digest header")
	}
	latest, err := cubexml.Read(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("experiment.xml does not parse: %v", err)
	}
	if latest.Title != run2.Title {
		t.Errorf("latest title = %q, want %q", latest.Title, run2.Title)
	}

	// The snapshot operation itself accounted for: wide events of kind
	// "self" and the cube_self_* bookkeeping series.
	if got := reg.CounterValue("cube_self_snapshots_total"); got != 2 {
		t.Errorf("cube_self_snapshots_total = %d, want 2", got)
	}
	resp, err = http.Get(srv.URL + "/debug/events?kind=self")
	if err != nil {
		t.Fatal(err)
	}
	events := readAll(t, resp)
	if got := strings.Count(events, `"self.snapshot"`); got != 2 {
		t.Errorf("self wide events = %d, want 2 (body %q)", got, events)
	}
}

func TestSelfDisabledAnswersEnabledFalse(t *testing.T) {
	cfg := quietConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.Debug = true
	srv := httptest.NewServer(NewHandler(cfg))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/self")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var series struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&series); err != nil {
		t.Fatal(err)
	}
	if series.Enabled {
		t.Error("self-telemetry reports enabled without configuration")
	}
	// The snapshot routes are not mounted at all.
	resp2, err := http.Post(srv.URL+"/debug/self/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("snapshot without self: status %d, want 404", resp2.StatusCode)
	}
}

func TestSelfConfigValidation(t *testing.T) {
	cfg := quietConfig()
	cfg.SelfInterval = -time.Second
	if err := cfg.Validate(); err == nil {
		t.Error("negative SelfInterval passed Validate")
	}
	cfg = quietConfig()
	cfg.SelfKeep = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative SelfKeep passed Validate")
	}
	cfg = quietConfig()
	cfg.SelfInterval = time.Minute // no store
	if err := cfg.Validate(); err == nil {
		t.Error("self-telemetry without store passed Validate")
	}
}

// TestServeStartsSelfLoop exercises the serve.go wiring: with
// SelfInterval set, Serve runs the background loop and the series grows
// without any manual snapshot call.
func TestServeStartsSelfLoop(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := quietConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.Store = st
	cfg.Debug = true
	cfg.SelfInterval = 10 * time.Millisecond
	cfg.SelfKeep = 4
	cfg.handler = NewHandler(cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, ln, cfg) }()
	defer func() {
		cancel()
		<-done
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if runs := cfg.self.Runs(); len(runs) >= 2 {
			if runs[0].Seq >= runs[1].Seq {
				t.Fatalf("series not monotonic: %+v", runs)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("self loop took no snapshots within 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// BenchmarkSelfServingOverhead guards the serving-path cost of
// self-telemetry: "off" serves requests with the feature unconfigured,
// "on" serves the same requests while the snapshot loop runs at 250ms —
// already ~240x the documented 1m cadence. The two must stay within a
// few percent: snapshots happen off the request path, and the
// collector's registry walk is bounded by series count, not request
// rate. A whole snapshot (collect + XML encode + durable store commit)
// costs single-digit milliseconds, so its duty cycle at any sane
// interval is well under the budget even on one core; cranking the
// interval toward the snapshot cost itself (25ms on a 1-CPU box) only
// measures that duty cycle, not the serving path. Compare:
//
//	go test -run='^$' -bench=BenchmarkSelfServingOverhead ./internal/server
func BenchmarkSelfServingOverhead(b *testing.B) {
	doc := encodeExp(b, buildExp("bench", 0.5))
	request := func(h http.Handler) {
		var body bytes.Buffer
		mw := multipart.NewWriter(&body)
		for i := 0; i < 2; i++ {
			fw, _ := mw.CreateFormFile("operand", "op.cube")
			fw.Write(doc)
		}
		mw.Close()
		req := httptest.NewRequest(http.MethodPost, "/op/difference", &body)
		req.Header.Set("Content-Type", mw.FormDataContentType())
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
	benchCfg := func() *Config {
		cfg := quietConfig()
		cfg.Metrics = obs.NewRegistry()
		cfg.Events = obs.NewEventSink(64)
		return cfg
	}
	b.Run("off", func(b *testing.B) {
		h := NewHandler(benchCfg())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			request(h)
		}
	})
	b.Run("on", func(b *testing.B) {
		st, err := store.Open(b.TempDir(), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		cfg := benchCfg()
		cfg.Store = st
		cfg.SelfInterval = 250 * time.Millisecond
		cfg.SelfKeep = 8
		h := NewHandler(cfg)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			cfg.self.Loop(ctx)
		}()
		// Wait the loop out before b.TempDir cleanup: an in-flight
		// snapshot writing blobs during RemoveAll leaves the directory
		// non-empty mid-scan.
		b.Cleanup(func() {
			cancel()
			<-done
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			request(h)
		}
	})
}
