package server

// The wide-event introspection routes, mounted only with Config.Debug:
//
//	GET /debug/events  the retained wide events as NDJSON, oldest first.
//	                   Filters: ?kind=http|store|client|cli, ?route=<label>,
//	                   ?status=<code>, ?class=4|5 (or 4xx|5xx),
//	                   ?min_duration_ms=<float>, ?limit=<n> (newest win).
//	GET /debug/store   JSON inventory of the experiment store: blob count,
//	                   bytes vs budget, pins, degraded state, quarantine
//	                   records, op counters, last recovery.
//	GET /debug/slo     JSON per-route SLO standing over the sliding window.
//
// Together with /metrics these are what cube-top polls.

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cube/internal/obs"
	"cube/internal/store"
)

// eventFilterFromQuery parses the /debug/events query parameters.
func eventFilterFromQuery(r *http.Request) (obs.EventFilter, error) {
	q := r.URL.Query()
	f := obs.EventFilter{
		Kind:  q.Get("kind"),
		Route: q.Get("route"),
	}
	if v := q.Get("status"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 100 || n > 599 {
			return f, &queryError{"status", v, "an HTTP status code"}
		}
		f.Status = n
	}
	if v := q.Get("class"); v != "" {
		n, err := strconv.Atoi(strings.TrimSuffix(v, "xx"))
		if err != nil || n < 1 || n > 5 {
			return f, &queryError{"class", v, "a status class like 5 or 5xx"}
		}
		f.StatusClass = n
	}
	if v := q.Get("min_duration_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			return f, &queryError{"min_duration_ms", v, "a non-negative duration in ms"}
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return f, &queryError{"limit", v, "a non-negative count"}
		}
		f.Limit = n
	}
	return f, nil
}

type queryError struct{ param, got, want string }

func (e *queryError) Error() string {
	return "bad " + e.param + " parameter " + strconv.Quote(e.got) + " (want " + e.want + ")"
}

// handleEvents dumps the wide-event ring as NDJSON, oldest first. The
// flight-recorder dump includes the request reading it (emitted after
// this handler returns, so it appears on the next read).
func (s *service) handleEvents(w http.ResponseWriter, r *http.Request) {
	f, err := eventFilterFromQuery(r)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	s.events.WriteNDJSON(w, f)
}

// handleStore serves the experiment store's inventory. Without a
// configured store the route still answers, with enabled: false, so
// cube-top can poll it unconditionally.
func (s *service) handleStore(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	st := s.cfg.Store
	if st == nil {
		json.NewEncoder(w).Encode(map[string]any{"enabled": false})
		return
	}
	json.NewEncoder(w).Encode(struct {
		Enabled bool `json:"enabled"`
		store.Inventory
	}{true, st.Inventory()})
}

// handleSLO serves the per-route SLO standing; enabled: false when no
// objectives are configured.
func (s *service) handleSLO(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if s.slo == nil {
		json.NewEncoder(w).Encode(map[string]any{"enabled": false})
		return
	}
	json.NewEncoder(w).Encode(struct {
		Enabled bool `json:"enabled"`
		obs.SLOSnapshot
	}{true, s.slo.Snapshot()})
}
