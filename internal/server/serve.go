package server

import (
	"context"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
)

// Serve runs the CUBE service on ln until ctx is cancelled, then shuts
// down gracefully: the listener closes immediately, in-flight requests get
// cfg.DrainTimeout to finish, and only then are connections torn down.
// It returns nil after a clean drain; a non-nil error means the listener
// failed or the drain deadline expired (stragglers were cut off).
//
// Connection timeouts (ReadHeaderTimeout, ReadTimeout, WriteTimeout,
// IdleTimeout) come from cfg; nil cfg means DefaultConfig.
func Serve(ctx context.Context, ln net.Listener, cfg *Config) error {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	h := cfg.handler
	if h == nil {
		h = NewHandler(cfg)
	}
	// NewHandler left the self-telemetry snapshotter on cfg when
	// configured; its periodic loop shares the server's lifetime.
	if cfg.self != nil && cfg.SelfInterval > 0 {
		go cfg.self.Loop(ctx)
	}
	var errorLog *log.Logger
	if cfg.Logger != nil {
		errorLog = slog.NewLogLogger(cfg.Logger.Handler(), slog.LevelError)
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
		ReadTimeout:       cfg.ReadTimeout,
		WriteTimeout:      cfg.WriteTimeout,
		IdleTimeout:       cfg.IdleTimeout,
		ErrorLog:          errorLog,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	dctx := context.Background()
	if cfg.DrainTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(dctx, cfg.DrainTimeout)
		defer cancel()
	}
	if cfg.Logger != nil {
		cfg.Logger.Info("shutting down, draining in-flight requests",
			slog.Duration("limit", cfg.DrainTimeout))
	}
	if err := srv.Shutdown(dctx); err != nil {
		srv.Close()
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	return nil
}
