package server

// Fault-injection tests: panics, oversized and hostile uploads, saturation,
// slow requests, truncated bodies, and shutdown draining. Each asserts the
// documented degraded behavior (500/413/429/503) and that the server
// itself survives.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"mime/multipart"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cube/client"
	"cube/internal/cubexml"
)

func quietConfig() *Config {
	cfg := DefaultConfig()
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	return cfg
}

// postRaw uploads raw bytes as a single "operand" file.
func postRaw(t *testing.T, url string, contents []byte) *http.Response {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	fw, err := mw.CreateFormFile("operand", "op.cube")
	if err != nil {
		t.Fatal(err)
	}
	fw.Write(contents)
	mw.Close()
	resp, err := http.Post(url, mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestPanicRecovery(t *testing.T) {
	var logged bytes.Buffer
	var mu sync.Mutex
	cfg := quietConfig()
	cfg.Logger = slog.New(slog.NewTextHandler(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return logged.Write(p)
	}), nil))
	s := &service{cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("/panic", func(w http.ResponseWriter, r *http.Request) {
		panic("injected failure")
	})
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "still alive")
	})
	srv := httptest.NewServer(s.wrap(mux))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/panic")
	if err != nil {
		t.Fatalf("panic killed the connection: %v", err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("panic status = %d, want 500", resp.StatusCode)
	}
	readAll(t, resp)

	// The server keeps serving after the panic.
	resp, err = http.Get(srv.URL + "/ok")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || readAll(t, resp) != "still alive" {
		t.Errorf("server did not survive the panic")
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(logged.String(), "injected failure") {
		t.Errorf("panic was not logged with its value")
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestOversizedUploadDeclared(t *testing.T) {
	cfg := quietConfig()
	cfg.MaxUploadBytes = 1024
	srv := httptest.NewServer(NewHandler(cfg))
	defer srv.Close()
	resp := postRaw(t, srv.URL+"/op/flatten", bytes.Repeat([]byte("x"), 4096))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload status = %d, want 413: %s", resp.StatusCode, readAll(t, resp))
	} else {
		readAll(t, resp)
	}
}

func TestOversizedUploadChunked(t *testing.T) {
	cfg := quietConfig()
	cfg.MaxUploadBytes = 1024
	srv := httptest.NewServer(NewHandler(cfg))
	defer srv.Close()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	fw, _ := mw.CreateFormFile("operand", "op.cube")
	fw.Write(bytes.Repeat([]byte("x"), 4096))
	mw.Close()
	// Pipe the body so no Content-Length is declared; the cap must be
	// enforced while reading, not just from the header.
	pr, pw := io.Pipe()
	go func() {
		io.Copy(pw, &body)
		pw.Close()
	}()
	req, err := http.NewRequest("POST", srv.URL+"/op/flatten", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("chunked oversized upload status = %d, want 413: %s", resp.StatusCode, readAll(t, resp))
	} else {
		readAll(t, resp)
	}
}

func TestTooManyOperands(t *testing.T) {
	cfg := quietConfig()
	cfg.MaxOperands = 2
	srv := httptest.NewServer(NewHandler(cfg))
	defer srv.Close()
	resp := post(t, srv, "/op/mean", buildExp("a", 0), buildExp("b", 0), buildExp("c", 0))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("operand-count cap status = %d, want 413", resp.StatusCode)
	}
	readAll(t, resp)
}

func TestPerFileByteCap(t *testing.T) {
	cfg := quietConfig()
	cfg.MaxFileBytes = 128
	srv := httptest.NewServer(NewHandler(cfg))
	defer srv.Close()
	resp := post(t, srv, "/op/flatten", buildExp("big", 0))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("per-file cap status = %d, want 413", resp.StatusCode)
	}
	readAll(t, resp)
}

func TestXMLDepthBombRejected(t *testing.T) {
	cfg := quietConfig()
	cfg.XML = cubexml.Limits{MaxDepth: 50}
	srv := httptest.NewServer(NewHandler(cfg))
	defer srv.Close()
	var sb strings.Builder
	sb.WriteString(`<cube version="cube-go-1.0"><metrics>`)
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, `<metric id="%d"><name>m</name><uom>sec</uom>`, i)
	}
	for i := 0; i < 200; i++ {
		sb.WriteString(`</metric>`)
	}
	sb.WriteString(`</metrics></cube>`)
	resp := postRaw(t, srv.URL+"/op/flatten", []byte(sb.String()))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("depth bomb status = %d, want 413: %s", resp.StatusCode, readAll(t, resp))
	} else {
		readAll(t, resp)
	}
}

func TestTruncatedMultipartBody(t *testing.T) {
	srv := httptest.NewServer(NewHandler(quietConfig()))
	defer srv.Close()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	fw, _ := mw.CreateFormFile("operand", "op.cube")
	fw.Write([]byte("<cube version=\"cube-go-1.0\"></cube>"))
	mw.Close()
	truncated := body.Bytes()[:body.Len()/2]
	resp, err := http.Post(srv.URL+"/op/flatten", mw.FormDataContentType(), bytes.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated multipart status = %d, want 400", resp.StatusCode)
	}
	readAll(t, resp)
}

func TestRequestTimeout(t *testing.T) {
	cfg := quietConfig()
	cfg.RequestTimeout = 50 * time.Millisecond
	s := &service{cfg: cfg}
	started := make(chan struct{}, 1)
	h := s.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		select { // a slow operand pipeline that does honor the context
		case <-time.After(2 * time.Second):
			io.WriteString(w, "too late")
		case <-r.Context().Done():
		}
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	start := time.Now()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("slow request status = %d, want 503", resp.StatusCode)
	}
	if body := readAll(t, resp); !strings.Contains(body, "timed out") {
		t.Errorf("timeout body = %q", body)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timeout took %v, want ~50ms", elapsed)
	}
}

func TestSaturationReturns429(t *testing.T) {
	cfg := quietConfig()
	cfg.MaxConcurrent = 1
	cfg.RetryAfter = 3 * time.Second
	s := &service{cfg: cfg}
	entered := make(chan struct{})
	release := make(chan struct{})
	h := s.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		io.WriteString(w, "done")
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	firstDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/")
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("held request status %d", resp.StatusCode)
			}
		}
		firstDone <- err
	}()
	<-entered // the only slot is now held

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("saturated status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	readAll(t, resp)

	close(release)
	if err := <-firstDone; err != nil {
		t.Errorf("held request failed: %v", err)
	}

	// Capacity is restored after the first request drains (release is
	// already closed, so the handler passes straight through).
	go func() { <-entered }()
	resp2, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("post-drain status = %d, want 200", resp2.StatusCode)
	}
	readAll(t, resp2)
}

func TestSemaphoreWeight(t *testing.T) {
	s := &service{cfg: &Config{MaxConcurrent: 4, MaxFileBytes: 1000}}
	cases := []struct {
		contentLength int64
		want          int64
	}{
		{-1, 1},     // chunked: minimum weight
		{0, 1},      // empty body
		{500, 1},    // below one quantum
		{3500, 4},   // 1 + 3 quanta
		{999999, 4}, // clamped to capacity so it can still run alone
	}
	for _, c := range cases {
		r := httptest.NewRequest("POST", "/op/mean", nil)
		r.ContentLength = c.contentLength
		if got := s.weight(r); got != c.want {
			t.Errorf("weight(ContentLength=%d) = %d, want %d", c.contentLength, got, c.want)
		}
	}

	sem := &semaphore{cap: 4}
	if !sem.tryAcquire(4) {
		t.Fatal("full acquire failed")
	}
	if sem.tryAcquire(1) {
		t.Fatal("over-acquire succeeded")
	}
	sem.release(4)
	if !sem.tryAcquire(1) {
		t.Fatal("acquire after release failed")
	}
}

// TestClientRecoversFromSaturation closes the loop: the real limiter
// rejects with 429 and the cube/client backoff turns that into an
// eventual success once the slot frees up.
func TestClientRecoversFromSaturation(t *testing.T) {
	cfg := quietConfig()
	cfg.MaxConcurrent = 1
	cfg.RetryAfter = 0 // advertise immediate retry; client still backs off
	s := &service{cfg: cfg}
	entered := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/hold", func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		io.WriteString(w, "held")
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	srv := httptest.NewServer(s.wrap(mux))
	defer srv.Close()

	go func() {
		resp, err := http.Get(srv.URL + "/hold")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()

	c := client.New(srv.URL, client.WithMaxRetries(100), client.WithBackoff(2*time.Millisecond, 20*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("client did not recover from saturation: %v", err)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	cfg := quietConfig()
	cfg.DrainTimeout = 5 * time.Second
	entered := make(chan struct{})
	cfg.handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		time.Sleep(150 * time.Millisecond)
		io.WriteString(w, "drained")
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- Serve(ctx, ln, cfg) }()

	url := "http://" + ln.Addr().String()
	type result struct {
		body string
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get(url + "/")
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		resc <- result{body: string(b), err: err}
	}()
	<-entered // the request is in flight
	cancel()  // trigger shutdown while it runs

	res := <-resc
	if res.err != nil || res.body != "drained" {
		t.Errorf("in-flight request not drained: body=%q err=%v", res.body, res.err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("Serve returned %v after clean drain, want nil", err)
	}

	// The listener is closed: new connections must fail.
	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond)
	if err == nil {
		conn.Close()
		t.Errorf("listener still accepting after shutdown")
	}
}

func TestShutdownDeadlineCutsOffStragglers(t *testing.T) {
	cfg := quietConfig()
	cfg.DrainTimeout = 50 * time.Millisecond
	entered := make(chan struct{})
	cfg.handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		time.Sleep(2 * time.Second)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- Serve(ctx, ln, cfg) }()

	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	cancel()
	select {
	case err := <-serveErr:
		if err == nil {
			t.Errorf("Serve returned nil although the drain deadline expired")
		}
	case <-time.After(3 * time.Second):
		t.Errorf("Serve did not return after the drain deadline")
	}
}
