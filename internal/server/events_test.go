package server

// Wide-event end-to-end tests: every response — success, client error,
// unprocessable operands, panics, degraded-store 503s — produces exactly
// one "http" event whose request_id matches the X-Request-ID the client
// saw, and the /debug/events, /debug/store, and /debug/slo routes expose
// the telemetry (only) when the debug gate is open.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"syscall"
	"testing"
	"time"

	"cube/internal/obs"
	"cube/internal/store"
)

// waitEvents waits for the sink to retain n events: the middleware emits
// after the response is flushed, so the client can observe the response a
// beat before the event lands in the ring.
func waitEvents(t *testing.T, sink *obs.EventSink, n int64) []*obs.EventFields {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for sink.Total() < n {
		if time.Now().After(deadline) {
			t.Fatalf("sink retained %d events, want %d", sink.Total(), n)
		}
		time.Sleep(time.Millisecond)
	}
	return sink.Events()
}

// TestEveryResponseEmitsOneWideEvent drives one request per outcome class
// through the full handler and asserts the exactly-one-event invariant,
// with the event's request ID matching the header on the wire.
func TestEveryResponseEmitsOneWideEvent(t *testing.T) {
	sink := obs.NewEventSink(32)
	cfg := quietConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.Events = sink
	srv := httptest.NewServer(NewHandler(cfg))
	defer srv.Close()

	do := func(wantStatus int, send func() *http.Response) *obs.EventFields {
		t.Helper()
		before := sink.Total()
		resp := send()
		readAll(t, resp)
		if resp.StatusCode != wantStatus {
			t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
		}
		events := waitEvents(t, sink, before+1)
		if got := sink.Total(); got != before+1 {
			t.Fatalf("request produced %d events, want exactly 1", got-before)
		}
		f := events[len(events)-1]
		if err := obs.ValidateEvent(f); err != nil {
			t.Errorf("event invalid: %v\n%+v", err, f)
		}
		if f.Status != wantStatus {
			t.Errorf("event status = %d, want %d", f.Status, wantStatus)
		}
		if id := resp.Header.Get("X-Request-ID"); f.RequestID != id {
			t.Errorf("event request_id = %q, header said %q", f.RequestID, id)
		}
		return f
	}

	// 200 with full operand and kernel attribution.
	f := do(http.StatusOK, func() *http.Response {
		return post(t, srv, "/op/difference", buildExp("a", 1), buildExp("b", 0))
	})
	if f.Route != "/op/{op}" || f.Method != "POST" || f.Op != "difference" {
		t.Errorf("route/method/op = %q/%q/%q", f.Route, f.Method, f.Op)
	}
	if f.Operands != 2 || f.InlineOperands != 2 || f.OperandBytes <= 0 {
		t.Errorf("operand attribution = %+v", f)
	}
	if f.KernelShards < 1 || f.KernelTuples <= 0 || f.KernelCells <= 0 {
		t.Errorf("kernel attribution missing: %+v", f)
	}
	if f.XMLReadBytes <= 0 || f.XMLWriteBytes <= 0 {
		t.Errorf("codec attribution missing: %+v", f)
	}
	if f.ResponseBytes != f.XMLWriteBytes {
		t.Errorf("response_bytes = %d, xml_write_bytes = %d", f.ResponseBytes, f.XMLWriteBytes)
	}
	// The default config has a parse cache: two fresh operands miss twice.
	if f.ParseCacheMisses != 2 || f.ParseCacheHits != 0 {
		t.Errorf("parse cache = %d hits / %d misses, want 0/2", f.ParseCacheHits, f.ParseCacheMisses)
	}

	// Repeating one operand hits the cache.
	f = do(http.StatusOK, func() *http.Response {
		return post(t, srv, "/op/flatten", buildExp("a", 1))
	})
	if f.ParseCacheHits != 1 || f.ParseCacheMisses != 0 {
		t.Errorf("repeat parse cache = %d hits / %d misses, want 1/0", f.ParseCacheHits, f.ParseCacheMisses)
	}

	// 404: a route the mux does not know.
	f = do(http.StatusNotFound, func() *http.Response {
		resp, err := http.Get(srv.URL + "/no/such/route")
		if err != nil {
			t.Fatal(err)
		}
		return resp
	})
	if f.Route != "other" {
		t.Errorf("unknown-path route label = %q, want other", f.Route)
	}

	// 400: hostile multipart body.
	do(http.StatusBadRequest, func() *http.Response {
		resp, err := http.Post(srv.URL+"/op/difference",
			"multipart/form-data; boundary=x", strings.NewReader("garbage"))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	})

	// 422: well-formed operands the operator rejects (arity mismatch is
	// 400; an operand that is not a CUBE document is 400 too — prune with
	// an unknown metric is the clean 422).
	do(http.StatusUnprocessableEntity, func() *http.Response {
		return post(t, srv, "/op/prune?metric=nope&threshold=0.5", buildExp("a", 0))
	})
}

// TestPanicEmitsWideEvent pins the invariant on the worst path: a handler
// panic still yields exactly one event, carrying the 500 the recovery
// middleware wrote.
func TestPanicEmitsWideEvent(t *testing.T) {
	sink := obs.NewEventSink(8)
	s := &service{cfg: quietConfig(), events: sink}
	mux := http.NewServeMux()
	mux.HandleFunc("/panic", func(w http.ResponseWriter, r *http.Request) {
		panic("injected failure")
	})
	srv := httptest.NewServer(s.wrap(mux))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/panic")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	events := waitEvents(t, sink, 1)
	if len(events) != 1 {
		t.Fatalf("panic produced %d events, want 1", len(events))
	}
	f := events[0]
	if f.Status != http.StatusInternalServerError {
		t.Errorf("panic event status = %d, want 500", f.Status)
	}
	if f.RequestID != resp.Header.Get("X-Request-ID") {
		t.Errorf("panic event request_id = %q, header %q", f.RequestID, resp.Header.Get("X-Request-ID"))
	}
}

// TestDegradedStoreEmitsWideEvents drives the store into degraded mode
// over HTTP: the tripping 500, the fast-fail 503, and the store lifecycle
// events all land in the one shared sink.
func TestDegradedStoreEmitsWideEvents(t *testing.T) {
	sink := obs.NewEventSink(32)
	ffs := store.NewFaultFS(nil)
	cfg := quietConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.Events = sink
	cfg.Debug = true
	srv, _ := newStoreServer(t, cfg, store.Options{
		FS:               ffs,
		Events:           sink,
		FailureThreshold: 1,
		ProbeInterval:    time.Minute,
	})

	doc := encodeExp(t, buildExp("fresh", 0))
	d := store.DigestOf(doc)
	ffs.Inject(&store.Fault{Op: "sync", Path: ".tmp-", Err: syscall.ENOSPC})
	resp := putExperiment(t, srv, d.String(), doc, "")
	if readAll(t, resp); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("tripping PUT status = %d, want 500", resp.StatusCode)
	}
	resp = putExperiment(t, srv, d.String(), doc, "")
	if readAll(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded PUT status = %d, want 503", resp.StatusCode)
	}

	// Four events total: the store's recovery event at open, the tripping
	// PUT's http 500, the degraded_enter transition, and the http 503.
	var http500, http503, degradedEnter int
	for _, f := range waitEvents(t, sink, 4) {
		switch {
		case f.Kind == "http" && f.Status == 500:
			http500++
		case f.Kind == "http" && f.Status == 503:
			http503++
		case f.Kind == "store" && f.StoreEvent == "degraded_enter":
			degradedEnter++
		}
	}
	if http500 != 1 || http503 != 1 || degradedEnter != 1 {
		t.Errorf("events: %d 500s, %d 503s, %d degraded_enter, want 1 each", http500, http503, degradedEnter)
	}

	// The inventory endpoint must agree with the fault-injected state.
	resp, err := http.Get(srv.URL + "/debug/store")
	if err != nil {
		t.Fatal(err)
	}
	var inv struct {
		Enabled        bool   `json:"enabled"`
		Degraded       bool   `json:"degraded"`
		DegradedReason string `json:"degraded_reason"`
	}
	if err := json.Unmarshal([]byte(readAll(t, resp)), &inv); err != nil {
		t.Fatal(err)
	}
	if !inv.Enabled || !inv.Degraded || inv.DegradedReason == "" {
		t.Errorf("/debug/store = %+v, want enabled + degraded with a reason", inv)
	}
}

// TestDebugRoutesGated asserts the single -debug gate: with it off every
// /debug/* route 404s; with it on they all serve.
func TestDebugRoutesGated(t *testing.T) {
	routes := []string{"/debug/vars", "/debug/pprof/", "/debug/events", "/debug/store", "/debug/slo"}

	off := newTestServer(t) // quietConfig: Debug off
	for _, route := range routes {
		resp, err := http.Get(off.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s with debug off: status %d, want 404", route, resp.StatusCode)
		}
	}

	cfg := quietConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.Debug = true
	on := httptest.NewServer(NewHandler(cfg))
	defer on.Close()
	for _, route := range routes {
		resp, err := http.Get(on.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s with debug on: status %d, want 200", route, resp.StatusCode)
		}
	}
}

// TestDebugEventsEndpoint exercises the NDJSON export and its filters over
// HTTP.
func TestDebugEventsEndpoint(t *testing.T) {
	cfg := quietConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.Debug = true
	sink := obs.NewEventSink(32)
	cfg.Events = sink
	srv := httptest.NewServer(NewHandler(cfg))
	defer srv.Close()

	readAll(t, post(t, srv, "/op/flatten", buildExp("a", 0)))
	if resp, err := http.Get(srv.URL + "/nope"); err != nil {
		t.Fatal(err)
	} else {
		readAll(t, resp)
	}
	waitEvents(t, sink, 2)

	fetch := func(query string) []map[string]any {
		t.Helper()
		resp, err := http.Get(srv.URL + "/debug/events" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("/debug/events%s status %d: %s", query, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
			t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
		}
		var out []map[string]any
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var doc map[string]any
			if err := json.Unmarshal(sc.Bytes(), &doc); err != nil {
				t.Fatalf("line %d is not JSON: %v\n%s", len(out)+1, err, sc.Text())
			}
			out = append(out, doc)
		}
		return out
	}

	all := fetch("")
	if len(all) < 2 {
		t.Fatalf("unfiltered dump has %d events, want >= 2", len(all))
	}
	for _, doc := range all {
		for _, key := range []string{"kind", "time", "route", "status", "duration_ms", "request_id"} {
			if _, ok := doc[key]; !ok {
				t.Errorf("event line missing %q: %v", key, doc)
			}
		}
	}
	for _, doc := range fetch("?route=/op/{op}") {
		if doc["route"] != "/op/{op}" {
			t.Errorf("route filter leaked %v", doc["route"])
		}
	}
	for _, doc := range fetch("?class=4xx") {
		if int(doc["status"].(float64))/100 != 4 {
			t.Errorf("class filter leaked status %v", doc["status"])
		}
	}
	if got := fetch("?limit=1"); len(got) != 1 {
		t.Errorf("limit=1 returned %d events", len(got))
	}
	resp, err := http.Get(srv.URL + "/debug/events?status=banana")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad status filter answered %d, want 400", resp.StatusCode)
	}
}

// TestDebugStoreEndpoint asserts the inventory JSON over HTTP, and the
// enabled:false answer without a store.
func TestDebugStoreEndpoint(t *testing.T) {
	cfg := quietConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.Debug = true
	srv, _ := newStoreServer(t, cfg, store.Options{Budget: 1 << 20})

	doc := encodeExp(t, buildExp("stored", 0))
	d := store.DigestOf(doc)
	readAll(t, putExperiment(t, srv, d.String(), doc, ""))

	resp, err := http.Get(srv.URL + "/debug/store")
	if err != nil {
		t.Fatal(err)
	}
	var inv struct {
		Enabled bool    `json:"enabled"`
		Blobs   int     `json:"blobs"`
		Bytes   int64   `json:"bytes"`
		Budget  int64   `json:"budget"`
		Puts    int64   `json:"puts"`
		Press   float64 `json:"pressure"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !inv.Enabled || inv.Blobs != 1 || inv.Bytes != int64(len(doc)) || inv.Puts != 1 {
		t.Errorf("inventory = %+v", inv)
	}
	if inv.Budget != 1<<20 || inv.Press <= 0 {
		t.Errorf("budget/pressure = %d/%g", inv.Budget, inv.Press)
	}

	// No store configured: enabled false.
	cfg2 := quietConfig()
	cfg2.Metrics = obs.NewRegistry()
	cfg2.Debug = true
	bare := httptest.NewServer(NewHandler(cfg2))
	defer bare.Close()
	resp, err = http.Get(bare.URL + "/debug/store")
	if err != nil {
		t.Fatal(err)
	}
	var barerep struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&barerep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if barerep.Enabled {
		t.Error("store reported enabled without one configured")
	}
}

// TestSLOEndToEnd configures objectives, drives traffic with a known error
// mix, and asserts the burn math on /debug/slo and the ppm gauges on
// /metrics.
func TestSLOEndToEnd(t *testing.T) {
	cfg := quietConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.Debug = true
	cfg.SLOAvailability = 0.9 // error budget: 10% of requests
	cfg.SLOLatency = 10 * time.Second
	srv := httptest.NewServer(NewHandler(cfg))
	defer srv.Close()

	// Four successes on the op route, one 404 on "other" — client errors
	// must not burn availability budget.
	for i := 0; i < 4; i++ {
		readAll(t, post(t, srv, "/op/flatten", buildExp("a", 0)))
	}
	resp, err := http.Get(srv.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)

	resp, err = http.Get(srv.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Enabled            bool    `json:"enabled"`
		Window             string  `json:"window"`
		AvailabilityTarget float64 `json:"availability_target"`
		Routes             []struct {
			Route            string  `json:"route"`
			Total            int64   `json:"total"`
			Errors           int64   `json:"errors"`
			AvailabilityBurn float64 `json:"availability_burn"`
			BudgetRemaining  float64 `json:"budget_remaining"`
		} `json:"routes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !rep.Enabled || rep.AvailabilityTarget != 0.9 || rep.Window == "" {
		t.Fatalf("slo report header = %+v", rep)
	}
	byRoute := map[string]int64{}
	for _, rt := range rep.Routes {
		byRoute[rt.Route] = rt.Total
		if rt.Route == "/op/{op}" {
			if rt.Errors != 0 || rt.AvailabilityBurn != 0 || rt.BudgetRemaining != 1 {
				t.Errorf("healthy route burned budget: %+v", rt)
			}
		}
	}
	// Observe runs after the handler returns, so the snapshot excludes
	// the /debug/slo request reading it.
	if byRoute["/op/{op}"] != 4 {
		t.Errorf("op route total = %d, want 4", byRoute["/op/{op}"])
	}
	if byRoute["other"] != 1 {
		t.Errorf("other route total = %d, want 1", byRoute["other"])
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, mresp)
	if !strings.Contains(body, "cube_slo_availability_burn_ppm") {
		t.Errorf("metrics exposition missing cube_slo_availability_burn_ppm:\n%.400s", body)
	}
}

// TestDebugEventsCombinedFilters: kind, route, status, and
// min_duration_ms given together must intersect — of four requests that
// each match some of the filters, only the slow successful operator
// request matches all of them.
func TestDebugEventsCombinedFilters(t *testing.T) {
	cfg := quietConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.Debug = true
	sink := obs.NewEventSink(32)
	cfg.Events = sink
	srv := httptest.NewServer(NewHandler(cfg))
	defer srv.Close()

	readAll(t, post(t, srv, "/op/flatten", buildExp("fast", 0))) // 200, fast: fails min_duration_ms
	postDifference(t, srv, 120*time.Millisecond)                 // 200, slow: matches everything
	// Same route, non-200: difference needs two operands.
	readAll(t, post(t, srv, "/op/difference", buildExp("lonely", 0)))
	if resp, err := http.Get(srv.URL + "/nope"); err != nil { // 404, different route
		t.Fatal(err)
	} else {
		readAll(t, resp)
	}
	waitEvents(t, sink, 4)

	query := "?kind=http&route=" + url.QueryEscape("/op/{op}") + "&status=200&min_duration_ms=80"
	resp, err := http.Get(srv.URL + "/debug/events" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("combined filter: status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var docs []map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var doc map[string]any
		if err := json.Unmarshal(sc.Bytes(), &doc); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", len(docs)+1, err, sc.Text())
		}
		docs = append(docs, doc)
	}
	if len(docs) != 1 {
		t.Fatalf("combined filter matched %d events, want exactly the slow 200:\n%v", len(docs), docs)
	}
	doc := docs[0]
	if doc["kind"] != "http" || doc["route"] != "/op/{op}" {
		t.Errorf("survivor = kind %v route %v, want http /op/{op}", doc["kind"], doc["route"])
	}
	if int(doc["status"].(float64)) != 200 {
		t.Errorf("survivor status = %v, want 200", doc["status"])
	}
	if ms := doc["duration_ms"].(float64); ms < 80 {
		t.Errorf("survivor duration_ms = %v, want >= 80", ms)
	}

	// The same conjunction with an unsatisfiable member answers an empty
	// (but well-formed) dump, not an error.
	resp2, err := http.Get(srv.URL + "/debug/events" + query + "&class=5xx")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp2); resp2.StatusCode != http.StatusOK || strings.TrimSpace(body) != "" {
		t.Errorf("unsatisfiable conjunction: status %d body %q, want 200 and empty", resp2.StatusCode, body)
	}
}
