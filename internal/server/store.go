package server

// The experiment-store routes: upload-once/reference-by-digest operands.
//
//	PUT  /experiments/{sha256}   commit a CUBE XML document under its
//	                             content address (idempotent; the body
//	                             must hash to the URL digest)
//	GET  /experiments/{sha256}   fetch the committed bytes (digest-verified
//	                             by the store on every read)
//	HEAD /experiments/{sha256}   existence + size, no body
//	GET  /readyz                 readiness; 503 + JSON naming degraded
//	                             mode while the store is read-only
//
// Operator endpoints accept stored operands by reference: a multipart
// "operand" part whose body is `digest:<sha256-hex>` resolves to the
// stored blob instead of uploaded bytes, so large experiments cross the
// wire once. Referenced blobs are pinned for the life of the resolution,
// so LRU eviction under budget pressure can never pull an operand out
// from under an in-flight request.

import (
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cube/internal/core"
	"cube/internal/cubexml"
	"cube/internal/obs"
	"cube/internal/store"
)

// digestRefPrefix marks an operand part as a store reference. CUBE XML
// starts with '<', so the prefix cannot collide with a literal operand.
const digestRefPrefix = "digest:"

// digestRefPeek bounds how many leading bytes of an operand part are
// examined for a reference: prefix + hex digest + whitespace slack.
const digestRefPeek = len(digestRefPrefix) + 2*sha256.Size + 16

// parseDigestRef recognizes a digest-reference operand body.
func parseDigestRef(b []byte) (store.Digest, bool) {
	s := strings.TrimSpace(string(b))
	if !strings.HasPrefix(s, digestRefPrefix) {
		return store.Digest{}, false
	}
	return store.ParseDigest(strings.TrimSpace(s[len(digestRefPrefix):]))
}

// storeMissError is a digest reference to a blob the store does not hold;
// operands() maps it to 404 so clients know to upload and retry.
type storeMissError struct {
	operand int
	digest  string
}

func (e *storeMissError) Error() string {
	who := fmt.Sprintf("operand %d", e.operand)
	if e.operand < 0 {
		who = "expression leaf"
	}
	return fmt.Sprintf("%s: experiment %s is not in the store (upload it with PUT /experiments/%s)",
		who, e.digest, e.digest)
}

// resolveDigestOperand turns a digest reference into a parsed experiment:
// pin (recorded in *pinned; the caller unpins when resolution of all
// operands is complete), read the verified bytes, parse — through the
// content-addressed parse cache when enabled, so a repeatedly referenced
// operand is decoded exactly once.
func (s *service) resolveDigestOperand(ctx context.Context, i int, d store.Digest, pinned *[]store.Digest) (*core.Experiment, int64, error) {
	st := s.cfg.Store
	if st == nil {
		return nil, 0, fmt.Errorf("operand %d is a digest reference but no experiment store is configured", i)
	}
	if !st.Pin(d) {
		return nil, 0, &storeMissError{operand: i, digest: d.String()}
	}
	*pinned = append(*pinned, d)
	obs.EventFromContext(ctx).AddStorePin()
	data, err := st.GetContext(ctx, d)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return nil, 0, &storeMissError{operand: i, digest: d.String()}
		}
		return nil, 0, fmt.Errorf("operand %d: %w", i, err)
	}
	var e *core.Experiment
	if s.cache != nil {
		e, err = s.cache.get(ctx, data)
	} else {
		e, err = cubexml.ReadBytes(ctx, data, cubexml.ReadOptions{Limits: s.cfg.XML, Engine: s.cfg.ReadEngine})
	}
	if err != nil {
		return nil, 0, fmt.Errorf("operand %d (digest %s): %w", i, d, err)
	}
	return e, int64(len(data)), nil
}

// parseExperimentDigest extracts the {digest} path value.
func parseExperimentDigest(w http.ResponseWriter, r *http.Request) (store.Digest, bool) {
	d, ok := store.ParseDigest(r.PathValue("digest"))
	if !ok {
		httpError(w, r, http.StatusBadRequest,
			"bad experiment digest %q (want 64 hex chars of the document's SHA-256)", r.PathValue("digest"))
	}
	return d, ok
}

// contentDigestHeader renders d as an RFC 9530 Content-Digest value.
func contentDigestHeader(d store.Digest) string {
	return "sha-256=:" + base64.StdEncoding.EncodeToString(d[:]) + ":"
}

// retryAfterSeconds is the Retry-After hint on degraded-store 503s: the
// configured 429 hint, floored at one second so clients always back off.
func (s *service) retryAfterSeconds() string {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// handleExperimentPut commits an uploaded document under its content
// address. The body must hash to the URL digest (400 otherwise) and must
// parse as a CUBE experiment (422) before it is written; a degraded
// (read-only) store answers 503 with a Retry-After hint. The route is
// idempotent: re-uploading a committed digest is a cheap 200.
func (s *service) handleExperimentPut(w http.ResponseWriter, r *http.Request) {
	d, ok := parseExperimentDigest(w, r)
	if !ok {
		return
	}
	st := s.cfg.Store
	writeResult := func(status int, size int64, created bool) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]any{
			"digest": d.String(), "bytes": size, "created": created,
		})
	}
	if size, ok := st.Stat(d); ok {
		writeResult(http.StatusOK, size, false)
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		code := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, r, code, "reading upload: %v", err)
		return
	}
	if s.cfg.MaxFileBytes > 0 && int64(len(data)) > s.cfg.MaxFileBytes {
		httpError(w, r, http.StatusRequestEntityTooLarge,
			"%v: upload is %d bytes (per-file limit %d)", errTooLarge, len(data), s.cfg.MaxFileBytes)
		return
	}
	if got := store.DigestOf(data); got != d {
		if s.reg != nil {
			s.reg.Counter("cube_digest_mismatch_total").Inc()
		}
		httpError(w, r, http.StatusBadRequest,
			"body hashes to %s, URL names %s: refusing to store corrupt upload", got, d)
		return
	}
	if err := s.verifyDigest(r.Context(), "PUT /experiments", r.Header.Get("Content-Digest"), data); err != nil {
		httpError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	// The store holds experiments, not arbitrary bytes: reject documents
	// that do not parse before committing disk space to them. Parsing
	// through the cache also pre-warms the entry the first digest
	// reference will hit.
	if s.cache != nil {
		_, err = s.cache.get(r.Context(), data)
	} else {
		_, err = cubexml.ReadBytes(r.Context(), data, cubexml.ReadOptions{Limits: s.cfg.XML, Engine: s.cfg.ReadEngine})
	}
	if err != nil {
		if errors.Is(err, cubexml.ErrLimit) {
			httpError(w, r, http.StatusRequestEntityTooLarge, "%v", err)
			return
		}
		httpError(w, r, http.StatusUnprocessableEntity, "upload is not a CUBE experiment: %v", err)
		return
	}
	_, created, err := st.PutContext(r.Context(), data, &d)
	switch {
	case errors.Is(err, store.ErrDegraded):
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		httpError(w, r, http.StatusServiceUnavailable, "experiment store is read-only: %v", err)
		return
	case errors.Is(err, store.ErrTooLarge):
		httpError(w, r, http.StatusRequestEntityTooLarge, "%v", err)
		return
	case err != nil:
		s.logError(r.Context(), "experiment store write failed", "digest", d.String(), "err", err)
		httpError(w, r, http.StatusInternalServerError, "storing experiment: %v", err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeResult(status, int64(len(data)), created)
}

// handleExperimentGet serves a committed blob (GET) or its existence and
// size (HEAD). The store verifies the bytes against the digest on every
// read; corrupt blobs are quarantined and reported 404, never served.
func (s *service) handleExperimentGet(w http.ResponseWriter, r *http.Request) {
	d, ok := parseExperimentDigest(w, r)
	if !ok {
		return
	}
	st := s.cfg.Store
	if r.Method == http.MethodHead {
		size, ok := st.Stat(d)
		if !ok {
			httpError(w, r, http.StatusNotFound, "experiment %s is not in the store", d)
			return
		}
		w.Header().Set("Content-Type", "application/xml; charset=utf-8")
		w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
		w.Header().Set("Content-Digest", contentDigestHeader(d))
		w.WriteHeader(http.StatusOK)
		return
	}
	data, err := st.GetContext(r.Context(), d)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			httpError(w, r, http.StatusNotFound, "experiment %s is not in the store", d)
			return
		}
		httpError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set("Content-Digest", contentDigestHeader(d))
	w.Write(data)
}

// handleReadyz is the readiness probe: 200 while the service can do its
// whole job, 503 + a JSON body naming the degraded component while the
// experiment store is read-only (reads and cached compute still serve;
// load balancers should prefer healthy replicas for uploads). Liveness
// stays on /healthz — a degraded store is not a reason to restart the
// process. Both routes bypass the concurrency limiter.
func (s *service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if st := s.cfg.Store; st != nil {
		if degraded, why := st.Degraded(); degraded {
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{
				"status":    "degraded",
				"component": "experiment-store",
				"mode":      "read-only",
				"reason":    why,
			})
			return
		}
	}
	json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}
