package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/base64"
	"fmt"
	"log/slog"
	"math/rand"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cube/internal/core"
	"cube/internal/cubexml"
	"cube/internal/obs"
)

func encodeExp(t testing.TB, e *core.Experiment) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := cubexml.Write(&buf, e); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func counter(reg *obs.Registry, name string) int64 { return reg.Counter(name).Value() }

func TestParseCacheHitMiss(t *testing.T) {
	reg := obs.NewRegistry()
	pc := newParseCache(1<<20, cubexml.DefaultLimits, cubexml.EngineAuto, reg)
	want := buildExp("cached", 0)
	data := encodeExp(t, want)

	first, err := pc.get(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	second, err := pc.get(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	if got := counter(reg, "cube_parse_cache_misses_total"); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := counter(reg, "cube_parse_cache_hits_total"); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if first.Fingerprint() != want.Fingerprint() || second.Fingerprint() != want.Fingerprint() {
		t.Error("cached experiment differs from the original")
	}
	// Clones are private: mutating one result must not leak into another.
	m, c, th := first.Metrics()[0], first.CallNodes()[0], first.Threads()[0]
	first.SetSeverity(m, c, th, 1e9)
	if second.Fingerprint() != want.Fingerprint() {
		t.Error("mutating one cache result changed another")
	}
	third, err := pc.get(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	if third.Fingerprint() != want.Fingerprint() {
		t.Error("mutating a cache result changed the master")
	}
}

func TestParseCacheSingleflightWait(t *testing.T) {
	reg := obs.NewRegistry()
	pc := newParseCache(1<<20, cubexml.DefaultLimits, cubexml.EngineAuto, reg)
	want := buildExp("inflight", 0)
	data := encodeExp(t, want)

	// Install an in-progress flight by hand, then resolve it while a
	// lookup is blocked on it: deterministic coverage of the wait path.
	master, err := cubexml.ReadBytes(context.Background(), data, cubexml.ReadOptions{Limits: cubexml.DefaultLimits})
	if err != nil {
		t.Fatal(err)
	}
	master.CompactSeverities()
	fl := &flight{}
	fl.wg.Add(1)
	pc.flights[sha256.Sum256(data)] = fl
	go func() {
		time.Sleep(10 * time.Millisecond)
		fl.e = master
		fl.wg.Done()
	}()
	got, err := pc.get(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("waiter got a different experiment")
	}
	if hits := counter(reg, "cube_parse_cache_hits_total"); hits != 1 {
		t.Errorf("hits = %d, want 1 (waiter counts as hit)", hits)
	}
	if misses := counter(reg, "cube_parse_cache_misses_total"); misses != 0 {
		t.Errorf("misses = %d, want 0", misses)
	}

	// And the error side: waiters share the leader's failure.
	badKey := sha256.Sum256([]byte("bad"))
	flErr := &flight{}
	flErr.wg.Add(1)
	pc.flights[badKey] = flErr
	wantErr := fmt.Errorf("boom")
	go func() {
		time.Sleep(10 * time.Millisecond)
		flErr.err = wantErr
		flErr.wg.Done()
	}()
	if _, err := pc.get(context.Background(), []byte("bad")); err != wantErr {
		t.Errorf("waiter error = %v, want shared %v", err, wantErr)
	}
}

func TestParseCacheEviction(t *testing.T) {
	reg := obs.NewRegistry()
	docs := [][]byte{
		encodeExp(t, buildExp("a", 0)),
		encodeExp(t, buildExp("b", 0.25)),
		encodeExp(t, buildExp("c", 0.5)),
	}
	budget := int64(len(docs[0])+len(docs[1])) + 16 // room for two, not three
	pc := newParseCache(budget, cubexml.DefaultLimits, cubexml.EngineAuto, reg)
	for _, d := range docs {
		if _, err := pc.get(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	if got := counter(reg, "cube_parse_cache_evictions_total"); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if pc.bytes > budget {
		t.Errorf("cache holds %d bytes, budget %d", pc.bytes, budget)
	}
	if got := reg.Gauge("cube_parse_cache_bytes").Value(); int64(got) != pc.bytes {
		t.Errorf("bytes gauge = %v, want %d", got, pc.bytes)
	}
	// docs[0] was least recently used, so it went first.
	if _, ok := pc.entries[sha256.Sum256(docs[0])]; ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := pc.entries[sha256.Sum256(docs[2])]; !ok {
		t.Error("most recent entry was evicted")
	}
	// Re-fetching the evicted operand is a miss again.
	if _, err := pc.get(context.Background(), docs[0]); err != nil {
		t.Fatal(err)
	}
	if got := counter(reg, "cube_parse_cache_misses_total"); got != 4 {
		t.Errorf("misses = %d, want 4", got)
	}
}

func TestParseCacheOversizedNotCached(t *testing.T) {
	reg := obs.NewRegistry()
	data := encodeExp(t, buildExp("big", 0))
	pc := newParseCache(int64(len(data))-1, cubexml.DefaultLimits, cubexml.EngineAuto, reg)
	for i := 0; i < 2; i++ {
		if _, err := pc.get(context.Background(), data); err != nil {
			t.Fatal(err)
		}
	}
	if got := counter(reg, "cube_parse_cache_misses_total"); got != 2 {
		t.Errorf("misses = %d, want 2 (oversized operand must not be cached)", got)
	}
	if pc.lru.Len() != 0 || pc.bytes != 0 {
		t.Errorf("oversized operand was cached: %d entries, %d bytes", pc.lru.Len(), pc.bytes)
	}
}

// TestParseCacheErrorReachesAllWaiters: when the flight leader's parse
// fails, every concurrent waiter on that flight — not just one — must
// receive the same error and a nil experiment, and the failure must leave
// no cache entry behind.
func TestParseCacheErrorReachesAllWaiters(t *testing.T) {
	reg := obs.NewRegistry()
	pc := newParseCache(1<<20, cubexml.DefaultLimits, cubexml.EngineAuto, reg)
	bad := []byte("not xml at all")
	key := sha256.Sum256(bad)

	// Install the in-progress flight by hand so every lookup below is
	// guaranteed to take the waiter path before the leader "fails".
	fl := &flight{}
	fl.wg.Add(1)
	pc.flights[key] = fl

	const waiters = 16
	type result struct {
		e   *core.Experiment
		err error
	}
	results := make(chan result, waiters)
	var started sync.WaitGroup
	started.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			started.Done()
			e, err := pc.get(context.Background(), bad)
			results <- result{e, err}
		}()
	}
	started.Wait()
	time.Sleep(5 * time.Millisecond) // let the goroutines reach wg.Wait
	wantErr := fmt.Errorf("leader parse exploded")
	fl.err = wantErr
	fl.wg.Done()
	// Mirror the leader's cleanup: the flight is done, errors don't cache.
	pc.mu.Lock()
	delete(pc.flights, key)
	pc.mu.Unlock()

	for i := 0; i < waiters; i++ {
		r := <-results
		if r.err != wantErr {
			t.Fatalf("waiter %d error = %v, want the shared %v", i, r.err, wantErr)
		}
		if r.e != nil {
			t.Fatalf("waiter %d got a non-nil experiment alongside the error", i)
		}
	}
	pc.mu.Lock()
	entries, bytes := len(pc.entries), pc.bytes
	pc.mu.Unlock()
	if entries != 0 || bytes != 0 {
		t.Errorf("failed parse left %d entries / %d bytes in the cache", entries, bytes)
	}
	if hits := counter(reg, "cube_parse_cache_hits_total"); hits != 0 {
		t.Errorf("hits = %d, want 0 (error waiters must not count as hits)", hits)
	}
}

func TestParseCacheParseErrorNotCached(t *testing.T) {
	reg := obs.NewRegistry()
	pc := newParseCache(1<<20, cubexml.DefaultLimits, cubexml.EngineAuto, reg)
	bad := []byte("<cube this is not XML")
	var lastErr error
	for i := 0; i < 2; i++ {
		if _, lastErr = pc.get(context.Background(), bad); lastErr == nil {
			t.Fatal("cache parsed garbage")
		}
	}
	if got := counter(reg, "cube_parse_cache_misses_total"); got != 2 {
		t.Errorf("misses = %d, want 2 (errors must not be cached)", got)
	}
	want, err := cubexml.ReadBytes(context.Background(), bad, cubexml.ReadOptions{Limits: cubexml.DefaultLimits})
	if want != nil || err == nil || lastErr.Error() != err.Error() {
		t.Errorf("cache error = %v, direct parse error = %v", lastErr, err)
	}
}

// TestParseCacheConcurrentMixed hammers a small cache from many goroutines
// with more distinct operands than the budget holds, so hits, misses,
// singleflight waits, and evictions all interleave. Run under -race this
// is the cache's data-race check; the invariants below catch lost updates.
func TestParseCacheConcurrentMixed(t *testing.T) {
	reg := obs.NewRegistry()
	var docs [][]byte
	var prints []string
	for i := 0; i < 6; i++ {
		e := buildExp(fmt.Sprintf("exp-%d", i), float64(i)/8)
		docs = append(docs, encodeExp(t, e))
		prints = append(prints, e.Fingerprint())
	}
	budget := int64(len(docs[0])) * 5 / 2 // holds ~2 of 6 operands
	pc := newParseCache(budget, cubexml.DefaultLimits, cubexml.EngineAuto, reg)

	const workers, iters = 16, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				k := r.Intn(len(docs))
				e, err := pc.get(context.Background(), docs[k])
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if e.Fingerprint() != prints[k] {
					t.Errorf("operand %d: wrong experiment from cache", k)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()

	hits := counter(reg, "cube_parse_cache_hits_total")
	misses := counter(reg, "cube_parse_cache_misses_total")
	if hits+misses != workers*iters {
		t.Errorf("hits %d + misses %d != %d requests", hits, misses, workers*iters)
	}
	if misses < int64(len(docs)) {
		t.Errorf("misses = %d, want at least one per distinct operand (%d)", misses, len(docs))
	}
	if pc.bytes > budget {
		t.Errorf("cache exceeded budget: %d > %d", pc.bytes, budget)
	}
}

// postWithDigest uploads one operand with an explicit Content-Digest part
// header, mimicking the bundled client.
func postWithDigest(t *testing.T, srv *httptest.Server, path string, data []byte, digest string) *http.Response {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	h := make(map[string][]string)
	h["Content-Disposition"] = []string{`form-data; name="operand"; filename="op.cube"`}
	h["Content-Type"] = []string{"application/octet-stream"}
	if digest != "" {
		h["Content-Digest"] = []string{digest}
	}
	fw, err := mw.CreatePart(h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(data); err != nil {
		t.Fatal(err)
	}
	mw.Close()
	resp, err := http.Post(srv.URL+path, mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func digestOf(data []byte) string {
	sum := sha256.Sum256(data)
	return "sha-256=:" + base64.StdEncoding.EncodeToString(sum[:]) + ":"
}

func TestHandlerCacheAndDigest(t *testing.T) {
	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	cfg := quietConfig()
	cfg.Metrics = reg
	cfg.Logger = slog.New(slog.NewTextHandler(writerFunc(func(p []byte) (int, error) {
		logMu.Lock()
		defer logMu.Unlock()
		return logBuf.Write(p)
	}), nil))
	srv := httptest.NewServer(NewHandler(cfg))
	defer srv.Close()

	data := encodeExp(t, buildExp("handler", 0))

	// Correct digest: accepted, no mismatch, first request is a miss.
	resp := postWithDigest(t, srv, "/info", data, digestOf(data))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	resp.Body.Close()
	if got := counter(reg, "cube_parse_cache_misses_total"); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := counter(reg, "cube_digest_mismatch_total"); got != 0 {
		t.Errorf("digest mismatches = %d, want 0", got)
	}

	// Same bytes again: served from cache.
	resp = postWithDigest(t, srv, "/info", data, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	resp.Body.Close()
	if got := counter(reg, "cube_parse_cache_hits_total"); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}

	// Wrong digest: trust but verify — processed anyway, counted, logged.
	resp = postWithDigest(t, srv, "/info", data, digestOf([]byte("other bytes")))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after mismatch %d", resp.StatusCode)
	}
	resp.Body.Close()
	if got := counter(reg, "cube_digest_mismatch_total"); got != 1 {
		t.Errorf("digest mismatches = %d, want 1", got)
	}
	logMu.Lock()
	logged := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logged, "content digest mismatch") {
		t.Errorf("mismatch not logged:\n%s", logged)
	}

	// Unparseable digest header: ignored, not a mismatch.
	resp = postWithDigest(t, srv, "/info", data, "sha-256=:!!!not base64!!!:")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after bad header %d", resp.StatusCode)
	}
	resp.Body.Close()
	if got := counter(reg, "cube_digest_mismatch_total"); got != 1 {
		t.Errorf("digest mismatches = %d, want still 1", got)
	}
}

func TestHandlerCacheDisabled(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := quietConfig()
	cfg.Metrics = reg
	cfg.ParseCacheBytes = 0
	srv := httptest.NewServer(NewHandler(cfg))
	defer srv.Close()

	data := encodeExp(t, buildExp("nocache", 0))
	for i := 0; i < 2; i++ {
		resp := postWithDigest(t, srv, "/info", data, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if got := counter(reg, "cube_parse_cache_hits_total") + counter(reg, "cube_parse_cache_misses_total"); got != 0 {
		t.Errorf("cache counters moved with cache disabled: %d", got)
	}
}

func TestParseContentDigest(t *testing.T) {
	sum := sha256.Sum256([]byte("payload"))
	good := "sha-256=:" + base64.StdEncoding.EncodeToString(sum[:]) + ":"
	cases := []struct {
		header string
		ok     bool
	}{
		{good, true},
		{"SHA-256=:" + base64.StdEncoding.EncodeToString(sum[:]) + ":", true},
		{"sha-512=:AAAA:, " + good, true},
		{good + ", sha-512=:AAAA:", true},
		{"", false},
		{"sha-512=:AAAA:", false},
		{"sha-256=AAAA", false},
		{"sha-256=:notbase64!!!:", false},
		{"sha-256=::", false},
		{"sha-256=:" + base64.StdEncoding.EncodeToString([]byte("short")) + ":", false},
	}
	for _, tc := range cases {
		got, ok := parseContentDigest(tc.header)
		if ok != tc.ok {
			t.Errorf("parseContentDigest(%q) ok = %v, want %v", tc.header, ok, tc.ok)
		}
		if ok && got != sum {
			t.Errorf("parseContentDigest(%q) wrong digest", tc.header)
		}
	}
}

// BenchmarkParseCacheHit measures serving a repeated operand from the
// cache. The final counter check proves every benchmark iteration was a
// hit — i.e. the operand was parsed exactly once, so the per-op
// allocations are clone-only, with zero parse allocations.
func BenchmarkParseCacheHit(b *testing.B) {
	reg := obs.NewRegistry()
	pc := newParseCache(1<<24, cubexml.DefaultLimits, cubexml.EngineAuto, reg)
	data := encodeExp(b, buildExp("bench", 0))
	if _, err := pc.get(context.Background(), data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pc.get(context.Background(), data); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if misses := counter(reg, "cube_parse_cache_misses_total"); misses != 1 {
		b.Fatalf("misses = %d, want 1: benchmark measured parses, not hits", misses)
	}
	if hits := counter(reg, "cube_parse_cache_hits_total"); hits != int64(b.N) {
		b.Fatalf("hits = %d, want %d", hits, b.N)
	}
}

func BenchmarkParseCacheMiss(b *testing.B) {
	pc := newParseCache(0, cubexml.DefaultLimits, cubexml.EngineAuto, nil) // nothing cacheable
	data := encodeExp(b, buildExp("bench", 0))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pc.get(context.Background(), data); err != nil {
			b.Fatal(err)
		}
	}
}
