package core

import (
	"math"
	"testing"
)

// buildDeep: main{ heavy{ leaf }, light } with Time severities per thread:
// main=1, heavy=10, leaf=5, light=0.1 on 2 threads.
func buildDeep() *Experiment {
	e := New("deep")
	time := e.NewMetric("Time", Seconds, "")
	reg := func(n string) *Region { return e.NewRegion(n, "app", 0, 0) }
	root := e.NewCallRoot(e.NewCallSite("app", 0, reg("main")))
	heavy := root.NewChild(e.NewCallSite("app", 1, reg("heavy")))
	leaf := heavy.NewChild(e.NewCallSite("app", 2, reg("leaf")))
	light := root.NewChild(e.NewCallSite("app", 3, reg("light")))
	e.Invalidate()
	for _, th := range e.SingleThreadedSystem("m", 1, 2) {
		e.SetSeverity(time, root, th, 1)
		e.SetSeverity(time, heavy, th, 10)
		e.SetSeverity(time, leaf, th, 5)
		e.SetSeverity(time, light, th, 0.1)
	}
	return e
}

func TestPruneCollapsesLightSubtrees(t *testing.T) {
	e := buildDeep()
	total := e.MetricInclusive(e.FindMetricByName("Time")) // 32.2
	p, err := Prune(e, "Time", 0.05)                       // cut = 1.61
	if err != nil {
		t.Fatal(err)
	}
	if !p.Derived || p.Operation != "prune" {
		t.Errorf("provenance wrong")
	}
	// light (0.2 inclusive) collapses into main; heavy (30) and leaf (10)
	// survive.
	if p.FindCallNode("main/light") != nil {
		t.Errorf("light subtree survived")
	}
	if p.FindCallNode("main/heavy/leaf") == nil {
		t.Errorf("heavy/leaf pruned although above threshold")
	}
	// Totals preserved: light's severity re-attributed to main.
	if got := p.MetricInclusive(p.FindMetricByName("Time")); math.Abs(got-total) > 1e-12 {
		t.Errorf("prune changed the total: %v vs %v", got, total)
	}
	time := p.FindMetricByName("Time")
	main := p.FindCallNode("main")
	if got := p.MetricValue(time, main); math.Abs(got-2.2) > 1e-12 {
		t.Errorf("main after collapse = %v, want 2.2 (1+0.1 per thread)", got)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("pruned experiment invalid: %v", err)
	}
	// Operand untouched.
	if e.FindCallNode("main/light") == nil {
		t.Errorf("prune mutated its operand")
	}
}

func TestPruneHighThresholdKeepsRoots(t *testing.T) {
	e := buildDeep()
	p, err := Prune(e, "Time", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.CallRoots()) != 1 || len(p.CallRoots()[0].Children()) != 0 {
		t.Errorf("threshold 1.0 should collapse everything into the root")
	}
	total := e.MetricInclusive(e.FindMetricByName("Time"))
	if got := p.MetricInclusive(p.FindMetricByName("Time")); math.Abs(got-total) > 1e-12 {
		t.Errorf("total changed: %v vs %v", got, total)
	}
}

func TestPruneZeroThresholdIsIdentity(t *testing.T) {
	e := buildDeep()
	p, err := Prune(e, "Time", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fingerprint() != e.Fingerprint() {
		t.Errorf("threshold 0 must not change the experiment")
	}
}

func TestPruneNegativeSeverities(t *testing.T) {
	// Prune of a difference experiment uses magnitudes.
	a := buildDeep()
	b := buildDeep()
	b.SetSeverity(b.FindMetricByName("Time"), b.FindCallNode("main/heavy"), b.Threads()[0], 30)
	d, err := Difference(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prune(d, "Time", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if p.FindCallNode("main/heavy") == nil {
		t.Errorf("large negative subtree pruned (magnitude must count)")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestPruneErrors(t *testing.T) {
	e := buildDeep()
	if _, err := Prune(e, "Nope", 0.1); err == nil {
		t.Errorf("unknown metric accepted")
	}
	if _, err := Prune(e, "Time", -0.1); err == nil {
		t.Errorf("negative threshold accepted")
	}
	if _, err := Prune(e, "Time", 1.5); err == nil {
		t.Errorf("threshold > 1 accepted")
	}
}
