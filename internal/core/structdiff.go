package core

import (
	"fmt"
	"sort"
	"strings"
)

// StructuralReport compares the metadata of two experiments — the
// structural merge/difference of Karavanic & Miller's multi-execution
// framework, which CUBE instantiates. Unlike the arithmetic operators it
// does not touch severities; it reports which resources of each dimension
// are shared and which are unique to either operand. Tools use it to judge
// whether applying an arithmetic operator "makes sense" (computing the
// mean of entirely different programs is generally not helpful) and to
// explain integration results to the user.
type StructuralReport struct {
	// SharedMetrics, OnlyAMetrics, OnlyBMetrics partition the metric
	// nodes (by path) of the integrated metric forest.
	SharedMetrics, OnlyAMetrics, OnlyBMetrics []string
	// SharedCalls, OnlyACalls, OnlyBCalls partition the call paths.
	SharedCalls, OnlyACalls, OnlyBCalls []string
	// SharedRanks, OnlyARanks, OnlyBRanks partition the process ranks.
	SharedRanks, OnlyARanks, OnlyBRanks []int
	// PartitionsCompatible reports whether both operands partition their
	// processes into nodes the same way (if not, integration collapses
	// the machine/node levels by default).
	PartitionsCompatible bool
}

// Similarity returns a crude [0,1] score: the fraction of metadata nodes
// (metrics, call paths, ranks) that are shared between the operands.
func (r *StructuralReport) Similarity() float64 {
	shared := len(r.SharedMetrics) + len(r.SharedCalls) + len(r.SharedRanks)
	total := shared + len(r.OnlyAMetrics) + len(r.OnlyBMetrics) +
		len(r.OnlyACalls) + len(r.OnlyBCalls) + len(r.OnlyARanks) + len(r.OnlyBRanks)
	if total == 0 {
		return 1
	}
	return float64(shared) / float64(total)
}

// Summary renders the report as a short human-readable text.
func (r *StructuralReport) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "metrics: %d shared, %d only-A, %d only-B\n",
		len(r.SharedMetrics), len(r.OnlyAMetrics), len(r.OnlyBMetrics))
	fmt.Fprintf(&sb, "call paths: %d shared, %d only-A, %d only-B\n",
		len(r.SharedCalls), len(r.OnlyACalls), len(r.OnlyBCalls))
	fmt.Fprintf(&sb, "ranks: %d shared, %d only-A, %d only-B\n",
		len(r.SharedRanks), len(r.OnlyARanks), len(r.OnlyBRanks))
	fmt.Fprintf(&sb, "node partitions compatible: %v\n", r.PartitionsCompatible)
	fmt.Fprintf(&sb, "similarity: %.2f\n", r.Similarity())
	return sb.String()
}

// StructuralDiff compares the metadata sets of a and b under the given
// integration options.
func StructuralDiff(a, b *Experiment, opts *Options) (*StructuralReport, error) {
	in, err := integrate(opts, a, b)
	if err != nil {
		return nil, err
	}
	// The report is phrased in terms of the operand→result pointer maps;
	// a fast-path integration carries flat tables only, so materialise
	// the map form before reading it.
	in.ensureMaps()
	rep := &StructuralReport{}

	fromA := map[*Metric]bool{}
	for _, rm := range in.metricFrom[0] {
		fromA[rm] = true
	}
	fromB := map[*Metric]bool{}
	for _, rm := range in.metricFrom[1] {
		fromB[rm] = true
	}
	for _, m := range in.out.Metrics() {
		switch {
		case fromA[m] && fromB[m]:
			rep.SharedMetrics = append(rep.SharedMetrics, m.Path())
		case fromA[m]:
			rep.OnlyAMetrics = append(rep.OnlyAMetrics, m.Path())
		default:
			rep.OnlyBMetrics = append(rep.OnlyBMetrics, m.Path())
		}
	}

	callFromA := map[*CallNode]bool{}
	for _, rc := range in.cnodeFrom[0] {
		callFromA[rc] = true
	}
	callFromB := map[*CallNode]bool{}
	for _, rc := range in.cnodeFrom[1] {
		callFromB[rc] = true
	}
	for _, c := range in.out.CallNodes() {
		switch {
		case callFromA[c] && callFromB[c]:
			rep.SharedCalls = append(rep.SharedCalls, c.Path())
		case callFromA[c]:
			rep.OnlyACalls = append(rep.OnlyACalls, c.Path())
		default:
			rep.OnlyBCalls = append(rep.OnlyBCalls, c.Path())
		}
	}

	ranksOf := func(x *Experiment) map[int]bool {
		out := map[int]bool{}
		for _, p := range x.Processes() {
			out[p.Rank] = true
		}
		return out
	}
	ra, rb := ranksOf(a), ranksOf(b)
	for rank := range ra {
		if rb[rank] {
			rep.SharedRanks = append(rep.SharedRanks, rank)
		} else {
			rep.OnlyARanks = append(rep.OnlyARanks, rank)
		}
	}
	for rank := range rb {
		if !ra[rank] {
			rep.OnlyBRanks = append(rep.OnlyBRanks, rank)
		}
	}
	sort.Ints(rep.SharedRanks)
	sort.Ints(rep.OnlyARanks)
	sort.Ints(rep.OnlyBRanks)
	rep.PartitionsCompatible = partitionSignature(a) == partitionSignature(b)
	return rep, nil
}
