package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// These tests pin down the contract of the metadata fast paths: an
// integration served by the identity path or the integration memo must be
// observationally identical to a cold full merge — for every operator,
// both engines, and every digest relation between the operands (same
// binary, partially overlapping, fully disjoint). The fast path may only
// change how fast the answer arrives, never the answer.

// disjointRename pushes every name of e into a private suffix namespace so
// its metadata shares nothing with another random experiment: metrics,
// regions (and through them call sites and call nodes), and machines all
// become unique to e.
func disjointRename(e *Experiment) {
	for _, m := range e.Metrics() {
		m.Name += "#d"
	}
	for _, rg := range e.regions {
		rg.Name += "#d"
	}
	for _, mach := range e.machines {
		mach.Name += "#d"
	}
	e.Invalidate()
}

// metaPropPairs builds the three interesting operand relations from one
// random stream: digest-identical (clone), overlapping (independent draws
// from shared name pools), and metadata-disjoint.
func metaPropPairs(r *rand.Rand) map[string][2]*Experiment {
	a := randomExperiment(r, "a")
	b := randomExperiment(r, "b")
	d := randomExperiment(r, "d")
	disjointRename(d)
	return map[string][2]*Experiment{
		"same-binary": {a, a.Clone()},
		"overlapping": {a, b},
		"disjoint":    {a, d},
	}
}

// TestMetaFastpathInvisible: for random operand pairs in all three digest
// relations, every operator's result is fingerprint-identical whether the
// metadata fast paths are enabled (first call exercising the memo miss,
// second call the memo hit or identity path) or disabled entirely.
func TestMetaFastpathInvisible(t *testing.T) {
	defer metaFastpathOff.Store(false)
	defer SetIntegrateMemoBudget(DefaultIntegrateMemoBytes)

	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		for mode, pair := range metaPropPairs(r) {
			a, b := pair[0], pair[1]
			for _, eng := range []Engine{EngineKernel, EngineLegacy} {
				opts := &Options{Engine: eng}
				ops := map[string]func() (*Experiment, error){
					"difference": func() (*Experiment, error) { return Difference(a, b, opts) },
					"sum":        func() (*Experiment, error) { return Sum(opts, a, b) },
					"mean":       func() (*Experiment, error) { return Mean(opts, a, b) },
					"merge":      func() (*Experiment, error) { return Merge(a, b, opts) },
					"min":        func() (*Experiment, error) { return Min(opts, a, b) },
					"max":        func() (*Experiment, error) { return Max(opts, a, b) },
					"stddev":     func() (*Experiment, error) { return StdDev(opts, a, b) },
				}
				for name, op := range ops {
					metaFastpathOff.Store(true)
					want, err := op()
					if err != nil {
						t.Fatalf("seed %d %s engine %d %s (cold): %v", seed, mode, eng, name, err)
					}
					metaFastpathOff.Store(false)
					SetIntegrateMemoBudget(DefaultIntegrateMemoBytes) // start from an empty memo
					for pass, label := range []string{"first (memo miss)", "second (memo hit)"} {
						got, err := op()
						if err != nil {
							t.Fatalf("seed %d %s engine %d %s %s: %v", seed, mode, eng, name, label, err)
						}
						if got.Fingerprint() != want.Fingerprint() {
							t.Fatalf("seed %d %s engine %d %s: fast-path pass %d result differs from cold merge",
								seed, mode, eng, name, pass)
						}
					}
				}
			}
		}
	}
}

// TestIntegrateFastpathKinds asserts which path each operand relation
// actually takes, so the invisibility property above is known to cover
// identity, memo-miss, and memo-hit executions rather than silently
// exercising the full merge three times.
func TestIntegrateFastpathKinds(t *testing.T) {
	defer SetIntegrateMemoBudget(DefaultIntegrateMemoBytes)
	SetIntegrateMemoBudget(DefaultIntegrateMemoBytes)

	r := rand.New(rand.NewSource(42))
	a := randomExperiment(r, "a")
	b := a.Clone()
	c := randomExperiment(r, "c")
	disjointRename(c)
	if a.MetaDigest() == c.MetaDigest() {
		t.Fatal("disjoint rename left digests equal")
	}

	in, err := integrate(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if in.fastpath != fastpathIdentity {
		t.Fatalf("clone pair took %q, want %q", in.fastpathLabel(), fastpathIdentity)
	}

	in, err = integrate(nil, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if in.fastpath != fastpathMiss {
		t.Fatalf("first mixed pair took %q, want %q", in.fastpathLabel(), fastpathMiss)
	}
	in, err = integrate(nil, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if in.fastpath != fastpathMemo {
		t.Fatalf("second mixed pair took %q, want %q", in.fastpathLabel(), fastpathMemo)
	}

	// Single-operand integrations never consult digests or the memo.
	in, err = integrate(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if in.fastpath != "" || in.fastpathLabel() != fastpathFull {
		t.Fatalf("single operand took %q, want full merge", in.fastpathLabel())
	}

	// A disabled memo (budget <= 0) leaves mixed pairs on the full merge.
	SetIntegrateMemoBudget(0)
	in, err = integrate(nil, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if in.fastpath != "" {
		t.Fatalf("mixed pair with memo disabled took %q, want full merge", in.fastpathLabel())
	}
}

// TestMetaFastpathConcurrent hammers the identity path and the shared
// memo from many goroutines over the same pre-compacted operands. Run
// under -race this checks that digest caching, memo get/put, and the
// shared remap tables of memoised integrations are free of data races,
// and that every concurrent result is still correct.
func TestMetaFastpathConcurrent(t *testing.T) {
	defer SetIntegrateMemoBudget(DefaultIntegrateMemoBytes)
	SetIntegrateMemoBudget(DefaultIntegrateMemoBytes)

	r := rand.New(rand.NewSource(7))
	a := randomExperiment(r, "a")
	b := a.Clone()
	c := randomExperiment(r, "c")
	// Pre-compact and pre-warm so concurrent operator calls only ever
	// read the operands: the columnar lowering and the metadata digest
	// are both materialised before the first goroutine starts.
	for _, x := range []*Experiment{a, b, c} {
		x.CompactSeverities()
		x.MetaDigest()
	}

	metaFastpathOff.Store(true)
	wantDiff, err := Difference(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantSum, err := Sum(nil, a, c)
	if err != nil {
		t.Fatal(err)
	}
	metaFastpathOff.Store(false)
	wantDiffFP, wantSumFP := wantDiff.Fingerprint(), wantSum.Fingerprint()

	const goroutines, rounds = 8, 6
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				d, err := Difference(a, b, nil)
				if err != nil {
					errs <- err
					return
				}
				if d.Fingerprint() != wantDiffFP {
					errs <- fmt.Errorf("concurrent identity-path difference diverged")
					return
				}
				s, err := Sum(nil, a, c)
				if err != nil {
					errs <- err
					return
				}
				if s.Fingerprint() != wantSumFP {
					errs <- fmt.Errorf("concurrent memoised sum diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
