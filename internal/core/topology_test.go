package core

import (
	"strings"
	"testing"
)

func TestNewCartesian(t *testing.T) {
	topo, err := NewCartesian("grid", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Coords) != 6 {
		t.Fatalf("coords = %d, want 6", len(topo.Coords))
	}
	// Row-major: rank = y*3 + x.
	if got := topo.Coords[4]; got[0] != 1 || got[1] != 1 {
		t.Errorf("rank 4 coord = %v, want [1 1]", got)
	}
	if topo.RankAt(1, 2) != 5 {
		t.Errorf("RankAt(1,2) = %d, want 5", topo.RankAt(1, 2))
	}
	if topo.RankAt(9, 9) != -1 || topo.RankAt(0) != -1 {
		t.Errorf("out-of-grid lookups must return -1")
	}
	if _, err := NewCartesian("bad"); err == nil {
		t.Errorf("empty dims accepted")
	}
	if _, err := NewCartesian("bad", 0); err == nil {
		t.Errorf("zero dim accepted")
	}
}

func TestTopologyEqualClone(t *testing.T) {
	a, _ := NewCartesian("g", 2, 2)
	b, _ := NewCartesian("g", 2, 2)
	if !a.Equal(b) {
		t.Errorf("identical topologies unequal")
	}
	c := a.Clone()
	if !a.Equal(c) {
		t.Errorf("clone unequal")
	}
	c.Coords[3][1] = 0 // corrupt (duplicate coordinate)
	if a.Equal(c) {
		t.Errorf("mutated clone still equal")
	}
	d, _ := NewCartesian("g", 4)
	if a.Equal(d) {
		t.Errorf("different dims equal")
	}
	var nilT *Topology
	if nilT.Equal(a) || a.Equal(nil) {
		t.Errorf("nil comparisons wrong")
	}
	if !nilT.Equal(nil) {
		t.Errorf("nil-nil must be equal")
	}
	if nilT.Clone() != nil {
		t.Errorf("nil clone must be nil")
	}
}

func attachTopo(t *testing.T, e *Experiment, dims ...int) *Topology {
	t.Helper()
	topo, err := NewCartesian("grid", dims...)
	if err != nil {
		t.Fatal(err)
	}
	e.SetTopology(topo)
	return topo
}

func TestTopologyValidation(t *testing.T) {
	e := buildSmall("t") // 4 ranks
	attachTopo(t, e, 2, 2)
	if err := e.Validate(); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}

	// Unknown rank.
	topo := e.Topology()
	topo.Coords[99] = []int{0, 0}
	if err := e.Validate(); err == nil || !strings.Contains(err.Error(), "unknown rank") {
		t.Errorf("unknown rank: %v", err)
	}
	delete(topo.Coords, 99)

	// Out-of-bounds coordinate.
	topo.Coords[0] = []int{5, 0}
	if err := e.Validate(); err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("out of bounds: %v", err)
	}
	topo.Coords[0] = []int{0, 0}

	// Duplicate coordinate.
	topo.Coords[1] = []int{0, 0}
	if err := e.Validate(); err == nil || !strings.Contains(err.Error(), "share coordinate") {
		t.Errorf("duplicate coordinate: %v", err)
	}
	topo.Coords[1] = []int{0, 1}

	// Wrong arity.
	topo.Coords[2] = []int{1}
	if err := e.Validate(); err == nil || !strings.Contains(err.Error(), "coordinates") {
		t.Errorf("wrong arity: %v", err)
	}
}

func TestTopologySurvivesOperators(t *testing.T) {
	a := buildSmall("a")
	attachTopo(t, a, 2, 2)
	b := buildSmall("b")
	attachTopo(t, b, 2, 2)

	d, err := Difference(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Topology().Equal(a.Topology()) {
		t.Errorf("matching topologies must survive the operator")
	}
	// Result owns a copy, not the operand's instance.
	d.Topology().Coords[0][0] = 1
	if a.Topology().Coords[0][0] != 0 {
		t.Errorf("operator aliased the operand topology")
	}

	// Disagreeing topologies are dropped.
	c := buildSmall("c")
	attachTopo(t, c, 4)
	d2, err := Difference(a, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Topology() != nil {
		t.Errorf("mismatching topologies must be dropped")
	}
	// Operand without topology also drops it.
	d3, err := Difference(a, buildSmall("x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d3.Topology() != nil {
		t.Errorf("absent topology in one operand must drop it")
	}
}

func TestTopologyCloneAndFlatten(t *testing.T) {
	e := buildSmall("e")
	attachTopo(t, e, 2, 2)
	c := e.Clone()
	if !c.Topology().Equal(e.Topology()) {
		t.Errorf("clone lost topology")
	}
	f, err := Flatten(e)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Topology().Equal(e.Topology()) {
		t.Errorf("flatten lost topology")
	}
}
