package core

import "testing"

func TestCloneEquality(t *testing.T) {
	e := buildSmall("orig")
	e.Derived = true
	e.Operation = "mean"
	e.Parents = []string{"a", "b"}
	e.Attrs["k"] = "v"
	c := e.Clone()
	if c.Fingerprint() != e.Fingerprint() {
		t.Fatalf("clone fingerprint differs:\n%s\nvs\n%s", c.Fingerprint(), e.Fingerprint())
	}
	if c.Title != e.Title || !c.Derived || c.Operation != "mean" || len(c.Parents) != 2 || c.Attrs["k"] != "v" {
		t.Errorf("provenance not cloned")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	e := buildSmall("orig")
	c := e.Clone()

	// Mutating the clone must not affect the original and vice versa.
	c.SetSeverity(c.FindMetricByName("Time"), c.FindCallNode("main"), c.Threads()[0], 999)
	if e.Severity(e.FindMetricByName("Time"), e.FindCallNode("main"), e.Threads()[0]) == 999 {
		t.Errorf("severity mutation leaked to the original")
	}
	c.FindMetricByName("Time").Name = "Zeit"
	if e.FindMetricByName("Time") == nil {
		t.Errorf("metric rename leaked to the original")
	}
	c.FindRegion("compute").Name = "mutated"
	if e.FindRegion("compute") == nil {
		t.Errorf("region mutation leaked to the original")
	}
	c.Attrs["new"] = "x"
	if _, ok := e.Attrs["new"]; ok {
		t.Errorf("attrs map shared")
	}
}

func TestCloneUnregisteredCallee(t *testing.T) {
	// A call node whose callee was never registered as a region must
	// still be deep-copied, not aliased.
	e := New("x")
	e.NewMetric("T", Seconds, "")
	alien := &Region{Name: "alien"}
	root := e.NewCallRoot(&CallSite{Callee: alien})
	th := e.NewMachine("m").NewNode("n").NewProcess(0, "").NewThread(0, "")
	e.SetSeverity(e.Metrics()[0], root, th, 1)

	c := e.Clone()
	c.CallRoots()[0].Callee().Name = "mutated"
	if alien.Name != "alien" {
		t.Errorf("unregistered callee aliased by clone")
	}
	if c.Fingerprint() == e.Fingerprint() {
		t.Errorf("rename should change the clone's fingerprint")
	}
}
