package core

import (
	"fmt"
	"sync/atomic"
)

// Experiment is a valid instance of the CUBE data model: metadata (a metric
// forest, program resources, and a system forest) plus data (the severity
// function mapping (metric, call path, thread) tuples onto accumulated
// metric values).
//
// Experiments are either original (collected during a real run, a
// simulation, or produced by an analytical model) or derived (the result of
// an algebraic operator). Both kinds are full experiments and can be
// processed, stored, and displayed identically — the algebra's closure
// property.
//
// Metadata is built through the New*/Add* methods. Mutating trees directly
// (e.g. Metric.NewChild) after they were attached to an experiment is
// allowed, but the caller must then call Invalidate so cached enumerations
// are rebuilt. Severity values are keyed by node identity, so they survive
// metadata growth.
type Experiment struct {
	// Title labels the experiment, e.g. "pescan barriers=on run 3".
	Title string
	// Attrs carries free-form attributes (provenance, configuration).
	Attrs map[string]string
	// Derived is true when the experiment is the output of an operator.
	Derived bool
	// Operation names the operator that produced a derived experiment
	// ("difference", "merge", "mean", ...); empty for original data.
	Operation string
	// Parents lists the titles of the operand experiments of a derived
	// experiment, in operand order.
	Parents []string

	metricRoots []*Metric
	regions     []*Region
	callSites   []*CallSite
	callRoots   []*CallNode
	machines    []*Machine
	topology    *Topology

	sev map[sevKey]float64

	// Cached flattened enumerations and index maps; rebuilt lazily.
	dirty       bool
	metrics     []*Metric
	cnodes      []*CallNode
	procs       []*Process
	threads     []*Thread
	metricIndex map[*Metric]int
	cnodeIndex  map[*CallNode]int
	threadIndex map[*Thread]int

	// Generation counters and the cached columnar lowering of the severity
	// store (see kernel.go). sevGen advances on every severity mutation,
	// metaGen on every enumeration rebuild; the lowered block is valid only
	// while both match the generations it was built at.
	sevGen         uint64
	metaGen        uint64
	lowered        *sevBlock
	loweredSevGen  uint64
	loweredMetaGen uint64

	// Cached whole-forest metadata digest (metadigest.go). Valid only while
	// its generation matches metaGen; the atomic pointer makes concurrent
	// MetaDigest calls on an immutable (compacted, shared) experiment safe.
	metaDigest atomic.Pointer[metaDigestCache]
}

type sevKey struct {
	m *Metric
	c *CallNode
	t *Thread
}

// New returns an empty experiment with the given title.
func New(title string) *Experiment {
	return &Experiment{
		Title: title,
		Attrs: map[string]string{},
		sev:   map[sevKey]float64{},
		dirty: true,
	}
}

// Invalidate discards cached enumerations after external metadata mutation.
func (e *Experiment) Invalidate() { e.dirty = true }

func (e *Experiment) reindex() {
	if !e.dirty {
		return
	}
	// A lazily stored severity function (kernel result, sev == nil) lives
	// only in the columnar block, whose indices reference the enumeration
	// about to be rebuilt — materialise the pointer-keyed map first, while
	// the old enumeration is still intact.
	e.ensureSev()
	e.metrics = e.metrics[:0]
	e.cnodes = e.cnodes[:0]
	e.procs = e.procs[:0]
	e.threads = e.threads[:0]
	for _, r := range e.metricRoots {
		r.Walk(func(m *Metric) { e.metrics = append(e.metrics, m) })
	}
	for _, r := range e.callRoots {
		r.Walk(func(n *CallNode) { e.cnodes = append(e.cnodes, n) })
	}
	for _, mach := range e.machines {
		for _, nd := range mach.Nodes() {
			for _, p := range nd.Processes() {
				e.procs = append(e.procs, p)
				e.threads = append(e.threads, p.Threads()...)
			}
		}
	}
	e.metricIndex = make(map[*Metric]int, len(e.metrics))
	for i, m := range e.metrics {
		e.metricIndex[m] = i
	}
	e.cnodeIndex = make(map[*CallNode]int, len(e.cnodes))
	for i, n := range e.cnodes {
		e.cnodeIndex[n] = i
	}
	e.threadIndex = make(map[*Thread]int, len(e.threads))
	for i, t := range e.threads {
		e.threadIndex[t] = i
	}
	e.dirty = false
	// Enumeration indices changed, so any columnar lowering is stale.
	e.metaGen++
}

// --- Metadata construction -------------------------------------------------

// NewMetric creates a root metric, attaches it to the experiment, and
// returns it.
func (e *Experiment) NewMetric(name string, unit Unit, description string) *Metric {
	m := NewMetric(name, unit, description)
	e.metricRoots = append(e.metricRoots, m)
	e.dirty = true
	return m
}

// AddMetricRoot attaches existing root metrics to the experiment.
func (e *Experiment) AddMetricRoot(roots ...*Metric) error {
	for _, m := range roots {
		if m.parent != nil {
			return fmt.Errorf("core: metric %q is not a root", m.Name)
		}
		e.metricRoots = append(e.metricRoots, m)
	}
	e.dirty = true
	return nil
}

// NewRegion creates a region, registers it, and returns it.
func (e *Experiment) NewRegion(name, module string, beginLine, endLine int) *Region {
	r := &Region{Name: name, Module: module, BeginLine: beginLine, EndLine: endLine}
	e.regions = append(e.regions, r)
	return r
}

// AddRegion registers existing regions.
func (e *Experiment) AddRegion(rs ...*Region) {
	e.regions = append(e.regions, rs...)
}

// NewCallSite creates a call site entering callee, registers it, and returns
// it. The callee should be registered with the experiment as well.
func (e *Experiment) NewCallSite(file string, line int, callee *Region) *CallSite {
	s := &CallSite{File: file, Line: line, Callee: callee}
	e.callSites = append(e.callSites, s)
	return s
}

// AddCallSite registers existing call sites.
func (e *Experiment) AddCallSite(ss ...*CallSite) {
	e.callSites = append(e.callSites, ss...)
}

// NewCallRoot creates a root call node entered via site, attaches it, and
// returns it.
func (e *Experiment) NewCallRoot(site *CallSite) *CallNode {
	n := NewCallNode(site)
	e.callRoots = append(e.callRoots, n)
	e.dirty = true
	return n
}

// AddCallRoot attaches existing root call nodes to the experiment.
func (e *Experiment) AddCallRoot(roots ...*CallNode) error {
	for _, n := range roots {
		if n.parent != nil {
			return fmt.Errorf("core: call node %q is not a root", n.Path())
		}
		e.callRoots = append(e.callRoots, n)
	}
	e.dirty = true
	return nil
}

// NewMachine creates a machine, attaches it, and returns it.
func (e *Experiment) NewMachine(name string) *Machine {
	m := NewMachine(name)
	e.machines = append(e.machines, m)
	e.dirty = true
	return m
}

// AddMachine attaches existing machines to the experiment.
func (e *Experiment) AddMachine(ms ...*Machine) {
	e.machines = append(e.machines, ms...)
	e.dirty = true
}

// --- Metadata access -------------------------------------------------------

// MetricRoots returns the roots of the metric forest in insertion order.
func (e *Experiment) MetricRoots() []*Metric { return e.metricRoots }

// Regions returns the registered regions in insertion order.
func (e *Experiment) Regions() []*Region { return e.regions }

// CallSites returns the registered call sites in insertion order.
func (e *Experiment) CallSites() []*CallSite { return e.callSites }

// CallRoots returns the roots of the call forest in insertion order.
func (e *Experiment) CallRoots() []*CallNode { return e.callRoots }

// Machines returns the machines in insertion order.
func (e *Experiment) Machines() []*Machine { return e.machines }

// Metrics returns all metrics of the forest in pre-order. The returned
// slice is owned by the experiment and must not be modified.
func (e *Experiment) Metrics() []*Metric {
	e.reindex()
	return e.metrics
}

// CallNodes returns all call-tree nodes in pre-order. The returned slice is
// owned by the experiment and must not be modified.
func (e *Experiment) CallNodes() []*CallNode {
	e.reindex()
	return e.cnodes
}

// Processes returns all processes in machine/node order. The returned slice
// is owned by the experiment and must not be modified.
func (e *Experiment) Processes() []*Process {
	e.reindex()
	return e.procs
}

// Threads returns all threads in machine/node/process order. The returned
// slice is owned by the experiment and must not be modified.
func (e *Experiment) Threads() []*Thread {
	e.reindex()
	return e.threads
}

// MetricIndex returns the position of m in Metrics(), if registered.
func (e *Experiment) MetricIndex(m *Metric) (int, bool) {
	e.reindex()
	i, ok := e.metricIndex[m]
	return i, ok
}

// CallNodeIndex returns the position of n in CallNodes(), if registered.
func (e *Experiment) CallNodeIndex(n *CallNode) (int, bool) {
	e.reindex()
	i, ok := e.cnodeIndex[n]
	return i, ok
}

// ThreadIndex returns the position of t in Threads(), if registered.
func (e *Experiment) ThreadIndex(t *Thread) (int, bool) {
	e.reindex()
	i, ok := e.threadIndex[t]
	return i, ok
}

// FindMetric returns the first metric with the given path (names from the
// root separated by "/"), or nil.
func (e *Experiment) FindMetric(path string) *Metric {
	for _, m := range e.Metrics() {
		if m.Path() == path {
			return m
		}
	}
	return nil
}

// FindMetricByName returns the first metric (pre-order) with the given
// name, or nil.
func (e *Experiment) FindMetricByName(name string) *Metric {
	for _, m := range e.Metrics() {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// FindRegion returns the first registered region with the given name, or
// nil.
func (e *Experiment) FindRegion(name string) *Region {
	for _, r := range e.regions {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// FindCallNode returns the first call node (pre-order) whose Path equals
// path, or nil.
func (e *Experiment) FindCallNode(path string) *CallNode {
	for _, n := range e.CallNodes() {
		if n.Path() == path {
			return n
		}
	}
	return nil
}

// FindProcess returns the process with the given rank, or nil.
func (e *Experiment) FindProcess(rank int) *Process {
	for _, p := range e.Processes() {
		if p.Rank == rank {
			return p
		}
	}
	return nil
}

// FindThread returns the thread with the given rank and thread id, or nil.
func (e *Experiment) FindThread(rank, id int) *Thread {
	for _, t := range e.Threads() {
		if t.proc.Rank == rank && t.ID == id {
			return t
		}
	}
	return nil
}

// --- Severity function -----------------------------------------------------

// ensureSev materialises the pointer-keyed severity map from the cached
// columnar block. Kernel operators (kernel.go) leave their result in
// columnar form only — the map is a view, built lazily on the first
// map-based access. Callers that only stream severities (EachSeverity,
// Fingerprint, further kernel operators) never pay for it.
func (e *Experiment) ensureSev() {
	if e.sev != nil {
		return
	}
	b := e.lowered
	if b == nil || e.loweredSevGen != e.sevGen || e.loweredMetaGen != e.metaGen {
		// No columnar source (install always leaves a valid block, so this
		// only happens on experiments that never held severities).
		e.sev = map[sevKey]float64{}
		return
	}
	e.sev = make(map[sevKey]float64, b.len())
	for i, v := range b.val {
		mi, ci, ti := b.at(i)
		e.sev[sevKey{e.metrics[mi], e.cnodes[ci], e.threads[ti]}] = v
	}
}

// sevMap returns the pointer-keyed severity map, materialising it first if a
// kernel operator left the experiment in columnar-only form.
func (e *Experiment) sevMap() map[sevKey]float64 {
	e.ensureSev()
	return e.sev
}

// Severity returns the accumulated value of metric m measured while thread t
// was executing in call path c. Undefined tuples are zero. The stored value
// is exclusive along both the metric tree and the call tree: it belongs to
// exactly m (not m's descendants) at exactly c (not c's descendants).
func (e *Experiment) Severity(m *Metric, c *CallNode, t *Thread) float64 {
	e.ensureSev()
	return e.sev[sevKey{m, c, t}]
}

// SetSeverity sets the severity of the (m, c, t) tuple. Severities may be
// negative (e.g. in difference experiments). Setting zero removes the tuple
// from the underlying sparse store.
func (e *Experiment) SetSeverity(m *Metric, c *CallNode, t *Thread, v float64) {
	e.ensureSev()
	e.sevGen++
	k := sevKey{m, c, t}
	if v == 0 {
		delete(e.sev, k)
		return
	}
	e.sev[k] = v
}

// AddSeverity accumulates v onto the severity of the (m, c, t) tuple.
func (e *Experiment) AddSeverity(m *Metric, c *CallNode, t *Thread, v float64) {
	if v == 0 {
		return
	}
	e.ensureSev()
	e.sevGen++
	k := sevKey{m, c, t}
	nv := e.sev[k] + v
	if nv == 0 {
		delete(e.sev, k)
		return
	}
	e.sev[k] = nv
}

// NonZeroCount returns the number of stored non-zero severity tuples.
func (e *Experiment) NonZeroCount() int {
	if e.sev == nil && e.lowered != nil && e.loweredSevGen == e.sevGen && e.loweredMetaGen == e.metaGen {
		return e.lowered.len()
	}
	return len(e.sev)
}

// EachSeverity calls fn for every stored non-zero severity tuple in a
// deterministic order (metric, call node, thread enumeration order). The
// iteration runs off the cached columnar lowering, so repeated traversals
// cost no per-call sort. Tuples referencing unregistered metadata (possible
// only on invalid experiments) are skipped.
func (e *Experiment) EachSeverity(fn func(m *Metric, c *CallNode, t *Thread, v float64)) {
	b := e.loweredBlock()
	for i, v := range b.val {
		mi, ci, ti := b.at(i)
		fn(e.metrics[mi], e.cnodes[ci], e.threads[ti], v)
	}
}

// EachSeverityRow calls fn for every (metric, call node) pair that stores
// at least one severity tuple, in enumeration order, with vals holding the
// row's per-thread values densely (absent tuples as zero). vals is reused
// between calls and is only valid for the duration of one call. Returning
// false stops the iteration. Like EachSeverity, the walk runs off the
// cached columnar lowering; this is the egress seam the fast XML writer
// streams severity matrices from without materialising the map view.
func (e *Experiment) EachSeverityRow(fn func(mi, ci int, vals []float64) bool) {
	b := e.loweredBlock()
	nT := len(e.threads)
	if nT == 0 || b.len() == 0 {
		return
	}
	vals := make([]float64, nT)
	for i := 0; i < b.len(); {
		row := b.key[i] / b.nT // packed (metric, call node) of this row
		for t := range vals {
			vals[t] = 0
		}
		j := i
		for ; j < b.len() && b.key[j]/b.nT == row; j++ {
			vals[b.key[j]%b.nT] = b.val[j]
		}
		if !fn(int(row/b.nC), int(row%b.nC), vals) {
			return
		}
		i = j
	}
}

// CompactSeverities lowers the severity store to its columnar block and
// reports whether the block is now the primary store (the pointer-keyed
// map view was dropped). This fails only for invalid experiments whose
// map references unregistered metadata. Callers that hold many parsed
// experiments (the server's parse cache) compact them so clones take the
// cheap columnar path.
func (e *Experiment) CompactSeverities() bool {
	e.loweredBlock()
	return e.sev == nil
}

// --- Aggregation helpers ---------------------------------------------------

// MetricValue returns the severity of metric m at call node c summed over
// all threads (exclusive along both trees).
func (e *Experiment) MetricValue(m *Metric, c *CallNode) float64 {
	var s float64
	for _, t := range e.Threads() {
		s += e.Severity(m, c, t)
	}
	return s
}

// MetricTotal returns the severity of exactly metric m summed across the
// whole program and system (all call paths, all threads).
func (e *Experiment) MetricTotal(m *Metric) float64 {
	var s float64
	for _, c := range e.CallNodes() {
		s += e.MetricValue(m, c)
	}
	return s
}

// MetricInclusive returns MetricTotal summed over m and all of m's
// descendant metrics — the value a display shows for a collapsed metric
// node.
func (e *Experiment) MetricInclusive(m *Metric) float64 {
	var s float64
	m.Walk(func(d *Metric) { s += e.MetricTotal(d) })
	return s
}

// CallInclusive returns, for metric m (exclusive), the severity summed over
// call node c and all of c's descendants and all threads — the value a
// display shows for a collapsed call node.
func (e *Experiment) CallInclusive(m *Metric, c *CallNode) float64 {
	var s float64
	c.Walk(func(d *CallNode) { s += e.MetricValue(m, d) })
	return s
}

// ThreadTotal returns the severity of metric m at thread t summed over all
// call paths.
func (e *Experiment) ThreadTotal(m *Metric, t *Thread) float64 {
	var s float64
	for _, c := range e.CallNodes() {
		s += e.Severity(m, c, t)
	}
	return s
}

// GrandTotal returns the severity summed over every metric of the tree
// rooted at root, every call path and every thread. For a root "Time"
// metric this is the total accumulated time of the run.
func (e *Experiment) GrandTotal(root *Metric) float64 {
	return e.MetricInclusive(root)
}

// --- Dense snapshot ---------------------------------------------------------

// Dense is a dense three-dimensional snapshot of an experiment's severity
// function, indexed [metric][call node][thread] in the experiment's
// enumeration order — the representation the CUBE file format stores and
// the natural operand layout for element-wise operator arithmetic.
type Dense struct {
	Metrics   []*Metric
	CallNodes []*CallNode
	Threads   []*Thread
	Values    [][][]float64
}

// Dense materialises the experiment's severity function as a dense array.
func (e *Experiment) Dense() *Dense {
	e.reindex()
	d := &Dense{Metrics: e.metrics, CallNodes: e.cnodes, Threads: e.threads}
	d.Values = make([][][]float64, len(e.metrics))
	flat := make([]float64, len(e.metrics)*len(e.cnodes)*len(e.threads))
	for i := range d.Values {
		d.Values[i] = make([][]float64, len(e.cnodes))
		for j := range d.Values[i] {
			off := (i*len(e.cnodes) + j) * len(e.threads)
			d.Values[i][j] = flat[off : off+len(e.threads)]
		}
	}
	for k, v := range e.sevMap() {
		i, ok1 := e.metricIndex[k.m]
		j, ok2 := e.cnodeIndex[k.c]
		l, ok3 := e.threadIndex[k.t]
		if ok1 && ok2 && ok3 {
			d.Values[i][j][l] = v
		}
	}
	return d
}

// SetDense replaces the experiment's severity function with the contents of
// a dense array previously obtained from Dense (or constructed over the
// same enumerations).
func (e *Experiment) SetDense(d *Dense) error {
	e.reindex()
	if len(d.Metrics) != len(e.metrics) || len(d.CallNodes) != len(e.cnodes) || len(d.Threads) != len(e.threads) {
		return fmt.Errorf("core: dense shape %dx%dx%d does not match experiment %dx%dx%d",
			len(d.Metrics), len(d.CallNodes), len(d.Threads),
			len(e.metrics), len(e.cnodes), len(e.threads))
	}
	e.sevGen++
	e.sev = make(map[sevKey]float64)
	for i, m := range d.Metrics {
		for j, c := range d.CallNodes {
			for l, t := range d.Threads {
				if v := d.Values[i][j][l]; v != 0 {
					e.sev[sevKey{m, c, t}] = v
				}
			}
		}
	}
	return nil
}

// --- Convenience system construction ----------------------------------------

// SingleThreadedSystem builds a machine/node/process/thread hierarchy for a
// pure message-passing run: ranks 0..np-1 distributed round-robin-block over
// the given number of nodes, one thread per process. It returns the threads
// indexed by rank.
func (e *Experiment) SingleThreadedSystem(machine string, nodes, np int) []*Thread {
	per := make([]int, np)
	for i := range per {
		per[i] = 1
	}
	byRank := e.ThreadedSystem(machine, nodes, per)
	threads := make([]*Thread, np)
	for rank, ts := range byRank {
		threads[rank] = ts[0]
	}
	return threads
}

// ThreadedSystem builds a machine/node/process/thread hierarchy for a
// hybrid run: ranks 0..len(threadsPerRank)-1 distributed block-wise over
// the given number of nodes, with threadsPerRank[r] threads in process r
// (clamped to at least one — the thread level is mandatory). It returns
// the threads indexed by [rank][thread id].
func (e *Experiment) ThreadedSystem(machine string, nodes int, threadsPerRank []int) [][]*Thread {
	if nodes < 1 {
		nodes = 1
	}
	np := len(threadsPerRank)
	mach := e.NewMachine(machine)
	perNode := (np + nodes - 1) / nodes
	threads := make([][]*Thread, np)
	rank := 0
	for n := 0; n < nodes && rank < np; n++ {
		nd := mach.NewNode(fmt.Sprintf("node%02d", n))
		for i := 0; i < perNode && rank < np; i++ {
			p := nd.NewProcess(rank, fmt.Sprintf("rank %d", rank))
			nt := threadsPerRank[rank]
			if nt < 1 {
				nt = 1
			}
			for tid := 0; tid < nt; tid++ {
				threads[rank] = append(threads[rank], p.NewThread(tid, ""))
			}
			rank++
		}
	}
	e.dirty = true
	return threads
}
