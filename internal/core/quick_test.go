package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomExperiment builds a random but valid experiment. Names are drawn
// from small pools so that independently generated experiments overlap
// partially — the interesting case for metadata integration.
func randomExperiment(r *rand.Rand, title string) *Experiment {
	e := New(title)

	metricNames := []string{"Time", "MPI", "Comm", "Sync", "Wait", "IO"}
	var buildMetric func(parent *Metric, depth int)
	buildMetric = func(parent *Metric, depth int) {
		if depth > 2 {
			return
		}
		n := r.Intn(3)
		for i := 0; i < n; i++ {
			c := parent.NewChild(metricNames[r.Intn(len(metricNames))]+fmt.Sprint(i), "")
			buildMetric(c, depth+1)
		}
	}
	nRoots := 1 + r.Intn(2)
	units := []Unit{Seconds, Occurrences, Bytes}
	for i := 0; i < nRoots; i++ {
		root := e.NewMetric(metricNames[r.Intn(len(metricNames))], units[r.Intn(len(units))], "")
		buildMetric(root, 1)
	}

	regionNames := []string{"main", "foo", "bar", "baz", "MPI_Recv", "loop"}
	regions := map[string]*Region{}
	reg := func(name string) *Region {
		if rg, ok := regions[name]; ok {
			return rg
		}
		rg := e.NewRegion(name, "app", 0, 0)
		regions[name] = rg
		return rg
	}
	var buildCall func(parent *CallNode, depth int)
	buildCall = func(parent *CallNode, depth int) {
		if depth > 2 {
			return
		}
		n := r.Intn(3)
		for i := 0; i < n; i++ {
			c := parent.NewChild(e.NewCallSite("app", r.Intn(3), reg(regionNames[r.Intn(len(regionNames))])))
			buildCall(c, depth+1)
		}
	}
	root := e.NewCallRoot(e.NewCallSite("app", 0, reg("main")))
	buildCall(root, 1)
	e.Invalidate()

	np := 1 + r.Intn(4)
	nodes := 1 + r.Intn(2)
	e.SingleThreadedSystem("mach", nodes, np)

	for _, m := range e.Metrics() {
		for _, c := range e.CallNodes() {
			for _, th := range e.Threads() {
				if r.Intn(3) == 0 {
					v := math.Round(r.NormFloat64()*100) / 16 // dyadic values add exactly
					e.SetSeverity(m, c, th, v)
				}
			}
		}
	}
	return e
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 120}
}

// Property: random experiments are valid, and every operator's output is a
// valid experiment again (closure).
func TestQuickClosure(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomExperiment(rand.New(rand.NewSource(seedA)), "a")
		b := randomExperiment(rand.New(rand.NewSource(seedB)), "b")
		if a.Validate() != nil || b.Validate() != nil {
			return false
		}
		ops := []func() (*Experiment, error){
			func() (*Experiment, error) { return Difference(a, b, nil) },
			func() (*Experiment, error) { return Merge(a, b, nil) },
			func() (*Experiment, error) { return Mean(nil, a, b) },
			func() (*Experiment, error) { return Sum(nil, a, b) },
			func() (*Experiment, error) { return Min(nil, a, b) },
			func() (*Experiment, error) { return Max(nil, a, b) },
		}
		for _, op := range ops {
			out, err := op()
			if err != nil || out.Validate() != nil || !out.Derived {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: Diff(a, a) is severity-free and Mean/Merge of an experiment
// with itself reproduce the experiment's content.
func TestQuickSelfOperations(t *testing.T) {
	f := func(seed int64) bool {
		a := randomExperiment(rand.New(rand.NewSource(seed)), "a")
		d, err := Difference(a, a, nil)
		if err != nil || d.NonZeroCount() != 0 {
			return false
		}
		m, err := Mean(nil, a, a)
		if err != nil || m.Fingerprint() != a.Fingerprint() {
			return false
		}
		g, err := Merge(a, a, nil)
		if err != nil || g.Fingerprint() != a.Fingerprint() {
			return false
		}
		mn, err := Min(nil, a, a)
		if err != nil || mn.Fingerprint() != a.Fingerprint() {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: difference and sum are inverse: (a - b) + b has a's severities
// over the integrated metadata.
func TestQuickDifferenceSumInverse(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomExperiment(rand.New(rand.NewSource(seedA)), "a")
		b := randomExperiment(rand.New(rand.NewSource(seedB)), "b")
		d, err := Difference(a, b, nil)
		if err != nil {
			return false
		}
		back, err := Sum(nil, d, b)
		if err != nil {
			return false
		}
		// a zero-extended over the integrated metadata: compare against
		// a merged with an empty-severity b.
		bZero := b.Clone()
		bZero.EachSeverity(func(m *Metric, c *CallNode, th *Thread, v float64) {})
		aExt, err := Sum(nil, a, scaleToZero(b))
		if err != nil {
			return false
		}
		return back.Fingerprint() == aExt.Fingerprint()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// scaleToZero returns a copy of e with all severities zeroed (metadata
// intact), used to express zero-extension in operator laws.
func scaleToZero(e *Experiment) *Experiment {
	c := e.Clone()
	out, err := Scale(c, 0, nil)
	if err != nil {
		panic(err)
	}
	return out
}

// Property: Mean is the Sum scaled by 1/n over identical operand lists.
func TestQuickMeanSumConsistency(t *testing.T) {
	f := func(seedA, seedB, seedC int64) bool {
		xs := []*Experiment{
			randomExperiment(rand.New(rand.NewSource(seedA)), "a"),
			randomExperiment(rand.New(rand.NewSource(seedB)), "b"),
			randomExperiment(rand.New(rand.NewSource(seedC)), "c"),
		}
		mean, err := Mean(nil, xs...)
		if err != nil {
			return false
		}
		sum, err := Sum(nil, xs...)
		if err != nil {
			return false
		}
		scaled, err := Scale(sum, 1.0/3, nil)
		if err != nil {
			return false
		}
		// Compare numerically (floating point: 1/3 is not dyadic).
		return severitiesClose(mean, scaled, 1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// severitiesClose compares two experiments with identical metadata
// structure tuple-by-tuple within eps.
func severitiesClose(a, b *Experiment, eps float64) bool {
	if len(a.Metrics()) != len(b.Metrics()) || len(a.CallNodes()) != len(b.CallNodes()) || len(a.Threads()) != len(b.Threads()) {
		return false
	}
	da, db := a.Dense(), b.Dense()
	for i := range da.Values {
		for j := range da.Values[i] {
			for k := range da.Values[i][j] {
				if math.Abs(da.Values[i][j][k]-db.Values[i][j][k]) > eps {
					return false
				}
			}
		}
	}
	return true
}

// Property: min <= mean <= max element-wise.
func TestQuickMinMeanMaxOrder(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomExperiment(rand.New(rand.NewSource(seedA)), "a")
		b := randomExperiment(rand.New(rand.NewSource(seedB)), "b")
		mn, err1 := Min(nil, a, b)
		me, err2 := Mean(nil, a, b)
		mx, err3 := Max(nil, a, b)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		dn, de, dx := mn.Dense(), me.Dense(), mx.Dense()
		for i := range dn.Values {
			for j := range dn.Values[i] {
				for k := range dn.Values[i][j] {
					lo, mid, hi := dn.Values[i][j][k], de.Values[i][j][k], dx.Values[i][j][k]
					if lo > mid+1e-9 || mid > hi+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: Merge is associative in content: merge(merge(a,b),c) has the
// same severities as merge(a,b,c) (left-to-right preference both ways).
func TestQuickMergeAssociative(t *testing.T) {
	f := func(seedA, seedB, seedC int64) bool {
		a := randomExperiment(rand.New(rand.NewSource(seedA)), "a")
		b := randomExperiment(rand.New(rand.NewSource(seedB)), "b")
		c := randomExperiment(rand.New(rand.NewSource(seedC)), "c")
		ab, err := Merge(a, b, nil)
		if err != nil {
			return false
		}
		abc1, err := Merge(ab, c, nil)
		if err != nil {
			return false
		}
		abc2, err := MergeAll(nil, a, b, c)
		if err != nil {
			return false
		}
		return abc1.Fingerprint() == abc2.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: Flatten preserves every metric's total and is idempotent;
// Prune preserves totals for any threshold.
func TestQuickFlattenPruneInvariants(t *testing.T) {
	f := func(seed int64, rawThreshold uint8) bool {
		a := randomExperiment(rand.New(rand.NewSource(seed)), "a")
		threshold := float64(rawThreshold) / 255
		fl, err := Flatten(a)
		if err != nil {
			return false
		}
		fl2, err := Flatten(fl)
		if err != nil || fl2.Fingerprint() != fl.Fingerprint() {
			return false
		}
		pr, err := Prune(a, a.MetricRoots()[0].Path(), threshold)
		if err != nil {
			return false
		}
		for i, root := range a.MetricRoots() {
			want := a.MetricInclusive(root)
			if math.Abs(fl.MetricInclusive(fl.MetricRoots()[i])-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
			if math.Abs(pr.MetricInclusive(pr.MetricRoots()[i])-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return fl.Validate() == nil && pr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: clones are fingerprint-identical and independent.
func TestQuickCloneFaithful(t *testing.T) {
	f := func(seed int64) bool {
		a := randomExperiment(rand.New(rand.NewSource(seed)), "a")
		c := a.Clone()
		if c.Fingerprint() != a.Fingerprint() {
			return false
		}
		if len(c.Threads()) > 0 && len(c.Metrics()) > 0 && len(c.CallNodes()) > 0 {
			c.SetSeverity(c.Metrics()[0], c.CallNodes()[0], c.Threads()[0], 12345)
			if a.Fingerprint() == c.Fingerprint() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: the kernel engine and the legacy reference walk are
// observationally identical — for every operator, system-integration mode,
// and worker count, the results carry the same fingerprint. Severities are
// dyadic (see randomExperiment), so all sums are exact and fingerprint
// equality is the right notion of sameness. Runs under -race, which also
// exercises the sharded workers for data races.
func TestQuickEngineEquivalence(t *testing.T) {
	systems := []SystemMode{SystemAuto, SystemCollapse, SystemCopyFirst}
	workerCounts := []int{1, 2, 4}
	f := func(seedA, seedB int64, sysRaw, wRaw uint8) bool {
		a := randomExperiment(rand.New(rand.NewSource(seedA)), "a")
		b := randomExperiment(rand.New(rand.NewSource(seedB)), "b")
		sys := systems[int(sysRaw)%len(systems)]
		kernel := &Options{System: sys, Engine: EngineKernel, Workers: workerCounts[int(wRaw)%len(workerCounts)]}
		legacy := &Options{System: sys, Engine: EngineLegacy}
		ops := []func(o *Options) (*Experiment, error){
			func(o *Options) (*Experiment, error) { return Difference(a, b, o) },
			func(o *Options) (*Experiment, error) { return Sum(o, a, b) },
			func(o *Options) (*Experiment, error) { return Mean(o, a, b) },
			func(o *Options) (*Experiment, error) { return Merge(a, b, o) },
			func(o *Options) (*Experiment, error) { return Min(o, a, b) },
			func(o *Options) (*Experiment, error) { return Max(o, a, b) },
			func(o *Options) (*Experiment, error) { return StdDev(o, a, b) },
		}
		for _, op := range ops {
			k, errK := op(kernel)
			l, errL := op(legacy)
			if errK != nil || errL != nil {
				return false
			}
			if k.Fingerprint() != l.Fingerprint() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
