package core

import (
	"fmt"
	"testing"

	"cube/internal/obs"
)

// buildSized creates an experiment with metrics*cnodes*threads non-zero
// severity cells — large enough that per-invocation instrumentation cost
// is measured against real operator work.
func buildSized(title string, metrics, cnodes, threads int) *Experiment {
	e := New(title)
	ms := make([]*Metric, metrics)
	for i := range ms {
		ms[i] = e.NewMetric(fmt.Sprintf("m%d", i), Seconds, "")
	}
	main := e.NewRegion("main", "app", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("", 0, main))
	cs := make([]*CallNode, cnodes)
	cs[0] = root
	for i := 1; i < cnodes; i++ {
		cs[i] = root.NewChild(e.NewCallSite("app.c", i, e.NewRegion(fmt.Sprintf("f%d", i), "app", 0, 0)))
	}
	ths := e.SingleThreadedSystem("mach", 1, threads)
	for mi, m := range ms {
		for ci, c := range cs {
			for ti, th := range ths {
				e.SetSeverity(m, c, th, float64(mi+ci+ti+1))
			}
		}
	}
	return e
}

func TestInstrumentRecordsOperatorMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	a := buildSized("a", 3, 4, 2)
	b := buildSized("b", 3, 4, 2)
	if _, err := Difference(a, b, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeAll(nil, a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := Min(nil, a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := StdDev(nil, a, b); err != nil {
		t.Fatal(err)
	}

	for _, op := range []string{"difference", "merge", "min", "stddev"} {
		if got := reg.CounterValue("cube_op_invocations_total", obs.L("op", op)); got != 1 {
			t.Errorf("invocations{op=%s} = %d, want 1", op, got)
		}
	}
	// Difference(a, b) with identical structure but distinct cell values:
	// 24 cells in, nothing cancels except equal values. Both experiments
	// carry the same values, so the difference is all-zero; merge keeps
	// the first operand's 24 cells.
	if got := reg.CounterValue("cube_op_cells_total", obs.L("op", "merge")); got != 24 {
		t.Errorf("cells{op=merge} = %d, want 24", got)
	}
	snap := reg.Snapshot()
	var durObs int64
	var sawRatio bool
	for _, h := range snap.Histograms {
		switch h.Name {
		case "cube_op_duration_seconds":
			durObs += h.Count
		case "cube_op_zero_fill_ratio":
			sawRatio = true
		}
	}
	if durObs != 4 {
		t.Errorf("duration observations across ops = %d, want 4", durObs)
	}
	if !sawRatio {
		t.Errorf("missing zero-fill ratio histogram")
	}
	// Integration node-merge stats: every operator ran one integration.
	if got := reg.CounterValue("cube_integrate_invocations_total"); got != 4 {
		t.Errorf("integrate invocations = %d, want 4", got)
	}
	in := reg.CounterValue("cube_integrate_input_nodes_total", obs.L("dim", "metric"))
	out := reg.CounterValue("cube_integrate_output_nodes_total", obs.L("dim", "metric"))
	// Two operands with identical 3-metric forests merge to 3: inputs
	// double the outputs.
	if in != 2*out || out == 0 {
		t.Errorf("metric node merge stats: in=%d out=%d, want in == 2*out > 0", in, out)
	}
}

func TestInstrumentRecordsErrors(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)
	a := buildSized("a", 1, 1, 1)
	if _, err := Difference(a, nil, nil); err == nil {
		t.Fatal("Difference with nil operand succeeded")
	}
	if got := reg.CounterValue("cube_op_errors_total", obs.L("op", "difference")); got != 1 {
		t.Errorf("errors{op=difference} = %d, want 1", got)
	}
	if got := reg.CounterValue("cube_op_invocations_total", obs.L("op", "difference")); got != 0 {
		t.Errorf("failed invocation counted as success: %d", got)
	}
}

func TestInstrumentDisabledRecordsNothing(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	Instrument(nil) // turn it off again
	a := buildSized("a", 2, 2, 2)
	if _, err := Difference(a, a, nil); err != nil {
		t.Fatal(err)
	}
	if Instrumented() {
		t.Errorf("Instrumented() = true after Instrument(nil)")
	}
	if got := reg.CounterValue("cube_op_invocations_total", obs.L("op", "difference")); got != 0 {
		t.Errorf("disabled instrumentation still recorded %d invocations", got)
	}
}

// BenchmarkOperatorInstrumentation guards the instrumentation hot path:
// the "on" variant must stay within a few percent of "off", because costs
// are aggregated per invocation, never per severity cell. Compare:
//
//	go test -run='^$' -bench=BenchmarkOperatorInstrumentation ./internal/core
func BenchmarkOperatorInstrumentation(b *testing.B) {
	a := buildSized("a", 20, 50, 8) // 8000 cells per operand
	c := buildSized("b", 20, 50, 8)
	for _, mode := range []struct {
		name string
		reg  *obs.Registry
	}{{"off", nil}, {"on", obs.NewRegistry()}} {
		b.Run(mode.name, func(b *testing.B) {
			Instrument(mode.reg)
			defer Instrument(nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Difference(a, c, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
