package core

import "fmt"

// This file implements structural operators beyond the paper's three
// arithmetic ones ("others may follow in the future"): the flat-profile
// representation the data model describes — "every flat profile can be
// represented using multiple trivial call trees (one for each region)
// consisting only of a single node" — and data-reduction operators that
// restrict an experiment to a metric subtree or a call subtree. All of
// them are closed: their results are complete derived experiments.

// Flatten converts an experiment into its flat-profile form: the severity
// of every call path is accumulated onto the path's callee region, and the
// call dimension becomes a forest of trivial single-node call trees, one
// per region (in first-appearance order of the original call tree). The
// metric and system dimensions are preserved. Displays use this to offer
// the flat-profile view of the program dimension.
func Flatten(x *Experiment) (*Experiment, error) {
	if x == nil {
		return nil, fmt.Errorf("core: Flatten of nil experiment")
	}
	in, err := integrate(nil, x)
	if err != nil {
		return nil, err
	}
	out := in.out

	// Replace the call forest with one trivial tree per callee region of
	// the integrated tree, mapping every original call node onto its
	// region's node.
	regionNode := map[*Region]*CallNode{}
	flatFor := map[*CallNode]*CallNode{}
	var flatRoots []*CallNode
	var sites []*CallSite
	for _, cn := range out.CallNodes() {
		reg := cn.Callee()
		fn, ok := regionNode[reg]
		if !ok {
			site := &CallSite{File: reg.Module, Line: reg.BeginLine, Callee: reg}
			sites = append(sites, site)
			fn = NewCallNode(site)
			regionNode[reg] = fn
			flatRoots = append(flatRoots, fn)
		}
		flatFor[cn] = fn
	}

	// Re-route severities through the flattening before swapping forests.
	// EachSeverity streams the operand read-only (no map materialisation
	// on columnar or shared experiments).
	newSev := make(map[sevKey]float64, x.NonZeroCount())
	mf, cf, tf := in.metricFrom[0], in.cnodeFrom[0], in.threadFrom[0]
	x.EachSeverity(func(m *Metric, c *CallNode, t *Thread, v float64) {
		nk := sevKey{mf[m], flatFor[cf[c]], tf[t]}
		newSev[nk] += v
	})
	out.callRoots = flatRoots
	out.callSites = sites
	out.sev = newSev
	out.dirty = true

	out.Derived = true
	out.Operation = "flatten"
	out.Parents = []string{x.Title}
	out.Title = fmt.Sprintf("flatten(%s)", x.Title)
	out.Attrs["cube.operation"] = "flatten"
	return out, nil
}

// ExtractMetrics restricts an experiment to the metric subtrees rooted at
// the metrics with the given paths (see Metric.Path), discarding all other
// metrics and their severities — a simple data-reduction operator in the
// spirit of the paper's future-work discussion. The extracted roots become
// the roots of the result's metric forest; program and system dimensions
// are preserved.
func ExtractMetrics(x *Experiment, paths ...string) (*Experiment, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("core: ExtractMetrics requires at least one metric path")
	}
	in, err := integrate(nil, x)
	if err != nil {
		return nil, err
	}
	out := in.out

	keep := map[*Metric]bool{}
	var newRoots []*Metric
	for _, p := range paths {
		m := out.FindMetric(p)
		if m == nil {
			return nil, fmt.Errorf("core: metric %q not found", p)
		}
		if keep[m] {
			continue
		}
		m.Walk(func(d *Metric) { keep[d] = true })
		m.parent = nil
		newRoots = append(newRoots, m)
	}
	out.metricRoots = newRoots
	out.dirty = true

	mf, cf, tf := in.metricFrom[0], in.cnodeFrom[0], in.threadFrom[0]
	newSev := make(map[sevKey]float64)
	x.EachSeverity(func(m *Metric, c *CallNode, t *Thread, v float64) {
		rm := mf[m]
		if keep[rm] {
			newSev[sevKey{rm, cf[c], tf[t]}] = v
		}
	})
	out.sev = newSev

	out.Derived = true
	out.Operation = "extract"
	out.Parents = []string{x.Title}
	out.Title = fmt.Sprintf("extract(%s)", x.Title)
	out.Attrs["cube.operation"] = "extract"
	return out, nil
}

// ExtractCallSubtree restricts an experiment to the call subtree rooted at
// the call node with the given path (see CallNode.Path); the subtree root
// becomes the only call root of the result. Severities outside the subtree
// are discarded.
func ExtractCallSubtree(x *Experiment, path string) (*Experiment, error) {
	in, err := integrate(nil, x)
	if err != nil {
		return nil, err
	}
	out := in.out

	root := out.FindCallNode(path)
	if root == nil {
		return nil, fmt.Errorf("core: call path %q not found", path)
	}
	keep := map[*CallNode]bool{}
	root.Walk(func(d *CallNode) { keep[d] = true })
	root.parent = nil
	out.callRoots = []*CallNode{root}
	out.dirty = true

	mf, cf, tf := in.metricFrom[0], in.cnodeFrom[0], in.threadFrom[0]
	newSev := make(map[sevKey]float64)
	x.EachSeverity(func(m *Metric, c *CallNode, t *Thread, v float64) {
		rc := cf[c]
		if keep[rc] {
			newSev[sevKey{mf[m], rc, tf[t]}] = v
		}
	})
	out.sev = newSev

	out.Derived = true
	out.Operation = "extract-call"
	out.Parents = []string{x.Title}
	out.Title = fmt.Sprintf("extract-call(%s, %s)", x.Title, path)
	out.Attrs["cube.operation"] = "extract-call"
	return out, nil
}
