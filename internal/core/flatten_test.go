package core

import (
	"math"
	"testing"
)

// buildRecursiveish builds an experiment where the same region appears at
// several call paths (main calls foo directly and via bar), the
// interesting case for flattening.
func buildMultiPath() *Experiment {
	e := New("mp")
	time := e.NewMetric("Time", Seconds, "")
	mainR := e.NewRegion("main", "app", 0, 0)
	fooR := e.NewRegion("foo", "app", 0, 0)
	barR := e.NewRegion("bar", "app", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("app", 1, mainR))
	foo1 := root.NewChild(e.NewCallSite("app", 2, fooR))
	bar := root.NewChild(e.NewCallSite("app", 3, barR))
	foo2 := bar.NewChild(e.NewCallSite("app", 4, fooR))
	e.Invalidate()
	th := e.SingleThreadedSystem("m", 1, 2)
	for i, t := range th {
		e.SetSeverity(time, root, t, 1)
		e.SetSeverity(time, foo1, t, 2+float64(i))
		e.SetSeverity(time, bar, t, 4)
		e.SetSeverity(time, foo2, t, 8)
	}
	return e
}

func TestFlatten(t *testing.T) {
	e := buildMultiPath()
	f, err := Flatten(e)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Derived || f.Operation != "flatten" {
		t.Errorf("provenance wrong")
	}
	// One trivial tree per region, each a single node.
	if len(f.CallRoots()) != 3 {
		t.Fatalf("flat roots = %d, want 3", len(f.CallRoots()))
	}
	for _, r := range f.CallRoots() {
		if len(r.Children()) != 0 {
			t.Errorf("flat tree for %s not trivial", r.Callee().Name)
		}
	}
	// foo accumulated both call paths: per thread 2+i+8.
	time := f.FindMetricByName("Time")
	foo := f.FindCallNode("foo")
	if got := f.MetricValue(time, foo); got != (2+8)+(3+8) {
		t.Errorf("flattened foo = %v, want 21", got)
	}
	// Grand total preserved.
	if got, want := f.MetricInclusive(time), e.MetricInclusive(e.FindMetricByName("Time")); got != want {
		t.Errorf("flatten changed the total: %v vs %v", got, want)
	}
	if err := f.Validate(); err != nil {
		t.Errorf("flat profile invalid: %v", err)
	}
	// Flatten is idempotent in content.
	ff, err := Flatten(f)
	if err != nil {
		t.Fatal(err)
	}
	if ff.Fingerprint() != f.Fingerprint() {
		t.Errorf("Flatten not idempotent")
	}
	// Original untouched.
	if e.FindCallNode("main/bar/foo") == nil {
		t.Errorf("Flatten mutated its operand")
	}
}

func TestFlattenComposesWithDifference(t *testing.T) {
	a := buildMultiPath()
	b := buildMultiPath()
	b.SetSeverity(b.FindMetricByName("Time"), b.FindCallNode("main/bar/foo"), b.Threads()[0], 10)
	fa, _ := Flatten(a)
	fb, _ := Flatten(b)
	d, err := Difference(fa, fb, nil)
	if err != nil {
		t.Fatal(err)
	}
	foo := d.FindCallNode("foo")
	if got := d.MetricValue(d.FindMetricByName("Time"), foo); got != 8-10 {
		t.Errorf("difference of flat profiles = %v, want -2", got)
	}
}

func TestExtractMetrics(t *testing.T) {
	e := buildSmall("x")
	got, err := ExtractMetrics(e, "Time/Comm")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.MetricRoots()) != 1 || got.MetricRoots()[0].Name != "Comm" {
		t.Fatalf("extracted roots wrong")
	}
	if got.MetricRoots()[0].Parent() != nil {
		t.Errorf("extracted root still parented")
	}
	// Wait survives beneath Comm, Time/Visits severities dropped.
	if got.FindMetricByName("Wait") == nil {
		t.Errorf("subtree child lost")
	}
	if got.MetricInclusive(got.MetricRoots()[0]) != e.MetricInclusive(e.FindMetricByName("Comm")) {
		t.Errorf("extracted severities wrong")
	}
	if err := got.Validate(); err != nil {
		t.Errorf("extract invalid: %v", err)
	}
	// Errors.
	if _, err := ExtractMetrics(e, "Nope"); err == nil {
		t.Errorf("unknown path accepted")
	}
	if _, err := ExtractMetrics(e); err == nil {
		t.Errorf("empty extraction accepted")
	}
	// Original untouched.
	if e.FindMetric("Time/Comm/Wait") == nil {
		t.Errorf("ExtractMetrics mutated its operand")
	}
}

func TestExtractMetricsMultiple(t *testing.T) {
	e := buildSmall("x")
	got, err := ExtractMetrics(e, "Time/Comm", "Visits")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.MetricRoots()) != 2 {
		t.Fatalf("roots = %d", len(got.MetricRoots()))
	}
	// Duplicate paths deduplicate.
	got2, err := ExtractMetrics(e, "Visits", "Visits")
	if err != nil || len(got2.MetricRoots()) != 1 {
		t.Errorf("duplicate extraction wrong: %v", err)
	}
}

func TestExtractCallSubtree(t *testing.T) {
	e := buildMultiPath()
	got, err := ExtractCallSubtree(e, "main/bar")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.CallRoots()) != 1 || got.CallRoots()[0].Callee().Name != "bar" {
		t.Fatalf("extracted call root wrong")
	}
	time := got.FindMetricByName("Time")
	// bar subtree: 4+8 per thread = 24 total.
	if tot := got.MetricInclusive(time); tot != 24 {
		t.Errorf("extracted total = %v, want 24", tot)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
	if _, err := ExtractCallSubtree(e, "main/zzz"); err == nil {
		t.Errorf("unknown call path accepted")
	}
	// Composition: extract then flatten.
	f, err := Flatten(got)
	if err != nil {
		t.Fatal(err)
	}
	if f.MetricInclusive(f.FindMetricByName("Time")) != 24 {
		t.Errorf("extract+flatten lost severity")
	}
}

func TestFlattenPreservesSystemAndMetrics(t *testing.T) {
	e := buildSmall("x")
	f, err := Flatten(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Threads()) != len(e.Threads()) || len(f.Metrics()) != len(e.Metrics()) {
		t.Errorf("flatten disturbed other dimensions")
	}
	for _, m := range e.Metrics() {
		fm := f.FindMetric(m.Path())
		if fm == nil {
			t.Fatalf("metric %s lost", m.Path())
		}
		if math.Abs(f.MetricTotal(fm)-e.MetricTotal(m)) > 1e-12 {
			t.Errorf("metric %s total changed", m.Path())
		}
	}
}
