package core

import (
	"sync/atomic"
	"time"

	"cube/internal/obs"
)

// Operator instrumentation. The algebra records, per operator invocation:
//
//	cube_op_invocations_total{op}   how often each operator ran
//	cube_op_errors_total{op}        failed invocations
//	cube_op_duration_seconds{op}    wall time per invocation
//	cube_op_cells_total{op}         severity cells written to results
//	cube_op_zero_fill_ratio{op}     zero-extension overhead (see below)
//
// and per metadata integration:
//
//	cube_integrate_invocations_total
//	cube_integrate_input_nodes_total{dim}   metadata nodes consumed
//	cube_integrate_output_nodes_total{dim}  metadata nodes produced
//
// The zero-fill expansion ratio captures the cost of the algebra's
// zero-extension step: every operand's severity function is extended with
// zeros onto the integrated support, so the cells an operator actually
// touches number |result support| x |operands|, while the operands only
// define totalInputCells of them. The ratio of the two (>= 1 in the usual
// case) tells how much work is spent on implicit zeros — the number that
// decides whether sparse iteration is paying off.
//
// Instrumentation is process-global and off by default: Instrument(nil)
// (the initial state) makes startOp return a nil recorder and the
// per-invocation cost collapses to one atomic pointer load. Costs are
// aggregated locally and published once per invocation — never per cell —
// so the hot loops stay free of atomic traffic.

var opRegistry atomic.Pointer[obs.Registry]

// Instrument directs operator and integration metrics into reg; nil
// disables instrumentation (the default). The setting is process-wide:
// the algebra is a library, and every caller (HTTP service, CLI, test)
// that wants operator telemetry shares one seam.
func Instrument(reg *obs.Registry) {
	opRegistry.Store(reg)
}

// Instrumented reports whether operator metrics are currently recorded.
func Instrumented() bool { return opRegistry.Load() != nil }

// opRecorder carries one invocation's bookkeeping from startOp to done.
// A nil *opRecorder (instrumentation and tracing both disabled) makes
// every method a no-op. Either side may be active alone: reg drives the
// aggregate metrics, span the per-invocation trace tree.
type opRecorder struct {
	reg      *obs.Registry
	span     *obs.Span
	ev       *obs.Event
	op       string
	start    time.Time
	inCells  int
	operands int
}

// startOp begins recording one operator invocation over the operands.
// The trace span parents under opts.Trace when the caller (the HTTP
// service) carries one, else opens a root trace on the process tracer
// (obs.SetTracer — the CLIs' -trace flag); with neither, tracing costs
// one atomic pointer load. The wide event (opts.Event) rides the same
// recorder: operator name now, kernel attribution as the plan runs.
func startOp(op string, opts *Options, operands []*Experiment) *opRecorder {
	reg := opRegistry.Load()
	span := startOpSpan(op, opts)
	var ev *obs.Event
	if opts != nil {
		ev = opts.Event
	}
	if reg == nil && span == nil && ev == nil {
		return nil
	}
	ev.SetOp(op)
	rec := &opRecorder{reg: reg, span: span, ev: ev, op: op, start: time.Now(), operands: len(operands)}
	for _, x := range operands {
		if x != nil {
			rec.inCells += x.NonZeroCount()
		}
	}
	span.SetAttr("operands", rec.operands)
	span.SetAttr("cells_in", rec.inCells)
	return rec
}

func startOpSpan(op string, opts *Options) *obs.Span {
	if opts != nil && opts.Trace != nil {
		return opts.Trace.StartChild("op." + op)
	}
	if t := obs.ActiveTracer(); t != nil {
		return t.StartTrace("op."+op, "")
	}
	return nil
}

// opSpan returns the invocation's trace span (nil when untraced), the
// parent for the stage spans the kernel plan opens.
func (rec *opRecorder) opSpan() *obs.Span {
	if rec == nil {
		return nil
	}
	return rec.span
}

// child opens a stage span under the invocation's span; nil when untraced.
func (rec *opRecorder) child(name string) *obs.Span {
	return rec.opSpan().StartChild(name)
}

// fail records an invocation that returned an error.
func (rec *opRecorder) fail() {
	if rec == nil {
		return
	}
	if rec.reg != nil {
		rec.reg.Counter("cube_op_errors_total", obs.L("op", rec.op)).Inc()
	}
	if rec.span != nil {
		rec.span.SetAttr("error", true)
		rec.span.End()
	}
}

// done records a successful invocation that produced out.
func (rec *opRecorder) done(out *Experiment) {
	if rec == nil {
		return
	}
	outCells := out.NonZeroCount()
	if rec.reg != nil {
		op := obs.L("op", rec.op)
		rec.reg.Counter("cube_op_invocations_total", op).Inc()
		// The duration observation carries the trace ID (when traced) as
		// its exemplar, so a histogram outlier links to /debug/traces.
		rec.reg.Histogram("cube_op_duration_seconds", obs.DefLatencyBuckets, op).
			ObserveExemplar(time.Since(rec.start).Seconds(), rec.span.TraceID())
		rec.reg.Counter("cube_op_cells_total", op).Add(int64(outCells))
		if rec.inCells > 0 {
			ratio := float64(outCells*rec.operands) / float64(rec.inCells)
			rec.reg.Histogram("cube_op_zero_fill_ratio", obs.DefRatioBuckets, op).Observe(ratio)
		}
	}
	if rec.span != nil {
		rec.span.SetAttr("cells_out", outCells)
		rec.span.End()
	}
	rec.ev.AddKernelCells(int64(outCells))
}

// tracedIntegrate wraps integrate in the invocation's "integrate" span,
// annotated with the size of the merged metadata and which fast path (if
// any) produced it.
func tracedIntegrate(rec *opRecorder, opts *Options, operands []*Experiment) (*integration, error) {
	sp := rec.child("integrate")
	in, err := integrate(opts, operands...)
	if sp != nil {
		if err == nil {
			// Enumeration lengths, not mapping sizes: the digest fast
			// paths never build the pointer maps the old counts read.
			sp.SetAttr("metrics", len(in.out.Metrics()))
			sp.SetAttr("callnodes", len(in.out.CallNodes()))
			sp.SetAttr("fastpath", in.fastpathLabel())
		}
		sp.End()
	}
	return in, err
}

// recordMetaFastpath publishes which integrate path served an invocation —
// to the metrics registry and to the request's wide event when one rides
// the options.
func recordMetaFastpath(opts *Options, kind string) {
	if opts != nil {
		opts.Event.AddMetaFastpath(kind)
	}
	if reg := opRegistry.Load(); reg != nil {
		reg.Counter("cube_meta_fastpath_total", obs.L("kind", kind)).Inc()
	}
}

// Kernel-layer instrumentation (kernel.go). Each operator invocation on the
// kernel engine additionally records:
//
//	cube_kernel_stage_seconds{stage}  wall time of lower/accumulate/materialize
//	cube_kernel_shards_total          shards worked (with invocations: avg width)
//	cube_kernel_tuples_total          operand tuples consumed by kernels
//	cube_kernel_invocations_total     kernel plans executed
//
// Stage timers follow the same discipline as the operator metrics: with
// instrumentation disabled the cost is one atomic pointer load per stage.

// kernelStage carries one stage's start time; the zero reg means disabled.
type kernelStage struct {
	reg   *obs.Registry
	start time.Time
}

func startKernelStage() kernelStage {
	reg := opRegistry.Load()
	if reg == nil {
		return kernelStage{}
	}
	return kernelStage{reg: reg, start: time.Now()}
}

func (s kernelStage) done(stage string) {
	if s.reg == nil {
		return
	}
	s.reg.Histogram("cube_kernel_stage_seconds", obs.DefLatencyBuckets, obs.L("stage", stage)).Observe(time.Since(s.start).Seconds())
}

// recordKernelPlan publishes the shape of one kernel execution — to the
// metrics registry and to the invocation's wide event when one rides the
// plan.
func recordKernelPlan(p *kernelPlan) {
	p.event.AddKernelPlan(p.shards, int64(p.total))
	reg := opRegistry.Load()
	if reg == nil {
		return
	}
	reg.Counter("cube_kernel_invocations_total").Inc()
	reg.Counter("cube_kernel_shards_total").Add(int64(p.shards))
	reg.Counter("cube_kernel_tuples_total").Add(int64(p.total))
}

// recordIntegration publishes the metadata node-merge statistics of one
// integration: how many metric/call/thread nodes went in across all
// operands and how many distinct nodes the merged result has. The gap
// between the two is the structural overlap the merge discovered.
func recordIntegration(in *integration, operands []*Experiment) {
	reg := opRegistry.Load()
	if reg == nil {
		return
	}
	// Input sizes from the operands' enumerations (one entry per operand
	// node, exactly what the mapping sizes used to count), output sizes
	// from plain forest walks — the digest fast paths build neither the
	// pointer maps nor the source attribution this used to read, and
	// walking avoids eagerly building the result's index caches.
	var inMetrics, inCNodes, inThreads int
	for _, x := range operands {
		x.reindex()
		inMetrics += len(x.metrics)
		inCNodes += len(x.cnodes)
		inThreads += len(x.threads)
	}
	var outMetrics, outCNodes, outThreads int
	for _, r := range in.out.metricRoots {
		r.Walk(func(*Metric) { outMetrics++ })
	}
	for _, r := range in.out.callRoots {
		r.Walk(func(*CallNode) { outCNodes++ })
	}
	for _, mach := range in.out.machines {
		for _, nd := range mach.Nodes() {
			for _, p := range nd.Processes() {
				outThreads += len(p.Threads())
			}
		}
	}
	reg.Counter("cube_integrate_invocations_total").Inc()
	dimMetric, dimCNode, dimThread := obs.L("dim", "metric"), obs.L("dim", "callnode"), obs.L("dim", "thread")
	reg.Counter("cube_integrate_input_nodes_total", dimMetric).Add(int64(inMetrics))
	reg.Counter("cube_integrate_input_nodes_total", dimCNode).Add(int64(inCNodes))
	reg.Counter("cube_integrate_input_nodes_total", dimThread).Add(int64(inThreads))
	reg.Counter("cube_integrate_output_nodes_total", dimMetric).Add(int64(outMetrics))
	reg.Counter("cube_integrate_output_nodes_total", dimCNode).Add(int64(outCNodes))
	reg.Counter("cube_integrate_output_nodes_total", dimThread).Add(int64(outThreads))
}
