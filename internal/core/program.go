package core

import "fmt"

// The program dimension describes the static and dynamic program structure:
// modules, regions, call sites, and call-tree nodes (call paths).

// Module is a compilation unit (a source file or library) containing
// regions. Modules exist mainly to disambiguate regions with equal names.
type Module struct {
	// Name is the module's path or label, e.g. "solver.f90".
	Name string
}

// Region is a general code section: a function, a loop, or another kind of
// basic block. Regions must be properly nested in the source, but the data
// model stores them as a flat set; nesting is expressed by call paths.
type Region struct {
	// Name is the region's label, e.g. a function name such as "MPI_Recv".
	Name string
	// Module names the module the region belongs to (may be empty).
	Module string
	// BeginLine and EndLine delimit the region in its module; zero when
	// unknown.
	BeginLine, EndLine int
	// Description is free-form documentation.
	Description string
}

// String implements fmt.Stringer.
func (r *Region) String() string {
	if r.Module == "" {
		return r.Name
	}
	return r.Module + ":" + r.Name
}

// CallSite denotes a source-code location where control flow may move from
// one region into another (a call statement, but also e.g. a loop entry).
// The region reached by executing the call site is its callee.
type CallSite struct {
	// File and Line locate the call site in the source; Line is zero when
	// unknown. Line numbers can change across code versions while still
	// denoting the "same" call site, so they participate in call-tree
	// matching only under CallMatchCalleeLine.
	File string
	Line int
	// Callee is the region the call site enters. It must be non-nil and
	// registered with the owning experiment.
	Callee *Region
}

// String implements fmt.Stringer.
func (s *CallSite) String() string {
	if s.File == "" && s.Line == 0 {
		return s.Callee.String()
	}
	return fmt.Sprintf("%s (%s:%d)", s.Callee, s.File, s.Line)
}

// CallNode is a node of the call tree; the path from a root to a CallNode is
// a call path. The set of all call-tree nodes forms a forest: usually a
// single root (the invocation of main), but parallel programs with several
// executables may need more roots, and flat profiles are represented as one
// trivial single-node tree per region. Multiple nodes may point to the same
// call site. Recursive call structures must be mapped onto a tree by the
// producer (e.g. by collapsing cycles into a single leaf).
type CallNode struct {
	// Site is the call site from which this node was entered.
	Site *CallSite

	parent   *CallNode
	children []*CallNode
}

// NewCallNode returns a fresh root call node entered via the given site.
func NewCallNode(site *CallSite) *CallNode {
	return &CallNode{Site: site}
}

// NewChild creates a call node as a child of n, entered via the given site.
func (n *CallNode) NewChild(site *CallSite) *CallNode {
	c := &CallNode{Site: site, parent: n}
	n.children = append(n.children, c)
	return c
}

// AddChild attaches an existing root call node as a child of n.
func (n *CallNode) AddChild(c *CallNode) error {
	if c.parent != nil {
		return fmt.Errorf("core: call node %q already has a parent", c.Site)
	}
	c.parent = n
	n.children = append(n.children, c)
	return nil
}

// Parent returns the node's parent, or nil for a root.
func (n *CallNode) Parent() *CallNode { return n.parent }

// Children returns the node's children in insertion order. The returned
// slice is owned by the node and must not be modified.
func (n *CallNode) Children() []*CallNode { return n.children }

// Callee returns the region this node executes in.
func (n *CallNode) Callee() *Region { return n.Site.Callee }

// Walk visits n and all of its descendants in pre-order.
func (n *CallNode) Walk(fn func(*CallNode)) {
	fn(n)
	for _, c := range n.children {
		c.Walk(fn)
	}
}

// Path returns the callee names from the root down to n, separated by "/".
func (n *CallNode) Path() string {
	if n.parent == nil {
		return n.Callee().Name
	}
	return n.parent.Path() + "/" + n.Callee().Name
}

// Depth returns the number of ancestors of n (0 for a root).
func (n *CallNode) Depth() int {
	d := 0
	for p := n.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// FindChild returns the first child whose callee has the given name, or nil.
func (n *CallNode) FindChild(calleeName string) *CallNode {
	for _, c := range n.children {
		if c.Callee().Name == calleeName {
			return c
		}
	}
	return nil
}

// String implements fmt.Stringer.
func (n *CallNode) String() string { return n.Path() }

// CallMatchMode selects the equality relation used when call trees of two
// experiments are integrated.
type CallMatchMode int

const (
	// CallMatchCallee matches call-tree nodes by callee identity (region
	// name and module). This is the default: call-site attributes such as
	// line numbers can change across code versions while still denoting
	// the same call site.
	CallMatchCallee CallMatchMode = iota
	// CallMatchCalleeLine additionally requires call-site file and line to
	// agree. Useful when comparing runs of the identical binary.
	CallMatchCalleeLine
)

// String implements fmt.Stringer.
func (m CallMatchMode) String() string {
	switch m {
	case CallMatchCallee:
		return "callee"
	case CallMatchCalleeLine:
		return "callee+line"
	}
	return fmt.Sprintf("CallMatchMode(%d)", int(m))
}

// callNodeKey is the equality relation for call-tree integration under the
// given mode.
func callNodeKey(n *CallNode, mode CallMatchMode) string {
	r := n.Callee()
	k := r.Name + "\x00" + r.Module
	if mode == CallMatchCalleeLine {
		k += fmt.Sprintf("\x00%s\x00%d", n.Site.File, n.Site.Line)
	}
	return k
}

// regionKey is the equality relation for regions: name plus module.
func regionKey(r *Region) string {
	return r.Name + "\x00" + r.Module
}
