package core

import (
	"reflect"
	"strings"
	"testing"
)

// buildSmall constructs a compact experiment used by many tests:
//
//	metrics: Time{Comm{Wait}}, Visits
//	calls:   main{compute, MPI_Recv}
//	system:  1 machine, 2 nodes, 4 single-threaded ranks
func buildSmall(title string) *Experiment {
	e := New(title)
	time := e.NewMetric("Time", Seconds, "")
	comm := time.NewChild("Comm", "")
	wait := comm.NewChild("Wait", "")
	e.NewMetric("Visits", Occurrences, "")

	mainR := e.NewRegion("main", "app.c", 1, 99)
	compR := e.NewRegion("compute", "app.c", 10, 20)
	recvR := e.NewRegion("MPI_Recv", "libmpi", 0, 0)
	root := e.NewCallRoot(e.NewCallSite("", 0, mainR))
	comp := root.NewChild(e.NewCallSite("app.c", 12, compR))
	recv := root.NewChild(e.NewCallSite("app.c", 30, recvR))

	threads := e.SingleThreadedSystem("mach", 2, 4)
	for i, th := range threads {
		e.SetSeverity(time, root, th, 0.5)
		e.SetSeverity(time, comp, th, float64(i+1))
		e.SetSeverity(comm, recv, th, 0.25)
		e.SetSeverity(wait, recv, th, 0.125)
	}
	return e
}

func TestEnumerationOrders(t *testing.T) {
	e := buildSmall("t")
	var names []string
	for _, m := range e.Metrics() {
		names = append(names, m.Name)
	}
	if !reflect.DeepEqual(names, []string{"Time", "Comm", "Wait", "Visits"}) {
		t.Errorf("metric order = %v", names)
	}
	var paths []string
	for _, c := range e.CallNodes() {
		paths = append(paths, c.Path())
	}
	if !reflect.DeepEqual(paths, []string{"main", "main/compute", "main/MPI_Recv"}) {
		t.Errorf("call order = %v", paths)
	}
	if len(e.Threads()) != 4 || len(e.Processes()) != 4 {
		t.Errorf("system sizes: %d threads, %d procs", len(e.Threads()), len(e.Processes()))
	}
	// Two nodes, block distribution 2+2.
	nodes := e.Machines()[0].Nodes()
	if len(nodes) != 2 || len(nodes[0].Processes()) != 2 || len(nodes[1].Processes()) != 2 {
		t.Errorf("node distribution wrong")
	}
}

func TestIndexes(t *testing.T) {
	e := buildSmall("t")
	for i, m := range e.Metrics() {
		if j, ok := e.MetricIndex(m); !ok || j != i {
			t.Errorf("MetricIndex(%s) = %d,%v want %d", m.Name, j, ok, i)
		}
	}
	if _, ok := e.MetricIndex(NewMetric("alien", Seconds, "")); ok {
		t.Errorf("foreign metric indexed")
	}
	for i, c := range e.CallNodes() {
		if j, ok := e.CallNodeIndex(c); !ok || j != i {
			t.Errorf("CallNodeIndex wrong at %d", i)
		}
	}
	for i, th := range e.Threads() {
		if j, ok := e.ThreadIndex(th); !ok || j != i {
			t.Errorf("ThreadIndex wrong at %d", i)
		}
	}
}

func TestInvalidateAfterExternalMutation(t *testing.T) {
	e := buildSmall("t")
	n := len(e.Metrics())
	e.MetricRoots()[0].NewChild("Late", "")
	e.Invalidate()
	if len(e.Metrics()) != n+1 {
		t.Errorf("metric added externally not visible after Invalidate")
	}
}

func TestSeverityStore(t *testing.T) {
	e := buildSmall("t")
	m := e.FindMetricByName("Time")
	c := e.FindCallNode("main/compute")
	th := e.Threads()[0]
	if got := e.Severity(m, c, th); got != 1 {
		t.Errorf("Severity = %v, want 1", got)
	}
	e.AddSeverity(m, c, th, 2)
	if got := e.Severity(m, c, th); got != 3 {
		t.Errorf("after Add: %v, want 3", got)
	}
	before := e.NonZeroCount()
	e.SetSeverity(m, c, th, 0)
	if e.NonZeroCount() != before-1 {
		t.Errorf("zero set should delete the tuple")
	}
	e.AddSeverity(m, c, th, 0)
	if e.NonZeroCount() != before-1 {
		t.Errorf("adding zero should not create a tuple")
	}
	e.SetSeverity(m, c, th, 5)
	e.AddSeverity(m, c, th, -5)
	if e.NonZeroCount() != before-1 {
		t.Errorf("add to exactly zero should delete the tuple")
	}
}

func TestAggregations(t *testing.T) {
	e := buildSmall("t")
	time := e.FindMetricByName("Time")
	comm := e.FindMetricByName("Comm")
	wait := e.FindMetricByName("Wait")
	root := e.FindCallNode("main")
	recv := e.FindCallNode("main/MPI_Recv")

	// MetricValue: exclusive metric at exclusive cnode over all threads.
	if got := e.MetricValue(time, root); got != 4*0.5 {
		t.Errorf("MetricValue(time,root) = %v", got)
	}
	// MetricTotal: 0.5*4 (root) + (1+2+3+4) (compute) = 12.
	if got := e.MetricTotal(time); got != 12 {
		t.Errorf("MetricTotal(time) = %v", got)
	}
	// Inclusive adds Comm (1) and Wait (0.5).
	if got := e.MetricInclusive(time); got != 13.5 {
		t.Errorf("MetricInclusive(time) = %v", got)
	}
	if got := e.MetricInclusive(comm); got != 1.5 {
		t.Errorf("MetricInclusive(comm) = %v", got)
	}
	// CallInclusive at root for Time = 12 (whole call tree).
	if got := e.CallInclusive(time, root); got != 12 {
		t.Errorf("CallInclusive = %v", got)
	}
	if got := e.CallInclusive(wait, recv); got != 0.5 {
		t.Errorf("CallInclusive(wait,recv) = %v", got)
	}
	// ThreadTotal for thread 2: 0.5 + 3 = 3.5.
	if got := e.ThreadTotal(time, e.Threads()[2]); got != 3.5 {
		t.Errorf("ThreadTotal = %v", got)
	}
	if got := e.GrandTotal(time); got != 13.5 {
		t.Errorf("GrandTotal = %v", got)
	}
}

func TestEachSeverityDeterministic(t *testing.T) {
	e := buildSmall("t")
	var a, b []string
	e.EachSeverity(func(m *Metric, c *CallNode, th *Thread, v float64) {
		a = append(a, m.Name+c.Path())
	})
	e.EachSeverity(func(m *Metric, c *CallNode, th *Thread, v float64) {
		b = append(b, m.Name+c.Path())
	})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("EachSeverity order not deterministic")
	}
	if len(a) != e.NonZeroCount() {
		t.Errorf("EachSeverity visited %d tuples, store has %d", len(a), e.NonZeroCount())
	}
}

func TestDenseRoundTrip(t *testing.T) {
	e := buildSmall("t")
	d := e.Dense()
	if len(d.Values) != len(e.Metrics()) || len(d.Values[0]) != len(e.CallNodes()) || len(d.Values[0][0]) != len(e.Threads()) {
		t.Fatalf("dense shape wrong")
	}
	fp := e.Fingerprint()
	if err := e.SetDense(d); err != nil {
		t.Fatalf("SetDense: %v", err)
	}
	if e.Fingerprint() != fp {
		t.Errorf("dense round-trip changed the experiment")
	}
}

func TestSetDenseShapeMismatch(t *testing.T) {
	e := buildSmall("t")
	d := e.Dense()
	other := buildSmall("other")
	other.NewMetric("Extra", Seconds, "")
	if err := other.SetDense(d); err == nil {
		t.Errorf("shape mismatch accepted")
	}
}

func TestFindHelpers(t *testing.T) {
	e := buildSmall("t")
	if e.FindMetric("Time/Comm/Wait") == nil || e.FindMetric("nope") != nil {
		t.Errorf("FindMetric wrong")
	}
	if e.FindMetricByName("Wait") == nil {
		t.Errorf("FindMetricByName wrong")
	}
	if e.FindRegion("compute") == nil || e.FindRegion("nope") != nil {
		t.Errorf("FindRegion wrong")
	}
	if e.FindCallNode("main/MPI_Recv") == nil || e.FindCallNode("main/x") != nil {
		t.Errorf("FindCallNode wrong")
	}
	if e.FindProcess(3) == nil || e.FindProcess(77) != nil {
		t.Errorf("FindProcess wrong")
	}
	if e.FindThread(2, 0) == nil || e.FindThread(2, 1) != nil {
		t.Errorf("FindThread wrong")
	}
}

func TestSingleThreadedSystemShapes(t *testing.T) {
	e := New("s")
	threads := e.SingleThreadedSystem("m", 3, 7) // 3 nodes, ceil(7/3)=3 per node
	if len(threads) != 7 {
		t.Fatalf("threads = %d", len(threads))
	}
	sizes := []int{}
	for _, nd := range e.Machines()[0].Nodes() {
		sizes = append(sizes, len(nd.Processes()))
	}
	if !reflect.DeepEqual(sizes, []int{3, 3, 1}) {
		t.Errorf("node sizes = %v", sizes)
	}
	// Degenerate node count.
	e2 := New("s2")
	e2.SingleThreadedSystem("m", 0, 2)
	if len(e2.Machines()[0].Nodes()) != 1 {
		t.Errorf("zero nodes should clamp to one")
	}
}

func TestAddRootValidation(t *testing.T) {
	e := New("x")
	root := NewMetric("Time", Seconds, "")
	child := root.NewChild("C", "")
	if err := e.AddMetricRoot(child); err == nil {
		t.Errorf("non-root metric accepted as root")
	}
	if err := e.AddMetricRoot(root); err != nil {
		t.Errorf("AddMetricRoot: %v", err)
	}
	croot := NewCallNode(&CallSite{Callee: &Region{Name: "m"}})
	cchild := croot.NewChild(&CallSite{Callee: &Region{Name: "c"}})
	if err := e.AddCallRoot(cchild); err == nil {
		t.Errorf("non-root call node accepted as root")
	}
	if err := e.AddCallRoot(croot); err != nil {
		t.Errorf("AddCallRoot: %v", err)
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	a := buildSmall("a")
	b := buildSmall("b")
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("titles must not affect fingerprints")
	}
	b.SetSeverity(b.FindMetricByName("Time"), b.FindCallNode("main"), b.Threads()[0], 99)
	if a.Fingerprint() == b.Fingerprint() {
		t.Errorf("severity change not reflected in fingerprint")
	}
	if !strings.Contains(a.Fingerprint(), "Time/Comm/Wait") {
		t.Errorf("fingerprint lacks metric paths")
	}
}
