package core

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
)

// Metadata hash-consing. MetaDigest condenses an experiment's entire
// metadata — the metric forest, the registered regions and call sites, the
// call forest, the system forest, and the topology — into one 32-byte
// structural digest, so whole-forest equality between experiments is a
// single comparison. integrate uses it two ways (see integrate.go): when
// all operands carry the same digest it skips the treemerge walk entirely,
// and for repeated mixed pairings the digest tuple keys a memo cache.
//
// The digest is order-sensitive: forests are serialised in pre-order with
// explicit depths, and siblings in insertion order. Insertion order is
// semantically meaningful in this data model — it decides the enumeration
// order of the merged result and hence Fingerprint text and columnar key
// packing — so two experiments whose trees hold the same nodes in different
// sibling order must *not* be conflated. (A sorted-children digest would be
// a coarser, order-insensitive equivalence; it would admit operand sets the
// identity fast path cannot actually map positionally.)
//
// Severity data never enters the digest: operands from the same
// instrumented binary differ only in severities, and that is exactly the
// case the fast path exists for. Option-dependent state (CallMatch, System
// mode) does not enter either — equal serialisations are equal under every
// matching relation, and option divergence is handled by the memo key.
//
// The cache lives on the experiment as an atomic {metaGen, sum} pair and is
// invalidated through the existing dirty/reindex mechanism: any metadata
// mutation marks the experiment dirty, the next reindex advances metaGen,
// and a cached digest from an older generation is ignored. Concurrent
// MetaDigest calls on a shared immutable experiment at worst recompute the
// same value and store it twice — idempotent, and race-free because the
// cache pointer is atomic.

type metaDigestCache struct {
	gen uint64
	sum [32]byte
}

// MetaDigest returns the experiment's structural metadata digest,
// computing and caching it on first use per metadata generation.
func (e *Experiment) MetaDigest() [32]byte {
	e.reindex()
	if c := e.metaDigest.Load(); c != nil && c.gen == e.metaGen {
		return c.sum
	}
	sum := e.computeMetaDigest()
	e.metaDigest.Store(&metaDigestCache{gen: e.metaGen, sum: sum})
	return sum
}

// digestWriter streams length-prefixed fields into a hash through a small
// batch buffer, so serialising a large forest does not pay one hash.Write
// per field.
type digestWriter struct {
	h   hash.Hash
	buf []byte
}

func (w *digestWriter) flushIf() {
	if len(w.buf) >= 4096 {
		w.h.Write(w.buf)
		w.buf = w.buf[:0]
	}
}

func (w *digestWriter) tag(b byte) {
	w.buf = append(w.buf, b)
}

func (w *digestWriter) str(s string) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(s)))
	w.buf = append(w.buf, s...)
	w.flushIf()
}

func (w *digestWriter) num(v int) {
	w.buf = binary.AppendVarint(w.buf, int64(v))
	w.flushIf()
}

func (w *digestWriter) sum() [32]byte {
	w.h.Write(w.buf)
	w.buf = w.buf[:0]
	var out [32]byte
	w.h.Sum(out[:0])
	return out
}

func (e *Experiment) computeMetaDigest() [32]byte {
	w := &digestWriter{h: sha256.New(), buf: make([]byte, 0, 4096)}

	// Metric forest: pre-order with explicit depth (depth + length-prefixed
	// fields make the serialisation unambiguous).
	w.tag('M')
	var walkMetric func(m *Metric, depth int)
	walkMetric = func(m *Metric, depth int) {
		w.num(depth)
		w.str(m.Name)
		w.str(string(m.Unit))
		w.str(m.Description)
		for _, c := range m.children {
			walkMetric(c, depth+1)
		}
	}
	for _, r := range e.metricRoots {
		walkMetric(r, 0)
	}

	// Registered regions, in registration order. All fields participate:
	// the first occurrence of a region key provides the integration
	// prototype, so differing descriptions or line numbers must yield
	// different digests.
	w.tag('R')
	w.num(len(e.regions))
	region := func(r *Region) {
		if r == nil {
			w.num(-1)
			return
		}
		w.str(r.Name)
		w.str(r.Module)
		w.num(r.BeginLine)
		w.num(r.EndLine)
		w.str(r.Description)
	}
	for _, r := range e.regions {
		region(r)
	}

	// Registered call sites (by value, callee inline), then the call forest
	// in pre-order. Sites are serialised per node rather than by reference:
	// integration copies them structurally, so only their content matters.
	w.tag('S')
	w.num(len(e.callSites))
	site := func(s *CallSite) {
		if s == nil {
			w.num(-1)
			return
		}
		w.str(s.File)
		w.num(s.Line)
		region(s.Callee)
	}
	for _, s := range e.callSites {
		site(s)
	}
	w.tag('C')
	var walkCall func(n *CallNode, depth int)
	walkCall = func(n *CallNode, depth int) {
		w.num(depth)
		site(n.Site)
		for _, c := range n.children {
			walkCall(c, depth+1)
		}
	}
	for _, r := range e.callRoots {
		walkCall(r, 0)
	}

	// System forest: machines, nodes, processes, threads in insertion
	// order, with explicit child counts.
	w.tag('Y')
	w.num(len(e.machines))
	for _, mach := range e.machines {
		w.str(mach.Name)
		w.num(len(mach.nodes))
		for _, nd := range mach.nodes {
			w.str(nd.Name)
			w.num(len(nd.procs))
			for _, p := range nd.procs {
				w.num(p.Rank)
				w.str(p.Name)
				w.num(len(p.threads))
				for _, t := range p.threads {
					w.num(t.ID)
					w.str(t.Name)
				}
			}
		}
	}

	// Topology: a topology survives integration only when all operands
	// agree on it, so it must separate digests.
	w.tag('T')
	if t := e.topology; t != nil {
		w.str(t.Name)
		w.num(len(t.Dims))
		for _, d := range t.Dims {
			w.num(d)
		}
		ranks := t.SortedRanks()
		w.num(len(ranks))
		for _, rank := range ranks {
			w.num(rank)
			for _, c := range t.Coords[rank] {
				w.num(c)
			}
		}
	} else {
		w.num(-1)
	}

	return w.sum()
}
