package core

import (
	"testing"

	"cube/internal/obs"
)

// TestOperatorWideEventAttribution asserts the kernel layer reports its
// full shape — operator, plan shards/tuples, result cells, accumulator
// choice, per-shard compute time — into an attached wide event.
func TestOperatorWideEventAttribution(t *testing.T) {
	sink := obs.NewEventSink(8)
	a := buildSized("a", 4, 8, 4)
	c := buildSized("b", 4, 8, 4)

	ev := sink.NewEvent("http", "/api/v1/diff")
	opts := &Options{Event: ev, Workers: 4}
	out, err := Difference(a, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	f := ev.Fields()
	if f.Op != "difference" {
		t.Errorf("op = %q, want difference", f.Op)
	}
	if f.KernelShards < 1 {
		t.Errorf("kernel shards = %d, want >= 1", f.KernelShards)
	}
	// Two operands of 128 tuples each.
	if f.KernelTuples != 256 {
		t.Errorf("kernel tuples = %d, want 256", f.KernelTuples)
	}
	if f.KernelCells != int64(out.NonZeroCount()) {
		t.Errorf("kernel cells = %d, want %d", f.KernelCells, out.NonZeroCount())
	}
	if f.Accumulator != "dense" && f.Accumulator != "sparse" {
		t.Errorf("accumulator = %q, want dense or sparse", f.Accumulator)
	}
	if f.ComputeMS < 0 {
		t.Errorf("compute_ms = %g", f.ComputeMS)
	}

	// Fold-kernel operators record the fold accumulator.
	ev2 := sink.NewEvent("http", "/api/v1/stddev")
	if _, err := StdDev(&Options{Event: ev2}, a, c); err != nil {
		t.Fatal(err)
	}
	if got := ev2.Fields().Accumulator; got != "fold" {
		t.Errorf("stddev accumulator = %q, want fold", got)
	}
}

// TestKernelShardsEmitEventConcurrently drives a many-shard kernel with a
// wide event attached: every shard goroutine reports compute time into
// the same event. Run under -race in make race, this is the proof the
// event accumulators are safe for concurrent kernel emission.
func TestKernelShardsEmitEventConcurrently(t *testing.T) {
	sink := obs.NewEventSink(8)
	a := buildSized("a", 16, 32, 8)
	c := buildSized("b", 16, 32, 8)
	for i := 0; i < 10; i++ {
		ev := sink.NewEvent("http", "/api/v1/mean")
		opts := &Options{Event: ev, Workers: 8}
		if _, err := Mean(opts, a, c); err != nil {
			t.Fatal(err)
		}
		ev.Emit()
	}
	events := sink.Events()
	if len(events) != 8 { // ring cap
		t.Fatalf("retained %d events, want 8", len(events))
	}
	for _, f := range events {
		if f.KernelShards < 2 {
			t.Errorf("kernel shards = %d, want >= 2 (concurrent emission not exercised)", f.KernelShards)
		}
		if f.KernelTuples == 0 || f.KernelCells == 0 {
			t.Errorf("missing kernel attribution: %+v", f)
		}
	}
}

// TestOperatorWithoutEventUnchanged pins the disabled path: operators run
// with no event attached must work and leave nothing behind.
func TestOperatorWithoutEventUnchanged(t *testing.T) {
	a := buildSized("a", 2, 2, 2)
	if _, err := Difference(a, a, &Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Difference(a, a, nil); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkWideEventOverhead guards the wide-event hot path on the
// operator kernel. "off" is the production-disabled configuration (no
// event attached: the cost is one nil check per hook site plus one atomic
// load in startOp); "on" attaches a live event to every invocation and
// must stay within 5% of off — attribution is aggregated per shard and
// per invocation, never per cell. Compare:
//
//	go test -run='^$' -bench=BenchmarkWideEventOverhead ./internal/core
func BenchmarkWideEventOverhead(b *testing.B) {
	a := buildSized("a", 20, 50, 8) // 8000 cells per operand
	c := buildSized("b", 20, 50, 8)
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Difference(a, c, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		sink := obs.NewEventSink(obs.DefaultEventRingSize)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev := sink.NewEvent("http", "/api/v1/diff")
			if _, err := Difference(a, c, &Options{Event: ev}); err != nil {
				b.Fatal(err)
			}
			ev.Emit()
		}
	})
}
