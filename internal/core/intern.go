package core

import (
	"strings"
	"sync"
)

// Global symbol table for metadata strings. Experiments from the same
// instrumented binary repeat the same metric names, units, region names,
// module paths, file names, and system labels across every run; a server
// caching hundreds of parsed experiments would otherwise hold hundreds of
// private copies of each. Interning collapses equal strings to a single
// shared backing array, which both shrinks resident bytes per cached
// experiment and makes equality checks on interned strings effectively a
// pointer compare (Go compares length + data pointer first).
//
// The table is process-global and append-only — names of performance
// metadata form a small, stable vocabulary, so unbounded growth is not a
// practical concern (the same trade the constant-pool interning of class
// loaders makes). sync.Map fits the workload exactly: almost always
// read-hit after warm-up, written only on first sight of a string.

var internTable sync.Map // string -> string (canonical copy)

// Intern returns a canonical copy of s: all callers passing equal strings
// receive the identical backing array. The empty string is returned as-is.
// Intern clones s before publishing it, so callers may pass strings backed
// by short-lived buffers (decoder scratch, mmap'd input).
func Intern(s string) string {
	if s == "" {
		return ""
	}
	if v, ok := internTable.Load(s); ok {
		return v.(string)
	}
	c := strings.Clone(s)
	v, _ := internTable.LoadOrStore(c, c)
	return v.(string)
}
