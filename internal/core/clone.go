package core

// Clone returns a deep copy of the experiment: fresh metadata trees and a
// fresh severity store. The copy is independent of the original; mutating
// one never affects the other.
func (e *Experiment) Clone() *Experiment {
	out := New(e.Title)
	out.Derived = e.Derived
	out.Operation = e.Operation
	out.Parents = append([]string(nil), e.Parents...)
	out.topology = e.topology.Clone()
	for k, v := range e.Attrs {
		out.Attrs[k] = v
	}

	// Metric forest.
	mMap := map[*Metric]*Metric{}
	for _, root := range e.metricRoots {
		out.metricRoots = append(out.metricRoots, cloneMetric(root, nil, mMap))
	}

	// Regions and call sites.
	rMap := map[*Region]*Region{}
	for _, r := range e.regions {
		nr := *r
		rMap[r] = &nr
		out.regions = append(out.regions, &nr)
	}
	sMap := map[*CallSite]*CallSite{}
	cloneSite := func(s *CallSite) *CallSite {
		if s == nil {
			return nil
		}
		if ns, ok := sMap[s]; ok {
			return ns
		}
		ns := &CallSite{File: s.File, Line: s.Line}
		if s.Callee != nil {
			if nr, ok := rMap[s.Callee]; ok {
				ns.Callee = nr
			} else {
				// Callee not registered as a region: copy it privately so
				// the clone never aliases the original's metadata.
				nr := *s.Callee
				rMap[s.Callee] = &nr
				ns.Callee = &nr
			}
		}
		sMap[s] = ns
		return ns
	}
	for _, s := range e.callSites {
		out.callSites = append(out.callSites, cloneSite(s))
	}

	// Call forest.
	cMap := map[*CallNode]*CallNode{}
	var cloneCall func(n *CallNode, parent *CallNode) *CallNode
	cloneCall = func(n *CallNode, parent *CallNode) *CallNode {
		nn := &CallNode{Site: cloneSite(n.Site), parent: parent}
		cMap[n] = nn
		for _, c := range n.children {
			nn.children = append(nn.children, cloneCall(c, nn))
		}
		return nn
	}
	for _, root := range e.callRoots {
		out.callRoots = append(out.callRoots, cloneCall(root, nil))
	}

	// System forest.
	tMap := map[*Thread]*Thread{}
	for _, mach := range e.machines {
		nm := out.NewMachine(mach.Name)
		for _, nd := range mach.Nodes() {
			nnd := nm.NewNode(nd.Name)
			for _, p := range nd.Processes() {
				np := nnd.NewProcess(p.Rank, p.Name)
				for _, t := range p.Threads() {
					tMap[t] = np.NewThread(t.ID, t.Name)
				}
			}
		}
	}

	// Severity. When the original holds a valid columnar lowering, the
	// block transfers verbatim: the clone's metadata was rebuilt in the
	// same construction order, so its enumerations are index-isomorphic to
	// the original's and the packed keys mean the same tuples. The copy is
	// then two flat array copies instead of a pointer-map walk, and the
	// clone — like a kernel result — stays columnar-only until a map-based
	// accessor materialises the view (ensureSev). This is what makes
	// cloning cheap enough for a parse cache to hand out copies per hit.
	if b := e.lowered; b != nil && e.loweredSevGen == e.sevGen && e.loweredMetaGen == e.metaGen && e.sev == nil {
		out.dirty = true
		out.reindex()
		// The clone's metadata is structurally identical, so a valid
		// cached metadata digest carries over (stamped with the clone's
		// own generation). Parse-cache hits hand out clones; carrying the
		// digest keeps integrate's fast-path check a pointer load instead
		// of a re-serialisation per request.
		if c := e.metaDigest.Load(); c != nil && c.gen == e.metaGen {
			out.metaDigest.Store(&metaDigestCache{gen: out.metaGen, sum: c.sum})
		}
		out.sevGen++
		out.sev = nil
		out.lowered = &sevBlock{
			key: append([]uint64(nil), b.key...),
			val: append([]float64(nil), b.val...),
			nC:  b.nC,
			nT:  b.nT,
		}
		out.loweredSevGen = out.sevGen
		out.loweredMetaGen = out.metaGen
		return out
	}
	for k, v := range e.sevMap() {
		nm, ok1 := mMap[k.m]
		nc, ok2 := cMap[k.c]
		nt, ok3 := tMap[k.t]
		if ok1 && ok2 && ok3 {
			out.sev[sevKey{nm, nc, nt}] = v
		}
	}
	out.dirty = true
	return out
}

func cloneMetric(m *Metric, parent *Metric, mMap map[*Metric]*Metric) *Metric {
	nm := &Metric{Name: m.Name, Unit: m.Unit, Description: m.Description, parent: parent}
	mMap[m] = nm
	for _, c := range m.children {
		nm.children = append(nm.children, cloneMetric(c, nm, mMap))
	}
	return nm
}
