package core

import "fmt"

// The system dimension defines the hard- and software entities of the system
// the program ran on: a forest with the levels machine, node, process, and
// thread from top to bottom. Machines and nodes are treated mainly as a
// logical grouping of processes for the purpose of aggregating performance
// data; the thread level is mandatory, so pure message-passing applications
// are represented as collections of single-threaded processes.

// Machine is a collection of nodes (a cluster or an MPP system).
type Machine struct {
	// Name labels the machine, e.g. "torc" or "collapsed".
	Name string

	nodes []*SystemNode
}

// NewMachine returns a fresh machine with no nodes.
func NewMachine(name string) *Machine { return &Machine{Name: name} }

// NewNode creates a system node attached to m and returns it.
func (m *Machine) NewNode(name string) *SystemNode {
	n := &SystemNode{Name: name, machine: m}
	m.nodes = append(m.nodes, n)
	return n
}

// Nodes returns the machine's nodes in insertion order. The returned slice
// is owned by the machine and must not be modified.
func (m *Machine) Nodes() []*SystemNode { return m.nodes }

// String implements fmt.Stringer.
func (m *Machine) String() string { return "machine " + m.Name }

// SystemNode is a node of a machine (e.g. an SMP node) hosting processes.
// It is named SystemNode to avoid confusion with tree nodes elsewhere.
type SystemNode struct {
	// Name labels the node, e.g. "node03".
	Name string

	machine *Machine
	procs   []*Process
}

// Machine returns the machine the node belongs to.
func (n *SystemNode) Machine() *Machine { return n.machine }

// NewProcess creates a process with the given application-level rank hosted
// on n and returns it.
func (n *SystemNode) NewProcess(rank int, name string) *Process {
	p := &Process{Rank: rank, Name: name, node: n}
	n.procs = append(n.procs, p)
	return p
}

// Processes returns the node's processes in insertion order. The returned
// slice is owned by the node and must not be modified.
func (n *SystemNode) Processes() []*Process { return n.procs }

// String implements fmt.Stringer.
func (n *SystemNode) String() string { return "node " + n.Name }

// Process is an application process, identified across experiments by its
// application-level identifier (its global MPI rank). A process may be split
// into multiple threads.
type Process struct {
	// Rank is the process's global application-level rank (MPI rank).
	// Processes of two experiments are matched by rank during system
	// integration.
	Rank int
	// Name is an optional label, e.g. "rank 3".
	Name string

	node    *SystemNode
	threads []*Thread
}

// Node returns the system node hosting the process.
func (p *Process) Node() *SystemNode { return p.node }

// NewThread creates a thread with the given application-level id (OpenMP
// thread number) belonging to p and returns it.
func (p *Process) NewThread(id int, name string) *Thread {
	t := &Thread{ID: id, Name: name, proc: p}
	p.threads = append(p.threads, t)
	return t
}

// Threads returns the process's threads in insertion order. The returned
// slice is owned by the process and must not be modified.
func (p *Process) Threads() []*Thread { return p.threads }

// String implements fmt.Stringer.
func (p *Process) String() string {
	if p.Name != "" {
		return p.Name
	}
	return fmt.Sprintf("process %d", p.Rank)
}

// Thread is the mandatory leaf level of the system dimension. Severity
// values always refer to threads; single-threaded processes own exactly one
// thread with ID 0. Nested thread-level parallelism is not supported.
type Thread struct {
	// ID is the application-level thread identifier within its process
	// (the OpenMP thread number). Threads of two experiments are matched
	// by (process rank, thread id).
	ID int
	// Name is an optional label, e.g. "thread 0".
	Name string

	proc *Process
}

// Process returns the process owning the thread.
func (t *Thread) Process() *Process { return t.proc }

// String implements fmt.Stringer.
func (t *Thread) String() string {
	if t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("rank %d thread %d", t.proc.Rank, t.ID)
}

// threadKey is the equality relation for system integration: threads match
// on (process rank, thread id), independent of the node/machine grouping.
type threadKey struct {
	rank, id int
}

// SystemMode selects how the upper levels of the system hierarchy (machines
// and nodes) are treated during metadata integration. Processes and threads
// are always matched on their application-level identifiers; the upper
// levels are never matched node-by-node. Instead the integrated experiment
// either copies the node/machine grouping of one operand or collapses the
// hierarchy to a single machine with a single node.
type SystemMode int

const (
	// SystemAuto copies the first operand's machine/node hierarchy when
	// every operand partitions the same set of processes into nodes the
	// same way, and collapses to a single machine and node otherwise.
	// This is the default.
	SystemAuto SystemMode = iota
	// SystemCollapse always collapses to a single machine and node.
	SystemCollapse
	// SystemCopyFirst always copies the first operand's hierarchy; ranks
	// present only in later operands are appended to the last node.
	SystemCopyFirst
)

// String implements fmt.Stringer.
func (m SystemMode) String() string {
	switch m {
	case SystemAuto:
		return "auto"
	case SystemCollapse:
		return "collapse"
	case SystemCopyFirst:
		return "copy-first"
	}
	return fmt.Sprintf("SystemMode(%d)", int(m))
}
