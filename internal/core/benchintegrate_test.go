package core

import (
	"fmt"
	"testing"
)

// benchMetaExperiment builds an experiment with the benchmark metadata
// domain: 64 metrics (8 roots × 8), 512 call nodes (8 trees × 64), and 64
// threads (4 nodes × 4 ranks × 4 threads), with every 8th tuple carrying a
// severity, committed through the columnar ingest so the operand starts in
// its compact lowered form like a parsed experiment would.
func benchMetaExperiment(title string) *Experiment {
	e := New(title)
	for i := 0; i < 8; i++ {
		root := e.NewMetric(fmt.Sprintf("metric%d", i), Seconds, "")
		for j := 0; j < 7; j++ {
			root.NewChild(fmt.Sprintf("child%d", j), "")
		}
	}
	regions := make([]*Region, 32)
	for i := range regions {
		regions[i] = e.NewRegion(fmt.Sprintf("region%d", i), "app.c", i*10, i*10+9)
	}
	for i := 0; i < 8; i++ {
		root := e.NewCallRoot(e.NewCallSite("app.c", i, regions[i%len(regions)]))
		for j := 0; j < 63; j++ {
			root.NewChild(e.NewCallSite("app.c", 100+j, regions[(i+j)%len(regions)]))
		}
	}
	mach := e.NewMachine("mach")
	for n := 0; n < 4; n++ {
		nd := mach.NewNode(fmt.Sprintf("node%d", n))
		for p := 0; p < 4; p++ {
			proc := nd.NewProcess(n*4+p, "")
			for t := 0; t < 4; t++ {
				proc.NewThread(t, "")
			}
		}
	}
	e.Invalidate()

	ing := e.NewSeverityIngest()
	nM, nC, nT := ing.Dims()
	var keys []uint64
	var vals []float64
	for mi := 0; mi < nM; mi++ {
		for ci := 0; ci < nC; ci++ {
			row := ing.RowKey(mi, ci)
			for ti := (mi + ci) % 8; ti < nT; ti += 8 {
				keys = append(keys, row+uint64(ti))
				vals = append(vals, float64(mi+ci+ti)/16)
			}
		}
	}
	ing.Commit(keys, vals, true)
	return e
}

// benchIntegrate measures integrate() itself — the metadata phase every
// operator runs first — with the fast paths enabled or forced cold.
func benchIntegrate(b *testing.B, off bool, operands ...*Experiment) {
	prev := metaFastpathOff.Swap(off)
	defer metaFastpathOff.Store(prev)
	SetIntegrateMemoBudget(DefaultIntegrateMemoBytes)
	defer SetIntegrateMemoBudget(DefaultIntegrateMemoBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := integrate(nil, operands...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntegrateSameMetadata: two operands from the same binary
// (digest-identical forests). The fast path serves this from the identity
// copy; cold runs the full treemerge.
func BenchmarkIntegrateSameMetadata(b *testing.B) {
	x := benchMetaExperiment("a")
	y := x.Clone()
	x.MetaDigest()
	y.MetaDigest()
	b.Run("fastpath", func(b *testing.B) { benchIntegrate(b, false, x, y) })
	b.Run("cold", func(b *testing.B) { benchIntegrate(b, true, x, y) })
}

// BenchmarkIntegrateMixed: two operands with different metadata digests —
// the repeated-pairing case the integration memo serves (first iteration
// misses and inserts, the rest hit).
func BenchmarkIntegrateMixed(b *testing.B) {
	x := benchMetaExperiment("a")
	y := benchMetaExperiment("b")
	y.NewMetric("extra", Seconds, "")
	y.Invalidate()
	x.MetaDigest()
	y.MetaDigest()
	b.Run("memo", func(b *testing.B) { benchIntegrate(b, false, x, y) })
	b.Run("cold", func(b *testing.B) { benchIntegrate(b, true, x, y) })
}
