package core

import "testing"

func TestAlmostEqualIdentical(t *testing.T) {
	a := buildSmall("a")
	b := buildSmall("b")
	if !AlmostEqual(a, b, 0) {
		t.Errorf("identical experiments not almost-equal at eps 0")
	}
}

func TestAlmostEqualTolerance(t *testing.T) {
	a := buildSmall("a")
	b := buildSmall("b")
	m, c, th := b.FindMetricByName("Time"), b.FindCallNode("main"), b.Threads()[0]
	b.SetSeverity(m, c, th, b.Severity(m, c, th)+1e-9)
	if AlmostEqual(a, b, 0) {
		t.Errorf("perturbed experiments equal at eps 0")
	}
	if !AlmostEqual(a, b, 1e-6) {
		t.Errorf("perturbation within tolerance rejected")
	}
	b.SetSeverity(m, c, th, 100)
	if AlmostEqual(a, b, 1e-6) {
		t.Errorf("large difference accepted")
	}
}

func TestAlmostEqualStructure(t *testing.T) {
	a := buildSmall("a")

	b := buildSmall("b")
	b.NewMetric("Extra", Seconds, "")
	if AlmostEqual(a, b, 1) {
		t.Errorf("different metric sets accepted")
	}

	c := buildSmall("c")
	c.FindMetricByName("Wait").Name = "Renamed"
	c.Invalidate()
	if AlmostEqual(a, c, 1) {
		t.Errorf("renamed metric accepted")
	}

	d := buildSmall("d")
	d.CallRoots()[0].NewChild(d.NewCallSite("app", 1, d.NewRegion("extra", "app", 0, 0)))
	d.Invalidate()
	if AlmostEqual(a, d, 1) {
		t.Errorf("different call trees accepted")
	}

	e := buildSmall("e")
	topo, _ := NewCartesian("g", 2, 2)
	e.SetTopology(topo)
	if AlmostEqual(a, e, 1) {
		t.Errorf("topology mismatch accepted")
	}
	a2 := buildSmall("a2")
	a2.SetTopology(topo.Clone())
	if !AlmostEqual(a2, e, 0) {
		t.Errorf("equal topologies rejected")
	}
}

func TestOperatorsOnSystemlessExperiments(t *testing.T) {
	// Experiments without system (and hence without severities) are valid
	// degenerate inputs; operators must handle them gracefully.
	mk := func(title string) *Experiment {
		e := New(title)
		e.NewMetric("Time", Seconds, "")
		mainR := e.NewRegion("main", "app", 0, 0)
		e.NewCallRoot(e.NewCallSite("", 0, mainR))
		return e
	}
	a, b := mk("a"), mk("b")
	for name, op := range map[string]func() (*Experiment, error){
		"difference": func() (*Experiment, error) { return Difference(a, b, nil) },
		"merge":      func() (*Experiment, error) { return Merge(a, b, nil) },
		"mean":       func() (*Experiment, error) { return Mean(nil, a, b) },
		"min":        func() (*Experiment, error) { return Min(nil, a, b) },
		"stddev":     func() (*Experiment, error) { return StdDev(nil, a, b) },
		"flatten":    func() (*Experiment, error) { return Flatten(a) },
		"prune":      func() (*Experiment, error) { return Prune(a, "Time", 0.5) },
	} {
		out, err := op()
		if err != nil {
			t.Errorf("%s on system-less experiments: %v", name, err)
			continue
		}
		if err := out.Validate(); err != nil {
			t.Errorf("%s output invalid: %v", name, err)
		}
	}
}
