package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Fingerprint returns a canonical textual digest of the experiment:
// metadata structure (metric paths with units, call paths, the system
// forest) followed by every non-zero severity tuple. Two experiments with
// equal fingerprints are structurally identical and carry the same data —
// handy for round-trip tests, operator law checks, and debugging. Titles
// and provenance are deliberately excluded so original and derived
// experiments with equal content compare equal.
func (e *Experiment) Fingerprint() string {
	var sb strings.Builder
	sb.WriteString("metrics:\n")
	for _, m := range e.Metrics() {
		fmt.Fprintf(&sb, "  %s [%s]\n", m.Path(), m.Unit)
	}
	sb.WriteString("calltree:\n")
	for _, c := range e.CallNodes() {
		fmt.Fprintf(&sb, "  %s\n", c.Path())
	}
	sb.WriteString("system:\n")
	for _, mach := range e.Machines() {
		fmt.Fprintf(&sb, "  machine %s\n", mach.Name)
		for _, nd := range mach.Nodes() {
			fmt.Fprintf(&sb, "    node %s\n", nd.Name)
			for _, p := range nd.Processes() {
				ids := make([]int, 0, len(p.Threads()))
				for _, t := range p.Threads() {
					ids = append(ids, t.ID)
				}
				sort.Ints(ids)
				fmt.Fprintf(&sb, "      rank %d threads %v\n", p.Rank, ids)
			}
		}
	}
	if t := e.topology; t != nil {
		fmt.Fprintf(&sb, "topology: %s %v\n", t.Name, t.Dims)
		for _, rank := range t.SortedRanks() {
			fmt.Fprintf(&sb, "  rank %d at %v\n", rank, t.Coords[rank])
		}
	}
	sb.WriteString("severity:\n")
	e.EachSeverity(func(m *Metric, c *CallNode, t *Thread, v float64) {
		fmt.Fprintf(&sb, "  (%s | %s | %d.%d) = %.12g\n", m.Path(), c.Path(), t.Process().Rank, t.ID, v)
	})
	return sb.String()
}

// AlmostEqual reports whether two experiments have identical metadata
// structure (equal fingerprint skeletons) and severity functions that agree
// element-wise within the given relative-plus-absolute tolerance:
// |a - b| <= eps * (1 + max(|a|, |b|)). Useful for regression-testing
// pipelines whose floating-point results may differ in the last bits.
func AlmostEqual(a, b *Experiment, eps float64) bool {
	if len(a.Metrics()) != len(b.Metrics()) ||
		len(a.CallNodes()) != len(b.CallNodes()) ||
		len(a.Threads()) != len(b.Threads()) {
		return false
	}
	for i, m := range a.Metrics() {
		bm := b.Metrics()[i]
		if m.Path() != bm.Path() || m.Unit != bm.Unit {
			return false
		}
	}
	for i, c := range a.CallNodes() {
		if c.Path() != b.CallNodes()[i].Path() {
			return false
		}
	}
	for i, t := range a.Threads() {
		bt := b.Threads()[i]
		if t.ID != bt.ID || t.Process().Rank != bt.Process().Rank {
			return false
		}
	}
	if !a.topology.Equal(b.topology) {
		return false
	}
	// Merge-join the two columnar severity stores instead of probing
	// O(M·C·T) tuples through pointer-keyed map lookups: the dimension
	// counts agree (checked above), so both blocks pack keys identically
	// and equal keys mean corresponding tuples. Keys present on one side
	// only compare against the zero extension.
	within := func(va, vb float64) bool {
		scale := math.Abs(va)
		if s := math.Abs(vb); s > scale {
			scale = s
		}
		return math.Abs(va-vb) <= eps*(1+scale)
	}
	ba, bb := a.loweredBlock(), b.loweredBlock()
	i, j := 0, 0
	for i < ba.len() && j < bb.len() {
		switch ka, kb := ba.key[i], bb.key[j]; {
		case ka == kb:
			if !within(ba.val[i], bb.val[j]) {
				return false
			}
			i++
			j++
		case ka < kb:
			if !within(ba.val[i], 0) {
				return false
			}
			i++
		default:
			if !within(0, bb.val[j]) {
				return false
			}
			j++
		}
	}
	for ; i < ba.len(); i++ {
		if !within(ba.val[i], 0) {
			return false
		}
	}
	for ; j < bb.len(); j++ {
		if !within(0, bb.val[j]) {
			return false
		}
	}
	return true
}
