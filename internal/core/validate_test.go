package core

import (
	"math"
	"strings"
	"testing"
)

func wantInvalid(t *testing.T, e *Experiment, dim, fragment string) {
	t.Helper()
	err := e.Validate()
	if err == nil {
		t.Fatalf("Validate accepted an invalid experiment (want %s error %q)", dim, fragment)
	}
	ve, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("error type %T, want *ValidationError", err)
	}
	if ve.Dimension != dim {
		t.Errorf("dimension = %q, want %q", ve.Dimension, dim)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Errorf("error %q does not mention %q", err, fragment)
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	e := buildSmall("ok")
	if err := e.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateMetricViolations(t *testing.T) {
	e := New("x")
	m := e.NewMetric("Time", Seconds, "")
	c := m.NewChild("C", "")
	c.Unit = Bytes // corrupt the tree
	wantInvalid(t, e, "metric", "unit")

	e2 := New("x")
	e2.NewMetric("", Seconds, "")
	wantInvalid(t, e2, "metric", "empty name")

	e3 := New("x")
	m3 := e3.NewMetric("T", Seconds, "")
	m3.Unit = "bogus"
	wantInvalid(t, e3, "metric", "invalid unit")

	e4 := New("x")
	shared := NewMetric("S", Seconds, "")
	_ = e4.AddMetricRoot(shared, shared)
	wantInvalid(t, e4, "metric", "more than once")
}

func TestValidateProgramViolations(t *testing.T) {
	e := New("x")
	e.NewMetric("T", Seconds, "")
	// Call node referencing an unregistered region while others are
	// registered.
	e.NewRegion("known", "", 0, 0)
	alien := &Region{Name: "alien"}
	e.NewCallRoot(&CallSite{Callee: alien})
	wantInvalid(t, e, "program", "unregistered region")

	e2 := New("x")
	e2.NewCallRoot(&CallSite{Callee: nil})
	wantInvalid(t, e2, "program", "nil callee")

	e3 := New("x")
	root := NewCallNode(&CallSite{Callee: &Region{Name: "m"}})
	_ = e3.AddCallRoot(root, root)
	wantInvalid(t, e3, "program", "more than once")

	e4 := New("x")
	e4.AddRegion(&Region{})
	wantInvalid(t, e4, "program", "empty name")
}

func TestValidateSystemViolations(t *testing.T) {
	e := New("x")
	m := e.NewMachine("m")
	nd := m.NewNode("n")
	p0 := nd.NewProcess(0, "")
	p0.NewThread(0, "")
	nd.NewProcess(0, "dup").NewThread(0, "")
	wantInvalid(t, e, "system", "duplicate process rank")

	e2 := New("x")
	m2 := e2.NewMachine("m")
	m2.NewNode("n").NewProcess(0, "")
	wantInvalid(t, e2, "system", "no threads")

	e3 := New("x")
	p := e3.NewMachine("m").NewNode("n").NewProcess(0, "")
	p.NewThread(0, "")
	p.NewThread(0, "")
	wantInvalid(t, e3, "system", "duplicate thread id")
}

func TestValidateSeverityViolations(t *testing.T) {
	e := buildSmall("x")
	alienM := NewMetric("alien", Seconds, "")
	e.SetSeverity(alienM, e.FindCallNode("main"), e.Threads()[0], 1)
	wantInvalid(t, e, "severity", "unregistered metric")

	e2 := buildSmall("x")
	alienC := NewCallNode(&CallSite{Callee: &Region{Name: "z"}})
	e2.SetSeverity(e2.FindMetricByName("Time"), alienC, e2.Threads()[0], 1)
	wantInvalid(t, e2, "severity", "unregistered call node")

	e3 := buildSmall("x")
	alienT := (&Process{Rank: 99}).NewThread(0, "")
	e3.SetSeverity(e3.FindMetricByName("Time"), e3.FindCallNode("main"), alienT, 1)
	wantInvalid(t, e3, "severity", "unregistered thread")

	e4 := buildSmall("x")
	e4.SetSeverity(e4.FindMetricByName("Time"), e4.FindCallNode("main"), e4.Threads()[0], math.NaN())
	wantInvalid(t, e4, "severity", "NaN")

	e5 := buildSmall("x")
	e5.SetSeverity(e5.FindMetricByName("Time"), e5.FindCallNode("main"), e5.Threads()[0], math.Inf(1))
	wantInvalid(t, e5, "severity", "+Inf")
}

func TestValidateNegativeSeverityAllowed(t *testing.T) {
	e := buildSmall("x")
	e.SetSeverity(e.FindMetricByName("Time"), e.FindCallNode("main"), e.Threads()[0], -3)
	if err := e.Validate(); err != nil {
		t.Errorf("negative severity (difference experiments) must be valid: %v", err)
	}
}
