package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// --- Lowered-block cache -----------------------------------------------------

func TestLoweredBlockCaching(t *testing.T) {
	e := buildSmall("a")
	b1 := e.loweredBlock()
	if b1.len() != e.NonZeroCount() {
		t.Fatalf("block has %d tuples, store has %d", b1.len(), e.NonZeroCount())
	}
	if b2 := e.loweredBlock(); b2 != b1 {
		t.Errorf("unchanged experiment rebuilt its block")
	}
	// Severity mutation invalidates.
	e.SetSeverity(e.Metrics()[0], e.CallNodes()[0], e.Threads()[0], 42)
	b3 := e.loweredBlock()
	if b3 == b1 {
		t.Errorf("severity mutation did not invalidate the block")
	}
	// Metadata mutation invalidates.
	e.NewMetric("Fresh", Seconds, "")
	if b4 := e.loweredBlock(); b4 == b3 {
		t.Errorf("metadata mutation did not invalidate the block")
	}
}

func TestLoweredBlockCanonicalOrder(t *testing.T) {
	e := buildSmall("a")
	b := e.loweredBlock()
	for i := 1; i < b.len(); i++ {
		if b.key[i-1] >= b.key[i] {
			t.Fatalf("keys not strictly ascending at %d: %d, %d", i, b.key[i-1], b.key[i])
		}
	}
	// Every entry round-trips through the enumerations to its stored value.
	for i := 0; i < b.len(); i++ {
		mi, ci, ti := b.at(i)
		m, c, th := e.Metrics()[mi], e.CallNodes()[ci], e.Threads()[ti]
		if got := e.Severity(m, c, th); got != b.val[i] {
			t.Fatalf("entry %d: block %v, store %v", i, b.val[i], got)
		}
	}
}

// --- Radix sort --------------------------------------------------------------

func TestRadixSortKV(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 17, 1000} {
		keys := make([]uint64, n)
		vals := make([]float64, n)
		for i := range keys {
			// Keys spanning four digit bytes, including 0xff digits (a
			// former implementation wrapped byte(255)+1 to 0 in the
			// counting-sort offsets).
			keys[i] = uint64(r.Intn(1 << 30))
			if i%5 == 0 {
				keys[i] |= 0xff
			}
			vals[i] = float64(i)
		}
		type kv struct {
			k uint64
			v float64
		}
		want := make([]kv, n)
		for i := range want {
			want[i] = kv{keys[i], vals[i]}
		}
		sort.Slice(want, func(i, j int) bool { return want[i].k < want[j].k })
		keys, vals = radixSortKV(keys, vals)
		for i := range want {
			if keys[i] != want[i].k || vals[i] != want[i].v {
				t.Fatalf("n=%d: entry %d = (%d, %v), want (%d, %v)",
					n, i, keys[i], vals[i], want[i].k, want[i].v)
			}
		}
	}
}

func TestRadixSortKVSharedDigits(t *testing.T) {
	// All keys agree on the low byte: the identity pass must be skipped
	// without disturbing the order established by the other passes.
	keys := []uint64{0x0300_07, 0x0100_07, 0x0200_07, 0x0102_07}
	vals := []float64{3, 1, 2, 1.5}
	keys, vals = radixSortKV(keys, vals)
	wantK := []uint64{0x0100_07, 0x0102_07, 0x0200_07, 0x0300_07}
	wantV := []float64{1, 1.5, 2, 3}
	for i := range wantK {
		if keys[i] != wantK[i] || vals[i] != wantV[i] {
			t.Fatalf("entry %d = (%x, %v), want (%x, %v)", i, keys[i], vals[i], wantK[i], wantV[i])
		}
	}
}

// --- Lazy severity-map materialisation ---------------------------------------

func TestKernelResultIsColumnarOnly(t *testing.T) {
	a, b := buildSmall("a"), buildSmall("b")
	d, err := Difference(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.sev != nil {
		t.Fatalf("kernel result materialised its severity map eagerly")
	}
	// Count and streaming access work without materialising.
	n := d.NonZeroCount()
	seen := 0
	d.EachSeverity(func(*Metric, *CallNode, *Thread, float64) { seen++ })
	if d.sev != nil {
		t.Errorf("NonZeroCount/EachSeverity materialised the map")
	}
	if n != seen {
		t.Errorf("NonZeroCount = %d, EachSeverity visited %d", n, seen)
	}
	// A map accessor materialises losslessly.
	before := d.Fingerprint()
	_ = d.Severity(d.Metrics()[0], d.CallNodes()[0], d.Threads()[0])
	if d.sev == nil {
		t.Fatalf("Severity did not materialise the map")
	}
	if len(d.sev) != n {
		t.Errorf("materialised map has %d entries, want %d", len(d.sev), n)
	}
	if d.Fingerprint() != before {
		t.Errorf("materialisation changed the severity content")
	}
}

func TestLazyResultSurvivesMetadataMutation(t *testing.T) {
	a, b := buildSmall("a"), buildSmall("b")
	d, err := Sum(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.sev != nil {
		t.Fatalf("expected columnar-only result")
	}
	total := d.MetricInclusive(d.FindMetricByName("Time"))
	// Growing the metric forest re-enumerates the metadata; the columnar
	// store must be materialised before its indices go stale.
	d.NewMetric("Extra", Seconds, "")
	if got := d.MetricInclusive(d.FindMetricByName("Time")); got != total {
		t.Errorf("total after metadata mutation = %v, want %v", got, total)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("mutated result invalid: %v", err)
	}
}

func TestLazyResultMutation(t *testing.T) {
	a, b := buildSmall("a"), buildSmall("b")
	d, err := Sum(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	m, c, th := d.Metrics()[0], d.CallNodes()[0], d.Threads()[0]
	d.SetSeverity(m, c, th, 123)
	if got := d.Severity(m, c, th); got != 123 {
		t.Errorf("severity after write = %v, want 123", got)
	}
	d.AddSeverity(m, c, th, -123)
	if got := d.Severity(m, c, th); got != 0 {
		t.Errorf("severity after cancel = %v, want 0", got)
	}
}

// --- Accumulator selection ----------------------------------------------------

// TestKernelMapAccumulatorPath drives an operand pair whose integrated
// domain is far larger than the tuple count, forcing the sparse map
// accumulator, and checks the result against the legacy engine.
func TestKernelMapAccumulatorPath(t *testing.T) {
	build := func(title string, v float64) *Experiment {
		e := New(title)
		m := e.NewMetric("Time", Seconds, "")
		reg := e.NewRegion("main", "app", 0, 0)
		root := e.NewCallRoot(e.NewCallSite("app", 0, reg))
		for i := 0; i < 2100; i++ {
			root.NewChild(e.NewCallSite("app", i+1, reg))
		}
		e.Invalidate()
		th := e.SingleThreadedSystem("mach", 1, 1)[0]
		e.SetSeverity(m, root, th, v)
		e.SetSeverity(m, root.Children()[0], th, 2*v)
		return e
	}
	a, b := build("a", 1), build("b", 0.5)
	in, err := integrate(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p := newKernelPlan(in, nil, []*Experiment{a, b}, nil); p.denseOK() {
		t.Fatalf("fixture selects the dense accumulator (cells=%d, total=%d); enlarge it", p.cells, p.total)
	}
	k, err := Difference(a, b, &Options{Engine: EngineKernel})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Difference(a, b, &Options{Engine: EngineLegacy})
	if err != nil {
		t.Fatal(err)
	}
	if k.Fingerprint() != l.Fingerprint() {
		t.Errorf("map-accumulator kernel result differs from legacy")
	}
	if got := sev(k, "Time", "main", 0); got != 0.5 {
		t.Errorf("diff at root = %v, want 0.5", got)
	}
}

// --- Worker sharding -----------------------------------------------------------

func TestKernelWorkerCountInvariance(t *testing.T) {
	a, b := buildSmall("a"), buildSmall("b")
	b.SetSeverity(b.FindMetricByName("Time"), b.FindCallNode("main/compute"), b.Threads()[1], 7)
	ref, err := Difference(a, b, &Options{Engine: EngineLegacy})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		d, err := Difference(a, b, &Options{Engine: EngineKernel, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if d.Fingerprint() != ref.Fingerprint() {
			t.Errorf("workers=%d: result differs from reference", workers)
		}
		sd, err := StdDev(&Options{Engine: EngineKernel, Workers: workers}, a, b)
		if err != nil {
			t.Fatal(err)
		}
		sdRef, err := StdDev(&Options{Engine: EngineLegacy}, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if sd.Fingerprint() != sdRef.Fingerprint() {
			t.Errorf("workers=%d: stddev differs from reference", workers)
		}
	}
}

// --- Non-finite propagation ----------------------------------------------------

// TestKernelNaNPropagation documents the IEEE-754 in-core policy: operators
// neither mask nor reject non-finite severities — they propagate. (Validate
// and the cubexml boundary keep such values out of well-formed experiments;
// this exercises programmatic construction.)
func TestKernelNaNPropagation(t *testing.T) {
	for _, engine := range []Engine{EngineKernel, EngineLegacy} {
		a, b := buildSmall("a"), buildSmall("b")
		m, c, th := a.FindMetricByName("Time"), a.FindCallNode("main"), a.Threads()[0]
		a.SetSeverity(m, c, th, math.NaN())
		b.SetSeverity(b.FindMetricByName("Time"), b.FindCallNode("main"), b.Threads()[0], math.Inf(1))
		d, err := Difference(a, b, &Options{Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		if got := sev(d, "Time", "main", 0); !math.IsNaN(got) {
			t.Errorf("engine %v: NaN − Inf = %v, want NaN", engine, got)
		}
		// Inf − Inf is NaN, not a cancelled zero.
		a2, b2 := buildSmall("a"), buildSmall("b")
		a2.SetSeverity(a2.FindMetricByName("Time"), a2.FindCallNode("main"), a2.Threads()[0], math.Inf(1))
		b2.SetSeverity(b2.FindMetricByName("Time"), b2.FindCallNode("main"), b2.Threads()[0], math.Inf(1))
		d2, err := Difference(a2, b2, &Options{Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		if got := sev(d2, "Time", "main", 0); !math.IsNaN(got) {
			t.Errorf("engine %v: Inf − Inf = %v, want NaN", engine, got)
		}
	}
}

// --- Merge ownership -----------------------------------------------------------

func TestKernelMergeOwnership(t *testing.T) {
	// Time provided by both operands: the first provider owns all of its
	// values, even where the second has tuples the first lacks.
	a, b := buildSmall("a"), buildSmall("b")
	b.SetSeverity(b.FindMetricByName("Time"), b.FindCallNode("main"), b.Threads()[0], 99)
	for _, engine := range []Engine{EngineKernel, EngineLegacy} {
		g, err := Merge(a, b, &Options{Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		if got := sev(g, "Time", "main", 0); got != 0.5 {
			t.Errorf("engine %v: merged severity = %v, want first operand's 0.5", engine, got)
		}
	}
}
