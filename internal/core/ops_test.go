package core

import (
	"math"
	"testing"
)

func sev(e *Experiment, metric, call string, rank int) float64 {
	m := e.FindMetricByName(metric)
	c := e.FindCallNode(call)
	t := e.FindThread(rank, 0)
	if m == nil || c == nil || t == nil {
		return math.NaN()
	}
	return e.Severity(m, c, t)
}

func TestDifferenceBasic(t *testing.T) {
	a := buildSmall("a")
	b := buildSmall("b")
	// Perturb b.
	b.SetSeverity(b.FindMetricByName("Time"), b.FindCallNode("main/compute"), b.Threads()[0], 10)

	d, err := Difference(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Derived || d.Operation != "difference" || len(d.Parents) != 2 {
		t.Errorf("provenance wrong: %+v", d)
	}
	if got := sev(d, "Time", "main/compute", 0); got != 1-10 {
		t.Errorf("diff value = %v, want -9", got)
	}
	// Unchanged tuples cancel to zero and vanish from the sparse store.
	if got := sev(d, "Time", "main", 0); got != 0 {
		t.Errorf("unchanged tuple = %v, want 0", got)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("difference invalid: %v", err)
	}
}

func TestDifferenceSelfIsZero(t *testing.T) {
	a := buildSmall("a")
	d, err := Difference(a, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.NonZeroCount() != 0 {
		t.Errorf("Diff(a,a) has %d non-zero tuples", d.NonZeroCount())
	}
}

func TestDifferenceZeroExtension(t *testing.T) {
	// A call path present only in one operand: missing tuples are zero.
	a := newCallExp("a", "main/onlyA")
	b := newCallExp("b", "main/onlyB")
	ta := a.FindThread(0, 0)
	tb := b.FindThread(0, 0)
	a.SetSeverity(a.Metrics()[0], a.FindCallNode("main/onlyA"), ta, 5)
	b.SetSeverity(b.Metrics()[0], b.FindCallNode("main/onlyB"), tb, 3)

	d, err := Difference(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sev(d, "Time", "main/onlyA", 0); got != 5 {
		t.Errorf("onlyA = %v, want 5", got)
	}
	if got := sev(d, "Time", "main/onlyB", 0); got != -3 {
		t.Errorf("onlyB = %v, want -3 (zero-extended minuend)", got)
	}
}

func TestDifferenceAntiSymmetric(t *testing.T) {
	a := buildSmall("a")
	b := buildSmall("b")
	b.SetSeverity(b.FindMetricByName("Comm"), b.FindCallNode("main/MPI_Recv"), b.Threads()[2], 7)
	ab, _ := Difference(a, b, nil)
	ba, _ := Difference(b, a, nil)
	neg, err := Scale(ba, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Fingerprint() != neg.Fingerprint() {
		t.Errorf("Diff(a,b) != -Diff(b,a)")
	}
}

func TestMeanIdentityAndAverage(t *testing.T) {
	a := buildSmall("a")
	m1, err := Mean(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Fingerprint() != a.Fingerprint() {
		t.Errorf("Mean(a) != a")
	}

	b := buildSmall("b")
	b.SetSeverity(b.FindMetricByName("Time"), b.FindCallNode("main"), b.Threads()[0], 1.5)
	m2, err := Mean(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := sev(m2, "Time", "main", 0); got != (0.5+1.5)/2 {
		t.Errorf("mean = %v, want 1", got)
	}
	// Mean over three operands.
	m3, err := Mean(nil, a, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.5 + 0.5 + 1.5) / 3
	if got := sev(m3, "Time", "main", 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("3-way mean = %v, want %v", got, want)
	}
}

func TestSumAndScale(t *testing.T) {
	a := buildSmall("a")
	s, err := Sum(nil, a, a)
	if err != nil {
		t.Fatal(err)
	}
	if got := sev(s, "Time", "main/compute", 3); got != 8 {
		t.Errorf("sum = %v, want 8", got)
	}
	sc, err := Scale(a, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Fingerprint() != s.Fingerprint() {
		t.Errorf("Scale(a,2) != Sum(a,a)")
	}
	if sc.Attrs["cube.scale"] != "2" {
		t.Errorf("scale attr missing")
	}
	// Sum(a, Scale(a,-1)) == 0.
	neg, _ := Scale(a, -1, nil)
	zero, err := Sum(nil, a, neg)
	if err != nil {
		t.Fatal(err)
	}
	if zero.NonZeroCount() != 0 {
		t.Errorf("a + (-a) has %d non-zero tuples", zero.NonZeroCount())
	}
}

func TestMergeMetricPreference(t *testing.T) {
	a := buildSmall("a")
	b := buildSmall("b")
	// Same metric in both: values must come from the first operand.
	b.SetSeverity(b.FindMetricByName("Time"), b.FindCallNode("main"), b.Threads()[0], 42)

	m, err := Merge(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sev(m, "Time", "main", 0); got != 0.5 {
		t.Errorf("merge took the metric from the wrong operand: %v", got)
	}
	if !m.Derived || m.Operation != "merge" {
		t.Errorf("provenance wrong")
	}
}

func TestMergeDisjointMetrics(t *testing.T) {
	a := buildSmall("a") // Time tree + Visits
	b := New("b")
	fp := b.NewMetric("PAPI_FP_INS", Occurrences, "")
	mainR := b.NewRegion("main", "app.c", 1, 99)
	root := b.NewCallRoot(b.NewCallSite("", 0, mainR))
	threads := b.SingleThreadedSystem("mach", 2, 4)
	for _, th := range threads {
		b.SetSeverity(fp, root, th, 1000)
	}

	m, err := Merge(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.MetricRoots()) != 3 {
		t.Fatalf("merged roots = %d, want 3 (Time, Visits, PAPI_FP_INS)", len(m.MetricRoots()))
	}
	if got := sev(m, "PAPI_FP_INS", "main", 2); got != 1000 {
		t.Errorf("counter data lost: %v", got)
	}
	if got := sev(m, "Time", "main/compute", 1); got != 2 {
		t.Errorf("time data lost: %v", got)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("merge invalid: %v", err)
	}
}

func TestMergeIdempotent(t *testing.T) {
	a := buildSmall("a")
	m, err := Merge(a, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fingerprint() != a.Fingerprint() {
		t.Errorf("Merge(a,a) != a")
	}
}

func TestMergeAllLeftToRight(t *testing.T) {
	a := buildSmall("a")
	b := buildSmall("b")
	c := buildSmall("c")
	b.SetSeverity(b.FindMetricByName("Time"), b.FindCallNode("main"), b.Threads()[0], 100)
	c.SetSeverity(c.FindMetricByName("Time"), c.FindCallNode("main"), c.Threads()[0], 200)
	m, err := MergeAll(nil, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := sev(m, "Time", "main", 0); got != 0.5 {
		t.Errorf("leftmost operand must win: %v", got)
	}
}

func TestMinMax(t *testing.T) {
	a := buildSmall("a")
	b := buildSmall("b")
	b.SetSeverity(b.FindMetricByName("Time"), b.FindCallNode("main"), b.Threads()[0], 0.1)

	mn, err := Min(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := sev(mn, "Time", "main", 0); got != 0.1 {
		t.Errorf("min = %v, want 0.1", got)
	}
	mx, err := Max(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := sev(mx, "Time", "main", 0); got != 0.5 {
		t.Errorf("max = %v, want 0.5", got)
	}
}

func TestMinZeroExtension(t *testing.T) {
	// Tuple defined only in a: the zero-extended b value 0 must win the
	// minimum (element-wise semantics on the dense arrays).
	a := newCallExp("a", "main/x")
	b := newCallExp("b", "main")
	a.SetSeverity(a.Metrics()[0], a.FindCallNode("main/x"), a.FindThread(0, 0), 5)
	mn, err := Min(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := sev(mn, "Time", "main/x", 0); got != 0 {
		t.Errorf("min with zero-extension = %v, want 0", got)
	}
	mx, err := Max(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := sev(mx, "Time", "main/x", 0); got != 5 {
		t.Errorf("max with zero-extension = %v, want 5", got)
	}
}

func TestMinOfNegatives(t *testing.T) {
	// Min over difference experiments must handle negative severities.
	a := buildSmall("a")
	b := buildSmall("b")
	b.SetSeverity(b.FindMetricByName("Time"), b.FindCallNode("main"), b.Threads()[0], 2)
	d, _ := Difference(a, b, nil) // main@0 = -1.5
	mn, err := Min(nil, d, a)
	if err != nil {
		t.Fatal(err)
	}
	if got := sev(mn, "Time", "main", 0); got != -1.5 {
		t.Errorf("min = %v, want -1.5", got)
	}
}

func TestOperatorErrors(t *testing.T) {
	if _, err := Mean(nil); err != ErrNoOperands {
		t.Errorf("Mean(): %v", err)
	}
	if _, err := Sum(nil); err != ErrNoOperands {
		t.Errorf("Sum(): %v", err)
	}
	if _, err := Min(nil); err != ErrNoOperands {
		t.Errorf("Min(): %v", err)
	}
	if _, err := MergeAll(nil); err != ErrNoOperands {
		t.Errorf("MergeAll(): %v", err)
	}
	if _, err := Difference(buildSmall("a"), nil, nil); err == nil {
		t.Errorf("nil operand accepted")
	}
}

func TestClosureComposition(t *testing.T) {
	// The paper's flagship composite: difference of means, then viewed,
	// stored, and operated on again.
	a1, a2 := buildSmall("a1"), buildSmall("a2")
	b1, b2 := buildSmall("b1"), buildSmall("b2")
	b1.SetSeverity(b1.FindMetricByName("Wait"), b1.FindCallNode("main/MPI_Recv"), b1.Threads()[1], 4)
	b2.SetSeverity(b2.FindMetricByName("Wait"), b2.FindCallNode("main/MPI_Recv"), b2.Threads()[1], 6)

	ma, err := Mean(nil, a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := Mean(nil, b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Difference(ma, mb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sev(d, "Wait", "main/MPI_Recv", 1); got != 0.125-5 {
		t.Errorf("difference of means = %v, want %v", got, 0.125-5)
	}
	// And once more: operate on the derived experiment.
	dd, err := Difference(d, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dd.NonZeroCount() != 0 {
		t.Errorf("Diff(d,d) non-zero")
	}
	if err := dd.Validate(); err != nil {
		t.Errorf("doubly derived experiment invalid: %v", err)
	}
}

func TestStdDev(t *testing.T) {
	a := buildSmall("a")
	b := buildSmall("b")
	c := buildSmall("c")
	// main@rank0: values 0.5, 0.5, 2.0 → mean 1.0, sample var 0.75.
	c.SetSeverity(c.FindMetricByName("Time"), c.FindCallNode("main"), c.Threads()[0], 2.0)
	sd, err := StdDev(nil, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(0.75)
	if got := sev(sd, "Time", "main", 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", got, want)
	}
	// Identical values across operands → zero (tuple absent).
	if got := sev(sd, "Time", "main/compute", 1); got != 0 {
		t.Errorf("constant tuple stddev = %v, want 0", got)
	}
	if !sd.Derived || sd.Operation != "stddev" {
		t.Errorf("provenance wrong")
	}
	if err := sd.Validate(); err != nil {
		t.Errorf("stddev invalid: %v", err)
	}
	// Zero-extension: tuple present in one of three operands has spread.
	d := newCallExp("d", "main/only")
	e2 := newCallExp("e", "main")
	f := newCallExp("f", "main")
	d.SetSeverity(d.Metrics()[0], d.FindCallNode("main/only"), d.FindThread(0, 0), 3)
	sd2, err := StdDev(nil, d, e2, f)
	if err != nil {
		t.Fatal(err)
	}
	want2 := math.Sqrt(((9 - 9.0/3) / 2)) // values 3,0,0
	if got := sev(sd2, "Time", "main/only", 0); math.Abs(got-want2) > 1e-12 {
		t.Errorf("zero-extended stddev = %v, want %v", got, want2)
	}
	// Errors.
	if _, err := StdDev(nil, a); err == nil {
		t.Errorf("single-operand StdDev accepted")
	}
	if _, err := StdDev(nil); err == nil {
		t.Errorf("no-operand StdDev accepted")
	}
}

func TestDeriveTitleTruncation(t *testing.T) {
	xs := []*Experiment{buildSmall("r1"), buildSmall("r2"), buildSmall("r3"), buildSmall("r4"), buildSmall("r5")}
	m, err := Mean(nil, xs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Parents) != 5 {
		t.Errorf("parents = %d", len(m.Parents))
	}
	if want := "mean(r1, ..., r5; 5 operands)"; m.Title != want {
		t.Errorf("title = %q, want %q", m.Title, want)
	}
}

// TestStdDevSystemCollapseRegression pins StdDev's collapse semantics: when
// integration maps several source tuples of one operand onto the same result
// tuple (here the same (rank, thread id) under two system nodes), the
// operand's zero-extended value is their *sum*, and the deviation is taken
// over the per-operand folded values. A former implementation accumulated
// sum and sum-of-squares per source tuple, contributing v1²+v2² instead of
// (v1+v2)² to the sum of squares; for this fixture that yields
// variance (21 − 49/2)/1 = −3.5, clamped to 0 — a silent zero instead of
// the correct √0.5.
func TestStdDevSystemCollapseRegression(t *testing.T) {
	build := func() (*Experiment, *Experiment) {
		a := New("a")
		ma := a.NewMetric("Time", Seconds, "")
		ca := a.NewCallRoot(a.NewCallSite("app", 0, a.NewRegion("main", "app", 0, 0)))
		mach := a.NewMachine("mach")
		// The same (rank 0, thread 0) identifier under two nodes: both
		// source threads integrate onto one result thread.
		t1 := mach.NewNode("n1").NewProcess(0, "p0").NewThread(0, "")
		t2 := mach.NewNode("n2").NewProcess(0, "p0").NewThread(0, "")
		a.Invalidate()
		a.SetSeverity(ma, ca, t1, 1)
		a.SetSeverity(ma, ca, t2, 2)

		b := New("b")
		mb := b.NewMetric("Time", Seconds, "")
		cb := b.NewCallRoot(b.NewCallSite("app", 0, b.NewRegion("main", "app", 0, 0)))
		tb := b.SingleThreadedSystem("mach", 1, 1)[0]
		b.SetSeverity(mb, cb, tb, 4)
		return a, b
	}
	// Folded operand values at the single result tuple: 1+2 = 3 and 4.
	want := math.Sqrt(0.5) // mean 3.5, sample variance ((−.5)²+(.5)²)/1
	for _, engine := range []Engine{EngineKernel, EngineLegacy} {
		a, b := build()
		sd, err := StdDev(&Options{Engine: engine}, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got := sev(sd, "Time", "main", 0); math.Abs(got-want) > 1e-12 {
			t.Errorf("engine %v: collapsed stddev = %v, want %v", engine, got, want)
		}
		if err := sd.Validate(); err != nil {
			t.Errorf("engine %v: result invalid: %v", engine, err)
		}
	}
}
