package core

import (
	"strings"
	"testing"
)

// metricShape dumps the metric forest paths.
func metricShape(e *Experiment) string {
	var sb strings.Builder
	for _, m := range e.Metrics() {
		sb.WriteString(m.Path())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func callShape(e *Experiment) string {
	var sb strings.Builder
	for _, c := range e.CallNodes() {
		sb.WriteString(c.Path())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestIntegrateMetricsOverlap(t *testing.T) {
	a := New("a")
	ta := a.NewMetric("Time", Seconds, "")
	ta.NewChild("MPI", "")
	a.NewMetric("Visits", Occurrences, "")

	b := New("b")
	tb := b.NewMetric("Time", Seconds, "")
	tb.NewChild("MPI", "")
	tb.NewChild("IO", "")
	b.NewMetric("PAPI_FP_INS", Occurrences, "")

	in, err := integrate(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := "Time\nTime/MPI\nTime/IO\nVisits\nPAPI_FP_INS\n"
	if got := metricShape(in.out); got != want {
		t.Fatalf("merged metrics:\n%s\nwant:\n%s", got, want)
	}
	// Mapping: both Time roots map to the same result metric.
	if in.metricFrom[0][ta] != in.metricFrom[1][tb] {
		t.Errorf("Time roots not shared")
	}
	// metricSource: Time from operand 0, IO from operand 1.
	if in.metricSource[in.metricFrom[0][ta]] != 0 {
		t.Errorf("Time source wrong")
	}
	io := in.out.FindMetricByName("IO")
	if in.metricSource[io] != 1 {
		t.Errorf("IO source wrong")
	}
}

func TestIntegrateMetricsUnitMismatchSeparates(t *testing.T) {
	a := New("a")
	a.NewMetric("X", Seconds, "")
	b := New("b")
	b.NewMetric("X", Occurrences, "")
	in, err := integrate(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.out.MetricRoots()) != 2 {
		t.Errorf("metrics with different units merged; roots = %d", len(in.out.MetricRoots()))
	}
	if err := in.out.Validate(); err != nil {
		t.Errorf("integrated metadata invalid: %v", err)
	}
}

// newCallExp builds an experiment with call paths described as
// slash-separated strings.
func newCallExp(title string, paths ...string) *Experiment {
	e := New(title)
	e.NewMetric("Time", Seconds, "")
	regions := map[string]*Region{}
	reg := func(name string) *Region {
		if r, ok := regions[name]; ok {
			return r
		}
		r := e.NewRegion(name, "app", 0, 0)
		regions[name] = r
		return r
	}
	roots := map[string]*CallNode{}
	for _, p := range paths {
		parts := strings.Split(p, "/")
		cur, ok := roots[parts[0]]
		if !ok {
			cur = e.NewCallRoot(e.NewCallSite("app", 0, reg(parts[0])))
			roots[parts[0]] = cur
		}
		for _, part := range parts[1:] {
			next := cur.FindChild(part)
			if next == nil {
				next = cur.NewChild(e.NewCallSite("app", 0, reg(part)))
				e.Invalidate()
			}
			cur = next
		}
	}
	e.SingleThreadedSystem("m", 1, 2)
	return e
}

func TestIntegrateCallTrees(t *testing.T) {
	a := newCallExp("a", "main/foo/leaf", "main/bar")
	b := newCallExp("b", "main/foo/other", "main/baz")
	in, err := integrate(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := "main\nmain/foo\nmain/foo/leaf\nmain/foo/other\nmain/bar\nmain/baz\n"
	if got := callShape(in.out); got != want {
		t.Fatalf("merged call tree:\n%s\nwant:\n%s", got, want)
	}
	// Regions are interned: exactly one region per name.
	names := map[string]int{}
	for _, r := range in.out.Regions() {
		names[r.Name]++
	}
	for n, c := range names {
		if c != 1 {
			t.Errorf("region %q appears %d times", n, c)
		}
	}
}

func TestIntegrateCallTreesTopDown(t *testing.T) {
	// foo under different parents must not be shared.
	a := newCallExp("a", "main/p/shared")
	b := newCallExp("b", "main/q/shared")
	in, err := integrate(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := "main\nmain/p\nmain/p/shared\nmain/q\nmain/q/shared\n"
	if got := callShape(in.out); got != want {
		t.Fatalf("top-down call merge violated:\n%s\nwant:\n%s", got, want)
	}
}

func TestIntegrateCallMatchLineMode(t *testing.T) {
	a := newCallExp("a", "main/foo")
	b := newCallExp("b", "main/foo")
	// Give b's call site a different line.
	b.CallRoots()[0].Children()[0].Site.Line = 42

	in, err := integrate(&Options{CallMatch: CallMatchCallee}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := callShape(in.out); got != "main\nmain/foo\n" {
		t.Errorf("callee mode should merge despite line change:\n%s", got)
	}

	in2, err := integrate(&Options{CallMatch: CallMatchCalleeLine}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := callShape(in2.out); got != "main\nmain/foo\nmain/foo\n" {
		t.Errorf("callee+line mode should keep different lines apart:\n%s", got)
	}
}

func systemSignature(e *Experiment) string {
	var sb strings.Builder
	for _, mach := range e.Machines() {
		sb.WriteString(mach.Name + "{")
		for _, nd := range mach.Nodes() {
			sb.WriteString(nd.Name + "[")
			for _, p := range nd.Processes() {
				sb.WriteString(p.String() + ",")
				for _, th := range p.Threads() {
					sb.WriteString(th.String() + ";")
				}
			}
			sb.WriteString("]")
		}
		sb.WriteString("}")
	}
	return sb.String()
}

func TestIntegrateSystemCompatibleCopies(t *testing.T) {
	a := New("a")
	a.NewMetric("T", Seconds, "")
	a.SingleThreadedSystem("alpha", 2, 4)
	b := New("b")
	b.NewMetric("T", Seconds, "")
	b.SingleThreadedSystem("beta", 2, 4)

	in, err := integrate(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Same partition (2+2) → copy first operand's hierarchy.
	if len(in.out.Machines()) != 1 || in.out.Machines()[0].Name != "alpha" {
		t.Fatalf("expected alpha's hierarchy copied, got %s", systemSignature(in.out))
	}
	if len(in.out.Machines()[0].Nodes()) != 2 {
		t.Errorf("node structure not copied")
	}
}

func TestIntegrateSystemIncompatibleCollapses(t *testing.T) {
	a := New("a")
	a.NewMetric("T", Seconds, "")
	a.SingleThreadedSystem("alpha", 2, 4) // 2+2
	b := New("b")
	b.NewMetric("T", Seconds, "")
	b.SingleThreadedSystem("beta", 1, 4) // 4

	in, err := integrate(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	machines := in.out.Machines()
	if len(machines) != 1 || machines[0].Name != "merged machine" {
		t.Fatalf("expected collapse, got %s", systemSignature(in.out))
	}
	if len(machines[0].Nodes()) != 1 {
		t.Errorf("collapse should produce a single node")
	}
	if len(in.out.Processes()) != 4 {
		t.Errorf("union of ranks wrong: %d", len(in.out.Processes()))
	}
}

func TestIntegrateSystemForcedModes(t *testing.T) {
	a := New("a")
	a.NewMetric("T", Seconds, "")
	a.SingleThreadedSystem("alpha", 2, 4)
	b := New("b")
	b.NewMetric("T", Seconds, "")
	b.SingleThreadedSystem("beta", 2, 4)

	in, err := integrate(&Options{System: SystemCollapse, CollapsedMachine: "flat"}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if in.out.Machines()[0].Name != "flat" {
		t.Errorf("forced collapse ignored; machine = %q", in.out.Machines()[0].Name)
	}

	// Copy-first with extra ranks in the second operand.
	c := New("c")
	c.NewMetric("T", Seconds, "")
	c.SingleThreadedSystem("gamma", 1, 6)
	in2, err := integrate(&Options{System: SystemCopyFirst}, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(in2.out.Processes()) != 6 {
		t.Fatalf("union should have 6 ranks, got %d", len(in2.out.Processes()))
	}
	if in2.out.Machines()[0].Name != "alpha" {
		t.Errorf("copy-first should keep alpha")
	}
	// Ranks 4,5 appended to the last node.
	nodes := in2.out.Machines()[0].Nodes()
	last := nodes[len(nodes)-1]
	if len(last.Processes()) != 4 { // 2 original + 2 extra
		t.Errorf("extra ranks not appended to last node: %d", len(last.Processes()))
	}
}

func TestIntegrateThreadUnion(t *testing.T) {
	a := New("a")
	a.NewMetric("T", Seconds, "")
	pa := a.NewMachine("m").NewNode("n").NewProcess(0, "")
	pa.NewThread(0, "")
	pa.NewThread(1, "")

	b := New("b")
	b.NewMetric("T", Seconds, "")
	pb := b.NewMachine("m").NewNode("n").NewProcess(0, "")
	pb.NewThread(0, "")
	pb.NewThread(2, "")

	in, err := integrate(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.out.Threads()) != 3 {
		t.Fatalf("thread union = %d, want 3 (ids 0,1,2)", len(in.out.Threads()))
	}
	// Threads matched by (rank, id): thread 0 shared.
	if in.threadFrom[0][pa.Threads()[0]] != in.threadFrom[1][pb.Threads()[0]] {
		t.Errorf("thread (0,0) not shared")
	}
	if in.threadFrom[0][pa.Threads()[1]] == in.threadFrom[1][pb.Threads()[1]] {
		t.Errorf("threads (0,1) and (0,2) wrongly shared")
	}
}

func TestIntegrateErrors(t *testing.T) {
	if _, err := integrate(nil); err != ErrNoOperands {
		t.Errorf("no operands: err = %v", err)
	}
	if _, err := integrate(nil, New("a"), nil); err == nil {
		t.Errorf("nil operand accepted")
	}
}

func TestIntegrateSingleOperand(t *testing.T) {
	a := buildSmall("solo")
	in, err := integrate(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if metricShape(in.out) != metricShape(a) || callShape(in.out) != callShape(a) {
		t.Errorf("single-operand integration should preserve structure")
	}
	if err := in.out.Validate(); err != nil {
		t.Errorf("integrated output invalid: %v", err)
	}
}
