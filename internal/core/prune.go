package core

import "fmt"

// Prune is a data-reduction operator in the spirit of the paper's
// future-work discussion ("new operators which perform data reduction …
// might further help manage size"): call subtrees whose inclusive severity
// for the selected metric subtree falls below threshold × (the metric's
// grand total) are collapsed into their nearest kept ancestor. Severities
// are re-attributed, not dropped, so every metric's grand total is
// preserved; only the call-tree resolution shrinks. Call roots are always
// kept (possibly as leaves). The result is a complete derived experiment.
//
// The monotonicity argument behind the cut (a subtree below the threshold
// has only subtrees below the threshold) holds for non-negative
// severities; for difference experiments the magnitude of the selected
// metric is used.
func Prune(x *Experiment, metricPath string, threshold float64) (*Experiment, error) {
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("core: prune threshold %g outside [0,1]", threshold)
	}
	in, err := integrate(nil, x)
	if err != nil {
		return nil, err
	}
	out := in.out

	sel := out.FindMetric(metricPath)
	if sel == nil {
		return nil, fmt.Errorf("core: metric %q not found", metricPath)
	}
	var metrics []*Metric
	sel.Walk(func(m *Metric) { metrics = append(metrics, m) })

	// Re-route the operand's severities onto the integrated copy first so
	// inclusive values can be computed on out.
	mf, cf, tf := in.metricFrom[0], in.cnodeFrom[0], in.threadFrom[0]
	presize(out, []*Experiment{x})
	x.EachSeverity(func(m *Metric, c *CallNode, t *Thread, v float64) {
		out.AddSeverity(mf[m], cf[c], tf[t], v)
	})

	// |inclusive| of the selected metric subtree per call node.
	absIncl := func(c *CallNode) float64 {
		var s float64
		c.Walk(func(d *CallNode) {
			for _, m := range metrics {
				v := out.MetricValue(m, d)
				if v < 0 {
					v = -v
				}
				s += v
			}
		})
		return s
	}
	var total float64
	for _, r := range out.CallRoots() {
		total += absIncl(r)
	}
	cut := threshold * total

	// Decide survivors top-down and collapse the rest.
	target := map[*CallNode]*CallNode{} // pruned node -> kept ancestor
	var walk func(n *CallNode, keptAncestor *CallNode)
	walk = func(n *CallNode, keptAncestor *CallNode) {
		kept := keptAncestor == nil || absIncl(n) >= cut
		if kept {
			var survivors []*CallNode
			for _, c := range n.children {
				walk(c, n)
				if target[c] == nil { // child survived
					survivors = append(survivors, c)
				}
			}
			n.children = survivors
			return
		}
		// Collapse this whole subtree into the kept ancestor.
		n.Walk(func(d *CallNode) { target[d] = keptAncestor })
	}
	for _, r := range out.CallRoots() {
		walk(r, nil)
	}
	out.dirty = true

	// Re-attribute severities of collapsed nodes.
	moves := map[sevKey]float64{}
	for k, v := range out.sevMap() {
		if tgt := target[k.c]; tgt != nil {
			moves[k] = v
		}
	}
	for k, v := range moves {
		out.SetSeverity(k.m, k.c, k.t, 0)
		out.AddSeverity(k.m, target[k.c], k.t, v)
	}

	out.Derived = true
	out.Operation = "prune"
	out.Parents = []string{x.Title}
	out.Title = fmt.Sprintf("prune(%s, %s < %g)", x.Title, metricPath, threshold)
	out.Attrs["cube.operation"] = "prune"
	out.Attrs["cube.prune.metric"] = metricPath
	out.Attrs["cube.prune.threshold"] = fmt.Sprintf("%g", threshold)
	return out, nil
}
