package core

import (
	"fmt"
	"math"
)

// ValidationError describes a violation of the data-model constraints.
type ValidationError struct {
	// Dimension names the dimension the violation occurred in: "metric",
	// "program", "system", or "severity".
	Dimension string
	// Msg describes the violation.
	Msg string
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("core: invalid experiment (%s dimension): %s", e.Dimension, e.Msg)
}

func invalid(dim, format string, args ...any) error {
	return &ValidationError{Dimension: dim, Msg: fmt.Sprintf(format, args...)}
}

// Validate checks that the experiment satisfies the constraints of the CUBE
// data model:
//
//   - every metric has an admitted unit and all metrics within one tree
//     share that unit;
//   - every call node references a call site with a non-nil callee, and the
//     callee is a registered region;
//   - processes have unique ranks, threads have unique ids within their
//     process, and every process owns at least one thread (the thread level
//     is mandatory);
//   - every stored severity tuple references registered metadata, and no
//     value is NaN or infinite.
//
// Severities may be negative: derived difference experiments legitimately
// contain negative values.
func (e *Experiment) Validate() error {
	// Metric dimension.
	seenM := map[*Metric]bool{}
	for _, root := range e.metricRoots {
		if root == nil {
			return invalid("metric", "nil metric root")
		}
		if root.parent != nil {
			return invalid("metric", "metric %q attached as root but has parent %q", root.Name, root.parent.Name)
		}
		unit := root.Unit
		var err error
		root.Walk(func(m *Metric) {
			if err != nil {
				return
			}
			if seenM[m] {
				err = invalid("metric", "metric %q appears more than once in the forest", m.Name)
				return
			}
			seenM[m] = true
			if m.Name == "" {
				err = invalid("metric", "metric with empty name under root %q", root.Name)
				return
			}
			if !ValidUnit(m.Unit) {
				err = invalid("metric", "metric %q has invalid unit %q", m.Name, m.Unit)
				return
			}
			if m.Unit != unit {
				err = invalid("metric", "metric %q has unit %q but its tree root %q has unit %q",
					m.Name, m.Unit, root.Name, unit)
				return
			}
		})
		if err != nil {
			return err
		}
	}

	// Program dimension.
	regSet := map[*Region]bool{}
	for _, r := range e.regions {
		if r == nil {
			return invalid("program", "nil region registered")
		}
		if r.Name == "" {
			return invalid("program", "region with empty name")
		}
		regSet[r] = true
	}
	seenC := map[*CallNode]bool{}
	for _, root := range e.callRoots {
		if root == nil {
			return invalid("program", "nil call root")
		}
		if root.parent != nil {
			return invalid("program", "call node %q attached as root but has a parent", root.Path())
		}
		var err error
		root.Walk(func(n *CallNode) {
			if err != nil {
				return
			}
			if seenC[n] {
				err = invalid("program", "call node %q appears more than once in the forest", n.Path())
				return
			}
			seenC[n] = true
			if n.Site == nil {
				err = invalid("program", "call node without call site")
				return
			}
			if n.Site.Callee == nil {
				err = invalid("program", "call site %s:%d has nil callee", n.Site.File, n.Site.Line)
				return
			}
			if len(regSet) > 0 && !regSet[n.Site.Callee] {
				err = invalid("program", "call node %q references unregistered region %q", n.Path(), n.Site.Callee.Name)
				return
			}
		})
		if err != nil {
			return err
		}
	}

	// System dimension.
	ranks := map[int]bool{}
	for _, mach := range e.machines {
		if mach == nil {
			return invalid("system", "nil machine")
		}
		for _, nd := range mach.Nodes() {
			for _, p := range nd.Processes() {
				if ranks[p.Rank] {
					return invalid("system", "duplicate process rank %d", p.Rank)
				}
				ranks[p.Rank] = true
				if len(p.Threads()) == 0 {
					return invalid("system", "process %d has no threads (thread level is mandatory)", p.Rank)
				}
				tids := map[int]bool{}
				for _, t := range p.Threads() {
					if tids[t.ID] {
						return invalid("system", "process %d has duplicate thread id %d", p.Rank, t.ID)
					}
					tids[t.ID] = true
				}
			}
		}
	}

	// Optional topology.
	if e.topology != nil {
		if err := e.topology.validate(e); err != nil {
			return err
		}
	}

	// Severity function. An experiment whose store is columnar-only (a
	// kernel result or a fast-path parse) is validated off the block
	// directly: materialising the pointer-keyed map view just to check
	// values would cost more than the whole parse. Block keys reference
	// enumeration indices, so "unregistered metadata" cannot arise; the
	// single max-key guard below catches a corrupt packing (keys ascend,
	// and the mod/div unpacking keeps the call-node and thread components
	// in range by construction, so only the metric component can escape).
	e.reindex()
	if b := e.lowered; e.sev == nil && b != nil && e.loweredSevGen == e.sevGen && e.loweredMetaGen == e.metaGen {
		if n := b.len(); n > 0 {
			if len(e.cnodes) == 0 || len(e.threads) == 0 {
				return invalid("severity", "severity tuples stored but the call or system dimension is empty")
			}
			if int(b.key[n-1]/(b.nC*b.nT)) >= len(e.metrics) {
				return invalid("severity", "severity key out of range of the metric dimension")
			}
		}
		for i, v := range b.val {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				mi, ci, ti := b.at(i)
				return invalid("severity", "severity of (%s, %s, %s) is %v",
					e.metrics[mi].Name, e.cnodes[ci].Path(), e.threads[ti], v)
			}
		}
		return nil
	}
	for k, v := range e.sevMap() {
		if _, ok := e.metricIndex[k.m]; !ok {
			return invalid("severity", "severity refers to unregistered metric %q", k.m.Name)
		}
		if _, ok := e.cnodeIndex[k.c]; !ok {
			return invalid("severity", "severity refers to unregistered call node %q", k.c.Path())
		}
		if _, ok := e.threadIndex[k.t]; !ok {
			return invalid("severity", "severity refers to unregistered thread %q", k.t.String())
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return invalid("severity", "severity of (%s, %s, %s) is %v", k.m.Name, k.c.Path(), k.t, v)
		}
	}
	return nil
}
