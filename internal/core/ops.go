package core

import (
	"fmt"
	"math"
	"strings"
)

// This file implements the algebraic operators. The domain of every operator
// is the set of valid CUBE experiments and the range is a subset of the
// domain: each operator first integrates the operands' metadata, then
// extends each operand's severity function with zeros onto the integrated
// domain, and finally applies an element-wise arithmetic operation. The
// result is a complete — albeit derived — experiment, so operators compose
// into arbitrary composite operations (closure).
//
// When integration collapses several source tuples of one operand onto the
// same result tuple (e.g. the same rank appearing under two system nodes),
// the operand's contribution to that tuple is the *sum* of the collapsed
// values — the value its zero-extended severity function takes on the
// integrated domain. Every operator, including StdDev, folds per operand
// first and only then combines across operands.
//
// The arithmetic itself runs on the indexed kernel layer (kernel.go) by
// default; Options.Engine == EngineLegacy selects the original pointer-map
// walk, kept as an executable specification that property tests compare
// against.
//
// Severity values are combined with IEEE-754 semantics: non-finite inputs
// propagate (NaN in an operand yields NaN in the result, with no
// cancellation in differences). Validate and the cubexml boundary reject
// non-finite severities, so operators only meet them on experiments built
// programmatically with out-of-policy values.

func deriveProvenance(in *integration, op string, operands []*Experiment) {
	out := in.out
	out.Derived = true
	out.Operation = op
	names := make([]string, len(operands))
	for i, x := range operands {
		names[i] = x.Title
		out.Parents = append(out.Parents, x.Title)
	}
	if len(names) <= 3 {
		out.Title = fmt.Sprintf("%s(%s)", op, strings.Join(names, ", "))
	} else {
		out.Title = fmt.Sprintf("%s(%s, ..., %s; %d operands)", op, names[0], names[len(names)-1], len(names))
	}
	out.Attrs["cube.operation"] = op
	out.Attrs["cube.operands"] = strings.Join(names, "; ")
}

// presize replaces the result's severity store with one sized for the
// operands' combined tuple count, avoiding incremental rehashing on large
// experiments (legacy engine; the kernel sizes its store exactly).
func presize(out *Experiment, operands []*Experiment) {
	est := 0
	for _, x := range operands {
		est += x.NonZeroCount()
	}
	out.sevGen++
	out.sev = make(map[sevKey]float64, est)
}

// linearCombine implements every operator that is a weighted sum of its
// operands' (zero-extended) severity functions.
func linearCombine(op string, opts *Options, weights []float64, operands ...*Experiment) (*Experiment, error) {
	rec := startOp(op, opts, operands)
	in, err := tracedIntegrate(rec, opts, operands)
	if err != nil {
		rec.fail()
		return nil, err
	}
	if opts.useKernel(in.out) {
		newKernelPlan(in, opts, operands, rec.opSpan()).kernelCombine(weights, nil)
	} else {
		sp := rec.child("legacy-combine")
		legacyLinearCombine(in, weights, operands)
		sp.End()
	}
	deriveProvenance(in, op, operands)
	rec.done(in.out)
	return in.out, nil
}

func legacyLinearCombine(in *integration, weights []float64, operands []*Experiment) {
	in.ensureMaps()
	presize(in.out, operands)
	for i, x := range operands {
		w := weights[i]
		if w == 0 {
			continue
		}
		mf, cf, tf := in.metricFrom[i], in.cnodeFrom[i], in.threadFrom[i]
		// EachSeverity streams the operand's columnar form read-only;
		// sevMap() would materialise the pointer map on kernel results and
		// on the server's shared cached masters.
		x.EachSeverity(func(m *Metric, c *CallNode, t *Thread, v float64) {
			in.out.AddSeverity(mf[m], cf[c], tf[t], w*v)
		})
	}
}

// Difference computes a derived experiment whose severity function is the
// minuend's severity minus the subtrahend's severity, element-wise over the
// integrated metadata. Severities of the result may be negative; displays
// indicate the sign by a raised (gain) or sunken (loss) relief. Difference
// experiments support before/after comparison of code or parameter changes
// along all dimensions of the data model.
func Difference(minuend, subtrahend *Experiment, opts *Options) (*Experiment, error) {
	return linearCombine("difference", opts, []float64{1, -1}, minuend, subtrahend)
}

// Mean computes a derived experiment whose severity is the element-wise
// arithmetic mean of the operands. It takes an arbitrary number of
// arguments and is intended to smooth the effects of random errors
// introduced by unrelated system activity, or to summarise performance
// across a range of execution parameters.
func Mean(opts *Options, operands ...*Experiment) (*Experiment, error) {
	if len(operands) == 0 {
		return nil, ErrNoOperands
	}
	w := make([]float64, len(operands))
	for i := range w {
		w[i] = 1 / float64(len(operands))
	}
	return linearCombine("mean", opts, w, operands...)
}

// Sum computes the element-wise sum of the operands — a natural companion
// of Mean ("others may follow"), useful e.g. to accumulate phases measured
// separately.
func Sum(opts *Options, operands ...*Experiment) (*Experiment, error) {
	if len(operands) == 0 {
		return nil, ErrNoOperands
	}
	w := make([]float64, len(operands))
	for i := range w {
		w[i] = 1
	}
	return linearCombine("sum", opts, w, operands...)
}

// Scale multiplies every severity of x by factor, yielding a derived
// experiment (e.g. to convert a sum over n runs into a per-run average, or
// to negate an experiment).
func Scale(x *Experiment, factor float64, opts *Options) (*Experiment, error) {
	out, err := linearCombine("scale", opts, []float64{factor}, x)
	if err != nil {
		return nil, err
	}
	out.Attrs["cube.scale"] = fmt.Sprintf("%g", factor)
	return out, nil
}

// Merge integrates performance data from different sources: it takes
// experiments with different or overlapping sets of metrics (for example a
// trace-analysis result and one or more counter profiles that could not be
// measured in the same run) and yields a derived experiment with the joint
// set of metrics. For a metric provided by only one operand the data is
// taken from that operand; for a metric provided by several operands it is
// taken from the first one that provides it ("without loss of generality").
func Merge(a, b *Experiment, opts *Options) (*Experiment, error) {
	return MergeAll(opts, a, b)
}

// MergeAll folds Merge over an arbitrary number of operands, left to right,
// in a single metadata integration (the closure property makes the binary
// and n-ary forms equivalent; this form avoids re-integrating intermediate
// results).
func MergeAll(opts *Options, operands ...*Experiment) (*Experiment, error) {
	if len(operands) == 0 {
		return nil, ErrNoOperands
	}
	rec := startOp("merge", opts, operands)
	in, err := tracedIntegrate(rec, opts, operands)
	if err != nil {
		rec.fail()
		return nil, err
	}
	if opts.useKernel(in.out) {
		w := make([]float64, len(operands))
		for i := range w {
			w[i] = 1
		}
		newKernelPlan(in, opts, operands, rec.opSpan()).kernelCombine(w, mergeKeep(in, operands))
	} else {
		sp := rec.child("legacy-combine")
		legacyMerge(in, operands)
		sp.End()
	}
	deriveProvenance(in, "merge", operands)
	rec.done(in.out)
	return in.out, nil
}

func legacyMerge(in *integration, operands []*Experiment) {
	in.ensureMaps()
	presize(in.out, operands)
	for i, x := range operands {
		mf, cf, tf := in.metricFrom[i], in.cnodeFrom[i], in.threadFrom[i]
		x.EachSeverity(func(m *Metric, c *CallNode, t *Thread, v float64) {
			rm := mf[m]
			// The merge rule operates at metric granularity: the operand
			// that provides a metric first owns all of its values.
			if in.metricSource[rm] != i {
				return
			}
			in.out.AddSeverity(rm, cf[c], tf[t], v)
		})
	}
}

// Min computes the element-wise minimum over the operands' zero-extended
// severity functions. Taking the minimum of a series of repeated runs is
// the classical way to suppress perturbation by unrelated system activity
// (the paper's §5.1 methodology uses the minimum of ten runs per
// configuration as the representative).
func Min(opts *Options, operands ...*Experiment) (*Experiment, error) {
	return foldCombine("min", opts, func(acc, v float64) float64 {
		if v < acc {
			return v
		}
		return acc
	}, operands...)
}

// Max computes the element-wise maximum over the operands' zero-extended
// severity functions.
func Max(opts *Options, operands ...*Experiment) (*Experiment, error) {
	return foldCombine("max", opts, func(acc, v float64) float64 {
		if v > acc {
			return v
		}
		return acc
	}, operands...)
}

// StdDev computes the element-wise sample standard deviation over the
// operands' zero-extended severity functions — the natural companion of
// Mean when characterising run-to-run perturbation: the result is itself a
// complete experiment whose severities quantify, per (metric, call path,
// thread) tuple, how noisy the series is. Requires at least two operands.
func StdDev(opts *Options, operands ...*Experiment) (*Experiment, error) {
	if len(operands) < 2 {
		return nil, fmt.Errorf("core: StdDev requires at least two operands")
	}
	rec := startOp("stddev", opts, operands)
	in, err := tracedIntegrate(rec, opts, operands)
	if err != nil {
		rec.fail()
		return nil, err
	}
	n := float64(len(operands))
	stddev := func(folded []float64) float64 {
		var sum, sumsq float64
		for _, y := range folded {
			sum += y
			sumsq += y * y
		}
		variance := (sumsq - sum*sum/n) / (n - 1)
		if variance < 0 {
			variance = 0 // numerical noise
		}
		return math.Sqrt(variance)
	}
	if opts.useKernel(in.out) {
		newKernelPlan(in, opts, operands, rec.opSpan()).kernelFold(stddev)
	} else {
		sp := rec.child("legacy-combine")
		legacyFold(in, operands, stddev)
		sp.End()
	}
	deriveProvenance(in, "stddev", operands)
	rec.done(in.out)
	return in.out, nil
}

// foldCombine implements non-linear element-wise operators. Because the
// severity function is zero-extended onto the integrated metadata, a tuple
// undefined in some operand participates with value zero, exactly as the
// element-wise operation on the dense three-dimensional arrays would.
func foldCombine(op string, opts *Options, fold func(acc, v float64) float64, operands ...*Experiment) (*Experiment, error) {
	if len(operands) == 0 {
		return nil, ErrNoOperands
	}
	rec := startOp(op, opts, operands)
	in, err := tracedIntegrate(rec, opts, operands)
	if err != nil {
		rec.fail()
		return nil, err
	}
	finish := func(folded []float64) float64 {
		acc := folded[0]
		for _, v := range folded[1:] {
			acc = fold(acc, v)
		}
		return acc
	}
	if opts.useKernel(in.out) {
		newKernelPlan(in, opts, operands, rec.opSpan()).kernelFold(finish)
	} else {
		sp := rec.child("legacy-combine")
		legacyFold(in, operands, finish)
		sp.End()
	}
	deriveProvenance(in, op, operands)
	rec.done(in.out)
	return in.out, nil
}

// legacyFold is the reference implementation behind foldCombine and StdDev:
// it collects, per result tuple, the folded (collapse-summed) value of every
// operand and applies finish to the per-operand vector.
func legacyFold(in *integration, operands []*Experiment, finish func(folded []float64) float64) {
	in.ensureMaps()
	presize(in.out, operands)
	type vec struct {
		vals []float64
	}
	tuples := map[sevKey]*vec{}
	for i, x := range operands {
		mf, cf, tf := in.metricFrom[i], in.cnodeFrom[i], in.threadFrom[i]
		x.EachSeverity(func(m *Metric, c *CallNode, t *Thread, v float64) {
			rk := sevKey{mf[m], cf[c], tf[t]}
			tv, ok := tuples[rk]
			if !ok {
				tv = &vec{vals: make([]float64, len(operands))}
				tuples[rk] = tv
			}
			// Collapsed source tuples of one operand sum into a single
			// zero-extended value before the element-wise operation sees
			// them. (StdDev's former per-source-tuple accumulation got
			// this wrong: two collapsed values v1, v2 contributed
			// v1²+v2² instead of (v1+v2)² to the sum of squares.)
			tv.vals[i] += v
		})
	}
	for rk, tv := range tuples {
		in.out.SetSeverity(rk.m, rk.c, rk.t, finish(tv.vals))
	}
}
