package core

import (
	"strings"
	"testing"
)

func TestStructuralDiffIdentical(t *testing.T) {
	a := buildSmall("a")
	b := buildSmall("b")
	rep, err := StructuralDiff(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OnlyAMetrics) != 0 || len(rep.OnlyBMetrics) != 0 ||
		len(rep.OnlyACalls) != 0 || len(rep.OnlyBCalls) != 0 ||
		len(rep.OnlyARanks) != 0 || len(rep.OnlyBRanks) != 0 {
		t.Errorf("identical experiments report unique nodes: %+v", rep)
	}
	if rep.Similarity() != 1 {
		t.Errorf("similarity = %v, want 1", rep.Similarity())
	}
	if !rep.PartitionsCompatible {
		t.Errorf("identical partitions reported incompatible")
	}
}

func TestStructuralDiffPartialOverlap(t *testing.T) {
	a := newCallExp("a", "main/onlyA", "main/shared")
	b := newCallExp("b", "main/onlyB", "main/shared")
	b.NewMetric("PAPI_FP_INS", Occurrences, "")

	rep, err := StructuralDiff(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SharedCalls) != 2 { // main, main/shared
		t.Errorf("shared calls = %v", rep.SharedCalls)
	}
	if len(rep.OnlyACalls) != 1 || rep.OnlyACalls[0] != "main/onlyA" {
		t.Errorf("only-A calls = %v", rep.OnlyACalls)
	}
	if len(rep.OnlyBCalls) != 1 || rep.OnlyBCalls[0] != "main/onlyB" {
		t.Errorf("only-B calls = %v", rep.OnlyBCalls)
	}
	if len(rep.OnlyBMetrics) != 1 || rep.OnlyBMetrics[0] != "PAPI_FP_INS" {
		t.Errorf("only-B metrics = %v", rep.OnlyBMetrics)
	}
	if s := rep.Similarity(); s <= 0 || s >= 1 {
		t.Errorf("similarity = %v, want in (0,1)", s)
	}
	sum := rep.Summary()
	for _, frag := range []string{"metrics:", "call paths:", "ranks:", "similarity:"} {
		if !strings.Contains(sum, frag) {
			t.Errorf("summary lacks %q:\n%s", frag, sum)
		}
	}
}

func TestStructuralDiffRanksAndPartitions(t *testing.T) {
	a := New("a")
	a.NewMetric("T", Seconds, "")
	a.SingleThreadedSystem("m", 2, 4)
	b := New("b")
	b.NewMetric("T", Seconds, "")
	b.SingleThreadedSystem("m", 1, 6)

	rep, err := StructuralDiff(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SharedRanks) != 4 || len(rep.OnlyBRanks) != 2 || len(rep.OnlyARanks) != 0 {
		t.Errorf("rank partition wrong: %+v", rep)
	}
	if rep.PartitionsCompatible {
		t.Errorf("2-node vs 1-node partitions reported compatible")
	}
}

func TestStructuralDiffEmpty(t *testing.T) {
	rep, err := StructuralDiff(New("a"), New("b"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Similarity() != 1 {
		t.Errorf("empty experiments should be trivially similar")
	}
}
