package core

import (
	"errors"
	"fmt"
	"sort"

	"cube/internal/obs"
	"cube/internal/treemerge"
)

// Options control metadata integration. The zero value (or nil) selects the
// defaults: call-tree matching by callee, and automatic system handling
// (copy the first operand's machine/node hierarchy when the partitioning of
// processes into nodes is compatible among the operands, collapse to a
// single machine and node otherwise).
type Options struct {
	// CallMatch selects the call-tree equality relation.
	CallMatch CallMatchMode
	// System selects how machine/node hierarchies are integrated.
	System SystemMode
	// CollapsedMachine names the machine created when hierarchies are
	// collapsed; defaults to "merged machine".
	CollapsedMachine string
	// Engine selects the severity-arithmetic implementation. The default
	// (EngineAuto) runs the indexed kernel layer; EngineLegacy keeps the
	// original pointer-map walk as a reference implementation (property
	// tests assert both produce identical results).
	Engine Engine
	// Workers bounds the number of kernel shards worked concurrently;
	// 0 means GOMAXPROCS. Results are identical for every worker count.
	Workers int
	// Trace, when non-nil, attaches the operator invocation's span tree
	// as a child of this span — the HTTP service passes its request span
	// here so one request yields one connected trace. When nil, operators
	// open a root trace on the process-wide tracer (obs.SetTracer) if one
	// is installed, and skip tracing entirely otherwise.
	Trace *obs.Span
	// Event, when non-nil, receives the invocation's resource attribution
	// (operator name, kernel cells/shards/tuples, accumulator choice,
	// summed shard compute time) — the HTTP service passes its per-request
	// wide event here. A nil Event costs nothing: every hook is a
	// nil-receiver no-op.
	Event *obs.Event
}

// Engine names a severity-arithmetic implementation.
type Engine int

const (
	// EngineAuto selects the kernel implementation, falling back to the
	// legacy walk only when the integrated domain cannot be index-packed.
	EngineAuto Engine = iota
	// EngineKernel is the indexed, sharded kernel layer (kernel.go).
	EngineKernel
	// EngineLegacy is the original per-tuple pointer-map walk.
	EngineLegacy
)

// useKernel reports whether operators should run on the kernel layer for
// the integrated result out.
func (o *Options) useKernel(out *Experiment) bool {
	if o != nil && o.Engine == EngineLegacy {
		return false
	}
	return kernelFeasible(out)
}

func (o *Options) orDefault() *Options {
	if o == nil {
		return &Options{}
	}
	return o
}

func (o *Options) collapsedMachine() string {
	if o != nil && o.CollapsedMachine != "" {
		return o.CollapsedMachine
	}
	return "merged machine"
}

// ErrNoOperands is returned by operators invoked without operands.
var ErrNoOperands = errors.New("core: operator requires at least one operand")

// Fast-path kinds, used for the integrate span attribute, the
// cube_meta_fastpath_total metric, and the wide-event columns.
const (
	fastpathFull     = "full"
	fastpathIdentity = "identity"
	fastpathMemo     = "memo"
	fastpathMiss     = "miss" // full walk that populated the memo
)

// integration is the outcome of integrating the metadata of several operand
// experiments: a fresh result experiment with merged metadata, plus mappings
// from every operand's metadata nodes to the result's, which extend each
// operand's severity function onto the integrated domain (undefined tuples
// are implicitly zero).
//
// The mappings exist in two interchangeable forms. The full treemerge walk
// produces pointer maps (metricFrom et al.); the digest fast paths produce
// flat index tables (tabs, metricSrc) directly. Either form derives the
// other on demand — tables() builds tabs from the maps, ensureMaps() builds
// the maps from tabs — so the kernel layer (which wants tables) and the
// legacy walk (which wants maps) both run unchanged on every path.
type integration struct {
	out      *Experiment
	operands []*Experiment
	// fastpath records how the integration was obtained ("" means the full
	// walk without memo involvement, i.e. single-operand or fastpath-off).
	fastpath string
	// metricFrom[i] maps operand i's metrics to result metrics.
	metricFrom []map[*Metric]*Metric
	// cnodeFrom[i] maps operand i's call nodes to result call nodes.
	cnodeFrom []map[*CallNode]*CallNode
	// threadFrom[i] maps operand i's threads to result threads.
	threadFrom []map[*Thread]*Thread
	// metricSource maps each result metric to the smallest operand index
	// that provides it (used by Merge's "take it from the first" rule).
	metricSource map[*Metric]int
	// cnodeSource likewise for call nodes.
	cnodeSource map[*CallNode]int
	// tabs[i] is the flat index form of the mappings for operand i; nil
	// until built by tables(). Fast paths share one backing table across
	// operands and across concurrent invocations — never mutate entries.
	tabs []remapTable
	// metricSrc is the flat index form of metricSource (result metric
	// enumeration index -> operand index); nil until built.
	metricSrc []int32
}

func newIntegration(operands []*Experiment) *integration {
	return &integration{
		operands:     operands,
		metricFrom:   make([]map[*Metric]*Metric, len(operands)),
		cnodeFrom:    make([]map[*CallNode]*CallNode, len(operands)),
		threadFrom:   make([]map[*Thread]*Thread, len(operands)),
		metricSource: map[*Metric]int{},
		cnodeSource:  map[*CallNode]int{},
	}
}

func (in *integration) fastpathLabel() string {
	if in.fastpath == "" {
		return fastpathFull
	}
	return in.fastpath
}

// tables returns the flat per-operand remap tables, deriving them from the
// pointer maps on first use (one map lookup per metadata node, instead of
// one per severity tuple — the kernel layer's whole point).
func (in *integration) tables() []remapTable {
	if in.tabs != nil {
		return in.tabs
	}
	out := in.out
	out.reindex()
	tabs := make([]remapTable, len(in.operands))
	for i, x := range in.operands {
		x.reindex()
		rt := remapTable{
			m: make([]int32, len(x.metrics)),
			c: make([]int32, len(x.cnodes)),
			t: make([]int32, len(x.threads)),
		}
		mf, cf, tf := in.metricFrom[i], in.cnodeFrom[i], in.threadFrom[i]
		for si, sm := range x.metrics {
			rt.m[si] = int32(out.metricIndex[mf[sm]])
		}
		for si, sc := range x.cnodes {
			rt.c[si] = int32(out.cnodeIndex[cf[sc]])
		}
		for si, st := range x.threads {
			rt.t[si] = int32(out.threadIndex[tf[st]])
		}
		tabs[i] = rt
	}
	in.tabs = tabs
	return tabs
}

// ensureMaps materialises the pointer maps for any operand that only has
// the flat table form (digest fast paths), so the legacy engine and the
// structural operators can run unchanged. Enumeration order is the bridge:
// table entry (si -> ri) means operand node si maps to result node ri.
func (in *integration) ensureMaps() {
	out := in.out
	out.reindex()
	var tabs []remapTable
	for i, x := range in.operands {
		if in.metricFrom[i] != nil {
			continue
		}
		if tabs == nil {
			tabs = in.tables()
		}
		x.reindex()
		mf := make(map[*Metric]*Metric, len(x.metrics))
		for si, sm := range x.metrics {
			mf[sm] = out.metrics[tabs[i].m[si]]
		}
		in.metricFrom[i] = mf
		cf := make(map[*CallNode]*CallNode, len(x.cnodes))
		for si, sc := range x.cnodes {
			cf[sc] = out.cnodes[tabs[i].c[si]]
		}
		in.cnodeFrom[i] = cf
		tf := make(map[*Thread]*Thread, len(x.threads))
		for si, st := range x.threads {
			tf[st] = out.threads[tabs[i].t[si]]
		}
		in.threadFrom[i] = tf
	}
	if len(in.metricSource) == 0 && in.metricSrc != nil {
		for ri, m := range out.metrics {
			in.metricSource[m] = int(in.metricSrc[ri])
		}
	}
}

// metricSrcs returns metricSource in flat index form, deriving it on first
// use.
func (in *integration) metricSrcs() []int32 {
	if in.metricSrc != nil {
		return in.metricSrc
	}
	out := in.out
	out.reindex()
	src := make([]int32, len(out.metrics))
	for m, i := range in.metricSource {
		if ri, ok := out.metricIndex[m]; ok {
			src[ri] = int32(i)
		}
	}
	in.metricSrc = src
	return src
}

// integrate merges the metadata sets of the operands into a fresh
// experiment, dimension by dimension: the metric forest and the call forest
// via top-down structural tree merges with dimension-specific equality
// relations, and the system dimension by matching processes and threads on
// their application-level identifiers while copying or collapsing the upper
// machine/node levels.
//
// Two digest-driven fast paths front the full walk (metadigest.go,
// memo.go). When every operand carries the same metadata digest — the
// dominant production case: runs of one instrumented binary, identical
// trees, different severities — the merge is, provably, a structural copy
// of operand 0 with positional mappings, built here in O(nodes) with no
// treemerge forests and no pointer maps. Otherwise a byte-budgeted memo
// keyed by the ordered digest tuple + options serves repeated mixed
// pairings. Both paths are observable (integrate.fastpath span attribute,
// cube_meta_* metrics, wide-event columns) and both are exactly invisible
// in results — the property tests in metaprop_test.go hold Fingerprint
// equality against the cold walk across all operators and engines.
func integrate(opts *Options, operands ...*Experiment) (*integration, error) {
	if len(operands) == 0 {
		return nil, ErrNoOperands
	}
	for i, x := range operands {
		if x == nil {
			return nil, fmt.Errorf("core: operand %d is nil", i)
		}
	}
	opts = opts.orDefault()
	if len(operands) >= 2 && !metaFastpathOff.Load() {
		digs := make([][32]byte, len(operands))
		same := true
		for i, x := range operands {
			digs[i] = x.MetaDigest()
			if digs[i] != digs[0] {
				same = false
			}
		}
		if same {
			in, err := integrateIdentity(opts, operands)
			if err != nil {
				return nil, err
			}
			recordMetaFastpath(opts, fastpathIdentity)
			recordIntegration(in, operands)
			return in, nil
		}
		memo := integrateMemoTable.Load()
		var key memoKey
		if memo != nil {
			key = memoKeyOf(opts, digs)
			if ent := memo.get(key); ent != nil {
				in := ent.open(operands)
				recordMetaFastpath(opts, fastpathMemo)
				recordIntegration(in, operands)
				return in, nil
			}
		}
		in, err := integrateFull(opts, operands)
		if err != nil {
			return nil, err
		}
		if memo != nil {
			in.fastpath = fastpathMiss
			memo.put(newMemoEntry(key, in))
		}
		recordMetaFastpath(opts, fastpathMiss)
		return in, nil
	}
	return integrateFull(opts, operands)
}

// integrateFull is the original treemerge walk over all operands.
func integrateFull(opts *Options, operands []*Experiment) (*integration, error) {
	in := newIntegration(operands)
	in.out = New("")
	in.mergeMetrics(operands)
	in.mergeProgram(opts, operands)
	if err := in.mergeSystem(opts, operands); err != nil {
		return nil, err
	}
	// A topology survives integration only when every operand agrees on
	// it (coordinates are meaningless across different layouts).
	topo := operands[0].topology
	for _, x := range operands[1:] {
		if !topo.Equal(x.topology) {
			topo = nil
			break
		}
	}
	in.out.topology = topo.Clone()
	in.out.dirty = true
	recordIntegration(in, operands)
	return in, nil
}

// integrateIdentity merges operands whose metadata digests all agree.
//
// Why a plain copy of operand 0 is the correct merge: digest equality means
// byte-identical metadata serialisations, so all operand forests are
// structurally identical with identical keys in identical sibling order.
// The treemerge of identical forests pairs nodes positionally (duplicate
// sibling keys match first-with-first) and therefore reproduces operand 0's
// structure exactly, mapping the i-th pre-order node of *every* operand to
// the i-th pre-order node of the result — identity index tables, shared by
// all operands. Region deduplication and call-site rebuilding see only
// operand 0's entries, because later operands contribute nothing new. The
// system dimension reuses the real mergeSystem on operands[:1]: the
// (rank, id, name) union over n identical operands equals the union over
// one, and SystemAuto resolves to copy-first both ways (all partition
// signatures are equal). Threads still need a real table — mergeSystem
// sorts thread IDs within each process, so the mapping is not positional
// in general — but one table serves every operand.
func integrateIdentity(opts *Options, operands []*Experiment) (*integration, error) {
	in := newIntegration(operands)
	out := New("")
	in.out = out
	first := operands[0]
	first.reindex()

	// Nodes are carved out of per-kind slabs — the counts are known exactly
	// from operand 0's (clean) enumerations, so the whole copy costs one
	// allocation per node kind instead of one per node. The slab guards
	// below fall back to individual allocation rather than growing a slab:
	// growth would move earlier elements and dangle their pointers.
	mslab := make([]Metric, len(first.metrics))
	cslab := make([]CallNode, len(first.cnodes))
	sslab := make([]CallSite, 0, len(first.callSites))
	rslab := make([]Region, 0, len(first.regions))

	// Metric forest: structural pre-order copy.
	var nm int
	var copyMetric func(m *Metric, parent *Metric) *Metric
	copyMetric = func(m *Metric, parent *Metric) *Metric {
		var out *Metric
		if nm < len(mslab) {
			out = &mslab[nm]
			nm++
		} else {
			out = new(Metric)
		}
		*out = Metric{Name: m.Name, Unit: m.Unit, Description: m.Description, parent: parent}
		if len(m.children) > 0 {
			out.children = make([]*Metric, len(m.children))
			for i, c := range m.children {
				out.children[i] = copyMetric(c, out)
			}
		}
		return out
	}
	out.metricRoots = make([]*Metric, len(first.metricRoots))
	for i, r := range first.metricRoots {
		out.metricRoots[i] = copyMetric(r, nil)
	}

	// Regions: union by (name, module), first occurrence provides the
	// prototype — the same rule mergeProgram applies, restricted to
	// operand 0's registrations.
	regionBy := make(map[string]*Region, len(first.regions))
	regionOut := make(map[*Region]*Region, len(first.regions))
	out.regions = make([]*Region, 0, len(first.regions))
	internRegion := func(r *Region) *Region {
		if r == nil {
			return nil
		}
		if nr, ok := regionOut[r]; ok {
			return nr
		}
		k := regionKey(r)
		nr, ok := regionBy[k]
		if !ok {
			if len(rslab) < cap(rslab) {
				rslab = append(rslab, *r)
				nr = &rslab[len(rslab)-1]
			} else {
				cp := *r
				nr = &cp
			}
			regionBy[k] = nr
			out.regions = append(out.regions, nr)
		}
		regionOut[r] = nr
		return nr
	}
	for _, r := range first.regions {
		internRegion(r)
	}

	// Call forest: structural pre-order copy; call sites are rebuilt for
	// reachable nodes only, in first-use order, shared between nodes that
	// shared them in the operand.
	siteFor := make(map[*CallSite]*CallSite, len(first.callSites))
	out.callSites = make([]*CallSite, 0, len(first.callSites))
	var nc int
	var copyCall func(n *CallNode, parent *CallNode) *CallNode
	copyCall = func(n *CallNode, parent *CallNode) *CallNode {
		ns, ok := siteFor[n.Site]
		if !ok {
			if len(sslab) < cap(sslab) {
				sslab = append(sslab, CallSite{File: n.Site.File, Line: n.Site.Line, Callee: internRegion(n.Site.Callee)})
				ns = &sslab[len(sslab)-1]
			} else {
				ns = &CallSite{File: n.Site.File, Line: n.Site.Line, Callee: internRegion(n.Site.Callee)}
			}
			siteFor[n.Site] = ns
			out.callSites = append(out.callSites, ns)
		}
		var nn *CallNode
		if nc < len(cslab) {
			nn = &cslab[nc]
			nc++
		} else {
			nn = new(CallNode)
		}
		*nn = CallNode{Site: ns, parent: parent}
		if len(n.children) > 0 {
			nn.children = make([]*CallNode, len(n.children))
			for i, c := range n.children {
				nn.children[i] = copyCall(c, nn)
			}
		}
		return nn
	}
	out.callRoots = make([]*CallNode, len(first.callRoots))
	for i, r := range first.callRoots {
		out.callRoots[i] = copyCall(r, nil)
	}

	// System dimension: the real merge over operand 0 alone (fills
	// threadFrom[0]).
	if err := in.mergeSystem(opts, operands[:1]); err != nil {
		return nil, err
	}
	out.topology = first.topology.Clone()

	out.dirty = true
	out.reindex()

	// Identity tables for metrics and call nodes; a real (sorted-ID) table
	// for threads. One table backs every operand.
	rt := remapTable{
		m: make([]int32, len(first.metrics)),
		c: make([]int32, len(first.cnodes)),
		t: make([]int32, len(first.threads)),
	}
	for i := range rt.m {
		rt.m[i] = int32(i)
	}
	for i := range rt.c {
		rt.c[i] = int32(i)
	}
	tf := in.threadFrom[0]
	for si, st := range first.threads {
		rt.t[si] = int32(out.threadIndex[tf[st]])
	}
	in.tabs = make([]remapTable, len(operands))
	for i := range in.tabs {
		in.tabs[i] = rt
	}
	// Every result metric comes from operand 0 (Merge's ownership rule).
	in.metricSrc = make([]int32, len(out.metrics))
	in.fastpath = fastpathIdentity
	return in, nil
}

// --- Metric dimension -------------------------------------------------------

func metricToTM(m *Metric, reg map[*Metric]*treemerge.Node) *treemerge.Node {
	n := treemerge.New(metricKey(m), m)
	reg[m] = n
	for _, c := range m.Children() {
		n.Add(metricToTM(c, reg))
	}
	return n
}

func (in *integration) mergeMetrics(operands []*Experiment) {
	forests := make([][]*treemerge.Node, len(operands))
	tmOf := make([]map[*Metric]*treemerge.Node, len(operands))
	for i, x := range operands {
		tmOf[i] = map[*Metric]*treemerge.Node{}
		for _, r := range x.MetricRoots() {
			forests[i] = append(forests[i], metricToTM(r, tmOf[i]))
		}
	}
	merged, maps := treemerge.MergeAll(forests...)

	// Rebuild a metric forest from the merged neutral forest.
	built := map[*treemerge.Node]*Metric{}
	var build func(n *treemerge.Node, parent *Metric) *Metric
	build = func(n *treemerge.Node, parent *Metric) *Metric {
		proto := n.Payload.(*Metric)
		nm := &Metric{Name: proto.Name, Unit: proto.Unit, Description: proto.Description, parent: parent}
		built[n] = nm
		for _, c := range n.Children {
			nm.children = append(nm.children, build(c, nm))
		}
		return nm
	}
	for _, r := range merged {
		in.out.metricRoots = append(in.out.metricRoots, build(r, nil))
	}
	for i := range operands {
		in.metricFrom[i] = map[*Metric]*Metric{}
		for m, tm := range tmOf[i] {
			res := built[maps[i][tm]]
			in.metricFrom[i][m] = res
			if cur, ok := in.metricSource[res]; !ok || i < cur {
				in.metricSource[res] = i
			}
		}
	}
}

// --- Program dimension --------------------------------------------------------

func (in *integration) mergeProgram(opts *Options, operands []*Experiment) {
	// Regions: union by (name, module); first occurrence provides the
	// prototype (description, line numbers).
	regionBy := map[string]*Region{}
	regionFrom := make([]map[*Region]*Region, len(operands))
	internRegion := func(i int, r *Region) *Region {
		if r == nil {
			return nil
		}
		if nr, ok := regionFrom[i][r]; ok {
			return nr
		}
		k := regionKey(r)
		nr, ok := regionBy[k]
		if !ok {
			cp := *r
			nr = &cp
			regionBy[k] = nr
			in.out.regions = append(in.out.regions, nr)
		}
		regionFrom[i][r] = nr
		return nr
	}
	for i, x := range operands {
		regionFrom[i] = map[*Region]*Region{}
		for _, r := range x.Regions() {
			internRegion(i, r)
		}
	}

	// Call forest: top-down structural merge keyed by the configured
	// equality relation.
	forests := make([][]*treemerge.Node, len(operands))
	tmOf := make([]map[*CallNode]*treemerge.Node, len(operands))
	var toTM func(i int, n *CallNode) *treemerge.Node
	toTM = func(i int, n *CallNode) *treemerge.Node {
		tn := treemerge.New(callNodeKey(n, opts.CallMatch), n)
		tmOf[i][n] = tn
		for _, c := range n.Children() {
			tn.Add(toTM(i, c))
		}
		return tn
	}
	operandOf := map[*CallNode]int{}
	for i, x := range operands {
		tmOf[i] = map[*CallNode]*treemerge.Node{}
		for _, r := range x.CallRoots() {
			forests[i] = append(forests[i], toTM(i, r))
		}
		for _, cn := range x.CallNodes() {
			operandOf[cn] = i
		}
	}
	merged, maps := treemerge.MergeAll(forests...)

	siteFor := map[*CallSite]*CallSite{}
	built := map[*treemerge.Node]*CallNode{}
	var build func(n *treemerge.Node, parent *CallNode) *CallNode
	build = func(n *treemerge.Node, parent *CallNode) *CallNode {
		proto := n.Payload.(*CallNode)
		op := operandOf[proto]
		ns, ok := siteFor[proto.Site]
		if !ok {
			ns = &CallSite{
				File:   proto.Site.File,
				Line:   proto.Site.Line,
				Callee: internRegion(op, proto.Site.Callee),
			}
			siteFor[proto.Site] = ns
			in.out.callSites = append(in.out.callSites, ns)
		}
		nn := &CallNode{Site: ns, parent: parent}
		built[n] = nn
		for _, c := range n.Children {
			nn.children = append(nn.children, build(c, nn))
		}
		return nn
	}
	for _, r := range merged {
		in.out.callRoots = append(in.out.callRoots, build(r, nil))
	}
	for i := range operands {
		in.cnodeFrom[i] = map[*CallNode]*CallNode{}
		for cn, tm := range tmOf[i] {
			res := built[maps[i][tm]]
			in.cnodeFrom[i][cn] = res
			if cur, ok := in.cnodeSource[res]; !ok || i < cur {
				in.cnodeSource[res] = i
			}
		}
	}
}

// --- System dimension ---------------------------------------------------------

// partitionSignature canonically describes how an experiment partitions
// process ranks into nodes: one sorted rank list per node, nodes in
// machine/node order.
func partitionSignature(x *Experiment) string {
	var sig []byte
	for _, mach := range x.Machines() {
		for _, nd := range mach.Nodes() {
			ranks := make([]int, 0, len(nd.Processes()))
			for _, p := range nd.Processes() {
				ranks = append(ranks, p.Rank)
			}
			sort.Ints(ranks)
			sig = append(sig, '[')
			for _, r := range ranks {
				sig = append(sig, fmt.Sprintf("%d,", r)...)
			}
			sig = append(sig, ']')
		}
	}
	return string(sig)
}

func (in *integration) mergeSystem(opts *Options, operands []*Experiment) error {
	// Union of threads keyed by (rank, thread id).
	type rankInfo struct {
		name    string
		threads map[int]string // thread id -> name
	}
	union := map[int]*rankInfo{}
	var rankOrder []int
	for _, x := range operands {
		for _, p := range x.Processes() {
			ri, ok := union[p.Rank]
			if !ok {
				ri = &rankInfo{name: p.Name, threads: map[int]string{}}
				union[p.Rank] = ri
				rankOrder = append(rankOrder, p.Rank)
			}
			for _, t := range p.Threads() {
				if _, ok := ri.threads[t.ID]; !ok {
					ri.threads[t.ID] = t.Name
				}
			}
		}
	}
	sort.Ints(rankOrder)

	mode := opts.System
	if mode == SystemAuto {
		mode = SystemCopyFirst
		if len(operands) > 1 {
			sig := partitionSignature(operands[0])
			for _, x := range operands[1:] {
				if partitionSignature(x) != sig {
					mode = SystemCollapse
					break
				}
			}
		}
	}

	// threadOf returns (and lazily creates nothing — all threads are created
	// below) the result thread for a (rank, id) pair.
	resultThread := map[threadKey]*Thread{}
	newThreads := func(p *Process, rank int) {
		ri := union[rank]
		ids := make([]int, 0, len(ri.threads))
		for id := range ri.threads {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			t := p.NewThread(id, ri.threads[id])
			resultThread[threadKey{rank, id}] = t
		}
	}

	switch mode {
	case SystemCollapse:
		mach := in.out.NewMachine(opts.collapsedMachine())
		nd := mach.NewNode("merged node")
		for _, rank := range rankOrder {
			p := nd.NewProcess(rank, union[rank].name)
			newThreads(p, rank)
		}
	case SystemCopyFirst:
		placed := map[int]bool{}
		var lastNode *SystemNode
		for _, mach := range operands[0].Machines() {
			nm := in.out.NewMachine(mach.Name)
			for _, nd := range mach.Nodes() {
				nnd := nm.NewNode(nd.Name)
				lastNode = nnd
				for _, p := range nd.Processes() {
					np := nnd.NewProcess(p.Rank, union[p.Rank].name)
					newThreads(np, p.Rank)
					placed[p.Rank] = true
				}
			}
		}
		// Ranks present only in later operands go to the last node.
		var extra []int
		for _, rank := range rankOrder {
			if !placed[rank] {
				extra = append(extra, rank)
			}
		}
		if len(extra) > 0 {
			if lastNode == nil {
				mach := in.out.NewMachine(opts.collapsedMachine())
				lastNode = mach.NewNode("merged node")
			}
			for _, rank := range extra {
				p := lastNode.NewProcess(rank, union[rank].name)
				newThreads(p, rank)
			}
		}
	default:
		return fmt.Errorf("core: unknown system mode %v", opts.System)
	}

	for i, x := range operands {
		in.threadFrom[i] = map[*Thread]*Thread{}
		for _, t := range x.Threads() {
			rt := resultThread[threadKey{t.proc.Rank, t.ID}]
			if rt == nil {
				return fmt.Errorf("core: internal error: no result thread for rank %d id %d", t.proc.Rank, t.ID)
			}
			in.threadFrom[i][t] = rt
		}
	}
	return nil
}
