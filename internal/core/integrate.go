package core

import (
	"errors"
	"fmt"
	"sort"

	"cube/internal/obs"
	"cube/internal/treemerge"
)

// Options control metadata integration. The zero value (or nil) selects the
// defaults: call-tree matching by callee, and automatic system handling
// (copy the first operand's machine/node hierarchy when the partitioning of
// processes into nodes is compatible among the operands, collapse to a
// single machine and node otherwise).
type Options struct {
	// CallMatch selects the call-tree equality relation.
	CallMatch CallMatchMode
	// System selects how machine/node hierarchies are integrated.
	System SystemMode
	// CollapsedMachine names the machine created when hierarchies are
	// collapsed; defaults to "merged machine".
	CollapsedMachine string
	// Engine selects the severity-arithmetic implementation. The default
	// (EngineAuto) runs the indexed kernel layer; EngineLegacy keeps the
	// original pointer-map walk as a reference implementation (property
	// tests assert both produce identical results).
	Engine Engine
	// Workers bounds the number of kernel shards worked concurrently;
	// 0 means GOMAXPROCS. Results are identical for every worker count.
	Workers int
	// Trace, when non-nil, attaches the operator invocation's span tree
	// as a child of this span — the HTTP service passes its request span
	// here so one request yields one connected trace. When nil, operators
	// open a root trace on the process-wide tracer (obs.SetTracer) if one
	// is installed, and skip tracing entirely otherwise.
	Trace *obs.Span
	// Event, when non-nil, receives the invocation's resource attribution
	// (operator name, kernel cells/shards/tuples, accumulator choice,
	// summed shard compute time) — the HTTP service passes its per-request
	// wide event here. A nil Event costs nothing: every hook is a
	// nil-receiver no-op.
	Event *obs.Event
}

// Engine names a severity-arithmetic implementation.
type Engine int

const (
	// EngineAuto selects the kernel implementation, falling back to the
	// legacy walk only when the integrated domain cannot be index-packed.
	EngineAuto Engine = iota
	// EngineKernel is the indexed, sharded kernel layer (kernel.go).
	EngineKernel
	// EngineLegacy is the original per-tuple pointer-map walk.
	EngineLegacy
)

// useKernel reports whether operators should run on the kernel layer for
// the integrated result out.
func (o *Options) useKernel(out *Experiment) bool {
	if o != nil && o.Engine == EngineLegacy {
		return false
	}
	return kernelFeasible(out)
}

func (o *Options) orDefault() *Options {
	if o == nil {
		return &Options{}
	}
	return o
}

func (o *Options) collapsedMachine() string {
	if o != nil && o.CollapsedMachine != "" {
		return o.CollapsedMachine
	}
	return "merged machine"
}

// ErrNoOperands is returned by operators invoked without operands.
var ErrNoOperands = errors.New("core: operator requires at least one operand")

// integration is the outcome of integrating the metadata of several operand
// experiments: a fresh result experiment with merged metadata, plus mappings
// from every operand's metadata nodes to the result's, which extend each
// operand's severity function onto the integrated domain (undefined tuples
// are implicitly zero).
type integration struct {
	out *Experiment
	// metricFrom[i] maps operand i's metrics to result metrics.
	metricFrom []map[*Metric]*Metric
	// cnodeFrom[i] maps operand i's call nodes to result call nodes.
	cnodeFrom []map[*CallNode]*CallNode
	// threadFrom[i] maps operand i's threads to result threads.
	threadFrom []map[*Thread]*Thread
	// metricSource maps each result metric to the smallest operand index
	// that provides it (used by Merge's "take it from the first" rule).
	metricSource map[*Metric]int
	// cnodeSource likewise for call nodes.
	cnodeSource map[*CallNode]int
}

// integrate merges the metadata sets of the operands into a fresh
// experiment, dimension by dimension: the metric forest and the call forest
// via top-down structural tree merges with dimension-specific equality
// relations, and the system dimension by matching processes and threads on
// their application-level identifiers while copying or collapsing the upper
// machine/node levels.
func integrate(opts *Options, operands ...*Experiment) (*integration, error) {
	if len(operands) == 0 {
		return nil, ErrNoOperands
	}
	for i, x := range operands {
		if x == nil {
			return nil, fmt.Errorf("core: operand %d is nil", i)
		}
	}
	opts = opts.orDefault()
	in := &integration{
		out:          New(""),
		metricFrom:   make([]map[*Metric]*Metric, len(operands)),
		cnodeFrom:    make([]map[*CallNode]*CallNode, len(operands)),
		threadFrom:   make([]map[*Thread]*Thread, len(operands)),
		metricSource: map[*Metric]int{},
		cnodeSource:  map[*CallNode]int{},
	}
	in.mergeMetrics(operands)
	in.mergeProgram(opts, operands)
	if err := in.mergeSystem(opts, operands); err != nil {
		return nil, err
	}
	// A topology survives integration only when every operand agrees on
	// it (coordinates are meaningless across different layouts).
	topo := operands[0].topology
	for _, x := range operands[1:] {
		if !topo.Equal(x.topology) {
			topo = nil
			break
		}
	}
	in.out.topology = topo.Clone()
	in.out.dirty = true
	recordIntegration(in, operands)
	return in, nil
}

// --- Metric dimension -------------------------------------------------------

func metricToTM(m *Metric, reg map[*Metric]*treemerge.Node) *treemerge.Node {
	n := treemerge.New(metricKey(m), m)
	reg[m] = n
	for _, c := range m.Children() {
		n.Add(metricToTM(c, reg))
	}
	return n
}

func (in *integration) mergeMetrics(operands []*Experiment) {
	forests := make([][]*treemerge.Node, len(operands))
	tmOf := make([]map[*Metric]*treemerge.Node, len(operands))
	for i, x := range operands {
		tmOf[i] = map[*Metric]*treemerge.Node{}
		for _, r := range x.MetricRoots() {
			forests[i] = append(forests[i], metricToTM(r, tmOf[i]))
		}
	}
	merged, maps := treemerge.MergeAll(forests...)

	// Rebuild a metric forest from the merged neutral forest.
	built := map[*treemerge.Node]*Metric{}
	var build func(n *treemerge.Node, parent *Metric) *Metric
	build = func(n *treemerge.Node, parent *Metric) *Metric {
		proto := n.Payload.(*Metric)
		nm := &Metric{Name: proto.Name, Unit: proto.Unit, Description: proto.Description, parent: parent}
		built[n] = nm
		for _, c := range n.Children {
			nm.children = append(nm.children, build(c, nm))
		}
		return nm
	}
	for _, r := range merged {
		in.out.metricRoots = append(in.out.metricRoots, build(r, nil))
	}
	for i := range operands {
		in.metricFrom[i] = map[*Metric]*Metric{}
		for m, tm := range tmOf[i] {
			res := built[maps[i][tm]]
			in.metricFrom[i][m] = res
			if cur, ok := in.metricSource[res]; !ok || i < cur {
				in.metricSource[res] = i
			}
		}
	}
}

// --- Program dimension --------------------------------------------------------

func (in *integration) mergeProgram(opts *Options, operands []*Experiment) {
	// Regions: union by (name, module); first occurrence provides the
	// prototype (description, line numbers).
	regionBy := map[string]*Region{}
	regionFrom := make([]map[*Region]*Region, len(operands))
	internRegion := func(i int, r *Region) *Region {
		if r == nil {
			return nil
		}
		if nr, ok := regionFrom[i][r]; ok {
			return nr
		}
		k := regionKey(r)
		nr, ok := regionBy[k]
		if !ok {
			cp := *r
			nr = &cp
			regionBy[k] = nr
			in.out.regions = append(in.out.regions, nr)
		}
		regionFrom[i][r] = nr
		return nr
	}
	for i, x := range operands {
		regionFrom[i] = map[*Region]*Region{}
		for _, r := range x.Regions() {
			internRegion(i, r)
		}
	}

	// Call forest: top-down structural merge keyed by the configured
	// equality relation.
	forests := make([][]*treemerge.Node, len(operands))
	tmOf := make([]map[*CallNode]*treemerge.Node, len(operands))
	var toTM func(i int, n *CallNode) *treemerge.Node
	toTM = func(i int, n *CallNode) *treemerge.Node {
		tn := treemerge.New(callNodeKey(n, opts.CallMatch), n)
		tmOf[i][n] = tn
		for _, c := range n.Children() {
			tn.Add(toTM(i, c))
		}
		return tn
	}
	operandOf := map[*CallNode]int{}
	for i, x := range operands {
		tmOf[i] = map[*CallNode]*treemerge.Node{}
		for _, r := range x.CallRoots() {
			forests[i] = append(forests[i], toTM(i, r))
		}
		for _, cn := range x.CallNodes() {
			operandOf[cn] = i
		}
	}
	merged, maps := treemerge.MergeAll(forests...)

	siteFor := map[*CallSite]*CallSite{}
	built := map[*treemerge.Node]*CallNode{}
	var build func(n *treemerge.Node, parent *CallNode) *CallNode
	build = func(n *treemerge.Node, parent *CallNode) *CallNode {
		proto := n.Payload.(*CallNode)
		op := operandOf[proto]
		ns, ok := siteFor[proto.Site]
		if !ok {
			ns = &CallSite{
				File:   proto.Site.File,
				Line:   proto.Site.Line,
				Callee: internRegion(op, proto.Site.Callee),
			}
			siteFor[proto.Site] = ns
			in.out.callSites = append(in.out.callSites, ns)
		}
		nn := &CallNode{Site: ns, parent: parent}
		built[n] = nn
		for _, c := range n.Children {
			nn.children = append(nn.children, build(c, nn))
		}
		return nn
	}
	for _, r := range merged {
		in.out.callRoots = append(in.out.callRoots, build(r, nil))
	}
	for i := range operands {
		in.cnodeFrom[i] = map[*CallNode]*CallNode{}
		for cn, tm := range tmOf[i] {
			res := built[maps[i][tm]]
			in.cnodeFrom[i][cn] = res
			if cur, ok := in.cnodeSource[res]; !ok || i < cur {
				in.cnodeSource[res] = i
			}
		}
	}
}

// --- System dimension ---------------------------------------------------------

// partitionSignature canonically describes how an experiment partitions
// process ranks into nodes: one sorted rank list per node, nodes in
// machine/node order.
func partitionSignature(x *Experiment) string {
	var sig []byte
	for _, mach := range x.Machines() {
		for _, nd := range mach.Nodes() {
			ranks := make([]int, 0, len(nd.Processes()))
			for _, p := range nd.Processes() {
				ranks = append(ranks, p.Rank)
			}
			sort.Ints(ranks)
			sig = append(sig, '[')
			for _, r := range ranks {
				sig = append(sig, fmt.Sprintf("%d,", r)...)
			}
			sig = append(sig, ']')
		}
	}
	return string(sig)
}

func (in *integration) mergeSystem(opts *Options, operands []*Experiment) error {
	// Union of threads keyed by (rank, thread id).
	type rankInfo struct {
		name    string
		threads map[int]string // thread id -> name
	}
	union := map[int]*rankInfo{}
	var rankOrder []int
	for _, x := range operands {
		for _, p := range x.Processes() {
			ri, ok := union[p.Rank]
			if !ok {
				ri = &rankInfo{name: p.Name, threads: map[int]string{}}
				union[p.Rank] = ri
				rankOrder = append(rankOrder, p.Rank)
			}
			for _, t := range p.Threads() {
				if _, ok := ri.threads[t.ID]; !ok {
					ri.threads[t.ID] = t.Name
				}
			}
		}
	}
	sort.Ints(rankOrder)

	mode := opts.System
	if mode == SystemAuto {
		mode = SystemCopyFirst
		if len(operands) > 1 {
			sig := partitionSignature(operands[0])
			for _, x := range operands[1:] {
				if partitionSignature(x) != sig {
					mode = SystemCollapse
					break
				}
			}
		}
	}

	// threadOf returns (and lazily creates nothing — all threads are created
	// below) the result thread for a (rank, id) pair.
	resultThread := map[threadKey]*Thread{}
	newThreads := func(p *Process, rank int) {
		ri := union[rank]
		ids := make([]int, 0, len(ri.threads))
		for id := range ri.threads {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			t := p.NewThread(id, ri.threads[id])
			resultThread[threadKey{rank, id}] = t
		}
	}

	switch mode {
	case SystemCollapse:
		mach := in.out.NewMachine(opts.collapsedMachine())
		nd := mach.NewNode("merged node")
		for _, rank := range rankOrder {
			p := nd.NewProcess(rank, union[rank].name)
			newThreads(p, rank)
		}
	case SystemCopyFirst:
		placed := map[int]bool{}
		var lastNode *SystemNode
		for _, mach := range operands[0].Machines() {
			nm := in.out.NewMachine(mach.Name)
			for _, nd := range mach.Nodes() {
				nnd := nm.NewNode(nd.Name)
				lastNode = nnd
				for _, p := range nd.Processes() {
					np := nnd.NewProcess(p.Rank, union[p.Rank].name)
					newThreads(np, p.Rank)
					placed[p.Rank] = true
				}
			}
		}
		// Ranks present only in later operands go to the last node.
		var extra []int
		for _, rank := range rankOrder {
			if !placed[rank] {
				extra = append(extra, rank)
			}
		}
		if len(extra) > 0 {
			if lastNode == nil {
				mach := in.out.NewMachine(opts.collapsedMachine())
				lastNode = mach.NewNode("merged node")
			}
			for _, rank := range extra {
				p := lastNode.NewProcess(rank, union[rank].name)
				newThreads(p, rank)
			}
		}
	default:
		return fmt.Errorf("core: unknown system mode %v", opts.System)
	}

	for i, x := range operands {
		in.threadFrom[i] = map[*Thread]*Thread{}
		for _, t := range x.Threads() {
			rt := resultThread[threadKey{t.proc.Rank, t.ID}]
			if rt == nil {
				return fmt.Errorf("core: internal error: no result thread for rank %d id %d", t.proc.Rank, t.ID)
			}
			in.threadFrom[i][t] = rt
		}
	}
	return nil
}
