package core

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// Integration memoization. integrate's outcome is fully determined by the
// ordered tuple of operand metadata digests plus the matching options
// (CallMatch relation, System mode, collapsed-machine name) — severity data
// never influences the merged metadata or the mappings. Repeated *mixed*
// pairings (comparing this run against last week's baseline, over and over,
// per operator call and per request) therefore re-derive the same merged
// forests and remap tables every time. The memo cache stores, per key, a
// severity-free skeleton of the merged experiment plus the flat per-operand
// remap tables; a hit clones the skeleton (cheap: metadata only) and shares
// the immutable tables, skipping the treemerge walk and all pointer-map
// construction.
//
// Keying on digests alone would be unsound: the same operand tuple merges
// differently under CallMatchCalleeLine than under CallMatchCallee, and the
// system forest differs between collapse and copy-first — hence the Options
// fingerprint in the key. Engine and Workers do not enter the key: they
// select how severity arithmetic runs, not what the integration is.
//
// Entries never retain operand experiments — only the skeleton, index
// tables, and source attribution — so the cache pins metadata bytes, not
// severity payloads. It is byte-budgeted with LRU eviction; the budget is
// process-wide (SetIntegrateMemoBudget, cube-server -integrate-memo-mb).

// DefaultIntegrateMemoBytes is the initial process-wide memo budget.
const DefaultIntegrateMemoBytes = 32 << 20

// metaFastpathOff disables both the digest-equality fast path and the memo
// cache, forcing every integration through the full treemerge walk. Tests
// and benchmarks use it to obtain cold baselines and oracle results.
var metaFastpathOff atomic.Bool

var integrateMemoTable atomic.Pointer[integrateMemo]

func init() {
	SetIntegrateMemoBudget(DefaultIntegrateMemoBytes)
}

// SetIntegrateMemoBudget replaces the process-wide integration memo cache
// with an empty one holding at most budgetBytes of skeleton metadata;
// budgetBytes <= 0 disables memoization (the digest-equality fast path
// stays active — it needs no storage).
func SetIntegrateMemoBudget(budgetBytes int64) {
	if budgetBytes <= 0 {
		integrateMemoTable.Store(nil)
		return
	}
	integrateMemoTable.Store(&integrateMemo{
		budget: budgetBytes,
		ll:     list.New(),
		idx:    map[memoKey]*list.Element{},
	})
}

type memoKey [32]byte

// memoKeyOf condenses the ordered operand digest tuple and the
// integration-relevant options into one key.
func memoKeyOf(opts *Options, digs [][32]byte) memoKey {
	h := sha256.New()
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(opts.CallMatch))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(opts.System))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(digs)))
	h.Write(hdr[:])
	h.Write([]byte(opts.collapsedMachine()))
	h.Write([]byte{0})
	for i := range digs {
		h.Write(digs[i][:])
	}
	var k memoKey
	h.Sum(k[:0])
	return k
}

// memoEntry is one cached integration outcome. All fields are immutable
// after construction: concurrent hits clone the skeleton (a read-only
// operation) and share the tables.
type memoEntry struct {
	key       memoKey
	skel      *Experiment // merged metadata, no severities; cloned per hit
	tabs      []remapTable
	metricSrc []int32
	bytes     int64
}

// newMemoEntry snapshots a freshly computed full integration. The skeleton
// is cloned *before* the caller runs kernels and stamps provenance onto
// in.out, so the entry stays severity- and title-free.
func newMemoEntry(key memoKey, in *integration) *memoEntry {
	tabs := in.tables()
	out := in.out
	var tabBytes int64
	for _, rt := range tabs {
		tabBytes += int64(len(rt.m)+len(rt.c)+len(rt.t)) * 4
	}
	// Struct sizes dominate; strings are interned/shared and not charged.
	nodes := int64(len(out.metrics) + len(out.cnodes) + len(out.threads) + len(out.procs))
	meta := int64(len(out.regions)+len(out.callSites))*96 + nodes*112
	return &memoEntry{
		key:       key,
		skel:      out.Clone(),
		tabs:      tabs,
		metricSrc: in.metricSrcs(),
		bytes:     512 + meta + tabBytes + int64(len(in.metricSrc))*4,
	}
}

// open instantiates a cached integration for a concrete operand tuple.
func (ent *memoEntry) open(operands []*Experiment) *integration {
	in := newIntegration(operands)
	in.out = ent.skel.Clone()
	in.tabs = ent.tabs
	in.metricSrc = ent.metricSrc
	in.fastpath = fastpathMemo
	return in
}

type integrateMemo struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used; values are *memoEntry
	idx    map[memoKey]*list.Element
}

func (mc *integrateMemo) get(key memoKey) *memoEntry {
	mc.mu.Lock()
	el, ok := mc.idx[key]
	if ok {
		mc.ll.MoveToFront(el)
	}
	mc.mu.Unlock()
	if reg := opRegistry.Load(); reg != nil {
		if ok {
			reg.Counter("cube_meta_memo_hits_total").Inc()
		} else {
			reg.Counter("cube_meta_memo_misses_total").Inc()
		}
	}
	if !ok {
		return nil
	}
	return el.Value.(*memoEntry)
}

func (mc *integrateMemo) put(ent *memoEntry) {
	if ent.bytes > mc.budget {
		return // would evict everything and still not fit
	}
	evicted := 0
	mc.mu.Lock()
	if _, ok := mc.idx[ent.key]; ok {
		// Lost a race against a concurrent identical integration; the
		// resident entry is equivalent.
		mc.mu.Unlock()
		return
	}
	mc.idx[ent.key] = mc.ll.PushFront(ent)
	mc.bytes += ent.bytes
	for mc.bytes > mc.budget {
		el := mc.ll.Back()
		if el == nil {
			break
		}
		old := el.Value.(*memoEntry)
		mc.ll.Remove(el)
		delete(mc.idx, old.key)
		mc.bytes -= old.bytes
		evicted++
	}
	bytes := mc.bytes
	mc.mu.Unlock()
	if reg := opRegistry.Load(); reg != nil {
		if evicted > 0 {
			reg.Counter("cube_meta_memo_evictions_total").Add(int64(evicted))
		}
		reg.Gauge("cube_meta_memo_bytes").Set(bytes)
	}
}
