package core

import (
	"fmt"
	"sort"
)

// Topology is an optional Cartesian process topology attached to an
// experiment — the paper's future-work extension ("the integration of
// topology information, for example obtained from instrumented MPI topology
// routines, into our data model could open the way for new automatic
// analysis and visualization tools"). It maps process ranks onto
// coordinates in an n-dimensional grid, enabling physical-layout views of
// the severity distribution.
type Topology struct {
	// Name labels the topology, e.g. "process grid".
	Name string
	// Dims are the grid extents per dimension (row-major display order).
	Dims []int
	// Coords maps each rank to its coordinate vector (len == len(Dims)).
	Coords map[int][]int
}

// NewCartesian builds a dense Cartesian topology for ranks 0..n-1 laid out
// row-major over the given dims (n = product of dims).
func NewCartesian(name string, dims ...int) (*Topology, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("core: topology needs at least one dimension")
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("core: topology dimension %d is not positive", d)
		}
		n *= d
	}
	t := &Topology{Name: name, Dims: append([]int(nil), dims...), Coords: make(map[int][]int, n)}
	for rank := 0; rank < n; rank++ {
		coord := make([]int, len(dims))
		rest := rank
		for i := len(dims) - 1; i >= 0; i-- {
			coord[i] = rest % dims[i]
			rest /= dims[i]
		}
		t.Coords[rank] = coord
	}
	return t, nil
}

// RankAt returns the rank at the given coordinate, or -1 if unmapped.
func (t *Topology) RankAt(coord ...int) int {
	if len(coord) != len(t.Dims) {
		return -1
	}
	for rank, c := range t.Coords {
		match := true
		for i := range c {
			if c[i] != coord[i] {
				match = false
				break
			}
		}
		if match {
			return rank
		}
	}
	return -1
}

// Equal reports whether two topologies describe the same layout.
func (t *Topology) Equal(o *Topology) bool {
	if t == nil || o == nil {
		return t == o
	}
	if len(t.Dims) != len(o.Dims) || len(t.Coords) != len(o.Coords) {
		return false
	}
	for i := range t.Dims {
		if t.Dims[i] != o.Dims[i] {
			return false
		}
	}
	for rank, c := range t.Coords {
		oc, ok := o.Coords[rank]
		if !ok || len(oc) != len(c) {
			return false
		}
		for i := range c {
			if c[i] != oc[i] {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy.
func (t *Topology) Clone() *Topology {
	if t == nil {
		return nil
	}
	c := &Topology{Name: t.Name, Dims: append([]int(nil), t.Dims...), Coords: make(map[int][]int, len(t.Coords))}
	for rank, coord := range t.Coords {
		c.Coords[rank] = append([]int(nil), coord...)
	}
	return c
}

// validate checks the topology against the experiment's processes.
func (t *Topology) validate(e *Experiment) error {
	if len(t.Dims) == 0 {
		return invalid("system", "topology %q has no dimensions", t.Name)
	}
	for _, d := range t.Dims {
		if d <= 0 {
			return invalid("system", "topology %q has non-positive dimension", t.Name)
		}
	}
	seen := map[string]int{}
	for rank, coord := range t.Coords {
		if e.FindProcess(rank) == nil {
			return invalid("system", "topology %q maps unknown rank %d", t.Name, rank)
		}
		if len(coord) != len(t.Dims) {
			return invalid("system", "topology %q rank %d has %d coordinates, want %d",
				t.Name, rank, len(coord), len(t.Dims))
		}
		key := ""
		for i, c := range coord {
			if c < 0 || c >= t.Dims[i] {
				return invalid("system", "topology %q rank %d coordinate %v out of bounds", t.Name, rank, coord)
			}
			key += fmt.Sprintf("%d,", c)
		}
		if prev, dup := seen[key]; dup {
			return invalid("system", "topology %q ranks %d and %d share coordinate %v", t.Name, prev, rank, coord)
		}
		seen[key] = rank
	}
	return nil
}

// SortedRanks returns the mapped ranks in ascending order.
func (t *Topology) SortedRanks() []int {
	out := make([]int, 0, len(t.Coords))
	for rank := range t.Coords {
		out = append(out, rank)
	}
	sort.Ints(out)
	return out
}

// SetTopology attaches a Cartesian topology to the experiment (nil
// detaches). It is validated by Experiment.Validate.
func (e *Experiment) SetTopology(t *Topology) { e.topology = t }

// Topology returns the attached topology, or nil.
func (e *Experiment) Topology() *Topology { return e.topology }
