package core

// This file is the ingest seam of the columnar severity layer: a way for
// producers that already know enumeration indices (the cubexml fast-path
// reader, bulk generators) to land severity tuples directly in the packed
// sevBlock representation of kernel.go, skipping the pointer-keyed sparse
// map entirely. The map stays a lazy view (Experiment.ensureSev), exactly
// as it is for kernel operator results.

// SeverityIngest accumulates index-addressed severity tuples for one
// experiment and installs them as the experiment's columnar store. The
// intended flow is:
//
//	ing := e.NewSeverityIngest()
//	nM, nC, nT := ing.Dims()
//	... producers append ing.RowKey(mi, ci)+ti / value pairs, possibly
//	    from several goroutines into disjoint slices ...
//	ing.Commit(keys, vals, sorted)
//
// Keys must be unique (each (metric, call node, thread) tuple at most
// once) and values non-zero and the indices in range of Dims; Commit
// trusts the producer on all three, which is why the type lives behind
// the internal boundary. Duplicate-free input is what preserves the
// store's set semantics; producers that cannot rule out duplicates must
// fall back to SetSeverity.
type SeverityIngest struct {
	e            *Experiment
	nM, nC, nT   int
	packC, packT uint64
}

// NewSeverityIngest prepares ingesting severities into e, capturing the
// current enumeration sizes. The experiment's metadata must be complete;
// mutating metadata between NewSeverityIngest and Commit invalidates the
// packing.
func (e *Experiment) NewSeverityIngest() *SeverityIngest {
	e.reindex()
	packC, packT := uint64(len(e.cnodes)), uint64(len(e.threads))
	// Clamp like sevBlock so the packing stays invertible on empty
	// dimensions.
	if packC == 0 {
		packC = 1
	}
	if packT == 0 {
		packT = 1
	}
	return &SeverityIngest{
		e:     e,
		nM:    len(e.metrics),
		nC:    len(e.cnodes),
		nT:    len(e.threads),
		packC: packC,
		packT: packT,
	}
}

// Dims returns the enumeration sizes (metrics, call nodes, threads) the
// packing was built against.
func (in *SeverityIngest) Dims() (nMetrics, nCallNodes, nThreads int) {
	return in.nM, in.nC, in.nT
}

// RowKey returns the packed key of (mi, ci, thread 0); the key of thread
// ti within the row is RowKey(mi, ci) + ti. Keys compare in (metric,
// call node, thread) enumeration order, the canonical severity order.
func (in *SeverityIngest) RowKey(mi, ci int) uint64 {
	return (uint64(mi)*in.packC + uint64(ci)) * in.packT
}

// Commit installs the accumulated (key, value) pairs as the experiment's
// severity function, replacing whatever it held. The slices are owned by
// the experiment afterwards. sorted asserts the keys already ascend
// strictly; otherwise they are radix-sorted here (values follow their
// keys). The pointer-keyed severity map is left unmaterialised — it is a
// lazy view rebuilt on demand — so ingesting n tuples costs O(n) flat
// array writes plus at most one sort, with no per-tuple map or
// allocation work.
func (in *SeverityIngest) Commit(keys []uint64, vals []float64, sorted bool) {
	if !sorted {
		keys, vals = radixSortKV(keys, vals)
	}
	e := in.e
	e.sevGen++
	e.sev = nil
	e.lowered = &sevBlock{key: keys, val: vals, nC: in.packC, nT: in.packT}
	e.loweredSevGen = e.sevGen
	e.loweredMetaGen = e.metaGen
}
