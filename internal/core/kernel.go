package core

import (
	"math/bits"
	"runtime"
	"sync"
	"time"

	"cube/internal/obs"
)

// This file implements the indexed severity kernel layer: the arithmetic
// core shared by all algebraic operators.
//
// The operators' element-wise semantics are defined over the *zero-extended*
// severity functions on the integrated metadata. The naive realisation walks
// each operand's sparse map and remaps every tuple through three
// pointer-keyed maps (metricFrom/cnodeFrom/threadFrom) before touching a
// pointer-keyed result map — four hash operations over 24-byte keys per
// tuple. The kernel layer replaces that walk with three stages over flat
// integer indices:
//
//  1. lower  — each operand's sparse map is lowered once into a columnar
//     block: packed (metric, call node, thread) linear indices plus values,
//     radix-sorted into the canonical pre-order. Blocks are cached on the
//     experiment and invalidated by severity or metadata mutation, so
//     repeated operator application over the same operands pays the pointer
//     chasing only once.
//  2. accumulate — per operand, a remap table ([]int32, source index →
//     result index, built from the integration's cached index maps with one
//     map lookup per metadata node instead of one per tuple) turns every
//     block entry into a packed uint64 linear index of the result domain.
//     Because block keys ascend, the (metric, call node) row component only
//     changes every run of consecutive tuples; the kernels re-derive the
//     row remap on row changes and reduce the per-tuple work to one table
//     load and one fused multiply-add. Accumulation goes into either a
//     dense []float64 (when the result domain is small enough relative to
//     the tuple count) or a map[uint64]float64 — both far cheaper than a
//     pointer-keyed map. Work is sharded by result (metric, call node) row
//     across workers; shards partition the key space, so accumulators never
//     need locks.
//  3. materialize — the accumulated (key, value) pairs are radix-sorted
//     into canonical order and become the result's severity store directly:
//     the sorted block doubles as the result's lowered-block cache, so
//     operator chains never re-lower, and the pointer-keyed sparse map is
//     only materialised lazily if a map-based accessor is used
//     (Experiment.ensureSev). Exact zeros are dropped, as SetSeverity and
//     AddSeverity would.
//
// Because every per-key combination folds the collapsed contributions of
// one operand first (in canonical source order) and then combines operands
// in operand order, results are deterministic: the same operands and
// options produce bit-identical results regardless of worker count or map
// iteration order.

// sevBlock is the columnar lowering of a sparse severity store: packed
// linear indices (mi*nC + ci)*nT + ti in ascending order and their values,
// where nC and nT are the owning experiment's enumeration sizes at build
// time (clamped to ≥ 1 so the packing is invertible on empty dimensions).
type sevBlock struct {
	key    []uint64
	val    []float64
	nC, nT uint64
}

func (b *sevBlock) len() int { return len(b.val) }

// at unpacks entry i into enumeration indices.
func (b *sevBlock) at(i int) (mi, ci, ti int) {
	k := b.key[i]
	ti = int(k % b.nT)
	rem := k / b.nT
	return int(rem / b.nC), int(rem % b.nC), ti
}

// loweredBlock returns the experiment's severity function in columnar form,
// building and caching it on first use. Tuples that refer to unregistered
// metadata (possible only on invalid experiments) are skipped, matching
// Dense. The cache is invalidated by any severity mutation (sevGen) and by
// metadata re-enumeration (metaGen).
func (e *Experiment) loweredBlock() *sevBlock {
	e.reindex()
	if e.lowered != nil && e.loweredSevGen == e.sevGen && e.loweredMetaGen == e.metaGen {
		return e.lowered
	}
	nC, nT := uint64(len(e.cnodes)), uint64(len(e.threads))
	if nC == 0 {
		nC = 1
	}
	if nT == 0 {
		nT = 1
	}
	sev := e.sevMap()
	keys := make([]uint64, 0, len(sev))
	vals := make([]float64, 0, len(sev))
	for k, v := range sev {
		mi, ok1 := e.metricIndex[k.m]
		ci, ok2 := e.cnodeIndex[k.c]
		ti, ok3 := e.threadIndex[k.t]
		if !ok1 || !ok2 || !ok3 {
			continue
		}
		keys = append(keys, (uint64(mi)*nC+uint64(ci))*nT+uint64(ti))
		vals = append(vals, v)
	}
	keys, vals = radixSortKV(keys, vals)
	e.lowered = &sevBlock{key: keys, val: vals, nC: nC, nT: nT}
	e.loweredSevGen = e.sevGen
	e.loweredMetaGen = e.metaGen
	if len(keys) == len(sev) {
		// The block captures the map losslessly (no unregistered tuples
		// were skipped), so the columnar form becomes the primary store:
		// drop the pointer-keyed map — it is rebuilt on demand by
		// ensureSev — and relieve the garbage collector of millions of
		// pointer-bearing map entries on large experiments.
		e.sev = nil
	}
	return e.lowered
}

// radixScratch pools the ping-pong buffers of radixSortKV; lowering several
// operands (or chained operators) reuses one pair instead of allocating —
// and, unlike fresh allocations, pooled buffers skip the runtime's zeroing.
var radixScratch = sync.Pool{New: func() any { return &radixBufs{} }}

type radixBufs struct {
	k []uint64
	v []float64
}

// radixSortKV sorts keys ascending (LSD radix, byte digits) keeping vals
// parallel, and returns the sorted pair (which may be the pooled scratch
// rather than the input slices — callers must use the return values). All
// digit histograms are gathered in a single pre-pass; digit positions where
// every key agrees are skipped, so small key spaces sort in two or three
// scatter passes, ping-ponging between the input and the scratch buffers
// with no copy-back.
func radixSortKV(keys []uint64, vals []float64) ([]uint64, []float64) {
	n := len(keys)
	if n < 2 {
		return keys, vals
	}
	var maxKey uint64
	for _, k := range keys {
		if k > maxKey {
			maxKey = k
		}
	}
	passes := (bits.Len64(maxKey) + 7) / 8
	if passes == 0 {
		return keys, vals
	}
	var counts [8][257]int
	for _, k := range keys {
		for p := 0; p < passes; p++ {
			counts[p][int(byte(k>>(8*p)))+1]++
		}
	}
	bufs := radixScratch.Get().(*radixBufs)
	if cap(bufs.k) < n {
		bufs.k = make([]uint64, n)
		bufs.v = make([]float64, n)
	}
	src, dst := keys, bufs.k[:n]
	srcV, dstV := vals, bufs.v[:n]
	for p := 0; p < passes; p++ {
		shift := uint(8 * p)
		count := &counts[p]
		if count[int(byte(maxKey>>shift))+1] == n {
			// All keys share this digit; the pass would be the identity.
			continue
		}
		for i := 1; i < 257; i++ {
			count[i] += count[i-1]
		}
		for i, k := range src {
			d := byte(k >> shift)
			dst[count[d]] = k
			dstV[count[d]] = srcV[i]
			count[d]++
		}
		src, dst = dst, src
		srcV, dstV = dstV, srcV
	}
	// src now holds the sorted data; give the other pair back to the pool.
	bufs.k, bufs.v = dst, dstV
	radixScratch.Put(bufs)
	return src, srcV
}

// remapTable maps each source enumeration index of one operand onto the
// corresponding result enumeration index, for all three dimensions.
type remapTable struct {
	m, c, t []int32
}

// kernelPlan gathers everything the kernels need: the operands' lowered
// blocks, per-operand remap tables, the result dimensions, and the worker
// layout.
type kernelPlan struct {
	in     *integration
	span   *obs.Span  // operator invocation span; nil when untraced
	event  *obs.Event // request/CLI wide event; nil when none attached
	blocks []*sevBlock
	maps   []remapTable
	nC, nT uint64 // result dimensions used for packing (≥ 1)
	cells  uint64 // total result cells, 0 when it would overflow
	total  int    // total tuples across all operand blocks
	shards int
}

// kernelFeasible reports whether the result domain fits the packed-index
// representation (it always does for realistic metadata; the guard keeps
// pathological dimensions on the legacy path rather than overflowing).
func kernelFeasible(out *Experiment) bool {
	out.reindex()
	return bits.Len(uint(len(out.metrics)))+bits.Len(uint(len(out.cnodes)))+bits.Len(uint(len(out.threads))) <= 62
}

func newKernelPlan(in *integration, opts *Options, operands []*Experiment, span *obs.Span) *kernelPlan {
	out := in.out
	out.reindex()
	var ev *obs.Event
	if opts != nil {
		ev = opts.Event
	}
	p := &kernelPlan{
		in:     in,
		span:   span,
		event:  ev,
		blocks: make([]*sevBlock, len(operands)),
		maps:   make([]remapTable, len(operands)),
		nC:     uint64(len(out.cnodes)),
		nT:     uint64(len(out.threads)),
	}
	if p.nC == 0 {
		p.nC = 1
	}
	if p.nT == 0 {
		p.nT = 1
	}
	p.cells = uint64(len(out.metrics)) * p.nC * p.nT
	stage := startKernelStage()
	// The remap tables come from the integration in flat form — identity
	// or memoised tables on the digest fast paths, derived from the
	// pointer maps otherwise (integrate.go tables()).
	tabs := in.tables()
	for i, x := range operands {
		lsp := span.StartChild("lower")
		p.blocks[i] = x.loweredBlock()
		p.total += p.blocks[i].len()
		p.maps[i] = tabs[i]
		if lsp != nil {
			lsp.SetAttr("operand", i)
			lsp.SetAttr("cells", p.blocks[i].len())
			lsp.End()
		}
	}
	stage.done("lower")

	workers := 0
	if opts != nil {
		workers = opts.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Shard by result (metric, call node) row. More shards than rows (or
	// tuples) would only add scan passes.
	rows := int(p.cells / p.nT)
	if workers > rows {
		workers = rows
	}
	if workers > p.total {
		workers = p.total
	}
	if workers < 1 {
		workers = 1
	}
	p.shards = workers
	recordKernelPlan(p)
	return p
}

// shardOf returns the shard owning a packed result key. Keys of one result
// (metric, call node) row always land in the same shard, so dense
// accumulator rows are written by exactly one worker.
func (p *kernelPlan) shardOf(key uint64) int {
	return int((key / p.nT) % uint64(p.shards))
}

// parallel runs fn once per shard, concurrently when the plan has more than
// one shard. When a wide event is attached, every shard reports its own
// wall time into it from its own goroutine — the event's accumulators are
// concurrency-safe — so the event's compute_ms sums CPU-parallel work and
// may exceed the invocation's wall duration.
func (p *kernelPlan) parallel(fn func(shard int)) {
	run := fn
	if ev := p.event; ev != nil {
		run = func(shard int) {
			start := time.Now()
			fn(shard)
			ev.AddCompute(time.Since(start))
		}
	}
	if p.shards == 1 {
		run(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p.shards)
	for s := 0; s < p.shards; s++ {
		go func(s int) {
			defer wg.Done()
			run(s)
		}(s)
	}
	wg.Wait()
}

// denseOK decides between the dense accumulator (one float64 per result
// cell) and the sparse map accumulator: dense wins when the result domain is
// small in absolute terms and not vastly larger than the work to do.
func (p *kernelPlan) denseOK() bool {
	const maxDenseCells = 1 << 23 // 64 MiB of float64
	return p.cells > 0 && p.cells <= maxDenseCells && p.cells <= 8*uint64(p.total)+1024
}

// blockRows drives the row-cached remapping of one operand block: it calls
// row once per run of consecutive tuples sharing a source (metric, call
// node) row — returning the packed result-row base (metric and call node
// already remapped) and whether the run participates at all — and tuple for
// every tuple of participating runs with the precomputed base, the source
// thread index, and the value. Because block keys ascend, runs are maximal
// and the per-tuple work stays free of divisions and metric/cnode loads.
func blockRows(b *sevBlock, rt remapTable, p *kernelPlan,
	row func(srcMetric int, rowBase uint64) bool,
	tuple func(rowBase uint64, srcThread int32, v float64)) {
	srcNC, srcNT := b.nC, b.nT
	var rowStart, rowEnd, rowBase uint64
	use := false
	for j, v := range b.val {
		k := b.key[j]
		if k >= rowEnd {
			r := k / srcNT
			rowStart = r * srcNT
			rowEnd = rowStart + srcNT
			smi := r / srcNC
			rowBase = (uint64(rt.m[smi])*p.nC + uint64(rt.c[r%srcNC])) * p.nT
			use = row(int(smi), rowBase)
		}
		if use {
			tuple(rowBase, int32(k-rowStart), v)
		}
	}
}

// kernelCombine computes the weighted sum of the operands' zero-extended
// severity functions: result(key) = Σ_i weights[i] · folded_i(key), where
// folded_i sums the collapsed contributions of operand i. keep, when
// non-nil, restricts operand i to source metrics with keep[i][srcMetric]
// (Merge's ownership rule); a nil inner slice admits every metric.
func (p *kernelPlan) kernelCombine(weights []float64, keep [][]bool) {
	stage := startKernelStage()
	if p.denseOK() {
		p.event.SetAccumulator("dense")
		acc := make([]float64, p.cells)
		p.parallel(func(shard int) {
			ssp, rows := p.shardSpan(shard, "dense")
			for i, b := range p.blocks {
				w := weights[i]
				if w == 0 {
					continue
				}
				var kp []bool
				if keep != nil {
					kp = keep[i]
				}
				rtT := p.maps[i].t
				blockRows(b, p.maps[i], p,
					func(smi int, rowBase uint64) bool {
						if kp != nil && !kp[smi] {
							return false
						}
						if p.shards != 1 && p.shardOf(rowBase) != shard {
							return false
						}
						if rows != nil {
							*rows++
						}
						return true
					},
					func(rowBase uint64, st int32, v float64) {
						acc[rowBase+uint64(rtT[st])] += w * v
					})
			}
			endShardSpan(ssp, rows)
		})
		stage.done("accumulate")
		stage = startKernelStage()
		msp := p.span.StartChild("materialize")
		keys := make([]uint64, 0, p.total)
		vals := make([]float64, 0, p.total)
		for key, v := range acc {
			if v != 0 {
				keys = append(keys, uint64(key))
				vals = append(vals, v)
			}
		}
		p.install(keys, vals, true, msp)
		msp.SetAttr("cells", len(keys))
		msp.End()
		stage.done("materialize")
		return
	}
	p.event.SetAccumulator("sparse")
	accs := make([]map[uint64]float64, p.shards)
	p.parallel(func(shard int) {
		ssp, rows := p.shardSpan(shard, "sparse")
		acc := make(map[uint64]float64, p.total/p.shards+1)
		for i, b := range p.blocks {
			w := weights[i]
			if w == 0 {
				continue
			}
			var kp []bool
			if keep != nil {
				kp = keep[i]
			}
			rtT := p.maps[i].t
			blockRows(b, p.maps[i], p,
				func(smi int, rowBase uint64) bool {
					if kp != nil && !kp[smi] {
						return false
					}
					if p.shards != 1 && p.shardOf(rowBase) != shard {
						return false
					}
					if rows != nil {
						*rows++
					}
					return true
				},
				func(rowBase uint64, st int32, v float64) {
					acc[rowBase+uint64(rtT[st])] += w * v
				})
		}
		accs[shard] = acc
		endShardSpan(ssp, rows)
	})
	stage.done("accumulate")
	stage = startKernelStage()
	msp := p.span.StartChild("materialize")
	n := 0
	for _, acc := range accs {
		n += len(acc)
	}
	keys := make([]uint64, 0, n)
	vals := make([]float64, 0, n)
	for _, acc := range accs {
		for key, v := range acc {
			if v != 0 {
				keys = append(keys, key)
				vals = append(vals, v)
			}
		}
	}
	p.install(keys, vals, false, msp)
	msp.SetAttr("cells", len(keys))
	msp.End()
	stage.done("materialize")
}

// shardSpan opens one worker shard's "kernel" span, annotated with the
// shard number and accumulator choice. The returned counter is nil when
// the shard is untraced, so the hot row callback pays a predictable
// nil check instead of counting work nobody will read.
func (p *kernelPlan) shardSpan(shard int, accumulator string) (*obs.Span, *int) {
	ssp := p.span.StartChild("kernel")
	if ssp == nil {
		return nil, nil
	}
	ssp.SetAttr("shard", shard)
	ssp.SetAttr("accumulator", accumulator)
	return ssp, new(int)
}

// endShardSpan closes a shard span with its processed-row count.
func endShardSpan(ssp *obs.Span, rows *int) {
	if ssp == nil {
		return
	}
	ssp.SetAttr("rows", *rows)
	ssp.End()
}

// kernelFold computes, for every result key defined in at least one
// operand, finish(folded) where folded[i] is the collapsed (summed)
// contribution of operand i — zero when the operand does not define the key
// (zero extension). finish must be pure; it receives a buffer owned by the
// kernel, valid only for the duration of the call.
func (p *kernelPlan) kernelFold(finish func(folded []float64) float64) {
	stage := startKernelStage()
	p.event.SetAccumulator("fold")
	nOps := len(p.blocks)
	type shardOut struct {
		keys []uint64
		vals []float64
	}
	outs := make([]shardOut, p.shards)
	p.parallel(func(shard int) {
		ssp, rows := p.shardSpan(shard, "fold")
		idx := make(map[uint64]int32, p.total/p.shards+1)
		var keys []uint64
		var arena []float64
		zero := make([]float64, nOps)
		for i, b := range p.blocks {
			rtT := p.maps[i].t
			blockRows(b, p.maps[i], p,
				func(_ int, rowBase uint64) bool {
					if p.shards != 1 && p.shardOf(rowBase) != shard {
						return false
					}
					if rows != nil {
						*rows++
					}
					return true
				},
				func(rowBase uint64, st int32, v float64) {
					key := rowBase + uint64(rtT[st])
					slot, ok := idx[key]
					if !ok {
						slot = int32(len(keys))
						idx[key] = slot
						keys = append(keys, key)
						arena = append(arena, zero...)
					}
					arena[int(slot)*nOps+i] += v
				})
		}
		// Finish per key, dropping exact-zero results (the store never
		// holds zeros).
		vals := make([]float64, 0, len(keys))
		kept := keys[:0]
		for s, key := range keys {
			if v := finish(arena[s*nOps : (s+1)*nOps]); v != 0 {
				kept = append(kept, key)
				vals = append(vals, v)
			}
		}
		outs[shard] = shardOut{kept, vals}
		endShardSpan(ssp, rows)
	})
	stage.done("accumulate")
	stage = startKernelStage()
	msp := p.span.StartChild("materialize")
	n := 0
	for _, o := range outs {
		n += len(o.keys)
	}
	keys := make([]uint64, 0, n)
	vals := make([]float64, 0, n)
	for _, o := range outs {
		keys = append(keys, o.keys...)
		vals = append(vals, o.vals...)
	}
	p.install(keys, vals, false, msp)
	msp.SetAttr("cells", len(keys))
	msp.End()
	stage.done("materialize")
}

// install writes the kernel output into the result's severity store, in
// columnar form only: the sorted (key, value) pairs become the result's
// lowered-block cache directly, so chained operators skip the lowering
// stage, and the pointer-keyed sparse map is left unmaterialised —
// Experiment.ensureSev builds it lazily if a map-based accessor is ever
// used. Exact zeros were dropped by the accumulators, preserving the
// zero-deletion invariant.
func (p *kernelPlan) install(keys []uint64, vals []float64, sorted bool, parent *obs.Span) {
	if !sorted {
		rsp := parent.StartChild("radix-sort")
		rsp.SetAttr("keys", len(keys))
		keys, vals = radixSortKV(keys, vals)
		rsp.End()
	}
	out := p.in.out
	out.sevGen++
	out.sev = nil // columnar-only until a map accessor materialises it
	out.lowered = &sevBlock{key: keys, val: vals, nC: p.nC, nT: p.nT}
	out.loweredSevGen = out.sevGen
	out.loweredMetaGen = out.metaGen
}

// mergeKeep builds Merge's per-operand ownership masks over source metric
// indices: operand i keeps a source metric exactly when it is the first
// operand providing the integrated metric. It runs on the flat index forms
// so the digest fast paths never materialise pointer maps for it.
func mergeKeep(in *integration, operands []*Experiment) [][]bool {
	srcs := in.metricSrcs()
	tabs := in.tables()
	keep := make([][]bool, len(operands))
	for i := range operands {
		tm := tabs[i].m
		k := make([]bool, len(tm))
		for si, ri := range tm {
			k[si] = srcs[ri] == int32(i)
		}
		keep[i] = k
	}
	return keep
}
