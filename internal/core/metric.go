// Package core implements the CUBE performance algebra: a platform-neutral
// data model for performance experiments (a metric dimension, a program
// dimension, and a system dimension, each organised hierarchically, plus a
// severity function mapping (metric, call path, thread) tuples to values)
// and closed arithmetic operators — Difference, Merge, and Mean — whose
// results are themselves valid experiments.
package core

import (
	"errors"
	"fmt"
)

// Unit is the unit of measurement of a metric. All metrics within one metric
// tree must share the same unit (a constraint of the data model: a parent
// metric must *include* its children, which is only meaningful within a
// single unit).
type Unit string

// The three units of measurement admitted by the data model.
const (
	Seconds     Unit = "sec"   // wall-clock or CPU time
	Bytes       Unit = "bytes" // data volume
	Occurrences Unit = "occ"   // number of event occurrences (e.g. counters)
)

// ValidUnit reports whether u is one of the admitted units.
func ValidUnit(u Unit) bool {
	switch u {
	case Seconds, Bytes, Occurrences:
		return true
	}
	return false
}

// Metric is a node of the metric dimension. Metrics form a forest; within a
// tree a parent metric semantically includes each child metric (execution
// time includes communication time, cache accesses include cache misses).
// Arranging metrics this way lets tools compute exclusive values
// automatically: cache hits are accesses minus misses.
type Metric struct {
	// Name identifies the metric; together with Unit it forms the
	// equality relation used when metric trees of two experiments are
	// integrated.
	Name string
	// Unit is the metric's unit of measurement.
	Unit Unit
	// Description is free-form documentation shown by displays.
	Description string

	parent   *Metric
	children []*Metric
}

// NewMetric returns a fresh root metric. It panics if the unit is not one of
// the admitted units; use Experiment.AddMetric for error-returning
// construction tied to an experiment.
func NewMetric(name string, unit Unit, description string) *Metric {
	if !ValidUnit(unit) {
		panic(fmt.Sprintf("core: invalid metric unit %q", unit))
	}
	return &Metric{Name: name, Unit: unit, Description: description}
}

// ErrUnitMismatch reports an attempt to place metrics with different units
// of measurement in the same metric tree.
var ErrUnitMismatch = errors.New("core: metrics within one tree must share a unit of measurement")

// NewChild creates a metric as a child of m and returns it. The child
// inherits m's unit; the data model forbids mixing units within a tree.
func (m *Metric) NewChild(name, description string) *Metric {
	c := &Metric{Name: name, Unit: m.Unit, Description: description, parent: m}
	m.children = append(m.children, c)
	return c
}

// AddChild attaches an existing root metric c as a child of m. It returns
// ErrUnitMismatch if the units differ and an error if c already has a
// parent.
func (m *Metric) AddChild(c *Metric) error {
	if c.Unit != m.Unit {
		return ErrUnitMismatch
	}
	if c.parent != nil {
		return fmt.Errorf("core: metric %q already has parent %q", c.Name, c.parent.Name)
	}
	c.parent = m
	m.children = append(m.children, c)
	return nil
}

// Parent returns the metric's parent, or nil for a root.
func (m *Metric) Parent() *Metric { return m.parent }

// Children returns the metric's children in insertion order. The returned
// slice is owned by the metric and must not be modified.
func (m *Metric) Children() []*Metric { return m.children }

// Root returns the root of the tree containing m.
func (m *Metric) Root() *Metric {
	for m.parent != nil {
		m = m.parent
	}
	return m
}

// Path returns the names from the root down to m, separated by "/".
func (m *Metric) Path() string {
	if m.parent == nil {
		return m.Name
	}
	return m.parent.Path() + "/" + m.Name
}

// Walk visits m and all of its descendants in pre-order.
func (m *Metric) Walk(fn func(*Metric)) {
	fn(m)
	for _, c := range m.children {
		c.Walk(fn)
	}
}

// Depth returns the number of ancestors of m (0 for a root).
func (m *Metric) Depth() int {
	d := 0
	for p := m.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// IsAncestorOf reports whether m is a proper ancestor of other.
func (m *Metric) IsAncestorOf(other *Metric) bool {
	for p := other.parent; p != nil; p = p.parent {
		if p == m {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer.
func (m *Metric) String() string {
	return fmt.Sprintf("%s [%s]", m.Path(), m.Unit)
}

// metricKey is the equality relation for metric-tree integration: metrics
// match when both name and unit of measurement agree.
func metricKey(m *Metric) string {
	return m.Name + "\x00" + string(m.Unit)
}
