package core

import (
	"reflect"
	"testing"
)

func makeCallTree() (*CallNode, *CallNode, *CallNode) {
	mainR := &Region{Name: "main", Module: "app.c"}
	fooR := &Region{Name: "foo", Module: "app.c"}
	root := NewCallNode(&CallSite{Callee: mainR})
	foo := root.NewChild(&CallSite{File: "app.c", Line: 10, Callee: fooR})
	bar := root.NewChild(&CallSite{File: "app.c", Line: 20, Callee: &Region{Name: "bar"}})
	return root, foo, bar
}

func TestCallNodeStructure(t *testing.T) {
	root, foo, bar := makeCallTree()
	if foo.Parent() != root || bar.Parent() != root {
		t.Errorf("parent links wrong")
	}
	if root.Depth() != 0 || foo.Depth() != 1 {
		t.Errorf("depth wrong")
	}
	if foo.Path() != "main/foo" {
		t.Errorf("Path = %q", foo.Path())
	}
	if root.FindChild("bar") != bar || root.FindChild("nope") != nil {
		t.Errorf("FindChild wrong")
	}
	if foo.Callee().Name != "foo" {
		t.Errorf("Callee wrong")
	}
	var paths []string
	root.Walk(func(n *CallNode) { paths = append(paths, n.Path()) })
	if !reflect.DeepEqual(paths, []string{"main", "main/foo", "main/bar"}) {
		t.Errorf("pre-order = %v", paths)
	}
}

func TestCallNodeAddChild(t *testing.T) {
	root, foo, _ := makeCallTree()
	orphan := NewCallNode(&CallSite{Callee: &Region{Name: "x"}})
	if err := root.AddChild(orphan); err != nil {
		t.Fatalf("AddChild: %v", err)
	}
	if err := root.AddChild(foo); err == nil {
		t.Errorf("re-parenting accepted")
	}
}

func TestCallNodeKeyModes(t *testing.T) {
	r := &Region{Name: "f", Module: "m.c"}
	a := NewCallNode(&CallSite{File: "m.c", Line: 10, Callee: r})
	b := NewCallNode(&CallSite{File: "m.c", Line: 99, Callee: r})
	if callNodeKey(a, CallMatchCallee) != callNodeKey(b, CallMatchCallee) {
		t.Errorf("callee matching must ignore line numbers")
	}
	if callNodeKey(a, CallMatchCalleeLine) == callNodeKey(b, CallMatchCalleeLine) {
		t.Errorf("callee+line matching must distinguish lines")
	}
	other := NewCallNode(&CallSite{Callee: &Region{Name: "f", Module: "other.c"}})
	if callNodeKey(a, CallMatchCallee) == callNodeKey(other, CallMatchCallee) {
		t.Errorf("regions in different modules must not match")
	}
}

func TestRegionAndSiteStrings(t *testing.T) {
	r := &Region{Name: "foo", Module: "a.c"}
	if r.String() != "a.c:foo" {
		t.Errorf("Region.String = %q", r.String())
	}
	bare := &Region{Name: "foo"}
	if bare.String() != "foo" {
		t.Errorf("bare Region.String = %q", bare.String())
	}
	s := &CallSite{File: "a.c", Line: 3, Callee: r}
	if s.String() != "a.c:foo (a.c:3)" {
		t.Errorf("CallSite.String = %q", s.String())
	}
	noLoc := &CallSite{Callee: bare}
	if noLoc.String() != "foo" {
		t.Errorf("location-free CallSite.String = %q", noLoc.String())
	}
}

func TestCallMatchModeString(t *testing.T) {
	if CallMatchCallee.String() != "callee" || CallMatchCalleeLine.String() != "callee+line" {
		t.Errorf("CallMatchMode strings wrong")
	}
	if CallMatchMode(99).String() == "" {
		t.Errorf("unknown mode should still render")
	}
}
