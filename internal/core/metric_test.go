package core

import (
	"errors"
	"reflect"
	"testing"
)

func TestValidUnit(t *testing.T) {
	for _, u := range []Unit{Seconds, Bytes, Occurrences} {
		if !ValidUnit(u) {
			t.Errorf("ValidUnit(%q) = false", u)
		}
	}
	for _, u := range []Unit{"", "hours", "flops"} {
		if ValidUnit(u) {
			t.Errorf("ValidUnit(%q) = true", u)
		}
	}
}

func TestNewMetricPanicsOnBadUnit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("NewMetric with bad unit did not panic")
		}
	}()
	NewMetric("x", "furlongs", "")
}

func TestMetricChildren(t *testing.T) {
	root := NewMetric("Time", Seconds, "total")
	comm := root.NewChild("Communication", "")
	if comm.Unit != Seconds {
		t.Errorf("child unit = %q, want inherited %q", comm.Unit, Seconds)
	}
	if comm.Parent() != root {
		t.Errorf("child parent wrong")
	}
	if root.Children()[0] != comm {
		t.Errorf("children order wrong")
	}

	other := NewMetric("Visits", Occurrences, "")
	if err := root.AddChild(other); !errors.Is(err, ErrUnitMismatch) {
		t.Errorf("AddChild with unit mismatch: err = %v, want ErrUnitMismatch", err)
	}
	ok := NewMetric("Sync", Seconds, "")
	if err := root.AddChild(ok); err != nil {
		t.Errorf("AddChild: %v", err)
	}
	if err := root.AddChild(ok); err == nil {
		t.Errorf("re-parenting accepted")
	}
}

func TestMetricPathDepthRoot(t *testing.T) {
	root := NewMetric("Time", Seconds, "")
	a := root.NewChild("A", "")
	b := a.NewChild("B", "")
	if b.Path() != "Time/A/B" {
		t.Errorf("Path = %q", b.Path())
	}
	if b.Depth() != 2 || root.Depth() != 0 {
		t.Errorf("Depth wrong: %d, %d", b.Depth(), root.Depth())
	}
	if b.Root() != root {
		t.Errorf("Root wrong")
	}
	if !root.IsAncestorOf(b) || root.IsAncestorOf(root) || b.IsAncestorOf(root) {
		t.Errorf("IsAncestorOf wrong")
	}
}

func TestMetricWalkPreOrder(t *testing.T) {
	root := NewMetric("r", Seconds, "")
	a := root.NewChild("a", "")
	a.NewChild("a1", "")
	root.NewChild("b", "")
	var names []string
	root.Walk(func(m *Metric) { names = append(names, m.Name) })
	if !reflect.DeepEqual(names, []string{"r", "a", "a1", "b"}) {
		t.Errorf("pre-order = %v", names)
	}
}

func TestMetricKeyIncludesUnit(t *testing.T) {
	a := NewMetric("X", Seconds, "")
	b := NewMetric("X", Bytes, "")
	if metricKey(a) == metricKey(b) {
		t.Errorf("metrics with equal names but different units must not match")
	}
}

func TestMetricString(t *testing.T) {
	m := NewMetric("Time", Seconds, "")
	c := m.NewChild("MPI", "")
	if got := c.String(); got != "Time/MPI [sec]" {
		t.Errorf("String = %q", got)
	}
}
