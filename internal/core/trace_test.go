package core

import (
	"testing"

	"cube/internal/obs"
)

// collectSpans flattens a span tree into name → spans.
func collectSpans(root *obs.Span) map[string][]*obs.Span {
	out := map[string][]*obs.Span{}
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		out[s.Name()] = append(out[s.Name()], s)
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(root)
	return out
}

func attrMap(s *obs.Span) map[string]any {
	m := map[string]any{}
	for _, a := range s.Attrs() {
		m[a.Key] = a.Value
	}
	return m
}

// TestOperatorTraceTree checks the span taxonomy the kernel engine emits:
// op root → integrate, per-operand lower, per-shard kernel, materialize.
func TestOperatorTraceTree(t *testing.T) {
	tr := obs.NewTracer(obs.TracerOptions{SampleRate: 1})
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	a := buildSized("a", 3, 5, 4)
	b := buildSized("b", 3, 5, 4)
	const workers = 4
	if _, err := Merge(a, b, &Options{Engine: EngineKernel, Workers: workers}); err != nil {
		t.Fatal(err)
	}

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(traces))
	}
	root := traces[0].Root()
	if root.Name() != "op.merge" {
		t.Fatalf("root span = %q, want op.merge", root.Name())
	}
	ra := attrMap(root)
	if ra["operands"] != 2 || ra["cells_in"] != 120 || ra["cells_out"] == nil {
		t.Errorf("root attrs = %v", ra)
	}

	spans := collectSpans(root)
	if len(spans["integrate"]) != 1 {
		t.Errorf("got %d integrate spans, want 1", len(spans["integrate"]))
	}
	lowers := spans["lower"]
	if len(lowers) != 2 {
		t.Fatalf("got %d lower spans, want 2 (one per operand)", len(lowers))
	}
	for i, l := range lowers {
		la := attrMap(l)
		if la["operand"] != i || la["cells"] != 60 {
			t.Errorf("lower[%d] attrs = %v", i, la)
		}
	}
	kernels := spans["kernel"]
	if len(kernels) != workers {
		t.Fatalf("got %d kernel spans, want %d (one per shard)", len(kernels), workers)
	}
	shardSeen := map[any]bool{}
	totalRows := 0
	for _, k := range kernels {
		ka := attrMap(k)
		shardSeen[ka["shard"]] = true
		if ka["accumulator"] != "dense" && ka["accumulator"] != "sparse" {
			t.Errorf("kernel attrs lack accumulator: %v", ka)
		}
		rows, ok := ka["rows"].(int)
		if !ok {
			t.Errorf("kernel attrs lack rows: %v", ka)
		}
		totalRows += rows
	}
	if len(shardSeen) != workers {
		t.Errorf("shard numbers not distinct: %v", shardSeen)
	}
	// 3 metrics × 5 call nodes = 15 rows. Merge's ownership rule gives
	// every metric to operand a (first provider), so operand b's rows are
	// rejected before the shard check and only a's 15 count as processed.
	if totalRows != 15 {
		t.Errorf("kernel shards processed %d rows total, want 15", totalRows)
	}
	if len(spans["materialize"]) != 1 {
		t.Errorf("got %d materialize spans, want 1", len(spans["materialize"]))
	}
}

// TestOperatorTraceParent checks Options.Trace: the invocation parents
// under the caller's span (the server request) instead of opening a new
// root trace.
func TestOperatorTraceParent(t *testing.T) {
	tr := obs.NewTracer(obs.TracerOptions{SampleRate: 1})
	parent := tr.StartTrace("http /op/difference", "req-7")

	a := buildSized("a", 2, 3, 2)
	b := buildSized("b", 2, 3, 2)
	if _, err := Difference(a, b, &Options{Trace: parent}); err != nil {
		t.Fatal(err)
	}
	parent.End()

	got := tr.Trace("req-7")
	if got == nil {
		t.Fatalf("request trace not retained")
	}
	kids := got.Root().Children()
	if len(kids) != 1 || kids[0].Name() != "op.difference" {
		t.Fatalf("request root children = %v", kids)
	}
	if len(collectSpans(kids[0])["materialize"]) != 1 {
		t.Errorf("operator subtree incomplete under request span")
	}
}

// TestOperatorTraceLegacyEngine: the legacy engine traces integrate and a
// single legacy-combine stage.
func TestOperatorTraceLegacyEngine(t *testing.T) {
	tr := obs.NewTracer(obs.TracerOptions{SampleRate: 1})
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	a := buildSized("a", 2, 3, 2)
	b := buildSized("b", 2, 3, 2)
	if _, err := Sum(&Options{Engine: EngineLegacy}, a, b); err != nil {
		t.Fatal(err)
	}
	spans := collectSpans(tr.Traces()[0].Root())
	if len(spans["legacy-combine"]) != 1 || len(spans["integrate"]) != 1 {
		t.Errorf("legacy engine spans = %v", spans)
	}
}

// TestOperatorTraceError: failed invocations end their span with an error
// attribute rather than leaking an unfinished trace.
func TestOperatorTraceError(t *testing.T) {
	tr := obs.NewTracer(obs.TracerOptions{SampleRate: 1})
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	if _, err := Mean(nil); err == nil {
		t.Fatal("Mean with no operands succeeded")
	}
	// ErrNoOperands fires before startOp; a nil operand fails integrate.
	a := buildSized("a", 2, 3, 2)
	if _, err := StdDev(nil, a, nil); err == nil {
		t.Fatal("StdDev with nil operand succeeded")
	}
	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces after failed op", len(traces))
	}
	ra := attrMap(traces[0].Root())
	if ra["error"] != true {
		t.Errorf("failed op span lacks error attr: %v", ra)
	}
}

// BenchmarkOperatorTracing guards the tracing overhead next to
// BenchmarkOperatorInstrumentation: "off" must stay within noise of the
// kernel baseline (one atomic pointer load per invocation), "sampled"
// within 5%.
func BenchmarkOperatorTracing(b *testing.B) {
	a := buildSized("a", 20, 50, 8) // 8000 cells per operand
	c := buildSized("b", 20, 50, 8)
	for _, mode := range []struct {
		name   string
		tracer *obs.Tracer
	}{{"off", nil}, {"sampled", obs.NewTracer(obs.TracerOptions{SampleRate: 1, RingSize: 4})}} {
		b.Run(mode.name, func(b *testing.B) {
			obs.SetTracer(mode.tracer)
			defer obs.SetTracer(nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Difference(a, c, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
