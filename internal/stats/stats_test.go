package stats

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if v, err := Min(xs); err != nil || v != 1 {
		t.Errorf("Min = %v, %v", v, err)
	}
	if v, err := Max(xs); err != nil || v != 5 {
		t.Errorf("Max = %v, %v", v, err)
	}
	if v, err := Mean(xs); err != nil || v != 2.8 {
		t.Errorf("Mean = %v, %v", v, err)
	}
	if v, err := StdDev(xs); err != nil || math.Abs(v-1.7888543819998317) > 1e-12 {
		t.Errorf("StdDev = %v, %v", v, err)
	}
	if v, err := StdDev([]float64{42}); err != nil || v != 0 {
		t.Errorf("single-element StdDev = %v, %v", v, err)
	}
	if v, err := Representative(xs); err != nil || v != 1 {
		t.Errorf("Representative = %v, %v", v, err)
	}
}

func TestEmptySeriesErrors(t *testing.T) {
	for name, f := range map[string]func([]float64) (float64, error){
		"Min": Min, "Max": Max, "Mean": Mean, "StdDev": StdDev, "Representative": Representative,
	} {
		if _, err := f(nil); !errors.Is(err, ErrEmptySeries) {
			t.Errorf("%s(nil): %v", name, err)
		}
	}
}

func TestSpeedup(t *testing.T) {
	if v, err := Speedup(10, 8.4); err != nil || math.Abs(v-0.16) > 1e-12 {
		t.Errorf("Speedup = %v, %v", v, err)
	}
	if v, err := Speedup(10, 12); err != nil || v != -0.2 {
		t.Errorf("negative speedup = %v, %v", v, err)
	}
	if _, err := Speedup(0, 1); err == nil {
		t.Errorf("zero baseline accepted")
	}
}

func TestSeries(t *testing.T) {
	xs, err := Series(5, func(i int) (float64, error) { return float64(i * i), nil })
	if err != nil || len(xs) != 5 || xs[4] != 16 {
		t.Errorf("Series = %v, %v", xs, err)
	}
	if _, err := Series(0, nil); err == nil {
		t.Errorf("zero-length series accepted")
	}
	if _, err := Series(3, func(i int) (float64, error) {
		if i == 1 {
			return 0, fmt.Errorf("boom")
		}
		return 1, nil
	}); err == nil {
		t.Errorf("generator error swallowed")
	}
}

func TestSeriesParallelMatchesSequential(t *testing.T) {
	gen := func(i int) (float64, error) { return float64(i*i) + 1, nil }
	seq, err := Series(32, gen)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SeriesParallel(32, gen)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("slot %d: %v vs %v", i, seq[i], par[i])
		}
	}
	if _, err := SeriesParallel(0, gen); err == nil {
		t.Errorf("zero-length parallel series accepted")
	}
	if _, err := SeriesParallel(4, func(i int) (float64, error) {
		if i == 2 {
			return 0, errors.New("boom")
		}
		return 1, nil
	}); err == nil {
		t.Errorf("generator error swallowed")
	}
}

// Property: min <= mean <= max for any non-empty series.
func TestQuickOrdering(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true // avoid overflow artifacts; not the property under test
			}
		}
		mn, _ := Min(xs)
		me, _ := Mean(xs)
		mx, _ := Max(xs)
		return mn <= me+1e-9*math.Abs(me) && me <= mx+1e-9*math.Abs(mx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
