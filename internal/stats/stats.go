// Package stats provides the run-series statistics used by the paper's
// measurement methodology (§5.1): repeated experiments per configuration,
// the minimum of each series as the perturbation-free representative, and
// speedup between configurations.
package stats

import (
	"errors"
	"math"
	"runtime"
	"sync"
)

// ErrEmptySeries is returned for statistics over an empty series.
var ErrEmptySeries = errors.New("stats: empty series")

// Min returns the smallest value of the series.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySeries
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest value of the series.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySeries
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Mean returns the arithmetic mean of the series.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySeries
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the sample standard deviation of the series (zero for a
// single-element series).
func StdDev(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySeries
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, _ := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1)), nil
}

// Speedup returns the relative improvement (before-after)/before, e.g.
// 0.16 for a 16 % speedup. It returns an error when before is zero.
func Speedup(before, after float64) (float64, error) {
	if before == 0 {
		return 0, errors.New("stats: speedup with zero baseline")
	}
	return (before - after) / before, nil
}

// Series collects repeated measurements produced by a generator function
// invoked with run indices 0..n-1 (the generator typically varies the
// simulation seed). It stops at the first error.
func Series(n int, measure func(run int) (float64, error)) ([]float64, error) {
	if n <= 0 {
		return nil, errors.New("stats: series length must be positive")
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v, err := measure(i)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// SeriesParallel is Series with the independent measurements executed
// concurrently on up to GOMAXPROCS goroutines. Results are slotted by run
// index, so the returned series is identical to the sequential one for a
// deterministic generator; the first error (lowest run index) wins.
func SeriesParallel(n int, measure func(run int) (float64, error)) ([]float64, error) {
	if n <= 0 {
		return nil, errors.New("stats: series length must be positive")
	}
	out := make([]float64, n)
	errs := make([]error, n)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i], errs[i] = measure(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Representative applies the paper's methodology to a series: the minimum
// value is taken as the representative of the configuration.
func Representative(xs []float64) (float64, error) {
	return Min(xs)
}
