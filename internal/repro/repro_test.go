// Integration tests pinning the *shape* of every reproduced paper
// artifact: who wins, by roughly what factor, and where severities migrate.
// Absolute numbers are simulator outputs, so the assertions use bands
// around the paper's reported values.
package repro

import (
	"strings"
	"testing"

	"cube/internal/core"
	"cube/internal/counters"
	"cube/internal/expert"
)

func TestFig1WaitAtBarrierShare(t *testing.T) {
	r, err := Fig1(1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 13.2 %. Accept a band around it.
	if r.WaitAtBarrierPct < 11 || r.WaitAtBarrierPct > 16 {
		t.Errorf("Wait-at-Barrier share = %.1f%%, want ~13.2%%", r.WaitAtBarrierPct)
	}
	if err := r.Exp.Validate(); err != nil {
		t.Errorf("experiment invalid: %v", err)
	}
	if r.Exp.Derived {
		t.Errorf("Fig. 1 shows an original experiment")
	}
	for _, want := range []string{"Wait at Barrier", "Metric tree", "Call tree", "System tree", "%"} {
		if !strings.Contains(r.Rendering, want) {
			t.Errorf("rendering lacks %q", want)
		}
	}
}

func TestFig2DifferenceShape(t *testing.T) {
	r, err := Fig2(1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Diff.Derived || r.Diff.Operation != "difference" {
		t.Errorf("Fig. 2 must be a derived difference experiment")
	}
	// Barrier-related metrics: eliminated (positive improvement ≈ their
	// whole former share).
	for _, name := range []string{expert.MetricWaitAtBarrier, expert.MetricSync, expert.MetricBarrierCompl} {
		if r.ImprovementPct[name] < 0 {
			t.Errorf("%s should improve, got %+.2f%%", name, r.ImprovementPct[name])
		}
	}
	if r.ImprovementPct[expert.MetricWaitAtBarrier] < 10 {
		t.Errorf("Wait-at-Barrier improvement = %+.2f%%, want >= 10%%", r.ImprovementPct[expert.MetricWaitAtBarrier])
	}
	// Migration: P2P-related and NxN waiting get worse (sunken relief).
	if r.ImprovementPct[expert.MetricLateSender] >= 0 {
		t.Errorf("Late Sender should increase (negative improvement), got %+.2f%%", r.ImprovementPct[expert.MetricLateSender])
	}
	if r.ImprovementPct[expert.MetricWaitAtNxN] >= 0 {
		t.Errorf("Wait-at-NxN should increase, got %+.2f%%", r.ImprovementPct[expert.MetricWaitAtNxN])
	}
	// Gross balance clearly positive (paper: ~16 % solver gain).
	if r.GrossBalancePct < 8 {
		t.Errorf("gross balance = %+.1f%%, want clearly positive", r.GrossBalancePct)
	}
	if err := r.Diff.Validate(); err != nil {
		t.Errorf("difference invalid: %v", err)
	}
	// The difference experiment contains negative severities (losses).
	hasNeg := false
	r.Diff.EachSeverity(func(_ *core.Metric, _ *core.CallNode, _ *core.Thread, v float64) {
		if v < 0 {
			hasNeg = true
		}
	})
	if !hasNeg {
		t.Errorf("difference has no negative severities; migration invisible")
	}
}

func TestSpeedupBand(t *testing.T) {
	r, err := Speedup(PaperValues.SeriesRuns, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.BeforeSeries) != 10 || len(r.AfterSeries) != 10 {
		t.Errorf("series lengths wrong")
	}
	// Paper: ~16 %. Accept 10-22 %.
	if r.SpeedupPct < 10 || r.SpeedupPct > 22 {
		t.Errorf("speedup = %.1f%%, want ~16%%", r.SpeedupPct)
	}
	if r.BeforeMin <= r.AfterMin {
		// speedup positive implies before > after
		t.Errorf("min(before) %v should exceed min(after) %v", r.BeforeMin, r.AfterMin)
	}
}

func TestFig3MergeShape(t *testing.T) {
	r, err := Fig3(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ConeSets) != 2 {
		t.Fatalf("FP_INS and L1_DCM must force two CONE runs, got %d", len(r.ConeSets))
	}
	if !r.Merged.Derived || r.Merged.Operation != "merge" {
		t.Errorf("Fig. 3 must be a derived merge experiment")
	}
	// Metric roots from both tools coexist.
	roots := strings.Join(r.MetricRoots, " ")
	for _, want := range []string{"Time", string(counters.FPIns), string(counters.L1DataMiss)} {
		if !strings.Contains(roots, want) {
			t.Errorf("merged roots lack %s: %v", want, r.MetricRoots)
		}
	}
	// Cache misses concentrate at MPI_Recv; that time is mostly waiting.
	if r.L1MissAtRecvPct < 60 {
		t.Errorf("L1 miss concentration at MPI_Recv = %.1f%%, want high", r.L1MissAtRecvPct)
	}
	if r.LateSenderPct < 10 {
		t.Errorf("late-sender share = %.1f%%, want substantial", r.LateSenderPct)
	}
	if err := r.Merged.Validate(); err != nil {
		t.Errorf("merged invalid: %v", err)
	}
	// All operands carry the sweep grid, so the merge preserves it.
	if r.Merged.Topology() == nil {
		t.Errorf("merged experiment lost the process topology")
	}
}

func TestFig3MeanBeforeMerge(t *testing.T) {
	r, err := Fig3(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// With runsPerMeasurement > 1 the merge operands are mean-derived.
	if !strings.Contains(r.Expert.Operation, "mean") {
		t.Errorf("expert operand not averaged: %q", r.Expert.Operation)
	}
	if err := r.Merged.Validate(); err != nil {
		t.Errorf("merged-of-means invalid: %v", err)
	}
}

func TestTraceSizeOrdering(t *testing.T) {
	r, err := TraceSize(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.CounterTraceBytes <= r.PlainTraceBytes {
		t.Errorf("per-record counters must enlarge the trace: %d vs %d",
			r.CounterTraceBytes, r.PlainTraceBytes)
	}
	if r.EnlargementPct < 20 {
		t.Errorf("enlargement = %.0f%%, want substantial", r.EnlargementPct)
	}
	if r.ProfileBytes >= r.PlainTraceBytes {
		t.Errorf("profile (%d B) must be far smaller than the trace (%d B)",
			r.ProfileBytes, r.PlainTraceBytes)
	}
	if r.TraceOverProfile < 10 {
		t.Errorf("trace/profile ratio = %.1f, want >= 10", r.TraceOverProfile)
	}
}
